// On-demand promising-pair generation (§3.2, Algorithm 1).
//
// A *promising pair* is a pair of strings sharing a maximal common substring
// of length >= psi. The generator walks the nodes of the local GST forest in
// decreasing string-depth order and, at each node with path-label α, emits
// exactly the pairs for which α is a maximal common substring (Lemma 1):
//
//   * at a leaf: cartesian products of lsets over (c1 < c2) plus l_λ × l_λ;
//   * at an internal node: after eliminating duplicate strings across the
//     children's lsets, cross-child products over (c1 != c2 or both λ),
//     then lset union onto the node.
//
// Pairs therefore stream out in decreasing order of maximal common
// substring length with respect to this forest (the paper accepts per-rank
// rather than global order). The generator remembers its position between
// calls, so pairs are produced on demand at no extra storage cost.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "bio/dataset.hpp"
#include "gst/tree.hpp"
#include "pairgen/lset.hpp"
#include "pairgen/source.hpp"

namespace estclust::pairgen {

class PairGenerator final : public PairSource {
 public:
  /// The forest is borrowed and must outlive the generator. psi must be at
  /// least the forest's bucket prefix depth w (suffixes shorter than w were
  /// never inserted, which is only sound when psi >= w).
  PairGenerator(const bio::EstSet& ests, const std::vector<gst::Tree>& forest,
                std::uint32_t psi);

  /// Appends up to `max_pairs` pairs to `out`. Returns the number appended;
  /// 0 means the stream is exhausted.
  std::size_t next_batch(std::size_t max_pairs,
                         std::vector<PromisingPair>& out) override;

  /// True once every node has been processed and the buffer drained.
  bool exhausted() const override;

  const GenStats& stats() const override { return stats_; }

  /// Work units performed since the last call to this function (for
  /// virtual-time charging by the parallel driver).
  std::uint64_t take_work_units() override;

  /// Node sorting over the borrowed forest (Table 3's "Sorting Nodes"
  /// column): k·(1 + ⌊log2(k+1)⌋) for k forest nodes — the formula the
  /// pace drivers have always charged for this backend.
  std::uint64_t construction_sort_units() const override;

  /// The candidate index here is the borrowed forest itself.
  std::uint64_t index_bytes() const override;

  /// Live lset cells right now (space-linearity tests).
  std::uint32_t live_lset_cells() const { return pool_.live_cells(); }

 private:
  struct NodeRef {
    std::uint32_t tree = 0;
    std::uint32_t node = 0;
  };

  void process_next_node();
  void process_leaf(const gst::Tree& t, std::uint32_t v, NodeLsets& lsets);
  void process_internal(const gst::Tree& t, std::uint32_t tree_idx,
                        std::uint32_t v, NodeLsets& lsets);
  void emit(const LsetEntry& e1, const LsetEntry& e2, std::uint32_t len);
  void cross_product(const Lset& s1, const Lset& s2, std::uint32_t len);
  void self_product(const Lset& s, std::uint32_t len);

  NodeLsets& lsets_of(std::uint32_t tree_idx, std::uint32_t node);
  void release_lsets(NodeLsets& lsets);

  const bio::EstSet& ests_;
  const std::vector<gst::Tree>& forest_;
  std::uint32_t psi_;

  std::vector<NodeRef> order_;   ///< nodes with depth >= psi, sorted
  std::size_t next_node_ = 0;    ///< cursor into order_
  std::vector<std::uint32_t> remaining_;  ///< unprocessed nodes per tree

  LsetPool pool_;
  // Dense lset storage per tree, allocated lazily per tree: lsets_[t] has
  // one NodeLsets per node of tree t (order_ touches only depth >= psi
  // nodes, but children of processed nodes also live here).
  std::vector<std::vector<NodeLsets>> lsets_;

  // Duplicate-elimination mark array: mark_[sid] == token when sid was
  // already seen at the internal node currently being processed.
  std::vector<std::uint64_t> mark_;
  std::uint64_t token_ = 0;

  std::deque<PromisingPair> buffer_;
  GenStats stats_;
  std::uint64_t work_since_take_ = 0;
};

}  // namespace estclust::pairgen
