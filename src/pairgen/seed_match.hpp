// Shared seed-and-extend machinery for the non-GST pair sources.
//
// The k-mer and FM-index backends both reduce promising-pair discovery to
// the same primitive: group every owned occurrence of a length-k seed,
// then extend each occurrence pair maximally left and right. A pair is
// recorded only by the group whose seed sits at the *start* of the maximal
// match (leftmost-seed rule), so each maximal common substring yields
// exactly one record per occurrence pair — the same per-anchor granularity
// as the GST walk. Because k >= psi >= w, a seed at the match start shares
// the anchor's w-prefix, so restricting seeds to this rank's §3.1 buckets
// is closed under grouping: a group never mixes owned and foreign anchors.
//
// SeedPairSource owns record materialization, the decreasing-match-length
// final order, batch serving and GenStats accounting; the backends only
// differ in how they enumerate seed groups.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bio/dataset.hpp"
#include "gst/tree.hpp"
#include "pairgen/source.hpp"

namespace estclust::pairgen {

class SeedPairSource : public PairSource {
 public:
  std::size_t next_batch(std::size_t max_pairs,
                         std::vector<PromisingPair>& out) override;
  bool exhausted() const override { return served_ == records_.size(); }
  const GenStats& stats() const override { return stats_; }
  std::uint64_t take_work_units() override;
  std::uint64_t construction_sort_units() const override {
    return construction_units_;
  }

 protected:
  /// `owned_buckets` must be sorted ascending; psi >= window for the same
  /// soundness reason as the GST walk (anchors shorter than w have no
  /// bucket).
  SeedPairSource(const bio::EstSet& ests,
                 std::vector<std::uint64_t> owned_buckets,
                 std::uint32_t window, std::uint32_t psi);

  /// Seed length: psi capped at 32 so a seed packs into one 2-bit-coded
  /// u64 word. Anchors are >= psi >= k, so a shorter seed only widens
  /// groups, never loses an anchor.
  std::uint32_t seed_len() const { return k_; }

  bool owns_bucket(std::uint64_t bucket) const;

  /// One seed group: every owned occurrence of one length-k seed, sorted
  /// by (sid, pos). Extends each i < j occurrence pair maximally, applies
  /// the leftmost-seed rule and the §3.2 self/orientation discards, and
  /// records survivors of length >= psi.
  void process_group(std::span<const gst::SuffixOcc> occs);

  /// Sorts records into the final serving order (decreasing match_len,
  /// then (a, b, b_rc, a_pos, b_pos) — a total order, since records are
  /// unique on their anchor). Call once, after the last process_group.
  void finalize_records();

  const bio::EstSet& ests_;
  std::vector<std::uint64_t> owned_;  ///< sorted §3.1 bucket ids
  std::uint32_t window_;
  std::uint32_t psi_;
  std::uint32_t k_;

  std::vector<PromisingPair> records_;
  std::size_t served_ = 0;
  GenStats stats_;
  std::uint64_t construction_units_ = 0;
  std::uint64_t work_since_take_ = 0;
};

namespace detail {

/// Packs s[pos, pos+k) into a 2-bit-coded word (A=0..T=3, MSB-first so
/// numeric order matches lexicographic order). Returns false if any of
/// the k characters is not ACGT.
bool pack_seed(std::string_view s, std::uint32_t pos, std::uint32_t k,
               std::uint64_t& key);

/// Deterministic O(n log n) comparison-sort cost model shared by every
/// backend's construction accounting.
std::uint64_t sort_model_units(std::uint64_t n);

}  // namespace detail

}  // namespace estclust::pairgen
