#include "pairgen/source.hpp"

#include <algorithm>

#include "pairgen/fm.hpp"
#include "pairgen/generator.hpp"
#include "pairgen/kmer.hpp"
#include "util/check.hpp"

namespace estclust::pairgen {

std::string_view backend_name(Backend b) {
  switch (b) {
    case Backend::kGst:
      return "gst";
    case Backend::kKmer:
      return "kmer";
    case Backend::kFm:
      return "fm";
  }
  ESTCLUST_CHECK_MSG(false, "unknown pair-source backend");
  return "";
}

std::optional<Backend> parse_backend(std::string_view name) {
  for (Backend b : kAllBackends) {
    if (name == backend_name(b)) return b;
  }
  return std::nullopt;
}

std::unique_ptr<PairSource> make_pair_source(
    Backend backend, const bio::EstSet& ests,
    const std::vector<gst::Tree>& forest, std::uint32_t window,
    std::uint32_t psi) {
  if (backend == Backend::kGst) {
    return std::make_unique<PairGenerator>(ests, forest, psi);
  }
  std::vector<std::uint64_t> owned;
  owned.reserve(forest.size());
  for (const auto& t : forest) {
    ESTCLUST_CHECK(t.prefix_depth == window);
    owned.push_back(t.bucket_id);
  }
  std::sort(owned.begin(), owned.end());
  return make_pair_source_for_buckets(backend, ests, std::move(owned), window,
                                      psi);
}

std::unique_ptr<PairSource> make_pair_source_for_buckets(
    Backend backend, const bio::EstSet& ests,
    std::vector<std::uint64_t> owned_buckets, std::uint32_t window,
    std::uint32_t psi) {
  switch (backend) {
    case Backend::kKmer:
      return std::make_unique<KmerPairSource>(ests, std::move(owned_buckets),
                                              window, psi);
    case Backend::kFm:
      return std::make_unique<FmPairSource>(ests, std::move(owned_buckets),
                                            window, psi);
    case Backend::kGst:
      break;
  }
  ESTCLUST_CHECK_MSG(false,
                     "pair source needs the GST forest, not a bucket list");
  return nullptr;
}

}  // namespace estclust::pairgen
