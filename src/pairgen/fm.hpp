// FM-index pair source.
//
// Kaniwa-style index alternative to the suffix tree (PAPERS.md): a BWT +
// checkpointed occ-table over the 2-bit-coded text of all strings (built
// from the multi-string suffix array of gst::build_suffix_array), with
// backward search resolving each owned seed to its suffix-array interval.
// An interval of size >= 2 is a seed group — the same group the k-mer
// index forms, processed once when the querying occurrence is the
// (sid, pos)-minimum of its interval — so the record stream is identical
// to KmerPairSource's by construction, and both match the GST walk's
// per-anchor granularity via the shared leftmost-seed extension.
//
// The suffix array is retained as the locate structure (interval rank ->
// (sid, pos)), which dominates index_bytes; a sampled-SA variant would
// shrink it at extra locate cost.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "gst/suffix_array.hpp"
#include "pairgen/seed_match.hpp"

namespace estclust::pairgen {

class FmPairSource final : public SeedPairSource {
 public:
  /// `owned_buckets` (sorted) selects this rank's §3.1 share; `window` is
  /// the bucketing prefix length w; psi >= w.
  FmPairSource(const bio::EstSet& ests,
               std::vector<std::uint64_t> owned_buckets,
               std::uint32_t window, std::uint32_t psi);

  std::uint64_t index_bytes() const override;

 private:
  /// Occurrences of code c in bwt_[0, i).
  std::uint32_t occ(int c, std::uint32_t i) const;

  /// Backward search of s[pos, pos+k); returns false for an empty
  /// interval, else [*lo, *hi) over sa_.order.
  bool backward_search(std::string_view s, std::uint32_t pos,
                       std::uint32_t* lo, std::uint32_t* hi) const;

  gst::SuffixArray sa_;
  std::vector<std::uint8_t> bwt_;  ///< predecessor codes; 4 = string start
  // first_block_[c] = first rank whose suffix starts with code c;
  // lf_base_[c] additionally skips the length-1 suffixes "c", which sit
  // at the bottom of c's block (prefix-first order) but are never images
  // of the LF mapping over a no-empty-suffix array.
  std::uint32_t first_block_[5] = {0, 0, 0, 0, 0};
  std::uint32_t lf_base_[4] = {0, 0, 0, 0};
  std::vector<std::uint32_t> checkpoints_;  ///< per-64-rank occ counts × 4
};

}  // namespace estclust::pairgen
