#include "pairgen/fm.hpp"

#include <algorithm>

#include "bio/alphabet.hpp"
#include "gst/builder.hpp"
#include "util/check.hpp"

namespace estclust::pairgen {

namespace {
constexpr std::uint32_t kOccBlock = 64;
}

FmPairSource::FmPairSource(const bio::EstSet& ests,
                           std::vector<std::uint64_t> owned_buckets,
                           std::uint32_t window, std::uint32_t psi)
    : SeedPairSource(ests, std::move(owned_buckets), window, psi) {
  const std::uint32_t k = seed_len();
  sa_ = gst::build_suffix_array(ests_, 1);
  sa_.lcp.clear();
  sa_.lcp.shrink_to_fit();
  const std::uint32_t n = static_cast<std::uint32_t>(sa_.order.size());
  construction_units_ += detail::sort_model_units(n) + n;

  // BWT + per-code block boundaries in one pass over the sorted order.
  bwt_.resize(n);
  std::uint32_t first_count[4] = {0, 0, 0, 0};
  std::uint32_t len1_count[4] = {0, 0, 0, 0};
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto& occ = sa_.order[i];
    const auto s = ests_.str(occ.sid);
    bwt_[i] = occ.pos > 0
                  ? static_cast<std::uint8_t>(bio::encode_base(s[occ.pos - 1]))
                  : static_cast<std::uint8_t>(4);
    const int head = bio::encode_base(s[occ.pos]);
    ESTCLUST_CHECK(head >= 0);
    ++first_count[head];
    if (occ.pos + 1 == s.size()) ++len1_count[head];
  }
  first_block_[0] = 0;
  for (int c = 0; c < 4; ++c) {
    first_block_[c + 1] = first_block_[c] + first_count[c];
    lf_base_[c] = first_block_[c] + len1_count[c];
  }

  checkpoints_.assign((static_cast<std::size_t>(n) / kOccBlock + 1) * 4, 0);
  std::uint32_t running[4] = {0, 0, 0, 0};
  for (std::uint32_t i = 0; i < n; ++i) {
    if (i % kOccBlock == 0) {
      const std::size_t base = (i / kOccBlock) * 4;
      for (int c = 0; c < 4; ++c) checkpoints_[base + c] = running[c];
    }
    if (bwt_[i] < 4) ++running[bwt_[i]];
  }
  if (n % kOccBlock == 0) {
    const std::size_t base = (n / kOccBlock) * 4;
    for (int c = 0; c < 4; ++c) checkpoints_[base + c] = running[c];
  }

  // Enumerate owned seeds in (sid, pos) order; a group is processed by
  // its minimum occurrence, so each interval fires exactly once.
  std::vector<gst::SuffixOcc> group;
  for (bio::StringId sid = 0; sid < ests_.num_strings(); ++sid) {
    const auto s = ests_.str(sid);
    if (s.size() < k) continue;
    for (std::uint32_t pos = 0; pos + k <= s.size(); ++pos) {
      if (!owns_bucket(gst::bucket_of(s, pos, window_))) continue;
      std::uint32_t lo = 0;
      std::uint32_t hi = 0;
      construction_units_ += k;
      if (!backward_search(s, pos, &lo, &hi)) continue;
      if (hi - lo < 2) continue;
      gst::SuffixOcc min_occ = sa_.order[lo];
      for (std::uint32_t r = lo + 1; r < hi; ++r) {
        const auto& o = sa_.order[r];
        if (o.sid < min_occ.sid ||
            (o.sid == min_occ.sid && o.pos < min_occ.pos)) {
          min_occ = o;
        }
      }
      if (min_occ.sid != sid || min_occ.pos != pos) continue;
      group.assign(sa_.order.begin() + lo, sa_.order.begin() + hi);
      std::sort(group.begin(), group.end(),
                [](const gst::SuffixOcc& a, const gst::SuffixOcc& b) {
                  if (a.sid != b.sid) return a.sid < b.sid;
                  return a.pos < b.pos;
                });
      process_group(group);
    }
  }
  finalize_records();
}

std::uint32_t FmPairSource::occ(int c, std::uint32_t i) const {
  std::uint32_t count = checkpoints_[(i / kOccBlock) * 4 + c];
  for (std::uint32_t j = i - i % kOccBlock; j < i; ++j) {
    if (bwt_[j] == c) ++count;
  }
  return count;
}

bool FmPairSource::backward_search(std::string_view s, std::uint32_t pos,
                                   std::uint32_t* lo,
                                   std::uint32_t* hi) const {
  const std::uint32_t k = seed_len();
  int c = bio::encode_base(s[pos + k - 1]);
  if (c < 0) return false;
  std::uint32_t l = first_block_[c];
  std::uint32_t r = first_block_[c + 1];
  for (std::uint32_t q = k - 1; q-- > 0;) {
    if (l >= r) return false;
    c = bio::encode_base(s[pos + q]);
    if (c < 0) return false;
    l = lf_base_[c] + occ(c, l);
    r = lf_base_[c] + occ(c, r);
  }
  if (l >= r) return false;
  *lo = l;
  *hi = r;
  return true;
}

std::uint64_t FmPairSource::index_bytes() const {
  return sa_.order.size() * sizeof(gst::SuffixOcc) + bwt_.size() +
         checkpoints_.size() * sizeof(std::uint32_t) + sizeof(first_block_) +
         sizeof(lf_base_) + records_.capacity() * sizeof(PromisingPair);
}

}  // namespace estclust::pairgen
