// k-mer inverted-index pair source.
//
// The Byma-style candidate filter (PAPERS.md): every owned-bucket seed of
// length k = min(psi, 32) is packed into a 2-bit-coded word and collected
// into an inverted index (key, sid, pos) sorted by (key, sid, pos); each
// multi-occurrence key forms one seed group, and SeedPairSource's shared
// extension turns the groups into the same maximal-common-substring
// records the GST walk emits. Construction is a flat scan plus one sort —
// no tree refinement — at the cost of materializing every record up
// front instead of streaming node by node.
#pragma once

#include <cstdint>
#include <vector>

#include "pairgen/seed_match.hpp"

namespace estclust::pairgen {

class KmerPairSource final : public SeedPairSource {
 public:
  /// `owned_buckets` (sorted) selects this rank's §3.1 share; `window` is
  /// the bucketing prefix length w; psi >= w.
  KmerPairSource(const bio::EstSet& ests,
                 std::vector<std::uint64_t> owned_buckets,
                 std::uint32_t window, std::uint32_t psi);

  std::uint64_t index_bytes() const override;

 private:
  struct Entry {
    std::uint64_t key = 0;  ///< 2-bit-packed seed, MSB-first
    gst::SuffixOcc occ;
  };

  std::uint64_t entries_indexed_ = 0;  ///< peak index size (entries)
};

}  // namespace estclust::pairgen
