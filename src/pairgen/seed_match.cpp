#include "pairgen/seed_match.hpp"

#include <algorithm>
#include <cmath>

#include "bio/alphabet.hpp"
#include "util/check.hpp"

namespace estclust::pairgen {

namespace detail {

bool pack_seed(std::string_view s, std::uint32_t pos, std::uint32_t k,
               std::uint64_t& key) {
  std::uint64_t packed = 0;
  for (std::uint32_t i = 0; i < k; ++i) {
    const int code = bio::encode_base(s[pos + i]);
    if (code < 0) return false;
    packed = (packed << 2) | static_cast<std::uint64_t>(code);
  }
  key = packed;
  return true;
}

std::uint64_t sort_model_units(std::uint64_t n) {
  return n * (1 + static_cast<std::uint64_t>(
                      std::log2(static_cast<double>(n + 1))));
}

}  // namespace detail

SeedPairSource::SeedPairSource(const bio::EstSet& ests,
                               std::vector<std::uint64_t> owned_buckets,
                               std::uint32_t window, std::uint32_t psi)
    : ests_(ests),
      owned_(std::move(owned_buckets)),
      window_(window),
      psi_(psi),
      k_(std::min<std::uint32_t>(psi, 32)) {
  ESTCLUST_CHECK(psi >= window);
  ESTCLUST_CHECK(std::is_sorted(owned_.begin(), owned_.end()));
}

bool SeedPairSource::owns_bucket(std::uint64_t bucket) const {
  return std::binary_search(owned_.begin(), owned_.end(), bucket);
}

void SeedPairSource::process_group(std::span<const gst::SuffixOcc> occs) {
  ++stats_.nodes_processed;
  stats_.lset_work += occs.size();
  construction_units_ += occs.size();
  for (std::size_t i = 0; i < occs.size(); ++i) {
    const auto s1 = ests_.str(occs[i].sid);
    for (std::size_t j = i + 1; j < occs.size(); ++j) {
      const auto s2 = ests_.str(occs[j].sid);
      ++construction_units_;
      // Maximal left extension; if it moves, the match starts before this
      // seed, so the group at the match-start seed owns the record.
      std::uint32_t l1 = occs[i].pos;
      std::uint32_t l2 = occs[j].pos;
      while (l1 > 0 && l2 > 0 && s1[l1 - 1] == s2[l2 - 1]) {
        ++construction_units_;
        --l1;
        --l2;
      }
      if (l1 != occs[i].pos) continue;
      std::uint32_t e1 = occs[i].pos + k_;
      std::uint32_t e2 = occs[j].pos + k_;
      while (e1 < s1.size() && e2 < s2.size() && s1[e1] == s2[e2]) {
        ++construction_units_;
        ++e1;
        ++e2;
      }
      const std::uint32_t len = e1 - l1;
      if (len < psi_) continue;

      // §3.2 normalization and discards, identical to the GST emit rule.
      gst::SuffixOcc lo{occs[i].sid, l1};
      gst::SuffixOcc hi{occs[j].sid, l2};
      if (bio::EstSet::est_of(lo.sid) > bio::EstSet::est_of(hi.sid)) {
        std::swap(lo, hi);
      }
      const bio::EstId a = bio::EstSet::est_of(lo.sid);
      const bio::EstId b = bio::EstSet::est_of(hi.sid);
      if (a == b) {
        ++stats_.discarded_self;
        continue;
      }
      if (bio::EstSet::is_rc(lo.sid)) {
        ++stats_.discarded_orientation;
        continue;
      }
      PromisingPair p;
      p.a = a;
      p.b = b;
      p.b_rc = bio::EstSet::is_rc(hi.sid);
      p.match_len = len;
      p.a_pos = lo.pos;
      p.b_pos = hi.pos;
      records_.push_back(p);
      ++stats_.pairs_emitted;
    }
  }
}

void SeedPairSource::finalize_records() {
  std::sort(records_.begin(), records_.end(),
            [](const PromisingPair& x, const PromisingPair& y) {
              if (x.match_len != y.match_len) return x.match_len > y.match_len;
              if (x.a != y.a) return x.a < y.a;
              if (x.b != y.b) return x.b < y.b;
              if (x.b_rc != y.b_rc) return x.b_rc < y.b_rc;
              if (x.a_pos != y.a_pos) return x.a_pos < y.a_pos;
              return x.b_pos < y.b_pos;
            });
  construction_units_ += detail::sort_model_units(records_.size());
}

std::size_t SeedPairSource::next_batch(std::size_t max_pairs,
                                       std::vector<PromisingPair>& out) {
  const std::size_t n =
      std::min(max_pairs, records_.size() - served_);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(records_[served_ + i]);
  }
  served_ += n;
  // One serving unit per pair keeps per-batch pair_op charges flowing at
  // the same per-pair granularity as the GST walk's emission work.
  work_since_take_ += n;
  return n;
}

std::uint64_t SeedPairSource::take_work_units() {
  const std::uint64_t w = work_since_take_;
  work_since_take_ = 0;
  return w;
}

}  // namespace estclust::pairgen
