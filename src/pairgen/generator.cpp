#include "pairgen/generator.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace estclust::pairgen {

namespace {
// Ordering of Σ ∪ {λ} used for the leaf rule (c1 < c2): λ precedes the
// bases, matching the paper's convention that l_λ pairs with every other
// class exactly once.
constexpr int kClassOrder[bio::kNumLsetCodes] = {
    /*A*/ 1, /*C*/ 2, /*G*/ 3, /*T*/ 4, /*λ*/ 0};
}  // namespace

PairGenerator::PairGenerator(const bio::EstSet& ests,
                             const std::vector<gst::Tree>& forest,
                             std::uint32_t psi)
    : ests_(ests), forest_(forest), psi_(psi) {
  for (const auto& t : forest_) {
    ESTCLUST_CHECK_MSG(
        psi_ >= t.prefix_depth,
        "psi must be >= the GST bucket window w (suffixes shorter than w "
        "were dropped)");
  }
  // Collect nodes of string-depth >= psi. Sorting puts deeper nodes first;
  // within equal depth, higher node index first so that a $-leaf (which
  // ties its parent's depth) is processed before its parent.
  remaining_.assign(forest_.size(), 0);
  for (std::uint32_t t = 0; t < forest_.size(); ++t) {
    for (std::uint32_t v = 0; v < forest_[t].size(); ++v) {
      if (forest_[t].depth(v) >= psi_) {
        order_.push_back({t, v});
        ++remaining_[t];
      }
    }
  }
  std::sort(order_.begin(), order_.end(),
            [&](const NodeRef& x, const NodeRef& y) {
              std::uint32_t dx = forest_[x.tree].depth(x.node);
              std::uint32_t dy = forest_[y.tree].depth(y.node);
              if (dx != dy) return dx > dy;
              if (x.tree != y.tree) return x.tree < y.tree;
              return x.node > y.node;
            });
  lsets_.resize(forest_.size());
  mark_.assign(ests_.num_strings(), 0);
}

NodeLsets& PairGenerator::lsets_of(std::uint32_t tree_idx,
                                   std::uint32_t node) {
  auto& per_tree = lsets_[tree_idx];
  if (per_tree.empty()) per_tree.resize(forest_[tree_idx].size());
  return per_tree[node];
}

void PairGenerator::release_lsets(NodeLsets& lsets) {
  for (auto& set : lsets) pool_.release(set);
}

bool PairGenerator::exhausted() const {
  return buffer_.empty() && next_node_ == order_.size();
}

std::uint64_t PairGenerator::take_work_units() {
  std::uint64_t w = work_since_take_;
  work_since_take_ = 0;
  return w;
}

std::size_t PairGenerator::next_batch(std::size_t max_pairs,
                                      std::vector<PromisingPair>& out) {
  while (buffer_.size() < max_pairs && next_node_ < order_.size()) {
    process_next_node();
  }
  std::size_t count = std::min(max_pairs, buffer_.size());
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(buffer_.front());
    buffer_.pop_front();
  }
  return count;
}

void PairGenerator::process_next_node() {
  const NodeRef ref = order_[next_node_++];
  const gst::Tree& t = forest_[ref.tree];
  NodeLsets& lsets = lsets_of(ref.tree, ref.node);
  if (t.is_leaf(ref.node)) {
    process_leaf(t, ref.node, lsets);
  } else {
    process_internal(t, ref.tree, ref.node, lsets);
  }
  ++stats_.nodes_processed;
  // Surviving lsets are only needed by ancestors of depth >= psi. Nodes
  // whose parents lie below psi (or bucket roots) keep theirs until the
  // tree's last ordered node completes, at which point the whole tree's
  // lset storage is retired. This bounds live cells by the occurrence
  // count of the trees still in flight — linear in input size.
  if (--remaining_[ref.tree] == 0) {
    for (auto& node_lsets : lsets_[ref.tree]) release_lsets(node_lsets);
    lsets_[ref.tree].clear();
    lsets_[ref.tree].shrink_to_fit();
  }
}

void PairGenerator::process_leaf(const gst::Tree& t, std::uint32_t v,
                                 NodeLsets& lsets) {
  // lsets come straight from the leaf's occurrence labels. A string appears
  // at most once per leaf (two suffixes of one string are never equal), so
  // no duplicate elimination is needed here.
  for (const auto& occ : t.occurrences(v)) {
    int c = gst::left_extension_code(ests_, occ);
    pool_.push(lsets[static_cast<std::size_t>(c)], {occ.sid, occ.pos});
    ++work_since_take_;
    ++stats_.lset_work;
  }
  const std::uint32_t len = t.depth(v);
  // Pairs across classes (c1 < c2) and within λ.
  for (int c1 = 0; c1 < bio::kNumLsetCodes; ++c1) {
    for (int c2 = c1 + 1; c2 < bio::kNumLsetCodes; ++c2) {
      if (kClassOrder[c1] < kClassOrder[c2]) {
        cross_product(lsets[static_cast<std::size_t>(c1)],
                      lsets[static_cast<std::size_t>(c2)], len);
      } else {
        cross_product(lsets[static_cast<std::size_t>(c2)],
                      lsets[static_cast<std::size_t>(c1)], len);
      }
    }
  }
  self_product(lsets[bio::kLambdaCode], len);
}

void PairGenerator::process_internal(const gst::Tree& t,
                                     std::uint32_t tree_idx, std::uint32_t v,
                                     NodeLsets& lsets) {
  // Step 1: eliminate duplicate strings across the children's lsets. Each
  // string keeps exactly one (child, class) occurrence — the first in
  // child-then-class order.
  const std::uint64_t token = ++token_;
  std::vector<std::uint32_t> children;
  t.for_each_child(v, [&](std::uint32_t u) { children.push_back(u); });

  for (std::uint32_t u : children) {
    NodeLsets& child = lsets_of(tree_idx, u);
    for (auto& set : child) {
      stats_.lset_work += set.size;
      work_since_take_ += set.size;
      pool_.remove_if(set, [&](const LsetEntry& e) {
        if (mark_[e.sid] == token) return true;
        mark_[e.sid] = token;
        return false;
      });
    }
  }

  // Step 2: cross-child cartesian products with c1 != c2 or c1 = c2 = λ.
  const std::uint32_t len = t.depth(v);
  for (std::size_t k = 0; k < children.size(); ++k) {
    NodeLsets& lk = lsets_of(tree_idx, children[k]);
    for (std::size_t l = k + 1; l < children.size(); ++l) {
      NodeLsets& ll = lsets_of(tree_idx, children[l]);
      for (int c1 = 0; c1 < bio::kNumLsetCodes; ++c1) {
        for (int c2 = 0; c2 < bio::kNumLsetCodes; ++c2) {
          if (c1 == c2 && c1 != bio::kLambdaCode) continue;
          cross_product(lk[static_cast<std::size_t>(c1)],
                        ll[static_cast<std::size_t>(c2)], len);
        }
      }
    }
  }

  // Step 3: union the children's lsets class-wise onto v (O(|Σ|²) splices)
  // and retire the children's storage.
  for (std::uint32_t u : children) {
    NodeLsets& child = lsets_of(tree_idx, u);
    for (int c = 0; c < bio::kNumLsetCodes; ++c) {
      pool_.concat(lsets[static_cast<std::size_t>(c)],
                   child[static_cast<std::size_t>(c)]);
    }
  }
}

void PairGenerator::cross_product(const Lset& s1, const Lset& s2,
                                  std::uint32_t len) {
  if (s1.empty() || s2.empty()) return;
  pool_.for_each(s1, [&](const LsetEntry& e1) {
    pool_.for_each(s2, [&](const LsetEntry& e2) { emit(e1, e2, len); });
  });
}

void PairGenerator::self_product(const Lset& s, std::uint32_t len) {
  if (s.size < 2) return;
  pool_.for_each_pair(
      s, [&](const LsetEntry& e1, const LsetEntry& e2) { emit(e1, e2, len); });
}

void PairGenerator::emit(const LsetEntry& e1, const LsetEntry& e2,
                         std::uint32_t len) {
  ++work_since_take_;
  LsetEntry lo = e1, hi = e2;
  if (bio::EstSet::est_of(lo.sid) > bio::EstSet::est_of(hi.sid)) {
    std::swap(lo, hi);
  }
  const bio::EstId i = bio::EstSet::est_of(lo.sid);
  const bio::EstId j = bio::EstSet::est_of(hi.sid);
  if (i == j) {
    // Both strings derive from one EST (self-repeat or palindromic match).
    ++stats_.discarded_self;
    return;
  }
  if (bio::EstSet::is_rc(lo.sid)) {
    // The equivalent pair with both strings complemented is generated at
    // the node whose path-label is the reverse complement of this one
    // (§3.2's duplicate discard rule).
    ++stats_.discarded_orientation;
    return;
  }
  PromisingPair p;
  p.a = i;
  p.b = j;
  p.b_rc = bio::EstSet::is_rc(hi.sid);
  p.match_len = len;
  p.a_pos = lo.pos;
  p.b_pos = hi.pos;
  buffer_.push_back(p);
  ++stats_.pairs_emitted;
}

std::uint64_t PairGenerator::construction_sort_units() const {
  std::uint64_t k = 0;
  for (const auto& t : forest_) k += t.size();
  return k * (1 + static_cast<std::uint64_t>(
                      std::log2(static_cast<double>(k + 1))));
}

std::uint64_t PairGenerator::index_bytes() const {
  std::uint64_t bytes = 0;
  for (const auto& t : forest_) bytes += t.storage_bytes();
  return bytes;
}

}  // namespace estclust::pairgen
