// lsets (§3.2): per-node partitions of the strings below a GST node, keyed
// by the left-extension character of the suffix that put them there.
//
// Each node carries five lists — l_A, l_C, l_G, l_T and l_λ — of (string id,
// suffix position) entries. Lists are singly linked through a shared pool so
// that the union step of ProcessInternalNode is O(|Σ|²) pointer splices, and
// the total live storage across the whole generation pass stays linear in
// the number of suffix occurrences (entries are recycled through a free
// list when duplicates are eliminated or nodes are retired).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "bio/alphabet.hpp"
#include "bio/dataset.hpp"
#include "util/check.hpp"

namespace estclust::pairgen {

/// One lset entry: a string below the node plus a representative suffix
/// position (needed later as the alignment anchor).
struct LsetEntry {
  bio::StringId sid = 0;
  std::uint32_t pos = 0;
};

/// Handle to one linked list inside the pool.
struct Lset {
  std::int32_t head = -1;
  std::int32_t tail = -1;
  std::uint32_t size = 0;

  bool empty() const { return size == 0; }
};

/// All five lsets of one node, indexed by character code (λ = 4).
using NodeLsets = std::array<Lset, bio::kNumLsetCodes>;

/// Pool of list cells with a free list. Not thread-safe; each generator
/// owns one pool.
class LsetPool {
 public:
  /// Appends an entry to `set`.
  void push(Lset& set, LsetEntry entry);

  /// Splices `src` onto the end of `dst` in O(1); `src` becomes empty.
  void concat(Lset& dst, Lset& src);

  /// Calls f(LsetEntry) for every entry.
  template <typename F>
  void for_each(const Lset& set, F&& f) const {
    for (std::int32_t i = set.head; i != -1; i = cells_[i].next) {
      f(cells_[i].entry);
    }
  }

  /// Calls f(e1, e2) for every unordered pair of entries (ProcessLeaf's
  /// l_λ × l_λ product).
  template <typename F>
  void for_each_pair(const Lset& set, F&& f) const {
    for (std::int32_t i = set.head; i != -1; i = cells_[i].next) {
      for (std::int32_t j = cells_[i].next; j != -1; j = cells_[j].next) {
        f(cells_[i].entry, cells_[j].entry);
      }
    }
  }

  /// Removes entries for which pred(entry) is true, recycling their cells.
  /// Returns the number removed.
  template <typename Pred>
  std::uint32_t remove_if(Lset& set, Pred&& pred) {
    std::uint32_t removed = 0;
    std::int32_t prev = -1;
    std::int32_t cur = set.head;
    while (cur != -1) {
      std::int32_t next = cells_[cur].next;
      if (pred(cells_[cur].entry)) {
        if (prev == -1) {
          set.head = next;
        } else {
          cells_[prev].next = next;
        }
        if (set.tail == cur) set.tail = prev;
        free_cell(cur);
        --set.size;
        ++removed;
      } else {
        prev = cur;
      }
      cur = next;
    }
    return removed;
  }

  /// Recycles every cell of `set`; the handle becomes empty.
  void release(Lset& set);

  /// Cells currently in use (live-memory accounting for the O(N) tests).
  std::uint32_t live_cells() const { return live_; }

  /// Total cells ever allocated (capacity high-water mark).
  std::size_t allocated_cells() const { return cells_.size(); }

 private:
  struct Cell {
    LsetEntry entry;
    std::int32_t next = -1;
  };

  std::int32_t alloc_cell();
  void free_cell(std::int32_t i);

  std::vector<Cell> cells_;
  std::int32_t free_head_ = -1;
  std::uint32_t live_ = 0;
};

}  // namespace estclust::pairgen
