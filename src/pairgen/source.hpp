// Pluggable promising-pair backends behind one streaming interface.
//
// The paper's GST walk (generator.hpp) is one way to produce the §3.2
// promising-pair stream; a k-mer inverted index (kmer.hpp) and an FM-index
// (fm.hpp) are two more. Every backend honours the same contract
// (DESIGN.md §11):
//
//   * pairs stream out in decreasing maximal-common-substring length,
//     duplicate-free, invariant under next_batch batch sizes;
//   * each emitted anchor is a *maximal* common substring of length >= psi
//     in str(2a) × str(2b + b_rc), normalized by the §3.2 orientation and
//     self-pair discard rules;
//   * a rank emits exactly the pairs whose anchor's w-prefix bucket it
//     owns under the deterministic §3.1 assignment, so the union over
//     ranks is independent of p and a dead rank's stream can be
//     regenerated offline;
//   * work is surfaced for virtual-time charging: construction_sort_units
//     once at setup (charged to sort_op by the driver), take_work_units
//     incrementally as batches drain (charged to pair_op).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "bio/dataset.hpp"
#include "gst/tree.hpp"

namespace estclust::pairgen {

/// A generated promising pair. `a` is always the smaller EST id in forward
/// orientation (the duplicate-orientation discard rule of §3.2); `b_rc`
/// says whether the second EST participates in reverse complement. The
/// anchor (a_pos, b_pos, match_len) locates the maximal common substring in
/// str(2a) and str(2b + b_rc) for the anchored aligner.
struct PromisingPair {
  bio::EstId a = 0;
  bio::EstId b = 0;
  bool b_rc = false;
  std::uint32_t match_len = 0;
  std::uint32_t a_pos = 0;
  std::uint32_t b_pos = 0;
};

/// Counters for Fig 7 and for virtual-time charging.
struct GenStats {
  std::uint64_t pairs_emitted = 0;
  std::uint64_t discarded_orientation = 0;  ///< smaller-EST string was rc
  std::uint64_t discarded_self = 0;         ///< both strings from one EST
  std::uint64_t nodes_processed = 0;
  std::uint64_t lset_work = 0;  ///< entries touched (dedup + products)
};

/// Candidate-filter backend selection (CLI `--pair-source`).
enum class Backend : std::uint8_t {
  kGst = 0,   ///< distributed GST node walk (the paper's Algorithm 1)
  kKmer = 1,  ///< 2-bit-packed k-mer inverted index, shared-seed extension
  kFm = 2,    ///< FM-index (BWT/occ) backward-search seed matching
};

/// "gst" | "kmer" | "fm".
std::string_view backend_name(Backend b);

/// Parses a backend name; nullopt on anything unrecognised.
std::optional<Backend> parse_backend(std::string_view name);

/// All known backends, in CLI order (test/bench matrix iteration).
inline constexpr Backend kAllBackends[] = {Backend::kGst, Backend::kKmer,
                                           Backend::kFm};

/// Batched promising-pair production under the decreasing-overlap-order
/// contract, plus GenStats accounting. See the file comment for the
/// obligations every implementation carries.
class PairSource {
 public:
  virtual ~PairSource() = default;

  /// Appends up to `max_pairs` pairs to `out`. Returns the number
  /// appended; 0 means the stream is exhausted.
  virtual std::size_t next_batch(std::size_t max_pairs,
                                 std::vector<PromisingPair>& out) = 0;

  /// True once the stream has been fully drained.
  virtual bool exhausted() const = 0;

  virtual const GenStats& stats() const = 0;

  /// Work units performed since the last call (charged to pair_op by the
  /// driver as batches drain).
  virtual std::uint64_t take_work_units() = 0;

  /// Deterministic one-off setup work (index build / node sorting),
  /// charged to sort_op by the driver right after construction.
  virtual std::uint64_t construction_sort_units() const = 0;

  /// Bytes held by the backend's candidate index (Table-1-style space
  /// comparison; excludes the EST text itself).
  virtual std::uint64_t index_bytes() const = 0;
};

/// Builds a pair source over this rank's share of the workload. The GST
/// backend wraps `forest` directly (and borrows it; it must outlive the
/// source). kmer/fm derive their owned-bucket share and seed the index
/// from the same forest's bucket ids, so all three backends emit the
/// rank-local slice of the same global candidate set. `window` is the
/// §3.1 bucketing prefix length w (needed when `forest` is empty).
std::unique_ptr<PairSource> make_pair_source(
    Backend backend, const bio::EstSet& ests,
    const std::vector<gst::Tree>& forest, std::uint32_t window,
    std::uint32_t psi);

/// kmer/fm only: builds a source from an explicit owned-bucket set (the
/// master's rebuild-after-death path, which recomputes ownership via
/// gst::owned_bucket_ids without refining any trees). `owned_buckets`
/// must be sorted ascending.
std::unique_ptr<PairSource> make_pair_source_for_buckets(
    Backend backend, const bio::EstSet& ests,
    std::vector<std::uint64_t> owned_buckets, std::uint32_t window,
    std::uint32_t psi);

}  // namespace estclust::pairgen
