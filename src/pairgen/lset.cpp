#include "pairgen/lset.hpp"

namespace estclust::pairgen {

std::int32_t LsetPool::alloc_cell() {
  ++live_;
  if (free_head_ != -1) {
    std::int32_t i = free_head_;
    free_head_ = cells_[i].next;
    return i;
  }
  cells_.push_back(Cell{});
  return static_cast<std::int32_t>(cells_.size()) - 1;
}

void LsetPool::free_cell(std::int32_t i) {
  ESTCLUST_DCHECK(live_ > 0);
  --live_;
  cells_[i].next = free_head_;
  free_head_ = i;
}

void LsetPool::push(Lset& set, LsetEntry entry) {
  std::int32_t i = alloc_cell();
  cells_[i].entry = entry;
  cells_[i].next = -1;
  if (set.tail == -1) {
    set.head = set.tail = i;
  } else {
    cells_[set.tail].next = i;
    set.tail = i;
  }
  ++set.size;
}

void LsetPool::concat(Lset& dst, Lset& src) {
  if (src.empty()) return;
  if (dst.empty()) {
    dst = src;
  } else {
    cells_[dst.tail].next = src.head;
    dst.tail = src.tail;
    dst.size += src.size;
  }
  src = Lset{};
}

void LsetPool::release(Lset& set) {
  std::int32_t cur = set.head;
  while (cur != -1) {
    std::int32_t next = cells_[cur].next;
    free_cell(cur);
    cur = next;
  }
  set = Lset{};
}

}  // namespace estclust::pairgen
