#include "pairgen/kmer.hpp"

#include <algorithm>

#include "gst/builder.hpp"

namespace estclust::pairgen {

KmerPairSource::KmerPairSource(const bio::EstSet& ests,
                               std::vector<std::uint64_t> owned_buckets,
                               std::uint32_t window, std::uint32_t psi)
    : SeedPairSource(ests, std::move(owned_buckets), window, psi) {
  const std::uint32_t k = seed_len();
  std::vector<Entry> entries;
  for (bio::StringId sid = 0; sid < ests_.num_strings(); ++sid) {
    const auto s = ests_.str(sid);
    if (s.size() < k) continue;
    construction_units_ += s.size();
    for (std::uint32_t pos = 0; pos + k <= s.size(); ++pos) {
      // A seed at a maximal match's start shares the anchor's w-prefix
      // (k >= psi >= w), so owned-bucket seeds cover exactly the owned
      // anchors and groups never straddle ranks.
      if (!owns_bucket(gst::bucket_of(s, pos, window_))) continue;
      std::uint64_t key = 0;
      if (!detail::pack_seed(s, pos, k, key)) continue;
      entries.push_back({key, {sid, pos}});
    }
  }
  entries_indexed_ = entries.size();
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              if (a.key != b.key) return a.key < b.key;
              if (a.occ.sid != b.occ.sid) return a.occ.sid < b.occ.sid;
              return a.occ.pos < b.occ.pos;
            });
  construction_units_ += detail::sort_model_units(entries.size());

  std::vector<gst::SuffixOcc> group;
  std::size_t i = 0;
  while (i < entries.size()) {
    std::size_t j = i;
    while (j < entries.size() && entries[j].key == entries[i].key) ++j;
    if (j - i >= 2) {
      group.clear();
      for (std::size_t g = i; g < j; ++g) group.push_back(entries[g].occ);
      process_group(group);
    }
    i = j;
  }
  finalize_records();
}

std::uint64_t KmerPairSource::index_bytes() const {
  return entries_indexed_ * sizeof(Entry) +
         records_.capacity() * sizeof(PromisingPair);
}

}  // namespace estclust::pairgen
