#include "analysis/splice.hpp"

#include <algorithm>
#include <set>
#include <tuple>

#include "align/nw.hpp"
#include "pairgen/generator.hpp"
#include "util/check.hpp"

namespace estclust::analysis {

namespace {

/// Splits a local-alignment transcript into (left flank, gap, right
/// flank) around the longest single-sequence gap run. Returns false when
/// no gap run reaches min_gap.
bool split_on_longest_gap(const std::string& ops, std::size_t min_gap,
                          std::size_t& gap_begin, std::size_t& gap_len,
                          bool& gap_in_a) {
  std::size_t best_len = 0, best_begin = 0;
  char best_op = 'I';
  std::size_t i = 0;
  while (i < ops.size()) {
    if (ops[i] == 'I' || ops[i] == 'D') {
      std::size_t j = i;
      while (j < ops.size() && ops[j] == ops[i]) ++j;
      if (j - i > best_len) {
        best_len = j - i;
        best_begin = i;
        best_op = ops[i];
      }
      i = j;
    } else {
      ++i;
    }
  }
  if (best_len < min_gap) return false;
  gap_begin = best_begin;
  gap_len = best_len;
  // 'D' consumes a: the gap (extra segment) sits in sequence a.
  gap_in_a = (best_op == 'D');
  return true;
}

double identity_of(const std::string& ops, std::size_t begin,
                   std::size_t end) {
  std::size_t matches = 0, cols = 0;
  for (std::size_t i = begin; i < end; ++i) {
    ++cols;
    if (ops[i] == 'M') ++matches;
  }
  return cols == 0 ? 0.0 : static_cast<double>(matches) /
                               static_cast<double>(cols);
}

}  // namespace

bool examine_pair(const bio::EstSet& ests, bio::EstId a, bio::EstId b,
                  bool b_rc, const SpliceParams& params,
                  SpliceCandidate& out) {
  ESTCLUST_CHECK_MSG(a < ests.num_ests() && b < ests.num_ests() && a != b,
                     "splice: examine_pair needs two distinct in-range ESTs");
  ESTCLUST_CHECK_MSG(params.min_gap > 0 && params.min_flank > 0,
                     "splice: min_gap and min_flank must be positive");
  auto sa = ests.str(bio::EstSet::forward_sid(a));
  auto sb = ests.str(b_rc ? bio::EstSet::rc_sid(b)
                          : bio::EstSet::forward_sid(b));
  // Affine gaps: opening is expensive, extending is cheap, so bridging a
  // whole skipped exon is worthwhile when both flanks match, while chance
  // matches inside the skipped segment cannot shred the gap into pieces.
  align::Scoring sc;
  sc.match = 2;
  sc.mismatch = -3;
  sc.gap_open = -16;
  sc.gap_extend = -1;
  align::AlignResult res = align::local_align_affine(sa, sb, sc);
  if (res.ops.empty()) return false;

  std::size_t gap_begin = 0, gap_len = 0;
  bool gap_in_a = false;
  if (!split_on_longest_gap(res.ops, params.min_gap, gap_begin, gap_len,
                            gap_in_a)) {
    return false;
  }
  const std::size_t left = gap_begin;
  const std::size_t right = res.ops.size() - (gap_begin + gap_len);
  if (left < params.min_flank || right < params.min_flank) return false;
  const double left_id = identity_of(res.ops, 0, gap_begin);
  const double right_id =
      identity_of(res.ops, gap_begin + gap_len, res.ops.size());
  if (left_id < params.min_flank_identity ||
      right_id < params.min_flank_identity) {
    return false;
  }

  out.a = a;
  out.b = b;
  out.b_rc = b_rc;
  out.gap_in_a = gap_in_a;
  out.gap_len = gap_len;
  out.left_flank = left;
  out.right_flank = right;
  out.flank_identity = std::min(left_id, right_id);
  return true;
}

std::vector<SpliceCandidate> detect_alternative_splicing(
    const bio::EstSet& ests, const std::vector<gst::Tree>& forest,
    const SpliceParams& params) {
  pairgen::PairGenerator gen(ests, forest, params.psi);
  std::set<std::tuple<bio::EstId, bio::EstId, bool>> seen;
  std::vector<SpliceCandidate> out;
  std::vector<pairgen::PromisingPair> batch;
  std::size_t examined = 0;
  while (gen.next_batch(256, batch) > 0 && examined < params.max_pairs) {
    for (const auto& p : batch) {
      if (examined >= params.max_pairs) break;
      if (!seen.insert({p.a, p.b, p.b_rc}).second) continue;
      ++examined;
      SpliceCandidate cand;
      if (examine_pair(ests, p.a, p.b, p.b_rc, params, cand)) {
        out.push_back(cand);
      }
    }
    batch.clear();
  }
  std::sort(out.begin(), out.end(),
            [](const SpliceCandidate& x, const SpliceCandidate& y) {
              if (x.gap_len != y.gap_len) return x.gap_len > y.gap_len;
              if (x.a != y.a) return x.a < y.a;
              return x.b < y.b;
            });
  return out;
}

}  // namespace estclust::analysis
