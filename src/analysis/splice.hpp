// Alternative-splicing detection — the "additional processing like
// detection of alternative splicing" the paper lists (§3.3, §5) as the
// next quality-improvement step after clustering.
//
// Two ESTs reading different isoforms of one gene align well on their
// shared exons but one of them carries an extra internal exon: the
// signature is a local alignment with well-matching flanks separated by
// one long gap run in a single sequence. This pass scans promising pairs
// (from the same GST stream the clusterer uses) and reports pairs showing
// that signature.
#pragma once

#include <cstdint>
#include <vector>

#include "bio/dataset.hpp"
#include "gst/tree.hpp"

namespace estclust::analysis {

struct SpliceParams {
  std::uint32_t psi = 20;          ///< promising-pair threshold
  std::size_t min_gap = 25;        ///< minimum skipped-segment length
  std::size_t min_flank = 30;      ///< aligned bases required on each side
  double min_flank_identity = 0.9; ///< identity of the flanking alignment
  std::size_t max_pairs = 1 << 20; ///< safety cap on pairs examined
};

/// One candidate event: EST `a` (forward) vs EST `b` (orientation
/// `b_rc`); `gap_in_a` tells which sequence carries the extra segment.
struct SpliceCandidate {
  bio::EstId a = 0;
  bio::EstId b = 0;
  bool b_rc = false;
  bool gap_in_a = false;   ///< true: a has the extra exon; false: b does
  std::size_t gap_len = 0; ///< length of the skipped segment
  std::size_t left_flank = 0;   ///< aligned columns left of the gap
  std::size_t right_flank = 0;  ///< aligned columns right of the gap
  double flank_identity = 0.0;
};

/// Scans all promising pairs of `forest` and returns the splice
/// candidates, strongest (longest gap) first. Each (a, b, orientation) is
/// reported at most once.
std::vector<SpliceCandidate> detect_alternative_splicing(
    const bio::EstSet& ests, const std::vector<gst::Tree>& forest,
    const SpliceParams& params);

/// Examines one pair directly (exposed for tests and tools). Returns true
/// and fills `out` if the pair shows the exon-skip signature.
bool examine_pair(const bio::EstSet& ests, bio::EstId a, bio::EstId b,
                  bool b_rc, const SpliceParams& params,
                  SpliceCandidate& out);

}  // namespace estclust::analysis
