// EstSet: the input universe for clustering.
//
// Following §3.1, the set S = {s_0, ..., s_{2n-1}} contains each EST e_i and
// its reverse complement ē_i, because a gene may lie on either DNA strand.
// We use 0-based string ids (sid): sid 2i is e_i, sid 2i+1 is ē_i.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "bio/sequence.hpp"

namespace estclust::bio {

using EstId = std::uint32_t;     ///< index of an EST, 0..n-1
using StringId = std::uint32_t;  ///< index into S, 0..2n-1

/// Immutable collection of n ESTs plus materialized reverse complements.
class EstSet {
 public:
  EstSet() = default;
  explicit EstSet(std::vector<Sequence> ests);

  std::size_t num_ests() const { return ests_.size(); }        ///< n
  std::size_t num_strings() const { return 2 * ests_.size(); }  ///< 2n

  /// Total characters over all ESTs (N in the paper; excludes the
  /// materialized reverse complements).
  std::size_t total_est_chars() const { return total_chars_; }

  /// Total characters over S (2N).
  std::size_t total_string_chars() const { return 2 * total_chars_; }

  /// Average EST length l = N/n (0 when empty).
  double average_length() const;

  const Sequence& est(EstId i) const { return ests_[i]; }

  /// The string s_sid: forward EST for even sid, reverse complement for odd.
  std::string_view str(StringId sid) const;

  /// EST that string sid derives from.
  static EstId est_of(StringId sid) { return sid / 2; }

  /// True when sid refers to the reverse-complemented form.
  static bool is_rc(StringId sid) { return (sid & 1u) != 0; }

  /// sid of the opposite-orientation string of the same EST.
  static StringId mate(StringId sid) { return sid ^ 1u; }

  static StringId forward_sid(EstId i) { return 2 * i; }
  static StringId rc_sid(EstId i) { return 2 * i + 1; }

 private:
  std::vector<Sequence> ests_;
  std::vector<std::string> rc_;  // rc_[i] = reverse complement of est i
  std::size_t total_chars_ = 0;
};

}  // namespace estclust::bio
