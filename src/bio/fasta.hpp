// FASTA input/output for EST datasets.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "bio/sequence.hpp"

namespace estclust::bio {

/// Parses FASTA records from a stream. Multi-line sequences are joined;
/// bases are uppercased and validated. Throws CheckError on malformed input
/// (sequence data before the first header, or invalid characters).
std::vector<Sequence> read_fasta(std::istream& in);

/// Reads a FASTA file from disk. Throws CheckError if the file can't open.
std::vector<Sequence> read_fasta_file(const std::string& path);

/// Writes records with `width`-column wrapping (0 = single line).
void write_fasta(std::ostream& out, const std::vector<Sequence>& seqs,
                 std::size_t width = 70);

void write_fasta_file(const std::string& path,
                      const std::vector<Sequence>& seqs,
                      std::size_t width = 70);

}  // namespace estclust::bio
