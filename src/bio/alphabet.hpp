// DNA alphabet Σ = {A, C, G, T}.
//
// Codes are ordered A < C < G < T; code 4 is reserved by the pair-generation
// layer for λ (the null left-extension character of §3.2). Strand
// complementation follows the Watson-Crick pairing A<->T, C<->G.
#pragma once

#include <cstdint>

namespace estclust::bio {

inline constexpr int kSigma = 4;        ///< |Σ|
inline constexpr int kLambdaCode = 4;   ///< λ, the null character (§3.2)
inline constexpr int kNumLsetCodes = kSigma + 1;  ///< Σ ∪ {λ}

/// Maps a nucleotide character (case-insensitive) to its code 0..3;
/// returns -1 for any non-ACGT character.
constexpr int encode_base(char c) {
  switch (c) {
    case 'A':
    case 'a':
      return 0;
    case 'C':
    case 'c':
      return 1;
    case 'G':
    case 'g':
      return 2;
    case 'T':
    case 't':
      return 3;
    default:
      return -1;
  }
}

/// Inverse of encode_base for codes 0..3.
constexpr char decode_base(int code) {
  constexpr char table[4] = {'A', 'C', 'G', 'T'};
  return table[code & 3];
}

/// Watson-Crick complement of an uppercase base character.
constexpr char complement_base(char c) {
  switch (c) {
    case 'A':
    case 'a':
      return 'T';
    case 'C':
    case 'c':
      return 'G';
    case 'G':
    case 'g':
      return 'C';
    case 'T':
    case 't':
      return 'A';
    default:
      return c;
  }
}

constexpr bool is_valid_base(char c) { return encode_base(c) >= 0; }

}  // namespace estclust::bio
