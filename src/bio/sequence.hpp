// DNA sequence value type, reverse complementation and 2-bit packing.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace estclust::bio {

/// A named DNA sequence. Bases are stored uppercase; construction validates
/// the alphabet.
struct Sequence {
  std::string id;
  std::string bases;
};

/// Returns the reverse complement of `s` (uppercase ACGT in, uppercase out).
std::string reverse_complement(std::string_view s);

/// Uppercases and validates a raw string; throws CheckError on non-ACGT
/// characters (column/position included in the message).
std::string normalize_bases(std::string_view raw);

/// True iff every character is one of ACGTacgt.
bool all_valid_bases(std::string_view s);

/// Non-owning view over 2-bit-packed bases (32 per word, LSB-first). The
/// kernel-facing face of the packing: the SIMD alignment sweep consumes
/// sequences through this view, expanding codes into its lane buffers with
/// unpack_codes (word-at-a-time, 32 bases per shift chain).
class PackedView {
 public:
  PackedView() = default;
  PackedView(const std::uint64_t* words, std::size_t size)
      : words_(words), size_(size) {}

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Code 0..3 at position i.
  int code_at(std::size_t i) const {
    return static_cast<int>((words_[i / 32] >> ((i % 32) * 2)) & 3);
  }

  /// Expands the 2-bit codes into one byte per base (values 0..3).
  /// `dst` must have room for size() bytes.
  void unpack_codes(std::uint8_t* dst) const;

 private:
  const std::uint64_t* words_ = nullptr;
  std::size_t size_ = 0;
};

/// Packs ACGT characters into 2-bit words appended onto `words` (cleared
/// first). The scratch-vector form lets hot-path callers reuse one heap
/// allocation per arena instead of constructing a PackedSeq per call.
/// Returns a view over the packed contents (valid until `words` mutates).
PackedView pack_2bit(std::string_view bases, std::vector<std::uint64_t>& words);

/// Space-efficient 2-bit/base storage. Used by the GST layer's space
/// accounting and by tests that check the O(N) memory contract.
class PackedSeq {
 public:
  PackedSeq() = default;
  explicit PackedSeq(std::string_view bases);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Base character at position i (decoded).
  char at(std::size_t i) const;

  /// Code 0..3 at position i.
  int code_at(std::size_t i) const;

  /// Decode the whole sequence.
  std::string unpack() const;

  /// Kernel-facing view over the packed words.
  PackedView view() const { return PackedView(words_.data(), size_); }

  /// Bytes of heap storage used.
  std::size_t storage_bytes() const { return words_.capacity() * 8; }

 private:
  std::vector<std::uint64_t> words_;  // 32 bases per word
  std::size_t size_ = 0;
};

}  // namespace estclust::bio
