// DNA sequence value type, reverse complementation and 2-bit packing.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace estclust::bio {

/// A named DNA sequence. Bases are stored uppercase; construction validates
/// the alphabet.
struct Sequence {
  std::string id;
  std::string bases;
};

/// Returns the reverse complement of `s` (uppercase ACGT in, uppercase out).
std::string reverse_complement(std::string_view s);

/// Uppercases and validates a raw string; throws CheckError on non-ACGT
/// characters (column/position included in the message).
std::string normalize_bases(std::string_view raw);

/// True iff every character is one of ACGTacgt.
bool all_valid_bases(std::string_view s);

/// Space-efficient 2-bit/base storage. Used by the GST layer's space
/// accounting and by tests that check the O(N) memory contract.
class PackedSeq {
 public:
  PackedSeq() = default;
  explicit PackedSeq(std::string_view bases);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Base character at position i (decoded).
  char at(std::size_t i) const;

  /// Code 0..3 at position i.
  int code_at(std::size_t i) const;

  /// Decode the whole sequence.
  std::string unpack() const;

  /// Bytes of heap storage used.
  std::size_t storage_bytes() const { return words_.capacity() * 8; }

 private:
  std::vector<std::uint64_t> words_;  // 32 bases per word
  std::size_t size_ = 0;
};

}  // namespace estclust::bio
