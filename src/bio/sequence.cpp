#include "bio/sequence.hpp"

#include "bio/alphabet.hpp"
#include "util/check.hpp"

namespace estclust::bio {

std::string reverse_complement(std::string_view s) {
  std::string out;
  out.resize(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    out[i] = complement_base(s[s.size() - 1 - i]);
  }
  return out;
}

std::string normalize_bases(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    int code = encode_base(raw[i]);
    ESTCLUST_CHECK_MSG(code >= 0, "invalid base '" << raw[i]
                                                   << "' at position " << i);
    out.push_back(decode_base(code));
  }
  return out;
}

bool all_valid_bases(std::string_view s) {
  for (char c : s) {
    if (!is_valid_base(c)) return false;
  }
  return true;
}

PackedSeq::PackedSeq(std::string_view bases) : size_(bases.size()) {
  words_.resize((size_ + 31) / 32, 0);
  for (std::size_t i = 0; i < size_; ++i) {
    int code = encode_base(bases[i]);
    ESTCLUST_CHECK_MSG(code >= 0, "invalid base at " << i);
    words_[i / 32] |= static_cast<std::uint64_t>(code) << ((i % 32) * 2);
  }
}

char PackedSeq::at(std::size_t i) const { return decode_base(code_at(i)); }

int PackedSeq::code_at(std::size_t i) const {
  ESTCLUST_DCHECK(i < size_);
  return static_cast<int>((words_[i / 32] >> ((i % 32) * 2)) & 3);
}

std::string PackedSeq::unpack() const {
  std::string out;
  out.resize(size_);
  for (std::size_t i = 0; i < size_; ++i) out[i] = at(i);
  return out;
}

}  // namespace estclust::bio
