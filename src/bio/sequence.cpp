#include "bio/sequence.hpp"

#include <algorithm>
#include <cstring>

#include "bio/alphabet.hpp"
#include "util/check.hpp"

namespace estclust::bio {

std::string reverse_complement(std::string_view s) {
  std::string out;
  out.resize(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    out[i] = complement_base(s[s.size() - 1 - i]);
  }
  return out;
}

std::string normalize_bases(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    int code = encode_base(raw[i]);
    ESTCLUST_CHECK_MSG(code >= 0, "invalid base '" << raw[i]
                                                   << "' at position " << i);
    out.push_back(decode_base(code));
  }
  return out;
}

bool all_valid_bases(std::string_view s) {
  for (char c : s) {
    if (!is_valid_base(c)) return false;
  }
  return true;
}

namespace {

// Packed byte -> its four 2-bit codes as four output bytes, little-endian.
// One table lookup replaces a four-deep serial shift chain per byte; this
// sits on the per-alignment fixed cost of the SIMD kernels, where the
// shift-chain version was measurable against short reads.
struct UnpackTable {
  std::uint32_t quad[256];
  constexpr UnpackTable() : quad{} {
    for (unsigned b = 0; b < 256; ++b) {
      quad[b] = (b & 3u) | ((b >> 2) & 3u) << 8 | ((b >> 4) & 3u) << 16 |
                ((b >> 6) & 3u) << 24;
    }
  }
};
constexpr UnpackTable kUnpack;

}  // namespace

void PackedView::unpack_codes(std::uint8_t* dst) const {
  const std::size_t full_words = size_ / 32;
  std::size_t i = 0;
  for (std::size_t w = 0; w < full_words; ++w) {
    const std::uint64_t word = words_[w];
    for (int q = 0; q < 8; ++q) {
      const std::uint32_t four =
          kUnpack.quad[(word >> (q * 8)) & 0xFF];
      std::memcpy(dst + i, &four, 4);
      i += 4;
    }
  }
  if (i < size_) {
    std::uint64_t word = words_[full_words];
    word >>= (i % 32) * 2;
    for (; i < size_; ++i) {
      dst[i] = static_cast<std::uint8_t>(word & 3);
      word >>= 2;
    }
  }
}

PackedView pack_2bit(std::string_view bases, std::vector<std::uint64_t>& words) {
  words.resize((bases.size() + 31) / 32);
  // Accumulate each word in a register and store it once: the obvious
  // `words[i / 32] |= ...` form re-reads and re-writes the vector element
  // per base, which shows up on the SIMD kernels' per-alignment setup.
  for (std::size_t w = 0; w < words.size(); ++w) {
    const std::size_t base = w * 32;
    const std::size_t count = std::min<std::size_t>(32, bases.size() - base);
    std::uint64_t acc = 0;
    for (std::size_t l = 0; l < count; ++l) {
      const int code = encode_base(bases[base + l]);
      ESTCLUST_CHECK_MSG(code >= 0, "invalid base at " << (base + l));
      acc |= static_cast<std::uint64_t>(code) << (l * 2);
    }
    words[w] = acc;
  }
  return PackedView(words.data(), bases.size());
}

PackedSeq::PackedSeq(std::string_view bases) : size_(bases.size()) {
  words_.resize((size_ + 31) / 32, 0);
  for (std::size_t i = 0; i < size_; ++i) {
    int code = encode_base(bases[i]);
    ESTCLUST_CHECK_MSG(code >= 0, "invalid base at " << i);
    words_[i / 32] |= static_cast<std::uint64_t>(code) << ((i % 32) * 2);
  }
}

char PackedSeq::at(std::size_t i) const { return decode_base(code_at(i)); }

int PackedSeq::code_at(std::size_t i) const {
  ESTCLUST_DCHECK(i < size_);
  return static_cast<int>((words_[i / 32] >> ((i % 32) * 2)) & 3);
}

std::string PackedSeq::unpack() const {
  std::string out;
  out.resize(size_);
  for (std::size_t i = 0; i < size_; ++i) out[i] = at(i);
  return out;
}

}  // namespace estclust::bio
