#include "bio/dataset.hpp"

#include "util/check.hpp"

namespace estclust::bio {

EstSet::EstSet(std::vector<Sequence> ests) : ests_(std::move(ests)) {
  rc_.reserve(ests_.size());
  for (auto& e : ests_) {
    ESTCLUST_CHECK_MSG(!e.bases.empty(), "empty EST '" << e.id << "'");
    ESTCLUST_CHECK_MSG(all_valid_bases(e.bases),
                       "EST '" << e.id << "' has non-ACGT characters");
    total_chars_ += e.bases.size();
    rc_.push_back(reverse_complement(e.bases));
  }
}

double EstSet::average_length() const {
  if (ests_.empty()) return 0.0;
  return static_cast<double>(total_chars_) /
         static_cast<double>(ests_.size());
}

std::string_view EstSet::str(StringId sid) const {
  ESTCLUST_DCHECK(sid < num_strings());
  EstId i = est_of(sid);
  return is_rc(sid) ? std::string_view(rc_[i])
                    : std::string_view(ests_[i].bases);
}

}  // namespace estclust::bio
