#include "bio/fasta.hpp"

#include <fstream>
#include <istream>
#include <ostream>

#include "util/check.hpp"

namespace estclust::bio {

std::vector<Sequence> read_fasta(std::istream& in) {
  std::vector<Sequence> out;
  std::string line;
  Sequence current;
  bool have_record = false;
  auto flush = [&] {
    if (have_record) {
      current.bases = normalize_bases(current.bases);
      out.push_back(std::move(current));
      current = Sequence{};
    }
  };
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line[0] == '>') {
      flush();
      have_record = true;
      // Header is everything after '>' up to the first whitespace.
      std::size_t end = line.find_first_of(" \t", 1);
      current.id = line.substr(1, end == std::string::npos ? end : end - 1);
    } else {
      ESTCLUST_CHECK_MSG(have_record,
                         "FASTA: sequence data before header at line "
                             << lineno);
      current.bases += line;
    }
  }
  flush();
  return out;
}

std::vector<Sequence> read_fasta_file(const std::string& path) {
  std::ifstream in(path);
  ESTCLUST_CHECK_MSG(in.good(), "cannot open FASTA file " << path);
  return read_fasta(in);
}

void write_fasta(std::ostream& out, const std::vector<Sequence>& seqs,
                 std::size_t width) {
  for (const auto& s : seqs) {
    out << '>' << s.id << '\n';
    if (width == 0) {
      out << s.bases << '\n';
    } else {
      for (std::size_t i = 0; i < s.bases.size(); i += width) {
        out << s.bases.substr(i, width) << '\n';
      }
      if (s.bases.empty()) out << '\n';
    }
  }
}

void write_fasta_file(const std::string& path,
                      const std::vector<Sequence>& seqs, std::size_t width) {
  std::ofstream out(path);
  ESTCLUST_CHECK_MSG(out.good(), "cannot open FASTA file for write " << path);
  write_fasta(out, seqs, width);
}

}  // namespace estclust::bio
