#include "obs/critpath.hpp"

#include <algorithm>
#include <cstddef>
#include <unordered_map>
#include <utility>

#include "util/check.hpp"

namespace estclust::obs {

namespace {

/// (vtime, innermost span name after this point); nullptr = no open span.
using SpanMark = std::pair<double, const char*>;

/// Appends the pieces of the local interval [a, b) on `rank`, split at
/// every innermost-span change, to `back` in *reverse* time order (the
/// backward walk builds the path newest-first).
void emit_local(int rank, double a, double b,
                const std::vector<SpanMark>& marks,
                std::vector<PathSegment>& back) {
  if (b <= a) return;
  // State at time t is the last mark with vtime <= t.
  auto it = std::upper_bound(
      marks.begin(), marks.end(), a,
      [](double t, const SpanMark& m) { return t < m.first; });
  std::size_t idx = static_cast<std::size_t>(it - marks.begin());
  const char* op = idx == 0 ? nullptr : marks[idx - 1].second;

  std::vector<PathSegment> pieces;
  double lo = a;
  for (std::size_t j = idx; j < marks.size() && marks[j].first < b; ++j) {
    if (marks[j].first > lo) {
      PathSegment s;
      s.rank = rank;
      s.begin = lo;
      s.end = marks[j].first;
      s.op = op ? op : "(untracked)";
      pieces.push_back(s);
      lo = marks[j].first;
    }
    op = marks[j].second;
  }
  if (b > lo) {
    PathSegment s;
    s.rank = rank;
    s.begin = lo;
    s.end = b;
    s.op = op ? op : "(untracked)";
    pieces.push_back(s);
  }
  for (auto p = pieces.rbegin(); p != pieces.rend(); ++p) {
    back.push_back(*p);
  }
}

}  // namespace

CriticalPath compute_critical_path(const TraceRecorder& rec,
                                   const std::vector<RankTime>& rank_times) {
  const int p = rec.nranks();
  ESTCLUST_CHECK_MSG(static_cast<int>(rank_times.size()) == p,
                     "rank_times size does not match the recorder");
  CriticalPath out;
  for (const auto& rt : rank_times) {
    out.makespan = std::max(out.makespan, rt.total);
  }
  if (out.makespan <= 0.0) return out;

  // Cross-rank edges: flow id -> (sender rank, event index). Lookup only —
  // iteration order of this map never influences the output.
  std::unordered_map<std::uint64_t, std::pair<int, std::size_t>> flow_out_at;
  // Sequential structure: per-rank innermost-span timeline.
  std::vector<std::vector<SpanMark>> marks(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    const auto& events = rec.rank(r).events();
    std::vector<const char*> stack;
    for (std::size_t i = 0; i < events.size(); ++i) {
      const TraceEvent& e = events[i];
      if (e.kind == EventKind::kFlowOut) {
        flow_out_at.emplace(e.id, std::make_pair(r, i));
      } else if (e.kind == EventKind::kBegin) {
        stack.push_back(e.name);
        marks[r].push_back({e.vtime, e.name});
      } else if (e.kind == EventKind::kEnd) {
        ESTCLUST_CHECK_MSG(!stack.empty(), "unmatched span end on rank "
                                               << r);
        stack.pop_back();
        marks[r].push_back({e.vtime, stack.empty() ? nullptr : stack.back()});
      }
    }
  }

  // Start on the rank whose clock realizes the makespan (smallest rank on
  // an exact tie, for determinism).
  int r = 0;
  for (int i = 0; i < p; ++i) {
    if (rank_times[i].total == out.makespan) {
      r = i;
      break;
    }
  }

  // Backward walk. Each rank keeps a cursor that only ever moves left
  // (revisits happen at strictly earlier times), so the whole walk is
  // linear in the event count.
  std::vector<std::ptrdiff_t> cursor(static_cast<std::size_t>(p));
  for (int i = 0; i < p; ++i) {
    cursor[i] =
        static_cast<std::ptrdiff_t>(rec.rank(i).events().size()) - 1;
  }

  std::vector<PathSegment> back;
  double t_cur = out.makespan;
  for (;;) {
    const auto& events = rec.rank(r).events();
    std::ptrdiff_t i = cursor[r];
    while (i >= 0 &&
           !(events[static_cast<std::size_t>(i)].kind == EventKind::kFlowIn &&
             events[static_cast<std::size_t>(i)].wait > 0.0 &&
             events[static_cast<std::size_t>(i)].vtime <= t_cur)) {
      --i;
    }
    if (i < 0) {
      // No binding receive before t_cur: the rank's time back to zero is
      // locally determined. The path starts here.
      cursor[r] = i;
      emit_local(r, 0.0, t_cur, marks[r], back);
      break;
    }
    const TraceEvent& fin = events[static_cast<std::size_t>(i)];
    emit_local(r, fin.vtime, t_cur, marks[r], back);
    auto it = flow_out_at.find(fin.id);
    ESTCLUST_CHECK_MSG(it != flow_out_at.end(),
                       "flow-in without a matching flow-out: id " << fin.id);
    const int sender = it->second.first;
    const std::size_t send_idx = it->second.second;
    const TraceEvent& fout = rec.rank(sender).events()[send_idx];
    ESTCLUST_CHECK_MSG(fout.vtime < fin.vtime,
                       "message delivered before it was sent: id " << fin.id);
    PathSegment wire;
    wire.rank = r;
    wire.src = sender;
    wire.begin = fout.vtime;
    wire.end = fin.vtime;
    wire.wire = true;
    wire.op = "wire";
    wire.tag = fin.tag;
    wire.flow_id = fin.id;
    back.push_back(wire);
    cursor[r] = i - 1;
    r = sender;
    cursor[r] = std::min(cursor[r],
                         static_cast<std::ptrdiff_t>(send_idx) - 1);
    t_cur = fout.vtime;
  }

  std::reverse(back.begin(), back.end());
  out.segments = std::move(back);
  return out;
}

std::vector<IdleInterval> collect_idle_intervals(const TraceRecorder& rec,
                                                 double recv_overhead) {
  std::vector<IdleInterval> out;
  for (int r = 0; r < rec.nranks(); ++r) {
    for (const auto& e : rec.rank(r).events()) {
      if (e.kind != EventKind::kFlowIn || e.wait <= 0.0) continue;
      IdleInterval iv;
      iv.rank = r;
      iv.src = e.peer;
      iv.end = e.vtime - recv_overhead;
      iv.begin = iv.end - e.wait;
      iv.tag = e.tag;
      out.push_back(iv);
    }
  }
  return out;
}

}  // namespace estclust::obs
