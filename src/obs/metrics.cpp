#include "obs/metrics.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/check.hpp"
#include "util/table.hpp"

namespace estclust::obs {

Counter& MetricsRegistry::counter(const std::string& name) {
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name, MergeOp op) {
  auto [it, inserted] = gauges_.try_emplace(name);
  if (inserted) {
    it->second.op_ = op;
  } else {
    ESTCLUST_CHECK_MSG(it->second.op_ == op,
                       "gauge '" << name << "' re-registered with a "
                                 << "different MergeOp");
  }
  it->second.set_once_ = true;
  return it->second;
}

RunningStats& MetricsRegistry::stats(const std::string& name) {
  return stats_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name, double lo,
                                      double hi, std::size_t bins) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, Histogram(lo, hi, bins)).first;
  }
  return it->second;
}

bool MetricsRegistry::has_counter(const std::string& name) const {
  return counters_.count(name) > 0;
}

bool MetricsRegistry::has_gauge(const std::string& name) const {
  return gauges_.count(name) > 0;
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

double MetricsRegistry::gauge_value(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second.value();
}

const RunningStats* MetricsRegistry::find_stats(
    const std::string& name) const {
  auto it = stats_.find(name);
  return it == stats_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) {
    counters_[name].add(c.value());
  }
  for (const auto& [name, g] : other.gauges_) {
    if (!g.set_once_) continue;
    auto [it, inserted] = gauges_.try_emplace(name);
    Gauge& mine = it->second;
    if (inserted || !mine.set_once_) {
      mine = g;
      continue;
    }
    ESTCLUST_CHECK_MSG(mine.op_ == g.op_,
                       "gauge '" << name << "' merged with different ops");
    switch (mine.op_) {
      case MergeOp::kSum:
        mine.v_ += g.v_;
        break;
      case MergeOp::kMax:
        mine.v_ = std::max(mine.v_, g.v_);
        break;
      case MergeOp::kMin:
        mine.v_ = std::min(mine.v_, g.v_);
        break;
    }
  }
  for (const auto& [name, s] : other.stats_) {
    stats_[name].merge(s);
  }
  for (const auto& [name, h] : other.histograms_) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      histograms_.emplace(name, h);
    } else {
      it->second.merge(h);
    }
  }
}

namespace {

std::string fmt_double(double v) {
  std::ostringstream os;
  os << std::setprecision(9) << v;
  return os.str();
}

}  // namespace

void MetricsRegistry::write_report(std::ostream& os) const {
  TablePrinter t({"metric", "value"});
  for (const auto& [name, c] : counters_) {
    t.add_row({name, TablePrinter::fmt(c.value())});
  }
  for (const auto& [name, g] : gauges_) {
    t.add_row({name, fmt_double(g.value())});
  }
  for (const auto& [name, s] : stats_) {
    t.add_row({name + ".count", TablePrinter::fmt(
                                    static_cast<std::uint64_t>(s.count()))});
    t.add_row({name + ".mean", fmt_double(s.mean())});
    t.add_row({name + ".max", fmt_double(s.max())});
  }
  for (const auto& [name, h] : histograms_) {
    t.add_row({name + ".total",
               TablePrinter::fmt(static_cast<std::uint64_t>(h.total()))});
    t.add_row({name + ".p50", fmt_double(h.p50())});
    t.add_row({name + ".p95", fmt_double(h.p95())});
    t.add_row({name + ".p99", fmt_double(h.p99())});
  }
  t.print(os);
}

void MetricsRegistry::write_json(std::ostream& os) const {
  os << '{';
  bool first = true;
  auto key = [&](const std::string& name) -> std::ostream& {
    if (!first) os << ',';
    first = false;
    os << '"' << name << "\":";
    return os;
  };
  for (const auto& [name, c] : counters_) key(name) << c.value();
  for (const auto& [name, g] : gauges_) key(name) << fmt_double(g.value());
  for (const auto& [name, s] : stats_) {
    key(name + ".count") << s.count();
    key(name + ".mean") << fmt_double(s.mean());
    key(name + ".max") << fmt_double(s.max());
  }
  for (const auto& [name, h] : histograms_) {
    key(name + ".total") << h.total();
    key(name + ".p50") << fmt_double(h.p50());
    key(name + ".p95") << fmt_double(h.p95());
    key(name + ".p99") << fmt_double(h.p99());
  }
  os << "}\n";
}

}  // namespace estclust::obs
