// Causal run graph and exact virtual-time critical path.
//
// The trace stream already contains a complete causal record of a run:
// per-rank events in clock order give the sequential edges, and the
// flow-out/flow-in pairs of every point-to-point message give the
// cross-rank edges (collectives are built from point-to-point sends, so
// they need no special casing). Because the only operation that ever
// *waits* in the simulator is a receive (VirtualClock::sync_to is called
// exclusively from Communicator::finish_recv), the critical path has a
// simple backward characterization: walk back from the rank that ends at
// the makespan; between binding receives the rank's time is locally
// determined, and at a binding receive (flow-in with wait > 0) the time
// was set by the sender's flow-out plus the wire cost — jump there and
// continue. The resulting segments tile [0, makespan] contiguously, so
// the path length equals the makespan *bitwise*, not just within
// floating-point tolerance.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/export.hpp"
#include "obs/trace.hpp"

namespace estclust::obs {

/// One interval of the critical path. Local segments carry the innermost
/// span name active over the interval; wire segments cover a message's
/// transit (network latency + bandwidth + any modeled delay + the
/// receiver's recv overhead) and carry the message tag.
struct PathSegment {
  int rank = -1;       ///< receiver rank (the rank whose clock the
                       ///< interval ends on)
  int src = -1;        ///< sender rank for wire segments, else -1
  double begin = 0.0;  ///< virtual seconds
  double end = 0.0;
  bool wire = false;
  const char* op = "";  ///< span name / "(untracked)" / "wire"
  int tag = -1;         ///< message tag for wire segments
  std::uint64_t flow_id = 0;

  double duration() const { return end - begin; }
};

struct CriticalPath {
  double makespan = 0.0;
  /// Forward time order; contiguous: segments[i].end ==
  /// segments[i+1].begin exactly, segments.front().begin == 0 and
  /// segments.back().end == makespan.
  std::vector<PathSegment> segments;

  /// Telescopes to the makespan exactly (last end minus first begin) —
  /// never a rounding-prone sum of durations.
  double length() const {
    return segments.empty() ? 0.0
                            : segments.back().end - segments.front().begin;
  }
};

/// One interval a rank spent waiting (the span sync_to skipped at a
/// receive), ending at the message's arrival. Everything outside these
/// intervals and before the rank's final clock is active time.
struct IdleInterval {
  int rank = -1;
  int src = -1;  ///< sender of the message that ended the wait
  double begin = 0.0;
  double end = 0.0;
  int tag = -1;
};

/// Computes the exact critical path of a traced run. `rank_times` is the
/// runtime's per-rank busy/comm/idle/total split (indexed by rank, same
/// count as the recorder); the makespan is the max total. Requires
/// message-flow tracing (enable_tracing(true)); traces from faulted runs
/// work too — undelivered flow-outs are simply never binding.
/// `recv_overhead` shifts the arrival estimate of wire segments; pass the
/// cost model's value for exact boundaries or 0 to fold the overhead into
/// the wire.
CriticalPath compute_critical_path(const TraceRecorder& rec,
                                   const std::vector<RankTime>& rank_times);

/// All waiting intervals of every rank, in (rank, time) order. `end` is
/// the message arrival (flow-in vtime minus `recv_overhead`); the sum of
/// durations per rank reproduces the clock's idle split up to fp rounding.
std::vector<IdleInterval> collect_idle_intervals(const TraceRecorder& rec,
                                                 double recv_overhead);

}  // namespace estclust::obs
