#include "obs/profile.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "util/check.hpp"
#include "util/table.hpp"

namespace estclust::obs {

namespace {

/// Round-trip-exact double formatting: the reader recovers the same bits,
/// and identical doubles always render to identical bytes.
std::string fmt_full(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string fmt_secs(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Inclusive per-name span sums on one rank (the rank's own view, unlike
/// aggregate_phases' cross-rank one).
std::map<std::string, double> rank_span_sums(const TraceRecorder& rec,
                                             int rank) {
  std::map<std::string, double> sums;
  std::vector<const TraceEvent*> stack;
  for (const auto& e : rec.rank(rank).events()) {
    if (e.kind == EventKind::kBegin) {
      stack.push_back(&e);
    } else if (e.kind == EventKind::kEnd) {
      ESTCLUST_CHECK_MSG(!stack.empty(),
                         "unmatched span end on rank " << rank);
      const TraceEvent* b = stack.back();
      stack.pop_back();
      sums[b->name] += e.vtime - b->vtime;
    }
  }
  return sums;
}

}  // namespace

std::string tag_label(int tag, const ProfileOptions& opts) {
  if (tag < 0) return "untagged";
  if (tag >= opts.internal_tag_base) return "collective";
  auto it = opts.tag_names.find(tag);
  if (it != opts.tag_names.end()) return it->second;
  return "tag" + std::to_string(tag);
}

Profile build_profile(const TraceRecorder& rec,
                      const std::vector<RankTime>& rank_times,
                      const ProfileOptions& opts) {
  Profile prof;
  prof.ranks = rec.nranks();
  prof.path = compute_critical_path(rec, rank_times);
  prof.makespan = prof.path.makespan;

  // Critical-path attribution by operation.
  std::map<std::string, std::pair<double, std::uint64_t>> by_op;
  for (const auto& s : prof.path.segments) {
    const std::string op =
        s.wire ? "wire:" + tag_label(s.tag, opts) : std::string(s.op);
    auto& slot = by_op[op];
    slot.first += s.duration();
    ++slot.second;
  }
  for (const auto& [op, v] : by_op) {
    prof.by_op.push_back({op, v.first, v.second});
  }
  std::sort(prof.by_op.begin(), prof.by_op.end(),
            [](const ProfileOpShare& a, const ProfileOpShare& b) {
              if (a.vtime != b.vtime) return a.vtime > b.vtime;
              return a.op < b.op;
            });

  // Per-rank slack against the makespan. slack = makespan - active, so
  // active + slack telescopes to the makespan exactly per rank.
  for (int r = 0; r < prof.ranks; ++r) {
    const RankTime& t = rank_times[static_cast<std::size_t>(r)];
    ProfileRankRow row;
    row.rank = r;
    row.busy = t.busy;
    row.comm = t.comm;
    row.idle = t.idle;
    row.total = t.total;
    row.slack = prof.makespan - (t.busy + t.comm);
    row.tail = prof.makespan - t.total;
    prof.rank_rows.push_back(row);
  }

  // Wait-time attribution by tag (collectives fold into one bucket).
  const auto idles = collect_idle_intervals(rec, opts.recv_overhead);
  std::map<int, std::pair<std::uint64_t, double>> by_tag;
  for (const auto& iv : idles) {
    const int key = iv.tag >= opts.internal_tag_base ? opts.internal_tag_base
                                                     : iv.tag;
    auto& slot = by_tag[key];
    ++slot.first;
    slot.second += iv.end - iv.begin;
  }
  for (const auto& [tag, v] : by_tag) {
    prof.wait_by_tag.push_back({tag, tag_label(tag, opts), v.first,
                                v.second});
  }

  // Per-rank utilization timelines: start every bucket fully active over
  // [0, final clock], then carve out the waiting intervals and the tail.
  const int k = std::max(1, opts.timeline_buckets);
  if (prof.makespan > 0.0) {
    const double width = prof.makespan / static_cast<double>(k);
    prof.utilization.assign(static_cast<std::size_t>(prof.ranks),
                            std::vector<double>(static_cast<std::size_t>(k),
                                                0.0));
    auto carve = [&](std::vector<double>& active, double lo, double hi,
                     double sign) {
      lo = std::max(0.0, lo);
      hi = std::min(prof.makespan, hi);
      if (hi <= lo) return;
      const int b0 = std::min(k - 1, static_cast<int>(lo / width));
      const int b1 = std::min(k - 1, static_cast<int>(hi / width));
      for (int b = b0; b <= b1; ++b) {
        const double blo = width * static_cast<double>(b);
        const double bhi = blo + width;
        const double overlap = std::min(hi, bhi) - std::max(lo, blo);
        if (overlap > 0.0) active[static_cast<std::size_t>(b)] += sign *
                                                                  overlap;
      }
    };
    for (int r = 0; r < prof.ranks; ++r) {
      auto& active = prof.utilization[static_cast<std::size_t>(r)];
      carve(active, 0.0, rank_times[static_cast<std::size_t>(r)].total, 1.0);
    }
    for (const auto& iv : idles) {
      carve(prof.utilization[static_cast<std::size_t>(iv.rank)], iv.begin,
            iv.end, -1.0);
    }
    for (auto& row : prof.utilization) {
      for (auto& v : row) {
        v = std::min(1.0, std::max(0.0, v / width));
      }
    }
  }

  // Fig 8 analog: master utilization from rank 0's master_* spans.
  if (prof.ranks > 0) {
    for (const auto& [name, sum] : rank_span_sums(rec, 0)) {
      if (name.rfind("master", 0) == 0) prof.master_span_vtime += sum;
    }
    if (prof.makespan > 0.0) {
      prof.master_utilization = prof.master_span_vtime / prof.makespan;
    }
  }
  return prof;
}

void write_profile_json(std::ostream& os, const Profile& prof) {
  os << "{\"schema\":\"estclust-profile-v1\"";
  os << ",\"ranks\":" << prof.ranks;
  os << ",\"makespan\":" << fmt_full(prof.makespan);
  os << ",\"critical_path\":{\"length\":" << fmt_full(prof.path.length());
  os << ",\"segments\":[";
  for (std::size_t i = 0; i < prof.path.segments.size(); ++i) {
    const PathSegment& s = prof.path.segments[i];
    if (i) os << ',';
    os << "{\"rank\":" << s.rank << ",\"kind\":\""
       << (s.wire ? "wire" : "local") << "\",\"op\":\""
       << json_escape(s.op) << '"';
    if (s.wire) os << ",\"src\":" << s.src << ",\"tag\":" << s.tag;
    os << ",\"begin\":" << fmt_full(s.begin) << ",\"end\":"
       << fmt_full(s.end) << '}';
  }
  os << "]}";
  os << ",\"path_by_op\":[";
  for (std::size_t i = 0; i < prof.by_op.size(); ++i) {
    const ProfileOpShare& o = prof.by_op[i];
    if (i) os << ',';
    os << "{\"op\":\"" << json_escape(o.op) << "\",\"vtime\":"
       << fmt_full(o.vtime) << ",\"segments\":" << o.segments << '}';
  }
  os << ']';
  os << ",\"ranks_detail\":[";
  for (std::size_t i = 0; i < prof.rank_rows.size(); ++i) {
    const ProfileRankRow& r = prof.rank_rows[i];
    if (i) os << ',';
    os << "{\"rank\":" << r.rank << ",\"busy\":" << fmt_full(r.busy)
       << ",\"comm\":" << fmt_full(r.comm) << ",\"idle\":"
       << fmt_full(r.idle) << ",\"total\":" << fmt_full(r.total)
       << ",\"slack\":" << fmt_full(r.slack) << ",\"tail\":"
       << fmt_full(r.tail) << '}';
  }
  os << ']';
  os << ",\"wait_by_tag\":[";
  for (std::size_t i = 0; i < prof.wait_by_tag.size(); ++i) {
    const ProfileTagWait& w = prof.wait_by_tag[i];
    if (i) os << ',';
    os << "{\"tag\":" << w.tag << ",\"name\":\"" << json_escape(w.name)
       << "\",\"count\":" << w.count << ",\"vtime\":" << fmt_full(w.vtime)
       << '}';
  }
  os << ']';
  os << ",\"utilization\":{\"buckets\":"
     << (prof.utilization.empty() ? 0
                                  : static_cast<int>(
                                        prof.utilization.front().size()))
     << ",\"per_rank\":[";
  for (std::size_t r = 0; r < prof.utilization.size(); ++r) {
    if (r) os << ',';
    os << '[';
    for (std::size_t b = 0; b < prof.utilization[r].size(); ++b) {
      if (b) os << ',';
      os << fmt_full(prof.utilization[r][b]);
    }
    os << ']';
  }
  os << "]}";
  os << ",\"master_span_vtime\":" << fmt_full(prof.master_span_vtime);
  os << ",\"master_utilization\":" << fmt_full(prof.master_utilization);
  os << "}\n";
}

void write_profile_report(std::ostream& os, const Profile& prof,
                          const ProfileOptions& opts) {
  const double denom = std::max(prof.makespan, 1e-12);
  os << "=== profile: critical path (" << fmt_secs(prof.makespan)
     << " virtual s makespan, " << prof.ranks << " ranks, "
     << prof.path.segments.size() << " segments) ===\n";
  TablePrinter ops({"operation", "vtime (s)", "% of makespan", "segments"});
  const std::size_t top =
      std::min<std::size_t>(prof.by_op.size(),
                            static_cast<std::size_t>(std::max(1,
                                                              opts.top_k)));
  for (std::size_t i = 0; i < top; ++i) {
    const ProfileOpShare& o = prof.by_op[i];
    ops.add_row({o.op, fmt_secs(o.vtime),
                 TablePrinter::fmt(100.0 * o.vtime / denom, 2),
                 TablePrinter::fmt(o.segments)});
  }
  ops.print(os);
  if (prof.by_op.size() > top) {
    double rest = 0.0;
    for (std::size_t i = top; i < prof.by_op.size(); ++i) {
      rest += prof.by_op[i].vtime;
    }
    os << "(+" << prof.by_op.size() - top << " more operations, "
       << fmt_secs(rest) << " s)\n";
  }

  os << "\n=== profile: per-rank slack against the makespan ===\n";
  TablePrinter ranks({"rank", "busy (s)", "comm (s)", "idle (s)",
                      "slack (s)", "tail (s)", "util %"});
  for (const auto& r : prof.rank_rows) {
    ranks.add_row({TablePrinter::fmt(static_cast<std::uint64_t>(r.rank)),
                   fmt_secs(r.busy), fmt_secs(r.comm), fmt_secs(r.idle),
                   fmt_secs(r.slack), fmt_secs(r.tail),
                   TablePrinter::fmt(100.0 * (r.busy + r.comm) / denom, 2)});
  }
  ranks.print(os);

  if (!prof.utilization.empty()) {
    os << "\n=== profile: utilization timeline (0.."
       << fmt_secs(prof.makespan) << " s, '#'=busy ' '=waiting) ===\n";
    static const char kLevels[] = {' ', '.', '-', '+', '#'};
    for (std::size_t r = 0; r < prof.utilization.size(); ++r) {
      os << "rank " << r << " |";
      for (double f : prof.utilization[r]) {
        const int level =
            std::min(4, static_cast<int>(f * 5.0));
        os << kLevels[level];
      }
      os << "|\n";
    }
  }

  if (!prof.wait_by_tag.empty()) {
    os << "\n=== profile: wait time by message tag ===\n";
    TablePrinter waits({"tag", "name", "waits", "vtime (s)",
                        "% of makespan"});
    for (const auto& w : prof.wait_by_tag) {
      waits.add_row({std::to_string(w.tag), w.name,
                     TablePrinter::fmt(w.count), fmt_secs(w.vtime),
                     TablePrinter::fmt(100.0 * w.vtime / denom, 2)});
    }
    waits.print(os);
  }

  if (prof.ranks > 1) {
    os << "\nmaster utilization (rank 0 master_* spans): "
       << TablePrinter::fmt(100.0 * prof.master_utilization, 3) << "% of "
       << fmt_secs(prof.makespan) << " virtual s\n";
  }
}

}  // namespace estclust::obs
