// Run profile: critical-path attribution, per-rank slack, wait-by-tag
// and utilization timelines, assembled from one traced run.
//
// A Profile is pure post-processing — building one reads the finished
// trace and the runtime's clock splits and never touches the run itself,
// so a profiled run is bit-identical to a plain run by construction. The
// JSON writer formats every double with %.17g (round-trip exact) and
// holds no wall-clock data, so the file is byte-identical across reruns
// of the same seeded input.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "obs/critpath.hpp"

namespace estclust::obs {

struct ProfileOptions {
  /// Protocol names for wire tags ("REPORT", "ASSIGN", ...) — supplied by
  /// the caller so obs stays independent of pace. Unlisted user tags
  /// render as "tag<k>".
  std::map<int, std::string> tag_names;
  /// Tags at or above this value are runtime-internal (collectives); they
  /// fold into one "collective" attribution bucket.
  int internal_tag_base = 1 << 24;
  /// The cost model's receiver-side overhead: shifts idle intervals from
  /// the flow-in timestamp back to the true arrival. 0 is safe (the
  /// overhead then counts toward the wire).
  double recv_overhead = 0.0;
  int top_k = 10;            ///< critical-path rows in the report
  int timeline_buckets = 60; ///< utilization timeline resolution
};

/// Per-rank accounting against the makespan. slack is defined as
/// makespan - (busy + comm), so busy-or-communicating time plus slack
/// sums to the makespan *exactly* per rank; it decomposes (to fp
/// rounding) into measured waiting (idle) plus the tail gap between the
/// rank's final clock and the makespan.
struct ProfileRankRow {
  int rank = 0;
  double busy = 0.0;
  double comm = 0.0;
  double idle = 0.0;
  double total = 0.0;
  double slack = 0.0;
  double tail = 0.0;
};

/// Critical-path virtual time attributed to one operation (a span name,
/// "(untracked)", or "wire:<TAG>").
struct ProfileOpShare {
  std::string op;
  double vtime = 0.0;
  std::uint64_t segments = 0;
};

/// Waiting time attributed to the message tag whose arrival ended it.
struct ProfileTagWait {
  int tag = 0;  ///< wire tag; internal_tag_base stands for all collectives
  std::string name;
  std::uint64_t count = 0;
  double vtime = 0.0;
};

struct Profile {
  int ranks = 0;
  double makespan = 0.0;
  CriticalPath path;
  std::vector<ProfileOpShare> by_op;        ///< desc vtime, ties by name
  std::vector<ProfileRankRow> rank_rows;    ///< indexed by rank
  std::vector<ProfileTagWait> wait_by_tag;  ///< ascending tag
  /// Active (busy + comm) fraction per timeline bucket, per rank.
  std::vector<std::vector<double>> utilization;
  /// Inclusive vtime of rank 0's "master*" spans (genuine protocol
  /// processing — the spans never cover a blocking receive), and its
  /// fraction of the makespan: the Fig 8 master-utilization measure,
  /// computed from traces.
  double master_span_vtime = 0.0;
  double master_utilization = 0.0;
};

/// Display name for a wire tag under the options' naming scheme.
std::string tag_label(int tag, const ProfileOptions& opts);

/// Builds the full profile of a traced run. Requires message-flow tracing;
/// `rank_times` is Runtime::rank_times().
Profile build_profile(const TraceRecorder& rec,
                      const std::vector<RankTime>& rank_times,
                      const ProfileOptions& opts = {});

/// Deterministic profile JSON (schema "estclust-profile-v1").
void write_profile_json(std::ostream& os, const Profile& prof);

/// Human-readable report: top-k critical-path operations, per-rank slack
/// table, utilization timelines, wait-by-tag attribution.
void write_profile_report(std::ostream& os, const Profile& prof,
                          const ProfileOptions& opts = {});

}  // namespace estclust::obs
