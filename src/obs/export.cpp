#include "obs/export.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "util/check.hpp"
#include "util/table.hpp"

namespace estclust::obs {

namespace {

/// Virtual seconds -> microsecond timeline value with fixed formatting so
/// traces diff cleanly across runs.
std::string fmt_us(double vtime_seconds) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", vtime_seconds * 1e6);
  return buf;
}

std::string fmt_secs(double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", seconds);
  return buf;
}

}  // namespace

void write_chrome_trace(std::ostream& os, const TraceRecorder& rec,
                        const ChromeTraceOptions& opts) {
  rec.validate();
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  auto emit = [&](const std::string& line) {
    if (!first) os << ",\n";
    first = false;
    os << line;
  };

  emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
       "\"args\":{\"name\":\"estclust\"}}");
  for (int r = 0; r < rec.nranks(); ++r) {
    std::string role = r == 0 && rec.nranks() > 1 ? " (master)" : "";
    emit("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" +
         std::to_string(r) + ",\"args\":{\"name\":\"rank " +
         std::to_string(r) + role + "\"}}");
  }

  for (int r = 0; r < rec.nranks(); ++r) {
    const std::string tid = std::to_string(r);
    for (const auto& e : rec.rank(r).events()) {
      std::string line = "{";
      switch (e.kind) {
        case EventKind::kBegin:
          line += "\"ph\":\"B\",\"name\":\"" + std::string(e.name) +
                  "\",\"cat\":\"" + std::string(e.category ? e.category : "")
                  + "\"";
          break;
        case EventKind::kEnd:
          line += "\"ph\":\"E\",\"name\":\"" + std::string(e.name) + "\"";
          break;
        case EventKind::kInstant:
          line += "\"ph\":\"i\",\"s\":\"t\",\"name\":\"" +
                  std::string(e.name) + "\",\"cat\":\"" +
                  std::string(e.category ? e.category : "") + "\"";
          break;
        case EventKind::kFlowOut:
          line += "\"ph\":\"s\",\"name\":\"msg\",\"cat\":\"comm\",\"id\":" +
                  std::to_string(e.id);
          break;
        case EventKind::kFlowIn:
          line += "\"ph\":\"f\",\"bp\":\"e\",\"name\":\"msg\",\"cat\":"
                  "\"comm\",\"id\":" +
                  std::to_string(e.id);
          break;
      }
      line += ",\"pid\":0,\"tid\":" + tid + ",\"ts\":" + fmt_us(e.vtime);
      const bool has_bytes =
          e.kind == EventKind::kFlowOut || e.kind == EventKind::kFlowIn;
      if (has_bytes || e.arg != 0 || opts.include_wall_time) {
        line += ",\"args\":{";
        bool first_arg = true;
        auto arg = [&](const std::string& k, const std::string& v) {
          if (!first_arg) line += ",";
          first_arg = false;
          line += "\"" + k + "\":" + v;
        };
        if (has_bytes) {
          arg("bytes", std::to_string(e.arg));
          arg("peer", std::to_string(e.peer));
          if (e.tag >= 0) arg("tag", std::to_string(e.tag));
          if (e.kind == EventKind::kFlowIn) arg("wait_us", fmt_us(e.wait));
        } else if (e.arg != 0) {
          arg("value", std::to_string(e.arg));
        }
        if (opts.include_wall_time) arg("wall_us", fmt_us(e.wtime));
        line += "}";
      }
      line += "}";
      emit(line);
    }
  }
  os << "\n]}\n";
}

std::map<std::string, PhaseAgg> aggregate_phases(const TraceRecorder& rec) {
  rec.validate();
  std::map<std::string, PhaseAgg> agg;
  for (int r = 0; r < rec.nranks(); ++r) {
    std::map<std::string, double> rank_sum;
    std::map<std::string, std::uint64_t> rank_count;
    std::vector<const TraceEvent*> stack;
    for (const auto& e : rec.rank(r).events()) {
      if (e.kind == EventKind::kBegin) {
        stack.push_back(&e);
      } else if (e.kind == EventKind::kEnd) {
        const TraceEvent* b = stack.back();
        stack.pop_back();
        rank_sum[b->name] += e.vtime - b->vtime;
        ++rank_count[b->name];
      }
    }
    for (const auto& [name, sum] : rank_sum) {
      PhaseAgg& a = agg[name];
      a.spans += rank_count[name];
      a.total_vtime += sum;
      a.max_rank_vtime = std::max(a.max_rank_vtime, sum);
      ++a.ranks;
    }
  }
  return agg;
}

void write_breakdown_report(std::ostream& os, const TraceRecorder& rec,
                            const std::vector<RankTime>& rank_times) {
  ESTCLUST_CHECK(static_cast<int>(rank_times.size()) == rec.nranks());
  double elapsed = 0.0;
  for (const auto& rt : rank_times) elapsed = std::max(elapsed, rt.total);
  const double denom = std::max(elapsed, 1e-12);

  os << "=== breakdown: per-rank virtual time ===\n";
  TablePrinter ranks({"rank", "busy (s)", "comm (s)", "idle (s)",
                      "total (s)", "busy %"});
  for (std::size_t r = 0; r < rank_times.size(); ++r) {
    const RankTime& t = rank_times[r];
    ranks.add_row({TablePrinter::fmt(static_cast<std::uint64_t>(r)),
                   fmt_secs(t.busy), fmt_secs(t.comm), fmt_secs(t.idle),
                   fmt_secs(t.total),
                   TablePrinter::fmt(100.0 * (t.busy + t.comm) / denom, 2)});
  }
  ranks.print(os);

  os << "\n=== breakdown: per-phase inclusive virtual time ===\n";
  auto agg = aggregate_phases(rec);
  TablePrinter phases({"phase", "spans", "ranks", "total (s)",
                       "max-rank (s)", "% of run"});
  for (const auto& [name, a] : agg) {
    phases.add_row({name, TablePrinter::fmt(a.spans),
                    TablePrinter::fmt(static_cast<std::uint64_t>(a.ranks)),
                    fmt_secs(a.total_vtime), fmt_secs(a.max_rank_vtime),
                    TablePrinter::fmt(100.0 * a.max_rank_vtime / denom, 2)});
  }
  phases.print(os);

  // §4.2 master utilization, measured from spans: the "master_*" spans on
  // rank 0 cover only genuine processing (they open after a report has
  // been received, never around a blocking receive or collective), so
  // their inclusive sum over the run is the master's busy time.
  if (rec.nranks() > 1) {
    double master_span_time = 0.0;
    for (const auto& [name, a] : agg) {
      if (name.rfind("master", 0) == 0) {
        master_span_time += a.total_vtime;
      }
    }
    os << "\nmaster busy (from rank 0 spans): "
       << TablePrinter::fmt(100.0 * master_span_time / denom, 3)
       << "% of " << fmt_secs(elapsed) << " virtual s\n";
  }
}

}  // namespace estclust::obs
