// MetricsRegistry: named counters, gauges, streaming stats and histograms.
//
// One registry per rank (written only by the rank's thread — no locking),
// merged after the run into a single view: counters sum, gauges combine by
// their declared MergeOp (phase times are max-reduced, mirroring the
// paper's "max over ranks" reporting), stats and histograms merge
// pointwise. Modules register metrics by name instead of keeping ad-hoc
// counter structs, so benches and the CLI read one namespace:
//
//   comm.metrics().counter("pace.pairs_accepted").add(1);
//   comm.metrics().gauge("pace.t_gst", MergeOp::kMax).set(t);
//
// Names are dotted paths ("module.metric"); iteration order is the sorted
// name order, so every report is deterministic.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

#include "util/stats.hpp"

namespace estclust::obs {

enum class MergeOp : std::uint8_t { kSum, kMax, kMin };

class Counter {
 public:
  void add(std::uint64_t delta = 1) { v_ += delta; }
  void set(std::uint64_t v) { v_ = v; }
  std::uint64_t value() const { return v_; }

 private:
  std::uint64_t v_ = 0;
};

class Gauge {
 public:
  void set(double v) { v_ = v; }
  double value() const { return v_; }

 private:
  friend class MetricsRegistry;
  double v_ = 0.0;
  MergeOp op_ = MergeOp::kMax;
  bool set_once_ = false;  ///< merged registries treat unset gauges as absent
};

class MetricsRegistry {
 public:
  /// Returns (registering on first use) the named metric. References stay
  /// valid for the registry's lifetime; hold them across hot loops.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name, MergeOp op = MergeOp::kMax);
  RunningStats& stats(const std::string& name);
  Histogram& histogram(const std::string& name, double lo, double hi,
                       std::size_t bins);

  bool has_counter(const std::string& name) const;
  bool has_gauge(const std::string& name) const;
  /// Value lookups for report/bench code; 0 when absent.
  std::uint64_t counter_value(const std::string& name) const;
  double gauge_value(const std::string& name) const;
  const RunningStats* find_stats(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  /// Folds `other` into this registry (counters sum, gauges by MergeOp,
  /// stats/histograms pointwise). MergeOp / histogram shapes must agree
  /// for metrics present on both sides.
  void merge_from(const MetricsRegistry& other);

  /// Fixed-width name/value table, sorted by name.
  void write_report(std::ostream& os) const;
  /// One JSON object: {"name": value, ...} (counters and gauges; stats
  /// expand to name.mean/.max/.count).
  void write_json(std::ostream& os) const;

  std::size_t size() const {
    return counters_.size() + gauges_.size() + stats_.size() +
           histograms_.size();
  }

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, RunningStats> stats_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace estclust::obs
