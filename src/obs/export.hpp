// Trace exporters: Chrome trace-event JSON and the per-phase breakdown
// report (the Table 3 / §4.2 view of a run).
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace estclust::obs {

/// Per-rank virtual-time split, supplied by the runtime (obs does not
/// depend on mpr). total = busy + comm + idle for a clock that started
/// at zero.
struct RankTime {
  double busy = 0.0;  ///< modeled local computation
  double comm = 0.0;  ///< send/recv overheads charged by the communicator
  double idle = 0.0;  ///< waiting (clock jumps on message arrival/barrier)
  double total = 0.0;
};

struct ChromeTraceOptions {
  /// Adds the wall-clock timestamp of every event as an arg. Off by
  /// default so traces are byte-identical across same-seed runs.
  bool include_wall_time = false;
};

/// Writes the whole recorder as Chrome trace-event JSON (load in
/// chrome://tracing or https://ui.perfetto.dev). The timeline unit is the
/// *virtual* microsecond; ranks appear as threads. Validates span nesting
/// first. Deterministic: events are emitted rank by rank in record order.
void write_chrome_trace(std::ostream& os, const TraceRecorder& rec,
                        const ChromeTraceOptions& opts = {});

/// Inclusive per-phase aggregation of one span name.
struct PhaseAgg {
  std::uint64_t spans = 0;      ///< span count across ranks
  double total_vtime = 0.0;     ///< sum of inclusive durations, all ranks
  double max_rank_vtime = 0.0;  ///< max over ranks of per-rank inclusive sum
  int ranks = 0;                ///< ranks with at least one such span
};

/// Aggregates all spans by name. Nested spans count toward their own name
/// only (durations are inclusive of children).
std::map<std::string, PhaseAgg> aggregate_phases(const TraceRecorder& rec);

/// Fixed-width report: per-rank busy/comm/idle virtual seconds, per-phase
/// inclusive times, and the master's busy fraction computed from rank 0's
/// top-level spans (§4.2). `rank_times` is indexed by rank and must match
/// the recorder's rank count.
void write_breakdown_report(std::ostream& os, const TraceRecorder& rec,
                            const std::vector<RankTime>& rank_times);

}  // namespace estclust::obs
