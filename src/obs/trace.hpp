// Virtual-time tracing (Table 3 / Fig 8 evidence collection).
//
// Every rank owns a RankTracer: an event buffer written only by the rank's
// thread (no locking or atomics on the hot path) and merged rank-by-rank
// after Runtime::run joins. Events carry the rank's *virtual* clock as the
// primary timestamp — so traces are bit-identical across runs with the same
// seed — plus the real wall-clock as a secondary field for debugging the
// simulator itself. Recording never advances the virtual clock: tracing a
// run does not change its modeled time.
//
// Compile-time kill switch: build with -DESTCLUST_OBS_TRACING=0 and every
// ESTCLUST_TRACE_* macro expands to nothing. At runtime, tracing is off
// unless a TraceRecorder is attached (a null RankTracer pointer), which
// costs one predictable branch per instrumentation site.
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

namespace estclust::obs {

enum class EventKind : std::uint8_t {
  kBegin,    ///< phase_begin: opens a named span
  kEnd,      ///< phase_end: closes the innermost span of the same name
  kInstant,  ///< point event
  kFlowOut,  ///< message handed to the runtime (sender side)
  kFlowIn,   ///< message delivered (receiver side); id matches the kFlowOut
};

/// One recorded event. `name` and `category` must point at static-storage
/// strings (phase names are literals); the buffer never copies them.
struct TraceEvent {
  EventKind kind;
  int peer = -1;            ///< other rank for flow events, else -1
  const char* name;
  const char* category;
  double vtime;             ///< virtual seconds (deterministic)
  double wtime;             ///< wall seconds since recorder creation
  std::uint64_t id = 0;     ///< flow id for kFlowOut/kFlowIn
  std::uint64_t arg = 0;    ///< payload bytes / user argument
  int tag = -1;             ///< message tag for flow events (-1 = none)
  /// kFlowIn only: virtual seconds the receiver's clock skipped waiting
  /// for this message (0 when it arrived before the receiver asked). The
  /// critical-path profiler reads this to tell a binding receive (the
  /// arrival set the clock) from a satisfied one.
  double wait = 0.0;
};

/// Per-rank event sink. Owned by TraceRecorder; written by exactly one
/// thread (the rank's), so record() is a plain vector append.
class RankTracer {
 public:
  RankTracer() = default;

  /// Binds the tracer to its rank's virtual clock (a pointer to the clock's
  /// time field, so obs stays independent of mpr) and the recorder's
  /// wall-clock epoch.
  void bind(int rank, const double* vclock,
            std::chrono::steady_clock::time_point epoch) {
    rank_ = rank;
    vclock_ = vclock;
    epoch_ = epoch;
    events_.reserve(1024);
  }

  int rank() const { return rank_; }

  void begin(const char* name, const char* category) {
    push(EventKind::kBegin, name, category, -1, 0, 0);
  }
  void end(const char* name) {
    push(EventKind::kEnd, name, nullptr, -1, 0, 0);
  }
  void instant(const char* name, const char* category,
               std::uint64_t arg = 0) {
    push(EventKind::kInstant, name, category, -1, 0, arg);
  }
  void flow_out(std::uint64_t id, int dest, std::uint64_t bytes,
                int tag = -1) {
    push(EventKind::kFlowOut, "msg", "comm", dest, id, bytes, tag, 0.0);
  }
  void flow_in(std::uint64_t id, int src, std::uint64_t bytes, int tag = -1,
               double wait = 0.0) {
    push(EventKind::kFlowIn, "msg", "comm", src, id, bytes, tag, wait);
  }

  const std::vector<TraceEvent>& events() const { return events_; }

 private:
  void push(EventKind kind, const char* name, const char* category, int peer,
            std::uint64_t id, std::uint64_t arg, int tag = -1,
            double wait = 0.0) {
    TraceEvent e;
    e.kind = kind;
    e.peer = peer;
    e.name = name;
    e.category = category;
    e.vtime = vclock_ ? *vclock_ : 0.0;
    e.wtime = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - epoch_)
                  .count();
    e.id = id;
    e.arg = arg;
    e.tag = tag;
    e.wait = wait;
    events_.push_back(e);
  }

  int rank_ = -1;
  const double* vclock_ = nullptr;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<TraceEvent> events_;
};

/// Owns one RankTracer per rank; the merged view is simply the per-rank
/// buffers visited in rank order (each already in causal per-rank order).
class TraceRecorder {
 public:
  explicit TraceRecorder(int nranks);

  int nranks() const { return static_cast<int>(tracers_.size()); }
  RankTracer& rank(int r) { return tracers_[r]; }
  const RankTracer& rank(int r) const { return tracers_[r]; }

  std::chrono::steady_clock::time_point epoch() const { return epoch_; }
  std::size_t total_events() const;

  /// Checks every rank's spans: begin/end names pair up like brackets and
  /// no span is left open. Throws CheckError with the offending rank and
  /// name on mismatch.
  void validate() const;

 private:
  std::chrono::steady_clock::time_point epoch_;
  std::vector<RankTracer> tracers_;
};

/// RAII span; safe on a null tracer (tracing disabled).
class ScopedSpan {
 public:
  ScopedSpan(RankTracer* t, const char* name, const char* category)
      : t_(t), name_(name) {
    if (t_) t_->begin(name_, category);
  }
  ~ScopedSpan() {
    if (t_) t_->end(name_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  RankTracer* t_;
  const char* name_;
};

}  // namespace estclust::obs

#ifndef ESTCLUST_OBS_TRACING
#define ESTCLUST_OBS_TRACING 1
#endif

#define ESTCLUST_OBS_CONCAT2(a, b) a##b
#define ESTCLUST_OBS_CONCAT(a, b) ESTCLUST_OBS_CONCAT2(a, b)

#if ESTCLUST_OBS_TRACING
/// Opens a span closed at end of scope. `tracer` is an obs::RankTracer*
/// (null => no-op).
#define ESTCLUST_TRACE_SPAN(tracer, name, category)                      \
  ::estclust::obs::ScopedSpan ESTCLUST_OBS_CONCAT(estclust_span_,        \
                                                  __LINE__)((tracer),    \
                                                            (name),      \
                                                            (category))
#define ESTCLUST_TRACE_INSTANT(tracer, name, category, arg)       \
  do {                                                            \
    ::estclust::obs::RankTracer* estclust_t_ = (tracer);          \
    if (estclust_t_) estclust_t_->instant((name), (category), (arg)); \
  } while (0)
#else
#define ESTCLUST_TRACE_SPAN(tracer, name, category) \
  do {                                              \
  } while (0)
#define ESTCLUST_TRACE_INSTANT(tracer, name, category, arg) \
  do {                                                      \
  } while (0)
#endif
