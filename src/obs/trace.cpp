#include "obs/trace.hpp"

#include <cstring>

#include "util/check.hpp"

namespace estclust::obs {

TraceRecorder::TraceRecorder(int nranks)
    : epoch_(std::chrono::steady_clock::now()), tracers_(nranks) {
  ESTCLUST_CHECK(nranks > 0);
}

std::size_t TraceRecorder::total_events() const {
  std::size_t n = 0;
  for (const auto& t : tracers_) n += t.events().size();
  return n;
}

void TraceRecorder::validate() const {
  for (const auto& t : tracers_) {
    std::vector<const char*> stack;
    for (const auto& e : t.events()) {
      if (e.kind == EventKind::kBegin) {
        stack.push_back(e.name);
      } else if (e.kind == EventKind::kEnd) {
        ESTCLUST_CHECK_MSG(!stack.empty(), "rank " << t.rank()
                                                   << ": phase_end '"
                                                   << e.name
                                                   << "' with no open span");
        ESTCLUST_CHECK_MSG(std::strcmp(stack.back(), e.name) == 0,
                           "rank " << t.rank() << ": phase_end '" << e.name
                                   << "' does not match open span '"
                                   << stack.back() << "'");
        stack.pop_back();
      }
    }
    ESTCLUST_CHECK_MSG(stack.empty(), "rank " << t.rank() << ": span '"
                                              << stack.back()
                                              << "' never closed");
  }
}

}  // namespace estclust::obs
