// Minimal command-line parsing for examples and bench binaries.
//
// Supports "--name value" and "--flag" forms plus environment-variable
// fallbacks so benches can be scaled via ESTCLUST_BENCH_SCALE etc.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace estclust {

class CliArgs {
 public:
  /// Parses argv. Unknown arguments are collected as positionals.
  /// Throws CheckError on a trailing "--name" with no value.
  CliArgs(int argc, const char* const* argv);

  bool has_flag(const std::string& name) const;
  std::optional<std::string> get(const std::string& name) const;

  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;

  const std::vector<std::string>& positionals() const { return positionals_; }
  const std::string& program() const { return program_; }

  /// Reads an integer environment variable, else returns fallback.
  static std::int64_t env_int(const std::string& name, std::int64_t fallback);

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> flags_;
  std::vector<std::string> positionals_;
};

}  // namespace estclust
