// Streaming and batch statistics used by the benchmark harnesses.
#pragma once

#include <cstddef>
#include <vector>

namespace estclust {

/// Welford streaming mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x);

  /// Folds another stream into this one (Chan et al. parallel Welford):
  /// the result equals adding both streams' samples to one accumulator.
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< Sample variance (n-1 denominator).
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Percentile of a sample (linear interpolation); q in [0,1]. Sorts a copy.
double percentile(std::vector<double> values, double q);

/// Median convenience wrapper.
double median(std::vector<double> values);

/// Simple fixed-width histogram over [lo, hi) with `bins` buckets;
/// out-of-range samples clamp to the edge buckets. Raw samples are
/// retained alongside the bin counts so quantiles are exact (the bins
/// exist for cheap shape rendering, the samples for precision); callers
/// feeding unbounded streams should cap their sample volume themselves.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void add(double x);

  /// Bin-wise accumulation of another histogram with identical [lo, hi)
  /// and bin count (checked). Samples concatenate, so quantiles after a
  /// merge depend only on the combined multiset — merge order never
  /// changes the result.
  void merge(const Histogram& other);

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  const std::vector<std::size_t>& counts() const { return counts_; }
  std::size_t total() const { return total_; }
  double bucket_lo(std::size_t i) const;

  /// Exact quantile of the recorded samples (linear interpolation over
  /// the sorted multiset, like percentile()); q in [0, 1]. Returns 0 for
  /// an empty histogram so report code can emit it unconditionally.
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }
  const std::vector<double>& samples() const { return samples_; }

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::vector<double> samples_;
  std::size_t total_ = 0;
};

}  // namespace estclust
