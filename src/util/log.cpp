#include "util/log.hpp"

#include <atomic>
#include <iostream>

namespace estclust {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;
thread_local int t_rank = -1;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_rank(int rank) { t_rank = rank; }

int log_rank() { return t_rank; }

namespace detail {
void log_line(LogLevel level, const std::string& line) {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::cerr << "[estclust " << level_name(level);
  if (t_rank >= 0) std::cerr << " r" << t_rank;
  std::cerr << "] " << line << '\n';
}
}  // namespace detail

}  // namespace estclust
