// Leveled stderr logging. Thread-safe at line granularity.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace estclust {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Tags subsequent log lines from this thread with a rank id ("r3");
/// set by mpr::Runtime for the duration of a rank thread. -1 clears the
/// tag (lines print untagged, as outside a parallel region).
void set_log_rank(int rank);
int log_rank();

namespace detail {
void log_line(LogLevel level, const std::string& line);
}

/// RAII stream that emits one line on destruction.
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() {
    if (level_ >= log_level()) detail::log_line(level_, os_.str());
  }
  template <typename T>
  LogStream& operator<<(const T& v) {
    if (level_ >= log_level()) os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace estclust

#define ESTCLUST_LOG_DEBUG ::estclust::LogStream(::estclust::LogLevel::kDebug)
#define ESTCLUST_LOG_INFO ::estclust::LogStream(::estclust::LogLevel::kInfo)
#define ESTCLUST_LOG_WARN ::estclust::LogStream(::estclust::LogLevel::kWarn)
#define ESTCLUST_LOG_ERROR ::estclust::LogStream(::estclust::LogLevel::kError)
