// Deterministic pseudo-random number generation.
//
// All randomness in the library flows through Prng (xoshiro256**, seeded via
// splitmix64) so that every experiment is reproducible from a single seed.
// std::mt19937 is deliberately avoided: its distributions are not specified
// bit-exactly across standard library implementations, ours are.
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace estclust {

/// splitmix64 step; used to expand a single seed into xoshiro state.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** generator with bit-exact helper distributions.
class Prng {
 public:
  using result_type = std::uint64_t;

  explicit Prng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Raw 64 random bits.
  std::uint64_t next();

  std::uint64_t operator()() { return next(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ULL; }

  /// Uniform integer in [0, bound). Requires bound > 0. Unbiased
  /// (Lemire-style rejection).
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Standard normal via Box-Muller (deterministic; caches the spare value).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Geometric: number of failures before first success, success prob p.
  std::uint64_t geometric(double p);

  /// Zipf-like index in [0, n): probability of i proportional to
  /// 1/(i+1)^theta. Used for skewed gene-expression sampling.
  std::uint64_t zipf(std::uint64_t n, double theta);

  /// Pick an index according to non-negative weights (sum > 0).
  std::size_t weighted_pick(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child generator (for per-rank / per-worker
  /// streams that must not correlate with the parent).
  Prng split();

 private:
  std::uint64_t s_[4];
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

}  // namespace estclust
