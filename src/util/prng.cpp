#include "util/prng.hpp"

#include <cmath>

namespace estclust {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Prng::Prng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // xoshiro must not start from the all-zero state; splitmix64 of any seed
  // cannot produce four zero outputs in a row, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Prng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Prng::uniform(std::uint64_t bound) {
  ESTCLUST_CHECK(bound > 0);
  // Lemire's multiply-shift with rejection for exact uniformity.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Prng::uniform_range(std::int64_t lo, std::int64_t hi) {
  ESTCLUST_CHECK(lo <= hi);
  std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full range
  return lo + static_cast<std::int64_t>(uniform(span));
}

double Prng::uniform01() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Prng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Prng::normal(double mean, double stddev) {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform01();
  } while (u1 <= 0.0);
  double u2 = uniform01();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * 3.14159265358979323846 * u2;
  spare_normal_ = r * std::sin(theta);
  has_spare_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

std::uint64_t Prng::geometric(double p) {
  ESTCLUST_CHECK(p > 0.0 && p <= 1.0);
  if (p == 1.0) return 0;
  double u = 0.0;
  do {
    u = uniform01();
  } while (u <= 0.0);
  return static_cast<std::uint64_t>(std::log(u) / std::log1p(-p));
}

std::uint64_t Prng::zipf(std::uint64_t n, double theta) {
  ESTCLUST_CHECK(n > 0);
  if (n == 1 || theta <= 0.0) return theta <= 0.0 ? uniform(n) : 0;
  // Inverse-CDF on the harmonic partial sums would need O(n) state; use
  // rejection sampling over the continuous envelope instead (Devroye).
  const double alpha = 1.0 / (1.0 - theta);
  const double zeta2 = std::pow(2.0, 1.0 - theta);
  const double eta = (1.0 - zeta2) / (1.0 - std::pow(2.0, -(1.0 - theta)));
  (void)eta;
  for (;;) {
    double u = uniform01();
    double v = uniform01();
    double x = std::pow(static_cast<double>(n) + 1.0, 1.0 - theta);
    double y = std::pow(u * (x - 1.0) + 1.0, alpha) - 1.0;
    std::uint64_t k = static_cast<std::uint64_t>(y);
    if (k >= n) continue;
    double ratio = std::pow((static_cast<double>(k) + 1.0) /
                                (static_cast<double>(k) + 2.0),
                            theta);
    double t = std::pow((y + 2.0) / (y + 1.0), theta) * ratio;
    if (v * t <= 1.0) return k;
  }
}

std::size_t Prng::weighted_pick(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    ESTCLUST_CHECK(w >= 0.0);
    total += w;
  }
  ESTCLUST_CHECK(total > 0.0);
  double r = uniform01() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;  // floating-point slack lands on the last item
}

Prng Prng::split() {
  std::uint64_t seed = next() ^ rotl(next(), 23);
  return Prng(seed);
}

}  // namespace estclust
