// Always-on invariant checks.
//
// Unlike assert(), these fire in release builds too. Cheap checks guarding
// algorithmic invariants (index bounds on public entry points, protocol state
// machines) stay enabled; hot inner loops use ESTCLUST_DCHECK which compiles
// out in release.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace estclust {

/// Thrown when an ESTCLUST_CHECK fails: indicates a broken precondition or
/// internal invariant, never a recoverable user error.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "CHECK failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace estclust

#define ESTCLUST_CHECK(expr)                                              \
  do {                                                                    \
    if (!(expr))                                                          \
      ::estclust::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
  } while (0)

#define ESTCLUST_CHECK_MSG(expr, msg)                                     \
  do {                                                                    \
    if (!(expr)) {                                                        \
      std::ostringstream os_;                                             \
      os_ << msg;                                                         \
      ::estclust::detail::check_failed(#expr, __FILE__, __LINE__,         \
                                       os_.str());                        \
    }                                                                     \
  } while (0)

#ifdef NDEBUG
#define ESTCLUST_DCHECK(expr) ((void)0)
#else
#define ESTCLUST_DCHECK(expr) ESTCLUST_CHECK(expr)
#endif
