// Wall-clock timing helpers (real time; virtual time lives in mpr/clock.hpp).
#pragma once

#include <chrono>

namespace estclust {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates time across start/stop intervals, e.g. per-phase totals.
class PhaseTimer {
 public:
  void start() {
    running_ = true;
    timer_.reset();
  }
  void stop() {
    if (running_) total_ += timer_.seconds();
    running_ = false;
  }
  double total_seconds() const {
    return total_ + (running_ ? timer_.seconds() : 0.0);
  }

 private:
  WallTimer timer_;
  double total_ = 0.0;
  bool running_ = false;
};

}  // namespace estclust
