#include "util/table.hpp"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <sstream>

namespace estclust {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TablePrinter::fmt(std::uint64_t v) { return std::to_string(v); }

void TablePrinter::print(std::ostream& os) const {
  std::size_t ncols = headers_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.size());
  std::vector<std::size_t> width(ncols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i)
      width[i] = std::max(width[i], row[i].size());
  };
  widen(headers_);
  for (const auto& r : rows_) widen(r);

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < ncols; ++i) {
      const std::string cell = i < row.size() ? row[i] : "";
      os << (i ? "  " : "") << std::setw(static_cast<int>(width[i]))
         << cell;
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t i = 0; i < ncols; ++i) total += width[i] + (i ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) print_row(r);
}

}  // namespace estclust
