// Fixed-width ASCII table printing for paper-style benchmark output.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace estclust {

/// Collects rows of string cells and prints them with aligned columns,
/// mirroring the tables in the paper (Table 1-3).
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds a row. Missing cells print empty; extra cells widen the table.
  void add_row(std::vector<std::string> cells);

  /// Formats helpers for numeric cells.
  static std::string fmt(double v, int precision = 2);
  static std::string fmt(std::uint64_t v);

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace estclust
