#include "util/cli.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/check.hpp"

namespace estclust {

namespace {
bool looks_like_value(const std::string& s) {
  // "--x -3" must treat -3 as a value, not a flag.
  if (s.rfind("--", 0) != 0) return true;
  return s.size() > 2 && (std::isdigit(static_cast<unsigned char>(s[2])) != 0);
}
}  // namespace

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0 && arg.size() > 2 &&
        !std::isdigit(static_cast<unsigned char>(arg[2]))) {
      std::string name = arg.substr(2);
      auto eq = name.find('=');
      if (eq != std::string::npos) {
        values_[name.substr(0, eq)] = name.substr(eq + 1);
      } else if (i + 1 < argc && looks_like_value(argv[i + 1])) {
        values_[name] = argv[++i];
      } else {
        flags_.push_back(name);
      }
    } else {
      positionals_.push_back(arg);
    }
  }
}

bool CliArgs::has_flag(const std::string& name) const {
  return std::find(flags_.begin(), flags_.end(), name) != flags_.end() ||
         values_.count(name) > 0;
}

std::optional<std::string> CliArgs::get(const std::string& name) const {
  auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string CliArgs::get_string(const std::string& name,
                                const std::string& fallback) const {
  return get(name).value_or(fallback);
}

std::int64_t CliArgs::get_int(const std::string& name,
                              std::int64_t fallback) const {
  auto v = get(name);
  if (!v) return fallback;
  return std::stoll(*v);
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  auto v = get(name);
  if (!v) return fallback;
  return std::stod(*v);
}

std::int64_t CliArgs::env_int(const std::string& name, std::int64_t fallback) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoll(v, nullptr, 10);
}

}  // namespace estclust
