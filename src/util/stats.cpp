#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace estclust {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> values, double q) {
  ESTCLUST_CHECK(!values.empty());
  ESTCLUST_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  double pos = q * static_cast<double>(values.size() - 1);
  std::size_t lo = static_cast<std::size_t>(pos);
  std::size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double median(std::vector<double> values) {
  return percentile(std::move(values), 0.5);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  ESTCLUST_CHECK(hi > lo);
  ESTCLUST_CHECK(bins > 0);
}

void Histogram::add(double x) {
  double t = (x - lo_) / (hi_ - lo_);
  std::size_t bin;
  if (t < 0.0) {
    bin = 0;
  } else if (t >= 1.0) {
    bin = counts_.size() - 1;
  } else {
    bin = static_cast<std::size_t>(t * static_cast<double>(counts_.size()));
  }
  ++counts_[bin];
  ++total_;
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

}  // namespace estclust
