#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace estclust {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * nb / (na + nb);
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> values, double q) {
  ESTCLUST_CHECK(!values.empty());
  ESTCLUST_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  double pos = q * static_cast<double>(values.size() - 1);
  std::size_t lo = static_cast<std::size_t>(pos);
  std::size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double median(std::vector<double> values) {
  return percentile(std::move(values), 0.5);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  ESTCLUST_CHECK(hi > lo);
  ESTCLUST_CHECK(bins > 0);
}

void Histogram::add(double x) {
  double t = (x - lo_) / (hi_ - lo_);
  std::size_t bin;
  if (t < 0.0) {
    bin = 0;
  } else if (t >= 1.0) {
    bin = counts_.size() - 1;
  } else {
    bin = static_cast<std::size_t>(t * static_cast<double>(counts_.size()));
  }
  ++counts_[bin];
  samples_.push_back(x);
  ++total_;
}

void Histogram::merge(const Histogram& other) {
  ESTCLUST_CHECK_MSG(lo_ == other.lo_ && hi_ == other.hi_ &&
                         counts_.size() == other.counts_.size(),
                     "merging histograms with different shapes");
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  total_ += other.total_;
}

double Histogram::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  return percentile(samples_, q);
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

}  // namespace estclust
