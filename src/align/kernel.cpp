#include "align/kernel.hpp"

#include <algorithm>
#include <cmath>

#include "align/kernel_simd.hpp"
#include "util/check.hpp"

namespace estclust::align {

namespace {

constexpr long kNegInf = detail::kNegInfScore;

// Bands wider than the longer string change nothing: every row's live
// j-range is already clipped to [0, n], so clamping the band to max(m, n)
// leaves the live cell set of every row — and therefore scores, end
// positions and cell counts — identical, while keeping width = 2*band + 1
// from overflowing or allocating rows the sweep can never touch.
std::size_t clamp_band(std::size_t band, std::size_t m, std::size_t n) {
  const std::size_t cap = std::max(m, n);
  return band > cap ? cap : band;
}

// Strict uppercase ACGT, so 2-bit code equality in the SIMD sweeps agrees
// with the scalar sweep's byte comparison.
bool codes_clean(std::string_view s) {
  for (char c : s) {
    if (c != 'A' && c != 'C' && c != 'G' && c != 'T') return false;
  }
  return true;
}

// The band sweep shared by the exact and bounded modes. Bounded is a
// compile-time flag so the exact hot loop carries no bound bookkeeping.
//
// Exactness of the give-up test: every cell below row i is reached through
// some live cell (i, j) of row i, and each DP step adds at most `match`
// (only diagonal steps gain, and there are at most min(m - i, n - j) of
// them). So max(cur[j] + match * min(m - i, n - j)) bounds every boundary
// cell still ahead; if that bound and the best boundary cell seen so far
// are both below `give_up`, the final score is certainly below `give_up`.
// `band` must arrive pre-clamped (clamp_band) so width cannot overflow.
template <bool Bounded>
ExtensionResult band_sweep(std::string_view a, std::string_view b,
                           const Scoring& sc, std::size_t band,
                           AlignArena& arena, long give_up) {
  const std::size_t m = a.size(), n = b.size();
  ExtensionResult best;
  best.score = kNegInf;

  // Degenerate: nothing to extend on one side — the (0,0) cell is already a
  // boundary cell with score 0.
  if (m == 0 || n == 0) {
    best.score = 0;
    best.a_len = 0;
    best.b_len = 0;
    best.a_exhausted = (m == 0);
    best.b_exhausted = (n == 0);
    return best;
  }

  if constexpr (Bounded) {
    // Nothing can beat a full run of matches along the shorter side.
    if (sc.match * static_cast<long>(std::min(m, n)) < give_up) {
      best.capped = true;
      return best;
    }
  }

  // Row i covers j in [i - band, i + band] clipped to [0, n]. Rows are
  // stored in a (2*band + 1)-wide window indexed by (j - i + band). The
  // window is seeded once; each row then writes only its live cell range
  // plus one kNegInf guard per side (the live range moves at most one cell
  // per row), so the sweep is a single contiguous pass over arena memory.
  const std::size_t width = 2 * band + 1;
  arena.ensure_width(width);
  long* prev = arena.prev.data();
  long* cur = arena.cur.data();
  std::fill(prev, prev + width, kNegInf);
  std::fill(cur, cur + width, kNegInf);
  std::uint64_t cells = 0;

  auto consider = [&](long score, std::size_t i, std::size_t j) {
    // Boundary (semi-global) cells: all of a or all of b consumed.
    if (i != m && j != n) return;
    if (score > best.score ||
        (score == best.score && i + j > best.a_len + best.b_len)) {
      best.score = score;
      best.a_len = i;
      best.b_len = j;
      best.a_exhausted = (i == m);
      best.b_exhausted = (j == n);
    }
  };

  // Row 0: H[0][j] = j * gap for j <= band.
  for (std::size_t j = 0; j <= std::min(n, band); ++j) {
    prev[j + band] = static_cast<long>(j) * sc.gap;
    consider(prev[j + band], 0, j);
  }

  for (std::size_t i = 1; i <= m; ++i) {
    const std::size_t jlo = (i > band) ? i - band : 0;
    if (jlo > n) break;  // band has left the rectangle
    const std::size_t jhi = std::min(n, i + band);
    // Wrap-free forms of jlo - i + band / jhi - i + band (i - jlo <= band
    // by construction; jhi >= i - band whenever the row is live).
    const std::size_t klo = band - (i - jlo);
    const std::size_t khi = (jhi >= i) ? jhi - i + band : band - (i - jhi);
    if (klo > 0) cur[klo - 1] = kNegInf;
    if (khi + 1 < width) cur[khi + 1] = kNegInf;
    [[maybe_unused]] long row_ub = kNegInf;
    for (std::size_t j = jlo; j <= jhi; ++j) {
      const std::size_t k = klo + (j - jlo);  // in [0, width)
      long v = kNegInf;
      // Diagonal from (i-1, j-1): window offset k in the previous row.
      if (j > 0 && prev[k] != kNegInf) {
        v = prev[k] + (a[i - 1] == b[j - 1] ? sc.match : sc.mismatch);
      }
      // Up from (i-1, j): offset k+1 in the previous row.
      if (k + 1 < width && prev[k + 1] != kNegInf) {
        v = std::max(v, prev[k + 1] + sc.gap);
      }
      // Left from (i, j-1): offset k-1 in the current row.
      if (k > 0 && cur[k - 1] != kNegInf) {
        v = std::max(v, cur[k - 1] + sc.gap);
      }
      cur[k] = v;
      ++cells;
      if (v != kNegInf) {
        consider(v, i, j);
        if constexpr (Bounded) {
          const long headroom =
              sc.match * static_cast<long>(std::min(m - i, n - j));
          row_ub = std::max(row_ub, v + headroom);
        }
      }
    }
    if constexpr (Bounded) {
      if (best.score < give_up && row_ub < give_up) {
        best.capped = true;
        best.cells = cells;
        return best;
      }
    }
    std::swap(prev, cur);
  }

  best.cells = cells;
  ESTCLUST_CHECK_MSG(best.score != kNegInf,
                     "banded extension found no boundary cell");
  return best;
}

// Exact and bounded anchored alignment share one assembly path so the
// non-truncated bounded result is bit-identical to the exact one.
OverlapResult anchored_core(std::string_view a, std::string_view b,
                            const Anchor& anchor, const OverlapParams& p,
                            AlignArena& arena, bool bounded) {
  ESTCLUST_CHECK(anchor.a_pos + anchor.len <= a.size());
  ESTCLUST_CHECK(anchor.b_pos + anchor.len <= b.size());
  ESTCLUST_DCHECK(a.substr(anchor.a_pos, anchor.len) ==
                  b.substr(anchor.b_pos, anchor.len));

  // Rightward: suffixes after the anchor. Leftward: prefixes before the
  // anchor, reversed (into arena scratch) so the extension again starts at
  // offset 0.
  const std::string_view ra = a.substr(anchor.a_pos + anchor.len);
  const std::string_view rb = b.substr(anchor.b_pos + anchor.len);
  arena.rev_a.assign(a.rbegin() + static_cast<std::ptrdiff_t>(a.size() -
                                                              anchor.a_pos),
                     a.rend());
  arena.rev_b.assign(b.rbegin() + static_cast<std::ptrdiff_t>(b.size() -
                                                              anchor.b_pos),
                     b.rend());
  const std::string_view la = arena.rev_a;
  const std::string_view lb = arena.rev_b;

  const long anchor_score = p.scoring.ideal(anchor.len);

  // Minimum score any accepted overlap must reach: acceptance needs
  // quality >= min_quality and min(spans) >= min_overlap, and the ideal
  // span length is at least min(spans), so
  //   score >= min_quality * match * ideal_len
  //         >= min_quality * match * min_overlap.
  // One extra point of slack absorbs the floating-point floor.
  const bool can_bound = bounded && p.scoring.match > 0 &&
                         p.min_quality > 0.0 && p.min_overlap > 0;
  const long t0 =
      can_bound
          ? static_cast<long>(std::floor(
                p.min_quality * static_cast<double>(p.scoring.match) *
                static_cast<double>(p.min_overlap))) -
                1
          : 0;

  const long ub_left =
      static_cast<long>(p.scoring.match) *
      static_cast<long>(std::min(la.size(), lb.size()));
  const long ub_right =
      static_cast<long>(p.scoring.match) *
      static_cast<long>(std::min(ra.size(), rb.size()));

  auto truncated_result = [&](std::uint64_t cells) {
    OverlapResult res;
    res.truncated = true;
    res.cells = cells;
    res.a_begin = anchor.a_pos;
    res.a_end = anchor.a_pos + anchor.len;
    res.b_begin = anchor.b_pos;
    res.b_end = anchor.b_pos + anchor.len;
    return res;
  };

  if (can_bound && anchor_score + ub_left + ub_right < t0) {
    // Even perfect extensions cannot reach an accepting score.
    return truncated_result(0);
  }

  // Extend the side with less potential first: its exact score then
  // tightens the bound for the (typically larger) other side.
  const bool left_first = can_bound && ub_left < ub_right;
  ExtensionResult left, right;
  if (left_first) {
    left = extend_overlap(la, lb, p.scoring, p.band, arena,
                          can_bound ? t0 - anchor_score - ub_right
                                    : kNoGiveUp);
    if (left.capped) return truncated_result(left.cells);
    right = extend_overlap(ra, rb, p.scoring, p.band, arena,
                           can_bound ? t0 - anchor_score - left.score
                                     : kNoGiveUp);
    if (right.capped) return truncated_result(left.cells + right.cells);
  } else {
    right = extend_overlap(ra, rb, p.scoring, p.band, arena,
                           can_bound ? t0 - anchor_score - ub_left
                                     : kNoGiveUp);
    if (right.capped) return truncated_result(right.cells);
    left = extend_overlap(la, lb, p.scoring, p.band, arena,
                          can_bound ? t0 - anchor_score - right.score
                                    : kNoGiveUp);
    if (left.capped) return truncated_result(left.cells + right.cells);
  }

  OverlapResult res;
  res.cells = left.cells + right.cells;
  res.score = anchor_score + left.score + right.score;
  res.a_begin = anchor.a_pos - left.a_len;
  res.b_begin = anchor.b_pos - left.b_len;
  res.a_end = anchor.a_pos + anchor.len + right.a_len;
  res.b_end = anchor.b_pos + anchor.len + right.b_len;

  double ideal_len =
      (static_cast<double>(res.a_span()) + static_cast<double>(res.b_span())) /
      2.0;
  if (ideal_len > 0.0) {
    res.quality = static_cast<double>(res.score) /
                  (static_cast<double>(p.scoring.match) * ideal_len);
    res.quality = std::clamp(res.quality, -1.0, 1.0);
  }

  const bool a_start = res.a_begin == 0;
  const bool b_start = res.b_begin == 0;
  const bool a_end = res.a_end == a.size();
  const bool b_end = res.b_end == b.size();
  if (a_start && a_end) {
    res.kind = OverlapKind::kAContainedInB;
  } else if (b_start && b_end) {
    res.kind = OverlapKind::kBContainedInA;
  } else if (b_start && a_end) {
    // Alignment runs to the end of a and the start of b: a precedes b.
    res.kind = OverlapKind::kABDovetail;
  } else if (a_start && b_end) {
    res.kind = OverlapKind::kBADovetail;
  } else {
    res.kind = OverlapKind::kNone;
  }
  return res;
}

}  // namespace

namespace detail {

bool simd_eligible(std::string_view a, std::string_view b, const Scoring& sc,
                   long give_up) {
  if (sc.match < 0 || sc.mismatch > 0 || sc.gap > 0) return false;
  const long maxcoef = std::max(
      {static_cast<long>(sc.match), -static_cast<long>(sc.mismatch),
       -static_cast<long>(sc.gap), 1L});
  if (maxcoef > kSimdMaxMass) return false;
  const std::size_t mass = a.size() + b.size() + 2;
  if (static_cast<long>(mass) > kSimdMaxMass / maxcoef) return false;
  if (give_up != kNoGiveUp && give_up <= static_cast<long>(kDead16)) {
    return false;
  }
  return codes_clean(a) && codes_clean(b);
}

}  // namespace detail

AlignArena& tls_arena() {
  thread_local AlignArena arena;
  return arena;
}

ExtensionResult extend_overlap(std::string_view a, std::string_view b,
                               const Scoring& sc, std::size_t band,
                               AlignArena& arena, long give_up) {
  return extend_overlap_variant(active_kernel(), a, b, sc, band, arena,
                                give_up);
}

ExtensionResult extend_overlap_variant(KernelVariant variant,
                                       std::string_view a, std::string_view b,
                                       const Scoring& sc, std::size_t band,
                                       AlignArena& arena, long give_up) {
  band = clamp_band(band, a.size(), b.size());
  if (variant != KernelVariant::kScalar && cpu_supports(variant) &&
      detail::simd_eligible(a, b, sc, give_up)) {
    if (variant == KernelVariant::kAvx2) {
      return detail::band_sweep_avx2(a, b, sc, band, arena, give_up);
    }
    return detail::band_sweep_sse2(a, b, sc, band, arena, give_up);
  }
  if (give_up == kNoGiveUp) {
    return band_sweep<false>(a, b, sc, band, arena, give_up);
  }
  return band_sweep<true>(a, b, sc, band, arena, give_up);
}

long banded_global_score(std::string_view a, std::string_view b,
                         const Scoring& sc, std::size_t band,
                         AlignArena& arena, std::uint64_t* cells_out) {
  const std::size_t m = a.size(), n = b.size();
  const std::size_t diff = m > n ? m - n : n - m;
  if (diff > band) {
    if (cells_out) *cells_out = 0;
    return kNegInf;
  }
  band = clamp_band(band, m, n);
  const std::size_t width = 2 * band + 1;
  arena.ensure_width(width);
  long* prev = arena.prev.data();
  long* cur = arena.cur.data();
  std::fill(prev, prev + width, kNegInf);
  std::fill(cur, cur + width, kNegInf);
  std::uint64_t cells = 0;

  for (std::size_t j = 0; j <= std::min(n, band); ++j) {
    prev[j + band] = static_cast<long>(j) * sc.gap;
  }
  for (std::size_t i = 1; i <= m; ++i) {
    const std::size_t jlo = (i > band) ? i - band : 0;
    const std::size_t jhi = std::min(n, i + band);
    const std::size_t klo = band - (i - jlo);
    const std::size_t khi = (jhi >= i) ? jhi - i + band : band - (i - jhi);
    if (klo > 0) cur[klo - 1] = kNegInf;
    if (khi + 1 < width) cur[khi + 1] = kNegInf;
    for (std::size_t j = jlo; j <= jhi; ++j) {
      const std::size_t k = klo + (j - jlo);
      long v = kNegInf;
      if (j > 0 && prev[k] != kNegInf) {
        v = prev[k] + (a[i - 1] == b[j - 1] ? sc.match : sc.mismatch);
      }
      if (k + 1 < width && prev[k + 1] != kNegInf) {
        v = std::max(v, prev[k + 1] + sc.gap);
      }
      if (k > 0 && cur[k - 1] != kNegInf) {
        v = std::max(v, cur[k - 1] + sc.gap);
      }
      cur[k] = v;
      ++cells;
    }
    std::swap(prev, cur);
  }
  if (cells_out) *cells_out = cells;
  // |n - m| <= band was checked above, so this index is inside the window.
  return prev[(n >= m) ? n - m + band : band - (m - n)];
}

OverlapResult align_anchored(std::string_view a, std::string_view b,
                             const Anchor& anchor, const OverlapParams& p,
                             AlignArena& arena) {
  return anchored_core(a, b, anchor, p, arena, /*bounded=*/false);
}

OverlapResult align_anchored_bounded(std::string_view a, std::string_view b,
                                     const Anchor& anchor,
                                     const OverlapParams& p,
                                     AlignArena& arena) {
  return anchored_core(a, b, anchor, p, arena, /*bounded=*/true);
}

}  // namespace estclust::align
