#include "align/dispatch.hpp"

#include <cstdlib>
#include <string_view>

#include "align/kernel_simd.hpp"
#include "util/check.hpp"

namespace estclust::align {

namespace {

bool cpu_has_sse2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("sse2");
#else
  return false;
#endif
}

bool cpu_has_avx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

}  // namespace

const char* to_string(KernelVariant v) {
  switch (v) {
    case KernelVariant::kSse2:
      return "sse2";
    case KernelVariant::kAvx2:
      return "avx2";
    case KernelVariant::kScalar:
      break;
  }
  return "scalar";
}

bool cpu_supports(KernelVariant v) {
  switch (v) {
    case KernelVariant::kSse2:
      return detail::have_sse2_kernel() && cpu_has_sse2();
    case KernelVariant::kAvx2:
      return detail::have_avx2_kernel() && cpu_has_avx2();
    case KernelVariant::kScalar:
      break;
  }
  return true;
}

KernelVariant resolve_kernel(const char* env, bool sse2_ok, bool avx2_ok) {
  const std::string_view req = env ? std::string_view(env) : std::string_view();
  if (req.empty() || req == "auto") {
    if (avx2_ok) return KernelVariant::kAvx2;
    if (sse2_ok) return KernelVariant::kSse2;
    return KernelVariant::kScalar;
  }
  if (req == "scalar") return KernelVariant::kScalar;
  if (req == "sse2") {
    return sse2_ok ? KernelVariant::kSse2 : KernelVariant::kScalar;
  }
  if (req == "avx2") {
    if (avx2_ok) return KernelVariant::kAvx2;
    return sse2_ok ? KernelVariant::kSse2 : KernelVariant::kScalar;
  }
  ESTCLUST_CHECK_MSG(false, "ESTCLUST_KERNEL must be scalar|sse2|avx2|auto, "
                            "got '" << req << "'");
  return KernelVariant::kScalar;
}

KernelVariant active_kernel() {
  // ESTCLUST-DETFLOW-SANITIZED(every variant is bit-identical by the differential/fuzz contract, so the choice can never reach scores, cells or any charged quantity; the env value only names the implementation in the kernel.variant attribution counter)
  static const KernelVariant v =
      resolve_kernel(std::getenv("ESTCLUST_KERNEL"),
                     cpu_supports(KernelVariant::kSse2),
                     cpu_supports(KernelVariant::kAvx2));
  return v;
}

}  // namespace estclust::align
