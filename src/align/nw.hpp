// Reference full-matrix alignment kernels with traceback.
//
// These O(mn) kernels are the ground truth the fast banded/anchored kernels
// are validated against in tests; they are also exposed for users who want
// exact alignments of short sequences.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "align/scoring.hpp"

namespace estclust::align {

/// Result of a full alignment. `ops` is the edit transcript over the aligned
/// region: 'M' match, 'X' mismatch, 'I' insertion in `b` (gap in `a`),
/// 'D' deletion from `a` (gap in `b`).
struct AlignResult {
  long score = 0;
  std::size_t a_begin = 0, a_end = 0;  ///< aligned half-open range in a
  std::size_t b_begin = 0, b_end = 0;  ///< aligned half-open range in b
  std::uint64_t matches = 0;
  std::uint64_t mismatches = 0;
  std::uint64_t gaps = 0;
  std::uint64_t cells = 0;  ///< DP cells computed (for work accounting)
  std::string ops;

  /// Fraction of aligned columns that are matches.
  double identity() const {
    std::uint64_t cols = matches + mismatches + gaps;
    return cols == 0 ? 0.0 : static_cast<double>(matches) /
                                 static_cast<double>(cols);
  }
};

/// Needleman-Wunsch global alignment, linear gap penalty.
AlignResult global_align(std::string_view a, std::string_view b,
                         const Scoring& sc);

/// Gotoh global alignment with affine gaps (gap_open + k * gap_extend for a
/// gap of length k).
AlignResult global_align_affine(std::string_view a, std::string_view b,
                                const Scoring& sc);

/// Smith-Waterman local alignment, linear gap penalty. The returned ranges
/// delimit the best-scoring local region (empty if best score is 0).
AlignResult local_align(std::string_view a, std::string_view b,
                        const Scoring& sc);

/// Smith-Waterman-Gotoh local alignment with affine gaps and an exact
/// three-state traceback. Long indels (e.g. a spliced-out exon) stay as a
/// single gap run instead of being shredded by chance matches, which is
/// what the alternative-splicing detector relies on.
AlignResult local_align_affine(std::string_view a, std::string_view b,
                               const Scoring& sc);

}  // namespace estclust::align
