// Internal interface between the kernel dispatcher and the SIMD sweep
// translation units (kernel_sse2.cpp / kernel_avx2.cpp).
//
// The vector sweeps run the band recurrence in 16-bit lanes, so they are
// only entered for pairs whose whole value range provably fits:
// simd_eligible() bounds |score| by maxcoef * (m + n + 2) <= kSimdMaxMass,
// which keeps every live cell in [-kSimdMaxMass, kSimdMaxMass] and every
// "minus infinity" cell below kDead16 (dead cells start at kNegInf16 and
// can drift up by at most match per row, i.e. by at most kSimdMaxMass in
// total). Live and dead cells therefore never meet, and comparing against
// kDead16 reproduces the scalar sweep's exact != kNegInf liveness tests.
#pragma once

#include <cstdint>
#include <limits>
#include <string_view>

#include "align/banded.hpp"
#include "align/kernel.hpp"
#include "align/scoring.hpp"

namespace estclust::align::detail {

/// The scalar sweep's "minus infinity" cell value.
inline constexpr long kNegInfScore = std::numeric_limits<long>::min() / 4;

/// 16-bit lane sentinel for unreachable cells (row seeds and guards).
inline constexpr std::int16_t kNegInf16 = -30000;

/// Live/dead classification threshold: live cells stay strictly above,
/// dead cells strictly below (see header comment for the margin proof).
inline constexpr std::int16_t kDead16 = -16384;

/// Bound on maxcoef * (m + n + 2) for a pair to take a 16-bit sweep.
inline constexpr long kSimdMaxMass = 12000;

/// True iff the 16-bit sweeps are exact for this input: non-positive
/// gap/mismatch, non-negative match, value range within kSimdMaxMass,
/// give_up above the dead band, and both strings strict uppercase ACGT
/// (so 2-bit code equality coincides with byte equality).
bool simd_eligible(std::string_view a, std::string_view b, const Scoring& sc,
                   long give_up);

ExtensionResult band_sweep_sse2(std::string_view a, std::string_view b,
                                const Scoring& sc, std::size_t band,
                                AlignArena& arena, long give_up);
ExtensionResult band_sweep_avx2(std::string_view a, std::string_view b,
                                const Scoring& sc, std::size_t band,
                                AlignArena& arena, long give_up);

/// Whether the corresponding sweep was compiled with its instruction set
/// (false on non-x86 builds or compilers without -mavx2).
bool have_sse2_kernel();
bool have_avx2_kernel();

}  // namespace estclust::align::detail
