// Runtime selection of the banded-DP kernel variant.
//
// The scalar sweep is the reference and the always-available fallback; the
// SSE2/AVX2 sweeps are drop-in replacements that must return bit-identical
// results. Selection happens once per process: the ESTCLUST_KERNEL
// environment variable (scalar|sse2|avx2|auto, default auto) intersected
// with what the CPU supports and what was compiled in. A variant that was
// requested but is unavailable degrades to the next-best available one, so
// a pinned config stays runnable on older hardware.
#pragma once

namespace estclust::align {

enum class KernelVariant { kScalar, kSse2, kAvx2 };

/// Stable lowercase name ("scalar", "sse2", "avx2") for metrics and traces.
const char* to_string(KernelVariant v);

/// True iff this host can run `v`: the CPU advertises the instruction set
/// and the corresponding sweep was compiled in. kScalar is always true.
bool cpu_supports(KernelVariant v);

/// Pure resolution rule (unit-testable): maps an ESTCLUST_KERNEL value
/// (nullptr/"" and "auto" mean best-available) and the host's capabilities
/// to the variant to run. Unknown values fail loudly (CheckError).
KernelVariant resolve_kernel(const char* env, bool sse2_ok, bool avx2_ok);

/// The process-wide variant: resolve_kernel(getenv("ESTCLUST_KERNEL"), ...)
/// evaluated once on first use and cached.
KernelVariant active_kernel();

}  // namespace estclust::align
