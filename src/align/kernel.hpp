// The production banded-DP kernel behind the §3.3 hot path.
//
// The legacy entry points in banded.hpp / anchored.hpp remain the public
// API; they are thin wrappers over this kernel. What the kernel adds:
//
//  * AlignArena — all scratch state (the two band rows and the reversed
//    prefixes used by leftward extension) lives in one reusable arena, so a
//    slave performs zero heap allocations per pair once warmed up.
//
//  * A blocked band sweep — the (2*band + 1)-wide window is the only memory
//    the row loop touches. Instead of clearing the whole window every row,
//    the sweep writes the row's live cell range plus one sentinel on each
//    side (the window boundary moves by at most one cell per row), so the
//    inner loop is a single contiguous pass per row.
//
//  * An optional give-up bound — when the caller can prove that any
//    extension scoring below `give_up` leads to a rejected overlap, the
//    kernel abandons the sweep as soon as no cell in the current row can
//    reach `give_up` any more (upper bound: current cell value plus a full
//    run of matches to the nearer string end). Results are then marked
//    `capped`; a capped extension certainly belongs to a rejected pair, so
//    acceptance verdicts — and therefore clusters — are unchanged.
//    Without a bound (kNoGiveUp) the kernel is bit-identical to the
//    pre-arena implementation.
//
//  * A SIMD band sweep (SSE2/AVX2, 16-bit lanes) behind a one-time runtime
//    dispatch (dispatch.hpp). The vector sweeps are bit-identical to the
//    scalar one — same scores, end positions, capped flags and DP-cell
//    counts — so accounting, verdicts and clusters are variant-invariant.
//    Pairs outside the vector kernels' value-range envelope silently take
//    the scalar path.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "align/anchored.hpp"
#include "align/banded.hpp"
#include "align/dispatch.hpp"
#include "align/scoring.hpp"

namespace estclust::align {

/// Reusable scratch space for the banded kernel. One per slave (or one
/// thread_local per compatibility caller); never shared across threads.
struct AlignArena {
  std::vector<long> prev, cur;  ///< band rows, (2*band + 1) wide
  std::string rev_a, rev_b;     ///< reversed prefixes for leftward extension

  // SIMD scratch: 16-bit band rows (width + kSimdRowPad so full-vector
  // loads/stores past the live range stay in bounds) and byte-per-base
  // code buffers unpacked from the 2-bit packing. codes_b carries one
  // front pad byte so lane loads for j = 0 read memory, not UB; the
  // corresponding diagonal input is a dead guard cell, so the pad value
  // never reaches a live cell.
  std::vector<std::int16_t> prev16, cur16;
  std::vector<std::uint8_t> codes_a, codes_b;
  std::vector<std::uint64_t> pack_words;  ///< 2-bit packing scratch

  /// Slack past the (2*band + 1) live window for unmasked vector tails.
  static constexpr std::size_t kSimdRowPad = 32;

  /// Shrink policy: after this many consecutive ensure_width calls that
  /// need at most half the current row capacity, the arena decays to the
  /// peak width of that streak. One pathological long pair therefore no
  /// longer pins high-water band memory for the rest of a slave's life.
  static constexpr std::size_t kShrinkAfterUses = 512;

  /// Grows the band rows to at least `width` cells (shrinking them again
  /// after a long streak of much smaller requests). Contents are not
  /// preserved; the kernel re-seeds both rows on entry.
  void ensure_width(std::size_t width) {
    if (width > prev.size()) {
      prev.resize(width);
      cur.resize(width);
      streak_ = 0;
      streak_peak_ = 0;
    } else if (2 * width <= prev.size()) {
      // streak_peak_ accumulates only widths seen during the streak — if
      // it carried the grown capacity, shrink_to would be a no-op and one
      // pathological pair would pin band memory forever.
      streak_peak_ = std::max(streak_peak_, width);
      if (++streak_ >= kShrinkAfterUses) shrink_to(streak_peak_);
    } else {
      streak_ = 0;
      streak_peak_ = 0;
    }
    high_water_ = std::max(high_water_, bytes());
  }

  /// ensure_width plus the SIMD row/code buffers for an (m, n) pair.
  void ensure_simd(std::size_t width, std::size_t m, std::size_t n) {
    ensure_width(width);
    const std::size_t rows = width + kSimdRowPad;
    if (prev16.size() < rows) {
      prev16.resize(rows);
      cur16.resize(rows);
    }
    if (codes_a.size() < m) codes_a.resize(m);
    if (codes_b.size() < n + 1 + kSimdRowPad) {
      codes_b.resize(n + 1 + kSimdRowPad);
    }
    high_water_ = std::max(high_water_, bytes());
  }

  /// Current heap footprint of all scratch buffers.
  std::size_t bytes() const {
    return (prev.capacity() + cur.capacity()) * sizeof(long) +
           (prev16.capacity() + cur16.capacity()) * sizeof(std::int16_t) +
           codes_a.capacity() + codes_b.capacity() +
           pack_words.capacity() * sizeof(std::uint64_t) + rev_a.capacity() +
           rev_b.capacity();
  }

  /// Largest bytes() ever observed; feeds the align.arena_bytes gauge.
  std::size_t high_water_bytes() const { return high_water_; }

  /// Band-row capacity, in cells (test/introspection hook).
  std::size_t row_capacity() const { return prev.size(); }

 private:
  void shrink_to(std::size_t width) {
    // Swap-trick so capacity actually drops; the SIMD scratch regrows on
    // demand, so it is simply released along with the rows.
    std::vector<long>(width).swap(prev);
    std::vector<long>(width).swap(cur);
    prev16 = {};
    cur16 = {};
    codes_a = {};
    codes_b = {};
    pack_words = {};
    streak_ = 0;
    streak_peak_ = 0;
  }

  std::size_t streak_ = 0;       ///< consecutive small ensure_width calls
  std::size_t streak_peak_ = 0;  ///< max width requested during the streak
  std::size_t high_water_ = 0;
};

/// Sentinel: no give-up bound, compute the exact extension.
inline constexpr long kNoGiveUp = std::numeric_limits<long>::min();

/// The shared per-thread arena behind the legacy (arena-less) entry points
/// in banded.hpp / anchored.hpp. Hot-path callers hold their own arena.
AlignArena& tls_arena();

/// Banded overlap extension (same semantics as banded.hpp's
/// extend_overlap) computed in `arena`. With `give_up` == kNoGiveUp the
/// result is bit-identical to the reference banded sweep. With a bound,
/// the kernel may stop early and return `capped = true`; this happens only
/// when every completion of the extension scores below `give_up`.
ExtensionResult extend_overlap(std::string_view a, std::string_view b,
                               const Scoring& sc, std::size_t band,
                               AlignArena& arena, long give_up = kNoGiveUp);

/// extend_overlap computed by an explicit kernel variant instead of the
/// process-wide active_kernel(). Every variant returns bit-identical
/// results (the differential tests and fuzzers lock this in); variants the
/// host cannot run — and pairs outside the 16-bit kernels' value-range
/// envelope — fall back to the scalar sweep. This is the hook tests and
/// benches use to compare variants side by side in one process.
ExtensionResult extend_overlap_variant(KernelVariant variant,
                                       std::string_view a, std::string_view b,
                                       const Scoring& sc, std::size_t band,
                                       AlignArena& arena,
                                       long give_up = kNoGiveUp);

/// Banded global score (same semantics as banded.hpp's
/// banded_global_score) computed in `arena`.
long banded_global_score(std::string_view a, std::string_view b,
                         const Scoring& sc, std::size_t band,
                         AlignArena& arena,
                         std::uint64_t* cells_out = nullptr);

/// Anchored alignment computed in `arena` (no per-call allocation).
/// Identical results to align_anchored(a, b, anchor, p).
OverlapResult align_anchored(std::string_view a, std::string_view b,
                             const Anchor& anchor, const OverlapParams& p,
                             AlignArena& arena);

/// Anchored alignment with sound early exit. If the full result would be
/// accepted by accept_overlap(r, p), this returns exactly that full
/// result. If rejection becomes certain mid-extension (no completion can
/// reach the minimum accepting score q * match * min_overlap), it stops
/// and returns a result with `truncated = true`, which accept_overlap
/// always rejects. Acceptance verdicts are therefore identical to the
/// exact path; only the DP cell count (and score/span fields of rejected
/// pairs) may differ.
OverlapResult align_anchored_bounded(std::string_view a, std::string_view b,
                                     const Anchor& anchor,
                                     const OverlapParams& p,
                                     AlignArena& arena);

}  // namespace estclust::align
