// The production banded-DP kernel behind the §3.3 hot path.
//
// The legacy entry points in banded.hpp / anchored.hpp remain the public
// API; they are thin wrappers over this kernel. What the kernel adds:
//
//  * AlignArena — all scratch state (the two band rows and the reversed
//    prefixes used by leftward extension) lives in one reusable arena, so a
//    slave performs zero heap allocations per pair once warmed up.
//
//  * A blocked band sweep — the (2*band + 1)-wide window is the only memory
//    the row loop touches. Instead of clearing the whole window every row,
//    the sweep writes the row's live cell range plus one sentinel on each
//    side (the window boundary moves by at most one cell per row), so the
//    inner loop is a single contiguous pass per row.
//
//  * An optional give-up bound — when the caller can prove that any
//    extension scoring below `give_up` leads to a rejected overlap, the
//    kernel abandons the sweep as soon as no cell in the current row can
//    reach `give_up` any more (upper bound: current cell value plus a full
//    run of matches to the nearer string end). Results are then marked
//    `capped`; a capped extension certainly belongs to a rejected pair, so
//    acceptance verdicts — and therefore clusters — are unchanged.
//    Without a bound (kNoGiveUp) the kernel is bit-identical to the
//    pre-arena implementation.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "align/anchored.hpp"
#include "align/banded.hpp"
#include "align/scoring.hpp"

namespace estclust::align {

/// Reusable scratch space for the banded kernel. One per slave (or one
/// thread_local per compatibility caller); never shared across threads.
struct AlignArena {
  std::vector<long> prev, cur;  ///< band rows, (2*band + 1) wide
  std::string rev_a, rev_b;     ///< reversed prefixes for leftward extension

  /// Grows the band rows to at least `width` cells. Contents are not
  /// preserved; the kernel re-seeds both rows on entry.
  void ensure_width(std::size_t width) {
    if (prev.size() < width) {
      prev.resize(width);
      cur.resize(width);
    }
  }
};

/// Sentinel: no give-up bound, compute the exact extension.
inline constexpr long kNoGiveUp = std::numeric_limits<long>::min();

/// The shared per-thread arena behind the legacy (arena-less) entry points
/// in banded.hpp / anchored.hpp. Hot-path callers hold their own arena.
AlignArena& tls_arena();

/// Banded overlap extension (same semantics as banded.hpp's
/// extend_overlap) computed in `arena`. With `give_up` == kNoGiveUp the
/// result is bit-identical to the reference banded sweep. With a bound,
/// the kernel may stop early and return `capped = true`; this happens only
/// when every completion of the extension scores below `give_up`.
ExtensionResult extend_overlap(std::string_view a, std::string_view b,
                               const Scoring& sc, std::size_t band,
                               AlignArena& arena, long give_up = kNoGiveUp);

/// Banded global score (same semantics as banded.hpp's
/// banded_global_score) computed in `arena`.
long banded_global_score(std::string_view a, std::string_view b,
                         const Scoring& sc, std::size_t band,
                         AlignArena& arena,
                         std::uint64_t* cells_out = nullptr);

/// Anchored alignment computed in `arena` (no per-call allocation).
/// Identical results to align_anchored(a, b, anchor, p).
OverlapResult align_anchored(std::string_view a, std::string_view b,
                             const Anchor& anchor, const OverlapParams& p,
                             AlignArena& arena);

/// Anchored alignment with sound early exit. If the full result would be
/// accepted by accept_overlap(r, p), this returns exactly that full
/// result. If rejection becomes certain mid-extension (no completion can
/// reach the minimum accepting score q * match * min_overlap), it stops
/// and returns a result with `truncated = true`, which accept_overlap
/// always rejects. Acceptance verdicts are therefore identical to the
/// exact path; only the DP cell count (and score/span fields of rejected
/// pairs) may differ.
OverlapResult align_anchored_bounded(std::string_view a, std::string_view b,
                                     const Anchor& anchor,
                                     const OverlapParams& p,
                                     AlignArena& arena);

}  // namespace estclust::align
