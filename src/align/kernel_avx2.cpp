// AVX2 policy for the striped band sweep: 16 int16 lanes. This file is the
// only one compiled with -mavx2 (see src/align/CMakeLists.txt), so nothing
// but the sweep itself may live here — the dispatcher guarantees it is
// only entered on hosts whose CPU advertises AVX2. The max-plus scan runs
// per 128-bit half with cheap in-half byte shifts and finishes with one
// cross-half bridge step (see shift1/bridge below), keeping the 3-cycle
// cross-half permutes off the common path.
#include "align/kernel_simd.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

#include "align/kernel_sweep.hpp"

namespace estclust::align::detail {

namespace {

struct Avx2Ops {
  using vec = __m256i;
  static constexpr int kLanes = 16;

  static vec load(const std::int16_t* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void store(std::int16_t* p, vec v) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }
  static vec broadcast(std::int16_t x) { return _mm256_set1_epi16(x); }
  static vec add(vec a, vec b) { return _mm256_adds_epi16(a, b); }
  static vec sub(vec a, vec b) { return _mm256_subs_epi16(a, b); }
  static vec max(vec a, vec b) { return _mm256_max_epi16(a, b); }
  static vec min(vec a, vec b) { return _mm256_min_epi16(a, b); }
  static vec mullo(vec a, vec b) { return _mm256_mullo_epi16(a, b); }
  static vec cmpeq(vec a, vec b) { return _mm256_cmpeq_epi16(a, b); }
  static vec cmpgt(vec a, vec b) { return _mm256_cmpgt_epi16(a, b); }
  static vec blend(vec mask, vec a, vec b) {
    return _mm256_blendv_epi8(b, a, mask);
  }
  static vec widen_codes(const std::uint8_t* p) {
    return _mm256_cvtepu8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
  }
  // Scan shifts. Step 1 is a genuine 16-lane shift (permute + alignr to
  // carry lane 7 into lane 8): that makes the sweep's early-exit test —
  // "the distance-1 step raised nothing" — sound across the half boundary,
  // so the common converged case pays neither the longer steps nor the
  // bridge. Steps 2/4 run PER 128-BIT HALF with cheap vpslldq (which does
  // not cross the boundary — here a feature): the terms they miss, every
  // low-half source feeding a high-half lane, collapse into the single
  // bridge() candidate applied afterwards on the cliff path. Fill
  // constants stamp kNegInf16 into the lanes each shift vacates.
  static vec fill1() {
    return _mm256_setr_epi16(kNegInf16, 0, 0, 0, 0, 0, 0, 0, kNegInf16, 0,
                             0, 0, 0, 0, 0, 0);
  }
  static vec fill2() {
    return _mm256_setr_epi16(kNegInf16, kNegInf16, 0, 0, 0, 0, 0, 0,
                             kNegInf16, kNegInf16, 0, 0, 0, 0, 0, 0);
  }
  static vec fill4() {
    return _mm256_setr_epi16(kNegInf16, kNegInf16, kNegInf16, kNegInf16, 0,
                             0, 0, 0, kNegInf16, kNegInf16, kNegInf16,
                             kNegInf16, 0, 0, 0, 0);
  }
  static vec shift1(vec v) {
    return _mm256_or_si256(_mm256_slli_si256(v, 2), fill1());
  }
  static vec shift2(vec v) {
    return _mm256_or_si256(_mm256_slli_si256(v, 4), fill2());
  }
  static vec shift4(vec v) {
    return _mm256_or_si256(_mm256_slli_si256(v, 8), fill4());
  }
  // Cross-half completion after the per-half steps 2/4. Lane l >= 8 still
  // misses most low-half terms; they all collapse to the single candidate
  // lo_scan[7] + (l - 7)*gap, because lo_scan[7] already carries every low
  // lane at its gap distance (step 1's lane-7 -> lane-8 crossing composes
  // with the in-half steps for the rest, but never reaches distance 8 nor
  // sources below lane 7 — the bridge covers exactly those). hi_ramp holds
  // (l - 7)*gap in the high lanes (low lanes are discarded by the
  // immediate blend).
  static vec bridge(vec v, vec hi_ramp) {
    const vec s7 = _mm256_broadcastw_epi16(
        _mm_srli_si128(_mm256_castsi256_si128(v), 14));
    const vec fixed =
        _mm256_max_epi16(v, _mm256_adds_epi16(s7, hi_ramp));
    return _mm256_blend_epi32(v, fixed, 0xF0);
  }
  // Multiplied by gap to build hi_ramp: distance from lane 7 for the high
  // half, zero (unused) for the low half.
  static vec bridge_iota() {
    return _mm256_setr_epi16(0, 0, 0, 0, 0, 0, 0, 0, 1, 2, 3, 4, 5, 6, 7,
                             8);
  }
  // result[l] = a[l+1] for l < 15, result[15] = b[0]: the "up" row input,
  // built in-register so the sweep never issues a load that straddles the
  // previous row's vector store and its scalar tail/guard stores (such
  // straddling loads defeat store-to-load forwarding and stall every row).
  static vec shift_down_concat(vec a, vec b) {
    const vec t = _mm256_permute2x128_si256(a, b, 0x21);  // [a_hi : b_lo]
    return _mm256_alignr_epi8(t, a, 2);
  }
  static bool all_equal(vec a, vec b) {
    return _mm256_movemask_epi8(_mm256_cmpeq_epi16(a, b)) == -1;
  }
  static std::int16_t last_lane(vec v) {
    return static_cast<std::int16_t>(_mm256_extract_epi16(v, 15));
  }
  static std::int16_t hmax(vec v) {
    __m128i h = _mm_max_epi16(_mm256_castsi256_si128(v),
                              _mm256_extracti128_si256(v, 1));
    h = _mm_max_epi16(h, _mm_srli_si128(h, 8));
    h = _mm_max_epi16(h, _mm_srli_si128(h, 4));
    h = _mm_max_epi16(h, _mm_srli_si128(h, 2));
    return static_cast<std::int16_t>(_mm_extract_epi16(h, 0));
  }
  static vec iota() {
    return _mm256_setr_epi16(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13,
                             14, 15);
  }
};

}  // namespace

ExtensionResult band_sweep_avx2(std::string_view a, std::string_view b,
                                const Scoring& sc, std::size_t band,
                                AlignArena& arena, long give_up) {
  if (give_up == kNoGiveUp) {
    return band_sweep_simd<Avx2Ops, false>(a, b, sc, band, arena, give_up);
  }
  return band_sweep_simd<Avx2Ops, true>(a, b, sc, band, arena, give_up);
}

bool have_avx2_kernel() { return true; }

}  // namespace estclust::align::detail

#else  // !__AVX2__

#include "util/check.hpp"

namespace estclust::align::detail {

ExtensionResult band_sweep_avx2(std::string_view, std::string_view,
                                const Scoring&, std::size_t, AlignArena&,
                                long) {
  ESTCLUST_CHECK_MSG(false, "avx2 kernel not compiled in");
  return {};
}

bool have_avx2_kernel() { return false; }

}  // namespace estclust::align::detail

#endif
