// Anchored pairwise alignment (Fig 5a) and overlap classification (Fig 5b).
//
// Instead of aligning two whole ESTs, the production path extends an
// already-known maximal common substring match leftward and rightward with
// banded DP, then checks whether the resulting alignment has one of the four
// shapes accepted as evidence for merging clusters:
//   1. a suffix of s overlaps a prefix of s'   (dovetail s, s')
//   2. a suffix of s' overlaps a prefix of s   (dovetail s', s)
//   3. s is contained in s'
//   4. s' is contained in s
#pragma once

#include <cstdint>
#include <string_view>

#include "align/banded.hpp"
#include "align/scoring.hpp"

namespace estclust::align {

/// A common-substring seed: a[a_pos .. a_pos+len) == b[b_pos .. b_pos+len).
struct Anchor {
  std::size_t a_pos = 0;
  std::size_t b_pos = 0;
  std::size_t len = 0;
};

enum class OverlapKind : std::uint8_t {
  kNone = 0,          ///< alignment does not reach string boundaries
  kABDovetail,        ///< suffix of a overlaps prefix of b (a precedes b)
  kBADovetail,        ///< suffix of b overlaps prefix of a (b precedes a)
  kAContainedInB,     ///< all of a aligns within b
  kBContainedInA,     ///< all of b aligns within a
};

const char* to_string(OverlapKind kind);

/// Outcome of anchored alignment of one pair.
struct OverlapResult {
  long score = 0;
  double quality = 0.0;  ///< score / ideal score of the aligned span
  OverlapKind kind = OverlapKind::kNone;
  std::size_t a_begin = 0, a_end = 0;  ///< aligned span in a
  std::size_t b_begin = 0, b_end = 0;  ///< aligned span in b
  std::uint64_t cells = 0;             ///< DP cells computed
  /// Set by align_anchored_bounded (kernel.hpp) when an extension was cut
  /// short because rejection was already certain. A truncated result is
  /// never accepted; score/quality/span fields are partial.
  bool truncated = false;

  std::size_t a_span() const { return a_end - a_begin; }
  std::size_t b_span() const { return b_end - b_begin; }
};

/// Acceptance parameters (§3.3 "quality can be controlled by the usual set
/// of parameters").
struct OverlapParams {
  Scoring scoring;
  std::size_t band = 8;        ///< banded-DP radius (errors tolerated)
  double min_quality = 0.80;   ///< score / ideal-score acceptance ratio
  std::size_t min_overlap = 40;  ///< minimum aligned span (both strings)
};

/// Extends `anchor` in both directions and classifies the overlap.
/// Preconditions: the anchor ranges are in bounds and the anchored texts
/// are equal (checked).
OverlapResult align_anchored(std::string_view a, std::string_view b,
                             const Anchor& anchor, const OverlapParams& p);

/// True iff `r` is strong enough evidence to merge the pair's clusters.
bool accept_overlap(const OverlapResult& r, const OverlapParams& p);

}  // namespace estclust::align
