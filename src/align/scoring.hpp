// Alignment scoring parameters (§3.3: match/mismatch scores, gap penalties,
// and the score-to-ideal-score acceptance ratio).
#pragma once

#include <cstdint>

namespace estclust::align {

/// Linear-gap scoring used by the production (banded/anchored) kernels.
/// Affine gaps are available in the reference Gotoh kernel.
struct Scoring {
  int match = 2;       ///< score for an identical base pair
  int mismatch = -3;   ///< score for a substitution
  int gap = -4;        ///< per-base insertion/deletion penalty
  int gap_open = -5;   ///< affine: opening a gap (Gotoh kernel only)
  int gap_extend = -2; ///< affine: extending a gap (Gotoh kernel only)

  /// Score of an all-match alignment of `len` bases — the "ideal score"
  /// denominator of the paper's quality ratio.
  long ideal(std::size_t len) const {
    return static_cast<long>(match) * static_cast<long>(len);
  }
};

}  // namespace estclust::align
