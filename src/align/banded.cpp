// Legacy entry points: thin wrappers over the arena-based blocked kernel
// in kernel.cpp, plus the O(mn) reference used for validation.
#include "align/banded.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "align/kernel.hpp"

namespace estclust::align {

namespace {
constexpr long kNegInf = std::numeric_limits<long>::min() / 4;
}

ExtensionResult extend_overlap(std::string_view a, std::string_view b,
                               const Scoring& sc, std::size_t band) {
  return extend_overlap(a, b, sc, band, tls_arena());
}

ExtensionResult extend_overlap_reference(std::string_view a,
                                         std::string_view b,
                                         const Scoring& sc) {
  const std::size_t m = a.size(), n = b.size();
  std::vector<long> prev(n + 1), cur(n + 1);
  ExtensionResult best;
  best.score = kNegInf;

  auto consider = [&](long score, std::size_t i, std::size_t j) {
    if (i != m && j != n) return;
    if (score > best.score ||
        (score == best.score && i + j > best.a_len + best.b_len)) {
      best.score = score;
      best.a_len = i;
      best.b_len = j;
      best.a_exhausted = (i == m);
      best.b_exhausted = (j == n);
    }
  };

  for (std::size_t j = 0; j <= n; ++j) {
    prev[j] = static_cast<long>(j) * sc.gap;
    consider(prev[j], 0, j);
  }
  for (std::size_t i = 1; i <= m; ++i) {
    cur[0] = static_cast<long>(i) * sc.gap;
    consider(cur[0], i, 0);
    for (std::size_t j = 1; j <= n; ++j) {
      long diag =
          prev[j - 1] + (a[i - 1] == b[j - 1] ? sc.match : sc.mismatch);
      long up = prev[j] + sc.gap;
      long left = cur[j - 1] + sc.gap;
      cur[j] = std::max({diag, up, left});
      consider(cur[j], i, j);
    }
    std::swap(prev, cur);
  }
  best.cells = (m + 1) * (n + 1);
  return best;
}

long banded_global_score(std::string_view a, std::string_view b,
                         const Scoring& sc, std::size_t band,
                         std::uint64_t* cells_out) {
  return banded_global_score(a, b, sc, band, tls_arena(), cells_out);
}

}  // namespace estclust::align
