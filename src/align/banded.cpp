#include "align/banded.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "util/check.hpp"

namespace estclust::align {

namespace {
constexpr long kNegInf = std::numeric_limits<long>::min() / 4;
}

ExtensionResult extend_overlap(std::string_view a, std::string_view b,
                               const Scoring& sc, std::size_t band) {
  const std::size_t m = a.size(), n = b.size();
  ExtensionResult best;
  best.score = kNegInf;

  // Degenerate: nothing to extend on one side — the (0,0) cell is already a
  // boundary cell with score 0.
  if (m == 0 || n == 0) {
    best.score = 0;
    best.a_len = 0;
    best.b_len = 0;
    best.a_exhausted = (m == 0);
    best.b_exhausted = (n == 0);
    return best;
  }

  // Row i covers j in [i - band, i + band] clipped to [0, n]. Rows are
  // stored in a (2*band + 1)-wide window indexed by (j - i + band).
  const std::size_t width = 2 * band + 1;
  std::vector<long> prev(width, kNegInf), cur(width, kNegInf);
  std::uint64_t cells = 0;

  auto consider = [&](long score, std::size_t i, std::size_t j) {
    // Boundary (semi-global) cells: all of a or all of b consumed.
    if (i != m && j != n) return;
    if (score > best.score ||
        (score == best.score && i + j > best.a_len + best.b_len)) {
      best.score = score;
      best.a_len = i;
      best.b_len = j;
      best.a_exhausted = (i == m);
      best.b_exhausted = (j == n);
    }
  };

  // Row 0: H[0][j] = j * gap for j <= band.
  for (std::size_t j = 0; j <= std::min(n, band); ++j) {
    prev[j - 0 + band] = static_cast<long>(j) * sc.gap;
    consider(prev[j + band], 0, j);
  }

  for (std::size_t i = 1; i <= m; ++i) {
    std::fill(cur.begin(), cur.end(), kNegInf);
    const std::size_t jlo = (i > band) ? i - band : 0;
    const std::size_t jhi = std::min(n, i + band);
    if (jlo > n) break;  // band has left the rectangle
    for (std::size_t j = jlo; j <= jhi; ++j) {
      const std::size_t k = j - i + band;  // in [0, width)
      long v = kNegInf;
      // Diagonal from (i-1, j-1): window offset k in the previous row.
      if (j > 0 && prev[k] != kNegInf) {
        v = prev[k] + (a[i - 1] == b[j - 1] ? sc.match : sc.mismatch);
      }
      // Up from (i-1, j): offset k+1 in the previous row.
      if (k + 1 < width && prev[k + 1] != kNegInf) {
        v = std::max(v, prev[k + 1] + sc.gap);
      }
      // Left from (i, j-1): offset k-1 in the current row.
      if (k > 0 && cur[k - 1] != kNegInf) {
        v = std::max(v, cur[k - 1] + sc.gap);
      }
      cur[k] = v;
      ++cells;
      if (v != kNegInf) consider(v, i, j);
    }
    std::swap(prev, cur);
  }

  best.cells = cells;
  ESTCLUST_CHECK_MSG(best.score != kNegInf,
                     "banded extension found no boundary cell");
  return best;
}

ExtensionResult extend_overlap_reference(std::string_view a,
                                         std::string_view b,
                                         const Scoring& sc) {
  const std::size_t m = a.size(), n = b.size();
  std::vector<long> prev(n + 1), cur(n + 1);
  ExtensionResult best;
  best.score = kNegInf;

  auto consider = [&](long score, std::size_t i, std::size_t j) {
    if (i != m && j != n) return;
    if (score > best.score ||
        (score == best.score && i + j > best.a_len + best.b_len)) {
      best.score = score;
      best.a_len = i;
      best.b_len = j;
      best.a_exhausted = (i == m);
      best.b_exhausted = (j == n);
    }
  };

  for (std::size_t j = 0; j <= n; ++j) {
    prev[j] = static_cast<long>(j) * sc.gap;
    consider(prev[j], 0, j);
  }
  for (std::size_t i = 1; i <= m; ++i) {
    cur[0] = static_cast<long>(i) * sc.gap;
    consider(cur[0], i, 0);
    for (std::size_t j = 1; j <= n; ++j) {
      long diag =
          prev[j - 1] + (a[i - 1] == b[j - 1] ? sc.match : sc.mismatch);
      long up = prev[j] + sc.gap;
      long left = cur[j - 1] + sc.gap;
      cur[j] = std::max({diag, up, left});
      consider(cur[j], i, j);
    }
    std::swap(prev, cur);
  }
  best.cells = (m + 1) * (n + 1);
  return best;
}

long banded_global_score(std::string_view a, std::string_view b,
                         const Scoring& sc, std::size_t band,
                         std::uint64_t* cells_out) {
  const std::size_t m = a.size(), n = b.size();
  const std::size_t diff = m > n ? m - n : n - m;
  if (diff > band) {
    if (cells_out) *cells_out = 0;
    return kNegInf;
  }
  const std::size_t width = 2 * band + 1;
  std::vector<long> prev(width, kNegInf), cur(width, kNegInf);
  std::uint64_t cells = 0;

  for (std::size_t j = 0; j <= std::min(n, band); ++j) {
    prev[j + band] = static_cast<long>(j) * sc.gap;
  }
  for (std::size_t i = 1; i <= m; ++i) {
    std::fill(cur.begin(), cur.end(), kNegInf);
    const std::size_t jlo = (i > band) ? i - band : 0;
    const std::size_t jhi = std::min(n, i + band);
    for (std::size_t j = jlo; j <= jhi; ++j) {
      const std::size_t k = j - i + band;
      long v = kNegInf;
      if (j > 0 && prev[k] != kNegInf) {
        v = prev[k] + (a[i - 1] == b[j - 1] ? sc.match : sc.mismatch);
      }
      if (k + 1 < width && prev[k + 1] != kNegInf) {
        v = std::max(v, prev[k + 1] + sc.gap);
      }
      if (k > 0 && cur[k - 1] != kNegInf) {
        v = std::max(v, cur[k - 1] + sc.gap);
      }
      cur[k] = v;
      ++cells;
    }
    std::swap(prev, cur);
  }
  if (cells_out) *cells_out = cells;
  // |n - m| <= band was checked above, so this index is inside the window.
  return prev[n - m + band];
}

}  // namespace estclust::align
