// SSE2 policy for the striped band sweep: 8 int16 lanes. Everything the
// sweep needs (saturating add/sub, max/min, mullo, compares) is native
// epi16 SSE2, which is why the lanes are 16-bit rather than 32.
#include "align/kernel_simd.hpp"

#if defined(__SSE2__)

#include <emmintrin.h>

#include "align/kernel_sweep.hpp"

namespace estclust::align::detail {

namespace {

struct Sse2Ops {
  using vec = __m128i;
  static constexpr int kLanes = 8;

  static vec load(const std::int16_t* p) {
    return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  }
  static void store(std::int16_t* p, vec v) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
  }
  static vec broadcast(std::int16_t x) { return _mm_set1_epi16(x); }
  static vec add(vec a, vec b) { return _mm_adds_epi16(a, b); }
  static vec sub(vec a, vec b) { return _mm_subs_epi16(a, b); }
  static vec max(vec a, vec b) { return _mm_max_epi16(a, b); }
  static vec min(vec a, vec b) { return _mm_min_epi16(a, b); }
  static vec mullo(vec a, vec b) { return _mm_mullo_epi16(a, b); }
  static vec cmpeq(vec a, vec b) { return _mm_cmpeq_epi16(a, b); }
  static vec cmpgt(vec a, vec b) { return _mm_cmpgt_epi16(a, b); }
  static vec blend(vec mask, vec a, vec b) {
    return _mm_or_si128(_mm_and_si128(mask, a), _mm_andnot_si128(mask, b));
  }
  static vec widen_codes(const std::uint8_t* p) {
    return _mm_unpacklo_epi8(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p)),
        _mm_setzero_si128());
  }
  // Lane shifts toward higher indices; vacated low lanes become kNegInf16
  // (OR with the sentinel bit pattern, which the shifted-in zeros adopt).
  static vec shift1(vec v) {
    return _mm_or_si128(_mm_slli_si128(v, 2),
                        _mm_setr_epi16(kNegInf16, 0, 0, 0, 0, 0, 0, 0));
  }
  static vec shift2(vec v) {
    return _mm_or_si128(
        _mm_slli_si128(v, 4),
        _mm_setr_epi16(kNegInf16, kNegInf16, 0, 0, 0, 0, 0, 0));
  }
  static vec shift4(vec v) {
    return _mm_or_si128(_mm_slli_si128(v, 8),
                        _mm_setr_epi16(kNegInf16, kNegInf16, kNegInf16,
                                       kNegInf16, 0, 0, 0, 0));
  }
  // 8 lanes fit one 128-bit register, so the per-half scan is already the
  // whole scan: the cross-half bridge is the identity.
  static vec bridge(vec v, vec hi_ramp) {
    (void)hi_ramp;
    return v;
  }
  static vec bridge_iota() { return _mm_setzero_si128(); }
  // result[l] = a[l+1] for l < 7, result[7] = b[0]: the "up" row input,
  // built in-register so the sweep never issues a load that straddles the
  // previous row's vector store and its scalar tail/guard stores (such
  // straddling loads defeat store-to-load forwarding and stall every row).
  static vec shift_down_concat(vec a, vec b) {
    return _mm_or_si128(_mm_srli_si128(a, 2), _mm_slli_si128(b, 14));
  }
  static bool all_equal(vec a, vec b) {
    return _mm_movemask_epi8(_mm_cmpeq_epi16(a, b)) == 0xFFFF;
  }
  static std::int16_t last_lane(vec v) {
    return static_cast<std::int16_t>(_mm_extract_epi16(v, 7));
  }
  static std::int16_t hmax(vec v) {
    v = _mm_max_epi16(v, _mm_srli_si128(v, 8));
    v = _mm_max_epi16(v, _mm_srli_si128(v, 4));
    v = _mm_max_epi16(v, _mm_srli_si128(v, 2));
    return static_cast<std::int16_t>(_mm_extract_epi16(v, 0));
  }
  static vec iota() { return _mm_setr_epi16(0, 1, 2, 3, 4, 5, 6, 7); }
};

}  // namespace

ExtensionResult band_sweep_sse2(std::string_view a, std::string_view b,
                                const Scoring& sc, std::size_t band,
                                AlignArena& arena, long give_up) {
  if (give_up == kNoGiveUp) {
    return band_sweep_simd<Sse2Ops, false>(a, b, sc, band, arena, give_up);
  }
  return band_sweep_simd<Sse2Ops, true>(a, b, sc, band, arena, give_up);
}

bool have_sse2_kernel() { return true; }

}  // namespace estclust::align::detail

#else  // !__SSE2__

#include "util/check.hpp"

namespace estclust::align::detail {

ExtensionResult band_sweep_sse2(std::string_view, std::string_view,
                                const Scoring&, std::size_t, AlignArena&,
                                long) {
  ESTCLUST_CHECK_MSG(false, "sse2 kernel not compiled in");
  return {};
}

bool have_sse2_kernel() { return false; }

}  // namespace estclust::align::detail

#endif
