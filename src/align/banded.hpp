// Banded alignment kernels (§3.3: "to further limit work, we use banded
// dynamic programming, where the band size is determined by the number of
// errors tolerated").
#pragma once

#include <cstdint>
#include <string_view>

#include "align/scoring.hpp"

namespace estclust::align {

/// Result of a banded overlap extension starting at (0, 0).
struct ExtensionResult {
  long score = 0;          ///< best semi-global score
  std::size_t a_len = 0;   ///< prefix of `a` consumed by the best extension
  std::size_t b_len = 0;   ///< prefix of `b` consumed
  bool a_exhausted = false;  ///< extension reached the end of a
  bool b_exhausted = false;  ///< extension reached the end of b
  std::uint64_t cells = 0;   ///< DP cells computed
  /// The kernel stopped early under a give-up bound (see kernel.hpp): the
  /// reported score is a partial best and every completion provably scores
  /// below the bound. Always false without a bound.
  bool capped = false;
};

/// Best extension of `a` against `b` where the alignment starts at (0,0)
/// and must consume all of `a` or all of `b` (overlap/semi-global
/// semantics), restricted to diagonals within `band` of the main diagonal.
/// Used twice per pair by the anchored aligner: once rightward from the
/// anchor and once leftward on reversed prefixes.
ExtensionResult extend_overlap(std::string_view a, std::string_view b,
                               const Scoring& sc, std::size_t band);

/// O(mn) reference implementation of the same semantics (no band) for
/// validation; with band >= max(m, n) the banded kernel must agree.
ExtensionResult extend_overlap_reference(std::string_view a,
                                         std::string_view b,
                                         const Scoring& sc);

/// Banded global alignment score. Requires the end cell to be inside the
/// band (|m - n| <= band); returns the best global score, or LONG_MIN/4 if
/// no path fits in the band.
long banded_global_score(std::string_view a, std::string_view b,
                         const Scoring& sc, std::size_t band,
                         std::uint64_t* cells_out = nullptr);

}  // namespace estclust::align
