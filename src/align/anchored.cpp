#include "align/anchored.hpp"

#include <algorithm>
#include <string>

#include "util/check.hpp"

namespace estclust::align {

const char* to_string(OverlapKind kind) {
  switch (kind) {
    case OverlapKind::kNone:
      return "none";
    case OverlapKind::kABDovetail:
      return "ab-dovetail";
    case OverlapKind::kBADovetail:
      return "ba-dovetail";
    case OverlapKind::kAContainedInB:
      return "a-contained";
    case OverlapKind::kBContainedInA:
      return "b-contained";
  }
  return "?";
}

OverlapResult align_anchored(std::string_view a, std::string_view b,
                             const Anchor& anchor, const OverlapParams& p) {
  ESTCLUST_CHECK(anchor.a_pos + anchor.len <= a.size());
  ESTCLUST_CHECK(anchor.b_pos + anchor.len <= b.size());
  ESTCLUST_DCHECK(a.substr(anchor.a_pos, anchor.len) ==
                  b.substr(anchor.b_pos, anchor.len));

  // Rightward: suffixes after the anchor.
  ExtensionResult right =
      extend_overlap(a.substr(anchor.a_pos + anchor.len),
                     b.substr(anchor.b_pos + anchor.len), p.scoring, p.band);

  // Leftward: prefixes before the anchor, reversed so the extension again
  // starts at offset 0.
  std::string la(a.substr(0, anchor.a_pos));
  std::string lb(b.substr(0, anchor.b_pos));
  std::reverse(la.begin(), la.end());
  std::reverse(lb.begin(), lb.end());
  ExtensionResult left = extend_overlap(la, lb, p.scoring, p.band);

  OverlapResult res;
  res.cells = left.cells + right.cells;
  res.score = p.scoring.ideal(anchor.len) + left.score + right.score;
  res.a_begin = anchor.a_pos - left.a_len;
  res.b_begin = anchor.b_pos - left.b_len;
  res.a_end = anchor.a_pos + anchor.len + right.a_len;
  res.b_end = anchor.b_pos + anchor.len + right.b_len;

  double ideal_len =
      (static_cast<double>(res.a_span()) + static_cast<double>(res.b_span())) /
      2.0;
  if (ideal_len > 0.0) {
    res.quality = static_cast<double>(res.score) /
                  (static_cast<double>(p.scoring.match) * ideal_len);
    res.quality = std::clamp(res.quality, -1.0, 1.0);
  }

  const bool a_start = res.a_begin == 0;
  const bool b_start = res.b_begin == 0;
  const bool a_end = res.a_end == a.size();
  const bool b_end = res.b_end == b.size();
  if (a_start && a_end) {
    res.kind = OverlapKind::kAContainedInB;
  } else if (b_start && b_end) {
    res.kind = OverlapKind::kBContainedInA;
  } else if (b_start && a_end) {
    // Alignment runs to the end of a and the start of b: a precedes b.
    res.kind = OverlapKind::kABDovetail;
  } else if (a_start && b_end) {
    res.kind = OverlapKind::kBADovetail;
  } else {
    res.kind = OverlapKind::kNone;
  }
  return res;
}

bool accept_overlap(const OverlapResult& r, const OverlapParams& p) {
  if (r.kind == OverlapKind::kNone) return false;
  if (r.quality < p.min_quality) return false;
  return std::min(r.a_span(), r.b_span()) >= p.min_overlap;
}

}  // namespace estclust::align
