// Overlap classification names and the legacy (arena-less) anchored entry
// point; the DP itself lives in kernel.cpp.
#include "align/anchored.hpp"

#include <algorithm>

#include "align/kernel.hpp"

namespace estclust::align {

const char* to_string(OverlapKind kind) {
  switch (kind) {
    case OverlapKind::kNone:
      return "none";
    case OverlapKind::kABDovetail:
      return "ab-dovetail";
    case OverlapKind::kBADovetail:
      return "ba-dovetail";
    case OverlapKind::kAContainedInB:
      return "a-contained";
    case OverlapKind::kBContainedInA:
      return "b-contained";
  }
  return "?";
}

OverlapResult align_anchored(std::string_view a, std::string_view b,
                             const Anchor& anchor, const OverlapParams& p) {
  return align_anchored(a, b, anchor, p, tls_arena());
}

bool accept_overlap(const OverlapResult& r, const OverlapParams& p) {
  if (r.truncated) return false;  // rejection was already certain mid-DP
  if (r.kind == OverlapKind::kNone) return false;
  if (r.quality < p.min_quality) return false;
  return std::min(r.a_span(), r.b_span()) >= p.min_overlap;
}

}  // namespace estclust::align
