#include "align/nw.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "util/check.hpp"

namespace estclust::align {

namespace {

constexpr long kNegInf = std::numeric_limits<long>::min() / 4;

// Traceback direction codes shared by the kernels.
enum Dir : std::uint8_t { kStop = 0, kDiag = 1, kUp = 2, kLeft = 3 };

// Walks a direction matrix from (ai, bj) back to a kStop cell (or to (0,0)
// for global alignments) and fills the transcript/statistics of `res`.
void traceback(const std::vector<std::uint8_t>& dir, std::size_t cols,
               std::string_view a, std::string_view b, std::size_t ai,
               std::size_t bj, bool stop_at_zero, AlignResult& res) {
  std::string ops;
  std::size_t i = ai, j = bj;
  while (i > 0 || j > 0) {
    std::uint8_t d = dir[i * cols + j];
    if (stop_at_zero && d == kStop) break;
    if (d == kDiag) {
      ops.push_back(a[i - 1] == b[j - 1] ? 'M' : 'X');
      --i;
      --j;
    } else if (d == kUp) {
      ops.push_back('D');
      --i;
    } else if (d == kLeft) {
      ops.push_back('I');
      --j;
    } else {
      break;  // kStop in a global trace only happens at the origin
    }
  }
  std::reverse(ops.begin(), ops.end());
  res.a_begin = i;
  res.b_begin = j;
  res.a_end = ai;
  res.b_end = bj;
  for (char c : ops) {
    if (c == 'M') ++res.matches;
    else if (c == 'X') ++res.mismatches;
    else ++res.gaps;
  }
  res.ops = std::move(ops);
}

}  // namespace

AlignResult global_align(std::string_view a, std::string_view b,
                         const Scoring& sc) {
  const std::size_t m = a.size(), n = b.size();
  const std::size_t cols = n + 1;
  std::vector<long> prev(cols), cur(cols);
  std::vector<std::uint8_t> dir((m + 1) * cols, kStop);

  for (std::size_t j = 1; j <= n; ++j) {
    prev[j] = prev[j - 1] + sc.gap;
    dir[j] = kLeft;
  }
  for (std::size_t i = 1; i <= m; ++i) {
    cur[0] = prev[0] + sc.gap;
    dir[i * cols] = kUp;
    for (std::size_t j = 1; j <= n; ++j) {
      long diag =
          prev[j - 1] + (a[i - 1] == b[j - 1] ? sc.match : sc.mismatch);
      long up = prev[j] + sc.gap;
      long left = cur[j - 1] + sc.gap;
      long best = diag;
      std::uint8_t d = kDiag;
      if (up > best) {
        best = up;
        d = kUp;
      }
      if (left > best) {
        best = left;
        d = kLeft;
      }
      cur[j] = best;
      dir[i * cols + j] = d;
    }
    std::swap(prev, cur);
  }

  AlignResult res;
  res.score = prev[n];
  res.cells = (m + 1) * (n + 1);
  traceback(dir, cols, a, b, m, n, /*stop_at_zero=*/false, res);
  return res;
}

AlignResult global_align_affine(std::string_view a, std::string_view b,
                                const Scoring& sc) {
  const std::size_t m = a.size(), n = b.size();
  const std::size_t cols = n + 1;
  // Gotoh: H best ending in match/mismatch or any, E gap in a (left moves),
  // F gap in b (up moves). Traceback via one combined direction matrix that
  // records which of the three recurrences produced H; gap runs are then
  // re-derived greedily, which is exact for affine penalties because an
  // optimal gap run never splits.
  std::vector<long> h_prev(cols), h_cur(cols), e_cur(cols), f_prev(cols);
  std::vector<std::uint8_t> dir((m + 1) * cols, kStop);

  h_prev[0] = 0;
  f_prev[0] = kNegInf;
  for (std::size_t j = 1; j <= n; ++j) {
    h_prev[j] = sc.gap_open + static_cast<long>(j) * sc.gap_extend;
    f_prev[j] = kNegInf;
    dir[j] = kLeft;
  }
  std::vector<long> f_cur(cols);
  for (std::size_t i = 1; i <= m; ++i) {
    h_cur[0] = sc.gap_open + static_cast<long>(i) * sc.gap_extend;
    e_cur[0] = kNegInf;
    f_cur[0] = kNegInf;
    dir[i * cols] = kUp;
    for (std::size_t j = 1; j <= n; ++j) {
      e_cur[j] = std::max(e_cur[j - 1] + sc.gap_extend,
                          h_cur[j - 1] + sc.gap_open + sc.gap_extend);
      f_cur[j] = std::max(f_prev[j] + sc.gap_extend,
                          h_prev[j] + sc.gap_open + sc.gap_extend);
      long diag =
          h_prev[j - 1] + (a[i - 1] == b[j - 1] ? sc.match : sc.mismatch);
      long best = diag;
      std::uint8_t d = kDiag;
      if (f_cur[j] > best) {
        best = f_cur[j];
        d = kUp;
      }
      if (e_cur[j] > best) {
        best = e_cur[j];
        d = kLeft;
      }
      h_cur[j] = best;
      dir[i * cols + j] = d;
    }
    std::swap(h_prev, h_cur);
    std::swap(f_prev, f_cur);
  }

  AlignResult res;
  res.score = h_prev[n];
  res.cells = (m + 1) * (n + 1);
  traceback(dir, cols, a, b, m, n, /*stop_at_zero=*/false, res);
  return res;
}

AlignResult local_align(std::string_view a, std::string_view b,
                        const Scoring& sc) {
  const std::size_t m = a.size(), n = b.size();
  const std::size_t cols = n + 1;
  std::vector<long> prev(cols, 0), cur(cols, 0);
  std::vector<std::uint8_t> dir((m + 1) * cols, kStop);

  long best = 0;
  std::size_t bi = 0, bj = 0;
  for (std::size_t i = 1; i <= m; ++i) {
    cur[0] = 0;
    for (std::size_t j = 1; j <= n; ++j) {
      long diag =
          prev[j - 1] + (a[i - 1] == b[j - 1] ? sc.match : sc.mismatch);
      long up = prev[j] + sc.gap;
      long left = cur[j - 1] + sc.gap;
      long v = diag;
      std::uint8_t d = kDiag;
      if (up > v) {
        v = up;
        d = kUp;
      }
      if (left > v) {
        v = left;
        d = kLeft;
      }
      if (v <= 0) {
        v = 0;
        d = kStop;
      }
      cur[j] = v;
      dir[i * cols + j] = d;
      if (v > best) {
        best = v;
        bi = i;
        bj = j;
      }
    }
    std::swap(prev, cur);
  }

  AlignResult res;
  res.score = best;
  res.cells = (m + 1) * (n + 1);
  if (best > 0) {
    traceback(dir, cols, a, b, bi, bj, /*stop_at_zero=*/true, res);
  }
  return res;
}

AlignResult local_align_affine(std::string_view a, std::string_view b,
                               const Scoring& sc) {
  const std::size_t m = a.size(), n = b.size();
  const std::size_t cols = n + 1;
  // Three DP states per cell: H (ends in match/mismatch or fresh start),
  // E (gap in a; consumed b, moving left), F (gap in b; consumed a, moving
  // up). Backpointers record, per state, which state the optimum came
  // from, so the traceback is exact for affine penalties.
  enum State : std::uint8_t { kH = 0, kE = 1, kF = 2 };
  // h_from: kStop=fresh start, kDiag=H diag, kUp=F here, kLeft=E here.
  std::vector<long> h_prev(cols, 0), h_cur(cols, 0);
  std::vector<long> e_cur(cols, kNegInf);
  std::vector<long> f_prev(cols, kNegInf), f_cur(cols, kNegInf);
  std::vector<std::uint8_t> h_from((m + 1) * cols, kStop);
  std::vector<std::uint8_t> e_open((m + 1) * cols, 1);  // 1: opened from H
  std::vector<std::uint8_t> f_open((m + 1) * cols, 1);

  long best = 0;
  std::size_t bi = 0, bj = 0;
  for (std::size_t i = 1; i <= m; ++i) {
    h_cur[0] = 0;
    e_cur[0] = kNegInf;
    f_cur[0] = kNegInf;
    for (std::size_t j = 1; j <= n; ++j) {
      const std::size_t idx = i * cols + j;
      // E: gap in a (left move).
      long e_ext = e_cur[j - 1] + sc.gap_extend;
      long e_new = h_cur[j - 1] + sc.gap_open + sc.gap_extend;
      e_cur[j] = std::max(e_ext, e_new);
      e_open[idx] = e_new >= e_ext ? 1 : 0;
      // F: gap in b (up move).
      long f_ext = f_prev[j] + sc.gap_extend;
      long f_new = h_prev[j] + sc.gap_open + sc.gap_extend;
      f_cur[j] = std::max(f_ext, f_new);
      f_open[idx] = f_new >= f_ext ? 1 : 0;
      // H: best of diagonal, gap states, or a fresh local start.
      long diag =
          h_prev[j - 1] + (a[i - 1] == b[j - 1] ? sc.match : sc.mismatch);
      long v = diag;
      std::uint8_t from = kDiag;
      if (f_cur[j] > v) {
        v = f_cur[j];
        from = kUp;
      }
      if (e_cur[j] > v) {
        v = e_cur[j];
        from = kLeft;
      }
      if (v <= 0) {
        v = 0;
        from = kStop;
      }
      h_cur[j] = v;
      h_from[idx] = from;
      if (v > best) {
        best = v;
        bi = i;
        bj = j;
      }
    }
    std::swap(h_prev, h_cur);
    std::swap(f_prev, f_cur);
  }

  AlignResult res;
  res.score = best;
  res.cells = (m + 1) * (n + 1);
  if (best == 0) return res;

  // Traceback through the three-state machine.
  std::string ops;
  std::size_t i = bi, j = bj;
  State state = kH;
  for (;;) {
    const std::size_t idx = i * cols + j;
    if (state == kH) {
      std::uint8_t from = h_from[idx];
      if (from == kStop) break;
      if (from == kDiag) {
        ops.push_back(a[i - 1] == b[j - 1] ? 'M' : 'X');
        --i;
        --j;
      } else if (from == kUp) {
        state = kF;
      } else {
        state = kE;
      }
    } else if (state == kE) {
      // One column of gap-in-a; then either keep extending or close.
      ops.push_back('I');
      std::uint8_t opened = e_open[idx];
      --j;
      state = opened ? kH : kE;
    } else {  // kF
      ops.push_back('D');
      std::uint8_t opened = f_open[idx];
      --i;
      state = opened ? kH : kF;
    }
    if (i == 0 && j == 0) break;
  }
  std::reverse(ops.begin(), ops.end());
  res.a_begin = i;
  res.b_begin = j;
  res.a_end = bi;
  res.b_end = bj;
  for (char c : ops) {
    if (c == 'M') ++res.matches;
    else if (c == 'X') ++res.mismatches;
    else ++res.gaps;
  }
  res.ops = std::move(ops);
  return res;
}

}  // namespace estclust::align
