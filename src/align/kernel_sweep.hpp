// Generic 16-bit striped band sweep, shared by the SSE2 and AVX2
// translation units via a vector-ops policy `V` (lane count, saturating
// adds, max/min, compares, lane shifts, reductions). No intrinsics appear
// here, so the header compiles standalone; only the per-ISA policies in
// kernel_sse2.cpp / kernel_avx2.cpp pull in immintrin.
//
// Layout: same window coordinates as the scalar sweep (k = j - i + band,
// width = 2*band + 1), two int16 rows with kSimdRowPad slack. Per row, a
// scalar head handles the `ncells % kLanes` leftover cells at the low end,
// then full vector chunks cover the rest, ending exactly at khi:
//
//   1. diagonal inputs are chunk-aligned loads of the previous row (each
//      exactly matching one of its vector stores, so store-to-load
//      forwarding always succeeds); the one-lane-shifted "up" input is
//      derived in-register from consecutive diagonal vectors
//      (shift_down_concat); the substitution score is a blend on a code
//      compare against the packed-view byte codes of b;
//   2. the serial left-gap dependency cur[k] >= cur[k-1] + gap is closed
//      with a max-plus prefix scan: log2(kLanes) shift-and-add-max steps
//      (shift s lanes, add s*gap), which is exact because gap weights are
//      additive along the chain; the head's last cell enters the first
//      chunk as a scalar carry (last value + (l+1)*gap ramp), and the same
//      ramp links consecutive chunks;
//   3. lanes shifted in at the low end hold dead values (<= kDead16); the
//      scalar sweep's guard cells become three here (klo-1, khi+1, khi+2)
//      because the next row's last chunk reads its up-neighbour one past
//      its own khi, which can sit two past this row's.
//
// Bit-identity with the scalar sweep: eligibility (kernel_simd.hpp) keeps
// live-lane arithmetic inside [-2*kSimdMaxMass, 2*kSimdMaxMass], so the
// saturating adds are exact where it matters and the kDead16 comparison
// reproduces the scalar != kNegInf liveness test. Cell counts, the
// consider() visit order (only the j == n cell for rows i < m, a full
// ascending scan at i == m), and the bounded give-up branch are evaluated
// in the same order with the same values as the scalar code, so every
// result field — including `cells` and `capped` — matches bit for bit.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string_view>

#include "align/kernel_simd.hpp"
#include "bio/sequence.hpp"
#include "util/check.hpp"

namespace estclust::align::detail {

template <class V, bool Bounded>
ExtensionResult band_sweep_simd(std::string_view a, std::string_view b,
                                const Scoring& sc, std::size_t band,
                                AlignArena& arena, long give_up) {
  using vec = typename V::vec;
  constexpr int L = V::kLanes;
  const std::size_t m = a.size(), n = b.size();
  ExtensionResult best;
  best.score = kNegInfScore;

  if (m == 0 || n == 0) {
    best.score = 0;
    best.a_len = 0;
    best.b_len = 0;
    best.a_exhausted = (m == 0);
    best.b_exhausted = (n == 0);
    return best;
  }

  if constexpr (Bounded) {
    if (sc.match * static_cast<long>(std::min(m, n)) < give_up) {
      best.capped = true;
      return best;
    }
  }

  const std::size_t width = 2 * band + 1;
  arena.ensure_simd(width, m, n);
  std::int16_t* prev = arena.prev16.data();
  std::int16_t* cur = arena.cur16.data();
  const std::size_t row_len = width + AlignArena::kSimdRowPad;
  std::fill_n(prev, row_len, kNegInf16);
  std::fill_n(cur, row_len, kNegInf16);

  // Byte codes via the 2-bit packed view. codes_b[0] is the front pad for
  // the j = 0 diagonal load (whose other input is a dead guard cell).
  bio::pack_2bit(a, arena.pack_words).unpack_codes(arena.codes_a.data());
  std::uint8_t* cb = arena.codes_b.data();
  cb[0] = 0;
  bio::pack_2bit(b, arena.pack_words).unpack_codes(cb + 1);
  std::fill(cb + 1 + n, cb + arena.codes_b.size(), 0);
  const std::uint8_t* ca = arena.codes_a.data();

  std::uint64_t cells = 0;

  auto consider = [&](long score, std::size_t i, std::size_t j) {
    if (i != m && j != n) return;
    if (score > best.score ||
        (score == best.score && i + j > best.a_len + best.b_len)) {
      best.score = score;
      best.a_len = i;
      best.b_len = j;
      best.a_exhausted = (i == m);
      best.b_exhausted = (j == n);
    }
  };

  for (std::size_t j = 0; j <= std::min(n, band); ++j) {
    const long s = static_cast<long>(j) * sc.gap;
    prev[j + band] = static_cast<std::int16_t>(s);
    consider(s, 0, j);
  }

  const vec vgap1 = V::broadcast(static_cast<std::int16_t>(sc.gap));
  const vec vgap2 = V::broadcast(static_cast<std::int16_t>(2 * sc.gap));
  const vec vgap4 = V::broadcast(static_cast<std::int16_t>(4 * sc.gap));
  const vec vbridge_ramp = V::mullo(V::bridge_iota(), vgap1);
  const vec vmatch = V::broadcast(static_cast<std::int16_t>(sc.match));
  const vec vmis = V::broadcast(static_cast<std::int16_t>(sc.mismatch));
  const vec vdead = V::broadcast(kNegInf16);
  const vec vthresh = V::broadcast(kDead16);
  const vec viota = V::iota();
  // Inter-chunk carry ramp: lane l receives carry + (l + 1) * gap.
  const vec vramp = V::mullo(V::add(viota, V::broadcast(1)), vgap1);

  // One band row: a scalar head for the `ncells % L` leftover cells, then
  // full vector chunks covering the rest, ending exactly at khi. The
  // leftovers go at the LOW end on purpose: the head's value feeds the
  // first chunk through the ordinary carry ramp and is computed from two
  // early scalar loads, off the row's critical path — whereas a scalar
  // tail at the high end would sit ON the serial cross-row chain (tail ->
  // next row's last up-lane -> scan -> tail). With the vector part ending
  // at khi, the last chunk's up-neighbour is prev[khi + 1]: either the
  // dead guard (whose constant store forwards instantly) or, in the
  // shrinking end-game rows, the previous row's real last cell. Chunks
  // never store past khi, so no masking of lanes beyond the live range is
  // ever needed. Returns the row's score upper bound (only meaningful when
  // Bounded). Inlined at two call sites: the general boundary rows, and
  // the interior loop where klo == 0 and the geometry is loop-invariant,
  // letting constant propagation strip the klo/head arithmetic from the
  // hot copy.
  // always_inline: an out-of-line copy of either lambda would force the
  // by-reference capture frame (holding every hoisted vector constant)
  // into memory, and the hot loop would then reload each constant through
  // two indirections per row instead of keeping them in registers.
  const auto sweep_row = [&](std::size_t i, std::size_t jlo, std::size_t klo,
                             std::size_t ncells)
                             __attribute__((always_inline)) -> long {
    const std::size_t full = ncells / L;
    const std::size_t head = ncells - full * L;
    const std::int16_t cai = static_cast<std::int16_t>(ca[i - 1]);
    const vec va = V::broadcast(cai);
    std::int16_t* crow = cur + klo;
    const std::int16_t* prow = prev + klo;
    // Cell offset o within the row maps to j = jlo + o; its b code b[j-1]
    // sits at cb[j] thanks to the front pad.
    const std::uint8_t* brow = cb + jlo;
    vec vrowmax = vdead;
    long head_ub = kNegInfScore;
    // Scalar head with the same saturating 16-bit semantics as the lanes
    // (the serial left-gap chain is exact here, no scan involved). Its
    // last cell becomes the first chunk's carry.
    const auto sat16 = [](int x) {
      return x < -32768 ? -32768 : (x > 32767 ? 32767 : x);
    };
    int left = kNegInf16;
    for (std::size_t t = 0; t < head; ++t) {
      const int sub = (brow[t] == cai) ? sc.match : sc.mismatch;
      int v = sat16(prow[t] + sub);
      v = std::max(v, sat16(prow[t + 1] + sc.gap));
      v = std::max(v, sat16(left + sc.gap));
      cur[klo + t] = static_cast<std::int16_t>(v);
      left = v;
      if constexpr (Bounded) {
        if (v > kDead16) {
          const long headroom = sc.match * static_cast<long>(std::min(
                                               m - i, n - (jlo + t)));
          head_ub = std::max(head_ub, static_cast<long>(v) + headroom);
        }
      }
    }
    std::int16_t carry = static_cast<std::int16_t>(left);
    // Diagonal inputs are loaded only at chunk-aligned offsets, where each
    // load exactly matches one vector store from the previous row, so
    // store-to-load forwarding always succeeds. The one-lane-shifted "up"
    // input is derived in-register from this chunk's and the next chunk's
    // diagonal vectors (shift_down_concat) instead of an off-by-one load
    // that would straddle a vector store and the scalar head/guard stores.
    vec vdiag = full != 0 ? V::load(prow + head) : vdead;
    for (std::size_t c = 0; c < full; ++c) {
      const std::size_t off = head + c * L;
      const vec vb = V::widen_codes(brow + off);
      const vec vsub = V::blend(V::cmpeq(vb, va), vmatch, vmis);
      const vec vnext = (c + 1 < full) ? V::load(prow + off + L)
                                       : V::broadcast(prow[off + L]);
      vec v = V::add(vdiag, vsub);
      v = V::max(v, V::add(V::shift_down_concat(vdiag, vnext), vgap1));
      vdiag = vnext;
      // Lane l of the ramp receives carry + (l + 1) * gap. With no head
      // and no predecessor chunk the carry is still the dead sentinel and
      // can never win the max, so skip the ramp entirely.
      if (c != 0 || head != 0) {
        v = V::max(v, V::add(V::broadcast(carry), vramp));
      }
      // Max-plus scan with an early exit: if the distance-1 step raises no
      // lane then v[l] >= v[l-1] + gap inside each shift half, hence
      // v[l] >= v[l-s] + s*gap for every in-half s by induction — the
      // per-half scan has already converged. With negative gap scores that
      // is the common case for interior rows; only a real score cliff runs
      // the longer steps. The bridge completes the scan across the half
      // boundary on BOTH paths (the early exit says nothing about lane
      // 7 -> lane 8 propagation); it is the identity when the register is
      // a single half.
      const vec s1 = V::max(v, V::add(V::shift1(v), vgap1));
      if (!V::all_equal(s1, v)) {
        v = V::max(s1, V::add(V::shift2(s1), vgap2));
        v = V::max(v, V::add(V::shift4(v), vgap4));
      } else {
        v = s1;
      }
      v = V::bridge(v, vbridge_ramp);
      V::store(crow + off, v);
      if (c + 1 < full) carry = V::last_lane(v);
      if constexpr (Bounded) {
        // headroom = match * min(m - i, n - j); exact in 16 bits because
        // both factors are bounded by the eligibility mass. Dead lanes are
        // masked out so only the cells the scalar sweep scores contribute.
        const vec vnj =
            V::sub(V::broadcast(static_cast<std::int16_t>(n - jlo - off)),
                   viota);
        const vec vhm =
            V::min(V::broadcast(static_cast<std::int16_t>(m - i)), vnj);
        vec vcand = V::add(v, V::mullo(vhm, vmatch));
        vcand = V::blend(V::cmpgt(v, vthresh), vcand, vdead);
        vrowmax = V::max(vrowmax, vcand);
      }
    }
    // Guard cells for the next row, mirroring the scalar sweep (plus one:
    // the next row's loads reach prev[khi + 2] when its own khi grows by
    // one).
    const std::size_t khi = klo + ncells - 1;
    if (klo > 0) cur[klo - 1] = kNegInf16;
    cur[khi + 1] = kNegInf16;
    cur[khi + 2] = kNegInf16;
    if constexpr (Bounded) {
      return std::max(static_cast<long>(V::hmax(vrowmax)), head_ub);
    }
    return kNegInfScore;
  };

  // Bounded give-up test, evaluated after every row in the same order as
  // the scalar sweep.
  const auto row_capped = [&](long row_ub) {
    return best.score < give_up && row_ub < give_up;
  };

  // Interior rows [band + 1, min(m - 1, n - band - 1)] have klo == 0,
  // ncells == width, jhi < n and i < m: no boundary cell to consider, no
  // left guard, loop-invariant geometry. Boundary rows before and after
  // run the general form.
  const std::size_t int_lo = band + 1;
  const std::size_t int_hi =
      std::min(m - 1, (n > band + 1) ? n - band - 1 : std::size_t{0});

  std::size_t i = 1;
  const auto general_rows = [&](std::size_t stop)
                                __attribute__((always_inline)) -> bool {
    for (; i <= stop; ++i) {
      const std::size_t jlo = (i > band) ? i - band : 0;
      if (jlo > n) return false;  // band has left the rectangle
      const std::size_t jhi = std::min(n, i + band);
      const std::size_t klo = band - (i - jlo);
      const std::size_t khi = (jhi >= i) ? jhi - i + band : band - (i - jhi);
      const std::size_t ncells = jhi - jlo + 1;
      const long row_ub = sweep_row(i, jlo, klo, ncells);
      cells += ncells;
      if (i == m) {
        for (std::size_t k = klo; k <= khi; ++k) {
          if (cur[k] > kDead16) {
            consider(static_cast<long>(cur[k]), m, jlo + (k - klo));
          }
        }
      } else if (jhi == n) {
        if (cur[khi] > kDead16) {
          consider(static_cast<long>(cur[khi]), i, n);
        }
      }
      if constexpr (Bounded) {
        if (row_capped(row_ub)) {
          best.capped = true;
          return false;
        }
      }
      std::swap(prev, cur);
    }
    return true;
  };

  bool live = general_rows(std::min(m, int_lo - 1));
  if (live && int_lo <= int_hi) {
    for (; i <= int_hi; ++i) {
      const long row_ub = sweep_row(i, i - band, 0, width);
      cells += width;
      if constexpr (Bounded) {
        if (row_capped(row_ub)) {
          best.capped = true;
          live = false;
          break;
        }
      }
      std::swap(prev, cur);
    }
  }
  if (live) general_rows(m);

  best.cells = cells;
  if (best.capped) return best;  // give-up bound fired mid-sweep
  ESTCLUST_CHECK_MSG(best.score != kNegInfScore,
                     "banded extension found no boundary cell");
  return best;
}

}  // namespace estclust::align::detail
