#include "assembly/consensus.hpp"

#include <array>
#include <cstdint>
#include <limits>

#include "bio/alphabet.hpp"
#include "bio/sequence.hpp"
#include "util/check.hpp"

namespace estclust::assembly {

Contig build_contig(const bio::EstSet& ests, Layout layout) {
  ESTCLUST_CHECK_MSG(layout.placements.empty() || layout.length > 0,
                     "assembly: a non-empty layout must have positive length");
  for (const auto& p : layout.placements) {
    ESTCLUST_CHECK_MSG(p.est < ests.num_ests(),
                       "assembly: placement references EST "
                           << p.est << " outside the set of "
                           << ests.num_ests());
  }
  Contig contig;
  const std::size_t len = layout.length;
  // 4 vote counters per column.
  std::vector<std::array<std::uint16_t, 4>> votes(
      len, std::array<std::uint16_t, 4>{0, 0, 0, 0});

  for (const auto& p : layout.placements) {
    std::string oriented(ests.str(bio::EstSet::forward_sid(p.est)));
    if (p.rc) oriented = bio::reverse_complement(oriented);
    for (std::size_t i = 0; i < oriented.size(); ++i) {
      const long col = p.offset + static_cast<long>(i);
      if (col < 0 || col >= static_cast<long>(len)) continue;
      int code = bio::encode_base(oriented[i]);
      auto& v = votes[static_cast<std::size_t>(col)]
                     [static_cast<std::size_t>(code)];
      if (v < std::numeric_limits<std::uint16_t>::max()) ++v;
    }
  }

  contig.consensus.resize(len, 'N');
  contig.coverage.resize(len, 0);
  for (std::size_t col = 0; col < len; ++col) {
    int best = -1;
    std::uint32_t best_votes = 0, total = 0;
    for (int c = 0; c < bio::kSigma; ++c) {
      const std::uint16_t v = votes[col][static_cast<std::size_t>(c)];
      total += v;
      if (v > best_votes) {
        best_votes = v;
        best = c;
      }
    }
    contig.coverage[col] = static_cast<std::uint16_t>(
        std::min<std::uint32_t>(total, 65535));
    if (best >= 0 && best_votes > 0) {
      contig.consensus[col] = bio::decode_base(best);
    }
  }
  contig.layout = std::move(layout);
  return contig;
}

std::vector<Contig> assemble_clusters(
    const bio::EstSet& ests,
    const std::vector<pace::AcceptedOverlap>& overlaps) {
  auto layouts = layout_clusters(ests, overlaps);
  std::vector<Contig> out;
  out.reserve(layouts.size());
  for (auto& layout : layouts) {
    out.push_back(build_contig(ests, std::move(layout)));
  }
  return out;
}

}  // namespace estclust::assembly
