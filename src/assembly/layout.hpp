// Cluster layout: placing each EST of a cluster on a common coordinate
// axis using the accepted overlaps as evidence.
//
// Clustering is the paper's product; assembling each cluster into a
// contig/consensus is the step the field ran next (CAP3 per cluster, as
// in TGICL). The accepted overlaps of §3.3 already carry everything a
// layout needs: for each merged pair, the aligned spans fix the relative
// offset and relative orientation of the two ESTs. A BFS over the overlap
// graph propagates (orientation, offset) from an arbitrary root; offsets
// are then normalized to start at zero.
#pragma once

#include <cstdint>
#include <vector>

#include "bio/dataset.hpp"
#include "pace/sequential.hpp"

namespace estclust::assembly {

/// One EST placed on the contig axis.
struct Placement {
  bio::EstId est = 0;
  bool rc = false;   ///< EST participates reverse-complemented
  long offset = 0;   ///< contig coordinate of the oriented EST's base 0
};

/// The layout of one connected overlap component.
struct Layout {
  std::vector<Placement> placements;  ///< sorted by offset, then EST id
  std::size_t length = 0;             ///< contig extent in bases
};

/// Groups ESTs into connected components of the accepted-overlap graph
/// and lays each component out. Components are ordered by smallest member
/// id; unplaced singletons (ESTs without accepted overlaps) come out as
/// one-EST layouts.
std::vector<Layout> layout_clusters(
    const bio::EstSet& ests,
    const std::vector<pace::AcceptedOverlap>& overlaps);

}  // namespace estclust::assembly
