#include "assembly/layout.hpp"

#include <algorithm>
#include <deque>
#include <limits>

#include "util/check.hpp"

namespace estclust::assembly {

namespace {

/// Derives the placement of the edge's other endpoint from a known one.
/// The record aligns A = forward(e_a) span [a_begin, a_end) with
/// B = oriented(e_b) span [b_begin, b_end); the net shift between the two
/// oriented frames is a_begin - b_begin. When the known endpoint sits
/// reverse-complemented in the contig, the whole pair flips.
Placement derive(const pace::AcceptedOverlap& ov, const Placement& known,
                 bool known_is_a, std::size_t len_a, std::size_t len_b) {
  Placement out;
  const long shift = static_cast<long>(ov.a_begin) -
                     static_cast<long>(ov.b_begin);
  if (known_is_a) {
    out.est = ov.b;
    if (!known.rc) {
      // A in record orientation: B keeps its record orientation.
      out.rc = ov.b_rc;
      out.offset = known.offset + shift;
    } else {
      // Contig holds rc(A): B flips too, and coordinates mirror.
      out.rc = !ov.b_rc;
      out.offset = known.offset + static_cast<long>(len_a) -
                   static_cast<long>(len_b) - shift;
    }
  } else {
    out.est = ov.a;
    const bool b_matches_record = (known.rc == ov.b_rc);
    if (b_matches_record) {
      out.rc = false;
      out.offset = known.offset - shift;
    } else {
      out.rc = true;
      out.offset = known.offset + static_cast<long>(len_b) -
                   static_cast<long>(len_a) + shift;
    }
  }
  return out;
}

}  // namespace

std::vector<Layout> layout_clusters(
    const bio::EstSet& ests,
    const std::vector<pace::AcceptedOverlap>& overlaps) {
  const std::size_t n = ests.num_ests();
  // Adjacency over accepted overlaps.
  std::vector<std::vector<std::uint32_t>> adj(n);  // indices into overlaps
  for (std::uint32_t k = 0; k < overlaps.size(); ++k) {
    adj[overlaps[k].a].push_back(k);
    adj[overlaps[k].b].push_back(k);
  }

  std::vector<Layout> out;
  std::vector<char> visited(n, 0);
  std::vector<Placement> placement(n);
  for (bio::EstId root = 0; root < n; ++root) {
    if (visited[root]) continue;
    // BFS this component, assigning orientation and offset relative to
    // the root (forward at offset 0).
    std::deque<bio::EstId> queue;
    std::vector<bio::EstId> members;
    visited[root] = 1;
    placement[root] = {root, false, 0};
    queue.push_back(root);
    while (!queue.empty()) {
      bio::EstId u = queue.front();
      queue.pop_front();
      members.push_back(u);
      for (std::uint32_t k : adj[u]) {
        const auto& ov = overlaps[k];
        const bio::EstId v = (ov.a == u) ? ov.b : ov.a;
        if (visited[v]) continue;
        visited[v] = 1;
        placement[v] = derive(
            ov, placement[u], /*known_is_a=*/ov.a == u,
            ests.str(bio::EstSet::forward_sid(ov.a)).size(),
            ests.str(bio::EstSet::forward_sid(ov.b)).size());
        placement[v].est = v;
        queue.push_back(v);
      }
    }

    Layout layout;
    long min_off = std::numeric_limits<long>::max();
    for (auto id : members) min_off = std::min(min_off, placement[id].offset);
    long max_end = std::numeric_limits<long>::min();
    for (auto id : members) {
      Placement p = placement[id];
      p.offset -= min_off;
      max_end = std::max(
          max_end,
          p.offset + static_cast<long>(
                         ests.str(bio::EstSet::forward_sid(id)).size()));
      layout.placements.push_back(p);
    }
    std::sort(layout.placements.begin(), layout.placements.end(),
              [](const Placement& x, const Placement& y) {
                if (x.offset != y.offset) return x.offset < y.offset;
                return x.est < y.est;
              });
    layout.length = static_cast<std::size_t>(std::max<long>(0, max_end));
    out.push_back(std::move(layout));
  }
  return out;
}

}  // namespace estclust::assembly
