// Draft consensus per laid-out cluster: per-column majority vote over the
// oriented, offset-placed ESTs.
//
// Offsets come from alignment-span endpoints, so within an overlap with
// net indels the columns of different ESTs can drift by a base or two —
// the majority vote absorbs that at EST error rates. This is a draft
// consensus in the assembler sense (a real assembler would follow with a
// banded multi-alignment polish); for error-free reads it reconstructs
// the transcript region exactly (tested).
#pragma once

#include <string>
#include <vector>

#include "assembly/layout.hpp"
#include "bio/dataset.hpp"

namespace estclust::assembly {

struct Contig {
  Layout layout;
  std::string consensus;
  /// Per-column read depth (same length as consensus).
  std::vector<std::uint16_t> coverage;

  std::size_t num_ests() const { return layout.placements.size(); }
};

/// Builds the consensus for one layout.
Contig build_contig(const bio::EstSet& ests, Layout layout);

/// Convenience: layout + consensus for every cluster; contigs ordered by
/// smallest member EST id, singletons included (their consensus is the
/// EST itself).
std::vector<Contig> assemble_clusters(
    const bio::EstSet& ests,
    const std::vector<pace::AcceptedOverlap>& overlaps);

}  // namespace estclust::assembly
