// Space-efficient generalized suffix tree storage (§3.1).
//
// Each bucket of suffixes (grouped by their first w characters) yields one
// subtree of the conceptual GST over S = {ESTs and reverse complements}.
// Nodes are stored in depth-first order; per the paper, a node carries a
// single pointer to the rightmost leaf of its subtree, from which all
// navigation derives:
//   * the first child of an internal node is the next array entry;
//   * the next sibling of v is the entry after v's rightmost leaf — unless
//     v and its parent share the same rightmost leaf, in which case v is
//     the last child;
//   * a node is a leaf iff its rightmost-leaf pointer points to itself.
//
// Deviations from a textbook GST, both required by the bucketed build:
//   * the top of the tree (string-depth < w) is absent — pair generation
//     only visits nodes of depth >= psi >= w, so it is never needed;
//   * identical suffixes from different strings coalesce into one leaf that
//     carries the whole occurrence list (this is what lets ProcessLeaf
//     generate pairs, mirroring the paper's leaf lsets).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bio/dataset.hpp"
#include "util/check.hpp"

namespace estclust::gst {

/// One suffix occurrence: suffix of string `sid` starting at `pos`.
struct SuffixOcc {
  bio::StringId sid = 0;
  std::uint32_t pos = 0;

  friend bool operator==(const SuffixOcc&, const SuffixOcc&) = default;
};

/// A GST node in the DFS array. 16 bytes; the tree has at most 2k-1 nodes
/// for k suffixes, keeping storage linear in input size.
struct Node {
  std::uint32_t rightmost = 0;  ///< DFS index of rightmost leaf; self => leaf
  std::uint32_t depth = 0;      ///< string-depth (path-label length)
  std::uint32_t occ_begin = 0;  ///< leaves: range into Tree::occs
  std::uint32_t occ_end = 0;
};

/// One bucket subtree. `prefix_depth` is w, the shared-prefix length of all
/// suffixes in the bucket (the subtree root's depth is >= w).
class Tree {
 public:
  std::vector<Node> nodes;     ///< DFS order; nodes[0] is the subtree root
  std::vector<SuffixOcc> occs; ///< leaf occurrence lists, leaf-contiguous
  std::uint64_t bucket_id = 0;
  std::uint32_t prefix_depth = 0;

  std::uint32_t size() const { return static_cast<std::uint32_t>(nodes.size()); }
  bool empty() const { return nodes.empty(); }

  bool is_leaf(std::uint32_t v) const { return nodes[v].rightmost == v; }
  std::uint32_t depth(std::uint32_t v) const { return nodes[v].depth; }

  /// Occurrence list of a leaf.
  std::span<const SuffixOcc> occurrences(std::uint32_t v) const {
    ESTCLUST_DCHECK(is_leaf(v));
    return {occs.data() + nodes[v].occ_begin,
            occs.data() + nodes[v].occ_end};
  }

  /// Calls f(child_index) for each child of internal node v, left to right.
  template <typename F>
  void for_each_child(std::uint32_t v, F&& f) const {
    if (is_leaf(v)) return;
    std::uint32_t u = v + 1;
    for (;;) {
      f(u);
      if (nodes[u].rightmost == nodes[v].rightmost) break;
      u = nodes[u].rightmost + 1;
    }
  }

  std::uint32_t num_children(std::uint32_t v) const {
    std::uint32_t c = 0;
    for_each_child(v, [&](std::uint32_t) { ++c; });
    return c;
  }

  /// Number of leaves in the subtree of v.
  std::uint32_t num_leaves(std::uint32_t v) const;

  /// Total suffix occurrences stored in the subtree of v.
  std::uint32_t num_occurrences(std::uint32_t v) const;

  /// Heap bytes used by this tree (space-accounting tests).
  std::size_t storage_bytes() const {
    return nodes.capacity() * sizeof(Node) +
           occs.capacity() * sizeof(SuffixOcc);
  }

  /// Reconstructs the path-label of node v from any occurrence below it.
  std::string path_label(const bio::EstSet& ests, std::uint32_t v) const;

  /// Checks structural invariants (DFS layout, rightmost pointers, depths
  /// strictly increasing parent->child except depth-ties at $-leaves,
  /// occurrence prefixes consistent with path labels). Throws CheckError on
  /// violation. Intended for tests; O(total occurrences * depth).
  void validate(const bio::EstSet& ests) const;
};

/// Left-extension character code of a suffix occurrence: bio::kLambdaCode
/// if the suffix is the whole string (§3.2's null character), else the code
/// of the character immediately left of the suffix.
int left_extension_code(const bio::EstSet& ests, const SuffixOcc& occ);

}  // namespace estclust::gst
