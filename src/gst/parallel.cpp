#include "gst/parallel.hpp"

#include <algorithm>
#include <cmath>

#include "gst/wire.hpp"
#include "mpr/message.hpp"
#include "util/check.hpp"

namespace estclust::gst {

std::vector<Tree> build_forest_parallel(mpr::Communicator& comm,
                                        const bio::EstSet& ests,
                                        const GstConfig& cfg,
                                        ParallelBuildStats* stats,
                                        int first_owner_rank) {
  const int p = comm.size();
  ESTCLUST_CHECK(first_owner_rank >= 0 && first_owner_rank < p);
  const int owners = p - first_owner_rank;
  const int rank = comm.rank();
  const auto& cm = comm.cost_model();
  obs::RankTracer* tracer = comm.tracer();
  const double t0 = comm.clock().time();
  if (tracer) tracer->begin("partitioning", "phase");

  // Phase 1: bucket my block's suffixes. Both orientations of an EST live
  // with the EST's owner.
  auto ranges = partition_ests(ests, p);
  std::vector<BucketedSuffix> mine;
  collect_suffixes(ests, bio::EstSet::forward_sid(ranges[rank].first),
                   bio::EstSet::forward_sid(ranges[rank].second),
                   cfg.window, mine);
  // Rolling-window bucketing is ~1 char step per suffix plus w per string.
  comm.charge(cm.char_op,
              mine.size() + cfg.window * 2 *
                                (ranges[rank].second - ranges[rank].first));

  // Phase 2: global bucket histogram via parallel summation (O(log p)).
  const std::uint64_t nbuckets = num_buckets(cfg.window);
  std::vector<std::uint64_t> hist(nbuckets, 0);
  for (const auto& bs : mine) ++hist[bs.bucket];
  comm.charge(cm.char_op, mine.size());
  {
    mpr::CheckOpScope check_scope(comm, "gst.bucket_histogram");
    hist = comm.allreduce_sum_vec(std::move(hist));
  }

  // Phase 3: deterministic greedy bucket -> rank assignment, computed
  // identically on every rank from the shared histogram.
  std::vector<std::uint64_t> nonempty_ids;
  std::vector<std::uint64_t> nonempty_sizes;
  std::uint64_t global_suffixes = 0;
  for (std::uint64_t b = 0; b < nbuckets; ++b) {
    if (hist[b] > 0) {
      nonempty_ids.push_back(b);
      nonempty_sizes.push_back(hist[b]);
      global_suffixes += hist[b];
    }
  }
  std::vector<int> owner_of =
      assign_buckets(nonempty_ids, nonempty_sizes, owners);
  for (int& r : owner_of) r += first_owner_rank;
  comm.charge(cm.sort_op,
              nonempty_ids.size() *
                  (1 + static_cast<std::uint64_t>(
                           std::log2(static_cast<double>(
                               nonempty_ids.size() + 1)))));
  // Dense lookup: bucket id -> owner rank.
  std::vector<int> owner(nbuckets, -1);
  for (std::size_t i = 0; i < nonempty_ids.size(); ++i) {
    owner[nonempty_ids[i]] = owner_of[i];
  }

  // Phase 4: route suffixes to their bucket owners.
  std::vector<mpr::BufWriter> packs(p);
  for (const auto& bs : mine) {
    encode_routed_suffix(packs[owner[bs.bucket]], bs);
  }
  comm.charge(cm.byte_op, mine.size() * kRoutedSuffixBytes);
  mine.clear();
  mine.shrink_to_fit();
  std::vector<mpr::Buffer> sendbufs(p);
  for (int r = 0; r < p; ++r) sendbufs[r] = packs[r].take();
  packs.clear();
  std::vector<mpr::Buffer> recvbufs;
  {
    mpr::CheckOpScope check_scope(comm, "gst.suffix_route");
    recvbufs = comm.all_to_all(std::move(sendbufs));
  }

  std::vector<BucketedSuffix> owned;
  for (const auto& buf : recvbufs) {
    mpr::BufReader r(buf);
    while (!r.exhausted()) {
      owned.push_back(decode_routed_suffix(r));
    }
  }
  recvbufs.clear();
  std::sort(owned.begin(), owned.end(),
            [](const BucketedSuffix& a, const BucketedSuffix& b) {
              if (a.bucket != b.bucket) return a.bucket < b.bucket;
              if (a.occ.sid != b.occ.sid) return a.occ.sid < b.occ.sid;
              return a.occ.pos < b.occ.pos;
            });
  comm.charge(cm.sort_op,
              owned.size() * (1 + static_cast<std::uint64_t>(std::log2(
                                      static_cast<double>(owned.size() + 1)))));
  const double t1 = comm.clock().time();
  if (tracer) {
    tracer->end("partitioning");
    tracer->begin("gst_build", "phase");
  }

  // Phase 5: refine owned buckets into subtrees.
  BuildCounters counters;
  std::vector<Tree> forest;
  std::size_t i = 0;
  while (i < owned.size()) {
    std::size_t j = i;
    while (j < owned.size() && owned[j].bucket == owned[i].bucket) ++j;
    std::vector<SuffixOcc> bucket;
    bucket.reserve(j - i);
    for (std::size_t k = i; k < j; ++k) bucket.push_back(owned[k].occ);
    forest.push_back(build_bucket_tree(ests, std::move(bucket), cfg.window,
                                       owned[i].bucket, counters));
    i = j;
  }
  comm.charge(cm.char_op, counters.chars_scanned);
  const double t2 = comm.clock().time();
  if (tracer) tracer->end("gst_build");

  auto& metrics = comm.metrics();
  metrics.counter("gst.suffixes_owned").add(counters.suffixes);
  metrics.counter("gst.buckets_owned").add(forest.size());
  metrics.counter("gst.chars_scanned").add(counters.chars_scanned);
  metrics.gauge("gst.t_partition", obs::MergeOp::kMax).set(t1 - t0);
  metrics.gauge("gst.t_build", obs::MergeOp::kMax).set(t2 - t1);

  if (stats) {
    stats->partition_vtime = t1 - t0;
    stats->build_vtime = t2 - t1;
    stats->local_suffixes = counters.suffixes;
    stats->local_buckets = forest.size();
    stats->chars_scanned = counters.chars_scanned;
    stats->global_suffixes = global_suffixes;
  }
  return forest;
}

std::vector<Tree> rebuild_rank_forest(const bio::EstSet& ests,
                                      const GstConfig& cfg, int p,
                                      int first_owner_rank, int target_rank,
                                      BuildCounters* counters) {
  ESTCLUST_CHECK(first_owner_rank >= 0 && first_owner_rank < p);
  ESTCLUST_CHECK(target_rank >= first_owner_rank && target_rank < p);
  const int owners = p - first_owner_rank;

  // All suffixes of all ESTs: the union of the per-rank collections, which
  // block-partition the EST ids.
  std::vector<BucketedSuffix> all;
  collect_suffixes(ests, bio::EstSet::forward_sid(0),
                   bio::EstSet::forward_sid(ests.num_ests()), cfg.window,
                   all);

  const std::uint64_t nbuckets = num_buckets(cfg.window);
  std::vector<std::uint64_t> hist(nbuckets, 0);
  for (const auto& bs : all) ++hist[bs.bucket];

  std::vector<std::uint64_t> nonempty_ids;
  std::vector<std::uint64_t> nonempty_sizes;
  for (std::uint64_t b = 0; b < nbuckets; ++b) {
    if (hist[b] > 0) {
      nonempty_ids.push_back(b);
      nonempty_sizes.push_back(hist[b]);
    }
  }
  std::vector<int> owner_of =
      assign_buckets(nonempty_ids, nonempty_sizes, owners);
  std::vector<bool> is_mine(nbuckets, false);
  for (std::size_t i = 0; i < nonempty_ids.size(); ++i) {
    if (owner_of[i] + first_owner_rank == target_rank) {
      is_mine[nonempty_ids[i]] = true;
    }
  }

  std::vector<BucketedSuffix> owned;
  for (const auto& bs : all) {
    if (is_mine[bs.bucket]) owned.push_back(bs);
  }
  all.clear();
  all.shrink_to_fit();
  // Same canonical order as the post-exchange sort: (bucket, sid, pos) is
  // a total order over unique keys, so the source-rank interleaving the
  // all-to-all would have produced is irrelevant.
  std::sort(owned.begin(), owned.end(),
            [](const BucketedSuffix& a, const BucketedSuffix& b) {
              if (a.bucket != b.bucket) return a.bucket < b.bucket;
              if (a.occ.sid != b.occ.sid) return a.occ.sid < b.occ.sid;
              return a.occ.pos < b.occ.pos;
            });

  BuildCounters local;
  std::vector<Tree> forest;
  std::size_t i = 0;
  while (i < owned.size()) {
    std::size_t j = i;
    while (j < owned.size() && owned[j].bucket == owned[i].bucket) ++j;
    std::vector<SuffixOcc> bucket;
    bucket.reserve(j - i);
    for (std::size_t k = i; k < j; ++k) bucket.push_back(owned[k].occ);
    forest.push_back(build_bucket_tree(ests, std::move(bucket), cfg.window,
                                       owned[i].bucket, local));
    i = j;
  }
  if (counters) *counters = local;
  return forest;
}

std::vector<std::uint64_t> owned_bucket_ids(const bio::EstSet& ests,
                                            const GstConfig& cfg, int p,
                                            int first_owner_rank,
                                            int target_rank,
                                            std::uint64_t* suffixes_scanned) {
  ESTCLUST_CHECK(first_owner_rank >= 0 && first_owner_rank < p);
  ESTCLUST_CHECK(target_rank >= first_owner_rank && target_rank < p);
  const int owners = p - first_owner_rank;

  std::vector<BucketedSuffix> all;
  collect_suffixes(ests, bio::EstSet::forward_sid(0),
                   bio::EstSet::forward_sid(ests.num_ests()), cfg.window,
                   all);
  if (suffixes_scanned) *suffixes_scanned = all.size();

  const std::uint64_t nbuckets = num_buckets(cfg.window);
  std::vector<std::uint64_t> hist(nbuckets, 0);
  for (const auto& bs : all) ++hist[bs.bucket];

  std::vector<std::uint64_t> nonempty_ids;
  std::vector<std::uint64_t> nonempty_sizes;
  for (std::uint64_t b = 0; b < nbuckets; ++b) {
    if (hist[b] > 0) {
      nonempty_ids.push_back(b);
      nonempty_sizes.push_back(hist[b]);
    }
  }
  std::vector<int> owner_of =
      assign_buckets(nonempty_ids, nonempty_sizes, owners);
  std::vector<std::uint64_t> mine;
  for (std::size_t i = 0; i < nonempty_ids.size(); ++i) {
    if (owner_of[i] + first_owner_rank == target_rank) {
      mine.push_back(nonempty_ids[i]);
    }
  }
  return mine;  // nonempty_ids ascends, so the filtered ids stay sorted
}

}  // namespace estclust::gst
