// GST construction by bucketing + character-wise refinement (§3.1).
//
// A sequential suffix-tree algorithm cannot build a bucket's subtree because
// the bucket does not contain all suffixes of any one string; the paper
// instead scans the suffixes of a bucket one character at a time, splitting
// recursively until every suffix group is a leaf. Run-time is O(sum of
// pairwise-distinguishing prefixes), O(N·l / p) per rank in the worst case,
// which works well because the average EST length l is a constant.
#pragma once

#include <cstdint>
#include <vector>

#include "bio/dataset.hpp"
#include "gst/tree.hpp"

namespace estclust::gst {

/// Work counters reported by the builder; the parallel wrapper converts
/// them into virtual time.
struct BuildCounters {
  std::uint64_t suffixes = 0;       ///< suffixes inserted
  std::uint64_t chars_scanned = 0;  ///< character-bucketing steps performed
  std::uint64_t nodes = 0;          ///< nodes emitted
};

/// A suffix tagged with its destination bucket.
struct BucketedSuffix {
  std::uint64_t bucket = 0;
  SuffixOcc occ;
};

/// Bucket id of the length-w prefix starting at `pos` (lexicographic,
/// base 4). Requires pos + w <= |s|.
std::uint64_t bucket_of(std::string_view s, std::size_t pos, std::uint32_t w);

/// Number of buckets for window w (4^w). Checked to fit comfortably in
/// memory: w <= 11.
std::uint64_t num_buckets(std::uint32_t w);

/// Enumerates all suffixes of strings [sid_begin, sid_end) that are at
/// least w long, tagged with their bucket. Shorter suffixes are dropped:
/// they cannot begin a maximal common substring of length >= psi >= w.
void collect_suffixes(const bio::EstSet& ests, bio::StringId sid_begin,
                      bio::StringId sid_end, std::uint32_t w,
                      std::vector<BucketedSuffix>& out);

/// Builds the subtree for one bucket. `suffixes` must all share the same
/// length-w prefix; they are canonically sorted by (sid, pos) internally so
/// the resulting tree is independent of input order.
Tree build_bucket_tree(const bio::EstSet& ests,
                       std::vector<SuffixOcc> suffixes, std::uint32_t w,
                       std::uint64_t bucket_id, BuildCounters& counters);

/// Builds the whole forest on one processor (the p = 1 reference path).
/// Trees are ordered by bucket id.
std::vector<Tree> build_forest_sequential(const bio::EstSet& ests,
                                          std::uint32_t w,
                                          BuildCounters* counters = nullptr);

/// Splits ESTs into p contiguous ranges with near-equal character totals
/// (the paper's initial data distribution). Returns p (begin, end) pairs.
std::vector<std::pair<bio::EstId, bio::EstId>> partition_ests(
    const bio::EstSet& ests, int p);

/// Greedy balanced assignment of buckets to ranks: buckets in decreasing
/// size order go to the currently least-loaded rank. Deterministic; every
/// rank computes the same mapping from the same global histogram.
/// Returns for each listed bucket id its owner rank.
std::vector<int> assign_buckets(const std::vector<std::uint64_t>& bucket_ids,
                                const std::vector<std::uint64_t>& sizes,
                                int p);

}  // namespace estclust::gst
