// Distributed GST construction (§3.1).
//
// 1. ESTs are block-partitioned across ranks with near-equal character
//    counts.
// 2. Each rank scans its ESTs and reverse complements, bucketing suffixes
//    by their first w characters.
// 3. A parallel summation produces the global per-bucket histogram in
//    O(log p) communication steps.
// 4. Buckets are assigned to ranks so each rank holds ~N·l/p suffixes
//    (greedy largest-first), with every suffix of a bucket on one rank.
// 5. An all-to-all exchange routes suffixes to their bucket owner; each
//    rank then refines its buckets into subtrees locally.
#pragma once

#include <cstdint>
#include <vector>

#include "bio/dataset.hpp"
#include "gst/builder.hpp"
#include "gst/tree.hpp"
#include "mpr/communicator.hpp"

namespace estclust::gst {

struct GstConfig {
  std::uint32_t window = 8;  ///< w, the bucketing prefix length
};

/// Virtual-time and size accounting for one rank's share of the build.
struct ParallelBuildStats {
  double partition_vtime = 0.0;  ///< suffix bucketing + histogram + routing
  double build_vtime = 0.0;      ///< local refinement of owned buckets
  std::uint64_t local_suffixes = 0;   ///< suffixes this rank owns post-exchange
  std::uint64_t local_buckets = 0;    ///< buckets (= subtrees) owned
  std::uint64_t chars_scanned = 0;    ///< refinement character steps
  std::uint64_t global_suffixes = 0;  ///< total suffixes across ranks
};

/// Collective: every rank calls this; returns the rank's local share of the
/// distributed GST (one Tree per owned bucket, ordered by bucket id).
/// `first_owner_rank` excludes lower ranks from bucket ownership (the
/// master/slave driver keeps the GST off the master); every rank still
/// participates in the collectives.
std::vector<Tree> build_forest_parallel(mpr::Communicator& comm,
                                        const bio::EstSet& ests,
                                        const GstConfig& cfg,
                                        ParallelBuildStats* stats = nullptr,
                                        int first_owner_rank = 0);

/// Recomputes — offline, with no communication — the share of the
/// distributed GST that `target_rank` owns under build_forest_parallel
/// with the same `ests`, `cfg`, `p` and `first_owner_rank`. Every step
/// (bucketing, histogram, greedy assignment, canonical per-bucket sort) is
/// deterministic, so the returned forest is identical to the one the rank
/// built — and so is the promising-pair stream generated from it. The
/// pace master uses this to regenerate a dead slave's pairs (DESIGN.md
/// §8). `counters` receives the refinement work for clock charging.
std::vector<Tree> rebuild_rank_forest(const bio::EstSet& ests,
                                      const GstConfig& cfg, int p,
                                      int first_owner_rank, int target_rank,
                                      BuildCounters* counters = nullptr);

/// The bucket ids `target_rank` owns under build_forest_parallel with the
/// same `ests`, `cfg`, `p` and `first_owner_rank` — the first half of
/// rebuild_rank_forest without refining any trees, sorted ascending.
/// Non-GST pair sources only need ownership, not trees, to regenerate a
/// dead rank's stream. `suffixes_scanned` (optional) receives the
/// bucketing-scan work for clock charging.
std::vector<std::uint64_t> owned_bucket_ids(
    const bio::EstSet& ests, const GstConfig& cfg, int p,
    int first_owner_rank, int target_rank,
    std::uint64_t* suffixes_scanned = nullptr);

}  // namespace estclust::gst
