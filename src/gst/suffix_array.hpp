// Suffix-array reference construction of the GST forest.
//
// An independent second implementation used to cross-validate the
// production bucket-refinement builder: sort all suffixes of S (length
// >= w), compute the LCP array by direct comparison, and fold LCP
// intervals into the same compacted-trie bucket forest. The two paths
// share no construction code, so exact tree equality on arbitrary inputs
// is strong evidence both are right. The SA path is O(N log N * L) and
// keeps the whole order in memory — fine as an oracle, not a replacement.
#pragma once

#include <cstdint>
#include <vector>

#include "bio/dataset.hpp"
#include "gst/tree.hpp"

namespace estclust::gst {

/// Lexicographically sorted suffixes plus the LCP between neighbours.
struct SuffixArray {
  std::vector<SuffixOcc> order;  ///< suffixes of length >= min_len, sorted
  std::vector<std::uint32_t> lcp;  ///< lcp[k] = LCP(order[k-1], order[k]); lcp[0] = 0
};

/// Builds the array over every suffix of every string in S with length
/// >= min_len. Ties between identical suffix strings break by (sid, pos).
SuffixArray build_suffix_array(const bio::EstSet& ests,
                               std::uint32_t min_len);

/// Folds the sorted order into the bucket forest of §3.1: one compacted
/// subtree per distinct w-prefix, identical (nodes, occurrences, layout)
/// to build_forest_sequential(ests, w).
std::vector<Tree> forest_from_suffix_array(const bio::EstSet& ests,
                                           const SuffixArray& sa,
                                           std::uint32_t w);

}  // namespace estclust::gst
