#include "gst/builder.hpp"

#include <algorithm>
#include <array>

#include "bio/alphabet.hpp"
#include "util/check.hpp"

namespace estclust::gst {

std::uint64_t bucket_of(std::string_view s, std::size_t pos,
                        std::uint32_t w) {
  ESTCLUST_DCHECK(pos + w <= s.size());
  std::uint64_t id = 0;
  for (std::uint32_t k = 0; k < w; ++k) {
    id = id * 4 + static_cast<std::uint64_t>(bio::encode_base(s[pos + k]));
  }
  return id;
}

std::uint64_t num_buckets(std::uint32_t w) {
  ESTCLUST_CHECK_MSG(w >= 1 && w <= 11, "window must be in [1, 11]");
  return 1ULL << (2 * w);
}

void collect_suffixes(const bio::EstSet& ests, bio::StringId sid_begin,
                      bio::StringId sid_end, std::uint32_t w,
                      std::vector<BucketedSuffix>& out) {
  for (bio::StringId sid = sid_begin; sid < sid_end; ++sid) {
    auto s = ests.str(sid);
    if (s.size() < w) continue;
    // Rolling update of the base-4 window value.
    const std::uint64_t mask = num_buckets(w) - 1;
    std::uint64_t id = bucket_of(s, 0, w);
    for (std::size_t pos = 0;; ++pos) {
      out.push_back({id, {sid, static_cast<std::uint32_t>(pos)}});
      if (pos + w >= s.size()) break;
      id = ((id << 2) & mask) |
           static_cast<std::uint64_t>(bio::encode_base(s[pos + w]));
    }
  }
}

namespace {

/// Recursive refinement of one suffix group that shares its first `d`
/// characters. Emits the group's subtree into `tree` in DFS order.
class BucketRefiner {
 public:
  BucketRefiner(const bio::EstSet& ests, Tree& tree, BuildCounters& counters)
      : ests_(ests), tree_(tree), counters_(counters) {}

  void build(std::vector<SuffixOcc>& group, std::uint32_t d) {
    ESTCLUST_DCHECK(!group.empty());
    if (group.size() == 1) {
      emit_singleton_leaf(group[0]);
      return;
    }

    // Extend the edge (compaction) while all suffixes continue with the
    // same character. Each pass scans the group once.
    std::array<std::uint32_t, bio::kSigma> class_size{};
    std::uint32_t exhausted = 0;
    for (;;) {
      class_size.fill(0);
      exhausted = 0;
      for (const SuffixOcc& occ : group) {
        auto s = ests_.str(occ.sid);
        if (occ.pos + d == s.size()) {
          ++exhausted;
        } else {
          ++class_size[static_cast<std::size_t>(
              bio::encode_base(s[occ.pos + d]))];
        }
      }
      counters_.chars_scanned += group.size();
      int nonempty = 0;
      for (auto c : class_size) nonempty += (c > 0);
      if (exhausted == 0 && nonempty == 1) {
        ++d;  // unary extension: no node here
        continue;
      }
      if (nonempty == 0) {
        // All suffixes end at depth d: identical strings -> one leaf.
        emit_coalesced_leaf(group, d);
        return;
      }
      break;  // group branches at depth d
    }

    // Internal node at depth d. Children in canonical order: the $-leaf of
    // exhausted suffixes first, then the A, C, G, T classes.
    const std::uint32_t v = new_node(d);
    std::array<std::vector<SuffixOcc>, bio::kSigma> classes;
    std::vector<SuffixOcc> done;
    done.reserve(exhausted);
    for (int c = 0; c < bio::kSigma; ++c)
      classes[static_cast<std::size_t>(c)].reserve(
          class_size[static_cast<std::size_t>(c)]);
    for (const SuffixOcc& occ : group) {
      auto s = ests_.str(occ.sid);
      if (occ.pos + d == s.size()) {
        done.push_back(occ);
      } else {
        classes[static_cast<std::size_t>(bio::encode_base(s[occ.pos + d]))]
            .push_back(occ);
      }
    }
    group.clear();
    group.shrink_to_fit();

    if (!done.empty()) emit_coalesced_leaf(done, d);
    for (auto& cls : classes) {
      if (!cls.empty()) build(cls, d + 1);
    }
    tree_.nodes[v].rightmost =
        static_cast<std::uint32_t>(tree_.nodes.size()) - 1;
  }

 private:
  std::uint32_t new_node(std::uint32_t depth) {
    Node n;
    n.depth = depth;
    tree_.nodes.push_back(n);
    ++counters_.nodes;
    return static_cast<std::uint32_t>(tree_.nodes.size()) - 1;
  }

  void emit_singleton_leaf(const SuffixOcc& occ) {
    auto s = ests_.str(occ.sid);
    const std::uint32_t v = new_node(
        static_cast<std::uint32_t>(s.size() - occ.pos));
    tree_.nodes[v].rightmost = v;
    tree_.nodes[v].occ_begin = static_cast<std::uint32_t>(tree_.occs.size());
    tree_.occs.push_back(occ);
    tree_.nodes[v].occ_end = static_cast<std::uint32_t>(tree_.occs.size());
  }

  void emit_coalesced_leaf(const std::vector<SuffixOcc>& group,
                           std::uint32_t d) {
    const std::uint32_t v = new_node(d);
    tree_.nodes[v].rightmost = v;
    tree_.nodes[v].occ_begin = static_cast<std::uint32_t>(tree_.occs.size());
    tree_.occs.insert(tree_.occs.end(), group.begin(), group.end());
    tree_.nodes[v].occ_end = static_cast<std::uint32_t>(tree_.occs.size());
  }

  const bio::EstSet& ests_;
  Tree& tree_;
  BuildCounters& counters_;
};

}  // namespace

Tree build_bucket_tree(const bio::EstSet& ests,
                       std::vector<SuffixOcc> suffixes, std::uint32_t w,
                       std::uint64_t bucket_id, BuildCounters& counters) {
  ESTCLUST_CHECK(!suffixes.empty());
  // Canonical input order => identical trees regardless of how suffixes
  // arrived (sequential scan or all-to-all exchange).
  std::sort(suffixes.begin(), suffixes.end(),
            [](const SuffixOcc& a, const SuffixOcc& b) {
              return a.sid != b.sid ? a.sid < b.sid : a.pos < b.pos;
            });
  counters.suffixes += suffixes.size();

  Tree tree;
  tree.bucket_id = bucket_id;
  tree.prefix_depth = w;
  tree.nodes.reserve(2 * suffixes.size());
  tree.occs.reserve(suffixes.size());
  BucketRefiner refiner(ests, tree, counters);
  refiner.build(suffixes, w);
  tree.nodes.shrink_to_fit();
  tree.occs.shrink_to_fit();
  return tree;
}

std::vector<Tree> build_forest_sequential(const bio::EstSet& ests,
                                          std::uint32_t w,
                                          BuildCounters* counters) {
  std::vector<BucketedSuffix> all;
  collect_suffixes(ests, 0, static_cast<bio::StringId>(ests.num_strings()), w,
                   all);
  std::sort(all.begin(), all.end(),
            [](const BucketedSuffix& a, const BucketedSuffix& b) {
              return a.bucket < b.bucket;
            });
  BuildCounters local;
  BuildCounters& c = counters ? *counters : local;
  std::vector<Tree> forest;
  std::size_t i = 0;
  while (i < all.size()) {
    std::size_t j = i;
    while (j < all.size() && all[j].bucket == all[i].bucket) ++j;
    std::vector<SuffixOcc> bucket;
    bucket.reserve(j - i);
    for (std::size_t k = i; k < j; ++k) bucket.push_back(all[k].occ);
    forest.push_back(
        build_bucket_tree(ests, std::move(bucket), w, all[i].bucket, c));
    i = j;
  }
  return forest;
}

std::vector<std::pair<bio::EstId, bio::EstId>> partition_ests(
    const bio::EstSet& ests, int p) {
  ESTCLUST_CHECK(p > 0);
  const std::size_t n = ests.num_ests();
  const double total = static_cast<double>(ests.total_est_chars());
  std::vector<std::pair<bio::EstId, bio::EstId>> ranges(p);
  std::size_t i = 0;
  double cum = 0.0;
  for (int r = 0; r < p; ++r) {
    const bio::EstId begin = static_cast<bio::EstId>(i);
    if (r == p - 1) {
      i = n;  // last rank absorbs any floating-point remainder
    } else {
      const double target =
          total * static_cast<double>(r + 1) / static_cast<double>(p);
      while (i < n && cum < target) {
        cum += static_cast<double>(
            ests.est(static_cast<bio::EstId>(i)).bases.size());
        ++i;
      }
    }
    ranges[r] = {begin, static_cast<bio::EstId>(i)};
  }
  return ranges;
}

std::vector<int> assign_buckets(const std::vector<std::uint64_t>& bucket_ids,
                                const std::vector<std::uint64_t>& sizes,
                                int p) {
  ESTCLUST_CHECK(bucket_ids.size() == sizes.size());
  ESTCLUST_CHECK(p > 0);
  std::vector<std::size_t> order(bucket_ids.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return sizes[a] > sizes[b];
                   });
  std::vector<std::uint64_t> load(p, 0);
  std::vector<int> owner(bucket_ids.size(), 0);
  for (std::size_t idx : order) {
    int best = 0;
    for (int r = 1; r < p; ++r) {
      if (load[r] < load[best]) best = r;
    }
    owner[idx] = best;
    load[best] += sizes[idx];
  }
  return owner;
}

}  // namespace estclust::gst
