// Wire codec for the suffix-routing records of the parallel GST build.
//
// Phase 4 of build_forest_parallel ships every bucketed suffix to its
// bucket's owner rank through the all-to-all. The record layout used to be
// written and parsed inline at the two sites; naming the codec here keeps
// the encoder and decoder adjacent so the static analyzer (tools/analyze,
// rule `codec-symmetry`) can verify the field sequences stay mirrored.
//
// Wire layout (16 bytes per record, no length prefix -- the receiver
// consumes records until the buffer is exhausted):
//   u64 bucket, u32 sid, u32 pos.
#pragma once

#include <cstdint>

#include "gst/builder.hpp"
#include "mpr/message.hpp"

namespace estclust::gst {

/// Bytes one routed suffix occupies on the wire.
inline constexpr std::size_t kRoutedSuffixBytes =
    sizeof(std::uint64_t) + 2 * sizeof(std::uint32_t);

inline void encode_routed_suffix(mpr::BufWriter& w, const BucketedSuffix& bs) {
  w.put<std::uint64_t>(bs.bucket);
  w.put<std::uint32_t>(bs.occ.sid);
  w.put<std::uint32_t>(bs.occ.pos);
}

inline BucketedSuffix decode_routed_suffix(mpr::BufReader& r) {
  BucketedSuffix bs;
  bs.bucket = r.get<std::uint64_t>();
  bs.occ.sid = r.get<std::uint32_t>();
  bs.occ.pos = r.get<std::uint32_t>();
  return bs;
}

}  // namespace estclust::gst
