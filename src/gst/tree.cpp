#include "gst/tree.hpp"

#include <string>

#include "bio/alphabet.hpp"

namespace estclust::gst {

std::uint32_t Tree::num_leaves(std::uint32_t v) const {
  std::uint32_t count = 0;
  for (std::uint32_t u = v; u <= nodes[v].rightmost; ++u) {
    if (is_leaf(u)) ++count;
  }
  return count;
}

std::uint32_t Tree::num_occurrences(std::uint32_t v) const {
  std::uint32_t count = 0;
  for (std::uint32_t u = v; u <= nodes[v].rightmost; ++u) {
    if (is_leaf(u)) count += nodes[u].occ_end - nodes[u].occ_begin;
  }
  return count;
}

std::string Tree::path_label(const bio::EstSet& ests, std::uint32_t v) const {
  // Any occurrence in the subtree shares the node's path-label as prefix;
  // the rightmost pointer always designates a leaf.
  std::uint32_t u = nodes[v].rightmost;
  const SuffixOcc& occ = occs[nodes[u].occ_begin];
  auto s = ests.str(occ.sid);
  return std::string(s.substr(occ.pos, nodes[v].depth));
}

void Tree::validate(const bio::EstSet& ests) const {
  if (nodes.empty()) return;
  ESTCLUST_CHECK(nodes[0].rightmost == nodes.size() - 1);

  std::uint32_t total_occs = 0;
  for (std::uint32_t v = 0; v < size(); ++v) {
    const Node& node = nodes[v];
    ESTCLUST_CHECK(node.rightmost >= v);
    ESTCLUST_CHECK(node.rightmost < size());
    ESTCLUST_CHECK_MSG(node.depth >= prefix_depth,
                       "node above bucket prefix depth");
    if (is_leaf(v)) {
      ESTCLUST_CHECK(node.occ_begin < node.occ_end);
      ESTCLUST_CHECK(node.occ_end <= occs.size());
      total_occs += node.occ_end - node.occ_begin;
      // Every occurrence of a leaf must be the exact same string of length
      // `depth` (identical suffixes coalesce) and must run to string end.
      const SuffixOcc& first = occs[node.occ_begin];
      auto ref = ests.str(first.sid).substr(first.pos, node.depth);
      for (std::uint32_t k = node.occ_begin; k < node.occ_end; ++k) {
        const SuffixOcc& occ = occs[k];
        auto s = ests.str(occ.sid);
        ESTCLUST_CHECK(occ.pos + node.depth == s.size());
        ESTCLUST_CHECK(s.substr(occ.pos, node.depth) == ref);
      }
    } else {
      // Children partition the subtree; each child's depth exceeds the
      // parent's except the $-leaf (identical-prefix suffixes ending here),
      // which ties. First children must begin at v+1.
      std::uint32_t expected = v + 1;
      std::uint32_t child_count = 0;
      for_each_child(v, [&](std::uint32_t u) {
        ESTCLUST_CHECK(u == expected);
        ESTCLUST_CHECK(nodes[u].rightmost <= node.rightmost);
        if (is_leaf(u) && nodes[u].depth == node.depth) {
          // $-leaf: only allowed as the first child.
          ESTCLUST_CHECK(u == v + 1);
        } else {
          ESTCLUST_CHECK_MSG(nodes[u].depth > node.depth,
                             "child depth must exceed parent depth");
        }
        expected = nodes[u].rightmost + 1;
        ++child_count;
      });
      ESTCLUST_CHECK(expected == node.rightmost + 1);
      ESTCLUST_CHECK_MSG(child_count >= 2, "unary internal node");
      // All occurrences below v agree on the first `depth` characters.
      std::string label = path_label(ests, v);
      for (std::uint32_t u = v + 1; u <= node.rightmost; ++u) {
        if (!is_leaf(u)) continue;
        for (const auto& occ : occurrences(u)) {
          auto s = ests.str(occ.sid);
          ESTCLUST_CHECK(occ.pos + node.depth <= s.size());
          ESTCLUST_CHECK(s.substr(occ.pos, node.depth) == label);
        }
      }
    }
  }
  ESTCLUST_CHECK(total_occs == occs.size());
}

int left_extension_code(const bio::EstSet& ests, const SuffixOcc& occ) {
  if (occ.pos == 0) return bio::kLambdaCode;
  return bio::encode_base(ests.str(occ.sid)[occ.pos - 1]);
}

}  // namespace estclust::gst
