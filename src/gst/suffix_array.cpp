#include "gst/suffix_array.hpp"

#include <algorithm>

#include "gst/builder.hpp"
#include "util/check.hpp"

namespace estclust::gst {

SuffixArray build_suffix_array(const bio::EstSet& ests,
                               std::uint32_t min_len) {
  SuffixArray sa;
  for (bio::StringId sid = 0; sid < ests.num_strings(); ++sid) {
    auto s = ests.str(sid);
    if (s.size() < min_len) continue;
    for (std::uint32_t pos = 0; pos + min_len <= s.size(); ++pos) {
      sa.order.push_back({sid, pos});
    }
  }
  auto suffix = [&](const SuffixOcc& occ) {
    return ests.str(occ.sid).substr(occ.pos);
  };
  std::sort(sa.order.begin(), sa.order.end(),
            [&](const SuffixOcc& a, const SuffixOcc& b) {
              auto x = suffix(a);
              auto y = suffix(b);
              int c = x.compare(y);
              if (c != 0) return c < 0;
              if (a.sid != b.sid) return a.sid < b.sid;
              return a.pos < b.pos;
            });
  sa.lcp.assign(sa.order.size(), 0);
  for (std::size_t k = 1; k < sa.order.size(); ++k) {
    auto x = suffix(sa.order[k - 1]);
    auto y = suffix(sa.order[k]);
    std::uint32_t l = 0;
    while (l < x.size() && l < y.size() && x[l] == y[l]) ++l;
    sa.lcp[k] = l;
  }
  return sa;
}

namespace {

/// Recursive LCP-interval folding into the DFS-array layout.
class IntervalFolder {
 public:
  IntervalFolder(const bio::EstSet& ests, const SuffixArray& sa, Tree& tree)
      : ests_(ests), sa_(sa), tree_(tree) {}

  void build(std::size_t lo, std::size_t hi) {
    ESTCLUST_DCHECK(lo < hi);
    if (hi - lo == 1) {
      const SuffixOcc& occ = sa_.order[lo];
      emit_leaf(lo, hi,
                static_cast<std::uint32_t>(
                    ests_.str(occ.sid).size() - occ.pos));
      return;
    }
    // Branch depth: minimum LCP between neighbours inside the interval.
    std::uint32_t m = sa_.lcp[lo + 1];
    for (std::size_t k = lo + 2; k < hi; ++k) m = std::min(m, sa_.lcp[k]);

    // Suffixes of length exactly m sort first and are all identical.
    std::size_t e = lo;
    while (e < hi) {
      const SuffixOcc& occ = sa_.order[e];
      if (ests_.str(occ.sid).size() - occ.pos != m) break;
      ++e;
    }
    if (e == hi) {
      emit_leaf(lo, hi, m);  // every suffix equals the shared prefix
      return;
    }

    const std::uint32_t v = new_node(m);
    if (e > lo) emit_leaf(lo, e, m);  // the $-leaf, first child
    // Children: maximal runs of [e, hi) with pairwise LCP > m.
    std::size_t run_start = e;
    for (std::size_t k = e + 1; k <= hi; ++k) {
      if (k == hi || sa_.lcp[k] <= m) {
        build(run_start, k);
        run_start = k;
      }
    }
    tree_.nodes[v].rightmost =
        static_cast<std::uint32_t>(tree_.nodes.size()) - 1;
  }

 private:
  std::uint32_t new_node(std::uint32_t depth) {
    Node n;
    n.depth = depth;
    tree_.nodes.push_back(n);
    return static_cast<std::uint32_t>(tree_.nodes.size()) - 1;
  }

  void emit_leaf(std::size_t lo, std::size_t hi, std::uint32_t depth) {
    const std::uint32_t v = new_node(depth);
    tree_.nodes[v].rightmost = v;
    tree_.nodes[v].occ_begin = static_cast<std::uint32_t>(tree_.occs.size());
    for (std::size_t k = lo; k < hi; ++k) {
      tree_.occs.push_back(sa_.order[k]);
    }
    tree_.nodes[v].occ_end = static_cast<std::uint32_t>(tree_.occs.size());
  }

  const bio::EstSet& ests_;
  const SuffixArray& sa_;
  Tree& tree_;
};

}  // namespace

std::vector<Tree> forest_from_suffix_array(const bio::EstSet& ests,
                                           const SuffixArray& sa,
                                           std::uint32_t w) {
  std::vector<Tree> forest;
  std::size_t i = 0;
  while (i < sa.order.size()) {
    const SuffixOcc& occ = sa.order[i];
    const std::uint64_t bucket = bucket_of(ests.str(occ.sid), occ.pos, w);
    std::size_t j = i + 1;
    while (j < sa.order.size() && sa.lcp[j] >= w) ++j;
    Tree tree;
    tree.bucket_id = bucket;
    tree.prefix_depth = w;
    IntervalFolder folder(ests, sa, tree);
    folder.build(i, j);
    forest.push_back(std::move(tree));
    i = j;
  }
  return forest;
}

}  // namespace estclust::gst
