#include "sim/workload.hpp"

#include <algorithm>

#include "bio/alphabet.hpp"
#include "bio/sequence.hpp"
#include "util/check.hpp"

namespace estclust::sim {

namespace {

std::string random_dna(Prng& rng, std::size_t len) {
  std::string s(len, 'A');
  for (auto& c : s) c = bio::decode_base(static_cast<int>(rng.uniform(4)));
  return s;
}

std::size_t uniform_len(Prng& rng, std::size_t lo, std::size_t hi) {
  ESTCLUST_CHECK(lo <= hi);
  return lo + static_cast<std::size_t>(rng.uniform(hi - lo + 1));
}

}  // namespace

std::string apply_errors(const std::string& s, double sub, double ins,
                         double del, Prng& rng) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    if (rng.bernoulli(del)) continue;
    if (rng.bernoulli(ins)) {
      out.push_back(bio::decode_base(static_cast<int>(rng.uniform(4))));
    }
    if (rng.bernoulli(sub)) {
      int code =
          (bio::encode_base(c) + 1 + static_cast<int>(rng.uniform(3))) % 4;
      out.push_back(bio::decode_base(code));
    } else {
      out.push_back(c);
    }
  }
  if (out.empty()) out.push_back('A');  // never emit an empty EST
  return out;
}

Workload generate(const SimConfig& cfg) {
  ESTCLUST_CHECK(cfg.num_genes > 0);
  ESTCLUST_CHECK(cfg.min_exons >= 1 && cfg.min_exons <= cfg.max_exons);
  ESTCLUST_CHECK(cfg.exon_len_min >= 1 &&
                 cfg.exon_len_min <= cfg.exon_len_max);
  ESTCLUST_CHECK(cfg.est_len_min >= 1);
  Prng rng(cfg.seed);

  // Shared repeat-element library (SINE/LINE-like): the same element may
  // land in transcripts of unrelated genes, lightly mutated per insertion.
  std::vector<std::string> repeats;
  for (std::size_t r = 0; r < cfg.repeat_library; ++r) {
    repeats.push_back(random_dna(rng, cfg.repeat_len));
  }
  auto mutate_copy = [&](const std::string& s, double rate) {
    std::string out = s;
    for (auto& c : out) {
      if (rng.bernoulli(rate)) {
        c = bio::decode_base(
            (bio::encode_base(c) + 1 + static_cast<int>(rng.uniform(3))) % 4);
      }
    }
    return out;
  };

  Workload wl;
  wl.mrnas.reserve(cfg.num_genes);
  wl.isoforms.reserve(cfg.num_genes);
  for (std::size_t g = 0; g < cfg.num_genes; ++g) {
    std::string mrna;
    std::vector<std::string> exon_list;
    if (g > 0 && rng.bernoulli(cfg.paralog_fraction)) {
      // Paralog: a diverged copy of an earlier gene's transcript. Its ESTs
      // form a *separate* true cluster, but they share enough exact
      // stretches with the parent to produce promising pairs that the
      // alignment stage must reject.
      const std::size_t parent = rng.uniform(g);
      mrna = mutate_copy(wl.mrnas[parent], cfg.paralog_divergence);
    } else {
      const std::size_t exons =
          uniform_len(rng, cfg.min_exons, cfg.max_exons);
      for (std::size_t e = 0; e < exons; ++e) {
        exon_list.push_back(random_dna(
            rng, uniform_len(rng, cfg.exon_len_min, cfg.exon_len_max)));
        mrna += exon_list.back();
        if (e + 1 < exons) {
          // The intron is generated (it belongs to the gene) but spliced
          // out of the transcript; it never reaches an EST.
          (void)random_dna(
              rng, uniform_len(rng, cfg.intron_len_min, cfg.intron_len_max));
        }
      }
    }
    if (!repeats.empty() && rng.bernoulli(cfg.repeat_prob)) {
      const std::string element = mutate_copy(
          repeats[rng.uniform(repeats.size())], cfg.repeat_divergence);
      const std::size_t at = rng.uniform(mrna.size() + 1);
      mrna.insert(at, element);
      exon_list.clear();  // insertion invalidates the exon decomposition
    }
    // Transcripts shorter than the minimum read length would yield
    // unusable fragments; pad with an extra exon's worth of sequence.
    if (mrna.size() < cfg.est_len_min) {
      mrna += random_dna(rng, cfg.est_len_min - mrna.size() + 1);
      exon_list.clear();
    }

    std::vector<std::string> gene_isoforms = {mrna};
    if (exon_list.size() >= 3 && rng.bernoulli(cfg.alt_splice_prob)) {
      // Second isoform: one internal exon skipped.
      const std::size_t skip = 1 + rng.uniform(exon_list.size() - 2);
      std::string alt;
      for (std::size_t e = 0; e < exon_list.size(); ++e) {
        if (e != skip) alt += exon_list[e];
      }
      if (alt.size() >= cfg.est_len_min) gene_isoforms.push_back(alt);
    }
    wl.mrnas.push_back(std::move(mrna));
    wl.isoforms.push_back(std::move(gene_isoforms));
  }

  std::vector<bio::Sequence> ests;
  ests.reserve(cfg.num_ests);
  wl.truth.reserve(cfg.num_ests);
  for (std::size_t i = 0; i < cfg.num_ests; ++i) {
    const std::uint32_t gene = static_cast<std::uint32_t>(
        rng.zipf(cfg.num_genes, cfg.expression_skew));
    const std::uint8_t iso = static_cast<std::uint8_t>(
        rng.uniform(wl.isoforms[gene].size()));
    const std::string& mrna = wl.isoforms[gene][iso];
    wl.est_isoform.push_back(iso);

    // Fragment length ~ N(mean, sd), clamped to [min, |mRNA|].
    double draw = rng.normal(static_cast<double>(cfg.est_len_mean),
                             static_cast<double>(cfg.est_len_stddev));
    std::size_t len = static_cast<std::size_t>(std::max(
        draw, static_cast<double>(cfg.est_len_min)));
    len = std::min(len, mrna.size());
    const std::size_t start =
        static_cast<std::size_t>(rng.uniform(mrna.size() - len + 1));

    std::string read = apply_errors(mrna.substr(start, len), cfg.sub_rate,
                                    cfg.ins_rate, cfg.del_rate, rng);
    if (rng.bernoulli(cfg.rc_prob)) read = bio::reverse_complement(read);
    ests.push_back({"est" + std::to_string(i), std::move(read)});
    wl.truth.push_back(gene);
  }

  wl.ests = bio::EstSet(std::move(ests));
  return wl;
}

SimConfig scaled_config(std::size_t num_ests, std::uint64_t seed) {
  SimConfig cfg;
  cfg.num_ests = num_ests;
  // ~12 ESTs per gene on average, as in large EST libraries.
  cfg.num_genes = std::max<std::size_t>(2, num_ests / 12);
  cfg.seed = seed;
  return cfg;
}

}  // namespace estclust::sim
