// Synthetic EST workload generation with ground truth.
//
// Substitutes for the paper's 81,414-EST Arabidopsis benchmark (whose
// correct clustering was derived from the sequenced genome). The generator
// follows the biology sketched in the paper's Figure 1:
//
//   gene  = exon1 intron1 exon2 intron2 ... exonK      (random DNA)
//   mRNA  = exon1 exon2 ... exonK                      (introns spliced out)
//   EST   = error-injected fragment of the mRNA, sequenced from a random
//           position, on a random strand (reverse complement with prob 1/2)
//
// Genes are sampled with a Zipf-skewed expression profile, mirroring real
// EST libraries where a few genes dominate. The generating gene of every
// EST is recorded as the correct clustering for quality assessment.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bio/dataset.hpp"
#include "util/prng.hpp"

namespace estclust::sim {

struct SimConfig {
  std::size_t num_genes = 50;

  // Gene structure.
  std::size_t min_exons = 2;
  std::size_t max_exons = 6;
  std::size_t exon_len_min = 80;
  std::size_t exon_len_max = 300;
  std::size_t intron_len_min = 50;
  std::size_t intron_len_max = 200;

  // Gene families and repeats. Real EST libraries contain paralogous
  // genes (duplicated, diverged copies) and interspersed repeat elements;
  // both produce promising pairs whose alignments then *fail* the quality
  // criteria — the dominant source of wasted alignments in Fig 7 — and
  // occasional false merges (the paper's nonzero OV column in Table 2).
  double paralog_fraction = 0.0;   ///< genes cloned from an earlier gene
  double paralog_divergence = 0.12;  ///< per-base substitution between copies
  std::size_t repeat_library = 3;  ///< distinct repeat elements
  std::size_t repeat_len = 150;
  double repeat_prob = 0.0;        ///< chance a transcript carries a repeat
  double repeat_divergence = 0.08; ///< per-insertion mutation of the element

  /// Alternative splicing: probability that a (non-paralog) gene has a
  /// second isoform with one internal exon skipped. ESTs then sample
  /// either isoform uniformly; both belong to the same true cluster.
  double alt_splice_prob = 0.0;

  // EST sampling.
  std::size_t num_ests = 500;
  double expression_skew = 0.6;  ///< Zipf theta across genes (0 = uniform)
  std::size_t est_len_mean = 500;  ///< paper: average EST length 500-600
  std::size_t est_len_stddev = 80;
  std::size_t est_len_min = 100;
  double rc_prob = 0.5;  ///< probability the read reports the minus strand

  // Sequencing error channel (per base).
  double sub_rate = 0.01;
  double ins_rate = 0.002;
  double del_rate = 0.002;

  std::uint64_t seed = 20020811;  ///< any fixed seed reproduces the set
};

/// A generated data set: the ESTs plus the correct clustering.
struct Workload {
  bio::EstSet ests;
  std::vector<std::uint32_t> truth;  ///< generating gene id per EST
  std::vector<std::string> mrnas;    ///< primary transcript, per gene
  /// All transcripts per gene (1 entry normally, 2 when the gene has an
  /// exon-skipping isoform; isoforms[g][0] == mrnas[g]).
  std::vector<std::vector<std::string>> isoforms;
  /// Which isoform each EST was read from.
  std::vector<std::uint8_t> est_isoform;
};

Workload generate(const SimConfig& cfg);

/// A config scaled for a target EST count with paper-like proportions
/// (about 12 ESTs per gene on average, matching ~81k ESTs over ~7k genes).
SimConfig scaled_config(std::size_t num_ests, std::uint64_t seed = 20020811);

/// Applies the error channel to one sequence (exposed for tests).
std::string apply_errors(const std::string& s, double sub, double ins,
                         double del, Prng& rng);

}  // namespace estclust::sim
