// Baseline clusterer in the style of the serial tools of Table 1.
//
// CAP3, Phrap and the TIGR Assembler are closed programs; what the paper
// holds against them is architectural, and this baseline reproduces exactly
// those two properties so the comparisons exercise the same mechanisms:
//
//   1. Promising-pair candidates are found with a k-mer index and
//      *materialized all at once* — the memory-intensive phase that made
//      the 81,414-EST set unrunnable in 512 MB ('X' entries of Table 1).
//   2. Candidates are processed in arbitrary (index) order rather than
//      decreasing overlap-strength order, so cluster knowledge accumulates
//      late and many redundant alignments are performed (Fig 7 contrast).
//
// Alignment and acceptance reuse the same kernels as the main pipeline, so
// quality differences (Table 2) come from candidate selection and ordering
// only.
#pragma once

#include <cstdint>

#include "align/anchored.hpp"
#include "bio/dataset.hpp"
#include "cluster/union_find.hpp"

namespace estclust::baseline {

struct BaselineConfig {
  std::uint32_t kmer = 16;  ///< candidate seed length
  align::OverlapParams overlap;
  /// The serial tools ran *full* dynamic programming on each promising
  /// pair (§2) — the paper's anchored banded extension is precisely what
  /// they lacked. true = full-width DP per pair (faithful, slow);
  /// false = reuse the banded kernel (for quality-only comparisons).
  bool full_dp = true;
  /// Assemblers compute every promising overlap (they need the scores for
  /// layout, not just a partition), so they cannot skip pairs whose ESTs
  /// already share a cluster. false = faithful (align all candidates);
  /// true = grant the baseline the paper's union-find short-circuit.
  bool cluster_skip = false;
  /// Skip k-mers occurring more often than this (repeat masking, as real
  /// assemblers do) to avoid quadratic blowup on low-complexity sequence.
  std::size_t max_kmer_occ = 64;
  /// Abort (Table 1 'X') when candidate storage exceeds this many bytes;
  /// 0 = unlimited.
  std::size_t memory_cap_bytes = 0;
};

struct BaselineStats {
  std::uint64_t candidate_pairs = 0;  ///< distinct pairs materialized
  std::uint64_t pairs_processed = 0;  ///< aligned
  std::uint64_t pairs_accepted = 0;
  std::uint64_t merges = 0;
  std::uint64_t dp_cells = 0;
  std::size_t peak_bytes = 0;  ///< high-water mark of candidate storage
  bool out_of_memory = false;
  double t_index = 0.0;
  double t_pairs = 0.0;
  double t_align = 0.0;
  double t_total = 0.0;
  std::size_t num_clusters = 0;
};

struct BaselineResult {
  cluster::UnionFind clusters;
  BaselineStats stats;
};

/// Runs the baseline to completion (or until the memory cap trips, in
/// which case `stats.out_of_memory` is set and the clustering is the
/// partial identity clustering).
BaselineResult cluster_baseline(const bio::EstSet& ests,
                                const BaselineConfig& cfg);

}  // namespace estclust::baseline
