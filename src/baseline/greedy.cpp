#include "baseline/greedy.hpp"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "bio/alphabet.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace estclust::baseline {

namespace {

/// A materialized candidate: ESTs a < b, with the seed match as anchor.
struct Candidate {
  bio::EstId a = 0;
  bio::EstId b = 0;
  std::uint8_t b_rc = 0;
  std::uint32_t a_pos = 0;
  std::uint32_t b_pos = 0;
};

struct KmerOcc {
  bio::StringId sid = 0;
  std::uint32_t pos = 0;
};

}  // namespace

BaselineResult cluster_baseline(const bio::EstSet& ests,
                                const BaselineConfig& cfg) {
  ESTCLUST_CHECK(cfg.kmer >= 4 && cfg.kmer <= 31);
  const std::size_t n = ests.num_ests();
  BaselineResult res{cluster::UnionFind(n), {}};
  BaselineStats& st = res.stats;
  WallTimer total;

  // Phase 1: k-mer index over all 2n strings.
  WallTimer phase;
  std::unordered_map<std::uint64_t, std::vector<KmerOcc>> index;
  index.reserve(ests.total_string_chars());
  const std::uint64_t mask = (1ULL << (2 * cfg.kmer)) - 1;
  for (bio::StringId sid = 0; sid < ests.num_strings(); ++sid) {
    auto s = ests.str(sid);
    if (s.size() < cfg.kmer) continue;
    std::uint64_t key = 0;
    for (std::size_t i = 0; i < s.size(); ++i) {
      key = ((key << 2) | static_cast<std::uint64_t>(
                              bio::encode_base(s[i]))) &
            mask;
      if (i + 1 >= cfg.kmer) {
        index[key].push_back(
            {sid, static_cast<std::uint32_t>(i + 1 - cfg.kmer)});
      }
    }
  }
  st.t_index = phase.seconds();

  // Phase 2: materialize every candidate pair (the memory-intensive step).
  phase.reset();
  std::vector<Candidate> candidates;
  auto storage_bytes = [&] {
    return candidates.size() * sizeof(Candidate);
  };
  bool aborted = false;
  // ESTCLUST-SUPPRESS(determinism-unordered-iter): candidates are sorted and deduplicated below
  for (const auto& [key, occs] : index) {
    if (occs.size() > cfg.max_kmer_occ) continue;  // repeat masking
    for (std::size_t i = 0; i < occs.size() && !aborted; ++i) {
      for (std::size_t j = i + 1; j < occs.size(); ++j) {
        KmerOcc lo = occs[i], hi = occs[j];
        if (bio::EstSet::est_of(lo.sid) > bio::EstSet::est_of(hi.sid)) {
          std::swap(lo, hi);
        }
        const bio::EstId a = bio::EstSet::est_of(lo.sid);
        const bio::EstId b = bio::EstSet::est_of(hi.sid);
        if (a == b) continue;
        if (bio::EstSet::is_rc(lo.sid)) continue;  // orientation dedup
        candidates.push_back({a, b,
                              static_cast<std::uint8_t>(
                                  bio::EstSet::is_rc(hi.sid) ? 1 : 0),
                              lo.pos, hi.pos});
        st.peak_bytes = std::max(st.peak_bytes, storage_bytes());
        if (cfg.memory_cap_bytes != 0 &&
            storage_bytes() > cfg.memory_cap_bytes) {
          aborted = true;
          break;
        }
      }
    }
    if (aborted) break;
  }
  if (aborted) {
    st.out_of_memory = true;
    st.t_pairs = phase.seconds();
    st.t_total = total.seconds();
    st.num_clusters = res.clusters.num_clusters();
    return res;
  }

  // Deduplicate to one candidate (with one anchor) per (a, b, orientation).
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& x, const Candidate& y) {
              if (x.a != y.a) return x.a < y.a;
              if (x.b != y.b) return x.b < y.b;
              if (x.b_rc != y.b_rc) return x.b_rc < y.b_rc;
              if (x.a_pos != y.a_pos) return x.a_pos < y.a_pos;
              return x.b_pos < y.b_pos;
            });
  candidates.erase(std::unique(candidates.begin(), candidates.end(),
                               [](const Candidate& x, const Candidate& y) {
                                 return x.a == y.a && x.b == y.b &&
                                        x.b_rc == y.b_rc;
                               }),
                   candidates.end());
  st.candidate_pairs = candidates.size();
  st.peak_bytes = std::max(st.peak_bytes, storage_bytes());
  st.t_pairs = phase.seconds();

  // Phase 3: align candidates in arbitrary (EST-id) order. With full_dp
  // the band spans the whole matrix, i.e. the O(|a|·|b|) alignments the
  // serial tools performed; otherwise the banded production kernel runs.
  phase.reset();
  for (const auto& c : candidates) {
    if (cfg.cluster_skip && res.clusters.same(c.a, c.b)) continue;
    auto a = ests.str(bio::EstSet::forward_sid(c.a));
    auto b = ests.str(c.b_rc ? bio::EstSet::rc_sid(c.b)
                             : bio::EstSet::forward_sid(c.b));
    align::Anchor anchor{c.a_pos, c.b_pos, cfg.kmer};
    align::OverlapParams params = cfg.overlap;
    if (cfg.full_dp) params.band = a.size() + b.size();
    auto overlap = align::align_anchored(a, b, anchor, params);
    ++st.pairs_processed;
    st.dp_cells += overlap.cells;
    if (align::accept_overlap(overlap, cfg.overlap)) {
      ++st.pairs_accepted;
      if (res.clusters.unite(c.a, c.b)) ++st.merges;
    }
  }
  st.t_align = phase.seconds();
  st.num_clusters = res.clusters.num_clusters();
  st.t_total = total.seconds();
  return res;
}

}  // namespace estclust::baseline
