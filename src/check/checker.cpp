#include "check/checker.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/log.hpp"

namespace estclust::check {

namespace {

std::string fmt_tag(int tag) {
  if (tag == mpr::kAnyTag) return "any";
  if (tag >= mpr::kInternalTagBase) {
    return "internal+" + std::to_string(tag - mpr::kInternalTagBase);
  }
  return std::to_string(tag);
}

std::string fmt_src(int src) {
  return src == mpr::kAnySource ? "any" : std::to_string(src);
}

}  // namespace

bool parse_check_mode(const std::string& s, mpr::CheckMode* out) {
  if (s == "off") {
    *out = mpr::CheckMode::kOff;
  } else if (s == "warn") {
    *out = mpr::CheckMode::kWarn;
  } else if (s == "strict") {
    *out = mpr::CheckMode::kStrict;
  } else {
    return false;
  }
  return true;
}

Checker::Checker(mpr::Runtime& rt, mpr::CheckMode mode)
    : rt_(rt), mode_(mode), ranks_(rt.size()) {
  ESTCLUST_CHECK_MSG(mode != mpr::CheckMode::kOff,
                     "kOff means: do not install a checker");
}

void Checker::begin_run(int nranks) {
  std::lock_guard<std::mutex> lk(mu_);
  ranks_ = std::vector<RankRecord>(static_cast<std::size_t>(nranks));
  failed_.store(false, std::memory_order_release);
  failure_report_.clear();
}

void Checker::rank_started(int rank) {
  ranks_[rank].owner.store(std::this_thread::get_id(),
                           std::memory_order_release);
}

void Checker::rank_finished(int rank, std::uint64_t collectives,
                            bool crashed) {
  std::lock_guard<std::mutex> lk(mu_);
  RankRecord& rec = ranks_[rank];
  rec.state = RankState::kFinished;
  rec.collectives = collectives;
  rec.crashed = crashed;
  // A rank leaving can expose a deadlock: everyone else may already be
  // blocked waiting for traffic only this rank could have sent.
  detect_locked();
}

mpr::Message Checker::blocking_pop_impl(mpr::Mailbox& mb, int rank, int src,
                                        int tag_a, int tag_b, std::string op) {
  // All checked waits serialize on mu_ so the wait-for graph, the mailbox
  // probes and the state transitions are mutually consistent: a rank is
  // marked blocked only while it verifiably has no matching message, and
  // the quiescence test below can never fire while any rank still owns an
  // in-flight operation.
  std::unique_lock<std::mutex> lk(mu_);
  RankRecord& rec = ranks_[rank];
  if (rec.owner.load(std::memory_order_relaxed) !=
      std::this_thread::get_id()) {
    findings_.push_back("race: rank " + std::to_string(rank) +
                        " blocking receive issued from a foreign thread");
    if (mode_ == mpr::CheckMode::kStrict) throw CheckError(findings_.back());
  }
  rec.op = std::move(op);
  rec.await_src = src;
  rec.await_tag = tag_a;
  rec.await_tag2 = tag_b;
  for (;;) {
    if (failed_.load(std::memory_order_acquire)) {
      throw mpr::CheckAbort(
          "mpr check: blocking receive on rank " + std::to_string(rank) +
          " cancelled (failure diagnosed on another rank)");
    }
    auto m = tag_b == kNoSecondTag ? mb.try_pop(src, tag_a)
                                   : mb.try_pop2(src, tag_a, tag_b);
    if (m) {
      rec.state = RankState::kRunning;
      rec.await_tag2 = kNoSecondTag;
      return std::move(*m);
    }
    rec.state = RankState::kBlocked;
    detect_locked();
    if (failed_.load(std::memory_order_acquire)) continue;
    cv_.wait(lk);
  }
}

mpr::Message Checker::blocking_pop(mpr::Mailbox& mb, int rank, int src,
                                   int tag, std::string op) {
  return blocking_pop_impl(mb, rank, src, tag, kNoSecondTag, std::move(op));
}

mpr::Message Checker::blocking_pop2(mpr::Mailbox& mb, int rank, int src,
                                    int tag_a, int tag_b, std::string op) {
  return blocking_pop_impl(mb, rank, src, tag_a, tag_b, std::move(op));
}

void Checker::message_pushed(int /*dest*/) {
  // Empty critical section: a waiter that saw no match while holding mu_
  // has either reached cv_.wait (will get this notify) or not yet
  // released mu_ (we serialize behind it) — no missed wakeups.
  { std::lock_guard<std::mutex> lk(mu_); }
  cv_.notify_all();
}

void Checker::on_send(int rank, int /*dest*/, int tag, std::size_t /*bytes*/) {
  ++ranks_[rank].sent_by_tag[tag];
}

void Checker::on_receive(int rank, int /*src*/, int tag,
                         std::size_t /*bytes*/) {
  ++ranks_[rank].recv_by_tag[tag];
}

void Checker::guard_access(int rank, const char* what) {
  if (ranks_[rank].owner.load(std::memory_order_acquire) ==
      std::this_thread::get_id()) {
    return;
  }
  report_finding("race: rank " + std::to_string(rank) + " " + what +
                 " accessed from a foreign thread (per-rank state is "
                 "single-consumer by design)");
}

void Checker::audit_clock(int rank, const mpr::VirtualClock& clk) {
  const double total = clk.time();
  const double split = clk.busy_time() + clk.comm_time() + clk.idle_time();
  if (std::abs(total - split) <= 1e-9 + 1e-9 * std::abs(total)) return;
  std::ostringstream os;
  os << "clock accounting broken on rank " << rank << ": busy+comm+idle = "
     << split << " but total = " << total;
  report_finding(os.str());
}

void Checker::report_finding(const std::string& what) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    findings_.push_back(what);
  }
  if (mode_ == mpr::CheckMode::kStrict) throw CheckError("mpr check: " + what);
  ESTCLUST_LOG_WARN << "mpr check: " << what;
}

std::vector<std::string> Checker::findings() const {
  std::lock_guard<std::mutex> lk(mu_);
  return findings_;
}

void Checker::detect_locked() {
  if (failed_.load(std::memory_order_acquire)) return;
  bool any_blocked = false;
  for (const auto& r : ranks_) {
    if (r.state == RankState::kRunning) return;
    any_blocked |= r.state == RankState::kBlocked;
  }
  if (!any_blocked) return;
  // Quiescent. A blocked rank whose wait is already satisfiable will wake
  // and run, so the system is only dead if no queued message matches.
  for (std::size_t r = 0; r < ranks_.size(); ++r) {
    const auto& rec = ranks_[r];
    if (rec.state != RankState::kBlocked) continue;
    auto& mb = rt_.mailbox(static_cast<int>(r));
    bool satisfiable;
    if (rec.await_tag2 == kNoSecondTag) {
      // ESTCLUST-SUPPRESS(tag-protocol): mirrors the rank's recorded wait
      satisfiable = mb.probe(rec.await_src, rec.await_tag);
    } else {
      // ESTCLUST-SUPPRESS(tag-protocol): mirrors the rank's recorded wait
      satisfiable = mb.probe2(rec.await_src, rec.await_tag, rec.await_tag2);
    }
    if (satisfiable) return;
  }
  failure_report_ = build_deadlock_report_locked();
  failed_.store(true, std::memory_order_release);
  cv_.notify_all();
}

std::string Checker::build_deadlock_report_locked() const {
  const int p = static_cast<int>(ranks_.size());
  std::ostringstream os;
  os << "mpr deadlock detected: every rank is blocked or finished and no "
        "queued message matches a pending receive\n";
  for (int r = 0; r < p; ++r) {
    const auto& rec = ranks_[r];
    os << "  rank " << r << ": ";
    if (rec.state == RankState::kFinished) {
      os << (rec.crashed ? "FINISHED (exception)" : "FINISHED");
    } else {
      os << "BLOCKED in " << rec.op << " awaiting src="
         << fmt_src(rec.await_src) << " tag=" << fmt_tag(rec.await_tag);
      if (rec.await_tag2 != kNoSecondTag) {
        os << "|" << fmt_tag(rec.await_tag2);
      }
    }
    auto pend = rt_.mailbox(r).pending();
    if (pend.empty()) {
      os << "; mailbox empty";
    } else {
      os << "; mailbox: " << pend.size() << " queued";
      const std::size_t show = std::min<std::size_t>(pend.size(), 8);
      for (std::size_t i = 0; i < show; ++i) {
        os << (i == 0 ? " [" : ", ") << "src=" << pend[i].src
           << " tag=" << fmt_tag(pend[i].tag) << " " << pend[i].bytes << "B";
      }
      os << (pend.size() > show ? ", ...]" : "]");
    }
    os << '\n';
  }

  // Wait-for cycle: edge r -> s when r's receive can only be satisfied by
  // s (wildcard receives wait on every unfinished rank). Iterative DFS;
  // blocked ranks only — finished ranks are sinks.
  std::vector<int> color(p, 0);  // 0 white, 1 on stack, 2 done
  auto edges = [&](int r) {
    std::vector<int> out;
    const auto& rec = ranks_[r];
    if (rec.state != RankState::kBlocked) return out;
    if (rec.await_src != mpr::kAnySource) {
      out.push_back(rec.await_src);
    } else {
      for (int s = 0; s < p; ++s) {
        if (s != r && ranks_[s].state != RankState::kFinished) {
          out.push_back(s);
        }
      }
    }
    return out;
  };
  std::vector<int> cycle;
  for (int start = 0; start < p && cycle.empty(); ++start) {
    if (color[start] != 0 || ranks_[start].state != RankState::kBlocked) {
      continue;
    }
    std::vector<std::pair<int, std::size_t>> stack{{start, 0}};
    color[start] = 1;
    while (!stack.empty() && cycle.empty()) {
      auto& [node, idx] = stack.back();
      auto out = edges(node);
      if (idx >= out.size()) {
        color[node] = 2;
        stack.pop_back();
        continue;
      }
      int next = out[idx++];
      if (color[next] == 1) {
        // Found a back edge: walk the stack to extract the cycle.
        cycle.push_back(next);
        for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
          cycle.push_back(it->first);
          if (it->first == next) break;
        }
        std::reverse(cycle.begin(), cycle.end());
      } else if (color[next] == 0) {
        color[next] = 1;
        stack.push_back({next, 0});
      }
    }
  }
  if (cycle.empty()) {
    os << "wait-for cycle: none (stalled on terminated ranks or "
          "mismatched traffic)";
  } else {
    os << "wait-for cycle:";
    for (std::size_t i = 0; i < cycle.size(); ++i) {
      os << (i == 0 ? " " : " -> ") << cycle[i];
    }
  }
  return os.str();
}

void Checker::finalize() {
  if (failed_.load(std::memory_order_acquire)) {
    throw CheckError(failure_report_);
  }
  const int p = rt_.size();
  std::vector<std::string> audit;

  // Retransmission hygiene under a fault plan: traffic still in flight to
  // a rank at its scheduled death can never be received. Such messages are
  // excused from the mailbox audit and credited to the per-tag balance —
  // every other shortfall is still a genuine protocol bug.
  const mpr::FaultPlan* plan = rt_.fault_plan();
  std::map<int, std::uint64_t> excused_by_tag;

  // Unreceived messages left in mailboxes.
  for (int r = 0; r < p; ++r) {
    auto pend = rt_.mailbox(r).pending();
    if (pend.empty()) continue;
    if (plan && plan->death_scheduled(r)) {
      for (const auto& pm : pend) ++excused_by_tag[pm.tag];
      continue;
    }
    std::ostringstream os;
    os << "hygiene: rank " << r << " mailbox holds " << pend.size()
       << " unreceived message(s):";
    const std::size_t show = std::min<std::size_t>(pend.size(), 8);
    for (std::size_t i = 0; i < show; ++i) {
      os << " [src=" << pend[i].src << " tag=" << fmt_tag(pend[i].tag)
         << " " << pend[i].bytes << "B]";
    }
    if (pend.size() > show) os << " ...";
    audit.push_back(os.str());
  }

  // Per-tag send/receive balance (sent > received means lost traffic;
  // the converse cannot happen).
  std::map<int, std::uint64_t> sent, received;
  bool any_crashed = false;
  for (const auto& rec : ranks_) {
    for (const auto& [tag, n] : rec.sent_by_tag) sent[tag] += n;
    for (const auto& [tag, n] : rec.recv_by_tag) received[tag] += n;
    any_crashed |= rec.crashed;
  }
  for (const auto& [tag, n] : sent) {
    const std::uint64_t got = received.count(tag) ? received[tag] : 0;
    const std::uint64_t excused =
        excused_by_tag.count(tag) ? excused_by_tag[tag] : 0;
    if (got + excused < n) {
      audit.push_back("hygiene: tag " + fmt_tag(tag) + ": " +
                      std::to_string(n) + " sent but only " +
                      std::to_string(got) + " received");
    }
  }

  // Collective participation balance (skipped when a rank crashed — its
  // shortfall is a symptom, not the cause).
  if (!any_crashed && p > 1) {
    std::uint64_t lo = ranks_[0].collectives, hi = ranks_[0].collectives;
    for (const auto& rec : ranks_) {
      lo = std::min(lo, rec.collectives);
      hi = std::max(hi, rec.collectives);
    }
    if (lo != hi) {
      std::ostringstream os;
      os << "hygiene: unbalanced collective participation:";
      for (int r = 0; r < p; ++r) {
        os << " rank" << r << "=" << ranks_[r].collectives;
      }
      audit.push_back(os.str());
    }
  }

  // Clock accounting: the split invariant on every rank, plus a lower
  // bound from the hot-loop counters — dp cells and scanned characters
  // must have been charged to some clock's busy time.
  const auto& cm = rt_.cost_model();
  double busy_total = 0.0, expected_total = 0.0;
  for (int r = 0; r < p; ++r) {
    const auto& clk = rt_.clock(r);
    const double total = clk.time();
    const double split =
        clk.busy_time() + clk.comm_time() + clk.idle_time();
    if (std::abs(total - split) > 1e-9 + 1e-9 * std::abs(total)) {
      std::ostringstream os;
      os << "clock accounting broken on rank " << r
         << ": busy+comm+idle = " << split << " but total = " << total;
      audit.push_back(os.str());
    }
    busy_total += clk.busy_time();
    auto& m = rt_.metrics(r);
    expected_total +=
        static_cast<double>(m.counter_value("pace.dp_cells")) * cm.dp_cell +
        static_cast<double>(m.counter_value("gst.chars_scanned")) *
            cm.char_op;
  }
  if (expected_total > busy_total * (1.0 + 1e-9) + 1e-9) {
    std::ostringstream os;
    os << "clock accounting: unaccounted hot-loop work: counters imply >= "
       << expected_total << " s of busy time but clocks recorded only "
       << busy_total << " s (missing charge() calls?)";
    audit.push_back(os.str());
  }

  if (audit.empty()) return;
  {
    std::lock_guard<std::mutex> lk(mu_);
    findings_.insert(findings_.end(), audit.begin(), audit.end());
  }
  if (mode_ == mpr::CheckMode::kStrict) {
    std::ostringstream os;
    os << "mpr check finalize: " << audit.size() << " finding(s):";
    for (const auto& a : audit) os << "\n  " << a;
    throw CheckError(os.str());
  }
  for (const auto& a : audit) ESTCLUST_LOG_WARN << "mpr check: " << a;
}

Checker* enable_checking(mpr::Runtime& rt, mpr::CheckMode mode) {
  if (mode == mpr::CheckMode::kOff) return nullptr;
  auto checker = std::make_shared<Checker>(rt, mode);
  Checker* raw = checker.get();
  rt.set_check_sink(std::move(checker));
  return raw;
}

}  // namespace estclust::check
