// Runtime-verification layer for the mpr message-passing runtime.
//
// The paper's master/slave protocol (§5) is rank-addressed, tag-typed
// traffic where a silent bug — a lost batch, a barrier mismatch, a rank
// blocked forever — corrupts clusters or the modeled run-times without
// crashing. The Checker turns those silent failures into reports:
//
//  * Deadlock detector. Every blocking receive routes through the checker,
//    which tracks each rank's state (running / blocked on (src, tag) /
//    finished). The moment every rank is blocked or finished and no
//    blocked rank has a matching message queued, no future send can occur
//    (sends only happen on running ranks), so the run is provably stuck.
//    The detecting rank freezes the wait-for graph, formats a per-rank
//    report (blocked operation, awaited src/tag, pending mailbox
//    contents, cycle if one exists), cancels every blocked receive and
//    the report is thrown from Runtime::run instead of hanging.
//
//  * Message-hygiene audit at finalize: messages still queued in a
//    mailbox after the run, tags sent more often than received, and
//    unbalanced collective participation across ranks.
//
//  * Clock-accounting audit: busy + comm + idle == total on every
//    receive and at finalize, plus a lower-bound cross-check of the
//    metrics counters (gst.chars_scanned, pace.dp_cells) against the
//    clock's busy time — unaccounted hot-loop work is flagged.
//
//  * Lockset-style race guard: each rank's mailbox-consumer side and
//    metrics registry are single-threaded by design; any access from a
//    foreign thread is reported. The tsan CMake preset provides the
//    instruction-level complement.
//
// Checking never touches a virtual clock: with the checker installed (in
// any mode) clusters and modeled run-times are identical to an unchecked
// run; with it off the runtime does not even take a branch per message.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "mpr/check_sink.hpp"
#include "mpr/runtime.hpp"

namespace estclust::check {

/// Parses "off" / "warn" / "strict" (as accepted by estclust --check).
/// Returns false on unknown values.
bool parse_check_mode(const std::string& s, mpr::CheckMode* out);

class Checker : public mpr::CheckSink {
 public:
  Checker(mpr::Runtime& rt, mpr::CheckMode mode);

  mpr::CheckMode mode() const { return mode_; }

  // CheckSink interface (called by the runtime).
  void begin_run(int nranks) override;
  void rank_started(int rank) override;
  void rank_finished(int rank, std::uint64_t collectives,
                     bool crashed) override;
  mpr::Message blocking_pop(mpr::Mailbox& mb, int rank, int src, int tag,
                            std::string op) override;
  mpr::Message blocking_pop2(mpr::Mailbox& mb, int rank, int src, int tag_a,
                             int tag_b, std::string op) override;
  void message_pushed(int dest) override;
  void on_send(int rank, int dest, int tag, std::size_t bytes) override;
  void on_receive(int rank, int src, int tag, std::size_t bytes) override;
  void guard_access(int rank, const char* what) override;
  void audit_clock(int rank, const mpr::VirtualClock& clk) override;
  void finalize() override;

  /// True once a deadlock (or strict-mode violation inside a rank) has
  /// aborted the run; failure_report() then holds the full diagnosis.
  bool failed() const { return failed_.load(std::memory_order_acquire); }
  const std::string& failure_report() const { return failure_report_; }

  /// Findings collected in warn mode (and pre-throw in strict mode):
  /// hygiene, clock-accounting and race-guard messages, one per line.
  std::vector<std::string> findings() const;

 private:
  enum class RankState : std::uint8_t { kRunning, kBlocked, kFinished };

  /// Sentinel for await_tag2: the wait is single-tag. Distinct from
  /// kAnyTag (-1), which is a valid wildcard for single-tag waits.
  static constexpr int kNoSecondTag = -2;

  struct RankRecord {
    RankState state = RankState::kRunning;
    std::string op;  // label of the blocking call ("pace.master.../recv")
    int await_src = 0;
    int await_tag = 0;
    int await_tag2 = kNoSecondTag;  // second accepted tag (recv2 waits)
    std::uint64_t collectives = 0;
    bool crashed = false;
    std::atomic<std::thread::id> owner{};
    // Hygiene ledgers, written only by the owner thread while it runs and
    // read only after the join in finalize().
    std::map<int, std::uint64_t> sent_by_tag;
    std::map<int, std::uint64_t> recv_by_tag;
  };

  /// Shared implementation of the one- and two-tag blocking pops
  /// (tag_b == kNoSecondTag means single-tag).
  mpr::Message blocking_pop_impl(mpr::Mailbox& mb, int rank, int src,
                                 int tag_a, int tag_b, std::string op);

  /// Runs the quiescence test; on deadlock builds the report, sets the
  /// failure flag and wakes all blocked ranks. Caller holds mu_.
  void detect_locked();
  std::string build_deadlock_report_locked() const;

  /// Records a finding; throws CheckError in strict mode, logs in warn.
  void report_finding(const std::string& what);

  mpr::Runtime& rt_;
  const mpr::CheckMode mode_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<RankRecord> ranks_;
  std::atomic<bool> failed_{false};
  std::string failure_report_;
  std::vector<std::string> findings_;
};

/// Creates a Checker, installs it on the runtime and returns it (owned by
/// the runtime; the reference stays valid for the runtime's lifetime).
/// kOff installs nothing and returns null.
Checker* enable_checking(mpr::Runtime& rt, mpr::CheckMode mode);

}  // namespace estclust::check
