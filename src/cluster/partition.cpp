#include "cluster/partition.hpp"

#include <algorithm>
#include <sstream>

namespace estclust::cluster {

std::string canonical_partition(const std::vector<std::uint32_t>& labels) {
  std::vector<std::vector<std::uint32_t>> clusters;
  std::vector<std::int64_t> slot(labels.size(), -1);
  for (std::uint32_t i = 0; i < labels.size(); ++i) {
    std::int64_t& s = slot[labels[i]];
    if (s < 0) {
      s = static_cast<std::int64_t>(clusters.size());
      clusters.emplace_back();
    }
    clusters[static_cast<std::size_t>(s)].push_back(i);
  }
  // Members arrive in ascending order already; clusters are keyed by their
  // first member, which is ascending too because slots are assigned on
  // first sight. Sort anyway so the canonical form is self-evident.
  std::sort(clusters.begin(), clusters.end());
  std::ostringstream out;
  for (const auto& c : clusters) {
    for (std::size_t i = 0; i < c.size(); ++i) {
      if (i) out << ' ';
      out << c[i];
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace estclust::cluster
