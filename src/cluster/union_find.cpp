#include "cluster/union_find.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"

namespace estclust::cluster {

UnionFind::UnionFind(std::size_t n)
    : parent_(n), rank_(n, 0), size_(n, 1), clusters_(n) {
  std::iota(parent_.begin(), parent_.end(), 0);
}

void UnionFind::grow(std::size_t new_n) {
  ESTCLUST_CHECK(new_n >= parent_.size());
  const std::size_t old_n = parent_.size();
  parent_.resize(new_n);
  rank_.resize(new_n, 0);
  size_.resize(new_n, 1);
  for (std::size_t i = old_n; i < new_n; ++i) {
    parent_[i] = static_cast<std::uint32_t>(i);
  }
  clusters_ += new_n - old_n;
}

std::uint32_t UnionFind::find(std::uint32_t x) {
  ESTCLUST_DCHECK(x < parent_.size());
  ++ops_;
  std::uint32_t root = x;
  while (parent_[root] != root) root = parent_[root];
  while (parent_[x] != root) {
    std::uint32_t next = parent_[x];
    parent_[x] = root;
    x = next;
  }
  return root;
}

bool UnionFind::same(std::uint32_t x, std::uint32_t y) {
  return find(x) == find(y);
}

bool UnionFind::unite(std::uint32_t x, std::uint32_t y) {
  std::uint32_t rx = find(x);
  std::uint32_t ry = find(y);
  ++ops_;
  if (rx == ry) return false;
  if (rank_[rx] < rank_[ry]) std::swap(rx, ry);
  parent_[ry] = rx;
  size_[rx] += size_[ry];
  if (rank_[rx] == rank_[ry]) ++rank_[rx];
  --clusters_;
  return true;
}

std::uint32_t UnionFind::cluster_size(std::uint32_t x) {
  return size_[find(x)];
}

std::vector<std::uint32_t> UnionFind::labels() {
  const std::size_t n = parent_.size();
  // Label every element with the smallest member of its cluster so labels
  // are canonical across runs regardless of union order.
  std::vector<std::uint32_t> smallest(n, static_cast<std::uint32_t>(n));
  for (std::uint32_t i = 0; i < n; ++i) {
    std::uint32_t r = find(i);
    smallest[r] = std::min(smallest[r], i);
  }
  std::vector<std::uint32_t> out(n);
  for (std::uint32_t i = 0; i < n; ++i) out[i] = smallest[find(i)];
  return out;
}

std::vector<std::vector<std::uint32_t>> UnionFind::extract_clusters() {
  const std::size_t n = parent_.size();
  std::vector<std::vector<std::uint32_t>> by_root(n);
  for (std::uint32_t i = 0; i < n; ++i) by_root[find(i)].push_back(i);
  std::vector<std::vector<std::uint32_t>> out;
  for (auto& members : by_root) {
    if (!members.empty()) out.push_back(std::move(members));
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a[0] < b[0]; });
  return out;
}

}  // namespace estclust::cluster
