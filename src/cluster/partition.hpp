// Canonical text form of a cluster partition.
//
// Label vectors from different runs (or different ranks, or different
// pair-source backends) number their clusters differently; the canonical
// form erases the numbering so partitions compare byte-for-byte. The
// golden tests pin this text in tests/data/ and bench_table1 uses it for
// the cross-backend quality column.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace estclust::cluster {

/// One line per cluster, members ascending, clusters ordered by smallest
/// member. Independent of label numbering: two label vectors describe the
/// same partition iff their canonical texts are equal.
std::string canonical_partition(const std::vector<std::uint32_t>& labels);

}  // namespace estclust::cluster
