// Union-find cluster maintenance (§3.3).
//
// Each EST starts as its own cluster; accepted overlaps merge clusters.
// Union by rank with path compression gives inverse-Ackermann amortized
// cost per operation (Tarjan 1975), effectively constant.
#pragma once

#include <cstdint>
#include <vector>

namespace estclust::cluster {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n);

  /// Appends elements n..new_n-1 as fresh singleton clusters (incremental
  /// clustering grows the universe batch by batch). new_n must not shrink
  /// the structure.
  void grow(std::size_t new_n);

  std::size_t size() const { return parent_.size(); }

  /// Representative of x's cluster (with path compression).
  std::uint32_t find(std::uint32_t x);

  /// True iff x and y are in the same cluster.
  bool same(std::uint32_t x, std::uint32_t y);

  /// Merges the clusters of x and y; returns false if already merged.
  bool unite(std::uint32_t x, std::uint32_t y);

  /// Number of clusters remaining.
  std::size_t num_clusters() const { return clusters_; }

  /// Number of elements in x's cluster.
  std::uint32_t cluster_size(std::uint32_t x);

  /// find/union operations performed so far (virtual-time charging).
  std::uint64_t operations() const { return ops_; }

  /// Clusters as member lists, each sorted, ordered by smallest member.
  std::vector<std::vector<std::uint32_t>> extract_clusters();

  /// Cluster label per element: label = smallest member id of its cluster.
  std::vector<std::uint32_t> labels();

 private:
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint8_t> rank_;
  std::vector<std::uint32_t> size_;
  std::size_t clusters_;
  std::uint64_t ops_ = 0;
};

}  // namespace estclust::cluster
