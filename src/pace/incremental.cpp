#include "pace/incremental.hpp"

#include <algorithm>

#include "gst/builder.hpp"
#include "pace/aligner.hpp"
#include "pairgen/generator.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace estclust::pace {

IncrementalClusterer::IncrementalClusterer(const PaceConfig& cfg)
    : cfg_(cfg), clusters_(0) {
  cfg_.validate();
}

BatchStats IncrementalClusterer::add_batch(std::vector<bio::Sequence> batch) {
  WallTimer timer;
  BatchStats st;
  st.new_ests = batch.size();
  if (batch.empty()) return st;

  const std::size_t old_n = ests_.num_ests();
  for (auto& seq : batch) all_sequences_.push_back(std::move(seq));
  // Rebuilding the EstSet re-materializes all reverse complements: O(total
  // characters) per batch, which is dwarfed by the dirty-bucket tree
  // rebuilds it accompanies.
  ests_ = bio::EstSet(all_sequences_);
  clusters_.grow(ests_.num_ests());

  // Bucket the new strings' suffixes and merge them into the persistent
  // per-bucket suffix lists, remembering which buckets went dirty.
  std::vector<gst::BucketedSuffix> fresh;
  gst::collect_suffixes(ests_, bio::EstSet::forward_sid(
                                   static_cast<bio::EstId>(old_n)),
                        static_cast<bio::StringId>(ests_.num_strings()),
                        cfg_.gst.window, fresh);
  std::vector<std::uint64_t> dirty;
  dirty.reserve(fresh.size());
  for (const auto& bs : fresh) {
    buckets_[bs.bucket].push_back(bs.occ);
    dirty.push_back(bs.bucket);
  }
  std::sort(dirty.begin(), dirty.end());
  dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
  st.dirty_buckets = dirty.size();
  st.total_buckets = buckets_.size();

  // Re-refine only the dirty buckets.
  gst::BuildCounters counters;
  std::vector<gst::Tree> forest;
  forest.reserve(dirty.size());
  for (std::uint64_t b : dirty) {
    forest.push_back(gst::build_bucket_tree(ests_, buckets_[b],
                                            cfg_.gst.window, b, counters));
  }

  // Generate promising pairs from the rebuilt subtrees; only pairs that
  // touch a new EST are fresh work.
  pairgen::PairGenerator gen(ests_, forest, cfg_.psi);
  std::vector<pairgen::PromisingPair> pairs;
  while (gen.next_batch(cfg_.batchsize, pairs) > 0) {
    for (const auto& p : pairs) {
      ++st.pairs_generated;
      if (p.a < old_n && p.b < old_n) {
        ++st.pairs_filtered;  // considered when its later EST arrived
        continue;
      }
      if (clusters_.same(p.a, p.b)) continue;
      PairEvaluation ev = evaluate_pair(ests_, p, cfg_.overlap);
      ++st.pairs_processed;
      if (ev.accepted) {
        ++st.pairs_accepted;
        if (clusters_.unite(p.a, p.b)) ++st.merges;
      }
    }
    pairs.clear();
  }

  st.seconds = timer.seconds();
  return st;
}

}  // namespace estclust::pace
