#include "pace/slave.hpp"

#include <cmath>

#include "obs/trace.hpp"
#include "pace/aligner.hpp"
#include "util/check.hpp"

namespace estclust::pace {

Slave::Slave(mpr::Communicator& comm, const bio::EstSet& ests,
             const PaceConfig& cfg, const std::vector<gst::Tree>& forest)
    : comm_(comm), ests_(ests), cfg_(cfg), generator_(ests, forest, cfg.psi) {
  // The generator's constructor sorted the local nodes by string-depth;
  // charge it to this rank's clock (Table 3's "Sorting Nodes" column).
  ESTCLUST_TRACE_SPAN(comm_.tracer(), "node_sorting", "phase");
  std::uint64_t k = 0;
  for (const auto& t : forest) k += t.size();
  const double before = comm_.clock().time();
  comm_.charge(comm_.cost_model().sort_op,
               k * (1 + static_cast<std::uint64_t>(
                            std::log2(static_cast<double>(k + 1)))));
  counters_.sort_vtime = comm_.clock().time() - before;
}

bool Slave::out_of_pairs() const {
  return generator_.exhausted() && pairbuf_.empty();
}

void Slave::top_up_pairbuf(std::size_t target) {
  if (pairbuf_.size() >= target || generator_.exhausted()) return;
  ESTCLUST_TRACE_SPAN(comm_.tracer(), "pairgen", "phase");
  std::vector<pairgen::PromisingPair> tmp;
  generator_.next_batch(target - pairbuf_.size(), tmp);
  for (const auto& p : tmp) pairbuf_.push_back(p);
  comm_.charge(comm_.cost_model().pair_op, generator_.take_work_units());
}

std::vector<pairgen::PromisingPair> Slave::take_pairs(std::size_t count) {
  std::vector<pairgen::PromisingPair> out;
  const std::size_t k = std::min(count, pairbuf_.size());
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    out.push_back(pairbuf_.front());
    pairbuf_.pop_front();
  }
  return out;
}

std::vector<WireResult> Slave::align_all(
    const std::vector<pairgen::PromisingPair>& work) {
  ESTCLUST_TRACE_SPAN(comm_.tracer(), "alignment", "phase");
  std::vector<WireResult> results;
  results.reserve(work.size());
  for (const auto& p : work) {
    PairEvaluation ev = evaluate_pair(ests_, p, cfg_.overlap);
    comm_.charge(comm_.cost_model().dp_cell, ev.overlap.cells);
    ++counters_.pairs_aligned;
    counters_.dp_cells += ev.overlap.cells;
    WireResult r;
    r.a = p.a;
    r.b = p.b;
    r.b_rc = p.b_rc ? 1 : 0;
    r.accepted = ev.accepted ? 1 : 0;
    r.kind = static_cast<std::uint8_t>(ev.overlap.kind);
    r.quality = static_cast<float>(ev.overlap.quality);
    r.a_begin = static_cast<std::uint32_t>(ev.overlap.a_begin);
    r.a_end = static_cast<std::uint32_t>(ev.overlap.a_end);
    r.b_begin = static_cast<std::uint32_t>(ev.overlap.b_begin);
    r.b_end = static_cast<std::uint32_t>(ev.overlap.b_end);
    results.push_back(r);
  }
  return results;
}

SlaveCounters Slave::run() {
  // Inclusive loop span (covers waiting too); the nested "alignment" /
  // "pairgen" spans carry the busy breakdown.
  ESTCLUST_TRACE_SPAN(comm_.tracer(), "slave_loop", "phase");
  const double loop_start = comm_.clock().time();

  // Startup (§3.3): generate batchsize pairs split into three equal
  // portions. Align the first; ship its results with the third; keep the
  // second as NEXTWORK. From then on the slave always has a batch in hand
  // while a report is in flight, overlapping communication with
  // computation. (These startup alignments bypass the master's filter, so
  // the portions are deliberately small.)
  const std::size_t portion = std::max<std::size_t>(1, cfg_.batchsize / 3);
  top_up_pairbuf(3 * portion);
  std::vector<pairgen::PromisingPair> portion1 = take_pairs(portion);
  std::vector<pairgen::PromisingPair> nextwork = take_pairs(portion);
  std::vector<pairgen::PromisingPair> portion3 = take_pairs(portion);

  ReportMsg initial;
  initial.results = align_all(portion1);
  initial.pairs = std::move(portion3);
  initial.out_of_pairs = out_of_pairs();
  comm_.send(0, kTagReport, encode_report(initial));

  for (;;) {
    // Compute on the batch in hand before blocking on the master.
    std::vector<WireResult> results = align_all(nextwork);
    nextwork.clear();

    // "While waiting, generate more promising pairs" — performed here,
    // before the blocking receive, so the overlap is deterministic.
    top_up_pairbuf(cfg_.pairbuf_capacity);

    mpr::Message m = [&] {
      mpr::CheckOpScope check_scope(comm_, "pace.slave.await_assign");
      return comm_.recv(0);
    }();
    if (m.tag == kTagStop) {
      ESTCLUST_CHECK_MSG(results.empty(),
                         "STOP arrived with unreported results");
      break;
    }
    ESTCLUST_CHECK(m.tag == kTagAssign);
    AssignMsg assign = decode_assign(m.payload);

    // Honour the master's request E, generating on the fly if PAIRBUF
    // cannot cover it.
    if (pairbuf_.size() < assign.request) top_up_pairbuf(assign.request);

    ReportMsg report;
    report.results = std::move(results);
    report.pairs = take_pairs(assign.request);
    report.out_of_pairs = out_of_pairs();
    comm_.send(0, kTagReport, encode_report(report));

    nextwork = std::move(assign.work);
  }

  counters_.pairs_generated = generator_.stats().pairs_emitted;
  counters_.loop_vtime = comm_.clock().time() - loop_start;

  auto& metrics = comm_.metrics();
  metrics.counter("pace.pairs_generated").add(counters_.pairs_generated);
  metrics.counter("pace.pairs_aligned").add(counters_.pairs_aligned);
  metrics.counter("pace.dp_cells").add(counters_.dp_cells);
  metrics.gauge("pace.t_sort", obs::MergeOp::kMax).set(counters_.sort_vtime);
  metrics.gauge("pace.t_align", obs::MergeOp::kMax)
      .set(counters_.loop_vtime);
  return counters_;
}

}  // namespace estclust::pace
