#include "pace/slave.hpp"


#include "mpr/fault.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace estclust::pace {

// The slave's half of the §3.3 wire protocol as a communicating FSM,
// extracted and exhaustively checked by tools/analyze (family `proto`).
// ESTCLUST-PROTO-ROLE(role=slave, init=startup, final=done|dead)

std::array<std::size_t, 3> startup_split(std::size_t batchsize) {
  const std::size_t base = std::max<std::size_t>(batchsize, 3);
  const std::size_t q = base / 3;
  const std::size_t r = base % 3;
  return {q + (r > 0 ? 1 : 0), q + (r > 1 ? 1 : 0), q};
}

Slave::Slave(mpr::Communicator& comm, const bio::EstSet& ests,
             const PaceConfig& cfg, const std::vector<gst::Tree>& forest)
    : comm_(comm),
      ests_(ests),
      cfg_(cfg),
      source_(pairgen::make_pair_source(cfg.pair_source, ests, forest,
                                        cfg.gst.window, cfg.psi)),
      aligner_(ests, cfg),
      reliable_(comm.fault_plan() != nullptr) {
  // The source's constructor did its one-off setup (node sorting for the
  // GST walk — Table 3's "Sorting Nodes" column — or index construction
  // for the k-mer/FM backends); charge it to this rank's clock.
  ESTCLUST_TRACE_SPAN(comm_.tracer(), "node_sorting", "phase");
  const double before = comm_.clock().time();
  comm_.charge(comm_.cost_model().sort_op, source_->construction_sort_units());
  counters_.sort_vtime = comm_.clock().time() - before;
}

bool Slave::out_of_pairs() const {
  return source_->exhausted() && pairbuf_.empty();
}

void Slave::top_up_pairbuf(std::size_t target) {
  if (pairbuf_.size() >= target || source_->exhausted()) return;
  ESTCLUST_TRACE_SPAN(comm_.tracer(), "pairgen", "phase");
  std::vector<pairgen::PromisingPair> tmp;
  source_->next_batch(target - pairbuf_.size(), tmp);
  for (const auto& p : tmp) pairbuf_.push_back(p);
  comm_.charge(comm_.cost_model().pair_op, source_->take_work_units());
}

std::vector<pairgen::PromisingPair> Slave::take_pairs(std::size_t count) {
  std::vector<pairgen::PromisingPair> out;
  const std::size_t k = std::min(count, pairbuf_.size());
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    out.push_back(pairbuf_.front());
    pairbuf_.pop_front();
  }
  return out;
}

std::vector<WireResult> Slave::align_all(
    const std::vector<pairgen::PromisingPair>& work) {
  ESTCLUST_TRACE_SPAN(comm_.tracer(), "alignment", "phase");
  std::vector<WireResult> results;
  results.reserve(work.size());
  for (const auto& p : work) {
    PairEvaluation ev = aligner_.evaluate(p);
    // Memo hits report 0 cells: no DP ran, so no virtual time is charged —
    // that saving is the cache's whole point.
    comm_.charge(comm_.cost_model().dp_cell, ev.overlap.cells);
    ++counters_.pairs_aligned;
    counters_.dp_cells += ev.overlap.cells;
    WireResult r;
    r.a = p.a;
    r.b = p.b;
    r.b_rc = p.b_rc ? 1 : 0;
    r.accepted = ev.accepted ? 1 : 0;
    r.kind = static_cast<std::uint8_t>(ev.overlap.kind);
    r.quality = static_cast<float>(ev.overlap.quality);
    r.a_begin = static_cast<std::uint32_t>(ev.overlap.a_begin);
    r.a_end = static_cast<std::uint32_t>(ev.overlap.a_end);
    r.b_begin = static_cast<std::uint32_t>(ev.overlap.b_begin);
    r.b_end = static_cast<std::uint32_t>(ev.overlap.b_end);
    results.push_back(r);
  }
  return results;
}

void Slave::attach_memo_counters(ReportMsg& m) {
  const MemoStats& s = aligner_.memo_stats();
  m.memo_lookups = s.lookups - memo_lookups_reported_;
  m.memo_hits = s.hits - memo_hits_reported_;
  memo_lookups_reported_ = s.lookups;
  memo_hits_reported_ = s.hits;
}

void Slave::send_report(ReportMsg& m, std::uint64_t results_for_seq) {
  if (reliable_) {
    m.seq = ++report_seq_;
    m.results_for_seq = results_for_seq;
    m.ack_assign_seq = last_assign_seq_;
  }
  // ESTCLUST-PROTO(state=startup, send=REPORT -> working)
  // ESTCLUST-PROTO(state=acked, send=REPORT -> working, when=!stop)
  // ESTCLUST-PROTO(state=acked, send=REPORT -> final_unacked, when=stop)
  comm_.send(0, kTagReport, encode_report(m, reliable_));
}

AssignMsg Slave::await_assign() {
  for (;;) {
    mpr::Message m = [&] {
      mpr::CheckOpScope check_scope(comm_, "pace.slave.await_assign");
      // ESTCLUST-PROTO(state=working, on=ASSIGN -> got_assign, when=fresh)
      // ESTCLUST-PROTO(state=working, on=ASSIGN -> ., when=dup, mode=reliable)
      return comm_.recv(0, kTagAssign);
    }();
    AssignMsg assign = decode_assign(m.payload, reliable_);
    if (!reliable_) return assign;
    if (assign.seq <= last_assign_seq_) {
      // Duplicated delivery of an assignment already honoured.
      comm_.metrics().counter("pace.dup_assigns_ignored").add(1);
      continue;
    }
    // The mailbox preserves the master's program order, so fresh
    // assignments can never arrive out of order.
    ESTCLUST_CHECK_MSG(assign.seq == last_assign_seq_ + 1,
                       "assignment sequence gap: got " << assign.seq
                                                       << " after "
                                                       << last_assign_seq_);
    last_assign_seq_ = assign.seq;
    return assign;
  }
}

void Slave::consume_ack(std::uint64_t expected) {
  for (;;) {
    mpr::Message m = [&] {
      mpr::CheckOpScope check_scope(comm_, "pace.slave.await_ack");
      // ESTCLUST-PROTO(state=got_assign, on=ACK -> acked, when=match, mode=reliable)
      // ESTCLUST-PROTO(state=got_assign, on=ACK -> ., when=dup, mode=reliable)
      // ESTCLUST-PROTO(state=final_unacked, on=ACK -> done, when=match, mode=reliable)
      // ESTCLUST-PROTO(state=final_unacked, on=ACK -> ., when=dup, mode=reliable)
      return comm_.recv(0, kTagAck);
    }();
    const AckMsg ack = decode_ack(m.payload);
    if (ack.seq == expected) return;
    // The master acks each report exactly once, in order, so anything
    // below `expected` is a duplicated delivery of an older ack.
    ESTCLUST_CHECK_MSG(ack.seq < expected,
                       "ack " << ack.seq << " for a report not yet sent");
    comm_.metrics().counter("pace.dup_acks_ignored").add(1);
  }
}

bool Slave::maybe_die() {
  if (!reliable_) return false;
  mpr::FaultPlan* plan = comm_.fault_plan();
  const int r = comm_.rank();
  if (!plan->death_scheduled(r)) return false;
  if (comm_.clock().time() < plan->death_vtime(r)) return false;
  // Announce the failure once and abandon the protocol. The notice is
  // fault-exempt and delivered `deadline` later: that is the master
  // noticing the heartbeat went silent, not a message the dead rank
  // actually managed to send.
  HeartbeatMsg hb;
  hb.last_report_seq = report_seq_;
  // ESTCLUST-PROTO(state=startup|got_assign, send=HEARTBEAT -> dead, when=kill, mode=reliable)
  comm_.send_delayed(0, kTagHeartbeat, encode_heartbeat(hb),
                     plan->deadline());
  comm_.metrics().counter("pace.slave_deaths").add(1);
  if (comm_.tracer()) {
    comm_.tracer()->instant("pace.death", "fault",
                            static_cast<std::uint64_t>(r));
  }
  return true;
}

void Slave::drain_duplicates() {
  // After the final ack every message the master will ever send on the
  // protocol tags is already queued (the mailbox preserves its program
  // order), so what remains is exactly the duplicated deliveries.
  std::uint64_t drained = 0;
  // ESTCLUST-PROTO(state=done, on=ASSIGN -> ., when=dup, mode=reliable, op=try_recv)
  // ESTCLUST-PROTO(state=done, on=ACK -> ., when=dup, mode=reliable, op=try_recv)
  while (comm_.try_recv(0, kTagAssign)) ++drained;
  while (comm_.try_recv(0, kTagAck)) ++drained;
  if (drained > 0) {
    comm_.metrics().counter("pace.dup_drained").add(drained);
  }
}

SlaveCounters Slave::run() {
  // Inclusive loop span (covers waiting too); the nested "alignment" /
  // "pairgen" spans carry the busy breakdown.
  ESTCLUST_TRACE_SPAN(comm_.tracer(), "slave_loop", "phase");
  const double loop_start = comm_.clock().time();

  // Death checkpoint C1: a rank scheduled to die at (virtual) time zero
  // fails before contributing anything at all.
  if (maybe_die()) return finish(loop_start);

  // Startup (§3.3): generate one batch split three ways. Align the first
  // portion; ship its results with the third; keep the second as NEXTWORK.
  // From then on the slave always has a batch in hand while a report is in
  // flight, overlapping communication with computation. (These startup
  // alignments bypass the master's filter, so the portions are
  // deliberately small.)
  const auto portions = startup_split(cfg_.batchsize);
  top_up_pairbuf(portions[0] + portions[1] + portions[2]);
  std::vector<pairgen::PromisingPair> portion1 = take_pairs(portions[0]);
  std::vector<pairgen::PromisingPair> nextwork = take_pairs(portions[1]);
  std::vector<pairgen::PromisingPair> portion3 = take_pairs(portions[2]);

  ReportMsg initial;
  initial.results = align_all(portion1);
  initial.pairs = std::move(portion3);
  initial.out_of_pairs = out_of_pairs();
  attach_memo_counters(initial);
  // Death checkpoint C1b: the startup work pushed the clock past the
  // death time — the initial report never ships.
  if (maybe_die()) return finish(loop_start);
  send_report(initial, 0);

  for (;;) {
    // Compute on the batch in hand before blocking on the master.
    std::vector<WireResult> results = align_all(nextwork);
    const std::uint64_t results_seq = nextwork_seq_;
    nextwork.clear();

    // "While waiting, generate more promising pairs" — performed here,
    // before the blocking receive, so the overlap is deterministic.
    top_up_pairbuf(cfg_.pairbuf_capacity);

    AssignMsg assign = await_assign();

    // Death checkpoint C2: the assignment was received but never
    // acknowledged or answered — the master re-enqueues its retained
    // in-flight copy when the heartbeat notice lands.
    if (maybe_die()) return finish(loop_start);
    // The master acked our previous report before replying with this
    // assignment, so the ack is already queued behind us. (Base mode has
    // no acks: the assignment alone advances the conversation.)
    // ESTCLUST-PROTO(state=got_assign -> acked, mode=base)
    if (reliable_) consume_ack(report_seq_);

    // Honour the master's request E, generating on the fly if PAIRBUF
    // cannot cover it.
    if (pairbuf_.size() < assign.request) top_up_pairbuf(assign.request);

    // One coalesced report answers every assignment — including the final
    // one, whose stop flag rides the assignment instead of a separate
    // STOP message. The final report flushes the results computed above.
    ReportMsg report;
    report.results = std::move(results);
    report.pairs = take_pairs(assign.request);
    report.out_of_pairs = out_of_pairs();
    attach_memo_counters(report);
    send_report(report, results_seq);

    if (assign.stop) {
      ESTCLUST_CHECK_MSG(assign.work.empty(),
                         "final assignment carried work");
      // ESTCLUST-PROTO(state=final_unacked -> done, mode=base)
      if (reliable_) {
        consume_ack(report_seq_);
        drain_duplicates();
      }
      break;
    }
    nextwork = std::move(assign.work);
    nextwork_seq_ = assign.seq;
  }

  return finish(loop_start);
}

SlaveCounters Slave::finish(double loop_start) {
  counters_.pairs_generated = source_->stats().pairs_emitted;
  counters_.memo = aligner_.memo_stats();
  counters_.loop_vtime = comm_.clock().time() - loop_start;

  auto& metrics = comm_.metrics();
  metrics.counter("pace.pairs_generated").add(counters_.pairs_generated);
  metrics.counter("pace.pairs_aligned").add(counters_.pairs_aligned);
  metrics.counter("pace.dp_cells").add(counters_.dp_cells);
  metrics.counter("pace.memo_lookups").add(counters_.memo.lookups);
  metrics.counter("pace.memo_hits").add(counters_.memo.hits);
  metrics.counter("pace.memo_insertions").add(counters_.memo.insertions);
  metrics.counter("pace.memo_evictions").add(counters_.memo.evictions);
  metrics.gauge("pace.t_sort", obs::MergeOp::kMax).set(counters_.sort_vtime);
  metrics.gauge("pace.t_align", obs::MergeOp::kMax)
      .set(counters_.loop_vtime);

  // Kernel-variant attribution: which band-sweep implementation aligned
  // this rank's pairs. Variants are bit-identical, so this is pure
  // observability — all modeled quantities above are variant-invariant.
  const align::KernelVariant kv = align::active_kernel();
  switch (kv) {
    case align::KernelVariant::kAvx2:
      metrics.counter("kernel.variant.avx2").add(counters_.pairs_aligned);
      break;
    case align::KernelVariant::kSse2:
      metrics.counter("kernel.variant.sse2").add(counters_.pairs_aligned);
      break;
    case align::KernelVariant::kScalar:
      metrics.counter("kernel.variant.scalar").add(counters_.pairs_aligned);
      break;
  }
  metrics.gauge("align.arena_bytes", obs::MergeOp::kMax)
      .set(static_cast<double>(aligner_.arena().high_water_bytes()));
  if (obs::RankTracer* tracer = comm_.tracer()) {
    tracer->instant("kernel.variant", "align",
                    static_cast<std::uint64_t>(kv));
  }
  return counters_;
}

}  // namespace estclust::pace
