// A slave processor (§3.3): generates promising pairs on demand from its
// local share of the workload — via the configured PairSource backend —
// and aligns the pair batches the master assigns, overlapping generation
// with the wait for the master's reply.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "bio/dataset.hpp"
#include "gst/tree.hpp"
#include "mpr/communicator.hpp"
#include "pace/aligner.hpp"
#include "pace/config.hpp"
#include "pace/messages.hpp"
#include "pairgen/source.hpp"

namespace estclust::pace {

/// Slave-side counters.
struct SlaveCounters {
  std::uint64_t pairs_generated = 0;  ///< emitted by the local pair source
  std::uint64_t pairs_aligned = 0;    ///< evaluated (memo hits included)
  std::uint64_t dp_cells = 0;
  MemoStats memo;                     ///< alignment memo-cache activity
  double sort_vtime = 0.0;   ///< node sorting / index build (source setup)
  double loop_vtime = 0.0;   ///< interaction loop (alignment-dominated)
};

/// The §3.3 startup split of the first generated batch into three
/// portions: [0] aligned immediately, [1] kept as NEXTWORK, [2] shipped
/// with the unsolicited initial report. Every portion is at least one
/// pair — with batchsize < 3 a naive batchsize/3 split would leave
/// NEXTWORK empty and stall the compute/communication overlap — and the
/// portions sum to max(batchsize, 3), remainder spread front-first.
std::array<std::size_t, 3> startup_split(std::size_t batchsize);

class Slave {
 public:
  /// `forest` is this rank's share of the distributed GST.
  Slave(mpr::Communicator& comm, const bio::EstSet& ests,
        const PaceConfig& cfg, const std::vector<gst::Tree>& forest);

  /// Runs until the master's final assignment (stop flag) arrives, or —
  /// under a fault plan — until this rank's scheduled death checkpoint.
  SlaveCounters run();

 private:
  std::vector<WireResult> align_all(
      const std::vector<pairgen::PromisingPair>& work);
  void top_up_pairbuf(std::size_t target);
  std::vector<pairgen::PromisingPair> take_pairs(std::size_t count);
  bool out_of_pairs() const;
  /// Stamps the memo counters accumulated since the previous report.
  void attach_memo_counters(ReportMsg& m);
  /// Sends `m` (reliable mode stamps seq / results_for_seq / ack fields).
  void send_report(ReportMsg& m, std::uint64_t results_for_seq);
  /// Blocking receive of the next *fresh* assignment, skipping duplicated
  /// deliveries by sequence number.
  AssignMsg await_assign();
  /// Consumes the master's ack of report `expected`, skipping stale
  /// duplicate acks. The master acks before it replies with an ASSIGN, so
  /// by the time the fresh ASSIGN arrived the ack is already queued.
  void consume_ack(std::uint64_t expected);
  /// True iff this rank's scheduled death time has passed: announce the
  /// failure (one fault-exempt heartbeat the master receives `deadline`
  /// later) and tell the caller to abandon the protocol loop.
  bool maybe_die();
  /// Consumes any still-queued duplicate deliveries after the final ack,
  /// so the checker's mailbox-hygiene audit sees a clean exit.
  void drain_duplicates();
  SlaveCounters finish(double loop_start);

  mpr::Communicator& comm_;
  const bio::EstSet& ests_;
  const PaceConfig& cfg_;
  std::unique_ptr<pairgen::PairSource> source_;
  PairAligner aligner_;
  std::deque<pairgen::PromisingPair> pairbuf_;
  SlaveCounters counters_;
  std::uint64_t memo_lookups_reported_ = 0;
  std::uint64_t memo_hits_reported_ = 0;
  // Reliable-mode protocol state (see messages.hpp): unused when no fault
  // plan is installed.
  bool reliable_ = false;
  std::uint64_t report_seq_ = 0;       ///< seq of the last report sent
  std::uint64_t last_assign_seq_ = 0;  ///< highest fresh ASSIGN received
  std::uint64_t nextwork_seq_ = 0;     ///< ASSIGN seq that NEXTWORK came from
};

}  // namespace estclust::pace
