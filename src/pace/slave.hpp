// A slave processor (§3.3): generates promising pairs on demand from its
// local share of the distributed GST and aligns the pair batches the master
// assigns, overlapping generation with the wait for the master's reply.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "bio/dataset.hpp"
#include "gst/tree.hpp"
#include "mpr/communicator.hpp"
#include "pace/config.hpp"
#include "pace/messages.hpp"
#include "pairgen/generator.hpp"

namespace estclust::pace {

/// Slave-side counters.
struct SlaveCounters {
  std::uint64_t pairs_generated = 0;  ///< emitted by the local generator
  std::uint64_t pairs_aligned = 0;
  std::uint64_t dp_cells = 0;
  double sort_vtime = 0.0;   ///< node sorting (generator construction)
  double loop_vtime = 0.0;   ///< interaction loop (alignment-dominated)
};

class Slave {
 public:
  /// `forest` is this rank's share of the distributed GST.
  Slave(mpr::Communicator& comm, const bio::EstSet& ests,
        const PaceConfig& cfg, const std::vector<gst::Tree>& forest);

  /// Runs until the master sends STOP.
  SlaveCounters run();

 private:
  std::vector<WireResult> align_all(
      const std::vector<pairgen::PromisingPair>& work);
  void top_up_pairbuf(std::size_t target);
  std::vector<pairgen::PromisingPair> take_pairs(std::size_t count);
  bool out_of_pairs() const;

  mpr::Communicator& comm_;
  const bio::EstSet& ests_;
  const PaceConfig& cfg_;
  pairgen::PairGenerator generator_;
  std::deque<pairgen::PromisingPair> pairbuf_;
  SlaveCounters counters_;
};

}  // namespace estclust::pace
