// The master processor (§3.3): owns CLUSTERS (union-find) and WORKBUF,
// selects which promising pairs are worth aligning, and flow-controls the
// slaves' pair generation with the E = min(Δ·δ·batchsize, nfree/p) rule.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "bio/dataset.hpp"
#include "cluster/union_find.hpp"
#include "mpr/communicator.hpp"
#include "pace/config.hpp"
#include "pace/messages.hpp"
#include "pace/sequential.hpp"

namespace estclust::pace {

/// Master-side counters.
struct MasterCounters {
  std::uint64_t pairs_skipped = 0;   ///< dropped: already co-clustered
  std::uint64_t pairs_enqueued = 0;  ///< admitted to WORKBUF
  std::uint64_t pairs_accepted = 0;  ///< results with a passing alignment
  std::uint64_t merges = 0;
  std::uint64_t interactions = 0;    ///< slave messages processed
  std::uint64_t slave_deaths = 0;    ///< heartbeat notices handled
  std::uint64_t pairs_recovered = 0; ///< re-admitted after a slave death
};

class Master {
 public:
  Master(mpr::Communicator& comm, const bio::EstSet& ests,
         const PaceConfig& cfg);

  /// Runs the interaction loop until every slave is out of pairs and all
  /// in-flight work has been reported; sends STOP to all slaves.
  void run();

  cluster::UnionFind& clusters() { return clusters_; }
  const MasterCounters& counters() const { return counters_; }

  /// Accepted overlaps reported by the slaves (for downstream assembly).
  std::vector<AcceptedOverlap>& overlaps() { return overlaps_; }

 private:
  enum class SlaveState : std::uint8_t {
    kExpectingReport,  ///< an assignment is out; a report will come back
    kWaiting,          ///< parked on the wait-queue (no message owed)
    kStopped,
    kDead,             ///< heartbeat notice received; never contacted again
  };

  /// A copy of assigned work retained until the answering report arrives,
  /// so a slave death loses nothing (reliable mode only).
  struct InflightAssign {
    std::uint64_t seq = 0;
    std::vector<pairgen::PromisingPair> work;
  };

  void process_report(int slave, const ReportMsg& msg);
  void reply(int slave);
  void drain_wait_queue();
  std::uint64_t compute_request(int slave) const;
  std::vector<pairgen::PromisingPair> take_work(int slave);
  bool all_waiting() const;
  /// This slave's current grant/request unit: batchsize scaled by the
  /// adaptive per-slave multiplier.
  std::size_t effective_batch(int slave) const;
  /// Stamps the reliable-mode sequence number, retains non-empty work as
  /// in-flight, sends, and marks the slave kExpectingReport.
  void send_assign(int slave, AssignMsg& assign);
  /// Records the virtual assign-to-report round trip of the slave's
  /// outstanding assignment (no-op for unsolicited initial reports).
  void sample_report_latency(int slave);
  /// Blocking receive of the next *fresh* report from `slave`, skipping
  /// duplicated deliveries and — in reliable mode — staying responsive to
  /// its death notice. A fresh report is acknowledged and its in-flight
  /// work released before returning. Returns false iff the slave died
  /// (the death has been fully handled). `flush` selects the check-op
  /// scope label (interaction loop vs final flush).
  bool await_report(int slave, bool flush, ReportMsg& out);
  /// Re-enqueues the dead slave's in-flight work and regenerates its
  /// entire promising-pair stream from a deterministic offline rebuild of
  /// its GST share, admitting pairs through the usual same() filter.
  void handle_death(int slave, const HeartbeatMsg& hb);
  /// Admits pairs to WORKBUF through the same() filter; returns the
  /// number admitted.
  std::uint64_t admit_pairs(const std::vector<pairgen::PromisingPair>& pairs);
  /// Flushes every still-parked slave with a stop assignment. Returns
  /// true iff a mid-flush death refilled WORKBUF and live parked slaves
  /// remain — the caller must resume the interaction loop.
  bool flush_parked(obs::RankTracer* tracer);

  mpr::Communicator& comm_;
  const bio::EstSet& ests_;
  const PaceConfig& cfg_;
  cluster::UnionFind clusters_;
  std::deque<pairgen::PromisingPair> workbuf_;
  MasterCounters counters_;

  int num_slaves_;
  bool reliable_ = false;  ///< fault plan installed: sequenced protocol on
  std::vector<SlaveState> state_;   ///< indexed by rank (entry 0 unused)
  std::vector<bool> passive_;      ///< slave has no more pairs to generate
  std::deque<int> wait_queue_;
  // Reliable-mode protocol state, indexed by rank (entry 0 unused).
  std::vector<std::uint64_t> last_report_seq_;  ///< highest fresh REPORT
  std::vector<std::uint64_t> assign_seq_;       ///< last ASSIGN seq sent
  std::vector<std::vector<InflightAssign>> inflight_;
  std::uint64_t dup_reports_ignored_ = 0;
  // Virtual send time of each slave's outstanding assignment (-1 = none);
  // the answering fresh report samples the assign-to-report latency
  // histogram. Metrics recording never advances clocks, so profiling the
  // exchange cannot perturb the run.
  std::vector<double> assign_sent_;
  // Per-slave P and P' of the latest report, for the Δ = P/P' factor.
  std::vector<std::uint64_t> last_reported_;
  std::vector<std::uint64_t> last_admitted_;
  // Adaptive batching (config.hpp): per-slave batch multiplier in
  // [1, batch_growth_limit], steered by the redundancy observed in each
  // report (skipped pairs + memo hits vs pairs + lookups).
  std::vector<std::size_t> multiplier_;
  std::uint64_t uf_ops_charged_ = 0;
  std::vector<AcceptedOverlap> overlaps_;
};

}  // namespace estclust::pace
