// The master processor (§3.3): owns CLUSTERS (union-find) and WORKBUF,
// selects which promising pairs are worth aligning, and flow-controls the
// slaves' pair generation with the E = min(Δ·δ·batchsize, nfree/p) rule.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "bio/dataset.hpp"
#include "cluster/union_find.hpp"
#include "mpr/communicator.hpp"
#include "pace/config.hpp"
#include "pace/messages.hpp"
#include "pace/sequential.hpp"

namespace estclust::pace {

/// Master-side counters.
struct MasterCounters {
  std::uint64_t pairs_skipped = 0;   ///< dropped: already co-clustered
  std::uint64_t pairs_enqueued = 0;  ///< admitted to WORKBUF
  std::uint64_t pairs_accepted = 0;  ///< results with a passing alignment
  std::uint64_t merges = 0;
  std::uint64_t interactions = 0;    ///< slave messages processed
};

class Master {
 public:
  Master(mpr::Communicator& comm, const bio::EstSet& ests,
         const PaceConfig& cfg);

  /// Runs the interaction loop until every slave is out of pairs and all
  /// in-flight work has been reported; sends STOP to all slaves.
  void run();

  cluster::UnionFind& clusters() { return clusters_; }
  const MasterCounters& counters() const { return counters_; }

  /// Accepted overlaps reported by the slaves (for downstream assembly).
  std::vector<AcceptedOverlap>& overlaps() { return overlaps_; }

 private:
  enum class SlaveState : std::uint8_t {
    kExpectingReport,  ///< an assignment is out; a report will come back
    kWaiting,          ///< parked on the wait-queue (no message owed)
    kStopped,
  };

  void process_report(int slave, const ReportMsg& msg);
  void reply(int slave);
  void drain_wait_queue();
  std::uint64_t compute_request(int slave) const;
  std::vector<pairgen::PromisingPair> take_work(int slave);
  bool all_waiting() const;
  /// This slave's current grant/request unit: batchsize scaled by the
  /// adaptive per-slave multiplier.
  std::size_t effective_batch(int slave) const;

  mpr::Communicator& comm_;
  const PaceConfig& cfg_;
  cluster::UnionFind clusters_;
  std::deque<pairgen::PromisingPair> workbuf_;
  MasterCounters counters_;

  int num_slaves_;
  std::vector<SlaveState> state_;   ///< indexed by rank (entry 0 unused)
  std::vector<bool> passive_;      ///< slave has no more pairs to generate
  std::deque<int> wait_queue_;
  // Per-slave P and P' of the latest report, for the Δ = P/P' factor.
  std::vector<std::uint64_t> last_reported_;
  std::vector<std::uint64_t> last_admitted_;
  // Adaptive batching (config.hpp): per-slave batch multiplier in
  // [1, batch_growth_limit], steered by the redundancy observed in each
  // report (skipped pairs + memo hits vs pairs + lookups).
  std::vector<std::size_t> multiplier_;
  std::uint64_t uf_ops_charged_ = 0;
  std::vector<AcceptedOverlap> overlaps_;
};

}  // namespace estclust::pace
