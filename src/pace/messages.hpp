// Wire formats of the master/slave protocol (§3.3).
//
// One interaction is: slave -> master REPORT {R results, P promising
// pairs, out-of-pairs flag, memo-cache counters}; master -> slave ASSIGN
// {W pairs to align, E pairs to bring next time, stop flag}. Everything a
// peer owes rides one coalesced, explicitly-serialized message per
// direction — there is no separate STOP message: the final ASSIGN carries
// stop = 1 and the slave answers with its final (possibly empty) REPORT.
#pragma once

#include <cstdint>
#include <vector>

#include "bio/dataset.hpp"
#include "mpr/message.hpp"
#include "pairgen/generator.hpp"

namespace estclust::pace {

inline constexpr int kTagReport = 1;
inline constexpr int kTagAssign = 2;

/// Result of one pairwise alignment, as shipped to the master. The master
/// only needs the identity of the pair and the verdict; score/quality ride
/// along for logging and tests.
struct WireResult {
  bio::EstId a = 0;
  bio::EstId b = 0;
  std::uint8_t b_rc = 0;
  std::uint8_t accepted = 0;
  std::uint8_t kind = 0;  ///< align::OverlapKind
  float quality = 0.0f;
  // Aligned spans (for downstream layout/assembly).
  std::uint32_t a_begin = 0, a_end = 0;
  std::uint32_t b_begin = 0, b_end = 0;
};
static_assert(std::is_trivially_copyable_v<WireResult>);
static_assert(std::is_trivially_copyable_v<pairgen::PromisingPair>);

struct ReportMsg {
  std::vector<WireResult> results;           ///< R
  std::vector<pairgen::PromisingPair> pairs; ///< P
  bool out_of_pairs = false;
  // Memo-cache activity since the previous report; the master's adaptive
  // batching reads these as its redundancy signal.
  std::uint64_t memo_lookups = 0;
  std::uint64_t memo_hits = 0;
};

struct AssignMsg {
  std::vector<pairgen::PromisingPair> work;  ///< W
  std::uint64_t request = 0;                 ///< E
  /// Final assignment: the slave reports once more (flushing any pending
  /// results) and exits its loop. Folding STOP into the last ASSIGN saves
  /// one message per slave per run.
  std::uint8_t stop = 0;
};

mpr::Buffer encode_report(const ReportMsg& m);
ReportMsg decode_report(const mpr::Buffer& b);

mpr::Buffer encode_assign(const AssignMsg& m);
AssignMsg decode_assign(const mpr::Buffer& b);

}  // namespace estclust::pace
