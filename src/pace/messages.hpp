// Wire formats of the master/slave protocol (§3.3).
//
// One interaction is: slave -> master REPORT {R results, P promising
// pairs, out-of-pairs flag, memo-cache counters}; master -> slave ASSIGN
// {W pairs to align, E pairs to bring next time, stop flag}. Everything a
// peer owes rides one coalesced, explicitly-serialized message per
// direction — there is no separate STOP message: the final ASSIGN carries
// stop = 1 and the slave answers with its final (possibly empty) REPORT.
//
// Reliable mode (active iff a FaultPlan is installed — see mpr/fault.hpp
// and DESIGN.md §8): REPORT and ASSIGN additionally carry sequence
// numbers so duplicated deliveries are idempotent, the master
// acknowledges each fresh REPORT on kTagAck, and a dying slave announces
// itself on kTagHeartbeat. The extra fields are serialized only in
// reliable mode, so fault-free wire bytes are identical to the seed's.
#pragma once

#include <cstdint>
#include <vector>

#include "bio/dataset.hpp"
#include "mpr/message.hpp"
#include "pairgen/generator.hpp"

namespace estclust::pace {

// Model-checked configurations of the protocol (tools/analyze family
// `proto`): the annotated master/slave automata are composed with the
// DESIGN.md §8 fault alphabet and every reachable global state is
// enumerated, proving deadlock-freedom, no-unhandled-message, sequence-
// number safety and termination for these topologies. `supply` is the
// per-slave stream of promising-pair batches in abstract units.
// ESTCLUST-PROTO-MODEL(name=pace_base_1x2, slaves=2, mode=base, supply=2)
// ESTCLUST-PROTO-MODEL(name=pace_rel_1x2, slaves=2, mode=reliable, faults=drop+dup+kill, supply=2, kills=1)
// ESTCLUST-PROTO-MODEL(name=pace_rel_1x3, slaves=3, mode=reliable, faults=drop+dup+kill, supply=1, kills=1)

inline constexpr int kTagReport = 1;
inline constexpr int kTagAssign = 2;
/// Master -> slave acknowledgement of a fresh REPORT (reliable mode only).
inline constexpr int kTagAck = 3;
/// Slave -> master death notice (reliable mode only). Sent once, fault-
/// exempt, delivered deadline seconds after the death: its arrival models
/// the master noticing the slave's heartbeat went silent.
inline constexpr int kTagHeartbeat = 4;

/// Result of one pairwise alignment, as shipped to the master. The master
/// only needs the identity of the pair and the verdict; score/quality ride
/// along for logging and tests.
struct WireResult {
  bio::EstId a = 0;
  bio::EstId b = 0;
  std::uint8_t b_rc = 0;
  std::uint8_t accepted = 0;
  std::uint8_t kind = 0;  ///< align::OverlapKind
  float quality = 0.0f;
  // Aligned spans (for downstream layout/assembly).
  std::uint32_t a_begin = 0, a_end = 0;
  std::uint32_t b_begin = 0, b_end = 0;
};
static_assert(std::is_trivially_copyable_v<WireResult>);
static_assert(std::is_trivially_copyable_v<pairgen::PromisingPair>);

struct ReportMsg {
  std::vector<WireResult> results;           ///< R
  std::vector<pairgen::PromisingPair> pairs; ///< P
  bool out_of_pairs = false;
  // Memo-cache activity since the previous report; the master's adaptive
  // batching reads these as its redundancy signal.
  std::uint64_t memo_lookups = 0;
  std::uint64_t memo_hits = 0;
  // Reliable-mode fields (serialized only when `reliable` is passed to the
  // codec; fault-free wire bytes are unchanged).
  std::uint64_t seq = 0;  ///< per-slave report number, from 1; dedup key
  /// Seq of the ASSIGN whose work produced `results` (0 = the slave's own
  /// startup portion). The master releases the matching retained in-flight
  /// copy when this report arrives.
  std::uint64_t results_for_seq = 0;
  /// Highest ASSIGN seq received — a piggybacked acknowledgement; the
  /// master audits it against the assignment it actually sent.
  std::uint64_t ack_assign_seq = 0;
};

struct AssignMsg {
  std::vector<pairgen::PromisingPair> work;  ///< W
  std::uint64_t request = 0;                 ///< E
  /// Final assignment: the slave reports once more (flushing any pending
  /// results) and exits its loop. Folding STOP into the last ASSIGN saves
  /// one message per slave per run.
  std::uint8_t stop = 0;
  /// Reliable-mode per-slave assignment number, from 1; dedup key.
  std::uint64_t seq = 0;
};

/// Master -> slave: acknowledges the fresh REPORT with this seq.
struct AckMsg {
  std::uint64_t seq = 0;
};

/// Slave -> master death notice (the slave's last message, ever).
struct HeartbeatMsg {
  std::uint64_t last_report_seq = 0;  ///< highest report seq sent before dying
};

mpr::Buffer encode_report(const ReportMsg& m, bool reliable = false);
ReportMsg decode_report(const mpr::Buffer& b, bool reliable = false);

mpr::Buffer encode_assign(const AssignMsg& m, bool reliable = false);
AssignMsg decode_assign(const mpr::Buffer& b, bool reliable = false);

mpr::Buffer encode_ack(const AckMsg& m);
AckMsg decode_ack(const mpr::Buffer& b);

mpr::Buffer encode_heartbeat(const HeartbeatMsg& m);
HeartbeatMsg decode_heartbeat(const mpr::Buffer& b);

}  // namespace estclust::pace
