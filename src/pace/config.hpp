// Configuration of the clustering pipeline.
#pragma once

#include <cstdint>

#include "align/anchored.hpp"
#include "gst/parallel.hpp"
#include "pairgen/source.hpp"

namespace estclust::pace {

struct PaceConfig {
  gst::GstConfig gst;  ///< bucket window w (paper: 8)

  /// Promising-pair threshold psi: minimum maximal-common-substring length.
  /// Must be >= gst.window (shorter suffixes are never inserted).
  std::uint32_t psi = 20;

  /// Candidate-filter backend behind the PairSource seam (DESIGN.md §11).
  /// Every backend emits the same rank-local candidate slice; only index
  /// construction (and therefore the modeled run-time) differs.
  pairgen::Backend pair_source = pairgen::Backend::kGst;

  align::OverlapParams overlap;  ///< banded alignment + acceptance knobs

  /// Pairs dispatched to a slave per interaction (paper: 40-60 optimal).
  std::size_t batchsize = 60;

  /// Alignment hot path (kernel.hpp / memo.hpp). `bounded_align` lets the
  /// DP kernel stop as soon as rejection is certain; `memo` caches verdicts
  /// per EST pair so re-generated pairs skip the DP when serving the cache
  /// cannot change the clustering. Both are verdict-exact: clusters are
  /// identical with any combination of these flags.
  bool bounded_align = true;
  bool memo = true;
  std::size_t memo_capacity = 1 << 12;  ///< cap on cached rejected entries

  /// Adaptive batching: the master scales a slave's next work grant and
  /// pair request by a per-slave multiplier in [1, batch_growth_limit],
  /// growing it while observed redundancy (skipped pairs + memo hits) is
  /// low and shrinking it when redundancy is high. Fewer interactions means
  /// fewer messages under the virtual-time model.
  bool adaptive_batch = true;
  std::size_t batch_growth_limit = 2;

  /// Capacity of the master's WORKBUF in pairs.
  std::size_t workbuf_capacity = 1 << 14;

  /// Target fill of a slave's PAIRBUF (pairs generated ahead while the
  /// slave would otherwise wait for the master).
  std::size_t pairbuf_capacity = 2048;

  /// Observability. `trace` asks the drivers (tools/estclust, the bench
  /// harness) to attach a TraceRecorder to the runtime before the run;
  /// the pipeline itself records spans whenever the runtime has one.
  /// `trace_message_flows` additionally records a flow-event pair per
  /// point-to-point message (the bulk of trace volume on chatty runs).
  /// Neither affects virtual time or the clustering.
  bool trace = false;
  bool trace_message_flows = true;

  void validate() const;
};

/// Counters and phase timings shared by the sequential and parallel
/// drivers. Times are wall-clock seconds for the sequential driver and
/// virtual seconds (max over ranks) for the parallel one.
struct PaceStats {
  std::uint64_t pairs_generated = 0;  ///< emitted by pair generators
  std::uint64_t pairs_processed = 0;  ///< actually aligned
  std::uint64_t pairs_accepted = 0;   ///< alignments passing the criteria
  std::uint64_t pairs_skipped = 0;    ///< dropped: ESTs already co-clustered
  std::uint64_t merges = 0;           ///< successful cluster unions
  std::uint64_t dp_cells = 0;         ///< DP cells computed in alignments
  std::size_t num_clusters = 0;

  double t_partition = 0.0;  ///< suffix bucketing + histogram + routing
  double t_gst = 0.0;        ///< bucket-tree construction
  double t_sort = 0.0;       ///< node sorting by string-depth
  double t_align = 0.0;      ///< clustering loop (alignment-dominated)
  double t_total = 0.0;

  /// Fraction of total time the master spent busy (§4.2: < 2% even at 128
  /// processors). Zero for the sequential driver.
  double master_busy_fraction = 0.0;
};

}  // namespace estclust::pace
