// Incremental EST clustering — the open problem posed in the paper's §5:
// "Is there a way to incrementally adjust the EST clusters when a new
// batch of ESTs is sequenced, instead of the current method of clustering
// all the ESTs from scratch?"
//
// The bucketed GST makes this natural. The clusterer keeps every suffix
// grouped by its w-character bucket. When a batch arrives, only the
// buckets that receive new suffixes ("dirty" buckets) are re-refined into
// subtrees, and pair generation over those subtrees is filtered to pairs
// that involve at least one new EST — any old-old pair was already
// considered when its later member arrived. Accepted overlaps merge into
// the persistent union-find.
//
// Guarantee (tested): after any sequence of batches the clustering equals
// the from-scratch clustering of the union, because for every promising
// pair the bucket holding its maximal common substring is dirty in the
// batch where the pair's later EST arrives.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "bio/dataset.hpp"
#include "cluster/union_find.hpp"
#include "gst/tree.hpp"
#include "pace/config.hpp"

namespace estclust::pace {

/// Per-batch counters.
struct BatchStats {
  std::size_t new_ests = 0;
  std::size_t dirty_buckets = 0;    ///< subtrees rebuilt
  std::size_t total_buckets = 0;    ///< buckets stored overall
  std::uint64_t pairs_generated = 0;  ///< pairs seen in dirty subtrees
  std::uint64_t pairs_filtered = 0;   ///< dropped: both ESTs are old
  std::uint64_t pairs_processed = 0;  ///< aligned
  std::uint64_t pairs_accepted = 0;
  std::uint64_t merges = 0;
  double seconds = 0.0;
};

class IncrementalClusterer {
 public:
  explicit IncrementalClusterer(const PaceConfig& cfg);

  /// Incorporates a batch of newly sequenced ESTs and updates the
  /// clustering. EST ids continue from the previous batches.
  BatchStats add_batch(std::vector<bio::Sequence> batch);

  const bio::EstSet& ests() const { return ests_; }
  std::size_t num_ests() const { return ests_.num_ests(); }
  std::size_t num_clusters() const { return clusters_.num_clusters(); }

  /// Canonical label per EST (same convention as the batch drivers).
  std::vector<std::uint32_t> labels() { return clusters_.labels(); }

  cluster::UnionFind& clusters() { return clusters_; }

 private:
  PaceConfig cfg_;
  std::vector<bio::Sequence> all_sequences_;
  bio::EstSet ests_;
  cluster::UnionFind clusters_;
  /// All suffixes of all strings seen so far, grouped by bucket.
  std::map<std::uint64_t, std::vector<gst::SuffixOcc>> buckets_;
};

}  // namespace estclust::pace
