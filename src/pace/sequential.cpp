#include "pace/sequential.hpp"

#include <algorithm>

#include "gst/builder.hpp"
#include "pace/aligner.hpp"
#include "pairgen/source.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace estclust::pace {

void PaceConfig::validate() const {
  ESTCLUST_CHECK_MSG(psi >= gst.window,
                     "psi must be >= the GST window w");
  ESTCLUST_CHECK(batchsize > 0);
  ESTCLUST_CHECK(workbuf_capacity >= batchsize);
  ESTCLUST_CHECK(pairbuf_capacity >= batchsize);
  ESTCLUST_CHECK(batch_growth_limit >= 1);
  if (memo) ESTCLUST_CHECK(memo_capacity >= 1);
}

SequentialResult cluster_sequential(const bio::EstSet& ests,
                                    const PaceConfig& cfg,
                                    SequentialOptions options) {
  cfg.validate();
  const std::size_t n = ests.num_ests();
  SequentialResult res{cluster::UnionFind(n), {}, {}};
  PaceStats& st = res.stats;
  WallTimer total;

  WallTimer phase;
  auto forest = gst::build_forest_sequential(ests, cfg.gst.window);
  st.t_gst = phase.seconds();

  phase.reset();
  auto gen = pairgen::make_pair_source(cfg.pair_source, ests, forest,
                                       cfg.gst.window, cfg.psi);
  st.t_sort = phase.seconds();

  phase.reset();
  // The same hot-path aligner the slaves use (arena + memo + bounded
  // kernel), so the sequential partition is computed by the identical
  // verdict function as the parallel one.
  PairAligner aligner(ests, cfg);
  auto handle_pair = [&](const pairgen::PromisingPair& p) {
    if (options.cluster_skip && res.clusters.same(p.a, p.b)) {
      ++st.pairs_skipped;
      return;
    }
    PairEvaluation ev = aligner.evaluate(p);
    ++st.pairs_processed;
    st.dp_cells += ev.overlap.cells;
    if (ev.accepted) {
      ++st.pairs_accepted;
      if (res.clusters.unite(p.a, p.b)) ++st.merges;
      res.overlaps.push_back(
          {p.a, p.b, p.b_rc, ev.overlap.kind,
           static_cast<std::uint32_t>(ev.overlap.a_begin),
           static_cast<std::uint32_t>(ev.overlap.a_end),
           static_cast<std::uint32_t>(ev.overlap.b_begin),
           static_cast<std::uint32_t>(ev.overlap.b_end),
           ev.overlap.quality});
    }
  };

  if (!options.arbitrary_order) {
    // On-demand path: pairs arrive in decreasing maximal-common-substring
    // length, so early merges suppress later redundant alignments.
    std::vector<pairgen::PromisingPair> batch;
    while (gen->next_batch(cfg.batchsize, batch) > 0) {
      for (const auto& p : batch) handle_pair(p);
      batch.clear();
    }
  } else {
    // Ablation: materialize every promising pair first (the memory-hungry
    // strategy of prior tools), then process in an order uncorrelated with
    // match length.
    std::vector<pairgen::PromisingPair> all;
    while (gen->next_batch(1 << 20, all) > 0) {
    }
    std::sort(all.begin(), all.end(),
              [](const pairgen::PromisingPair& x,
                 const pairgen::PromisingPair& y) {
                if (x.a != y.a) return x.a < y.a;
                if (x.b != y.b) return x.b < y.b;
                if (x.a_pos != y.a_pos) return x.a_pos < y.a_pos;
                return x.b_pos < y.b_pos;
              });
    for (const auto& p : all) handle_pair(p);
  }
  st.t_align = phase.seconds();

  st.pairs_generated = gen->stats().pairs_emitted;
  st.num_clusters = res.clusters.num_clusters();
  st.t_total = total.seconds();
  return res;
}

}  // namespace estclust::pace
