// Parallel EST clustering driver (Fig 2): distributed GST construction,
// on-demand pair generation on the slaves, master-directed clustering.
#pragma once

#include <cstdint>
#include <vector>

#include "bio/dataset.hpp"
#include "mpr/communicator.hpp"
#include "pace/config.hpp"
#include "pace/sequential.hpp"

namespace estclust::pace {

struct ParallelResult {
  /// Canonical cluster label per EST (smallest member id of its cluster).
  /// Identical on every rank after the run.
  std::vector<std::uint32_t> labels;
  /// Aggregated over ranks: counters summed, phase times max-reduced.
  PaceStats stats;
  /// Accepted overlaps (rank 0 / master only; empty on other ranks). The
  /// exact set can differ from a sequential run — slaves race ahead of
  /// the cluster state — but its connected components always equal the
  /// clustering, so downstream assembly sees the same contigs.
  std::vector<AcceptedOverlap> overlaps;
};

/// Collective: every rank of `comm` calls this with the same inputs.
/// Rank 0 acts as the master (clusters + pair selection); the remaining
/// ranks build the distributed GST, generate pairs and align. With a
/// single rank the whole pipeline runs locally under the same virtual-time
/// accounting, providing the p = 1 baseline of Fig 6.
ParallelResult cluster_parallel(mpr::Communicator& comm,
                                const bio::EstSet& ests,
                                const PaceConfig& cfg);

}  // namespace estclust::pace
