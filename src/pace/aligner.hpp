// Bridges promising pairs to the anchored alignment kernel.
#pragma once

#include "align/anchored.hpp"
#include "align/kernel.hpp"
#include "bio/dataset.hpp"
#include "pace/config.hpp"
#include "pace/memo.hpp"
#include "pairgen/generator.hpp"

namespace estclust::pace {

/// Outcome of aligning one promising pair.
struct PairEvaluation {
  align::OverlapResult overlap;  ///< cells == DP cells computed THIS call
  bool accepted = false;
  bool memo_hit = false;  ///< served from the memo cache (0 new DP cells)
};

/// Runs the anchored banded alignment of §3.3 on the pair: string a is the
/// forward orientation of EST pair.a; string b is EST pair.b in the
/// orientation recorded by the generator; the maximal common substring
/// found by the GST is the anchor. Always exact (no memo, no early exit).
PairEvaluation evaluate_pair(const bio::EstSet& ests,
                             const pairgen::PromisingPair& pair,
                             const align::OverlapParams& params);

/// The production hot path: one per slave (or per sequential driver). Owns
/// the DP arena (zero allocations per pair once warm) and the alignment
/// memo, and applies the bounded kernel when the config allows. Verdicts
/// are identical to evaluate_pair for every pair; only the DP cell count
/// differs.
class PairAligner {
 public:
  PairAligner(const bio::EstSet& ests, const PaceConfig& cfg)
      : ests_(ests),
        cfg_(cfg),
        memo_(cfg.memo ? cfg.memo_capacity : 0) {}

  PairEvaluation evaluate(const pairgen::PromisingPair& pair);

  const MemoStats& memo_stats() const { return memo_.stats(); }

  /// Scratch-arena introspection (feeds the align.arena_bytes gauge).
  const align::AlignArena& arena() const { return arena_; }

 private:
  const bio::EstSet& ests_;
  const PaceConfig& cfg_;
  align::AlignArena arena_;
  AlignMemo memo_;
};

}  // namespace estclust::pace
