// Bridges promising pairs to the anchored alignment kernel.
#pragma once

#include "align/anchored.hpp"
#include "bio/dataset.hpp"
#include "pairgen/generator.hpp"

namespace estclust::pace {

/// Outcome of aligning one promising pair.
struct PairEvaluation {
  align::OverlapResult overlap;
  bool accepted = false;
};

/// Runs the anchored banded alignment of §3.3 on the pair: string a is the
/// forward orientation of EST pair.a; string b is EST pair.b in the
/// orientation recorded by the generator; the maximal common substring
/// found by the GST is the anchor.
PairEvaluation evaluate_pair(const bio::EstSet& ests,
                             const pairgen::PromisingPair& pair,
                             const align::OverlapParams& params);

}  // namespace estclust::pace
