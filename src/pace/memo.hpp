// Per-slave alignment memo cache.
//
// The pair generators emit one pair per maximal common substring, so the
// same EST pair (a, b) reappears whenever two ESTs share several maximal
// matches (paralogs, repeats, long overlaps split by errors) and, in the
// parallel run, when different slaves generate it from their local trees.
// Each reappearance normally costs a full anchored banded DP. The memo
// remembers the latest verdict per EST pair and serves a hit when doing so
// provably cannot change the clustering:
//
//  * the cached verdict is ACCEPTED — re-uniting an already-united pair is
//    idempotent, so any accepted verdict for (a, b) yields the same
//    partition regardless of which anchor produced it; or
//  * the new pair carries exactly the cached orientation, anchor-diagonal
//    window and anchor — same inputs, same output.
//
// A REJECTED verdict is never served for a different anchor: a later
// anchor on another diagonal may well align (and must, for clusters to
// match the memo-less run). Rejected entries are evicted FIFO under a
// capacity bound; accepted entries are pinned (they are the partition-
// bearing facts and there are at most merges + redundancy of them).
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "align/anchored.hpp"
#include "pairgen/generator.hpp"

namespace estclust::pace {

/// Hit/miss/evict counters, published under pace.memo_* by the drivers.
struct MemoStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
};

class AlignMemo {
 public:
  /// capacity == 0 disables the memo entirely (lookups miss, inserts drop).
  explicit AlignMemo(std::size_t capacity) : capacity_(capacity) {}

  bool enabled() const { return capacity_ > 0; }
  const MemoStats& stats() const { return stats_; }

  struct Entry {
    align::OverlapResult result;
    bool accepted = false;
    bool b_rc = false;
    std::int64_t window = 0;  ///< anchor diagonal / (2 * band + 1)
    align::Anchor anchor;
  };

  /// Returns the cached entry when serving it cannot change the
  /// clustering (see file comment), else nullptr.
  const Entry* lookup(const pairgen::PromisingPair& p, std::int64_t window) {
    if (!enabled()) return nullptr;
    ++stats_.lookups;
    auto it = entries_.find(key_of(p));
    if (it == entries_.end()) return nullptr;
    const Entry& e = it->second;
    const bool same_anchor = e.b_rc == p.b_rc && e.window == window &&
                             e.anchor.a_pos == p.a_pos &&
                             e.anchor.b_pos == p.b_pos &&
                             e.anchor.len == p.match_len;
    if (!e.accepted && !same_anchor) return nullptr;
    ++stats_.hits;
    return &e;
  }

  /// Records the verdict for this pair. An accepted entry is never
  /// displaced by a rejected one (the accepted verdict is strictly more
  /// reusable).
  void insert(const pairgen::PromisingPair& p, std::int64_t window,
              const align::OverlapResult& result, bool accepted) {
    if (!enabled()) return;
    const std::uint64_t key = key_of(p);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      if (it->second.accepted && !accepted) return;
      it->second = make_entry(p, window, result, accepted);
      ++stats_.insertions;
      return;
    }
    if (!accepted && rejected_fifo_.size() >= capacity_) evict_one();
    entries_.emplace(key, make_entry(p, window, result, accepted));
    if (!accepted) rejected_fifo_.push_back(key);
    ++stats_.insertions;
  }

  std::size_t size() const { return entries_.size(); }

 private:
  static std::uint64_t key_of(const pairgen::PromisingPair& p) {
    return (static_cast<std::uint64_t>(p.a) << 32) |
           static_cast<std::uint64_t>(p.b);
  }

  static Entry make_entry(const pairgen::PromisingPair& p,
                          std::int64_t window,
                          const align::OverlapResult& result, bool accepted) {
    Entry e;
    e.result = result;
    e.accepted = accepted;
    e.b_rc = p.b_rc;
    e.window = window;
    e.anchor = {p.a_pos, p.b_pos, p.match_len};
    return e;
  }

  void evict_one() {
    // FIFO over rejected keys; entries promoted to accepted since their
    // enqueue are skipped (they are pinned).
    while (!rejected_fifo_.empty()) {
      const std::uint64_t key = rejected_fifo_.front();
      rejected_fifo_.pop_front();
      auto it = entries_.find(key);
      if (it == entries_.end() || it->second.accepted) continue;
      entries_.erase(it);
      ++stats_.evictions;
      return;
    }
  }

  std::size_t capacity_;
  std::unordered_map<std::uint64_t, Entry> entries_;
  std::deque<std::uint64_t> rejected_fifo_;
  MemoStats stats_;
};

}  // namespace estclust::pace
