// Single-processor clustering driver.
//
// Shares every component with the parallel driver (GST, pair generation,
// anchored alignment, union-find) but runs them in one thread with
// wall-clock timing. This is the path Table 1, Table 2 and Fig 7 use, and
// the natural entry point for library users without a rank group.
#pragma once

#include "bio/dataset.hpp"
#include "cluster/union_find.hpp"
#include "pace/config.hpp"

namespace estclust::pace {

/// An overlap that passed the §3.3 acceptance criteria: the evidence used
/// to merge the pair's clusters, with coordinates for downstream layout
/// and consensus (assembly).
struct AcceptedOverlap {
  bio::EstId a = 0;
  bio::EstId b = 0;
  bool b_rc = false;
  align::OverlapKind kind = align::OverlapKind::kNone;
  std::uint32_t a_begin = 0, a_end = 0;  ///< span in forward(e_a)
  std::uint32_t b_begin = 0, b_end = 0;  ///< span in oriented(e_b)
  double quality = 0.0;
};

struct SequentialResult {
  cluster::UnionFind clusters;
  PaceStats stats;
  /// Every accepted overlap, in processing order (including those whose
  /// ESTs were already co-clustered transitively).
  std::vector<AcceptedOverlap> overlaps;
};

/// Ablation knobs for §3.2's central claims (the production defaults are
/// both `false`/`true` respectively).
struct SequentialOptions {
  /// true: materialize every promising pair first and process in an order
  /// uncorrelated with match length (the memory-hungry strategy of prior
  /// tools) instead of the on-demand decreasing-match-length stream.
  bool arbitrary_order = false;
  /// false: align every promising pair even when its ESTs already share a
  /// cluster — what an assembler that needs all overlap scores must do.
  bool cluster_skip = true;
};

/// Clusters `ests` and returns the final union-find plus counters.
SequentialResult cluster_sequential(const bio::EstSet& ests,
                                    const PaceConfig& cfg,
                                    SequentialOptions options = {});

}  // namespace estclust::pace
