#include "pace/parallel.hpp"

#include <algorithm>

#include "cluster/union_find.hpp"
#include "gst/parallel.hpp"
#include "obs/trace.hpp"
#include "pace/aligner.hpp"
#include "pace/master.hpp"
#include "pace/slave.hpp"
#include "pairgen/source.hpp"
#include "util/check.hpp"

namespace estclust::pace {

namespace {

/// Publishes the aggregated per-phase times (Table 3's columns) onto the
/// registry. Gauges are max-merged, so per-rank raw values (set by the
/// slaves) and the allreduced aggregates (set here) fold to one number.
void publish_phase_gauges(mpr::Communicator& comm, const PaceStats& st) {
  auto& m = comm.metrics();
  m.gauge("pace.t_partition", obs::MergeOp::kMax).set(st.t_partition);
  m.gauge("pace.t_gst", obs::MergeOp::kMax).set(st.t_gst);
  m.gauge("pace.t_sort", obs::MergeOp::kMax).set(st.t_sort);
  m.gauge("pace.t_align", obs::MergeOp::kMax).set(st.t_align);
  m.gauge("pace.t_total", obs::MergeOp::kMax).set(st.t_total);
  m.gauge("pace.master_busy_fraction", obs::MergeOp::kMax)
      .set(st.master_busy_fraction);
  m.gauge("pace.num_clusters", obs::MergeOp::kMax)
      .set(static_cast<double>(st.num_clusters));
}

/// Wire codec for the final label broadcast. One vector field, but a
/// named encode/decode pair keeps the payload inside the codec and
/// bounds analyzer rules (field symmetry, exhaustion on receipt).
mpr::Buffer encode_labels(const std::vector<std::uint32_t>& labels) {
  mpr::BufWriter w;
  w.put_vec(labels);
  return w.take();
}

std::vector<std::uint32_t> decode_labels(const mpr::Buffer& b) {
  mpr::BufReader r(b);
  std::vector<std::uint32_t> labels = r.get_vec<std::uint32_t>();
  r.expect_exhausted("labels");
  return labels;
}

/// p = 1: the full pipeline on one rank with identical charging, so the
/// single-processor point of the scaling curves is measured by the same
/// clock as the parallel points.
ParallelResult cluster_single_rank(mpr::Communicator& comm,
                                   const bio::EstSet& ests,
                                   const PaceConfig& cfg) {
  const auto& cm = comm.cost_model();
  ParallelResult res;
  PaceStats& st = res.stats;

  gst::ParallelBuildStats build_stats;
  auto forest = gst::build_forest_parallel(comm, ests, cfg.gst, &build_stats);
  st.t_partition = build_stats.partition_vtime;
  st.t_gst = build_stats.build_vtime;

  obs::RankTracer* tracer = comm.tracer();
  double t = comm.clock().time();
  if (tracer) tracer->begin("node_sorting", "phase");
  auto gen = pairgen::make_pair_source(cfg.pair_source, ests, forest,
                                       cfg.gst.window, cfg.psi);
  comm.charge(cm.sort_op, gen->construction_sort_units());
  st.t_sort = comm.clock().time() - t;
  if (tracer) tracer->end("node_sorting");

  t = comm.clock().time();
  if (tracer) tracer->begin("alignment", "phase");
  cluster::UnionFind uf(ests.num_ests());
  std::uint64_t uf_charged = 0;
  PairAligner aligner(ests, cfg);
  std::vector<pairgen::PromisingPair> batch;
  while (gen->next_batch(cfg.batchsize, batch) > 0) {
    comm.charge(cm.pair_op, gen->take_work_units());
    for (const auto& p : batch) {
      if (uf.same(p.a, p.b)) {
        ++st.pairs_skipped;
        continue;
      }
      PairEvaluation ev = aligner.evaluate(p);
      comm.charge(cm.dp_cell, ev.overlap.cells);
      ++st.pairs_processed;
      st.dp_cells += ev.overlap.cells;
      if (ev.accepted) {
        ++st.pairs_accepted;
        if (uf.unite(p.a, p.b)) ++st.merges;
        res.overlaps.push_back(
            {p.a, p.b, p.b_rc, ev.overlap.kind,
             static_cast<std::uint32_t>(ev.overlap.a_begin),
             static_cast<std::uint32_t>(ev.overlap.a_end),
             static_cast<std::uint32_t>(ev.overlap.b_begin),
             static_cast<std::uint32_t>(ev.overlap.b_end),
             ev.overlap.quality});
      }
    }
    comm.charge(cm.uf_op, uf.operations() - uf_charged);
    uf_charged = uf.operations();
    batch.clear();
  }
  st.t_align = comm.clock().time() - t;
  if (tracer) tracer->end("alignment");

  st.pairs_generated = gen->stats().pairs_emitted;
  st.num_clusters = uf.num_clusters();
  st.t_total = comm.clock().time();
  res.labels = uf.labels();

  auto& metrics = comm.metrics();
  metrics.counter("pace.pairs_generated").add(st.pairs_generated);
  metrics.counter("pace.pairs_aligned").add(st.pairs_processed);
  metrics.counter("pace.pairs_accepted").add(st.pairs_accepted);
  metrics.counter("pace.pairs_skipped").add(st.pairs_skipped);
  metrics.counter("pace.merges").add(st.merges);
  metrics.counter("pace.dp_cells").add(st.dp_cells);
  const MemoStats& memo = aligner.memo_stats();
  metrics.counter("pace.memo_lookups").add(memo.lookups);
  metrics.counter("pace.memo_hits").add(memo.hits);
  metrics.counter("pace.memo_insertions").add(memo.insertions);
  metrics.counter("pace.memo_evictions").add(memo.evictions);

  // Kernel-variant attribution, mirroring Slave::finish: pure
  // observability, every charged quantity is variant-invariant.
  const align::KernelVariant kv = align::active_kernel();
  switch (kv) {
    case align::KernelVariant::kAvx2:
      metrics.counter("kernel.variant.avx2").add(st.pairs_processed);
      break;
    case align::KernelVariant::kSse2:
      metrics.counter("kernel.variant.sse2").add(st.pairs_processed);
      break;
    case align::KernelVariant::kScalar:
      metrics.counter("kernel.variant.scalar").add(st.pairs_processed);
      break;
  }
  metrics.gauge("align.arena_bytes", obs::MergeOp::kMax)
      .set(static_cast<double>(aligner.arena().high_water_bytes()));
  if (tracer) {
    tracer->instant("kernel.variant", "align",
                    static_cast<std::uint64_t>(kv));
  }
  publish_phase_gauges(comm, st);
  return res;
}

}  // namespace

ParallelResult cluster_parallel(mpr::Communicator& comm,
                                const bio::EstSet& ests,
                                const PaceConfig& cfg) {
  cfg.validate();
  if (comm.size() == 1) return cluster_single_rank(comm, ests, cfg);

  // Keep the soft WORKBUF cap comfortably above the slaves' unsolicited
  // initial batches so flow control starts in steady state.
  PaceConfig effective = cfg;
  effective.workbuf_capacity =
      std::max(cfg.workbuf_capacity,
               4 * static_cast<std::size_t>(comm.size()) * cfg.batchsize);

  ParallelResult res;
  PaceStats& st = res.stats;

  // Phase 1+2: distributed GST, buckets owned by slaves only.
  gst::ParallelBuildStats build_stats;
  auto forest = gst::build_forest_parallel(comm, ests, effective.gst,
                                           &build_stats,
                                           /*first_owner_rank=*/1);
  st.t_partition = comm.allreduce_max(build_stats.partition_vtime);
  st.t_gst = comm.allreduce_max(build_stats.build_vtime);

  // Phase 3+4: master/slave clustering loop.
  std::vector<std::uint32_t> labels;
  SlaveCounters slave_counters;
  MasterCounters master_counters;
  double master_busy = 0.0;
  if (comm.rank() == 0) {
    // Active = busy + comm: the master's work is mostly protocol handling,
    // so its message overheads belong in the utilization numerator.
    const double busy_before = comm.clock().active_time();
    Master master(comm, ests, effective);
    master.run();
    master_busy = comm.clock().active_time() - busy_before;
    master_counters = master.counters();
    labels = master.clusters().labels();
    st.num_clusters = master.clusters().num_clusters();
    res.overlaps = std::move(master.overlaps());
  } else {
    Slave slave(comm, ests, effective, forest);
    slave_counters = slave.run();
  }

  // Aggregate counters and phase times.
  st.pairs_generated = comm.allreduce_sum(slave_counters.pairs_generated);
  st.pairs_processed = comm.allreduce_sum(slave_counters.pairs_aligned);
  st.dp_cells = comm.allreduce_sum(slave_counters.dp_cells);
  st.pairs_accepted = comm.allreduce_sum(master_counters.pairs_accepted);
  st.pairs_skipped = comm.allreduce_sum(master_counters.pairs_skipped);
  st.merges = comm.allreduce_sum(master_counters.merges);
  st.num_clusters = static_cast<std::size_t>(
      comm.allreduce_max(static_cast<std::uint64_t>(st.num_clusters)));
  st.t_sort = comm.allreduce_max(slave_counters.sort_vtime);
  st.t_align = comm.allreduce_max(slave_counters.loop_vtime);
  st.t_total = comm.allreduce_max(comm.clock().time());
  st.master_busy_fraction =
      comm.allreduce_max(master_busy) / std::max(st.t_total, 1e-12);
  if (comm.rank() == 0) publish_phase_gauges(comm, st);

  // Share the clustering with every rank.
  res.labels = decode_labels(comm.broadcast(encode_labels(labels)));
  return res;
}

}  // namespace estclust::pace
