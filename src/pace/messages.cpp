#include "pace/messages.hpp"

namespace estclust::pace {

namespace {

// Exact wire size of a vector field: 8-byte length prefix plus payload.
template <typename T>
std::size_t vec_bytes(const std::vector<T>& v) {
  return sizeof(std::uint64_t) + v.size() * sizeof(T);
}

}  // namespace

mpr::Buffer encode_report(const ReportMsg& m, bool reliable) {
  mpr::BufWriter w;
  w.reserve(vec_bytes(m.results) + vec_bytes(m.pairs) + sizeof(std::uint8_t) +
            2 * sizeof(std::uint64_t) +
            (reliable ? 3 * sizeof(std::uint64_t) : 0));
  w.put_vec(m.results);
  w.put_vec(m.pairs);
  w.put<std::uint8_t>(m.out_of_pairs ? 1 : 0);
  w.put<std::uint64_t>(m.memo_lookups);
  w.put<std::uint64_t>(m.memo_hits);
  if (reliable) {
    w.put<std::uint64_t>(m.seq);
    w.put<std::uint64_t>(m.results_for_seq);
    w.put<std::uint64_t>(m.ack_assign_seq);
  }
  return w.take();
}

ReportMsg decode_report(const mpr::Buffer& b, bool reliable) {
  mpr::BufReader r(b);
  ReportMsg m;
  m.results = r.get_vec<WireResult>();
  m.pairs = r.get_vec<pairgen::PromisingPair>();
  m.out_of_pairs = r.get<std::uint8_t>() != 0;
  m.memo_lookups = r.get<std::uint64_t>();
  m.memo_hits = r.get<std::uint64_t>();
  if (reliable) {
    m.seq = r.get<std::uint64_t>();
    m.results_for_seq = r.get<std::uint64_t>();
    m.ack_assign_seq = r.get<std::uint64_t>();
  }
  r.expect_exhausted("report");
  return m;
}

mpr::Buffer encode_assign(const AssignMsg& m, bool reliable) {
  mpr::BufWriter w;
  w.reserve(vec_bytes(m.work) + sizeof(std::uint64_t) +
            sizeof(std::uint8_t) + (reliable ? sizeof(std::uint64_t) : 0));
  w.put_vec(m.work);
  w.put<std::uint64_t>(m.request);
  w.put<std::uint8_t>(m.stop);
  if (reliable) {
    w.put<std::uint64_t>(m.seq);
  }
  return w.take();
}

AssignMsg decode_assign(const mpr::Buffer& b, bool reliable) {
  mpr::BufReader r(b);
  AssignMsg m;
  m.work = r.get_vec<pairgen::PromisingPair>();
  m.request = r.get<std::uint64_t>();
  m.stop = r.get<std::uint8_t>();
  if (reliable) {
    m.seq = r.get<std::uint64_t>();
  }
  r.expect_exhausted("assign");
  return m;
}

mpr::Buffer encode_ack(const AckMsg& m) {
  mpr::BufWriter w;
  w.reserve(sizeof(std::uint64_t));
  w.put<std::uint64_t>(m.seq);
  return w.take();
}

AckMsg decode_ack(const mpr::Buffer& b) {
  mpr::BufReader r(b);
  AckMsg m;
  m.seq = r.get<std::uint64_t>();
  r.expect_exhausted("ack");
  return m;
}

mpr::Buffer encode_heartbeat(const HeartbeatMsg& m) {
  mpr::BufWriter w;
  w.reserve(sizeof(std::uint64_t));
  w.put<std::uint64_t>(m.last_report_seq);
  return w.take();
}

HeartbeatMsg decode_heartbeat(const mpr::Buffer& b) {
  mpr::BufReader r(b);
  HeartbeatMsg m;
  m.last_report_seq = r.get<std::uint64_t>();
  r.expect_exhausted("heartbeat");
  return m;
}

}  // namespace estclust::pace
