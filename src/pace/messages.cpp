#include "pace/messages.hpp"

namespace estclust::pace {

mpr::Buffer encode_report(const ReportMsg& m) {
  mpr::BufWriter w;
  w.put_vec(m.results);
  w.put_vec(m.pairs);
  w.put<std::uint8_t>(m.out_of_pairs ? 1 : 0);
  return w.take();
}

ReportMsg decode_report(const mpr::Buffer& b) {
  mpr::BufReader r(b);
  ReportMsg m;
  m.results = r.get_vec<WireResult>();
  m.pairs = r.get_vec<pairgen::PromisingPair>();
  m.out_of_pairs = r.get<std::uint8_t>() != 0;
  return m;
}

mpr::Buffer encode_assign(const AssignMsg& m) {
  mpr::BufWriter w;
  w.put_vec(m.work);
  w.put<std::uint64_t>(m.request);
  return w.take();
}

AssignMsg decode_assign(const mpr::Buffer& b) {
  mpr::BufReader r(b);
  AssignMsg m;
  m.work = r.get_vec<pairgen::PromisingPair>();
  m.request = r.get<std::uint64_t>();
  return m;
}

}  // namespace estclust::pace
