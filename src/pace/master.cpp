#include "pace/master.hpp"

#include <algorithm>
#include <memory>

#include "gst/parallel.hpp"
#include "mpr/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace estclust::pace {

// The master keeps one protocol conversation per slave; each is an
// instance of this automaton (extracted and exhaustively checked by
// tools/analyze, family `proto`).
// ESTCLUST-PROTO-ROLE(role=master, init=expect_report, final=stopped|dead)

Master::Master(mpr::Communicator& comm, const bio::EstSet& ests,
               const PaceConfig& cfg)
    : comm_(comm),
      ests_(ests),
      cfg_(cfg),
      clusters_(ests.num_ests()),
      num_slaves_(comm.size() - 1),
      reliable_(comm.fault_plan() != nullptr),
      state_(comm.size(), SlaveState::kExpectingReport),
      passive_(comm.size(), false),
      last_report_seq_(comm.size(), 0),
      assign_seq_(comm.size(), 0),
      inflight_(comm.size()),
      assign_sent_(comm.size(), -1.0),
      last_reported_(comm.size(), 0),
      last_admitted_(comm.size(), 0),
      multiplier_(comm.size(), 1) {
  ESTCLUST_CHECK_MSG(num_slaves_ >= 1, "master requires at least one slave");
}

bool Master::all_waiting() const {
  for (int s = 1; s <= num_slaves_; ++s) {
    if (state_[s] == SlaveState::kExpectingReport) return false;
  }
  return true;
}

void Master::process_report(int slave, const ReportMsg& msg) {
  ++counters_.interactions;
  // Incorporate alignment results: merge clusters for accepted overlaps.
  for (const auto& r : msg.results) {
    if (r.accepted) {
      ++counters_.pairs_accepted;
      if (clusters_.unite(r.a, r.b)) ++counters_.merges;
      overlaps_.push_back({r.a, r.b, r.b_rc != 0,
                           static_cast<align::OverlapKind>(r.kind),
                           r.a_begin, r.a_end, r.b_begin, r.b_end,
                           static_cast<double>(r.quality)});
    }
  }
  // Admit reported pairs whose ESTs are still in different clusters.
  const std::uint64_t admitted = admit_pairs(msg.pairs);
  last_reported_[slave] = msg.pairs.size();
  last_admitted_[slave] = admitted;
  passive_[slave] = msg.out_of_pairs;

  // Adaptive batching: while a slave's recent traffic shows little
  // redundancy (few pairs filtered here, few memo hits there), larger
  // grants are safe — the staleness cost of acting on old cluster state is
  // evidently low — and each interaction saved is two messages saved.
  // High redundancy walks the multiplier back toward the paper's
  // batchsize.
  if (cfg_.adaptive_batch) {
    const std::uint64_t skipped = msg.pairs.size() - admitted;
    const std::uint64_t redundant = skipped + msg.memo_hits;
    const std::uint64_t denom = msg.pairs.size() + msg.memo_lookups;
    std::size_t& mul = multiplier_[slave];
    if (denom > 0) {
      if (redundant * 4 <= denom) {  // < 25% redundant: double the grant
        mul = std::min(mul * 2, cfg_.batch_growth_limit);
      } else if (redundant * 2 >= denom) {  // > 50% redundant: walk back
        mul = mul > 1 ? mul / 2 : 1;
      }
    }
  }

  // Charge union-find work incurred since the last report.
  std::uint64_t ops = clusters_.operations();
  comm_.charge(comm_.cost_model().uf_op, ops - uf_ops_charged_);
  uf_ops_charged_ = ops;
}

std::uint64_t Master::admit_pairs(
    const std::vector<pairgen::PromisingPair>& pairs) {
  std::uint64_t admitted = 0;
  for (const auto& p : pairs) {
    if (clusters_.same(p.a, p.b)) {
      ++counters_.pairs_skipped;
    } else {
      // The E rule keeps the buffer under capacity in steady state; the
      // unsolicited initial batches may nudge past it, so the capacity is
      // soft (compute_request sees nfree = 0 and throttles).
      workbuf_.push_back(p);
      ++counters_.pairs_enqueued;
      ++admitted;
    }
  }
  return admitted;
}

std::size_t Master::effective_batch(int slave) const {
  return cfg_.batchsize * multiplier_[slave];
}

std::uint64_t Master::compute_request(int slave) const {
  if (passive_[slave]) return 0;
  const double reported = static_cast<double>(last_reported_[slave]);
  const double admitted =
      static_cast<double>(std::max<std::uint64_t>(1, last_admitted_[slave]));
  const double delta_ratio = std::max(1.0, reported / admitted);  // Δ
  int active = 0;
  for (int s = 1; s <= num_slaves_; ++s) active += passive_[s] ? 0 : 1;
  const double delta_factor =
      static_cast<double>(num_slaves_) / std::max(1, active);  // δ
  const double nfree = static_cast<double>(
      cfg_.workbuf_capacity > workbuf_.size()
          ? cfg_.workbuf_capacity - workbuf_.size()
          : 0);
  const double e = std::min(
      delta_ratio * delta_factor *
          static_cast<double>(effective_batch(slave)),
      nfree / static_cast<double>(num_slaves_));
  return static_cast<std::uint64_t>(std::max(0.0, e));
}

std::vector<pairgen::PromisingPair> Master::take_work(int slave) {
  std::vector<pairgen::PromisingPair> work;
  const std::size_t w = std::min(effective_batch(slave), workbuf_.size());
  work.reserve(w);
  for (std::size_t i = 0; i < w; ++i) {
    work.push_back(workbuf_.front());
    workbuf_.pop_front();
  }
  return work;
}

void Master::send_assign(int slave, AssignMsg& assign) {
  if (reliable_) {
    assign.seq = ++assign_seq_[slave];
    if (!assign.work.empty()) {
      // Retain a copy until the answering report's results_for_seq
      // releases it; a slave death re-enqueues whatever is still here.
      inflight_[slave].push_back({assign.seq, assign.work});
    }
  }
  // ESTCLUST-PROTO(state=served, send=ASSIGN -> expect_report, when=have_work)
  // ESTCLUST-PROTO(state=waiting, send=ASSIGN -> expect_report, when=have_work)
  // ESTCLUST-PROTO(state=waiting, send=ASSIGN -> flushing, when=flush)
  comm_.send(slave, kTagAssign, encode_assign(assign, reliable_));
  assign_sent_[slave] = comm_.clock().time();
  state_[slave] = SlaveState::kExpectingReport;
}

void Master::sample_report_latency(int slave) {
  if (assign_sent_[slave] < 0.0) return;
  comm_.metrics()
      .histogram("pace.assign_to_report_latency", 0.0, 1.0, 50)
      .add(comm_.clock().time() - assign_sent_[slave]);
  assign_sent_[slave] = -1.0;
}

void Master::reply(int slave) {
  AssignMsg assign;
  assign.work = take_work(slave);
  assign.request = compute_request(slave);
  if (assign.work.empty() && assign.request == 0) {
    // Nothing to do and nothing to ask for: park the slave (§3.3 wait
    // queue) instead of ping-ponging empty messages.
    // ESTCLUST-PROTO(state=served -> waiting, when=idle)
    state_[slave] = SlaveState::kWaiting;
    wait_queue_.push_back(slave);
    return;
  }
  send_assign(slave, assign);
}

void Master::drain_wait_queue() {
  while (!wait_queue_.empty() && !workbuf_.empty()) {
    int slave = wait_queue_.front();
    wait_queue_.pop_front();
    AssignMsg assign;
    assign.work = take_work(slave);
    assign.request = compute_request(slave);
    send_assign(slave, assign);
  }
}

bool Master::await_report(int slave, bool flush, ReportMsg& out) {
  for (;;) {
    mpr::Message m = [&] {
      mpr::CheckOpScope check_scope(comm_, flush ? "pace.master.await_flush"
                                                 : "pace.master.await_report");
      // Reliable mode stays responsive to the death notice; mailbox FIFO
      // order consumes every report the slave managed to send first.
      // ESTCLUST-PROTO(state=expect_report, on=REPORT -> got_report, when=fresh, mode=reliable, op=recv2)
      // ESTCLUST-PROTO(state=flushing, on=REPORT -> flush_got, when=fresh, mode=reliable, op=recv2)
      // ESTCLUST-PROTO(state=expect_report|flushing, on=REPORT -> ., when=dup, mode=reliable, op=recv2)
      // ESTCLUST-PROTO(state=expect_report|flushing, on=HEARTBEAT -> dead, mode=reliable, op=recv2)
      // ESTCLUST-PROTO(state=expect_report, on=REPORT -> got_report, mode=base, op=recv)
      // ESTCLUST-PROTO(state=flushing, on=REPORT -> flush_got, mode=base, op=recv)
      return reliable_ ? comm_.recv2(slave, kTagReport, kTagHeartbeat)
                       : comm_.recv(slave, kTagReport);
    }();
    if (reliable_ && m.tag == kTagHeartbeat) {
      handle_death(slave, decode_heartbeat(m.payload));
      return false;
    }
    out = decode_report(m.payload, reliable_);
    if (!reliable_) {
      sample_report_latency(slave);
      // ESTCLUST-PROTO(state=got_report -> served, mode=base)
      // ESTCLUST-PROTO(state=flush_got -> stopped, mode=base)
      return true;
    }
    if (out.seq <= last_report_seq_[slave]) {
      // Duplicated delivery of a report already incorporated.
      ++dup_reports_ignored_;
      continue;
    }
    ESTCLUST_CHECK_MSG(out.seq == last_report_seq_[slave] + 1,
                       "report sequence gap from slave " << slave);
    last_report_seq_[slave] = out.seq;
    sample_report_latency(slave);
    // The protocol alternates strictly per slave, so a fresh report must
    // acknowledge exactly the latest assignment.
    ESTCLUST_CHECK_MSG(out.ack_assign_seq == assign_seq_[slave],
                       "report acks assignment " << out.ack_assign_seq
                                                 << ", expected "
                                                 << assign_seq_[slave]);
    auto& inflight = inflight_[slave];
    for (auto it = inflight.begin(); it != inflight.end(); ++it) {
      if (it->seq == out.results_for_seq) {
        inflight.erase(it);
        break;
      }
    }
    // Ack before replying: the slave consumes the ack right after the
    // next assignment arrives, relying on this order.
    // ESTCLUST-PROTO(state=got_report, send=ACK -> served, mode=reliable)
    // ESTCLUST-PROTO(state=flush_got, send=ACK -> stopped, mode=reliable)
    AckMsg ack;
    ack.seq = out.seq;
    comm_.send(slave, kTagAck, encode_ack(ack));
    return true;
  }
}

void Master::handle_death(int slave, const HeartbeatMsg& hb) {
  ++counters_.slave_deaths;
  state_[slave] = SlaveState::kDead;
  passive_[slave] = true;
  for (auto it = wait_queue_.begin(); it != wait_queue_.end();) {
    it = *it == slave ? wait_queue_.erase(it) : it + 1;
  }
  // Every report the slave sent precedes its heartbeat in mailbox order
  // and was consumed by the await loop, so the bookkeeping must agree.
  ESTCLUST_CHECK_MSG(hb.last_report_seq == last_report_seq_[slave],
                     "dead slave " << slave << " reported through seq "
                                   << hb.last_report_seq << " but only "
                                   << last_report_seq_[slave]
                                   << " were received");
  // Re-enqueue the retained copies of unanswered assignments.
  std::uint64_t recovered = 0;
  for (const auto& ia : inflight_[slave]) {
    recovered += admit_pairs(ia.work);
  }
  inflight_[slave].clear();

  // Regenerate the dead slave's entire promising-pair stream: recomputing
  // its share of the workload offline is deterministic — for the GST
  // backend by rebuilding its forest share, for the k-mer/FM backends by
  // recomputing its bucket ownership and re-running index construction —
  // so the regenerated stream is identical to the one the slave was
  // producing. Pairs the dead slave already delivered (or that resolved
  // transitively) fall to the same() filter; re-aligning a survivor of
  // the filter is idempotent — the aligner's verdicts are deterministic
  // and unite() converges — so the final clusters match the fault-free
  // run exactly.
  std::vector<gst::Tree> forest;
  std::unique_ptr<pairgen::PairSource> gen;
  if (cfg_.pair_source == pairgen::Backend::kGst) {
    gst::BuildCounters bc;
    forest = gst::rebuild_rank_forest(ests_, cfg_.gst, comm_.size(),
                                      /*first_owner_rank=*/1, slave, &bc);
    comm_.charge(comm_.cost_model().char_op, bc.chars_scanned);
    gen = pairgen::make_pair_source(cfg_.pair_source, ests_, forest,
                                    cfg_.gst.window, cfg_.psi);
  } else {
    std::uint64_t scanned = 0;
    auto owned =
        gst::owned_bucket_ids(ests_, cfg_.gst, comm_.size(),
                              /*first_owner_rank=*/1, slave, &scanned);
    comm_.charge(comm_.cost_model().char_op, scanned);
    gen = pairgen::make_pair_source_for_buckets(
        cfg_.pair_source, ests_, std::move(owned), cfg_.gst.window, cfg_.psi);
  }
  comm_.charge(comm_.cost_model().sort_op, gen->construction_sort_units());
  std::vector<pairgen::PromisingPair> batch;
  while (gen->next_batch(cfg_.pairbuf_capacity, batch) > 0) {
    comm_.charge(comm_.cost_model().pair_op, gen->take_work_units());
    recovered += admit_pairs(batch);
    batch.clear();
  }
  const std::uint64_t ops = clusters_.operations();
  comm_.charge(comm_.cost_model().uf_op, ops - uf_ops_charged_);
  uf_ops_charged_ = ops;
  counters_.pairs_recovered += recovered;
  comm_.metrics().counter("pace.pairs_recovered").add(recovered);
  if (obs::RankTracer* tracer = comm_.tracer()) {
    tracer->instant("pace.recover", "fault",
                    static_cast<std::uint64_t>(slave));
  }
}

bool Master::flush_parked(obs::RankTracer* tracer) {
  // All live slaves are parked and the work buffer is drained. Slaves
  // parked on the wait-queue still hold the results of their final
  // alignments (a report is only sent in response to an assignment), so
  // flush each with a final assignment whose stop flag retires the slave —
  // one coalesced ASSIGN/REPORT exchange per slave instead of flush +
  // separate STOP.
  for (int s = 1; s <= num_slaves_; ++s) {
    if (state_[s] != SlaveState::kWaiting) {
      ESTCLUST_CHECK(state_[s] == SlaveState::kStopped ||
                     state_[s] == SlaveState::kDead);
      continue;
    }
    for (auto it = wait_queue_.begin(); it != wait_queue_.end();) {
      it = *it == s ? wait_queue_.erase(it) : it + 1;
    }
    AssignMsg final_assign;
    final_assign.stop = 1;
    send_assign(s, final_assign);
    ReportMsg report;
    if (!await_report(s, /*flush=*/true, report)) {
      // s died before flushing. Its regenerated stream may have refilled
      // WORKBUF — if so, hand the recovered work to the slaves still
      // parked before stopping them.
      if (!workbuf_.empty()) return true;
      continue;
    }
    ESTCLUST_TRACE_SPAN(tracer, "master_flush", "phase");
    ESTCLUST_CHECK_MSG(report.pairs.empty(),
                       "parked slave produced pairs during final flush");
    process_report(s, report);
    state_[s] = SlaveState::kStopped;
  }
  ESTCLUST_CHECK_MSG(workbuf_.empty(),
                     "recovered work remains but no slave survives to "
                     "process it");
  return false;
}

void Master::run() {
  obs::RankTracer* tracer = comm_.tracer();
  // Every slave owes an unsolicited initial report. Service reports in
  // deterministic round-robin order; the wait-queue keeps idle passive
  // slaves out of the rotation until work appears for them.
  //
  // The "master_service" spans open only after a report has arrived and
  // close before the next blocking receive, so their total is the
  // master's genuine busy time (the §4.2 utilization numerator in the
  // breakdown report) — never the waiting.
  int cursor = 1;
  for (;;) {
    for (;;) {
      if (all_waiting()) {
        if (workbuf_.empty()) break;
        // Work but nobody owes a report: someone must be parked to take
        // it. With every slave dead the run cannot finish — fail loudly
        // rather than deadlock.
        ESTCLUST_CHECK_MSG(!wait_queue_.empty(),
                           "work remains but no slave is available to "
                           "take it");
        drain_wait_queue();
        continue;
      }
      // Advance to the next slave owing a report.
      while (state_[cursor] != SlaveState::kExpectingReport) {
        cursor = cursor % num_slaves_ + 1;
      }
      const int slave = cursor;
      cursor = cursor % num_slaves_ + 1;

      ReportMsg report;
      if (!await_report(slave, /*flush=*/false, report)) {
        continue;  // the slave died; its work has been recovered
      }
      {
        ESTCLUST_TRACE_SPAN(tracer, "master_service", "phase");
        process_report(slave, report);
        reply(slave);
        drain_wait_queue();
      }
    }
    // A death during the flush can refill WORKBUF from the regenerated
    // stream; resume the interaction loop with the still-parked slaves.
    if (!flush_parked(tracer)) break;
  }

  // Publish the master's counters onto the runtime's registry; merged
  // across ranks these join the slave-side counts under one namespace.
  auto& metrics = comm_.metrics();
  metrics.counter("pace.pairs_accepted").add(counters_.pairs_accepted);
  metrics.counter("pace.pairs_skipped").add(counters_.pairs_skipped);
  metrics.counter("pace.pairs_enqueued").add(counters_.pairs_enqueued);
  metrics.counter("pace.merges").add(counters_.merges);
  metrics.counter("pace.master_interactions").add(counters_.interactions);
  if (dup_reports_ignored_ > 0) {
    metrics.counter("pace.dup_reports_ignored").add(dup_reports_ignored_);
  }
  std::size_t max_mul = 1;
  for (int s = 1; s <= num_slaves_; ++s) {
    max_mul = std::max(max_mul, multiplier_[s]);
  }
  metrics.gauge("pace.batch_multiplier_max", obs::MergeOp::kMax)
      .set(static_cast<double>(max_mul));
}

}  // namespace estclust::pace
