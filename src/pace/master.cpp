#include "pace/master.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace estclust::pace {

Master::Master(mpr::Communicator& comm, const bio::EstSet& ests,
               const PaceConfig& cfg)
    : comm_(comm),
      cfg_(cfg),
      clusters_(ests.num_ests()),
      num_slaves_(comm.size() - 1),
      state_(comm.size(), SlaveState::kExpectingReport),
      passive_(comm.size(), false),
      last_reported_(comm.size(), 0),
      last_admitted_(comm.size(), 0),
      multiplier_(comm.size(), 1) {
  ESTCLUST_CHECK_MSG(num_slaves_ >= 1, "master requires at least one slave");
}

bool Master::all_waiting() const {
  for (int s = 1; s <= num_slaves_; ++s) {
    if (state_[s] == SlaveState::kExpectingReport) return false;
  }
  return true;
}

void Master::process_report(int slave, const ReportMsg& msg) {
  ++counters_.interactions;
  // Incorporate alignment results: merge clusters for accepted overlaps.
  for (const auto& r : msg.results) {
    if (r.accepted) {
      ++counters_.pairs_accepted;
      if (clusters_.unite(r.a, r.b)) ++counters_.merges;
      overlaps_.push_back({r.a, r.b, r.b_rc != 0,
                           static_cast<align::OverlapKind>(r.kind),
                           r.a_begin, r.a_end, r.b_begin, r.b_end,
                           static_cast<double>(r.quality)});
    }
  }
  // Admit reported pairs whose ESTs are still in different clusters.
  std::uint64_t admitted = 0;
  for (const auto& p : msg.pairs) {
    if (clusters_.same(p.a, p.b)) {
      ++counters_.pairs_skipped;
    } else {
      // The E rule keeps the buffer under capacity in steady state; the
      // unsolicited initial batches may nudge past it, so the capacity is
      // soft (compute_request sees nfree = 0 and throttles).
      workbuf_.push_back(p);
      ++counters_.pairs_enqueued;
      ++admitted;
    }
  }
  last_reported_[slave] = msg.pairs.size();
  last_admitted_[slave] = admitted;
  passive_[slave] = msg.out_of_pairs;

  // Adaptive batching: while a slave's recent traffic shows little
  // redundancy (few pairs filtered here, few memo hits there), larger
  // grants are safe — the staleness cost of acting on old cluster state is
  // evidently low — and each interaction saved is two messages saved.
  // High redundancy walks the multiplier back toward the paper's
  // batchsize.
  if (cfg_.adaptive_batch) {
    const std::uint64_t skipped = msg.pairs.size() - admitted;
    const std::uint64_t redundant = skipped + msg.memo_hits;
    const std::uint64_t denom = msg.pairs.size() + msg.memo_lookups;
    std::size_t& mul = multiplier_[slave];
    if (denom > 0) {
      if (redundant * 4 <= denom) {  // < 25% redundant: double the grant
        mul = std::min(mul * 2, cfg_.batch_growth_limit);
      } else if (redundant * 2 >= denom) {  // > 50% redundant: walk back
        mul = mul > 1 ? mul / 2 : 1;
      }
    }
  }

  // Charge union-find work incurred since the last report.
  std::uint64_t ops = clusters_.operations();
  comm_.charge(comm_.cost_model().uf_op, ops - uf_ops_charged_);
  uf_ops_charged_ = ops;
}

std::size_t Master::effective_batch(int slave) const {
  return cfg_.batchsize * multiplier_[slave];
}

std::uint64_t Master::compute_request(int slave) const {
  if (passive_[slave]) return 0;
  const double reported = static_cast<double>(last_reported_[slave]);
  const double admitted =
      static_cast<double>(std::max<std::uint64_t>(1, last_admitted_[slave]));
  const double delta_ratio = std::max(1.0, reported / admitted);  // Δ
  int active = 0;
  for (int s = 1; s <= num_slaves_; ++s) active += passive_[s] ? 0 : 1;
  const double delta_factor =
      static_cast<double>(num_slaves_) / std::max(1, active);  // δ
  const double nfree = static_cast<double>(
      cfg_.workbuf_capacity > workbuf_.size()
          ? cfg_.workbuf_capacity - workbuf_.size()
          : 0);
  const double e = std::min(
      delta_ratio * delta_factor *
          static_cast<double>(effective_batch(slave)),
      nfree / static_cast<double>(num_slaves_));
  return static_cast<std::uint64_t>(std::max(0.0, e));
}

std::vector<pairgen::PromisingPair> Master::take_work(int slave) {
  std::vector<pairgen::PromisingPair> work;
  const std::size_t w = std::min(effective_batch(slave), workbuf_.size());
  work.reserve(w);
  for (std::size_t i = 0; i < w; ++i) {
    work.push_back(workbuf_.front());
    workbuf_.pop_front();
  }
  return work;
}

void Master::reply(int slave) {
  AssignMsg assign;
  assign.work = take_work(slave);
  assign.request = compute_request(slave);
  if (assign.work.empty() && assign.request == 0) {
    // Nothing to do and nothing to ask for: park the slave (§3.3 wait
    // queue) instead of ping-ponging empty messages.
    state_[slave] = SlaveState::kWaiting;
    wait_queue_.push_back(slave);
    return;
  }
  comm_.send(slave, kTagAssign, encode_assign(assign));
  state_[slave] = SlaveState::kExpectingReport;
}

void Master::drain_wait_queue() {
  while (!wait_queue_.empty() && !workbuf_.empty()) {
    int slave = wait_queue_.front();
    wait_queue_.pop_front();
    AssignMsg assign;
    assign.work = take_work(slave);
    assign.request = compute_request(slave);
    comm_.send(slave, kTagAssign, encode_assign(assign));
    state_[slave] = SlaveState::kExpectingReport;
  }
}

void Master::run() {
  obs::RankTracer* tracer = comm_.tracer();
  // Every slave owes an unsolicited initial report. Service reports in
  // deterministic round-robin order; the wait-queue keeps idle passive
  // slaves out of the rotation until work appears for them.
  //
  // The "master_service" spans open only after a report has arrived and
  // close before the next blocking receive, so their total is the
  // master's genuine busy time (the §4.2 utilization numerator in the
  // breakdown report) — never the waiting.
  int cursor = 1;
  for (;;) {
    if (all_waiting()) {
      if (workbuf_.empty()) break;
      drain_wait_queue();
      continue;
    }
    // Advance to the next slave owing a report.
    while (state_[cursor] != SlaveState::kExpectingReport) {
      cursor = cursor % num_slaves_ + 1;
    }
    const int slave = cursor;
    cursor = cursor % num_slaves_ + 1;

    mpr::Message m = [&] {
      mpr::CheckOpScope check_scope(comm_, "pace.master.await_report");
      return comm_.recv(slave, kTagReport);
    }();
    {
      ESTCLUST_TRACE_SPAN(tracer, "master_service", "phase");
      ReportMsg report = decode_report(m.payload);
      process_report(slave, report);
      reply(slave);
      drain_wait_queue();
    }
  }

  // All slaves are parked and the work buffer is drained. Slaves parked on
  // the wait-queue still hold the results of their final alignments (a
  // report is only sent in response to an assignment), so flush each with
  // a final assignment whose stop flag retires the slave — one coalesced
  // ASSIGN/REPORT exchange per slave instead of flush + separate STOP.
  for (int s = 1; s <= num_slaves_; ++s) {
    ESTCLUST_CHECK(state_[s] == SlaveState::kWaiting);
    AssignMsg final_assign;
    final_assign.stop = 1;
    comm_.send(s, kTagAssign, encode_assign(final_assign));
    mpr::Message m = [&] {
      mpr::CheckOpScope check_scope(comm_, "pace.master.await_flush");
      return comm_.recv(s, kTagReport);
    }();
    ESTCLUST_TRACE_SPAN(tracer, "master_flush", "phase");
    ReportMsg report = decode_report(m.payload);
    ESTCLUST_CHECK_MSG(report.pairs.empty(),
                       "parked slave produced pairs during final flush");
    process_report(s, report);
    state_[s] = SlaveState::kStopped;
  }

  // Publish the master's counters onto the runtime's registry; merged
  // across ranks these join the slave-side counts under one namespace.
  auto& metrics = comm_.metrics();
  metrics.counter("pace.pairs_accepted").add(counters_.pairs_accepted);
  metrics.counter("pace.pairs_skipped").add(counters_.pairs_skipped);
  metrics.counter("pace.pairs_enqueued").add(counters_.pairs_enqueued);
  metrics.counter("pace.merges").add(counters_.merges);
  metrics.counter("pace.master_interactions").add(counters_.interactions);
  std::size_t max_mul = 1;
  for (int s = 1; s <= num_slaves_; ++s) {
    max_mul = std::max(max_mul, multiplier_[s]);
  }
  metrics.gauge("pace.batch_multiplier_max", obs::MergeOp::kMax)
      .set(static_cast<double>(max_mul));
}

}  // namespace estclust::pace
