#include "pace/aligner.hpp"

namespace estclust::pace {

namespace {

align::Anchor anchor_of(const pairgen::PromisingPair& pair) {
  align::Anchor anchor;
  anchor.a_pos = pair.a_pos;
  anchor.b_pos = pair.b_pos;
  anchor.len = pair.match_len;
  return anchor;
}

}  // namespace

PairEvaluation evaluate_pair(const bio::EstSet& ests,
                             const pairgen::PromisingPair& pair,
                             const align::OverlapParams& params) {
  auto a = ests.str(bio::EstSet::forward_sid(pair.a));
  auto b = ests.str(pair.b_rc ? bio::EstSet::rc_sid(pair.b)
                              : bio::EstSet::forward_sid(pair.b));
  PairEvaluation out;
  out.overlap = align::align_anchored(a, b, anchor_of(pair), params);
  out.accepted = align::accept_overlap(out.overlap, params);
  return out;
}

PairEvaluation PairAligner::evaluate(const pairgen::PromisingPair& pair) {
  // Anchors within one band width of each other share a DP corridor; the
  // window id is the memo's "same alignment problem" coordinate.
  const std::int64_t diag = static_cast<std::int64_t>(pair.a_pos) -
                            static_cast<std::int64_t>(pair.b_pos);
  const std::int64_t window_width =
      2 * static_cast<std::int64_t>(cfg_.overlap.band) + 1;
  // Floor division (diag may be negative).
  std::int64_t window = diag / window_width;
  if (diag % window_width < 0) --window;

  if (const AlignMemo::Entry* e = memo_.lookup(pair, window)) {
    PairEvaluation out;
    out.overlap = e->result;
    out.overlap.cells = 0;  // no DP ran; nothing to charge
    out.accepted = e->accepted;
    out.memo_hit = true;
    return out;
  }

  auto a = ests_.str(bio::EstSet::forward_sid(pair.a));
  auto b = ests_.str(pair.b_rc ? bio::EstSet::rc_sid(pair.b)
                               : bio::EstSet::forward_sid(pair.b));
  const align::Anchor anchor = anchor_of(pair);

  PairEvaluation out;
  out.overlap = cfg_.bounded_align
                    ? align::align_anchored_bounded(a, b, anchor,
                                                    cfg_.overlap, arena_)
                    : align::align_anchored(a, b, anchor, cfg_.overlap,
                                            arena_);
  out.accepted = align::accept_overlap(out.overlap, cfg_.overlap);
  memo_.insert(pair, window, out.overlap, out.accepted);
  return out;
}

}  // namespace estclust::pace
