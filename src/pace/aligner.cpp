#include "pace/aligner.hpp"

namespace estclust::pace {

PairEvaluation evaluate_pair(const bio::EstSet& ests,
                             const pairgen::PromisingPair& pair,
                             const align::OverlapParams& params) {
  auto a = ests.str(bio::EstSet::forward_sid(pair.a));
  auto b = ests.str(pair.b_rc ? bio::EstSet::rc_sid(pair.b)
                              : bio::EstSet::forward_sid(pair.b));
  align::Anchor anchor;
  anchor.a_pos = pair.a_pos;
  anchor.b_pos = pair.b_pos;
  anchor.len = pair.match_len;

  PairEvaluation out;
  out.overlap = align::align_anchored(a, b, anchor, params);
  out.accepted = align::accept_overlap(out.overlap, params);
  return out;
}

}  // namespace estclust::pace
