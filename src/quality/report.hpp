// Cluster-level diagnostics beyond the paper's pairwise metrics: which
// predicted clusters are pure, which truth clusters were fragmented, and
// which merges were spurious. This is what a curator looks at after the
// OQ/OV/UN/CC summary says something is off.
#pragma once

#include <cstdint>
#include <vector>

#include "quality/metrics.hpp"

namespace estclust::quality {

/// Per-predicted-cluster diagnostics.
struct ClusterDiagnostics {
  std::uint32_t label = 0;        ///< predicted cluster label
  std::size_t size = 0;           ///< members
  std::size_t truth_clusters = 0; ///< distinct truth genes inside
  double purity = 0.0;            ///< largest truth fraction inside
};

/// Per-truth-cluster diagnostics.
struct TruthDiagnostics {
  std::uint32_t gene = 0;
  std::size_t size = 0;
  std::size_t fragments = 0;  ///< predicted clusters its members landed in
};

struct Report {
  PairCounts pairs;
  std::vector<ClusterDiagnostics> clusters;  ///< sorted by size desc
  std::vector<TruthDiagnostics> truths;      ///< sorted by fragments desc

  /// Predicted clusters containing members of more than one gene.
  std::size_t impure_clusters() const;
  /// Truth genes split across more than one predicted cluster.
  std::size_t fragmented_truths() const;
  /// Mean purity weighted by cluster size.
  double weighted_purity() const;
};

/// Builds the full report. `predicted` and `truth` are per-element labels
/// as in count_pairs.
Report build_report(const std::vector<std::uint32_t>& predicted,
                    const std::vector<std::uint32_t>& truth);

}  // namespace estclust::quality
