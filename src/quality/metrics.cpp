#include "quality/metrics.hpp"

#include <cmath>
#include <unordered_map>

#include "util/check.hpp"

namespace estclust::quality {

namespace {
std::uint64_t choose2(std::uint64_t k) { return k * (k - 1) / 2; }
}  // namespace

double PairCounts::overlap_quality() const {
  std::uint64_t denom = tp + fp + fn;
  return denom == 0 ? 100.0 : 100.0 * static_cast<double>(tp) /
                                  static_cast<double>(denom);
}

double PairCounts::over_prediction() const {
  std::uint64_t denom = tp + fp;
  return denom == 0 ? 0.0 : 100.0 * static_cast<double>(fp) /
                                static_cast<double>(denom);
}

double PairCounts::under_prediction() const {
  std::uint64_t denom = tp + fn;
  return denom == 0 ? 0.0 : 100.0 * static_cast<double>(fn) /
                                static_cast<double>(denom);
}

double PairCounts::correlation() const {
  double a = static_cast<double>(tp + fp);
  double b = static_cast<double>(tn + fn);
  double c = static_cast<double>(tp + fn);
  double d = static_cast<double>(tn + fp);
  double denom = std::sqrt(a) * std::sqrt(b) * std::sqrt(c) * std::sqrt(d);
  if (denom == 0.0) return 100.0;
  double num = static_cast<double>(tp) * static_cast<double>(tn) -
               static_cast<double>(fp) * static_cast<double>(fn);
  return 100.0 * num / denom;
}

PairCounts count_pairs(const std::vector<std::uint32_t>& predicted,
                       const std::vector<std::uint32_t>& truth) {
  ESTCLUST_CHECK(predicted.size() == truth.size());
  const std::uint64_t n = predicted.size();

  std::unordered_map<std::uint32_t, std::uint64_t> pred_sizes;
  std::unordered_map<std::uint32_t, std::uint64_t> truth_sizes;
  std::unordered_map<std::uint64_t, std::uint64_t> joint_sizes;
  for (std::uint64_t i = 0; i < n; ++i) {
    ++pred_sizes[predicted[i]];
    ++truth_sizes[truth[i]];
    ++joint_sizes[(static_cast<std::uint64_t>(predicted[i]) << 32) |
                  truth[i]];
  }

  std::uint64_t pred_pairs = 0;   // TP + FP
  std::uint64_t truth_pairs = 0;  // TP + FN
  std::uint64_t joint_pairs = 0;  // TP
  // Order-independent integer reductions: the analyzer's
  // determinism-unordered-iter rule proves commutativity and accepts
  // these without a waiver.
  for (const auto& [id, k] : pred_sizes) pred_pairs += choose2(k);
  for (const auto& [id, k] : truth_sizes) truth_pairs += choose2(k);
  for (const auto& [id, k] : joint_sizes) joint_pairs += choose2(k);

  PairCounts out;
  out.tp = joint_pairs;
  out.fp = pred_pairs - joint_pairs;
  out.fn = truth_pairs - joint_pairs;
  out.tn = choose2(n) - out.tp - out.fp - out.fn;
  return out;
}

PairCounts count_pairs_reference(const std::vector<std::uint32_t>& predicted,
                                 const std::vector<std::uint32_t>& truth) {
  ESTCLUST_CHECK(predicted.size() == truth.size());
  PairCounts out;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    for (std::size_t j = i + 1; j < predicted.size(); ++j) {
      bool p = predicted[i] == predicted[j];
      bool t = truth[i] == truth[j];
      if (p && t) ++out.tp;
      else if (p && !t) ++out.fp;
      else if (!p && t) ++out.fn;
      else ++out.tn;
    }
  }
  return out;
}

}  // namespace estclust::quality
