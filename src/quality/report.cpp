#include "quality/report.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "util/check.hpp"

namespace estclust::quality {

std::size_t Report::impure_clusters() const {
  std::size_t n = 0;
  for (const auto& c : clusters) n += c.truth_clusters > 1;
  return n;
}

std::size_t Report::fragmented_truths() const {
  std::size_t n = 0;
  for (const auto& t : truths) n += t.fragments > 1;
  return n;
}

double Report::weighted_purity() const {
  double acc = 0.0;
  std::size_t total = 0;
  for (const auto& c : clusters) {
    acc += c.purity * static_cast<double>(c.size);
    total += c.size;
  }
  return total == 0 ? 1.0 : acc / static_cast<double>(total);
}

Report build_report(const std::vector<std::uint32_t>& predicted,
                    const std::vector<std::uint32_t>& truth) {
  ESTCLUST_CHECK(predicted.size() == truth.size());
  Report report;
  report.pairs = count_pairs(predicted, truth);

  // predicted label -> (truth gene -> count)
  std::map<std::uint32_t, std::map<std::uint32_t, std::size_t>> joint;
  std::map<std::uint32_t, std::set<std::uint32_t>> truth_spread;
  std::map<std::uint32_t, std::size_t> truth_size;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    ++joint[predicted[i]][truth[i]];
    truth_spread[truth[i]].insert(predicted[i]);
    ++truth_size[truth[i]];
  }

  for (const auto& [label, genes] : joint) {
    ClusterDiagnostics d;
    d.label = label;
    d.truth_clusters = genes.size();
    std::size_t largest = 0;
    for (const auto& [gene, count] : genes) {
      d.size += count;
      largest = std::max(largest, count);
    }
    d.purity = static_cast<double>(largest) / static_cast<double>(d.size);
    report.clusters.push_back(d);
  }
  std::sort(report.clusters.begin(), report.clusters.end(),
            [](const ClusterDiagnostics& a, const ClusterDiagnostics& b) {
              if (a.size != b.size) return a.size > b.size;
              return a.label < b.label;
            });

  for (const auto& [gene, spread] : truth_spread) {
    TruthDiagnostics t;
    t.gene = gene;
    t.size = truth_size[gene];
    t.fragments = spread.size();
    report.truths.push_back(t);
  }
  std::sort(report.truths.begin(), report.truths.end(),
            [](const TruthDiagnostics& a, const TruthDiagnostics& b) {
              if (a.fragments != b.fragments) return a.fragments > b.fragments;
              return a.gene < b.gene;
            });
  return report;
}

}  // namespace estclust::quality
