// Clustering quality metrics (§4.1).
//
// A predicted clustering is compared with the correct clustering at pair
// granularity: each unordered EST pair is a true/false positive/negative
// depending on whether the pair is co-clustered in the prediction and in
// the truth. From the four counts the paper derives:
//   overlap quality  OQ = TP / (TP + FP + FN)
//   over-prediction  OV = FP / (TP + FP)
//   under-prediction UN = FN / (TP + FN)
//   correlation      CC = (TP·TN − FP·FN) /
//                         sqrt((TP+FP)(TN+FN)(TP+FN)(TN+FP))
#pragma once

#include <cstdint>
#include <vector>

namespace estclust::quality {

struct PairCounts {
  std::uint64_t tp = 0;
  std::uint64_t fp = 0;
  std::uint64_t tn = 0;
  std::uint64_t fn = 0;

  std::uint64_t total() const { return tp + fp + tn + fn; }

  /// Metrics returned as percentages in [0, 100] to match the paper's
  /// Table 2. Degenerate denominators yield the ideal value (no predicted
  /// pairs => no over-prediction, etc.).
  double overlap_quality() const;   // OQ
  double over_prediction() const;   // OV
  double under_prediction() const;  // UN
  double correlation() const;       // CC
};

/// Counts pairs in O(n + clusters) time via cluster-size contingency
/// arithmetic rather than the O(n²) literal pair sweep: predicted and truth
/// labels are arbitrary per-element cluster ids (equal label = same
/// cluster). Both vectors must have the same length.
PairCounts count_pairs(const std::vector<std::uint32_t>& predicted,
                       const std::vector<std::uint32_t>& truth);

/// O(n²) reference implementation for validation in tests.
PairCounts count_pairs_reference(const std::vector<std::uint32_t>& predicted,
                                 const std::vector<std::uint32_t>& truth);

}  // namespace estclust::quality
