#include "mpr/fault.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "util/check.hpp"

namespace estclust::mpr {

namespace {

double parse_double(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  ESTCLUST_CHECK_MSG(end != nullptr && *end == '\0' && !value.empty(),
                     "--faults: bad number for " + key + ": " + value);
  return v;
}

std::uint64_t parse_u64(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  ESTCLUST_CHECK_MSG(end != nullptr && *end == '\0' && !value.empty(),
                     "--faults: bad integer for " + key + ": " + value);
  return static_cast<std::uint64_t>(v);
}

}  // namespace

void FaultSpec::validate() const {
  if (!enabled) return;
  ESTCLUST_CHECK_MSG(drop >= 0.0 && drop < 1.0,
                     "--faults: drop must be in [0, 1)");
  ESTCLUST_CHECK_MSG(dup >= 0.0 && dup <= 1.0,
                     "--faults: dup must be in [0, 1]");
  ESTCLUST_CHECK_MSG(delay >= 0.0 && delay <= 1.0,
                     "--faults: delay must be in [0, 1]");
  ESTCLUST_CHECK_MSG(delay_mean >= 0.0, "--faults: delay-mean must be >= 0");
  ESTCLUST_CHECK_MSG(rto > 0.0, "--faults: rto must be > 0");
  ESTCLUST_CHECK_MSG(backoff >= 1.0, "--faults: backoff must be >= 1");
  ESTCLUST_CHECK_MSG(max_attempts >= 1, "--faults: max-attempts must be >= 1");
  ESTCLUST_CHECK_MSG(deadline > 0.0, "--faults: deadline must be > 0");
  for (const RankDeath& d : deaths) {
    ESTCLUST_CHECK_MSG(d.rank >= 1,
                       "--faults: kill targets a slave rank (rank >= 1); "
                       "the master (rank 0) cannot be killed");
    ESTCLUST_CHECK_MSG(d.vtime >= 0.0, "--faults: kill time must be >= 0");
  }
}

FaultSpec parse_fault_spec(const std::string& spec) {
  FaultSpec out;
  if (spec.empty() || spec == "off") return out;
  out.enabled = true;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    ESTCLUST_CHECK_MSG(eq != std::string::npos,
                       "--faults: expected key=value, got: " + item);
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "seed") {
      out.seed = parse_u64(key, value);
    } else if (key == "drop") {
      out.drop = parse_double(key, value);
    } else if (key == "dup") {
      out.dup = parse_double(key, value);
    } else if (key == "delay") {
      out.delay = parse_double(key, value);
    } else if (key == "delay-mean") {
      out.delay_mean = parse_double(key, value);
    } else if (key == "rto") {
      out.rto = parse_double(key, value);
    } else if (key == "backoff") {
      out.backoff = parse_double(key, value);
    } else if (key == "max-attempts") {
      out.max_attempts = static_cast<int>(parse_u64(key, value));
    } else if (key == "deadline") {
      out.deadline = parse_double(key, value);
    } else if (key == "kill") {
      const std::size_t at = value.find('@');
      ESTCLUST_CHECK_MSG(at != std::string::npos,
                         "--faults: kill expects RANK@VTIME, got: " + value);
      RankDeath d;
      d.rank = static_cast<int>(parse_u64(key, value.substr(0, at)));
      d.vtime = parse_double(key, value.substr(at + 1));
      out.deaths.push_back(d);
    } else {
      ESTCLUST_CHECK_MSG(false, "--faults: unknown key: " + key);
    }
  }
  out.validate();
  return out;
}

std::string format_fault_spec(const FaultSpec& spec) {
  if (!spec.enabled) return "off";
  std::ostringstream os;
  os << "seed=" << spec.seed << ",drop=" << spec.drop << ",dup=" << spec.dup
     << ",delay=" << spec.delay << ",delay-mean=" << spec.delay_mean
     << ",rto=" << spec.rto << ",backoff=" << spec.backoff
     << ",max-attempts=" << spec.max_attempts
     << ",deadline=" << spec.deadline;
  for (const RankDeath& d : spec.deaths) {
    os << ",kill=" << d.rank << "@" << d.vtime;
  }
  return os.str();
}

FaultPlan::FaultPlan(const FaultSpec& spec, int nranks) : spec_(spec) {
  ESTCLUST_CHECK_MSG(spec.enabled, "FaultPlan requires an enabled spec");
  spec_.validate();
  death_vtime_.assign(static_cast<std::size_t>(nranks),
                      std::numeric_limits<double>::infinity());
  for (const RankDeath& d : spec_.deaths) {
    ESTCLUST_CHECK_MSG(d.rank < nranks, "--faults: kill rank out of range");
    // Two kills of the same rank: the earlier one wins.
    auto& t = death_vtime_[static_cast<std::size_t>(d.rank)];
    t = std::min(t, d.vtime);
  }
  streams_.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    // Distinct, well-mixed stream per sender; Prng's splitmix seeding
    // decorrelates the consecutive inputs.
    streams_.emplace_back(spec_.seed + 0x9e3779b97f4a7c15ULL *
                                           (static_cast<std::uint64_t>(r) + 1));
  }
}

SendFate FaultPlan::fate(int src) {
  SendFate f;
  Prng& rng = streams_[static_cast<std::size_t>(src)];
  // Count consecutive lost attempts; the surviving attempt's delivery time
  // carries the whole backoff schedule. Draws happen unconditionally in a
  // fixed order so the stream stays aligned across knob settings with the
  // same probabilities.
  double timeout = spec_.rto;
  while (f.attempts < spec_.max_attempts && rng.bernoulli(spec_.drop)) {
    f.extra_delay += timeout;
    timeout *= spec_.backoff;
    ++f.attempts;
  }
  if (rng.bernoulli(spec_.delay)) {
    // Bounded deterministic jitter: uniform in [0, 2*mean], mean delay_mean.
    f.delayed = true;
    f.extra_delay += 2.0 * spec_.delay_mean * rng.uniform01();
  } else {
    rng.uniform01();  // keep the stream in lockstep with the delayed case
  }
  if (rng.bernoulli(spec_.dup)) {
    f.copies = 2;
    // The duplicate models a spurious retransmit one further timeout out.
    f.dup_delay = f.extra_delay + timeout;
  }
  return f;
}

bool FaultPlan::death_scheduled(int rank) const {
  return rank >= 0 && rank < static_cast<int>(death_vtime_.size()) &&
         death_vtime_[static_cast<std::size_t>(rank)] !=
             std::numeric_limits<double>::infinity();
}

double FaultPlan::death_vtime(int rank) const {
  if (rank < 0 || rank >= static_cast<int>(death_vtime_.size())) {
    return std::numeric_limits<double>::infinity();
  }
  return death_vtime_[static_cast<std::size_t>(rank)];
}

bool FaultPlan::dead_at(int rank, double now) const {
  return now >= death_vtime(rank);
}

}  // namespace estclust::mpr
