#include "mpr/communicator.hpp"

#include <algorithm>

#include "mpr/fault.hpp"
#include "mpr/runtime.hpp"
#include "util/check.hpp"

namespace estclust::mpr {

Communicator::Communicator(Runtime& rt, int rank) : rt_(rt), rank_(rank) {
  if (rt_.tracing()) {
    tracer_ = &rt_.tracer()->rank(rank_);
    trace_flows_ = rt_.trace_message_flows();
  }
  check_ = rt_.check_sink();
  fault_ = rt_.fault_plan();
}

std::string Communicator::check_op_label() const {
  const int depth = std::min(check_op_depth_, kMaxCheckOpDepth);
  if (depth == 0) return "recv";
  std::string label = check_ops_[0];
  for (int i = 1; i < depth; ++i) {
    label += '/';
    label += check_ops_[i];
  }
  return label;
}

int Communicator::size() const { return rt_.size(); }

VirtualClock& Communicator::clock() { return rt_.clock(rank_); }

const CostModel& Communicator::cost_model() const { return rt_.cost_model(); }

RankStats& Communicator::stats() { return rt_.stats(rank_); }

obs::MetricsRegistry& Communicator::metrics() {
  if (check_) check_->guard_access(rank_, "metrics");
  return rt_.metrics(rank_);
}

void Communicator::charge(double unit_cost, std::uint64_t count) {
  clock().advance(unit_cost * static_cast<double>(count));
}

void Communicator::send_internal(int dest, int tag, Buffer payload,
                                 double extra_delay) {
  ESTCLUST_CHECK(dest >= 0 && dest < size());
  const CostModel& cm = cost_model();
  VirtualClock& clk = clock();
  clk.advance_comm(cm.send_overhead);
  Message m;
  m.src = rank_;
  m.tag = tag;
  m.arrival_vtime = clk.time() + cm.message_cost(payload.size()) + extra_delay;
  auto& st = stats();
  ++st.messages_sent;
  st.bytes_sent += payload.size();
  if (tracer_ && trace_flows_) {
    // Flow ids are (rank+1) ## per-rank sequence, so they are globally
    // unique and identical across same-seed runs.
    m.flow_id = (static_cast<std::uint64_t>(rank_ + 1) << 40) | flow_seq_++;
    tracer_->flow_out(m.flow_id, dest, payload.size(), tag);
  }
  m.payload = std::move(payload);
  const std::size_t bytes = m.payload.size();
  rt_.mailbox(dest).push(std::move(m));
  if (check_) {
    check_->on_send(rank_, dest, tag, bytes);
    check_->message_pushed(dest);
  }
}

void Communicator::send_faulted(int dest, int tag, Buffer payload) {
  ESTCLUST_CHECK(dest >= 0 && dest < size());
  const CostModel& cm = cost_model();
  VirtualClock& clk = clock();
  const SendFate f = fault_->fate(rank_);
  // Each lost attempt burned one timeout and one retransmission: the
  // sender's clock pays per attempt, the delivery carries the full
  // backoff schedule in extra_delay.
  clk.advance_comm(cm.send_overhead * static_cast<double>(f.attempts));
  auto& mx = metrics();
  if (f.attempts > 1) {
    mx.counter("fault.drops").add(static_cast<std::uint64_t>(f.attempts - 1));
    if (tracer_) {
      tracer_->instant("fault.retransmit", "fault",
                       static_cast<std::uint64_t>(f.attempts - 1));
    }
  }
  if (f.delayed) {
    mx.counter("fault.delays").add(1);
    if (tracer_) {
      tracer_->instant("fault.delay", "fault",
                       static_cast<std::uint64_t>(dest));
    }
  }
  const double base = clk.time() + cm.message_cost(payload.size());
  auto& st = stats();
  Message m;
  m.src = rank_;
  m.tag = tag;
  m.arrival_vtime = base + f.extra_delay;
  ++st.messages_sent;
  st.bytes_sent += payload.size();
  if (tracer_ && trace_flows_) {
    m.flow_id = (static_cast<std::uint64_t>(rank_ + 1) << 40) | flow_seq_++;
    tracer_->flow_out(m.flow_id, dest, payload.size(), tag);
  }
  Message dup;
  const bool duplicated = f.copies == 2;
  if (duplicated) {
    dup.src = rank_;
    dup.tag = tag;
    dup.payload = payload;  // copy before the primary takes the buffer
    dup.arrival_vtime = base + f.dup_delay;
    ++st.messages_sent;
    st.bytes_sent += dup.payload.size();
    if (tracer_ && trace_flows_) {
      dup.flow_id = (static_cast<std::uint64_t>(rank_ + 1) << 40) | flow_seq_++;
      tracer_->flow_out(dup.flow_id, dest, dup.payload.size(), tag);
    }
    mx.counter("fault.dups").add(1);
    if (tracer_) {
      tracer_->instant("fault.duplicate", "fault",
                       static_cast<std::uint64_t>(dest));
    }
  }
  m.payload = std::move(payload);
  const std::size_t bytes = m.payload.size();
  if (duplicated) {
    // One lock for both copies, primary first: any receiver that saw the
    // primary finds the duplicate already queued, so duplicate drains at
    // protocol exit points are race-free and deterministic.
    const std::size_t dup_bytes = dup.payload.size();
    rt_.mailbox(dest).push_pair(std::move(m), std::move(dup));
    if (check_) {
      check_->on_send(rank_, dest, tag, bytes);
      check_->on_send(rank_, dest, tag, dup_bytes);
      check_->message_pushed(dest);
    }
  } else {
    rt_.mailbox(dest).push(std::move(m));
    if (check_) {
      check_->on_send(rank_, dest, tag, bytes);
      check_->message_pushed(dest);
    }
  }
}

void Communicator::send(int dest, int tag, Buffer payload) {
  ESTCLUST_CHECK_MSG(tag >= 0 && tag < kInternalTagBase,
                     "user tags must be in [0, 2^24)");
  if (fault_) {
    send_faulted(dest, tag, std::move(payload));
    return;
  }
  send_internal(dest, tag, std::move(payload));
}

void Communicator::send_delayed(int dest, int tag, Buffer payload,
                                double extra_delay) {
  ESTCLUST_CHECK_MSG(tag >= 0 && tag < kInternalTagBase,
                     "user tags must be in [0, 2^24)");
  ESTCLUST_CHECK(extra_delay >= 0.0);
  send_internal(dest, tag, std::move(payload), extra_delay);
}

Message Communicator::finish_recv(Message m) {
  VirtualClock& clk = clock();
  // Idle skipped at this receive, captured before sync_to consumes it.
  // Recorded on the flow event (never charged), it lets the critical-path
  // profiler identify binding receives without replaying the clocks.
  const double wait = std::max(0.0, m.arrival_vtime - clk.time());
  clk.sync_to(m.arrival_vtime);
  clk.advance_comm(cost_model().recv_overhead);
  ++stats().messages_received;
  if (check_) {
    check_->on_receive(rank_, m.src, m.tag, m.payload.size());
    check_->audit_clock(rank_, clk);
  }
  if (tracer_ && trace_flows_) {
    tracer_->flow_in(m.flow_id, m.src, m.payload.size(), m.tag, wait);
  }
  return m;
}

Message Communicator::recv_internal(int src, int tag) {
  Message m = check_ ? check_->blocking_pop(rt_.mailbox(rank_), rank_, src,
                                            tag, check_op_label())
                     : rt_.mailbox(rank_).pop(src, tag);
  return finish_recv(std::move(m));
}

Message Communicator::recv(int src, int tag) { return recv_internal(src, tag); }

Message Communicator::recv2(int src, int tag_a, int tag_b) {
  ESTCLUST_CHECK_MSG(src != kAnySource && tag_a >= 0 && tag_b >= 0 &&
                         tag_a < kInternalTagBase && tag_b < kInternalTagBase,
                     "recv2 requires a concrete source and two user tags");
  Message m = check_ ? check_->blocking_pop2(rt_.mailbox(rank_), rank_, src,
                                             tag_a, tag_b, check_op_label())
                     : rt_.mailbox(rank_).pop2(src, tag_a, tag_b);
  return finish_recv(std::move(m));
}

std::optional<Message> Communicator::try_recv(int src, int tag) {
  if (check_) check_->guard_access(rank_, "mailbox.try_recv");
  auto m = rt_.mailbox(rank_).try_pop(src, tag);
  if (!m) return std::nullopt;
  return finish_recv(std::move(*m));
}

bool Communicator::probe(int src, int tag) {
  if (check_) check_->guard_access(rank_, "mailbox.probe");
  return rt_.mailbox(rank_).probe(src, tag);
}

template <typename T>
T Communicator::allreduce_impl(T v, const std::function<T(T, T)>& op) {
  ESTCLUST_TRACE_SPAN(tracer_, "mpr.allreduce", "comm");
  CheckOpScope check_scope(*this, "mpr.allreduce");
  const int p = size();
  const int reduce_tag = kInternalTagBase + 2 * collective_seq_;
  const int bcast_tag = reduce_tag + 1;
  ++collective_seq_;
  if (p == 1) return v;

  // Binomial-tree reduce toward rank 0.
  for (int k = 1; k < p; k <<= 1) {
    if (rank_ & k) {
      BufWriter w;
      w.put(v);
      send_internal(rank_ - k, reduce_tag, w.take());
      break;
    }
    if (rank_ + k < p) {
      Message m = recv_internal(rank_ + k, reduce_tag);
      BufReader r(m.payload);
      v = op(v, r.get<T>());
    }
  }

  // Binomial-tree broadcast from rank 0. Parent of r is r with its lowest
  // set bit cleared; children are r + 2^j for descending j below that bit.
  int top = 1;
  while (top < p) top <<= 1;
  int lsb = rank_ == 0 ? top : (rank_ & -rank_);
  if (rank_ != 0) {
    Message m = recv_internal(rank_ & (rank_ - 1), bcast_tag);
    BufReader r(m.payload);
    v = r.get<T>();
  }
  for (int k = lsb >> 1; k >= 1; k >>= 1) {
    if (rank_ + k < p) {
      BufWriter w;
      w.put(v);
      send_internal(rank_ + k, bcast_tag, w.take());
    }
  }
  return v;
}

void Communicator::barrier() {
  ESTCLUST_TRACE_SPAN(tracer_, "mpr.barrier", "comm");
  CheckOpScope check_scope(*this, "mpr.barrier");
  allreduce_impl<std::uint64_t>(
      0, [](std::uint64_t a, std::uint64_t b) { return a | b; });
}

std::uint64_t Communicator::allreduce_sum(std::uint64_t v) {
  return allreduce_impl<std::uint64_t>(
      v, [](std::uint64_t a, std::uint64_t b) { return a + b; });
}

double Communicator::allreduce_sum(double v) {
  return allreduce_impl<double>(v, [](double a, double b) { return a + b; });
}

double Communicator::allreduce_max(double v) {
  return allreduce_impl<double>(
      v, [](double a, double b) { return std::max(a, b); });
}

std::uint64_t Communicator::allreduce_max(std::uint64_t v) {
  return allreduce_impl<std::uint64_t>(
      v, [](std::uint64_t a, std::uint64_t b) { return std::max(a, b); });
}

std::vector<std::uint64_t> Communicator::allreduce_sum_vec(
    std::vector<std::uint64_t> v) {
  ESTCLUST_TRACE_SPAN(tracer_, "mpr.allreduce", "comm");
  CheckOpScope check_scope(*this, "mpr.allreduce_vec");
  const int p = size();
  const int reduce_tag = kInternalTagBase + 2 * collective_seq_;
  const int bcast_tag = reduce_tag + 1;
  ++collective_seq_;
  if (p == 1) return v;

  for (int k = 1; k < p; k <<= 1) {
    if (rank_ & k) {
      BufWriter w;
      w.put_vec(v);
      send_internal(rank_ - k, reduce_tag, w.take());
      break;
    }
    if (rank_ + k < p) {
      Message m = recv_internal(rank_ + k, reduce_tag);
      BufReader r(m.payload);
      auto other = r.get_vec<std::uint64_t>();
      ESTCLUST_CHECK(other.size() == v.size());
      for (std::size_t i = 0; i < v.size(); ++i) v[i] += other[i];
      charge(cost_model().byte_op, v.size() * 8);
    }
  }

  int top = 1;
  while (top < p) top <<= 1;
  int lsb = rank_ == 0 ? top : (rank_ & -rank_);
  if (rank_ != 0) {
    Message m = recv_internal(rank_ & (rank_ - 1), bcast_tag);
    BufReader r(m.payload);
    v = r.get_vec<std::uint64_t>();
  }
  for (int k = lsb >> 1; k >= 1; k >>= 1) {
    if (rank_ + k < p) {
      BufWriter w;
      w.put_vec(v);
      send_internal(rank_ + k, bcast_tag, w.take());
    }
  }
  return v;
}

std::vector<std::uint64_t> Communicator::allgather(std::uint64_t v) {
  ESTCLUST_TRACE_SPAN(tracer_, "mpr.allgather", "comm");
  CheckOpScope check_scope(*this, "mpr.allgather");
  const int p = size();
  const int gather_tag = kInternalTagBase + 2 * collective_seq_;
  const int bcast_tag = gather_tag + 1;
  ++collective_seq_;
  std::vector<std::uint64_t> all(p, 0);
  all[rank_] = v;
  if (p == 1) return all;

  if (rank_ == 0) {
    for (int r = 1; r < p; ++r) {
      Message m = recv_internal(r, gather_tag);
      BufReader br(m.payload);
      all[r] = br.get<std::uint64_t>();
    }
  } else {
    BufWriter w;
    w.put(v);
    send_internal(0, gather_tag, w.take());
  }

  int top = 1;
  while (top < p) top <<= 1;
  int lsb = rank_ == 0 ? top : (rank_ & -rank_);
  if (rank_ != 0) {
    Message m = recv_internal(rank_ & (rank_ - 1), bcast_tag);
    BufReader br(m.payload);
    all = br.get_vec<std::uint64_t>();
  }
  for (int k = lsb >> 1; k >= 1; k >>= 1) {
    if (rank_ + k < p) {
      BufWriter w;
      w.put_vec(all);
      send_internal(rank_ + k, bcast_tag, w.take());
    }
  }
  return all;
}

Buffer Communicator::broadcast(Buffer from_root) {
  ESTCLUST_TRACE_SPAN(tracer_, "mpr.broadcast", "comm");
  CheckOpScope check_scope(*this, "mpr.broadcast");
  const int p = size();
  const int tag = kInternalTagBase + 2 * collective_seq_;
  ++collective_seq_;
  if (p == 1) return from_root;

  int top = 1;
  while (top < p) top <<= 1;
  int lsb = rank_ == 0 ? top : (rank_ & -rank_);
  Buffer data = std::move(from_root);
  if (rank_ != 0) {
    Message m = recv_internal(rank_ & (rank_ - 1), tag);
    data = std::move(m.payload);
  }
  for (int k = lsb >> 1; k >= 1; k >>= 1) {
    if (rank_ + k < p) {
      send_internal(rank_ + k, tag, data);  // copy: several children
    }
  }
  return data;
}

std::vector<Buffer> Communicator::all_to_all(std::vector<Buffer> sendbufs) {
  ESTCLUST_TRACE_SPAN(tracer_, "mpr.all_to_all", "comm");
  CheckOpScope check_scope(*this, "mpr.all_to_all");
  const int p = size();
  ESTCLUST_CHECK(static_cast<int>(sendbufs.size()) == p);
  const int tag = kInternalTagBase + 2 * collective_seq_;
  ++collective_seq_;

  std::vector<Buffer> result(p);
  // Local copy costs byte_op per byte; remote buffers pay the message cost.
  charge(cost_model().byte_op, sendbufs[rank_].size());
  result[rank_] = std::move(sendbufs[rank_]);
  for (int off = 1; off < p; ++off) {
    int dest = (rank_ + off) % p;
    send_internal(dest, tag, std::move(sendbufs[dest]));
  }
  for (int off = 1; off < p; ++off) {
    int src = (rank_ - off % p + p) % p;
    Message m = recv_internal(src, tag);
    result[src] = std::move(m.payload);
  }
  return result;
}

double run_ranks(int nranks, const CostModel& cm,
                 const std::function<void(Communicator&)>& rank_main) {
  Runtime rt(nranks, cm);
  rt.run(rank_main);
  return rt.elapsed_vtime();
}

}  // namespace estclust::mpr
