// Per-rank incoming message queue.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "mpr/message.hpp"

namespace estclust::mpr {

/// First tag value reserved for runtime-internal traffic (collectives).
/// User code must use tags in [0, kInternalTagBase); a wildcard receive
/// (tag = kAnyTag) matches user tags only, so collective traffic can never
/// be stolen by application receives.
inline constexpr int kInternalTagBase = 1 << 24;
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// Lightweight description of a queued message (for checker reports).
struct PendingMessage {
  int src;
  int tag;
  std::size_t bytes;
};

/// Multi-producer single-consumer mailbox with (src, tag) matching.
/// Messages that don't match a pending receive stay queued in FIFO order.
class Mailbox {
 public:
  void push(Message&& m);

  /// Queues two messages back-to-back under one lock. The fault layer's
  /// duplicate delivery uses this: a consumer that observed the first
  /// copy is guaranteed to find the second already queued, so duplicate
  /// drains are deterministic.
  void push_pair(Message&& first, Message&& second);

  /// Blocks until a message matching (src, tag) is available and removes it.
  /// src = kAnySource matches any sender; tag = kAnyTag matches any *user*
  /// tag (see kInternalTagBase).
  Message pop(int src, int tag);

  /// Blocks until a message matching (src, tag_a) OR (src, tag_b) is
  /// available and removes the first such message in FIFO order. The FIFO
  /// scan preserves per-sender program order, so when one peer sends on
  /// both tags the earlier send is always delivered first — the fault
  /// layer's recv2 relies on this to dispatch deterministically.
  Message pop2(int src, int tag_a, int tag_b);

  /// Non-blocking variant.
  std::optional<Message> try_pop(int src, int tag);

  /// Non-blocking two-tag variant.
  std::optional<Message> try_pop2(int src, int tag_a, int tag_b);

  /// True iff a matching message is queued right now.
  bool probe(int src, int tag);

  /// Two-tag probe matching the pop2 predicate.
  bool probe2(int src, int tag_a, int tag_b);

  std::size_t size();

  /// Snapshot of the queued messages in FIFO order (src, tag, payload
  /// size). Used by the checker for deadlock and finalize-hygiene reports.
  std::vector<PendingMessage> pending();

 private:
  static bool matches(const Message& m, int src, int tag);
  std::optional<Message> pop_locked(int src, int tag);
  std::optional<Message> pop2_locked(int src, int tag_a, int tag_b);

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
};

}  // namespace estclust::mpr
