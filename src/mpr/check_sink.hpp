// Hook interface between the message-passing runtime and the correctness
// checker (src/check/).
//
// The runtime never depends on the checker library: Runtime holds a
// CheckSink pointer (null by default) and every hook call is guarded by a
// null check, so with checking off the send/recv paths are byte-for-byte
// the ones the seed shipped. src/check/ implements the interface and
// installs itself via check::enable(Runtime&, CheckMode).
#pragma once

#include <cstdint>
#include <string>

#include "mpr/message.hpp"
#include "util/check.hpp"

namespace estclust::mpr {

class Mailbox;
class VirtualClock;

/// How strictly the runtime-verification layer reacts to findings.
///  - kOff:    no checker installed; zero overhead, bit-identical results.
///  - kWarn:   findings are logged and collected; only unrecoverable
///             conditions (deadlock) abort the run.
///  - kStrict: every finding aborts the run with a CheckError report.
enum class CheckMode { kOff, kWarn, kStrict };

/// Thrown by the checker into ranks whose blocking receive was cancelled
/// because another rank already diagnosed a failure (e.g. a deadlock).
/// The runtime treats it as a secondary error: the full report is thrown
/// from Runtime::run instead.
class CheckAbort : public CheckError {
 public:
  using CheckError::CheckError;
};

class CheckSink {
 public:
  virtual ~CheckSink() = default;

  /// Called once per Runtime::run, before any rank thread starts.
  virtual void begin_run(int nranks) = 0;

  /// Called on the rank's own thread before its Communicator exists;
  /// records the owner thread for the race guards.
  virtual void rank_started(int rank) = 0;

  /// Called on the rank's own thread after rank_main returns or throws.
  virtual void rank_finished(int rank, std::uint64_t collectives,
                             bool crashed) = 0;

  /// Blocking receive with deadlock detection. Replaces Mailbox::pop for
  /// every blocking receive while checking is enabled. `op` names the
  /// operation for wait-for-graph reports ("recv", "mpr.barrier", ...).
  virtual Message blocking_pop(Mailbox& mb, int rank, int src, int tag,
                               std::string op) = 0;

  /// Two-tag variant backing Communicator::recv2 (the fault layer's
  /// report-or-death-notice wait); matches Mailbox::pop2's predicate.
  virtual Message blocking_pop2(Mailbox& mb, int rank, int src, int tag_a,
                                int tag_b, std::string op) = 0;

  /// Called after a message was pushed into `dest`'s mailbox; wakes
  /// checked waiters.
  virtual void message_pushed(int dest) = 0;

  /// Hygiene accounting (per-rank, called from the owning thread only).
  virtual void on_send(int rank, int dest, int tag, std::size_t bytes) = 0;
  virtual void on_receive(int rank, int src, int tag, std::size_t bytes) = 0;

  /// Lockset-style race guard: `rank`'s mailbox-consumer operations and
  /// metrics registry may only be touched from the rank's own thread.
  virtual void guard_access(int rank, const char* what) = 0;

  /// Enforces busy + comm + idle == total on the rank's clock.
  virtual void audit_clock(int rank, const VirtualClock& clk) = 0;

  /// Post-join audits (message hygiene, clock accounting, collective
  /// balance). Throws CheckError in strict mode when findings exist, and
  /// always throws the deadlock report when a deadlock was diagnosed.
  virtual void finalize() = 0;
};

}  // namespace estclust::mpr
