// Per-rank handle into the message-passing runtime.
//
// Mirrors the dozen MPI calls the paper's software needs: point-to-point
// send/recv/probe, barrier, reductions, gather and all-to-all-v. Collectives
// are implemented with real point-to-point messages over a binomial tree so
// their virtual-time cost is the genuine O(log p) of the algorithm, not a
// formula.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "mpr/check_sink.hpp"
#include "mpr/clock.hpp"
#include "mpr/mailbox.hpp"
#include "mpr/message.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace estclust::mpr {

class FaultPlan;
class Runtime;

/// Per-rank communication statistics (for benchmark reporting).
struct RankStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_received = 0;
};

class Communicator {
 public:
  Communicator(Runtime& rt, int rank);

  Communicator(const Communicator&) = delete;
  Communicator& operator=(const Communicator&) = delete;

  int rank() const { return rank_; }
  int size() const;

  /// Sends `payload` to `dest` with user tag `tag` (0 <= tag <
  /// kInternalTagBase). Advances the sender's clock by the send overhead.
  void send(int dest, int tag, Buffer payload);

  /// Blocking receive; src/tag may be kAnySource / kAnyTag. On return the
  /// receiver's clock has been synced to the message arrival time.
  Message recv(int src = kAnySource, int tag = kAnyTag);

  /// Two-tag blocking receive: the first queued message from `src`
  /// carrying either tag, in FIFO (per-sender program) order. The pace
  /// master uses it to wait for a slave's REPORT while staying responsive
  /// to its death notice. Wildcards are not supported.
  Message recv2(int src, int tag_a, int tag_b);

  /// Sends with an extra modeled delivery delay on top of the normal
  /// message cost, bypassing fault injection. The pace death notice rides
  /// it: arrival at death time + deadline models the master noticing a
  /// missed heartbeat deadline. Fault-free runs never call this.
  void send_delayed(int dest, int tag, Buffer payload, double extra_delay);

  /// Non-blocking receive. Only returns a message whose modeled arrival time
  /// is <= the receiver's current clock *or* any queued message if the
  /// receiver is idle-polling (we sync the clock forward in that case).
  std::optional<Message> try_recv(int src = kAnySource, int tag = kAnyTag);

  /// True iff a matching message is queued.
  bool probe(int src = kAnySource, int tag = kAnyTag);

  /// Synchronizes all ranks; clocks advance to the common release time.
  void barrier();

  /// Reductions over all ranks (every rank gets the result).
  std::uint64_t allreduce_sum(std::uint64_t v);
  double allreduce_sum(double v);
  double allreduce_max(double v);
  std::uint64_t allreduce_max(std::uint64_t v);

  /// Element-wise sum of equal-length vectors across ranks.
  std::vector<std::uint64_t> allreduce_sum_vec(std::vector<std::uint64_t> v);

  /// Gather one value per rank to every rank, indexed by rank.
  std::vector<std::uint64_t> allgather(std::uint64_t v);

  /// Broadcasts rank 0's buffer to every rank over a binomial tree; the
  /// argument is ignored on non-root ranks.
  Buffer broadcast(Buffer from_root);

  /// Personalized all-to-all: sendbufs[r] goes to rank r; returns the
  /// buffers received, indexed by source rank. sendbufs.size() must be p.
  std::vector<Buffer> all_to_all(std::vector<Buffer> sendbufs);

  /// Virtual clock of this rank.
  VirtualClock& clock();
  const CostModel& cost_model() const;

  /// Charges `count` units of the given per-unit cost to this rank's clock.
  void charge(double unit_cost, std::uint64_t count);

  RankStats& stats();

  /// This rank's trace sink, or null when the runtime has tracing
  /// disabled. Pass to ESTCLUST_TRACE_SPAN / record phase events with it;
  /// recording never advances the virtual clock.
  obs::RankTracer* tracer() { return tracer_; }

  /// This rank's metrics registry (always available; merged across ranks
  /// by Runtime::merged_metrics after the run).
  obs::MetricsRegistry& metrics();

  /// Number of collectives this rank has entered (SPMD programs must agree
  /// across ranks; the checker audits the balance at finalize).
  std::uint64_t collective_count() const {
    return static_cast<std::uint64_t>(collective_seq_);
  }

  /// The runtime's fault plan, or null when fault injection is off.
  FaultPlan* fault_plan() { return fault_; }

 private:
  void send_internal(int dest, int tag, Buffer payload,
                     double extra_delay = 0.0);
  /// Protocol send under an installed fault plan: decides drop count,
  /// duplication and delay from the sender's fault stream and charges one
  /// send overhead per transmission attempt. Delivery is guaranteed even
  /// to dead ranks (see mpr/fault.hpp for why swallowing would deadlock).
  void send_faulted(int dest, int tag, Buffer payload);
  Message recv_internal(int src, int tag);
  /// Clock sync, overhead charge, stats and check/trace hooks shared by
  /// every receive path.
  Message finish_recv(Message m);

  /// Joins the active CheckOpScope labels ("outer/inner") for the
  /// checker's wait-for-graph reports; "recv" when no scope is active.
  std::string check_op_label() const;

  /// Binomial-tree reduce-to-0 + broadcast of a fixed-size payload.
  template <typename T>
  T allreduce_impl(T v, const std::function<T(T, T)>& op);

  friend class CheckOpScope;

  Runtime& rt_;
  int rank_;
  int collective_seq_ = 0;  // matches across ranks: SPMD collective order
  obs::RankTracer* tracer_ = nullptr;  // null when tracing is disabled
  bool trace_flows_ = false;
  std::uint64_t flow_seq_ = 0;  // per-rank message sequence for flow ids
  CheckSink* check_ = nullptr;  // null when checking is disabled
  FaultPlan* fault_ = nullptr;  // null when fault injection is disabled

  static constexpr int kMaxCheckOpDepth = 4;
  const char* check_ops_[kMaxCheckOpDepth] = {};
  int check_op_depth_ = 0;
};

/// Labels the enclosed communication for checker reports: a rank blocked
/// inside the scope shows up as "label/..." in the wait-for graph instead
/// of a bare "recv". Nests (outermost label first); the runtime's own
/// collectives push their "mpr.*" names so "pace.master.await_report" and
/// "gst.suffix_route/mpr.all_to_all" read as call paths. Two pointer
/// writes when checking is off.
class CheckOpScope {
 public:
  CheckOpScope(Communicator& comm, const char* label) : comm_(comm) {
    if (comm_.check_op_depth_ < Communicator::kMaxCheckOpDepth) {
      comm_.check_ops_[comm_.check_op_depth_] = label;
    }
    ++comm_.check_op_depth_;
  }
  ~CheckOpScope() { --comm_.check_op_depth_; }

  CheckOpScope(const CheckOpScope&) = delete;
  CheckOpScope& operator=(const CheckOpScope&) = delete;

 private:
  Communicator& comm_;
};

/// Runs `rank_main` on `nranks` ranks (one thread each) and returns the
/// parallel virtual run-time: the maximum final clock over all ranks.
/// Exceptions thrown by any rank are rethrown from the calling thread.
double run_ranks(int nranks, const CostModel& cm,
                 const std::function<void(Communicator&)>& rank_main);

}  // namespace estclust::mpr
