// Virtual time: LogP-style cost model and per-rank clocks.
//
// The paper reports wall-clock times on an IBM SP; this build runs all ranks
// as threads on one host, so scaling must be *modeled* rather than measured.
// Each rank advances a private virtual clock by charging accounted work
// (characters scanned, DP cells filled, pairs handled) at calibrated
// per-unit costs. A message sent at sender time t arrives at
//     t + send_overhead + latency + bytes / bandwidth
// and the receiver's clock jumps to max(receiver clock, arrival) on receipt.
// The reported run-time of a parallel phase is the max final clock.
//
// Default constants are calibrated so the Table 3 reproduction lands in the
// same order of magnitude as the paper's 375 MHz Power3 numbers; the *shape*
// of the curves is what the benchmarks check.
#pragma once

#include <cstdint>

namespace estclust::mpr {

/// Per-unit virtual costs (seconds).
struct CostModel {
  // Communication (LogP): o, L and 1/G, in the ballpark of a year-2002
  // IBM SP switch (MPI overhead ~10 us, latency ~25 us, ~100 MB/s).
  double send_overhead = 10.0e-6;  ///< sender-side per-message cost
  double recv_overhead = 10.0e-6;  ///< receiver-side per-message cost
  double latency = 25.0e-6;        ///< network latency per message
  double bandwidth = 100.0e6;      ///< payload bytes per second

  // Computation unit costs, roughly one cache-resident op each on a
  // 375 MHz Power3 (a handful of cycles plus memory traffic).
  double char_op = 60.0e-9;   ///< one character scan/bucket step in GST build
  double dp_cell = 30.0e-9;   ///< one dynamic-programming cell
  double pair_op = 120.0e-9;  ///< one generated-pair handling step (lsets)
  double sort_op = 15.0e-9;   ///< one comparison in node sorting
  double uf_op = 80.0e-9;     ///< one union-find find/union
  double byte_op = 2.0e-9;    ///< one byte of local copying/packing

  double message_cost(std::size_t payload_bytes) const {
    return latency + static_cast<double>(payload_bytes) / bandwidth;
  }
};

/// A rank's private virtual clock. Every second of virtual time is
/// attributed to exactly one of three buckets: busy (modeled local
/// computation), comm (per-message overheads charged by the communicator)
/// or idle (spans skipped by sync_to while waiting), so
/// time() == busy_time() + comm_time() + idle_time() always holds.
class VirtualClock {
 public:
  double time() const { return t_; }

  /// Advances by `seconds` of modeled local work.
  void advance(double seconds) {
    t_ += seconds;
    busy_ += seconds;
  }

  /// Advances by `seconds` of communication overhead (send/recv o of the
  /// LogP model). Kept separate from busy so per-rank breakdowns can show
  /// compute vs communication vs waiting.
  void advance_comm(double seconds) {
    t_ += seconds;
    comm_ += seconds;
  }

  /// Jumps forward to `t` if `t` is in the future (message arrival /
  /// barrier release). The skipped span counts as idle, not busy.
  void sync_to(double t) {
    if (t > t_) {
      idle_ += t - t_;
      t_ = t;
    }
  }

  /// Total virtual seconds spent in advance() (busy), as opposed to waiting.
  double busy_time() const { return busy_; }

  /// Virtual seconds of communication overhead (advance_comm).
  double comm_time() const { return comm_; }

  /// Virtual seconds skipped while waiting in sync_to.
  double idle_time() const { return idle_; }

  /// busy + comm: everything except waiting (the §4.2 utilization
  /// numerator).
  double active_time() const { return busy_ + comm_; }

  /// Read-only pointer to the clock's time field, for binding trace
  /// recorders without coupling obs to mpr.
  const double* time_ptr() const { return &t_; }

  void reset() {
    t_ = 0.0;
    busy_ = 0.0;
    comm_ = 0.0;
    idle_ = 0.0;
  }

 private:
  double t_ = 0.0;
  double busy_ = 0.0;
  double comm_ = 0.0;
  double idle_ = 0.0;
};

}  // namespace estclust::mpr
