// Runtime: owns the mailboxes, clocks, threads and observability state
// backing a rank group.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "mpr/check_sink.hpp"
#include "mpr/clock.hpp"
#include "mpr/communicator.hpp"
#include "mpr/fault.hpp"
#include "mpr/mailbox.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace estclust::mpr {

class Runtime {
 public:
  Runtime(int nranks, CostModel cm);

  int size() const { return static_cast<int>(mailboxes_.size()); }
  const CostModel& cost_model() const { return cm_; }

  Mailbox& mailbox(int rank) { return *mailboxes_[rank]; }
  VirtualClock& clock(int rank) { return clocks_[rank]; }
  RankStats& stats(int rank) { return stats_[rank]; }

  /// Attaches a TraceRecorder (one RankTracer per rank, stamped by that
  /// rank's virtual clock). Call before run(); no-op cost when never
  /// called. `message_flows` records a flow event pair per point-to-point
  /// message (the dominant share of trace volume on chatty runs).
  void enable_tracing(bool message_flows = true);
  bool tracing() const { return tracer_ != nullptr; }
  obs::TraceRecorder* tracer() { return tracer_.get(); }
  const obs::TraceRecorder* tracer() const { return tracer_.get(); }
  bool trace_message_flows() const { return trace_message_flows_; }

  /// Installs a correctness checker (see src/check/). All blocking
  /// receives then route through the sink's deadlock detector, and
  /// Runtime::run finishes with the sink's finalize audits. Call before
  /// run(); with no sink installed every hook is a skipped null check.
  void set_check_sink(std::shared_ptr<CheckSink> sink) {
    check_ = std::move(sink);
  }
  CheckSink* check_sink() { return check_.get(); }

  /// Installs a deterministic fault plan (see mpr/fault.hpp). Protocol
  /// sends then route through the plan's drop/duplicate/delay/death model.
  /// Call before run(); with no plan installed every hook is a skipped
  /// null check and the runs are byte-for-byte the seed's.
  void set_fault_plan(std::shared_ptr<FaultPlan> plan) {
    fault_ = std::move(plan);
  }
  FaultPlan* fault_plan() { return fault_.get(); }
  const FaultPlan* fault_plan() const { return fault_.get(); }

  /// Per-rank metrics registry (written by the rank's thread during run).
  obs::MetricsRegistry& metrics(int rank) { return metrics_[rank]; }

  /// Cross-rank view: counters summed, gauges by their MergeOp, stats and
  /// histograms merged. Includes the runtime's own "mpr.*" counters
  /// (messages/bytes sent, messages received) after run().
  obs::MetricsRegistry merged_metrics() const;

  /// Runs rank_main on every rank (rank 0..n-1), one std::thread each.
  /// Blocks until all ranks return; rethrows the first rank exception.
  void run(const std::function<void(Communicator&)>& rank_main);

  /// Max final virtual clock over ranks after run().
  double elapsed_vtime() const;

  /// Sum of per-rank active (busy + comm) virtual time (for utilization
  /// metrics).
  double total_busy_vtime() const;

  /// Per-rank busy/comm/idle/total split after run(), indexed by rank.
  std::vector<obs::RankTime> rank_times() const;

 private:
  CostModel cm_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<VirtualClock> clocks_;
  std::vector<RankStats> stats_;
  std::vector<obs::MetricsRegistry> metrics_;
  std::unique_ptr<obs::TraceRecorder> tracer_;
  bool trace_message_flows_ = true;
  std::shared_ptr<CheckSink> check_;
  std::shared_ptr<FaultPlan> fault_;
};

}  // namespace estclust::mpr
