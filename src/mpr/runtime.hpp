// Runtime: owns the mailboxes, clocks and threads backing a rank group.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "mpr/clock.hpp"
#include "mpr/communicator.hpp"
#include "mpr/mailbox.hpp"

namespace estclust::mpr {

class Runtime {
 public:
  Runtime(int nranks, CostModel cm);

  int size() const { return static_cast<int>(mailboxes_.size()); }
  const CostModel& cost_model() const { return cm_; }

  Mailbox& mailbox(int rank) { return *mailboxes_[rank]; }
  VirtualClock& clock(int rank) { return clocks_[rank]; }
  RankStats& stats(int rank) { return stats_[rank]; }

  /// Runs rank_main on every rank (rank 0..n-1), one std::thread each.
  /// Blocks until all ranks return; rethrows the first rank exception.
  void run(const std::function<void(Communicator&)>& rank_main);

  /// Max final virtual clock over ranks after run().
  double elapsed_vtime() const;

  /// Sum of per-rank busy virtual time (for utilization metrics).
  double total_busy_vtime() const;

 private:
  CostModel cm_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<VirtualClock> clocks_;
  std::vector<RankStats> stats_;
};

}  // namespace estclust::mpr
