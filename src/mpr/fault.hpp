// Deterministic fault injection for the message-passing runtime.
//
// A FaultPlan models an unreliable interconnect and scheduled rank
// failures on top of the virtual-time runtime. Every decision (drop,
// duplicate, delay, death) is drawn from a per-sender-rank Prng stream
// seeded from one plan seed, so a run under a given plan replays
// bit-identically regardless of thread scheduling.
//
// Loss is modeled analytically at the send site: the plan knows how many
// consecutive transmission attempts a message loses, so the communicator
// delivers exactly one surviving copy whose arrival time carries the full
// exponential-backoff retransmission schedule
//
//     arrival = t_send + sum_{i<k} rto * backoff^i + message_cost(bytes)
//
// for k lost attempts, and charges the sender one send overhead per
// attempt. Duplication delivers a second copy one further timeout later
// (a spurious retransmit); receivers must deduplicate by sequence number.
// Delivery is therefore guaranteed: messages addressed to a dead rank
// still land in its mailbox, are never consumed, and are excused by the
// checker's fault-aware finalize (swallowing them at the send site would
// deadlock a peer that is blocked but has not yet reached its own death
// checkpoint).
//
// Scheduled death: a rank listed in `deaths` stops participating at the
// first protocol checkpoint after its virtual clock passes the death
// time. The dying rank's protocol layer announces the failure with a
// message whose delivery is delayed by `deadline` — modeling the master
// noticing a missed heartbeat deadline — and the master recovers (see
// pace/master.cpp).
//
// The plan covers protocol traffic only (user tags); runtime collectives
// model a reliable fabric. With no plan installed every hook is a skipped
// null check and the wire behavior is byte-identical to the seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/prng.hpp"

namespace estclust::mpr {

/// Scheduled failure of one rank at a virtual time.
struct RankDeath {
  int rank = -1;
  double vtime = 0.0;
};

/// Parsed fault model (see parse_fault_spec for the CLI grammar).
struct FaultSpec {
  bool enabled = false;
  std::uint64_t seed = 20020811;  ///< per-sender streams derive from this
  double drop = 0.0;   ///< per-attempt loss probability, in [0, 1)
  double dup = 0.0;    ///< duplicate-delivery probability, in [0, 1]
  double delay = 0.0;  ///< injected-delay probability, in [0, 1]
  double delay_mean = 200e-6;  ///< mean injected delay (virtual seconds)
  double rto = 250e-6;         ///< initial retransmission timeout
  double backoff = 2.0;        ///< exponential backoff factor, >= 1
  int max_attempts = 16;       ///< retransmission cap (last attempt lands)
  double deadline = 2e-3;      ///< missed-heartbeat detection latency
  std::vector<RankDeath> deaths;  ///< slave ranks only (rank >= 1)

  /// CHECK-fails on out-of-range knobs or a death scheduled for rank 0
  /// (the master owns the clusters; its failure is unrecoverable here).
  void validate() const;
};

/// Parses a `--faults` argument. "off" (or empty) yields a disabled spec;
/// otherwise a comma-separated key=value list:
///
///   seed=U64  drop=P  dup=P  delay=P  delay-mean=SECONDS  rto=SECONDS
///   backoff=F  max-attempts=N  deadline=SECONDS  kill=RANK@VTIME
///
/// `kill` may repeat to schedule several deaths. Unknown keys CHECK-fail.
FaultSpec parse_fault_spec(const std::string& spec);

/// Canonical single-line rendering of a spec (for logs and reports).
std::string format_fault_spec(const FaultSpec& spec);

/// Sender-side outcome of one protocol send, decided deterministically by
/// the sender's fault stream.
struct SendFate {
  int attempts = 1;        ///< transmissions charged to the sender's clock
  int copies = 1;          ///< mailbox deliveries (1 or 2)
  bool delayed = false;    ///< jitter was injected (beyond retransmit delay)
  double extra_delay = 0;  ///< retransmit backoff + injected delay, copy 1
  double dup_delay = 0;    ///< total delay of the duplicate (copies == 2)
};

class FaultPlan {
 public:
  /// `spec` must be enabled and valid; `nranks` bounds the death table.
  FaultPlan(const FaultSpec& spec, int nranks);

  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  const FaultSpec& spec() const { return spec_; }

  /// Decides the fate of one protocol message. Must be called from rank
  /// `src`'s own thread (each rank owns a private stream; calls advance
  /// it, so the call sites must be deterministic protocol points).
  SendFate fate(int src);

  /// True iff `rank` has a scheduled death.
  bool death_scheduled(int rank) const;

  /// The scheduled death time of `rank` (infinity when none).
  double death_vtime(int rank) const;

  /// True iff `rank`'s scheduled death time has passed at virtual time
  /// `now` — i.e. a message sent to it now finds a closed endpoint.
  bool dead_at(int rank, double now) const;

  /// Missed-heartbeat detection latency (delivery delay of death notices).
  double deadline() const { return spec_.deadline; }

 private:
  FaultSpec spec_;
  std::vector<double> death_vtime_;  ///< per rank; infinity = immortal
  std::vector<Prng> streams_;        ///< per sender rank, thread-confined
};

}  // namespace estclust::mpr
