// Messages and POD serialization for the message-passing runtime.
//
// mpr plays the role MPI plays in the paper's implementation: rank-addressed
// point-to-point messages plus a handful of collectives. Payloads are flat
// byte buffers written/read with BufWriter/BufReader; only trivially
// copyable types, strings and vectors thereof are supported, which keeps the
// wire format obvious and portable.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "util/check.hpp"

namespace estclust::mpr {

using Buffer = std::vector<std::uint8_t>;

/// A delivered message. `arrival_vtime` is the virtual time at which the
/// LogP-style cost model says the message reaches the receiver.
struct Message {
  int src = -1;
  int tag = -1;
  Buffer payload;
  double arrival_vtime = 0.0;
  /// Deterministic per-sender id linking the send and receive trace flow
  /// events of this message (0 when tracing is off).
  std::uint64_t flow_id = 0;
};

/// Hard ceiling on a single wire payload (2 GiB). Far above anything the
/// protocol ships; its purpose is to catch runaway serialization (and let
/// tests exercise the overflow path with a smaller explicit cap).
inline constexpr std::size_t kMaxWireBytes = std::size_t{1} << 31;

/// Appends typed values to a Buffer. Bounded: every put checks the
/// writer's byte cap (mirroring BufReader's underflow discipline), so a
/// runaway or size-miscomputed message fails at the write site instead of
/// as an opaque allocation failure at the receiver.
class BufWriter {
 public:
  BufWriter() = default;
  /// A writer with a custom cap, for fixed-size protocol messages.
  explicit BufWriter(std::size_t max_bytes) : max_bytes_(max_bytes) {}

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put(const T& v) {
    check_room(sizeof(T));
    const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
    buf_.insert(buf_.end(), p, p + sizeof(T));
  }

  void put_string(std::string_view s) {
    check_room(sizeof(std::uint64_t) + s.size());
    put<std::uint64_t>(s.size());
    if (s.empty()) return;  // data() may be null for an empty view
    const auto* p = reinterpret_cast<const std::uint8_t*>(s.data());
    buf_.insert(buf_.end(), p, p + s.size());
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put_vec(const std::vector<T>& v) {
    ESTCLUST_CHECK_MSG(v.size() <= max_bytes_ / sizeof(T),
                       "BufWriter overflow: vector of " << v.size()
                           << " elements exceeds the " << max_bytes_
                           << "-byte payload cap");
    check_room(sizeof(std::uint64_t) + v.size() * sizeof(T));
    put<std::uint64_t>(v.size());
    if (v.empty()) return;  // data() may be null for an empty vector
    const auto* p = reinterpret_cast<const std::uint8_t*>(v.data());
    buf_.insert(buf_.end(), p, p + v.size() * sizeof(T));
  }

  /// Pre-sizes the backing buffer for `bytes` more payload, so a message
  /// whose exact size is known up front (the coalesced pace protocol
  /// messages compute theirs) serializes with a single allocation.
  void reserve(std::size_t bytes) {
    buf_.reserve(buf_.size() + std::min(bytes, max_bytes_));
  }

  Buffer take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }
  std::size_t max_bytes() const { return max_bytes_; }

 private:
  void check_room(std::size_t add) {
    ESTCLUST_CHECK_MSG(add <= max_bytes_ - buf_.size(),
                       "BufWriter overflow: " << buf_.size() << " + " << add
                           << " bytes exceeds the " << max_bytes_
                           << "-byte payload cap");
  }

  Buffer buf_;
  std::size_t max_bytes_ = kMaxWireBytes;
};

/// Reads typed values back out of a Buffer in write order.
class BufReader {
 public:
  explicit BufReader(std::span<const std::uint8_t> data) : data_(data) {}
  explicit BufReader(const Buffer& b) : data_(b.data(), b.size()) {}

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T get() {
    ESTCLUST_CHECK_MSG(pos_ + sizeof(T) <= data_.size(),
                       "BufReader underflow");
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::string get_string() {
    auto len = get<std::uint64_t>();
    // Compare against remaining() so a hostile/corrupt 64-bit length can
    // never overflow the arithmetic before the bound is applied.
    ESTCLUST_CHECK_MSG(len <= remaining(), "BufReader underflow");
    if (len == 0) return std::string();  // data() may be null when empty
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_),
                  static_cast<std::size_t>(len));
    pos_ += static_cast<std::size_t>(len);
    return s;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> get_vec() {
    auto len = get<std::uint64_t>();
    ESTCLUST_CHECK_MSG(len <= remaining() / sizeof(T),
                       "BufReader underflow: vector length " << len
                           << " exceeds the " << remaining()
                           << " bytes remaining");
    std::vector<T> v(static_cast<std::size_t>(len));
    if (!v.empty()) {  // data() may be null for an empty vector
      std::memcpy(v.data(), data_.data() + pos_, v.size() * sizeof(T));
    }
    pos_ += v.size() * sizeof(T);
    return v;
  }

  bool exhausted() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

  /// CHECKs that every payload byte was consumed. Codecs call this after
  /// decoding their last field so a truncated or garbage-extended payload
  /// (exactly what fault injection and corruption produce) fails loudly at
  /// the decode site instead of yielding a silently short message.
  void expect_exhausted(const char* what) const {
    ESTCLUST_CHECK_MSG(exhausted(), "BufReader: " << remaining()
                                        << " trailing bytes after decoding "
                                        << what);
  }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace estclust::mpr
