// Messages and POD serialization for the message-passing runtime.
//
// mpr plays the role MPI plays in the paper's implementation: rank-addressed
// point-to-point messages plus a handful of collectives. Payloads are flat
// byte buffers written/read with BufWriter/BufReader; only trivially
// copyable types, strings and vectors thereof are supported, which keeps the
// wire format obvious and portable.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "util/check.hpp"

namespace estclust::mpr {

using Buffer = std::vector<std::uint8_t>;

/// A delivered message. `arrival_vtime` is the virtual time at which the
/// LogP-style cost model says the message reaches the receiver.
struct Message {
  int src = -1;
  int tag = -1;
  Buffer payload;
  double arrival_vtime = 0.0;
  /// Deterministic per-sender id linking the send and receive trace flow
  /// events of this message (0 when tracing is off).
  std::uint64_t flow_id = 0;
};

/// Appends typed values to a Buffer.
class BufWriter {
 public:
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put(const T& v) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
    buf_.insert(buf_.end(), p, p + sizeof(T));
  }

  void put_string(std::string_view s) {
    put<std::uint64_t>(s.size());
    const auto* p = reinterpret_cast<const std::uint8_t*>(s.data());
    buf_.insert(buf_.end(), p, p + s.size());
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put_vec(const std::vector<T>& v) {
    put<std::uint64_t>(v.size());
    const auto* p = reinterpret_cast<const std::uint8_t*>(v.data());
    buf_.insert(buf_.end(), p, p + v.size() * sizeof(T));
  }

  Buffer take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  Buffer buf_;
};

/// Reads typed values back out of a Buffer in write order.
class BufReader {
 public:
  explicit BufReader(std::span<const std::uint8_t> data) : data_(data) {}
  explicit BufReader(const Buffer& b) : data_(b.data(), b.size()) {}

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T get() {
    ESTCLUST_CHECK_MSG(pos_ + sizeof(T) <= data_.size(),
                       "BufReader underflow");
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::string get_string() {
    auto len = get<std::uint64_t>();
    ESTCLUST_CHECK_MSG(pos_ + len <= data_.size(), "BufReader underflow");
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), len);
    pos_ += len;
    return s;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> get_vec() {
    auto len = get<std::uint64_t>();
    ESTCLUST_CHECK_MSG(pos_ + len * sizeof(T) <= data_.size(),
                       "BufReader underflow");
    std::vector<T> v(len);
    std::memcpy(v.data(), data_.data() + pos_, len * sizeof(T));
    pos_ += len * sizeof(T);
    return v;
  }

  bool exhausted() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace estclust::mpr
