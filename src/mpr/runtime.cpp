#include "mpr/runtime.hpp"

#include <algorithm>
#include <exception>
#include <mutex>
#include <thread>

#include "util/check.hpp"

namespace estclust::mpr {

Runtime::Runtime(int nranks, CostModel cm)
    : cm_(cm), clocks_(nranks), stats_(nranks) {
  ESTCLUST_CHECK(nranks > 0);
  mailboxes_.reserve(nranks);
  for (int i = 0; i < nranks; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

void Runtime::run(const std::function<void(Communicator&)>& rank_main) {
  const int p = size();
  std::vector<std::thread> threads;
  threads.reserve(p);
  std::exception_ptr first_error;
  std::mutex error_mutex;

  for (int r = 0; r < p; ++r) {
    threads.emplace_back([&, r] {
      Communicator comm(*this, r);
      try {
        rank_main(comm);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

double Runtime::elapsed_vtime() const {
  double t = 0.0;
  for (const auto& c : clocks_) t = std::max(t, c.time());
  return t;
}

double Runtime::total_busy_vtime() const {
  double t = 0.0;
  for (const auto& c : clocks_) t += c.busy_time();
  return t;
}

}  // namespace estclust::mpr
