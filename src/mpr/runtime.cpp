#include "mpr/runtime.hpp"

#include <algorithm>
#include <exception>
#include <mutex>
#include <thread>

#include "util/check.hpp"
#include "util/log.hpp"

namespace estclust::mpr {

Runtime::Runtime(int nranks, CostModel cm)
    : cm_(cm), clocks_(nranks), stats_(nranks), metrics_(nranks) {
  ESTCLUST_CHECK(nranks > 0);
  mailboxes_.reserve(nranks);
  for (int i = 0; i < nranks; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

void Runtime::enable_tracing(bool message_flows) {
  trace_message_flows_ = message_flows;
  tracer_ = std::make_unique<obs::TraceRecorder>(size());
  for (int r = 0; r < size(); ++r) {
    tracer_->rank(r).bind(r, clocks_[r].time_ptr(), tracer_->epoch());
  }
}

void Runtime::run(const std::function<void(Communicator&)>& rank_main) {
  const int p = size();
  std::vector<std::thread> threads;
  threads.reserve(p);
  std::exception_ptr first_error;
  std::mutex error_mutex;

  if (check_) check_->begin_run(p);
  for (int r = 0; r < p; ++r) {
    threads.emplace_back([&, r] {
      set_log_rank(r);
      if (check_) check_->rank_started(r);
      Communicator comm(*this, r);
      bool crashed = false;
      try {
        rank_main(comm);
      } catch (const CheckAbort&) {
        // Secondary abort: another rank already diagnosed the failure and
        // cancelled this rank's blocking receive. The primary report is
        // thrown from finalize() below, so this one carries no new
        // information and is dropped.
        crashed = true;
      } catch (...) {
        crashed = true;
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      if (check_) check_->rank_finished(r, comm.collective_count(), crashed);
      set_log_rank(-1);
    });
  }
  for (auto& t : threads) t.join();

  // Fold the runtime's own communication totals into each rank's registry
  // so merged_metrics() carries them alongside module metrics.
  for (int r = 0; r < p; ++r) {
    metrics_[r].counter("mpr.messages_sent").set(stats_[r].messages_sent);
    metrics_[r].counter("mpr.bytes_sent").set(stats_[r].bytes_sent);
    metrics_[r]
        .counter("mpr.messages_received")
        .set(stats_[r].messages_received);
  }

  // A genuine rank exception is the root cause (ranks blocked on the dead
  // rank abort via CheckAbort and were dropped above); otherwise let the
  // checker throw its deadlock report / strict-mode audit findings.
  if (first_error) std::rethrow_exception(first_error);
  if (check_) check_->finalize();
}

obs::MetricsRegistry Runtime::merged_metrics() const {
  obs::MetricsRegistry merged;
  for (const auto& m : metrics_) merged.merge_from(m);
  return merged;
}

double Runtime::elapsed_vtime() const {
  double t = 0.0;
  for (const auto& c : clocks_) t = std::max(t, c.time());
  return t;
}

double Runtime::total_busy_vtime() const {
  double t = 0.0;
  for (const auto& c : clocks_) t += c.active_time();
  return t;
}

std::vector<obs::RankTime> Runtime::rank_times() const {
  std::vector<obs::RankTime> out(clocks_.size());
  for (std::size_t r = 0; r < clocks_.size(); ++r) {
    out[r].busy = clocks_[r].busy_time();
    out[r].comm = clocks_[r].comm_time();
    out[r].idle = clocks_[r].idle_time();
    out[r].total = clocks_[r].time();
  }
  return out;
}

}  // namespace estclust::mpr
