#include "mpr/mailbox.hpp"

namespace estclust::mpr {

void Mailbox::push(Message&& m) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(m));
  }
  cv_.notify_all();
}

void Mailbox::push_pair(Message&& first, Message&& second) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(first));
    queue_.push_back(std::move(second));
  }
  cv_.notify_all();
}

bool Mailbox::matches(const Message& m, int src, int tag) {
  if (src != kAnySource && m.src != src) return false;
  if (tag == kAnyTag) return m.tag < kInternalTagBase;
  return m.tag == tag;
}

std::optional<Message> Mailbox::pop_locked(int src, int tag) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (matches(*it, src, tag)) {
      Message m = std::move(*it);
      queue_.erase(it);
      return m;
    }
  }
  return std::nullopt;
}

Message Mailbox::pop(int src, int tag) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (auto m = pop_locked(src, tag)) return std::move(*m);
    cv_.wait(lock);
  }
}

std::optional<Message> Mailbox::pop2_locked(int src, int tag_a, int tag_b) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (matches(*it, src, tag_a) || matches(*it, src, tag_b)) {
      Message m = std::move(*it);
      queue_.erase(it);
      return m;
    }
  }
  return std::nullopt;
}

Message Mailbox::pop2(int src, int tag_a, int tag_b) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (auto m = pop2_locked(src, tag_a, tag_b)) return std::move(*m);
    cv_.wait(lock);
  }
}

std::optional<Message> Mailbox::try_pop(int src, int tag) {
  std::lock_guard<std::mutex> lock(mutex_);
  return pop_locked(src, tag);
}

bool Mailbox::probe(int src, int tag) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& m : queue_) {
    if (matches(m, src, tag)) return true;
  }
  return false;
}

std::optional<Message> Mailbox::try_pop2(int src, int tag_a, int tag_b) {
  std::lock_guard<std::mutex> lock(mutex_);
  return pop2_locked(src, tag_a, tag_b);
}

bool Mailbox::probe2(int src, int tag_a, int tag_b) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& m : queue_) {
    if (matches(m, src, tag_a) || matches(m, src, tag_b)) return true;
  }
  return false;
}

std::size_t Mailbox::size() {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

std::vector<PendingMessage> Mailbox::pending() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<PendingMessage> out;
  out.reserve(queue_.size());
  for (const auto& m : queue_) {
    out.push_back({m.src, m.tag, m.payload.size()});
  }
  return out;
}

}  // namespace estclust::mpr
