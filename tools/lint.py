#!/usr/bin/env python3
"""Project lint rules for the estclust sources (registered as ctest `lint`).

This is now a thin shim: the five repo-convention rules (no raw
assert()/<cassert>, per-module ESTCLUST_CHECK presence, #pragma once,
no `using namespace std`, no wall-clock sleeps in src/) moved into the
project static analyzer as its `conventions` rule family
(tools/analyze/rules_conventions.py), gaining per-line suppressions,
JSON output, and the baseline gate along the way.

Run from the repository root:

    python3 tools/lint.py              # == python3 tools/analyze --families conventions
    python3 tools/analyze              # all rule families

Exits non-zero listing every violation.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from analyze.engine import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(["--families", "conventions", *sys.argv[1:]]))
