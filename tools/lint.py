#!/usr/bin/env python3
"""Project lint rules for the estclust sources (registered as ctest `lint`).

These are the repo-specific conventions a generic tool does not know:

  1. No raw assert() / <cassert> in src/ or tools/ -- invariants must use
     ESTCLUST_CHECK / ESTCLUST_CHECK_MSG (util/check.hpp), which fire in
     release builds and throw CheckError instead of aborting the process.
  2. Every module under src/ validates with ESTCLUST_CHECK somewhere:
     public entry points are expected to check their arguments.
  3. Every header uses #pragma once.
  4. No `using namespace std`.
  5. No wall-clock sleeps or timed waits in src/ -- rank time is virtual
     (mpr::VirtualClock); wall-clock timing would make modeled run-times
     scheduling-dependent.

Run from the repository root:  python3 tools/lint.py
Exits non-zero listing every violation.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"
TOOLS = ROOT / "tools"

CPP_GLOBS = ("*.cpp", "*.hpp")

RE_ASSERT = re.compile(r"(?<![A-Za-z0-9_])assert\s*\(")
RE_CASSERT = re.compile(r'#\s*include\s*[<"](?:cassert|assert\.h)[>"]')
RE_USING_STD = re.compile(r"\busing\s+namespace\s+std\b")
RE_WALL_CLOCK = re.compile(
    r"\bsleep_for\b|\bsleep_until\b|\bwait_for\b|\bwait_until\b"
)


def strip_comments(text: str) -> str:
    """Removes // and /* */ comments and string literals, preserving line
    structure so reported line numbers stay accurate."""
    out: list[str] = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 2
        elif c in "\"'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                i += 2 if text[i] == "\\" else 1
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def iter_sources() -> list[Path]:
    files = []
    for base in (SRC, TOOLS):
        for glob in CPP_GLOBS:
            files.extend(sorted(base.rglob(glob)))
    return files


def main() -> int:
    violations: list[str] = []

    for path in iter_sources():
        rel = path.relative_to(ROOT)
        text = path.read_text(encoding="utf-8")
        code = strip_comments(text)
        lines = code.splitlines()

        if RE_CASSERT.search(code):
            violations.append(f"{rel}: includes <cassert>; use util/check.hpp")
        for lineno, line in enumerate(lines, 1):
            if RE_ASSERT.search(line):
                violations.append(
                    f"{rel}:{lineno}: raw assert(); use ESTCLUST_CHECK "
                    "(fires in release builds, throws CheckError)"
                )
            if RE_USING_STD.search(line):
                violations.append(f"{rel}:{lineno}: `using namespace std`")
            if rel.parts[0] == "src" and RE_WALL_CLOCK.search(line):
                violations.append(
                    f"{rel}:{lineno}: wall-clock sleep/timed wait in src/; "
                    "rank time is virtual (mpr::VirtualClock)"
                )

        if path.suffix == ".hpp" and "#pragma once" not in text:
            violations.append(f"{rel}: header missing #pragma once")

    # Rule 2: per-module ESTCLUST_CHECK presence (argument validation on
    # public entry points is a checked convention, not an aspiration).
    for module in sorted(p for p in SRC.iterdir() if p.is_dir()):
        uses_check = any(
            "ESTCLUST_CHECK" in f.read_text(encoding="utf-8")
            for glob in CPP_GLOBS
            for f in module.rglob(glob)
        )
        if not uses_check:
            violations.append(
                f"src/{module.name}: no ESTCLUST_CHECK anywhere in the "
                "module; public entry points must validate their inputs"
            )

    if violations:
        print(f"lint: {len(violations)} violation(s):")
        for v in violations:
            print(f"  {v}")
        return 1
    print(f"lint: OK ({len(iter_sources())} files checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
