#!/usr/bin/env python3
"""Runs the full verification matrix: configure, build, a required-test
registration check (`ctest -N` must list every gate in REQUIRED_TESTS)
and ctest for each CMake preset (default, sanitize, tsan), in sequence,
with a summary table.

Usage, from the repository root:

    python3 tools/check_matrix.py                 # all three presets
    python3 tools/check_matrix.py --presets tsan  # just ThreadSanitizer
    python3 tools/check_matrix.py --label tsan -R 'mpr_stress|pace_stress'

Each preset builds into its own directory (build/, build-sanitize/,
build-tsan/), so the matrix never invalidates an existing tree. Exits
non-zero if any stage of any preset fails, after running the rest.
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
PRESETS = ("default", "sanitize", "tsan")

# Gates that must exist in every configured tree. They are registered
# behind find_package(Python3), so a runner without a Python interpreter
# would silently drop them from ctest; the matrix refuses to call such a
# tree verified.
REQUIRED_TESTS = (
    "lint",
    "analyze",
    "analyze_selftest",
    "analyze_proto",
    "analyze_clock",
    "analyze_detflow",
    "analyze_bounds",
    "trace_validate",
    "headers_standalone",
    "profile_smoke",
    "bench_smoke",
    # PairSource backend matrix: one golden sentinel, one contract-test
    # sentinel and the bench gate per backend. If gtest discovery or the
    # per-backend registration breaks, the whole backend's slice vanishes
    # from ctest silently — these names make that a matrix failure.
    "gst/GoldenClusters.Small",
    "kmer/GoldenClusters.Small",
    "fm/GoldenClusters.Small",
    "gst/PairSource.MatchesBruteForcePromisingPairs",
    "kmer/PairSource.MatchesBruteForcePromisingPairs",
    "fm/PairSource.MatchesBruteForcePromisingPairs",
    "bench_smoke_gst",
    "bench_smoke_kmer",
    "bench_smoke_fm",
    # SIMD kernel gates: the wall-clock speedup floor and the forced-scalar
    # golden leg must both stay registered, or a dispatch regression could
    # hide behind whatever kernel the build host happens to pick.
    "bench_wallclock",
    "golden_clusters_scalar_kernel",
)


def run_stage(label: str, cmd: list[str]) -> bool:
    print(f"--- {label}: {' '.join(cmd)}", flush=True)
    return subprocess.run(cmd, cwd=ROOT).returncode == 0


def check_registered(preset: str) -> bool:
    """`ctest -N` the configured tree and require every REQUIRED_TESTS
    name to be registered."""
    cmd = ["ctest", "--preset", preset, "-N"]
    print(f"--- {preset}/registered: {' '.join(cmd)}", flush=True)
    proc = subprocess.run(cmd, cwd=ROOT, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stdout.write(proc.stdout + proc.stderr)
        return False
    names = set(re.findall(r"Test\s+#\d+:\s+(\S+)", proc.stdout))
    missing = [t for t in REQUIRED_TESTS if t not in names]
    for t in missing:
        print(f"  required test '{t}' is not registered in this tree")
    return not missing


def run_preset(preset: str, jobs: int, test_filter: str | None) -> dict:
    t0 = time.monotonic()
    stages = {
        "configure": ["cmake", "--preset", preset],
        "build": ["cmake", "--build", "--preset", preset, "-j", str(jobs)],
        "registered": None,  # handled below: ctest -N presence check
        "test": ["ctest", "--preset", preset, "-j", str(jobs)],
    }
    if test_filter:
        stages["test"] += ["-R", test_filter]
    failed = ""
    for name, cmd in stages.items():
        ok = check_registered(preset) if name == "registered" \
            else run_stage(f"{preset}/{name}", cmd)
        if not ok:
            failed = name
            break
    return {
        "preset": preset,
        "failed_stage": failed,
        "seconds": time.monotonic() - t0,
    }


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--presets", nargs="+", default=list(PRESETS),
                    choices=PRESETS, metavar="PRESET",
                    help="subset of presets to run (default: all)")
    ap.add_argument("-j", "--jobs", type=int, default=0,
                    help="parallel jobs (default: all cores)")
    ap.add_argument("-R", "--tests-regex", default=None,
                    help="forwarded to ctest -R (run matching tests only)")
    args = ap.parse_args()
    jobs = args.jobs or os.cpu_count() or 2

    results = [run_preset(p, jobs, args.tests_regex) for p in args.presets]

    print("\n=== check matrix ===")
    ok = True
    for r in results:
        status = "OK" if not r["failed_stage"] else f"FAIL ({r['failed_stage']})"
        ok &= not r["failed_stage"]
        print(f"  {r['preset']:<10} {status:<18} {r['seconds']:7.1f}s")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
