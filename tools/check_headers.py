#!/usr/bin/env python3
"""Header self-sufficiency check (registered as ctest `headers_standalone`).

Compiles every header under src/ standalone (`-fsyntax-only` on a
one-line TU that includes just that header) so each header carries its
own includes instead of leaning on whatever its current includers happen
to pull in first. Catches the classic rot where reordering includes in a
.cpp breaks the build.

Usage:  python3 tools/check_headers.py [--compiler c++] [--std c++20]
"""

from __future__ import annotations

import argparse
import concurrent.futures
import os
import subprocess
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"


def check_one(compiler: str, std: str, header: Path,
              tmpdir: Path) -> tuple[Path, str | None]:
    rel = header.relative_to(ROOT)
    tu = tmpdir / (rel.as_posix().replace("/", "_") + ".cpp")
    tu.write_text(f'#include "{header.relative_to(SRC).as_posix()}"\n',
                  encoding="utf-8")
    cmd = [compiler, f"-std={std}", "-fsyntax-only", "-Wall", "-Wextra",
           "-I", str(SRC), str(tu)]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        return rel, proc.stderr.strip()
    return rel, None


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--compiler", default=os.environ.get("CXX", "c++"))
    ap.add_argument("--std", default="c++20")
    ap.add_argument("--jobs", type=int, default=os.cpu_count() or 4)
    args = ap.parse_args()

    headers = sorted(SRC.rglob("*.hpp"))
    if not headers:
        print("check_headers: no headers found under src/", file=sys.stderr)
        return 2

    failures: list[tuple[Path, str]] = []
    with tempfile.TemporaryDirectory() as td:
        tmpdir = Path(td)
        with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
            futures = [pool.submit(check_one, args.compiler, args.std, h,
                                   tmpdir) for h in headers]
            for fut in concurrent.futures.as_completed(futures):
                rel, err = fut.result()
                if err is not None:
                    failures.append((rel, err))

    if failures:
        failures.sort()
        print(f"check_headers: {len(failures)} header(s) not "
              "self-sufficient:")
        for rel, err in failures:
            print(f"\n== {rel} ==")
            print(err)
        return 1
    print(f"check_headers: OK ({len(headers)} headers compile standalone, "
          f"{args.compiler} -std={args.std})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
