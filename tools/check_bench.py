#!/usr/bin/env python3
"""Smoke-check the bench binaries' --json output.

Runs bench_align_micro and bench_table3 on a tiny deterministic input,
validates the schema of every emitted row, asserts the hot-path acceptance
criteria (bounded+memo speedup, message reduction), and compares the
DP-cells-per-accepted-pair numbers against the checked-in baseline JSON so
a regression in the alignment engine fails ctest instead of silently
shifting the bench tables.

All quantities checked here are virtual-time work units (DP cells, message
counts) from seeded workloads, so they are bit-deterministic across
machines; the baseline tolerance exists only to keep small, deliberate
retunings from needing a lockstep baseline update.

Usage:
  check_bench.py --align-micro BIN --table3 BIN --baseline FILE [--update]
"""

import argparse
import json
import subprocess
import sys

SMOKE_ESTS = "250"

# A current value may exceed its baseline by this factor before the check
# fails. Improvements (smaller values) always pass; --update re-bakes.
TOLERANCE = 1.02

# Acceptance criterion from the hot-path issue: bounded+memo must do at
# least 1.5x fewer work units per accepted pair than the exact engine.
MIN_SPEEDUP = 1.5

failures = []


def check(cond, msg):
    if not cond:
        failures.append(msg)
        print("FAIL: " + msg)


def run_bench(path):
    cmd = [path, "--ests", SMOKE_ESTS, "--json"]
    proc = subprocess.run(cmd, capture_output=True, text=True, timeout=600)
    if proc.returncode != 0:
        sys.exit("%s exited with %d:\n%s" % (cmd, proc.returncode,
                                             proc.stderr))
    rows = []
    for line in proc.stdout.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError as e:
            sys.exit("%s emitted a non-JSON line in --json mode: %r (%s)"
                     % (path, line, e))
        if not isinstance(row, dict) or "bench" not in row:
            sys.exit("%s emitted a row without a 'bench' key: %r"
                     % (path, line))
        rows.append(row)
    return rows


def by_bench(rows, name):
    return [r for r in rows if r["bench"] == name]


def require_keys(rows, name, keys):
    for r in rows:
        for k in keys:
            check(k in r, "%s row missing key %r: %r" % (name, k, r))


def check_align_micro(rows):
    engine = by_bench(rows, "align_micro")
    kernels = by_bench(rows, "align_kernels")
    require_keys(engine, "align_micro",
                 ["mode", "pairs", "accepted", "dp_cells",
                  "cells_per_accepted", "speedup_vs_exact"])
    require_keys(kernels, "align_kernels", ["kernel", "len", "cells"])

    modes = {r["mode"]: r for r in engine}
    check(set(modes) == {"exact", "bounded", "bounded+memo"},
          "align_micro modes are %s" % sorted(modes))
    if set(modes) != {"exact", "bounded", "bounded+memo"}:
        return {}
    for r in engine:
        check(r["pairs"] > 0 and r["accepted"] > 0 and r["dp_cells"] > 0,
              "align_micro %s has a non-positive count: %r"
              % (r["mode"], r))
    check(modes["bounded"]["dp_cells"] <= modes["exact"]["dp_cells"],
          "bounded mode did more DP work than exact")
    check(modes["bounded+memo"]["speedup_vs_exact"] >= MIN_SPEEDUP,
          "bounded+memo speedup %.3f < required %.1fx"
          % (modes["bounded+memo"]["speedup_vs_exact"], MIN_SPEEDUP))

    per_len = {}
    for r in kernels:
        per_len.setdefault(r["len"], {})[r["kernel"]] = r["cells"]
    for length, cells in sorted(per_len.items()):
        check(set(cells) == {"full NW", "banded global",
                             "anchored extension"},
              "align_kernels len %s kernels are %s"
              % (length, sorted(cells)))
        if "full NW" in cells and "banded global" in cells:
            check(cells["banded global"] < cells["full NW"],
                  "banding did not shrink the DP area at len %s" % length)
        if "full NW" in cells and "anchored extension" in cells:
            check(cells["anchored extension"] < cells["full NW"],
                  "anchored extension >= full matrix at len %s" % length)

    return {r["mode"]: r["cells_per_accepted"] for r in engine}


def check_table3(rows):
    table = by_bench(rows, "table3")
    msgs = by_bench(rows, "table3_messages")
    require_keys(table, "table3",
                 ["p", "partitioning", "gst_build", "node_sorting",
                  "alignment_loop", "total"])
    require_keys(msgs, "table3_messages",
                 ["p", "msgs_legacy", "msgs_hotpath", "t_legacy",
                  "t_hotpath"])
    check([r["p"] for r in table] == [8, 16, 32, 64, 128],
          "table3 p values are %s" % [r.get("p") for r in table])
    for r in table:
        check(r["total"] > 0, "table3 p=%s has total <= 0" % r.get("p"))
    for r in msgs:
        check(r["msgs_hotpath"] <= r["msgs_legacy"],
              "hot path sent MORE messages at p=%s (%s > %s)"
              % (r.get("p"), r.get("msgs_hotpath"), r.get("msgs_legacy")))
    return {str(r["p"]): r["msgs_hotpath"] for r in msgs}


def check_baseline(baseline_path, current, update):
    if update:
        with open(baseline_path, "w") as f:
            json.dump(current, f, indent=2, sort_keys=True)
            f.write("\n")
        print("baseline updated: %s" % baseline_path)
        return
    try:
        with open(baseline_path) as f:
            baseline = json.load(f)
    except FileNotFoundError:
        sys.exit("baseline %s not found; run with --update to create it"
                 % baseline_path)
    check(baseline.get("ests") == current["ests"],
          "baseline was baked at ests=%s, bench ran at ests=%s"
          % (baseline.get("ests"), current["ests"]))
    for section in ("cells_per_accepted", "msgs_hotpath"):
        base = baseline.get(section, {})
        cur = current[section]
        check(set(base) == set(cur),
              "baseline section %r keys %s != current %s"
              % (section, sorted(base), sorted(cur)))
        for key in sorted(set(base) & set(cur)):
            check(cur[key] <= base[key] * TOLERANCE,
                  "%s[%s] regressed: %s vs baseline %s"
                  % (section, key, cur[key], base[key]))


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--align-micro", required=True)
    ap.add_argument("--table3", required=True)
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--update", action="store_true",
                    help="re-bake the baseline JSON instead of checking")
    args = ap.parse_args()

    cells = check_align_micro(run_bench(args.align_micro))
    msgs = check_table3(run_bench(args.table3))
    check_baseline(args.baseline,
                   {"ests": int(SMOKE_ESTS),
                    "cells_per_accepted": cells,
                    "msgs_hotpath": msgs},
                   args.update)

    if failures:
        sys.exit("%d bench check(s) failed" % len(failures))
    print("bench smoke checks passed")


if __name__ == "__main__":
    main()
