#!/usr/bin/env python3
"""Smoke-check the bench binaries' --json output.

Runs bench_align_micro and bench_table3 on a tiny deterministic input,
validates the schema of every emitted row, asserts the hot-path acceptance
criteria (bounded+memo speedup, message reduction), and compares the
DP-cells-per-accepted-pair numbers against the checked-in baseline JSON so
a regression in the alignment engine fails ctest instead of silently
shifting the bench tables.

With --table1 BIN --pair-source BACKEND it instead gates one PairSource
backend's table1_backends rows: the backend's partition must match the
gst reference run, and its index bytes / pair count / DP-cell volume are
compared against the per-backend baseline section (table1_<backend>).

With --wallclock BIN it gates the SIMD kernel variants' real wall-clock
rows from `bench_align_micro --wallclock`: every variant the host supports
must report identical cell counts to scalar (the binary itself hard-fails
on score divergence before emitting the row) and beat scalar by at least
MIN_SIMD_SPEEDUP. That threshold is deliberately far below the measured
4-6x so scheduler noise on loaded CI machines cannot flake the gate; the
honest numbers live in EXPERIMENTS.md. This mode also validates the
Reporter's wall_s convention: every row must carry a strictly positive,
locale-clean float (the %.6f fixed-buffer bug truncated sub-microsecond
rows to 0 and comma-decimal locales broke JSON parsing outright).

All quantities checked by the baseline modes are virtual-time work units
(DP cells, message counts, index bytes) from seeded workloads, so they are
bit-deterministic across machines; the baseline tolerance exists only to
keep small, deliberate retunings from needing a lockstep baseline update.
The --wallclock mode is the one real-time gate, hence its loose margin
and the absence of a baseline section.

Usage:
  check_bench.py --align-micro BIN --table3 BIN --baseline FILE [--update]
  check_bench.py --table1 BIN --pair-source B --baseline FILE [--update]
  check_bench.py --wallclock BIN
"""

import argparse
import json
import subprocess
import sys

SMOKE_ESTS = "250"

# A current value may exceed its baseline by this factor before the check
# fails. Improvements (smaller values) always pass; --update re-bakes.
TOLERANCE = 1.02

# Acceptance criterion from the hot-path issue: bounded+memo must do at
# least 1.5x fewer work units per accepted pair than the exact engine.
MIN_SPEEDUP = 1.5

# Wall-clock floor for each SIMD variant vs the scalar sweep in the same
# process. Measured medians are 4-6x (see EXPERIMENTS.md); 1.7 leaves room
# for a CI box that is busy, thermally throttled, or virtualized, while
# still catching "the dispatcher silently fell back to scalar" (ratio ~1.0)
# and wholesale kernel regressions.
MIN_SIMD_SPEEDUP = 1.7

failures = []


def check(cond, msg):
    if not cond:
        failures.append(msg)
        print("FAIL: " + msg)


def run_bench(path, extra=(), ests=SMOKE_ESTS):
    cmd = [path, "--ests", ests, "--json"] + list(extra)
    proc = subprocess.run(cmd, capture_output=True, text=True, timeout=600)
    if proc.returncode != 0:
        sys.exit("%s exited with %d:\n%s" % (cmd, proc.returncode,
                                             proc.stderr))
    rows = []
    for line in proc.stdout.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError as e:
            sys.exit("%s emitted a non-JSON line in --json mode: %r (%s)"
                     % (path, line, e))
        if not isinstance(row, dict) or "bench" not in row:
            sys.exit("%s emitted a row without a 'bench' key: %r"
                     % (path, line))
        rows.append(row)
    return rows


def by_bench(rows, name):
    return [r for r in rows if r["bench"] == name]


def require_keys(rows, name, keys):
    for r in rows:
        for k in keys:
            check(k in r, "%s row missing key %r: %r" % (name, k, r))


def check_align_micro(rows):
    engine = by_bench(rows, "align_micro")
    kernels = by_bench(rows, "align_kernels")
    require_keys(engine, "align_micro",
                 ["mode", "pairs", "accepted", "dp_cells",
                  "cells_per_accepted", "speedup_vs_exact"])
    require_keys(kernels, "align_kernels", ["kernel", "len", "cells"])

    modes = {r["mode"]: r for r in engine}
    check(set(modes) == {"exact", "bounded", "bounded+memo"},
          "align_micro modes are %s" % sorted(modes))
    if set(modes) != {"exact", "bounded", "bounded+memo"}:
        return {}
    for r in engine:
        check(r["pairs"] > 0 and r["accepted"] > 0 and r["dp_cells"] > 0,
              "align_micro %s has a non-positive count: %r"
              % (r["mode"], r))
    check(modes["bounded"]["dp_cells"] <= modes["exact"]["dp_cells"],
          "bounded mode did more DP work than exact")
    check(modes["bounded+memo"]["speedup_vs_exact"] >= MIN_SPEEDUP,
          "bounded+memo speedup %.3f < required %.1fx"
          % (modes["bounded+memo"]["speedup_vs_exact"], MIN_SPEEDUP))

    per_len = {}
    for r in kernels:
        per_len.setdefault(r["len"], {})[r["kernel"]] = r["cells"]
    for length, cells in sorted(per_len.items()):
        check(set(cells) == {"full NW", "banded global",
                             "anchored extension"},
              "align_kernels len %s kernels are %s"
              % (length, sorted(cells)))
        if "full NW" in cells and "banded global" in cells:
            check(cells["banded global"] < cells["full NW"],
                  "banding did not shrink the DP area at len %s" % length)
        if "full NW" in cells and "anchored extension" in cells:
            check(cells["anchored extension"] < cells["full NW"],
                  "anchored extension >= full matrix at len %s" % length)

    return {r["mode"]: r["cells_per_accepted"] for r in engine}


def check_table3(rows):
    table = by_bench(rows, "table3")
    msgs = by_bench(rows, "table3_messages")
    require_keys(table, "table3",
                 ["p", "partitioning", "gst_build", "node_sorting",
                  "alignment_loop", "total"])
    require_keys(msgs, "table3_messages",
                 ["p", "msgs_legacy", "msgs_hotpath", "t_legacy",
                  "t_hotpath"])
    check([r["p"] for r in table] == [8, 16, 32, 64, 128],
          "table3 p values are %s" % [r.get("p") for r in table])
    for r in table:
        check(r["total"] > 0, "table3 p=%s has total <= 0" % r.get("p"))
    for r in msgs:
        check(r["msgs_hotpath"] <= r["msgs_legacy"],
              "hot path sent MORE messages at p=%s (%s > %s)"
              % (r.get("p"), r.get("msgs_hotpath"), r.get("msgs_legacy")))
    return {str(r["p"]): r["msgs_hotpath"] for r in msgs}


def check_table1_backend(rows, backend):
    """Validates one backend's table1_backends rows and returns the
    quantities to pin in the per-backend baseline section."""
    section = by_bench(rows, "table1_backends")
    require_keys(section, "table1_backends",
                 ["backend", "ests", "index_bytes", "pairs", "dp_cells",
                  "time_s", "match_gst"])
    names = [r.get("backend") for r in section]
    expect = ["gst"] if backend == "gst" else ["gst", backend]
    check(names == expect,
          "table1_backends backends are %s, expected %s" % (names, expect))
    for r in section:
        check(r["index_bytes"] > 0 and r["pairs"] > 0 and r["dp_cells"] > 0
              and r["time_s"] > 0,
              "table1_backends %s has a non-positive quantity: %r"
              % (r.get("backend"), r))
        # Each backend must reproduce the gst reference partition.
        check(r["match_gst"] == "yes",
              "backend %s did not reproduce the gst partition (%s)"
              % (r.get("backend"), r.get("match_gst")))
    target = [r for r in section if r.get("backend") == backend]
    if len(target) != 1:
        return {}
    r = target[0]
    return {"index_bytes": r["index_bytes"], "pairs": r["pairs"],
            "dp_cells": r["dp_cells"]}


def check_wallclock(rows):
    wall = by_bench(rows, "align_wallclock")
    require_keys(wall, "align_wallclock",
                 ["kernel", "len", "pairs", "reps", "cells",
                  "kernel_wall_s", "speedup_vs_scalar", "wall_s"])
    check(len(wall) > 0, "no align_wallclock rows emitted")
    per_len = {}
    for r in wall:
        # wall_s validation (the %.17g Reporter convention): present, a
        # real JSON number, strictly positive — %.6f into a fixed buffer
        # used to truncate sub-microsecond rows to exactly 0.
        check(isinstance(r.get("wall_s"), float) and r["wall_s"] > 0,
              "align_wallclock row has a non-positive or non-float wall_s: "
              "%r" % r)
        check(isinstance(r.get("kernel_wall_s"), float)
              and r["kernel_wall_s"] > 0,
              "align_wallclock row has non-positive kernel_wall_s: %r" % r)
        per_len.setdefault(r["len"], {})[r["kernel"]] = r
    for length, kernels in sorted(per_len.items()):
        check("scalar" in kernels,
              "len %s has no scalar reference row" % length)
        if "scalar" not in kernels:
            continue
        scalar = kernels["scalar"]
        check(scalar["speedup_vs_scalar"] == 1.0,
              "scalar row's self-speedup is %s, not 1.0"
              % scalar["speedup_vs_scalar"])
        for name, r in sorted(kernels.items()):
            if name == "scalar":
                continue
            check(name in ("sse2", "avx2"),
                  "unexpected kernel variant %r at len %s" % (name, length))
            # The binary FATALs on score divergence before emitting the
            # row; re-assert the cell identity from the emitted JSON so a
            # future refactor of that guard cannot silently drop it.
            check(r["cells"] == scalar["cells"],
                  "%s cells %s != scalar cells %s at len %s"
                  % (name, r["cells"], scalar["cells"], length))
            speedup = scalar["kernel_wall_s"] / r["kernel_wall_s"]
            check(speedup >= MIN_SIMD_SPEEDUP,
                  "%s is only %.2fx faster than scalar at len %s "
                  "(floor %.1fx)" % (name, speedup, length,
                                     MIN_SIMD_SPEEDUP))
            print("  %s len %s: %.2fx vs scalar" % (name, length, speedup))


def load_baseline(baseline_path):
    try:
        with open(baseline_path) as f:
            return json.load(f)
    except FileNotFoundError:
        sys.exit("baseline %s not found; run with --update to create it"
                 % baseline_path)


def write_baseline(baseline_path, baseline):
    with open(baseline_path, "w") as f:
        json.dump(baseline, f, indent=2, sort_keys=True)
        f.write("\n")
    print("baseline updated: %s" % baseline_path)


def check_sections(baseline, current, sections):
    check(baseline.get("ests") == current["ests"],
          "baseline was baked at ests=%s, bench ran at ests=%s"
          % (baseline.get("ests"), current["ests"]))
    for section in sections:
        base = baseline.get(section, {})
        cur = current[section]
        check(set(base) == set(cur),
              "baseline section %r keys %s != current %s"
              % (section, sorted(base), sorted(cur)))
        for key in sorted(set(base) & set(cur)):
            check(cur[key] <= base[key] * TOLERANCE,
                  "%s[%s] regressed: %s vs baseline %s"
                  % (section, key, cur[key], base[key]))


def check_baseline(baseline_path, current, update, sections):
    if update:
        # Merge into the existing file so the hot-path and per-backend
        # invocations co-own one baseline JSON.
        try:
            baseline = load_baseline(baseline_path)
        except SystemExit:
            baseline = {}
        baseline["ests"] = current["ests"]
        for section in sections:
            baseline[section] = current[section]
        write_baseline(baseline_path, baseline)
        return
    check_sections(load_baseline(baseline_path), current, sections)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--align-micro")
    ap.add_argument("--table3")
    ap.add_argument("--table1")
    ap.add_argument("--pair-source",
                    help="backend for the --table1 gate (gst, kmer or fm)")
    ap.add_argument("--wallclock",
                    help="bench_align_micro binary for the SIMD wall-clock "
                         "gate (no baseline: real time, loose margins)")
    ap.add_argument("--baseline",
                    help="baseline JSON (required except with --wallclock)")
    ap.add_argument("--update", action="store_true",
                    help="re-bake the baseline JSON instead of checking")
    args = ap.parse_args()

    if args.wallclock:
        # Tiny --ests: the engine-comparison section is not under test
        # here, the fixed-size wallclock section is.
        check_wallclock(run_bench(args.wallclock, ["--wallclock"],
                                  ests="50"))
        if failures:
            sys.exit("%d bench check(s) failed" % len(failures))
        print("wallclock checks passed")
        return
    if not args.baseline:
        ap.error("--baseline is required except with --wallclock")

    current = {"ests": int(SMOKE_ESTS)}
    sections = []
    if args.table1:
        if not args.pair_source:
            ap.error("--table1 requires --pair-source")
        section = "table1_%s" % args.pair_source
        current[section] = check_table1_backend(
            run_bench(args.table1, ["--pair-source", args.pair_source]),
            args.pair_source)
        sections.append(section)
    else:
        if not (args.align_micro and args.table3):
            ap.error("either --table1 or both --align-micro and --table3 "
                     "are required")
        current["cells_per_accepted"] = check_align_micro(
            run_bench(args.align_micro))
        current["msgs_hotpath"] = check_table3(run_bench(args.table3))
        sections += ["cells_per_accepted", "msgs_hotpath"]
    check_baseline(args.baseline, current, args.update, sections)

    if failures:
        sys.exit("%d bench check(s) failed" % len(failures))
    print("bench smoke checks passed")


if __name__ == "__main__":
    main()
