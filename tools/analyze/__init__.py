"""estclust project-specific static analyzer (ctest `analyze`).

Whole-program checks for the invariants the runtime checker (src/check)
can only verify on executed paths:

  * codec symmetry   -- encode_X/decode_X field sequences must mirror
  * tag protocol     -- static send/recv matrix over the kTag* constants
  * clock accounting -- accounted work paired with VirtualClock charges,
                        plus structured determinism bans
  * conventions      -- the repo lint rules (formerly tools/lint.py)

Run from the repository root:  python3 tools/analyze [--json]
"""

__version__ = "1.0"
