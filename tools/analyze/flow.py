"""Forward dataflow/taint engine over the SourceModel call graph.

The lattice is deliberately tiny: a value is either clean or carries a
*taint* naming the nondeterminism source it came from (wall-clock read,
rand, pointer-to-integer cast, unordered-container iteration, env read)
plus a human-readable provenance chain. Propagation is
statement-granular inside a function body (an assignment taints the
left-hand side, `return` taints the function's return summary) and
summary-based across calls:

  * a call to a function whose summary says "returns taint" taints the
    call expression (and therefore any assignment it feeds);
  * passing a tainted variable as an argument to a function whose
    summary says "reaches a sink" is itself a reach.

Sinks are the four places nondeterminism would break the repo's
guarantees: wire encoding (`encode_*`/`put*`), the virtual clock
(`charge()`), cluster mutation (`unite()`), and metric publication
(`counter/gauge/histogram`).

`// ESTCLUST-DETFLOW-SANITIZED(reason)` is the explicit cut point: a
statement it covers (its own line and the next) neither seeds nor
propagates taint. The reason is mandatory -- it is the
reviewer-visible proof of why the flow is harmless (e.g. a report-only
column that never feeds vtime or the wire).

Everything here over-approximates: the engine may report a flow the
program never executes, but a flow it stays silent about has a
machine-checked reason to be silent.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from analyze.srcmodel import FnNode, SourceModel, match_paren

# --- Sources ---------------------------------------------------------------

WALL_CLOCK_SRC_RE = re.compile(
    r"\b(steady_clock|system_clock|high_resolution_clock|WallTimer|"
    r"PhaseTimer)\b")
RAND_SRC_RE = re.compile(
    r"\b(?:std::)?(rand|srand)\s*\(|\b(random_device|default_random_engine)\b")
PTR_CAST_SRC_RE = re.compile(
    r"\breinterpret_cast\s*<\s*(?:std::)?u?intptr_t\b")
ENV_SRC_RE = re.compile(r"\b(getenv|env_or)\s*\(")
UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;{}]*>\s+(\w+)\s*[;={(]")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(\s*([^;()]*?):\s*([\w.\->]+)\s*\)")

# Paths where env/argv reads are configuration parsing by design.
ENV_EXEMPT_PREFIXES = ("src/util/cli", "tools/")

# --- Sinks -----------------------------------------------------------------

# kind -> (pattern, human description)
SINKS: list[tuple[str, re.Pattern, str]] = [
    ("wire", re.compile(r"\bencode_\w+\s*\(|[.>]put(?:_vec|_string)?\s*[(<]"),
     "wire encoding"),
    ("vtime", re.compile(r"\bcharge\s*\("), "virtual-clock charge"),
    ("cluster", re.compile(r"[.>]unite\s*\("), "cluster mutation"),
    ("metrics", re.compile(r"\b(?:counter|gauge|histogram)\s*\("),
     "metric publication"),
]

ASSIGN_RE = re.compile(
    r"(?:^|[;{(]\s*)(?:[\w:<>,\s&*\[\]]*?\s)?"
    r"([A-Za-z_]\w*)(?:\.\w+|\[[^\]]*\])?\s*"
    r"(?:[+\-*/|&^]|<<|>>)?=(?!=)")
RETURN_RE = re.compile(r"\breturn\b")

# Type/keyword words that must never become taint-carrying "variables".
_NOT_A_VAR = frozenset({
    "const", "auto", "int", "unsigned", "long", "short", "double", "float",
    "bool", "char", "size_t", "uint64_t", "uint32_t", "int64_t", "int32_t",
    "std", "string",
})


@dataclass
class Source:
    kind: str  # wall-clock | rand | pointer-cast | unordered-iter | env
    rel: str
    line: int
    what: str  # the matched token, for messages

    def key(self) -> tuple:
        return (self.kind, self.rel, self.line)

    def render(self) -> str:
        return f"{self.kind} source '{self.what}' ({self.rel}:{self.line})"


@dataclass
class Taint:
    source: Source
    chain: tuple[str, ...] = ()
    via_call: bool = False  # crossed a function boundary at least once

    def step(self, text: str, via_call: bool = False) -> "Taint":
        chain = self.chain if len(self.chain) >= 8 else self.chain + (text,)
        return Taint(self.source, chain, self.via_call or via_call)


@dataclass
class Reach:
    taint: Taint
    sink_kind: str
    sink_desc: str
    rel: str  # where the flow enters the sink (reporting location)
    line: int

    def key(self) -> tuple:
        return (self.taint.source.key(), self.sink_kind, self.rel, self.line)


@dataclass
class _Summary:
    returns: Taint | None = None
    sink: tuple[str, str, str, int] | None = None  # kind, desc, rel, line


@dataclass
class _Stmt:
    """One statement chunk of a function body (split on ; { }), so a
    statement wrapped over several physical lines is analyzed whole."""
    lineno: int  # 1-based line of the chunk's first code character
    offset: int  # char offset of the chunk within the body
    text: str
    calls: list  # CallSite objects inside this chunk
    sinks: list[tuple[str, str, int]]  # (kind, desc, line of the match)
    sanitized: bool


class FlowEngine:
    def __init__(self, model: SourceModel):
        self.model = model
        self.summaries: dict[str, _Summary] = {}
        self._stmts: dict[str, list[_Stmt]] = {}
        # uid -> list of (stmt index, Source, bound var or None)
        self._seeds: dict[str, list[tuple[int, Source, str | None]]] = {}
        for node in model.nodes:
            self._stmts[node.uid] = self._split(node)
            self._seeds[node.uid] = self._find_sources(node)
            self.summaries[node.uid] = _Summary(
                sink=self._local_sink(node.uid))

    # -- preparation --------------------------------------------------------

    def _split(self, node: FnNode) -> list[_Stmt]:
        src, fn = node.src, node.fn
        body = fn.body
        bounds = [0] + [i + 1 for i, c in enumerate(body) if c in ";{}"] \
            + [len(body)]
        out: list[_Stmt] = []
        for a, b in zip(bounds, bounds[1:]):
            text = body[a:b]
            if not text.strip():
                continue
            lead = len(text) - len(text.lstrip())
            lineno = src.line_of(fn.body_offset + a + lead)
            sinks = []
            for kind, rx, desc in SINKS:
                m = rx.search(text)
                if m:
                    sinks.append((kind, desc,
                                  src.line_of(fn.body_offset + a + m.start())))
            first = lineno
            last = src.line_of(fn.body_offset + b - 1)
            sanitized = any(src.sanitized_at(ln) is not None
                            for ln in range(first, last + 1))
            calls = [c for c in node.calls if a <= c.offset < b]
            out.append(_Stmt(lineno, a, text, calls, sinks, sanitized))
        return out

    def _find_sources(self, node: FnNode
                      ) -> list[tuple[int, Source, str | None]]:
        """(stmt index, Source, bound variable or None) seeds. A bound
        variable makes the taint var-shaped immediately (loop variables,
        timer declarations); unbound sources taint whatever their own
        statement assigns or returns."""
        src, fn = node.src, node.fn
        rel = src.rel
        seeds: list[tuple[int, Source, str | None]] = []
        unordered_vars = {m.group(1)
                          for m in UNORDERED_DECL_RE.finditer(src.code)}
        for idx, st in enumerate(self._stmts[node.uid]):
            if st.sanitized:
                continue
            t = st.text

            def _line(match_start: int) -> int:
                return src.line_of(fn.body_offset + st.offset + match_start)

            m = WALL_CLOCK_SRC_RE.search(t)
            if m:
                dm = re.search(r"\b(?:WallTimer|PhaseTimer)\s+(\w+)", t)
                seeds.append((idx,
                              Source("wall-clock", rel, _line(m.start()),
                                     m.group(1)),
                              dm.group(1) if dm else None))
            m = RAND_SRC_RE.search(t)
            if m:
                seeds.append((idx,
                              Source("rand", rel, _line(m.start()),
                                     m.group(1) or m.group(2)), None))
            m = PTR_CAST_SRC_RE.search(t)
            if m:
                seeds.append((idx,
                              Source("pointer-cast", rel, _line(m.start()),
                                     "reinterpret_cast<uintptr_t>"), None))
            if not rel.startswith(ENV_EXEMPT_PREFIXES):
                m = ENV_SRC_RE.search(t)
                if m:
                    seeds.append((idx,
                                  Source("env", rel, _line(m.start()),
                                         m.group(1)), None))
            m = RANGE_FOR_RE.search(t)
            if m and unordered_vars:
                container = m.group(2).split(".")[-1].split(">")[-1]
                if container in unordered_vars:
                    head = re.sub(r"\w+\s*::\s*", "", m.group(1))
                    for var in re.findall(r"\b([a-z_]\w*)\b", head):
                        if var in _NOT_A_VAR:
                            continue
                        seeds.append((idx,
                                      Source("unordered-iter", rel,
                                             _line(m.start()), container),
                                      var))
        return seeds

    def _local_sink(self, uid: str) -> tuple[str, str, str, int] | None:
        for st in self._stmts[uid]:
            if st.sinks:
                kind, desc, line = st.sinks[0]
                node = self.model.by_uid[uid]
                return (kind, desc, node.src.rel, line)
        return None

    # -- fixpoint -----------------------------------------------------------

    def run(self) -> list[Reach]:
        # Sink reachability: local, else through any callee.
        changed = True
        while changed:
            changed = False
            for node in self.model.nodes:
                s = self.summaries[node.uid]
                if s.sink is not None:
                    continue
                for callee in self.model.callees(node.uid):
                    cs = self.summaries[callee.uid].sink
                    if cs is not None:
                        s.sink = cs
                        changed = True
                        break
        # Return-taint summaries to fixpoint, then a final collection
        # pass with stable summaries.
        for _ in range(8):
            changed = False
            for node in self.model.nodes:
                returns = self._analyze(node, collect=None)
                old = self.summaries[node.uid].returns
                if (returns is None) != (old is None):
                    self.summaries[node.uid].returns = returns
                    changed = True
            if not changed:
                break
        reaches: dict[tuple, Reach] = {}
        for node in self.model.nodes:
            self._analyze(node, collect=reaches)
        return sorted(reaches.values(),
                      key=lambda r: (r.rel, r.line, r.sink_kind,
                                     r.taint.source.key()))

    def _analyze(self, node: FnNode,
                 collect: dict[tuple, Reach] | None) -> Taint | None:
        """One intra-function pass; returns the function's return taint.
        With `collect`, records source->sink reaches."""
        rel = node.src.rel
        if not self._seeds[node.uid] and not any(
                self.summaries[c.uid].returns is not None
                for c in self.model.callees(node.uid)):
            return None  # nothing can be tainted in this function
        var_taints: dict[str, Taint] = {}
        seeds_by_stmt: dict[int, list[tuple[Source, str | None]]] = {}
        for idx, source, var in self._seeds[node.uid]:
            seeds_by_stmt.setdefault(idx, []).append((source, var))
            if var is not None:
                var_taints[var] = Taint(source)
        returns: Taint | None = None
        for _ in range(4):  # rescan for backward flows, to fixpoint
            before = set(var_taints)
            for idx, st in enumerate(self._stmts[node.uid]):
                if st.sanitized:
                    continue
                active: list[Taint] = []
                for source, var in seeds_by_stmt.get(idx, []):
                    if var is None:
                        active.append(Taint(source))
                for var, t in var_taints.items():
                    if re.search(r"\b" + re.escape(var) + r"\b", st.text):
                        active.append(t)
                for call in st.calls:
                    for target in self.model.resolve(call):
                        rt = self.summaries[target.uid].returns
                        if rt is not None:
                            active.append(rt.step(
                                f"returned by {target.fn.qualname}() "
                                f"into {rel}:{st.lineno}", via_call=True))
                            break
                if not active:
                    continue
                taint = min(active, key=lambda t: len(t.chain))
                am = ASSIGN_RE.search(st.text)
                if am and am.group(1) not in var_taints \
                        and am.group(1) not in _NOT_A_VAR:
                    var_taints[am.group(1)] = taint.step(
                        f"flows into '{am.group(1)}' ({rel}:{st.lineno})")
                if RETURN_RE.search(st.text) and returns is None:
                    returns = taint.step(
                        f"returned from {node.fn.qualname}()")
                if collect is not None:
                    self._collect_stmt(node, st, active, collect)
            if set(var_taints) == before:
                break
        return returns

    def _collect_stmt(self, node: FnNode, st: _Stmt,
                      active: list[Taint],
                      collect: dict[tuple, Reach]) -> None:
        rel = node.src.rel
        by_source: dict[tuple, Taint] = {}
        for t in active:
            k = t.source.key()
            if k not in by_source or len(t.chain) < len(by_source[k].chain):
                by_source[k] = t
        for kind, desc, line in st.sinks:
            for t in by_source.values():
                r = Reach(t, kind, desc, rel, line)
                collect.setdefault(r.key(), r)
        # Tainted argument handed to a callee that reaches a sink.
        for call in st.calls:
            arg_text = self._arg_text(node, call)
            if arg_text is None:
                continue
            hit = [t for t in by_source.values()
                   if self._taints_text(t, arg_text, node, st)]
            if not hit:
                continue
            for target in self.model.resolve(call):
                sink = self.summaries[target.uid].sink
                if sink is None:
                    continue
                kind, desc, srel, sline = sink
                for t in hit:
                    tt = t.step(
                        f"passed to {target.fn.qualname}() at "
                        f"{rel}:{call.line}, which reaches {desc} "
                        f"({srel}:{sline})", via_call=True)
                    r = Reach(tt, kind, desc, rel, call.line)
                    collect.setdefault(r.key(), r)
                break

    def _arg_text(self, node: FnNode, call) -> str | None:
        body = node.fn.body
        open_idx = body.find("(", call.offset)
        if open_idx < 0:
            return None
        close_idx = match_paren(body, open_idx)
        if close_idx < 0:
            return None
        return body[open_idx + 1:close_idx]

    def _taints_text(self, t: Taint, text: str, node: FnNode,
                     st: _Stmt) -> bool:
        """Does taint `t` flow through `text` (an argument list)?"""
        # Var-shaped taints: the variable appears in the text. Expression
        # sources (rand() etc.): the source statement is this one and the
        # source token sits inside the text.
        for idx, source, var in self._seeds[node.uid]:
            if source.key() != t.source.key():
                continue
            if var is not None:
                return bool(
                    re.search(r"\b" + re.escape(var) + r"\b", text))
            return self._stmts[node.uid][idx] is st
        # Taint that flowed into a named variable earlier in the chain.
        for step in t.chain:
            m = re.search(r"flows into '(\w+)'", step)
            if m and re.search(r"\b" + re.escape(m.group(1)) + r"\b", text):
                return True
        # Direct pass of a tainted call result: `publish(helper())` where
        # helper()'s summary returns this taint.
        if t.chain and f"into {node.src.rel}:{st.lineno}" in t.chain[-1]:
            for call in st.calls:
                if call.name not in text:
                    continue
                for target in self.model.resolve(call):
                    rt = self.summaries[target.uid].returns
                    if rt is not None and rt.source.key() == t.source.key():
                        return True
        return False
