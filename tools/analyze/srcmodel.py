"""Source model: a lightweight C++-aware view of one translation unit.

No libclang: the analyzer tokenizes just enough C++ to make the rule
passes reliable on this codebase's style (Google-ish, clang-format'd).
The core trick is the *code view*: the raw text with comments and string
literals blanked out but line structure preserved, so regex passes never
match inside comments/strings and reported line numbers stay exact.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path

SUPPRESS_RE = re.compile(
    r"ESTCLUST-SUPPRESS\(([a-z0-9-]+(?:\s*,\s*[a-z0-9-]+)*)\)\s*:\s*(\S.*)"
)
# Explicit taint cut point for the detflow family: the annotated line (and
# the line below it, so the comment can ride above a statement) does not
# propagate nondeterminism taint. The reason is mandatory -- a cut point
# is a human proof obligation, not a mute button.
SANITIZED_RE = re.compile(r"ESTCLUST-DETFLOW-SANITIZED\((\S[^)]*)\)")
EXPECT_RE = re.compile(r"ESTCLUST-EXPECT\(([a-z0-9-]+)\)")
EXPECT_SUPPRESSED_RE = re.compile(r"ESTCLUST-EXPECT-SUPPRESSED\((\d+)\)")
EXPECT_STALE_RE = re.compile(r"ESTCLUST-EXPECT-STALE\((\d+)\)")


@dataclass
class Violation:
    file: str  # repo-relative, forward slashes
    line: int
    rule: str
    message: str

    def key(self) -> tuple:
        return (self.file, self.line, self.rule)

    def render(self) -> str:
        return f"{self.file}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class Suppression:
    line: int
    rules: list[str]
    reason: str
    used: bool = False

    def covers(self, rule: str) -> bool:
        # Exact id, or a family prefix ("determinism" covers
        # "determinism-rand").
        return any(rule == s or rule.startswith(s + "-") for s in self.rules)


@dataclass
class Function:
    name: str
    start_line: int  # 1-based line of the definition header
    end_line: int
    params: str  # parameter list text (code view)
    body: str  # body text between braces (code view)
    body_offset: int  # char offset of the body within the file's code view
    qual: str = ""  # class qualifier for out-of-line members ("Master")

    @property
    def qualname(self) -> str:
        return f"{self.qual}::{self.name}" if self.qual else self.name


# Keywords and statement heads that look like `name (` but are never
# function definitions or calls.
_NOT_A_CALL = frozenset({
    "if", "for", "while", "switch", "return", "sizeof", "catch", "throw",
    "static_cast", "reinterpret_cast", "const_cast", "dynamic_cast",
    "alignof", "decltype", "noexcept", "constexpr", "static_assert",
    "defined", "assert", "new", "delete", "operator", "requires",
    # Compiler attributes on lambdas otherwise parse as a definition
    # named "__attribute__" whose body is the lambda's, splitting the
    # lambda out of its enclosing function.
    "__attribute__", "__declspec",
})

CALL_RE = re.compile(r"(?:\b(\w+)\s*(?:<[^<>;(){}]*>)?\s*::\s*)?"
                     r"\b([A-Za-z_]\w*)\s*\(")


def calls_in(body: str) -> list[tuple[str, str, int]]:
    """Call sites in a function body (code view): (qualifier, callee name,
    offset of the callee name within `body`). The qualifier is whatever
    sits before a trailing `::` -- a class, a namespace, or `std`; the
    resolver decides what to make of it. Macro-style invocations resolve
    to nothing later because macros are never extracted as functions."""
    out: list[tuple[str, str, int]] = []
    for m in CALL_RE.finditer(body):
        name = m.group(2)
        if name in _NOT_A_CALL:
            continue
        # Skip definition-ish noise: `name (` directly preceded by `.` or
        # `->` is a member call (keep); preceded by `&` it is usually a
        # function pointer reference (keep too -- conservative).
        out.append((m.group(1) or "", name, m.start(2)))
    return out


def strip_code(text: str) -> str:
    """Blanks comments and string/char literals, preserving newlines and
    the column positions of all remaining code."""
    out: list[str] = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            i += 2
            out.append("  ")
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            if i + 1 < n:
                out.append("  ")
                i += 2
        elif c in "\"'":
            quote = c
            out.append(" ")
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\n":  # unterminated on this line; bail out
                    break
                out.append("  " if text[i] == "\\" else " ")
                i += 2 if text[i] == "\\" else 1
            if i < n and text[i] == quote:
                out.append(" ")
                i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def match_paren(text: str, open_idx: int, open_ch: str = "(",
                close_ch: str = ")") -> int:
    """Index of the matching close bracket, or -1. `text[open_idx]` must be
    the open bracket (call with the code view, never raw text)."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == open_ch:
            depth += 1
        elif text[i] == close_ch:
            depth -= 1
            if depth == 0:
                return i
    return -1


def split_args(arg_text: str) -> list[str]:
    """Splits an argument list on top-level commas (ignores commas nested
    in (), <>, [] or {})."""
    args: list[str] = []
    depth = 0
    cur: list[str] = []
    for c in arg_text:
        if c in "(<[{":
            depth += 1
        elif c in ")>]}":
            depth -= 1
        if c == "," and depth == 0:
            args.append("".join(cur).strip())
            cur = []
        else:
            cur.append(c)
    tail = "".join(cur).strip()
    if tail:
        args.append(tail)
    return args


def normalize_type(t: str) -> str:
    """Canonical spelling for type comparison: drops std::, const, &,
    and whitespace."""
    t = re.sub(r"\bstd::", "", t)
    t = re.sub(r"\bconst\b", "", t)
    t = t.replace("&", "")
    return re.sub(r"\s+", "", t)


class SourceFile:
    """One parsed source file: raw text, code view, suppressions."""

    def __init__(self, path: Path, rel: str, code: str | None = None,
                 text: str | None = None):
        self.path = path
        self.rel = rel
        self.text = path.read_text(encoding="utf-8") if text is None else text
        # `code` lets the cache skip re-tokenization; it must be the
        # strip_code() of exactly this text (cache.py asserts that).
        self.code = strip_code(self.text) if code is None else code
        self.lines = self.text.splitlines()
        self.code_lines = self.code.splitlines()
        self._functions: list[Function] | None = None
        self.suppressions: list[Suppression] = []
        self.sanitized: dict[int, str] = {}  # line -> reason
        for lineno, line in enumerate(self.lines, 1):
            m = SUPPRESS_RE.search(line)
            if m:
                rules = [r.strip() for r in m.group(1).split(",")]
                self.suppressions.append(
                    Suppression(lineno, rules, m.group(2).strip()))
            sm = SANITIZED_RE.search(line)
            if sm:
                self.sanitized[lineno] = sm.group(1).strip()

    def line_of(self, offset: int) -> int:
        """1-based line number of a char offset into the code view."""
        return self.code.count("\n", 0, offset) + 1

    def suppression_for(self, line: int, rule: str) -> Suppression | None:
        """A suppression covers the line it sits on and the next line (so
        it can ride above a statement or trail it on the same line)."""
        for s in self.suppressions:
            if s.line in (line, line - 1) and s.covers(rule):
                return s
        return None

    def sanitized_at(self, line: int) -> str | None:
        """Reason text if a DETFLOW-SANITIZED annotation covers `line`
        (same coverage shape as suppressions: own line and the next)."""
        return self.sanitized.get(line) or self.sanitized.get(line - 1)

    def functions(self, name_re: str = r"[A-Za-z_]\w*") -> list[Function]:
        """Free/member function definitions whose name matches `name_re`.
        Extraction runs once per file and is filtered on demand (the
        source-model cache injects the extracted list directly)."""
        if self._functions is None:
            self._functions = self._extract_functions()
        if name_re == r"[A-Za-z_]\w*":
            return list(self._functions)
        rx = re.compile(name_re)
        return [f for f in self._functions if rx.fullmatch(f.name)]

    def _extract_functions(self) -> list[Function]:
        """A definition is `[Class ::] name ( ... ) { ... }` with nothing
        but qualifiers/specifiers (or a constructor initializer list)
        between ')' and '{'."""
        out: list[Function] = []
        name_re = r"[A-Za-z_]\w*"
        pattern = (r"(?:\b(\w+)\s*::\s*)?\b(" + name_re + r")\s*\(")
        for m in re.finditer(pattern, self.code):
            name = m.group(2)
            if name in _NOT_A_CALL:
                continue
            open_idx = m.end() - 1
            close_idx = match_paren(self.code, open_idx)
            if close_idx < 0:
                continue
            body_open = self._body_open_after(close_idx)
            if body_open < 0:
                continue
            body_close = match_paren(self.code, body_open, "{", "}")
            if body_close < 0:
                continue
            out.append(Function(
                name=name,
                qual=m.group(1) or "",
                start_line=self.line_of(m.start(2)),
                end_line=self.line_of(body_close),
                params=self.code[open_idx + 1:close_idx],
                body=self.code[body_open + 1:body_close],
                body_offset=body_open + 1,
            ))
        return out

    def _body_open_after(self, close_idx: int) -> int:
        """Offset of the body `{` following a parameter list's `)`, or -1
        if this isn't a definition. Tolerates trailing qualifiers and a
        constructor initializer list (`: a_(x), b_{y} {`)."""
        after = self.code[close_idx + 1:close_idx + 160]
        am = re.match(
            r"\s*(?:const|noexcept|override|final|->\s*[\w:<>&*\s]+)*\s*",
            after)
        pos = close_idx + 1 + am.end()
        if pos < len(self.code) and self.code[pos] == "{":
            return pos
        if pos >= len(self.code) or self.code[pos] != ":":
            return -1
        # Constructor initializer list: scan forward at top level; a `{`
        # whose matching `}` is NOT followed by `,` ends the list and
        # opens the body (brace-init members like `f_{x},` keep going).
        i = pos + 1
        limit = min(len(self.code), pos + 4000)
        while i < limit:
            c = self.code[i]
            if c == "(":
                i = match_paren(self.code, i)
                if i < 0:
                    return -1
            elif c == "{":
                close = match_paren(self.code, i, "{", "}")
                if close < 0:
                    return -1
                nxt = re.match(r"\s*,", self.code[close + 1:close + 40])
                if nxt:
                    i = close
                else:
                    return i
            elif c == ";":
                return -1
            i += 1
        return -1

    def struct_fields(self) -> dict[str, dict[str, str]]:
        """struct name -> {field name -> declared type (normalized)}.
        Covers the flat POD-ish message structs this repo serializes."""
        out: dict[str, dict[str, str]] = {}
        for m in re.finditer(r"\bstruct\s+(\w+)\s*(?::[^\{]*)?\{", self.code):
            name = m.group(1)
            open_idx = self.code.index("{", m.start())
            close_idx = match_paren(self.code, open_idx, "{", "}")
            if close_idx < 0:
                continue
            body = self.code[open_idx + 1:close_idx]
            fields: dict[str, str] = {}
            decl_re = re.compile(
                r"([\w:]+(?:\s*<[^;{}=]*>)?(?:\s*::\s*\w+)?)\s+"
                r"(\w+)\s*(?:=[^;,]*)?(?:,\s*(\w+)\s*(?:=[^;,]*)?)*;")
            for dm in decl_re.finditer(body):
                dtype = dm.group(1)
                if dtype in ("return", "using", "static_assert", "struct",
                             "public", "private", "static", "constexpr"):
                    continue
                names = [dm.group(2)]
                if dm.group(3):
                    names.append(dm.group(3))
                for fname in names:
                    fields[fname] = normalize_type(dtype)
            out[name] = fields
        return out


@dataclass
class CallSite:
    qual: str  # qualifier text before `::` at the call, "" if none
    name: str
    line: int  # 1-based line in the caller's file
    offset: int  # char offset of the callee name within the caller's body


@dataclass
class FnNode:
    uid: str  # "<rel>:<qualname>:<start_line>" -- stable and unique
    src: "SourceFile"
    fn: Function
    calls: list[CallSite] = field(default_factory=list)


class SourceModel:
    """Whole-tree function index plus a conservative name-based call
    graph. Resolution is by simple name; when the call spells a `Class::`
    qualifier that matches some definition's qualifier, candidates narrow
    to those (namespace qualifiers fall through to the name match). Edges
    only point at functions *defined* in the scanned tree, so std:: and
    macro calls resolve to nothing. Over-approximate by design: a rule
    that walks the graph may visit functions the program never calls,
    never the reverse."""

    def __init__(self, files: list["SourceFile"]):
        self.files = files
        self.nodes: list[FnNode] = []
        self.by_uid: dict[str, FnNode] = {}
        self.by_name: dict[str, list[FnNode]] = {}
        self.by_file: dict[str, list[FnNode]] = {}
        for src in files:
            file_nodes: list[FnNode] = []
            for fn in src.functions():
                uid = f"{src.rel}:{fn.qualname}:{fn.start_line}"
                calls = [
                    CallSite(q, n, src.line_of(fn.body_offset + off), off)
                    for (q, n, off) in calls_in(fn.body)
                ]
                node = FnNode(uid, src, fn, calls)
                file_nodes.append(node)
                self.nodes.append(node)
                self.by_uid[uid] = node
                self.by_name.setdefault(fn.name, []).append(node)
            self.by_file[src.rel] = file_nodes
        # Edge maps, deduplicated, deterministic order (uid-sorted).
        self._callees: dict[str, list[str]] = {}
        self._callers: dict[str, set[str]] = {n.uid: set() for n in self.nodes}
        for node in self.nodes:
            outs: set[str] = set()
            for call in node.calls:
                for target in self.resolve(call):
                    if target.uid != node.uid:
                        outs.add(target.uid)
                        self._callers[target.uid].add(node.uid)
            self._callees[node.uid] = sorted(outs)

    def resolve(self, call: CallSite) -> list[FnNode]:
        candidates = self.by_name.get(call.name, [])
        if call.qual:
            qualified = [c for c in candidates if c.fn.qual == call.qual]
            if qualified:
                return qualified
        return candidates

    def callees(self, uid: str) -> list[FnNode]:
        return [self.by_uid[u] for u in self._callees.get(uid, [])]

    def callers(self, uid: str) -> list[FnNode]:
        return [self.by_uid[u] for u in sorted(self._callers.get(uid, ()))]

    def enclosing(self, rel: str, line: int) -> FnNode | None:
        """Innermost function containing `line` in file `rel`."""
        best: FnNode | None = None
        for node in self.by_file.get(rel, []):
            if node.fn.start_line <= line <= node.fn.end_line:
                if best is None or (node.fn.end_line - node.fn.start_line <
                                    best.fn.end_line - best.fn.start_line):
                    best = node
        return best

    def closure(self, seeds: set[str], direction: str) -> set[str]:
        """Transitive closure over callees ("down") or callers ("up"),
        seeds included."""
        step = self._callees.get if direction == "down" else \
            (lambda u: self._callers.get(u, ()))
        seen = set(seeds)
        work = list(seeds)
        while work:
            for nxt in step(work.pop()):
                if nxt not in seen:
                    seen.add(nxt)
                    work.append(nxt)
        return seen

    def family(self, uid: str) -> set[str]:
        """The call-tree family of a function: every ancestor caller, plus
        everything reachable down from any of those (which includes the
        function's own callees and its siblings' subtrees). This is the
        set in which a counter bump may find its matching charge()."""
        return self.closure(self.closure({uid}, "up"), "down")

    def to_json(self) -> dict:
        """Deterministic document for the callgraph.json artifact."""
        functions = []
        for node in sorted(self.nodes, key=lambda n: n.uid):
            functions.append({
                "uid": node.uid,
                "file": node.src.rel,
                "name": node.fn.name,
                "qual": node.fn.qual,
                "lines": [node.fn.start_line, node.fn.end_line],
                "calls": self._callees.get(node.uid, []),
            })
        return {
            "schema": "estclust-callgraph-v1",
            "files": sorted(self.by_file),
            "functions": functions,
        }
