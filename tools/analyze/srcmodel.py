"""Source model: a lightweight C++-aware view of one translation unit.

No libclang: the analyzer tokenizes just enough C++ to make the rule
passes reliable on this codebase's style (Google-ish, clang-format'd).
The core trick is the *code view*: the raw text with comments and string
literals blanked out but line structure preserved, so regex passes never
match inside comments/strings and reported line numbers stay exact.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path

SUPPRESS_RE = re.compile(
    r"ESTCLUST-SUPPRESS\(([a-z0-9-]+(?:\s*,\s*[a-z0-9-]+)*)\)\s*:\s*(\S.*)"
)
EXPECT_RE = re.compile(r"ESTCLUST-EXPECT\(([a-z0-9-]+)\)")
EXPECT_SUPPRESSED_RE = re.compile(r"ESTCLUST-EXPECT-SUPPRESSED\((\d+)\)")
EXPECT_STALE_RE = re.compile(r"ESTCLUST-EXPECT-STALE\((\d+)\)")


@dataclass
class Violation:
    file: str  # repo-relative, forward slashes
    line: int
    rule: str
    message: str

    def key(self) -> tuple:
        return (self.file, self.line, self.rule)

    def render(self) -> str:
        return f"{self.file}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class Suppression:
    line: int
    rules: list[str]
    reason: str
    used: bool = False

    def covers(self, rule: str) -> bool:
        # Exact id, or a family prefix ("determinism" covers
        # "determinism-rand").
        return any(rule == s or rule.startswith(s + "-") for s in self.rules)


@dataclass
class Function:
    name: str
    start_line: int  # 1-based line of the definition header
    end_line: int
    params: str  # parameter list text (code view)
    body: str  # body text between braces (code view)
    body_offset: int  # char offset of the body within the file's code view


def strip_code(text: str) -> str:
    """Blanks comments and string/char literals, preserving newlines and
    the column positions of all remaining code."""
    out: list[str] = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            i += 2
            out.append("  ")
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            if i + 1 < n:
                out.append("  ")
                i += 2
        elif c in "\"'":
            quote = c
            out.append(" ")
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\n":  # unterminated on this line; bail out
                    break
                out.append("  " if text[i] == "\\" else " ")
                i += 2 if text[i] == "\\" else 1
            if i < n and text[i] == quote:
                out.append(" ")
                i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def match_paren(text: str, open_idx: int, open_ch: str = "(",
                close_ch: str = ")") -> int:
    """Index of the matching close bracket, or -1. `text[open_idx]` must be
    the open bracket (call with the code view, never raw text)."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == open_ch:
            depth += 1
        elif text[i] == close_ch:
            depth -= 1
            if depth == 0:
                return i
    return -1


def split_args(arg_text: str) -> list[str]:
    """Splits an argument list on top-level commas (ignores commas nested
    in (), <>, [] or {})."""
    args: list[str] = []
    depth = 0
    cur: list[str] = []
    for c in arg_text:
        if c in "(<[{":
            depth += 1
        elif c in ")>]}":
            depth -= 1
        if c == "," and depth == 0:
            args.append("".join(cur).strip())
            cur = []
        else:
            cur.append(c)
    tail = "".join(cur).strip()
    if tail:
        args.append(tail)
    return args


def normalize_type(t: str) -> str:
    """Canonical spelling for type comparison: drops std::, const, &,
    and whitespace."""
    t = re.sub(r"\bstd::", "", t)
    t = re.sub(r"\bconst\b", "", t)
    t = t.replace("&", "")
    return re.sub(r"\s+", "", t)


class SourceFile:
    """One parsed source file: raw text, code view, suppressions."""

    def __init__(self, path: Path, rel: str):
        self.path = path
        self.rel = rel
        self.text = path.read_text(encoding="utf-8")
        self.code = strip_code(self.text)
        self.lines = self.text.splitlines()
        self.code_lines = self.code.splitlines()
        self.suppressions: list[Suppression] = []
        for lineno, line in enumerate(self.lines, 1):
            m = SUPPRESS_RE.search(line)
            if m:
                rules = [r.strip() for r in m.group(1).split(",")]
                self.suppressions.append(
                    Suppression(lineno, rules, m.group(2).strip()))

    def line_of(self, offset: int) -> int:
        """1-based line number of a char offset into the code view."""
        return self.code.count("\n", 0, offset) + 1

    def suppression_for(self, line: int, rule: str) -> Suppression | None:
        """A suppression covers the line it sits on and the next line (so
        it can ride above a statement or trail it on the same line)."""
        for s in self.suppressions:
            if s.line in (line, line - 1) and s.covers(rule):
                return s
        return None

    def functions(self, name_re: str = r"[A-Za-z_]\w*") -> list[Function]:
        """Free/member function definitions whose name matches `name_re`.
        A definition is `name ( ... ) { ... }` with nothing but
        qualifiers/specifiers between ')' and '{'."""
        out: list[Function] = []
        for m in re.finditer(r"\b(" + name_re + r")\s*\(", self.code):
            name = m.group(1)
            if name in ("if", "for", "while", "switch", "return", "sizeof",
                        "catch", "static_cast", "reinterpret_cast"):
                continue
            open_idx = m.end() - 1
            close_idx = match_paren(self.code, open_idx)
            if close_idx < 0:
                continue
            after = self.code[close_idx + 1:close_idx + 120]
            am = re.match(
                r"\s*(?:const|noexcept|override|final|->\s*[\w:<>&*\s]+)*\s*\{",
                after)
            if not am:
                continue
            body_open = close_idx + 1 + am.end() - 1
            body_close = match_paren(self.code, body_open, "{", "}")
            if body_close < 0:
                continue
            out.append(Function(
                name=name,
                start_line=self.line_of(m.start()),
                end_line=self.line_of(body_close),
                params=self.code[open_idx + 1:close_idx],
                body=self.code[body_open + 1:body_close],
                body_offset=body_open + 1,
            ))
        return out

    def struct_fields(self) -> dict[str, dict[str, str]]:
        """struct name -> {field name -> declared type (normalized)}.
        Covers the flat POD-ish message structs this repo serializes."""
        out: dict[str, dict[str, str]] = {}
        for m in re.finditer(r"\bstruct\s+(\w+)\s*(?::[^\{]*)?\{", self.code):
            name = m.group(1)
            open_idx = self.code.index("{", m.start())
            close_idx = match_paren(self.code, open_idx, "{", "}")
            if close_idx < 0:
                continue
            body = self.code[open_idx + 1:close_idx]
            fields: dict[str, str] = {}
            decl_re = re.compile(
                r"([\w:]+(?:\s*<[^;{}=]*>)?(?:\s*::\s*\w+)?)\s+"
                r"(\w+)\s*(?:=[^;,]*)?(?:,\s*(\w+)\s*(?:=[^;,]*)?)*;")
            for dm in decl_re.finditer(body):
                dtype = dm.group(1)
                if dtype in ("return", "using", "static_assert", "struct",
                             "public", "private", "static", "constexpr"):
                    continue
                names = [dm.group(2)]
                if dm.group(3):
                    names.append(dm.group(3))
                for fname in names:
                    fields[fname] = normalize_type(dtype)
            out[name] = fields
        return out
