"""Rule family 2: tag protocol (rule id `tag-protocol`).

Builds the static send -> recv matrix of the master/slave/gst protocol
from every `comm.send(...)` / `comm.recv(...)` site (including the
delayed-send and two-tag variants `send_delayed`, `recv2`, `probe2`)
and the `kTag*` constants, then checks:

  * every tag that is sent is also received by some role, and vice
    versa (a sent-but-never-received tag is a queued-forever message;
    a received-but-never-sent tag is a receive that can never be
    satisfied);
  * a declared kTag* constant that is neither sent nor received is dead
    protocol surface (the PR 3 removal of kTagStop is the precedent);
  * two kTag* constants must not share a wire value;
  * protocol sites outside src/mpr must name their tag: a send with a
    computed tag or a blocking recv with a wildcard tag bypasses the
    static matrix entirely;
  * every blocking protocol recv must sit directly under a CheckOpScope
    whose label's first segment names the module (e.g.
    "pace.master.await_report" in src/pace), so the runtime checker's
    wait-for-graph reports and this static matrix describe the same
    operations. Comment-only lines do not count against the proximity
    window: protocol annotations (ESTCLUST-PROTO) sit between the scope
    and the recv they describe.

The mpr runtime itself (src/mpr) is exempt: its collectives use
internally-generated tags above kInternalTagBase and carry their own
"mpr.*" scopes.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import PurePosixPath

from analyze.srcmodel import SourceFile, Violation, match_paren, split_args

RULE = "tag-protocol"

DECL_RE = re.compile(r"\bconstexpr\s+int\s+(kTag\w+)\s*=\s*(\d+)\s*;")
CALL_RE = re.compile(
    r"\b(?:\w+)(?:\.|->)(send_delayed|send|recv2|recv|try_recv|probe2|probe)"
    r"\s*\(")


@dataclass
class Site:
    file: SourceFile
    line: int
    op: str  # send | recv | try_recv | probe
    role: str
    tag: str | None  # kTag* name, or None for wildcard/computed


def role_of(rel: str) -> str:
    p = PurePosixPath(rel)
    parts = p.parts
    if len(parts) >= 3 and parts[0] == "src":
        module = parts[1]
        stem = p.stem
        if module == "pace" and stem in ("master", "slave"):
            return f"pace.{stem}"
        return module
    return p.stem


def module_of(rel: str) -> str | None:
    parts = PurePosixPath(rel).parts
    if len(parts) >= 3 and parts[0] == "src":
        return parts[1]
    return None


def _scope_labels(src: SourceFile) -> dict[int, str]:
    """line -> label for every CheckOpScope construction. The label is a
    string literal, so it is read from the raw text (the code view blanks
    strings)."""
    labels: dict[int, str] = {}
    for m in re.finditer(r"\bCheckOpScope\s+\w+\s*\(", src.code):
        line = src.line_of(m.start())
        # The literal may sit on this raw line or the next (clang-format
        # wraps long constructor calls).
        for lineno in (line, line + 1):
            if lineno - 1 < len(src.lines):
                lm = re.search(r'"([^"]+)"', src.lines[lineno - 1])
                if lm:
                    labels[line] = lm.group(1)
                    break
    return labels


def _code_gap(src: SourceFile, from_line: int, to_line: int) -> int:
    """Non-comment lines in (from_line, to_line]: the proximity distance
    between a CheckOpScope and a recv, with annotation comments free."""
    gap = 0
    for lineno in range(from_line + 1, to_line + 1):
        if lineno - 1 >= len(src.lines):
            break
        if not src.lines[lineno - 1].lstrip().startswith("//"):
            gap += 1
    return gap


def run(files: list[SourceFile]) -> list[Violation]:
    out: list[Violation] = []

    decls: dict[str, tuple[str, int, int]] = {}  # name -> (file, line, value)
    for f in files:
        for m in DECL_RE.finditer(f.code):
            decls[m.group(1)] = (f.rel, f.line_of(m.start()),
                                 int(m.group(2)))

    # Duplicate wire values.
    by_value: dict[int, list[str]] = {}
    for name, (_, _, value) in sorted(decls.items()):
        by_value.setdefault(value, []).append(name)
    for value, names in sorted(by_value.items()):
        if len(names) > 1:
            rel, line, _ = decls[names[1]]
            out.append(Violation(rel, line, RULE,
                                 f"tags {', '.join(names)} share wire value "
                                 f"{value}"))

    sites: list[Site] = []
    for f in files:
        if module_of(f.rel) == "mpr":
            continue  # runtime-internal traffic: dynamic tags by design
        role = role_of(f.rel)
        for m in CALL_RE.finditer(f.code):
            op = m.group(1)
            open_idx = m.end() - 1
            close_idx = match_paren(f.code, open_idx)
            if close_idx < 0:
                continue
            args = split_args(f.code[open_idx + 1:close_idx])
            line = f.line_of(m.start())
            tag: str | None = None
            if op in ("send", "send_delayed"):
                if len(args) < 3:
                    continue  # not a Communicator send
                tm = re.search(r"\bkTag\w+\b", args[1])
                tag = tm.group(0) if tm else None
                if tag is None:
                    out.append(Violation(
                        f.rel, line, RULE,
                        f"{op} with non-constant tag '{args[1]}' outside "
                        "src/mpr; protocol sends must name a kTag* constant"))
                    continue
                op = "send"
            elif op in ("recv2", "probe2"):
                # Two-tag variants deliver whichever tag is ready first;
                # each tag is its own site in the matrix (and for recv2,
                # each falls under the CheckOpScope rule).
                base = "recv" if op == "recv2" else "probe"
                for argi in (1, 2):
                    tag = None
                    if len(args) > argi:
                        tm = re.search(r"\bkTag\w+\b", args[argi])
                        tag = tm.group(0) if tm else None
                    if tag is None:
                        out.append(Violation(
                            f.rel, line, RULE,
                            f"{op} with a wildcard/computed tag outside "
                            "src/mpr; protocol receives must name kTag* "
                            "constants so the static send/recv matrix "
                            "stays closed"))
                    else:
                        sites.append(Site(f, line, base, role, tag))
                continue
            else:
                # recv(src, tag) / try_recv / probe. Wildcard tag = fewer
                # than two arguments or a non-kTag second argument.
                if len(args) >= 2:
                    tm = re.search(r"\bkTag\w+\b", args[1])
                    tag = tm.group(0) if tm else None
                if tag is None:
                    out.append(Violation(
                        f.rel, line, RULE,
                        f"{op} with a wildcard/computed tag outside src/mpr; "
                        "protocol receives must name a kTag* constant so the "
                        "static send/recv matrix stays closed"))
                    continue
            sites.append(Site(f, line, op, role, tag))

    # The send -> recv matrix.
    senders: dict[str, list[Site]] = {}
    receivers: dict[str, list[Site]] = {}
    for s in sites:
        (senders if s.op == "send" else receivers).setdefault(
            s.tag, []).append(s)

    for tag in sorted(senders):
        if tag not in receivers:
            s = senders[tag][0]
            out.append(Violation(
                s.file.rel, s.line, RULE,
                f"{tag} is sent by role '{s.role}' but no role ever "
                "receives it: the message would sit queued forever"))
    for tag in sorted(receivers):
        if tag not in senders:
            s = receivers[tag][0]
            out.append(Violation(
                s.file.rel, s.line, RULE,
                f"role '{s.role}' receives {tag} but no role ever sends "
                "it: this receive can never be satisfied"))
    used = set(senders) | set(receivers)
    for tag in sorted(decls):
        if tag not in used:
            rel, line, _ = decls[tag]
            out.append(Violation(rel, line, RULE,
                                 f"{tag} is declared but never sent or "
                                 "received: dead protocol surface"))

    # CheckOpScope labels on blocking protocol receives. The window is
    # measured in non-comment lines so interleaved annotation comments
    # (ESTCLUST-PROTO and friends) never push a recv out of its scope.
    for s in sites:
        if s.op != "recv":
            continue
        module = module_of(s.file.rel)
        if module is None:
            continue
        labels = _scope_labels(s.file)
        near = [lab for line, lab in labels.items()
                if line <= s.line
                and _code_gap(s.file, line, s.line) <= 5]
        if not near:
            out.append(Violation(
                s.file.rel, s.line, RULE,
                f"blocking recv of {s.tag} has no CheckOpScope label; wrap "
                "it so the runtime checker's wait-for-graph names this "
                "operation"))
        elif not any(lab.split(".")[0] == module for lab in near):
            out.append(Violation(
                s.file.rel, s.line, RULE,
                f"CheckOpScope label '{near[-1]}' does not start with this "
                f"module's name '{module}.'"))
    return out
