"""Rule family 5: trace instrumentation hygiene (rule ids
`obs-span-literal`, `obs-category-clash`).

The trace pipeline stores span/instant names as `const char*` without
copying, and every downstream consumer — the Chrome exporter, the phase
aggregator, the critical-path profiler — keys on the exact name string.
Two static properties keep that sound:

  * `obs-span-literal`: the name (and category, when present) passed to
    ESTCLUST_TRACE_SPAN / ESTCLUST_TRACE_INSTANT or to a raw
    tracer->begin/end/instant call must be a string literal. A computed
    name is a dangling-pointer hazard (the recorder outlives the call
    site's locals) and breaks the exporter's static-string assumption.
  * `obs-category-clash`: one span/instant name must not appear under
    two different categories — the per-name aggregations would silently
    split or merge depending on which site ran.

src/obs itself is exempt: the macro bodies and the TraceSpan RAII
helper forward `(name)` parameters by design.

String literals are invisible in the code view (srcmodel blanks them),
so argument *offsets* are computed on the code view and the literal text
is read from the raw source at the same positions.
"""

from __future__ import annotations

import bisect
import re
from pathlib import PurePosixPath

from analyze.srcmodel import SourceFile, Violation, match_paren

RULE_LITERAL = "obs-span-literal"
RULE_CLASH = "obs-category-clash"

MACRO_RE = re.compile(r"\b(ESTCLUST_TRACE_SPAN|ESTCLUST_TRACE_INSTANT)\s*\(")
# Raw recorder calls: the object must be a tracer (pointer variable or
# accessor), so iterator `.begin()`/`.end()` never match.
METHOD_RE = re.compile(
    r"\b\w*tracer_?(?:\(\))?\s*->\s*(begin|end|instant)\s*\(")

LITERAL_RE = re.compile(r'^\s*"((?:[^"\\]|\\.)*)"\s*$')


def exempt(rel: str) -> bool:
    parts = PurePosixPath(rel).parts
    return len(parts) >= 2 and parts[0] == "src" and parts[1] == "obs"


def arg_spans(code: str, open_idx: int, close_idx: int) -> list[tuple]:
    """(start, end) offset pairs of the top-level arguments between the
    parens, computed on the code view so nested calls split correctly."""
    spans = []
    depth = 0
    start = open_idx + 1
    for i in range(open_idx + 1, close_idx):
        c = code[i]
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
        elif c == "," and depth == 0:
            spans.append((start, i))
            start = i + 1
    if close_idx > start or spans:
        spans.append((start, close_idx))
    return spans


def _line_starts(text: str) -> list[int]:
    starts = [0]
    for i, c in enumerate(text):
        if c == "\n":
            starts.append(i + 1)
    return starts


class RawMap:
    """Maps code-view offsets to raw-text offsets. strip_code preserves
    column positions *within* a line but drops line-comment tails, so
    global offsets drift; per-line (line, column) stays exact."""

    def __init__(self, src: SourceFile):
        self.src = src
        self.code_starts = _line_starts(src.code)
        self.raw_starts = _line_starts(src.text)

    def raw_offset(self, code_offset: int) -> int:
        line = bisect.bisect_right(self.code_starts, code_offset) - 1
        return self.raw_starts[line] + (code_offset -
                                        self.code_starts[line])

    def literal_at(self, span: tuple) -> str | None:
        """The string literal occupying the argument span, read from the
        raw text (None when the argument is any other expression)."""
        raw = self.src.text[self.raw_offset(span[0]):
                            self.raw_offset(span[1])]
        m = LITERAL_RE.match(raw)
        return m.group(1) if m else None


def run(files: list[SourceFile]) -> list[Violation]:
    out: list[Violation] = []
    # name -> (category, file, line) of the first literal-categorized site.
    categories: dict[str, tuple] = {}

    for f in files:
        if exempt(f.rel):
            continue
        raw = RawMap(f)
        sites = []  # (line, call label, name span, category span | None)
        for m in MACRO_RE.finditer(f.code):
            close = match_paren(f.code, m.end() - 1)
            if close < 0:
                continue
            spans = arg_spans(f.code, m.end() - 1, close)
            if len(spans) < 3:
                continue  # not the macro's real arity; the compiler gates it
            sites.append((f.line_of(m.start()), m.group(1), spans[1],
                          spans[2]))
        for m in METHOD_RE.finditer(f.code):
            close = match_paren(f.code, m.end() - 1)
            if close < 0:
                continue
            spans = arg_spans(f.code, m.end() - 1, close)
            if not spans:
                continue
            method = m.group(1)
            cat = spans[1] if method != "end" and len(spans) >= 2 else None
            sites.append((f.line_of(m.start()), f"tracer->{method}",
                          spans[0], cat))

        for line, label, name_span, cat_span in sites:
            name = raw.literal_at(name_span)
            if name is None:
                out.append(Violation(
                    f.rel, line, RULE_LITERAL,
                    f"{label} name must be a string literal (the recorder "
                    "keeps the pointer; computed names dangle and defeat "
                    "per-name aggregation)"))
                continue
            if cat_span is None:
                continue
            cat = raw.literal_at(cat_span)
            if cat is None:
                out.append(Violation(
                    f.rel, line, RULE_LITERAL,
                    f"{label} category for '{name}' must be a string "
                    "literal"))
                continue
            prev = categories.get(name)
            if prev is None:
                categories[name] = (cat, f.rel, line)
            elif prev[0] != cat:
                out.append(Violation(
                    f.rel, line, RULE_CLASH,
                    f"span/instant '{name}' recorded with category "
                    f"'{cat}' here but '{prev[0]}' at {prev[1]}:{prev[2]}; "
                    "per-name aggregations would split"))
    return out
