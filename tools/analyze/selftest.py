"""Analyzer selftest (ctest `analyze_selftest`).

Runs every rule family over the seeded fixtures in
tools/analyze/fixtures/ and verifies:

  * each fixture's `// ESTCLUST-EXPECT(rule)` markers match the reported
    violations exactly -- same file, same line, same rule, same count --
    so every rule family provably fires where it must;
  * the clean fixture yields zero violations -- rules stay quiet on
    conforming code;
  * the suppression fixture reports nothing and its
    `ESTCLUST-EXPECT-SUPPRESSED(n)` count matches the suppressions the
    engine actually consumed;
  * stale suppressions (waivers that consumed nothing) are warned about
    exactly where `ESTCLUST-EXPECT-STALE(n)` markers say they must be;
  * each protocol mutant under fixtures/proto/ is fed through the proto
    family on its own (each mutant re-declares the miniature protocol,
    so they must not share an extraction pass) and every seeded
    protocol defect -- a dropped ack, a reordered receive, an ignored
    heartbeat, deleted dedup, annotation/code drift -- is provably
    caught, while the clean protocol fixture verifies silent.

Fixtures are mapped to pseudo paths src/fixture_<stem>/<name> so the
module- and role-sensitive logic (tag matrix roles, CheckOpScope label
prefixes, src/-only convention rules) runs exactly as it does on the
real tree; proto fixtures map to src/fixture_proto/<name>.
"""

from __future__ import annotations

from collections import Counter
from pathlib import Path

from analyze import rules_proto
from analyze.engine import analyze, stale_suppressions
from analyze.srcmodel import (EXPECT_RE, EXPECT_STALE_RE,
                              EXPECT_SUPPRESSED_RE, SourceFile)

FIXTURES = Path(__file__).resolve().parent / "fixtures"
MAIN_FAMILIES = ["codec", "tags", "clock", "detflow", "bounds", "obs",
                 "conventions"]


def run() -> int:
    files: list[SourceFile] = []
    expected: Counter = Counter()
    expected_stale: Counter = Counter()
    expected_suppressed = 0
    for path in sorted(FIXTURES.glob("*")):
        if path.suffix not in (".cpp", ".hpp"):
            continue
        rel = f"src/fixture_{path.stem}/{path.name}"
        src = SourceFile(path, rel)
        files.append(src)
        for lineno, line in enumerate(src.lines, 1):
            for m in EXPECT_RE.finditer(line):
                expected[(rel, lineno, m.group(1))] += 1
            sm = EXPECT_SUPPRESSED_RE.search(line)
            if sm:
                expected_suppressed += int(sm.group(1))
            stm = EXPECT_STALE_RE.search(line)
            if stm:
                expected_stale[(rel, lineno)] += int(stm.group(1))

    if not files:
        print("analyze selftest: FAIL: no fixtures found under "
              f"{FIXTURES}")
        return 1

    violations, suppressed = analyze(files, None, MAIN_FAMILIES)
    actual: Counter = Counter(v.key() for v in violations)
    by_key = {}
    for v in violations:
        by_key.setdefault(v.key(), v)

    failures: list[str] = []
    for key, n in sorted(expected.items()):
        got = actual.get(key, 0)
        if got != n:
            rel, line, rule = key
            failures.append(f"expected {n} [{rule}] at {rel}:{line}, "
                            f"analyzer reported {got}")
    for key, n in sorted(actual.items()):
        if key not in expected:
            failures.append(f"unexpected violation: {by_key[key].render()}")
    if suppressed != expected_suppressed:
        failures.append(f"expected {expected_suppressed} used "
                        f"suppressions, engine consumed {suppressed}")

    stale = stale_suppressions(files, MAIN_FAMILIES)
    actual_stale: Counter = Counter((v.file, v.line) for v in stale)
    for key, n in sorted(expected_stale.items()):
        got = actual_stale.get(key, 0)
        if got != n:
            failures.append(f"expected {n} stale-suppression warning(s) "
                            f"at {key[0]}:{key[1]}, engine reported {got}")
    for key in sorted(actual_stale):
        if key not in expected_stale:
            failures.append("unexpected stale-suppression warning at "
                            f"{key[0]}:{key[1]}")

    clean = [f for f in files if "clean" in f.rel]
    if not clean:
        failures.append("no clean fixture present")
    if not any("suppressed" in f.rel for f in files):
        failures.append("no suppression fixture present")
    if not any("sanitized" in f.rel for f in files):
        failures.append("no DETFLOW-SANITIZED fixture present")

    rules_fired = {rule for (_, _, rule) in expected}
    for family_marker in ("codec-symmetry", "tag-protocol",
                          "clock-accounting", "clock-kernel-cells",
                          "determinism-rand",
                          "conventions-assert", "obs-span-literal",
                          "obs-category-clash", "detflow-wall-clock",
                          "bounds-unchecked-read", "bounds-missing-exhausted",
                          "bounds-guard-mismatch"):
        if family_marker not in rules_fired:
            failures.append(f"fixture coverage gap: no fixture exercises "
                            f"{family_marker}")

    # --- proto phase: each mutant re-declares the miniature protocol,
    # so every fixture gets its own extraction + exploration pass.
    proto_files = sorted((FIXTURES / "proto").glob("*.cpp"))
    proto_expected = 0
    proto_rules_fired: set[str] = set()
    proto_clean_seen = False
    for path in proto_files:
        rel = f"src/fixture_proto/{path.name}"
        src = SourceFile(path, rel)
        p_expected: Counter = Counter()
        for lineno, line in enumerate(src.lines, 1):
            for m in EXPECT_RE.finditer(line):
                p_expected[(rel, lineno, m.group(1))] += 1
        vs = rules_proto.run([src])
        p_actual: Counter = Counter(v.key() for v in vs)
        p_by_key = {}
        for v in vs:
            p_by_key.setdefault(v.key(), v)
        for key, n in sorted(p_expected.items()):
            got = p_actual.get(key, 0)
            if got != n:
                _, line, rule = key
                failures.append(f"proto fixture {path.name}: expected {n} "
                                f"[{rule}] at line {line}, analyzer "
                                f"reported {got}")
        for key in sorted(p_actual):
            if key not in p_expected:
                failures.append("proto fixture unexpected violation: "
                                f"{p_by_key[key].render()}")
        proto_expected += sum(p_expected.values())
        proto_rules_fired |= {rule for (_, _, rule) in p_expected}
        proto_clean_seen |= path.stem == "clean"
    if not proto_files:
        failures.append(f"no proto fixtures found under {FIXTURES}/proto")
    if not proto_clean_seen:
        failures.append("no clean proto fixture present")
    for marker in ("proto-deadlock", "proto-unhandled", "proto-drift"):
        if marker not in proto_rules_fired:
            failures.append(f"fixture coverage gap: no proto fixture "
                            f"exercises {marker}")

    if failures:
        print(f"analyze selftest: FAIL ({len(failures)} problem(s)):")
        for msg in failures:
            print(f"  {msg}")
        return 1
    print(f"analyze selftest: OK ({len(files)} fixtures, "
          f"{sum(expected.values())} expected violations all fired, "
          f"{suppressed} suppressions consumed, "
          f"{len(stale)} stale suppression(s) warned, "
          f"{len(proto_files)} proto fixtures, "
          f"{proto_expected} seeded protocol defects all caught, "
          "clean fixtures quiet)")
    return 0
