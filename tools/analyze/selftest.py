"""Analyzer selftest (ctest `analyze_selftest`).

Runs every rule family over the seeded fixtures in
tools/analyze/fixtures/ and verifies:

  * each fixture's `// ESTCLUST-EXPECT(rule)` markers match the reported
    violations exactly -- same file, same line, same rule, same count --
    so every rule family provably fires where it must;
  * the clean fixture yields zero violations -- rules stay quiet on
    conforming code;
  * the suppression fixture reports nothing and its
    `ESTCLUST-EXPECT-SUPPRESSED(n)` count matches the suppressions the
    engine actually consumed.

Fixtures are mapped to pseudo paths src/fixture_<stem>/<name> so the
module- and role-sensitive logic (tag matrix roles, CheckOpScope label
prefixes, src/-only convention rules) runs exactly as it does on the
real tree.
"""

from __future__ import annotations

from collections import Counter
from pathlib import Path

from analyze.engine import analyze
from analyze.srcmodel import (EXPECT_RE, EXPECT_SUPPRESSED_RE, SourceFile)

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def run() -> int:
    files: list[SourceFile] = []
    expected: Counter = Counter()
    expected_suppressed = 0
    for path in sorted(FIXTURES.glob("*")):
        if path.suffix not in (".cpp", ".hpp"):
            continue
        rel = f"src/fixture_{path.stem}/{path.name}"
        src = SourceFile(path, rel)
        files.append(src)
        for lineno, line in enumerate(src.lines, 1):
            for m in EXPECT_RE.finditer(line):
                expected[(rel, lineno, m.group(1))] += 1
            sm = EXPECT_SUPPRESSED_RE.search(line)
            if sm:
                expected_suppressed += int(sm.group(1))

    if not files:
        print("analyze selftest: FAIL: no fixtures found under "
              f"{FIXTURES}")
        return 1

    violations, suppressed = analyze(
        files, None, ["codec", "tags", "clock", "obs", "conventions"])
    actual: Counter = Counter(v.key() for v in violations)
    by_key = {}
    for v in violations:
        by_key.setdefault(v.key(), v)

    failures: list[str] = []
    for key, n in sorted(expected.items()):
        got = actual.get(key, 0)
        if got != n:
            rel, line, rule = key
            failures.append(f"expected {n} [{rule}] at {rel}:{line}, "
                            f"analyzer reported {got}")
    for key, n in sorted(actual.items()):
        if key not in expected:
            failures.append(f"unexpected violation: {by_key[key].render()}")
    if suppressed != expected_suppressed:
        failures.append(f"expected {expected_suppressed} used "
                        f"suppressions, engine consumed {suppressed}")

    clean = [f for f in files if "clean" in f.rel]
    if not clean:
        failures.append("no clean fixture present")
    if not any("suppressed" in f.rel for f in files):
        failures.append("no suppression fixture present")

    rules_fired = {rule for (_, _, rule) in expected}
    for family_marker in ("codec-symmetry", "tag-protocol",
                          "clock-accounting", "determinism-rand",
                          "conventions-assert", "obs-span-literal",
                          "obs-category-clash"):
        if family_marker not in rules_fired:
            failures.append(f"fixture coverage gap: no fixture exercises "
                            f"{family_marker}")

    if failures:
        print(f"analyze selftest: FAIL ({len(failures)} problem(s)):")
        for msg in failures:
            print(f"  {msg}")
        return 1
    print(f"analyze selftest: OK ({len(files)} fixtures, "
          f"{sum(expected.values())} expected violations all fired, "
          f"{suppressed} suppressions consumed, clean fixture quiet)")
    return 0
