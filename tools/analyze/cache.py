"""Parsed-source cache: skips re-tokenization across analyzer runs.

Each analyzed file gets one JSON document under the cache directory
(default `build/analyze_cache/`), keyed by the sha256 of its raw text.
The document stores the code view (strip_code output) and the extracted
function records -- the two expensive products of parsing. A key
mismatch is an ordinary miss; a *content* inconsistency (stored code
view that no longer lines up with the text it claims to come from) is
treated as corruption: the entry is dropped and rebuilt, never trusted.

Writes are atomic (temp file + os.replace) so parallel ctest analyzer
invocations sharing one cache directory cannot tear each other's
entries.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

from analyze.srcmodel import Function, SourceFile, strip_code

# Bump the suffix whenever srcmodel's parsing/extraction semantics
# change: the entry key is only the file text's sha256, so a stale
# schema would otherwise keep serving records from the old parser.
SCHEMA = "estclust-analyze-cache-v2"


class CacheInconsistency(Exception):
    """A cache entry failed its self-consistency assertion."""


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    corrupt: int = 0


def text_key(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _entry_path(cache_dir: Path, rel: str) -> Path:
    # Flatten the repo-relative path; it stays human-greppable and the
    # embedded key check makes collisions impossible to silently serve.
    return cache_dir / (rel.replace("/", "__") + ".json")


def _check_entry(doc: dict, text: str, key: str) -> None:
    """Self-consistency assertion for a cache entry about `text`.
    Raises CacheInconsistency on any structural violation."""
    if doc.get("schema") != SCHEMA:
        raise CacheInconsistency("schema mismatch")
    if doc.get("key") != key:
        raise CacheInconsistency("key mismatch")
    code = doc.get("code")
    if not isinstance(code, str):
        raise CacheInconsistency("missing code view")
    # strip_code preserves line structure exactly; an entry whose code
    # view has a different newline count cannot be a view of this text.
    if code.count("\n") != text.count("\n"):
        raise CacheInconsistency("code view line count diverges from text")
    if not isinstance(doc.get("functions"), list):
        raise CacheInconsistency("missing function records")


def _functions_from(doc: dict, code: str) -> list[Function]:
    out: list[Function] = []
    for rec in doc["functions"]:
        off, blen = rec["body_offset"], rec["body_len"]
        if not (0 <= off <= off + blen <= len(code)):
            raise CacheInconsistency("function body span out of range")
        out.append(Function(
            name=rec["name"], qual=rec["qual"],
            start_line=rec["start_line"], end_line=rec["end_line"],
            params=rec["params"], body=code[off:off + blen],
            body_offset=off))
    return out


def _doc_for(src: SourceFile, key: str) -> dict:
    return {
        "schema": SCHEMA,
        "key": key,
        "code": src.code,
        "functions": [{
            "name": f.name, "qual": f.qual,
            "start_line": f.start_line, "end_line": f.end_line,
            "params": f.params, "body_offset": f.body_offset,
            "body_len": len(f.body),
        } for f in src.functions()],
    }


def _atomic_write(path: Path, doc: dict) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as f:
            json.dump(doc, f)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def load_source(path: Path, rel: str, cache_dir: Path | None,
                stats: CacheStats, verify: bool = False) -> SourceFile:
    """SourceFile for `path`, served from the cache when the stored key
    matches the current text. `verify` forces a full recompute and
    compares it against the served entry (the --verify-cache gate)."""
    text = path.read_text(encoding="utf-8")
    if cache_dir is None:
        return SourceFile(path, rel, text=text)

    key = text_key(text)
    entry = _entry_path(cache_dir, rel)
    doc = None
    if entry.exists():
        try:
            doc = json.loads(entry.read_text(encoding="utf-8"))
            _check_entry(doc, text, key)
        except (json.JSONDecodeError, OSError, KeyError, TypeError):
            stats.corrupt += 1
            doc = None
        except CacheInconsistency:
            if doc is not None and doc.get("key") == key:
                # Same key but inconsistent content: genuine corruption.
                stats.corrupt += 1
            doc = None

    if doc is not None:
        stats.hits += 1
        src = SourceFile(path, rel, code=doc["code"], text=text)
        try:
            src._functions = _functions_from(doc, src.code)
        except (CacheInconsistency, KeyError, TypeError):
            stats.hits -= 1
            stats.corrupt += 1
            src = None
        if src is not None:
            if verify:
                _verify_against_fresh(path, rel, text, src)
            return src

    stats.misses += 1
    src = SourceFile(path, rel, text=text)
    src.functions()  # force extraction so the entry is complete
    _atomic_write(entry, _doc_for(src, key))
    return src


def _verify_against_fresh(path: Path, rel: str, text: str,
                          cached: SourceFile) -> None:
    """Recompute the parse from scratch and assert the cached entry is
    byte-identical. Raises CacheInconsistency on any divergence."""
    fresh = SourceFile(path, rel, text=text)
    if fresh.code != cached.code:
        raise CacheInconsistency(f"{rel}: cached code view != recomputed")
    ff, cf = fresh.functions(), cached.functions()
    if len(ff) != len(cf):
        raise CacheInconsistency(
            f"{rel}: cached {len(cf)} functions, recomputed {len(ff)}")
    for a, b in zip(ff, cf):
        if (a.name, a.qual, a.start_line, a.end_line, a.params, a.body,
                a.body_offset) != (b.name, b.qual, b.start_line, b.end_line,
                                   b.params, b.body, b.body_offset):
            raise CacheInconsistency(
                f"{rel}: cached record for {a.qualname} diverges")
