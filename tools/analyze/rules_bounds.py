"""Rule family: bounds -- decode functions must consume exactly the
bytes their paired encoder produced, checked, on every path a receive
can reach.

BufReader's primitive get<T>() is bounds-checked at runtime, so the
failure mode this family hunts is not a buffer overrun but *silent
drift*: a decoder that stops early (trailing bytes ignored -- a version
skew or a corrupted field goes unnoticed), a decoder that reads a field
the encoder only conditionally wrote, or payload bytes parsed by hand
outside any decode_* function where the codec-symmetry rule cannot see
them. The walk is symbolic over the source model:

  * `bounds-unchecked-read` -- (a) raw buffer escapes (memcpy, .data(),
    reinterpret_cast) inside a decode_* function, which bypass the
    checked primitives entirely; (b) BufReader get* calls outside any
    decode_* function in a function a receive edge reaches: hand-rolled
    parsing that must be hoisted into a named codec pair.
  * `bounds-missing-exhausted` -- a decode_* function reachable from a
    recv/broadcast/all_to_all call site where neither the decoder body
    nor the calling function verifies exhaustion (expect_exhausted or
    an exhausted() loop). Reported at the unchecked call site.
  * `bounds-guard-mismatch` -- the if-guard stack around field i of
    encode_X differs from the stack around field i of decode_X (e.g.
    the encoder writes a field only `if (reliable)` but the decoder
    reads it unconditionally, shifting every later field).

src/mpr is exempt from the ad-hoc-read check: it *implements* the
checked primitives and the transport, so raw buffer access there is the
point. Fixture pseudo-trees get no exemption -- seeded bugs must fire.
"""

from __future__ import annotations

import re

from analyze.srcmodel import (FnNode, SourceFile, SourceModel, Violation,
                              match_paren)

GET_RE = re.compile(r"\b(\w+)\.(get(?:_vec|_string)?)\s*[<(]")
PUT_RE = re.compile(r"\b(\w+)\.(put(?:_vec|_string)?)\s*[<(]")
RAW_ESCAPE_RE = re.compile(
    r"\bmemcpy\s*\(|\.data\s*\(\s*\)|\breinterpret_cast\s*<")
RECV_RE = re.compile(
    r"\b(?:recv2?|try_recv|broadcast|gather|scatter|all_to_all\w*|"
    r"allreduce\w*)\s*\(")
EXHAUST_RE = re.compile(r"\b(?:expect_)?exhausted\s*\(")
READER_DECL_RE = re.compile(r"\bBufReader\s+(\w+)\s*[({]")


def _is_decoder(node: FnNode) -> bool:
    return (node.fn.name.startswith("decode_")
            and bool(re.search(r"\bBufReader\b|\bBuffer\b",
                               node.fn.params)))


def _norm_cond(cond: str) -> str:
    """Guard condition normalized for cross-side comparison: object
    prefixes (`m.reliable` vs `out.reliable`) and whitespace dropped."""
    return re.sub(r"\s+", "", re.sub(r"\b\w+\s*\.\s*", "", cond))


def _guard_spans(body: str) -> list[tuple[int, int, str]]:
    """(block start, block end, normalized condition) for every if()
    block in a body -- braced or single-statement."""
    spans: list[tuple[int, int, str]] = []
    for m in re.finditer(r"\bif\s*\(", body):
        open_idx = m.end() - 1
        close = match_paren(body, open_idx)
        if close < 0:
            continue
        cond = body[open_idx + 1:close]
        j = close + 1
        while j < len(body) and body[j].isspace():
            j += 1
        if j < len(body) and body[j] == "{":
            end = match_paren(body, j, "{", "}")
        else:
            end = body.find(";", j)
        if end < 0:
            continue
        spans.append((j, end, _norm_cond(cond)))
    return spans


def _guards_at(spans: list[tuple[int, int, str]], offset: int) -> tuple:
    return tuple(cond for start, end, cond in spans
                 if start <= offset <= end)


def _wire_calls(node: FnNode, call_re: re.Pattern
                ) -> list[tuple[int, int, str]]:
    """(offset, line, method) of put*/get* calls in a function body."""
    out = []
    for m in call_re.finditer(node.fn.body):
        line = node.src.line_of(node.fn.body_offset + m.start())
        out.append((m.start(), line, m.group(2)))
    return out


def _recv_reachable(model: SourceModel, uid: str) -> bool:
    """Does any transitive caller of `uid` contain a receive edge?"""
    for caller_uid in model.closure({uid}, "up"):
        if RECV_RE.search(model.by_uid[caller_uid].fn.body):
            return True
    return False


def run(files: list[SourceFile],
        model: SourceModel | None = None) -> list[Violation]:
    if model is None:
        model = SourceModel(files)
    out: list[Violation] = []

    decoders: dict[str, FnNode] = {}
    encoders: dict[str, FnNode] = {}
    for node in model.nodes:
        if node.fn.name.startswith("decode_") and _is_decoder(node):
            decoders.setdefault(node.fn.name.split("_", 1)[1], node)
        elif node.fn.name.startswith("encode_"):
            encoders.setdefault(node.fn.name.split("_", 1)[1], node)

    # -- bounds-unchecked-read (a): raw escapes inside decoders ------------
    for suffix in sorted(decoders):
        node = decoders[suffix]
        for m in RAW_ESCAPE_RE.finditer(node.fn.body):
            line = node.src.line_of(node.fn.body_offset + m.start())
            out.append(Violation(
                node.src.rel, line, "bounds-unchecked-read",
                f"decode_{suffix} bypasses the checked BufReader "
                "primitives with raw buffer access; every wire read "
                "must go through get/get_vec/get_string so underflow "
                "is caught at the field that drifted"))

    # -- bounds-unchecked-read (b): hand-rolled parsing ---------------------
    for node in model.nodes:
        if node.fn.name.startswith(("decode_", "encode_")):
            continue
        if node.src.rel.startswith("src/mpr/"):
            continue  # implements the primitives and the transport
        readers = set(READER_DECL_RE.findall(node.fn.body))
        if not readers or not GET_RE.search(node.fn.body):
            continue
        if not (RECV_RE.search(node.fn.body)
                or _recv_reachable(model, node.uid)):
            continue
        for m in GET_RE.finditer(node.fn.body):
            if m.group(1) not in readers:
                continue  # not a BufReader (e.g. CliArgs::get_string)
            line = node.src.line_of(node.fn.body_offset + m.start())
            out.append(Violation(
                node.src.rel, line, "bounds-unchecked-read",
                f"{node.fn.qualname}() parses received payload bytes "
                "by hand; hoist the reads into a decode_* function "
                "paired with its encode_* so the codec and bounds "
                "rules can check the field sequence"))

    # -- bounds-missing-exhausted ------------------------------------------
    for suffix in sorted(decoders):
        node = decoders[suffix]
        if EXHAUST_RE.search(node.fn.body):
            continue  # decoder verifies exhaustion itself
        if not _recv_reachable(model, node.uid):
            continue  # encode-only helper or test-local: nothing arrives
        for caller in model.callers(node.uid):
            if EXHAUST_RE.search(caller.fn.body):
                continue  # caller-side exhaustion loop/check
            for call in caller.calls:
                if call.name != node.fn.name:
                    continue
                out.append(Violation(
                    caller.src.rel, call.line, "bounds-missing-exhausted",
                    f"decode_{suffix} ({node.src.rel}:{node.fn.start_line}) "
                    "neither checks exhaustion itself nor is checked "
                    "here: trailing payload bytes would be silently "
                    "ignored; add expect_exhausted() to the decoder or "
                    "an exhausted() check at this call site"))

    # -- bounds-guard-mismatch ---------------------------------------------
    for suffix in sorted(set(encoders) & set(decoders)):
        enc, dec = encoders[suffix], decoders[suffix]
        eputs = _wire_calls(enc, PUT_RE)
        dgets = _wire_calls(dec, GET_RE)
        if len(eputs) != len(dgets):
            continue  # codec-symmetry owns count mismatches
        espans = _guard_spans(enc.fn.body)
        dspans = _guard_spans(dec.fn.body)
        for i, ((eoff, eline, _), (doff, dline, _)) in enumerate(
                zip(eputs, dgets)):
            eg = _guards_at(espans, eoff)
            dg = _guards_at(dspans, doff)
            if eg != dg:
                out.append(Violation(
                    dec.src.rel, dline, "bounds-guard-mismatch",
                    f"codec '{suffix}' field {i}: encoder guard stack "
                    f"{list(eg) or 'unconditional'} != decoder guard "
                    f"stack {list(dg) or 'unconditional'} "
                    f"({enc.src.rel}:{eline}); a conditionally written "
                    "field read under a different condition shifts "
                    "every later field"))
    return out
