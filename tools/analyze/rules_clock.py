"""Rule family 3: clock accounting & determinism.

Virtual-time correctness rests on two conventions a compiler cannot see:

  * `clock-accounting` -- accounted hot-loop work (DP cells filled,
    characters scanned) published into the metrics registry or per-rank
    counters must be charged to the VirtualClock in the same file.
    A counter bump without a matching charge() means the modeled
    run-time silently under-reports that work (the runtime checker's
    finalize audit can only catch this on executed paths). Files that
    never touch a Communicator are exempt: pure builders return their
    counters to a caller who charges.

  * determinism bans, structured versions of the repo conventions:
      - `determinism-wall-clock`: wall-clock time sources in a file
        that participates in virtual-time modeling. Rank time is
        mpr::VirtualClock; wall-clock reads make modeled run-times
        scheduling-dependent. (Serial baselines measure wall time by
        design and never touch a Communicator, so they are exempt.)
      - `determinism-rand`: std::rand/srand/random_device/mt19937
        anywhere in src/ -- all randomness flows through util/prng
        (xoshiro256**, seeded, specified output).
      - `determinism-unordered-iter`: range-for over a container
        declared std::unordered_* in the same file. Iteration order is
        implementation-defined; if the loop feeds output, clusters or
        clock charges the run is non-reproducible. Order-independent
        reductions must say so with a suppression.
      - `determinism-pointer-key`: map/set keyed by pointer; iteration
        order then depends on the allocator.
"""

from __future__ import annotations

import re

from analyze.srcmodel import SourceFile, Violation

# Accounted-work counter -> the CostModel unit that must be charged in
# the same file.
ACCOUNTED = {
    "dp_cells": "dp_cell",
    "chars_scanned": "char_op",
    # Pair production: every PairSource backend meters its batch work via
    # take_work_units(); a driver that publishes the pairs_generated
    # counter must charge those units to pair_op in the same file.
    "pairs_generated": "pair_op",
}

WALL_CLOCK_RE = re.compile(
    r"\b(steady_clock|system_clock|high_resolution_clock|WallTimer|"
    r"PhaseTimer)\b")
RAND_RE = re.compile(
    r"\b(?:std::)?(rand|srand)\s*\(|\b(random_device|mt19937(?:_64)?)\b")
UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;{}]*>\s+(\w+)\s*[;={(]")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(\s*[^;()]*?:\s*([\w.\->]+)\s*\)")
POINTER_KEY_RE = re.compile(
    r"\b(?:unordered_)?(?:map|set|multimap|multiset)\s*<\s*[\w:]+\s*\*")


def _participates_in_vtime(src: SourceFile) -> bool:
    return bool(re.search(r"\bCommunicator\b|\bVirtualClock\b|\.charge\(",
                          src.code))


def run(files: list[SourceFile]) -> list[Violation]:
    out: list[Violation] = []
    for f in files:
        vtime = _participates_in_vtime(f)

        # clock-accounting: counter bumps must pair with a charge().
        if vtime:
            bumps: list[tuple[str, str, int]] = []  # (counter, how, line)
            # Metrics publications name the counter inside a string
            # literal, which the code view blanks: scan raw lines, but
            # only where the code view confirms a counter(...).add call
            # (so a comment quoting the pattern cannot match).
            publish_re = re.compile(r'counter\(\s*"[\w.]*?\b(' +
                                    "|".join(ACCOUNTED) + r')"\s*\)\s*\.add')
            for lineno, line in enumerate(f.lines, 1):
                code_line = f.code_lines[lineno - 1] \
                    if lineno - 1 < len(f.code_lines) else ""
                if "counter(" not in code_line:
                    continue
                m = publish_re.search(line)
                if m:
                    bumps.append((m.group(1),
                                  "published to the metrics registry",
                                  lineno))
            accum_re = re.compile(r"\b(" + "|".join(ACCOUNTED) + r")\s*\+=")
            for m in accum_re.finditer(f.code):
                bumps.append((m.group(1),
                              "accumulated into per-rank counters",
                              f.line_of(m.start())))
            for name, how, lineno in bumps:
                unit = ACCOUNTED[name]
                if not re.search(r"charge\([^;]*\b" + unit + r"\b", f.code):
                    out.append(Violation(
                        f.rel, lineno, "clock-accounting",
                        f"accounted work '{name}' is {how} but this file "
                        f"never charges cost_model().{unit} to the "
                        "VirtualClock: modeled run-time under-reports "
                        "this work"))

        # determinism-wall-clock (only in virtual-time-modeled files).
        if vtime:
            for m in WALL_CLOCK_RE.finditer(f.code):
                out.append(Violation(
                    f.rel, f.line_of(m.start()), "determinism-wall-clock",
                    f"wall-clock source '{m.group(1)}' in a file that "
                    "models virtual time; rank time is mpr::VirtualClock"))

        # determinism-rand.
        if not f.rel.startswith("src/util/prng"):
            for m in RAND_RE.finditer(f.code):
                what = m.group(1) or m.group(2)
                out.append(Violation(
                    f.rel, f.line_of(m.start()), "determinism-rand",
                    f"'{what}' bypasses util/prng; all randomness must be "
                    "seeded and reproducible"))

        # determinism-unordered-iter.
        unordered_vars = {m.group(1)
                          for m in UNORDERED_DECL_RE.finditer(f.code)}
        if unordered_vars:
            for m in RANGE_FOR_RE.finditer(f.code):
                target = m.group(1).split(".")[-1].split(">")[-1]
                if target in unordered_vars:
                    out.append(Violation(
                        f.rel, f.line_of(m.start()),
                        "determinism-unordered-iter",
                        f"iteration over unordered container '{target}': "
                        "order is implementation-defined; sort first, or "
                        "suppress with the reason the loop is "
                        "order-independent"))

        # determinism-pointer-key.
        for m in POINTER_KEY_RE.finditer(f.code):
            out.append(Violation(
                f.rel, f.line_of(m.start()), "determinism-pointer-key",
                "container keyed by pointer: iteration order depends on "
                "allocation; key by a stable id instead"))
    return out
