"""Rule family 3: clock accounting & determinism.

Virtual-time correctness rests on two conventions a compiler cannot see:

  * `clock-accounting` -- accounted hot-loop work (DP cells filled,
    characters scanned, pairs produced) published into the metrics
    registry or per-rank counters must be charged to the VirtualClock
    *somewhere on the same call path*. The pairing is interprocedural
    over the SourceModel call graph: a bump inside function F pairs
    with a charge() of the matching cost unit anywhere in F's call-tree
    family (its transitive callers, plus everything reachable down from
    any of them -- which covers F's own callees and its siblings'
    subtrees, e.g. a run() loop that charges in one callee and
    publishes the counter from another). A counter bump with no charge
    anywhere in the family means the modeled run-time silently
    under-reports that work. Functions whose family never touches a
    Communicator/VirtualClock are exempt: pure builders return their
    counters to a caller who charges, and the serial baselines do not
    model virtual time at all.

  * `clock-kernel-cells` -- a band-sweep kernel that counts the DP
    cells it fills in a local `cells` accumulator must export the count
    through its result (`best.cells = cells`, `*cells_out = cells`, or
    by returning it). The pace layer charges cost_model().dp_cell from
    ExtensionResult.cells, so a kernel variant that drops the count on
    the floor feeds different charge() units than the scalar sweep and
    the modeled run-time silently diverges by host CPU. This is the
    kernel-side half of the dp_cells pairing above: the bump lives in
    src/align, the charge in src/pace, and the `.cells` field is the
    contract between them.

  * determinism bans, structured versions of the repo conventions:
      - `determinism-wall-clock`: wall-clock time sources in a file
        that participates in virtual-time modeling. Rank time is
        mpr::VirtualClock; wall-clock reads make modeled run-times
        scheduling-dependent. (Serial baselines measure wall time by
        design and never touch a Communicator, so they are exempt.)
      - `determinism-rand`: std::rand/srand/random_device/mt19937
        anywhere in src/ -- all randomness flows through util/prng
        (xoshiro256**, seeded, specified output).
      - `determinism-unordered-iter`: range-for over a container
        declared std::unordered_* in the same file. Iteration order is
        implementation-defined; if the loop feeds output, clusters or
        clock charges the run is non-reproducible. Loops whose body is
        provably an order-independent reduction -- nothing but
        commutative integer accumulation (`x += e`, `++x`,
        `x = std::min/max(x, e)`) into integral locals -- are accepted
        without a waiver; anything else must sort first.
      - `determinism-pointer-key`: map/set keyed by pointer; iteration
        order then depends on the allocator.

Cross-function *flows* of nondeterministic values are the detflow
family's job (tools/analyze/rules_detflow.py); this family owns the
lexical bans and the accounting pairing.
"""

from __future__ import annotations

import re

from analyze.srcmodel import SourceFile, SourceModel, Violation, match_paren

# Accounted-work counter -> the CostModel unit that must be charged on
# the same call path.
ACCOUNTED = {
    "dp_cells": "dp_cell",
    "chars_scanned": "char_op",
    # Pair production: every PairSource backend meters its batch work via
    # take_work_units(); a driver that publishes the pairs_generated
    # counter must charge those units to pair_op on the same call path.
    "pairs_generated": "pair_op",
}

WALL_CLOCK_RE = re.compile(
    r"\b(steady_clock|system_clock|high_resolution_clock|WallTimer|"
    r"PhaseTimer)\b")
RAND_RE = re.compile(
    r"\b(?:std::)?(rand|srand)\s*\(|\b(random_device|mt19937(?:_64)?)\b")
UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;{}]*>\s+(\w+)\s*[;={(]")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(\s*[^;()]*?:\s*([\w.\->]+)\s*\)")
POINTER_KEY_RE = re.compile(
    r"\b(?:unordered_)?(?:map|set|multimap|multiset)\s*<\s*[\w:]+\s*\*")

# A local DP-cell accumulator bump inside a kernel sweep. The negative
# lookbehind keeps member counters (counters_.dp_cells, overlap.cells)
# out: those are the pace-side counters the `clock-accounting` pairing
# above owns.
KERNEL_CELLS_BUMP_RE = re.compile(
    r"(?<![\w.>])cells\s*(?:\+\+|\+=)|\+\+\s*cells\b")
# Accepted exports of the accumulator: written into a result's .cells
# field, through a *cells_out out-parameter, or returned directly.
KERNEL_CELLS_EXPORT_RE = re.compile(
    r"\.\s*cells\s*=|\*\s*cells_out\s*=|\breturn\b[^;{}]*\bcells\b")

VTIME_TOKEN_RE = re.compile(
    r"\bCommunicator\b|\bVirtualClock\b|\bcharge\s*\(")

INTEGRAL_TYPES = r"(?:std::)?(?:u?int\d*_t|size_t|unsigned|long|int|short)"

# Order-independent reduction statements (commutative over integers).
_ACCUM_RES = [
    re.compile(r"^(\w+)\s*\+=\s*[^=;]+$"),
    re.compile(r"^\+\+\s*(\w+)$"),
    re.compile(r"^(\w+)\s*\+\+$"),
    re.compile(r"^(\w+)\s*=\s*std::(?:min|max)\s*\(\s*\1\s*,[^;]*\)$"),
]


def _participates_in_vtime(src: SourceFile) -> bool:
    return bool(re.search(r"\bCommunicator\b|\bVirtualClock\b|\.charge\(",
                          src.code))


def _integral_decl(code: str, var: str) -> bool:
    return bool(re.search(
        INTEGRAL_TYPES + r"[\w\s:<>,*&]*?\b" + re.escape(var) + r"\b", code))


def _loop_body(code: str, after: int) -> str | None:
    """Body text of a loop whose for-head closes just before `after`:
    either the braced block or the single statement up to `;`."""
    i = after
    while i < len(code) and code[i].isspace():
        i += 1
    if i >= len(code):
        return None
    if code[i] == "{":
        close = match_paren(code, i, "{", "}")
        return code[i + 1:close] if close > 0 else None
    end = code.find(";", i)
    return code[i:end] if end > 0 else None


def _order_independent(code: str, body: str) -> bool:
    """True when every statement in a loop body is a commutative integer
    accumulation into an integral variable declared in this file -- the
    machine-checked version of the old 'order-independent reduction'
    suppression reason."""
    stmts = [s.strip() for s in body.split(";")]
    if not any(stmts):
        return False  # empty loop proves nothing; let a human look
    for stmt in stmts:
        if not stmt:
            continue
        for rx in _ACCUM_RES:
            m = rx.match(stmt)
            if m and _integral_decl(code, m.group(1)):
                break
        else:
            return False
    return True


class _FamilyView:
    """Per-run cache over the call graph: call-tree families, their
    vtime connectivity, and unit-charge membership."""

    def __init__(self, model: SourceModel):
        self.model = model
        self._vtime: dict[str, bool] = {}
        self._family: dict[str, frozenset[str]] = {}

    def family(self, uid: str) -> frozenset[str]:
        got = self._family.get(uid)
        if got is None:
            got = frozenset(self.model.family(uid))
            self._family[uid] = got
        return got

    def node_vtime(self, uid: str) -> bool:
        got = self._vtime.get(uid)
        if got is None:
            fn = self.model.by_uid[uid].fn
            got = bool(VTIME_TOKEN_RE.search(fn.body)
                       or VTIME_TOKEN_RE.search(fn.params))
            self._vtime[uid] = got
        return got

    def vtime_connected(self, family: frozenset[str]) -> bool:
        return any(self.node_vtime(u) for u in family)

    def charges(self, family: frozenset[str], unit: str) -> str | None:
        """Qualname of a family member charging `unit`, else None."""
        rx = re.compile(r"charge\s*\([^;]*\b" + unit + r"\b")
        for u in sorted(family):
            node = self.model.by_uid[u]
            if rx.search(node.fn.body):
                return f"{node.src.rel}:{node.fn.qualname}"
        return None


def run(files: list[SourceFile],
        model: SourceModel | None = None) -> list[Violation]:
    if model is None:
        model = SourceModel(files)
    fam_view = _FamilyView(model)
    out: list[Violation] = []
    for f in files:
        vtime = _participates_in_vtime(f)

        # clock-accounting: counter bumps must pair with a charge() of
        # the matching unit somewhere in the bump's call-tree family.
        bumps: list[tuple[str, str, int]] = []  # (counter, how, line)
        # Metrics publications name the counter inside a string
        # literal, which the code view blanks: scan raw lines, but
        # only where the code view confirms a counter(...).add call
        # (so a comment quoting the pattern cannot match).
        publish_re = re.compile(r'counter\(\s*"[\w.]*?\b(' +
                                "|".join(ACCOUNTED) + r')"\s*\)\s*\.add')
        for lineno, line in enumerate(f.lines, 1):
            code_line = f.code_lines[lineno - 1] \
                if lineno - 1 < len(f.code_lines) else ""
            if "counter(" not in code_line:
                continue
            m = publish_re.search(line)
            if m:
                bumps.append((m.group(1),
                              "published to the metrics registry",
                              lineno))
        accum_re = re.compile(r"\b(" + "|".join(ACCOUNTED) + r")\s*\+=")
        for m in accum_re.finditer(f.code):
            bumps.append((m.group(1),
                          "accumulated into per-rank counters",
                          f.line_of(m.start())))
        for name, how, lineno in bumps:
            unit = ACCOUNTED[name]
            node = model.enclosing(f.rel, lineno)
            if node is not None:
                family = fam_view.family(node.uid)
                if not fam_view.vtime_connected(family):
                    continue  # pure builder: a non-vtime caller owns it
                if fam_view.charges(family, unit) is not None:
                    continue
                out.append(Violation(
                    f.rel, lineno, "clock-accounting",
                    f"accounted work '{name}' is {how} in "
                    f"{node.fn.qualname}() but no function on its call "
                    f"paths ({len(family)} candidates) charges "
                    f"cost_model().{unit} to the VirtualClock: modeled "
                    "run-time under-reports this work"))
            elif vtime and not re.search(
                    r"charge\([^;]*\b" + unit + r"\b", f.code):
                # Bump outside any extracted function: fall back to the
                # lexical per-file pairing.
                out.append(Violation(
                    f.rel, lineno, "clock-accounting",
                    f"accounted work '{name}' is {how} but this file "
                    f"never charges cost_model().{unit} to the "
                    "VirtualClock: modeled run-time under-reports "
                    "this work"))

        # clock-kernel-cells: a kernel sweep's local `cells` accumulator
        # must leave the function through its result; the pace layer
        # charges cost_model().dp_cell from that field, so every kernel
        # variant feeds the same charge() units as the scalar sweep.
        for m in KERNEL_CELLS_BUMP_RE.finditer(f.code):
            lineno = f.line_of(m.start())
            node = model.enclosing(f.rel, lineno)
            # Lambdas are not extracted as functions, so the enclosing
            # node (and its body) is the named sweep that owns them —
            # exactly the scope whose result must carry the count.
            scope = node.fn.body if node is not None else f.code
            if KERNEL_CELLS_EXPORT_RE.search(scope):
                continue
            where = f"{node.fn.qualname}()" if node is not None \
                else "file scope"
            out.append(Violation(
                f.rel, lineno, "clock-kernel-cells",
                f"kernel sweep {where} accumulates DP work in a local "
                "'cells' counter but never exports it (.cells = cells, "
                "*cells_out = cells, or return): the pace layer charges "
                "cost_model().dp_cell from the result's cells field, so "
                "this variant's work would vanish from the modeled "
                "run-time and diverge from the scalar sweep"))

        # determinism-wall-clock (only in virtual-time-modeled files).
        if vtime:
            for m in WALL_CLOCK_RE.finditer(f.code):
                out.append(Violation(
                    f.rel, f.line_of(m.start()), "determinism-wall-clock",
                    f"wall-clock source '{m.group(1)}' in a file that "
                    "models virtual time; rank time is mpr::VirtualClock"))

        # determinism-rand.
        if not f.rel.startswith("src/util/prng"):
            for m in RAND_RE.finditer(f.code):
                what = m.group(1) or m.group(2)
                out.append(Violation(
                    f.rel, f.line_of(m.start()), "determinism-rand",
                    f"'{what}' bypasses util/prng; all randomness must be "
                    "seeded and reproducible"))

        # determinism-unordered-iter.
        unordered_vars = {m.group(1)
                          for m in UNORDERED_DECL_RE.finditer(f.code)}
        if unordered_vars:
            for m in RANGE_FOR_RE.finditer(f.code):
                target = m.group(1).split(".")[-1].split(">")[-1]
                if target not in unordered_vars:
                    continue
                body = _loop_body(f.code, m.end())
                if body is not None and _order_independent(f.code, body):
                    continue  # machine-proved commutative reduction
                out.append(Violation(
                    f.rel, f.line_of(m.start()),
                    "determinism-unordered-iter",
                    f"iteration over unordered container '{target}': "
                    "order is implementation-defined and the body is "
                    "not a provable order-independent integer "
                    "reduction; sort first"))

        # determinism-pointer-key.
        for m in POINTER_KEY_RE.finditer(f.code):
            out.append(Violation(
                f.rel, f.line_of(m.start()), "determinism-pointer-key",
                "container keyed by pointer: iteration order depends on "
                "allocation; key by a stable id instead"))
    return out
