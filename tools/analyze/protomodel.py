"""Protocol model extraction for the pace wire protocol (rule family
`proto`, see rules_proto.py and DESIGN.md §10).

The master/slave protocol is annotated in-source with a small grammar of
structured comments; this module parses the annotations, cross-checks
them against the *actual* send/recv call sites (so the model cannot
silently drift from the code), and builds the communicating
finite-state-machine that explore.py exhaustively checks.

Annotation grammar (one annotation per line, comma-separated key=value
attributes; exactly one attribute carries the `-> target` arrow):

  // ESTCLUST-PROTO-ROLE(role=slave, init=startup, final=done|dead)
      Declares a role: its automaton name, initial state, and the
      accepting (terminal) states.

  // ESTCLUST-PROTO-MODEL(name=pace_rel_1x2, slaves=2, mode=reliable,
  //                      faults=drop+dup+kill, supply=2, kills=1)
      Declares one composed configuration for explore.py: 1 master x
      `slaves` slaves, protocol mode (`base` = no FaultPlan installed,
      `reliable` = sequence numbers/acks/heartbeats active), the fault
      alphabet to explore, the per-slave work supply (in abstract batch
      units), and the death budget. Exploration violations are reported
      at the MODEL line.

  // ESTCLUST-PROTO(state=working, on=ASSIGN -> got_assign, when=fresh)
  // ESTCLUST-PROTO(state=acked, send=REPORT -> working, when=!stop)
  // ESTCLUST-PROTO(state=got_report -> served, mode=base)
      Declares one transition of the surrounding role's automaton.
      `on=TAG` annotates a receive site, `send=TAG` a send site, and an
      arrow on `state=` alone is an internal (epsilon) step — a pure
      bookkeeping transition with no message. A target of `.` means
      "stay in the source state" (dedup self-loops). `state=A|B` fans
      the same transition out of several sources.

  Optional attributes:
    when=GUARD   fresh | dup | match | stop | !stop | have_work | idle |
                 flush | kill — evaluated by the explorer's harness.
    mode=M       reliable | base; absent = the transition exists in both.
    role=R       overrides the file's ROLE declaration (fixtures that
                 hold both roles in one file).
    op=OP        send | send_delayed | recv | recv2 | try_recv — pins
                 the annotation to a specific call form when several
                 protocol calls share a tag within the attach window.

Cross-check contract (violations use rule ids proto-syntax, proto-drift,
proto-model):

  * an `on=`/`send=` annotation must attach to a real protocol call
    within the next ATTACH_WINDOW lines whose direction, kTag* constant
    and (when given) call form all match — otherwise the annotation is
    drift;
  * every protocol call site in an annotated file must be claimed by at
    least one annotation — otherwise the code is drift;
  * the assembled automaton must be structurally sound: declared roles,
    known tags and guards, a reachable state graph, no state mixing
    blocking receives with internal steps in one mode (the executor's
    well-formedness condition).

The extracted model serializes to deterministic JSON and Graphviz DOT so
the automaton can be reviewed (and diffed) like any other artifact.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field

from analyze.srcmodel import SourceFile, Violation, match_paren, split_args

ANN_RE = re.compile(r"ESTCLUST-PROTO(-ROLE|-MODEL)?\(([^)]*)\)")

# Tags the exploration harness knows how to interpret. The short name
# maps to the kTag* constant by `"kTag" + name.title()`-style casing
# (REPORT <-> kTagReport, HEARTBEAT <-> kTagHeartbeat).
KNOWN_TAGS = ("REPORT", "ASSIGN", "ACK", "HEARTBEAT")

KNOWN_GUARDS = ("fresh", "dup", "match", "stop", "notstop", "have_work",
                "idle", "flush", "kill")

KNOWN_FAULTS = ("drop", "dup", "kill")

SEND_OPS = ("send", "send_delayed")
RECV_OPS = ("recv", "recv2", "try_recv", "probe", "probe2")

# An annotation attaches to a matching call site at most this many lines
# below it (stacked annotations above one call all reach it).
ATTACH_WINDOW = 8

CALL_RE = re.compile(
    r"\b(?:\w+)(?:\.|->)(send_delayed|send|recv2|recv|try_recv|probe2|probe)"
    r"\s*\(")


def tag_short(ktag: str) -> str:
    """kTagReport -> REPORT."""
    return ktag[len("kTag"):].upper()


@dataclass
class Transition:
    role: str
    source: str
    target: str
    kind: str  # "recv" | "send" | "eps"
    tag: str | None
    when: str | None
    mode: str  # "both" | "reliable" | "base"
    blocking: bool  # False for try_recv-backed receives
    file: str
    line: int

    def sort_key(self) -> tuple:
        return (self.role, self.source, self.kind, self.tag or "",
                self.when or "", self.mode, self.target, self.file, self.line)

    def render(self) -> str:
        ev = {"recv": f"?{self.tag}", "send": f"!{self.tag}",
              "eps": "eps"}[self.kind]
        guard = f" [{self.when}]" if self.when else ""
        mode = f" <{self.mode}>" if self.mode != "both" else ""
        return f"{self.source} --{ev}{guard}{mode}--> {self.target}"


@dataclass
class Role:
    name: str
    init: str
    finals: tuple[str, ...]
    file: str
    line: int
    transitions: list[Transition] = field(default_factory=list)

    def states(self) -> list[str]:
        out = {self.init, *self.finals}
        for t in self.transitions:
            out.add(t.source)
            out.add(t.target)
        return sorted(out)


@dataclass
class ModelConfig:
    name: str
    slaves: int
    mode: str  # "base" | "reliable"
    faults: tuple[str, ...]
    supply: int
    kills: int
    file: str
    line: int


@dataclass
class ProtoModel:
    roles: dict[str, Role] = field(default_factory=dict)
    configs: list[ModelConfig] = field(default_factory=list)
    violations: list[Violation] = field(default_factory=list)

    def ok(self) -> bool:
        return not self.violations

    def transitions(self, role: str, mode: str) -> list[Transition]:
        """The role's transitions active under `mode`, in sort order."""
        return sorted(
            (t for t in self.roles[role].transitions
             if t.mode in ("both", mode)),
            key=Transition.sort_key)


@dataclass
class _CallSite:
    line: int
    op: str
    tags: tuple[str, ...]  # short names of the kTag* constants referenced
    claimed: bool = False


def _parse_attrs(raw: str) -> tuple[dict[str, str], str | None]:
    """Parses `k=v, k=v` where one value may carry `-> target`. Returns
    (attrs, target); target None when no arrow present."""
    attrs: dict[str, str] = {}
    target: str | None = None
    for part in raw.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValueError(f"attribute '{part}' is not key=value")
        key, value = part.split("=", 1)
        key, value = key.strip(), value.strip()
        if "->" in value:
            value, tgt = value.split("->", 1)
            value = value.strip()
            if target is not None:
                raise ValueError("more than one '->' arrow")
            target = tgt.strip()
        if key in attrs:
            raise ValueError(f"duplicate attribute '{key}'")
        attrs[key] = value
    return attrs, target


def _find_call_sites(src: SourceFile) -> list[_CallSite]:
    sites: list[_CallSite] = []
    for m in CALL_RE.finditer(src.code):
        op = m.group(1)
        open_idx = m.end() - 1
        close_idx = match_paren(src.code, open_idx)
        if close_idx < 0:
            continue
        args = split_args(src.code[open_idx + 1:close_idx])
        tags = tuple(tag_short(t) for a in args
                     for t in re.findall(r"\bkTag\w+\b", a))
        if not tags:
            continue  # not a tagged protocol call (collectives etc.)
        sites.append(_CallSite(src.line_of(m.start()), op, tags))
    return sites


def _attach(site_by_line: dict[int, _CallSite], ann_line: int, kind: str,
            tag: str, op: str | None) -> _CallSite | None:
    """First call site within the attach window below the annotation whose
    direction, tag and (optional) op match."""
    want_ops = SEND_OPS if kind == "send" else RECV_OPS
    for line in range(ann_line, ann_line + ATTACH_WINDOW + 1):
        site = site_by_line.get(line)
        if site is None:
            continue
        if op is not None and site.op != op:
            continue
        if op is None and site.op not in want_ops:
            continue
        if site.op not in want_ops:
            continue
        if tag in site.tags:
            return site
    return None


def extract(files: list[SourceFile]) -> ProtoModel:
    """Builds the protocol model from every annotated file in `files`."""
    model = ProtoModel()
    bad = model.violations

    # Pass 1: ROLE and MODEL declarations.
    pending: list[tuple[SourceFile, int, dict, str | None]] = []
    file_role: dict[str, str] = {}  # rel -> default role name
    for src in files:
        for lineno, line in enumerate(src.lines, 1):
            m = ANN_RE.search(line)
            if not m:
                continue
            flavor = m.group(1) or ""
            try:
                attrs, target = _parse_attrs(m.group(2))
            except ValueError as e:
                bad.append(Violation(src.rel, lineno, "proto-syntax",
                                     f"bad ESTCLUST-PROTO annotation: {e}"))
                continue
            if flavor == "-ROLE":
                _take_role(model, src, lineno, attrs, target)
                if "role" in attrs and src.rel not in file_role:
                    file_role[src.rel] = attrs["role"]
            elif flavor == "-MODEL":
                _take_config(model, src, lineno, attrs, target)
            else:
                pending.append((src, lineno, attrs, target))

    # Pass 2: transitions, cross-checked against the real call sites.
    sites_by_file: dict[str, list[_CallSite]] = {}
    for src, lineno, attrs, target in pending:
        _take_transition(model, src, lineno, attrs, target,
                         file_role.get(src.rel), sites_by_file)

    # Pass 3: every protocol call site in an annotated file is claimed.
    for src in files:
        if src.rel not in sites_by_file:
            continue
        for site in sites_by_file[src.rel]:
            if not site.claimed:
                bad.append(Violation(
                    src.rel, site.line, "proto-drift",
                    f"protocol {site.op} of {'/'.join(site.tags)} has no "
                    "ESTCLUST-PROTO annotation; the extracted automaton "
                    "no longer covers this call"))

    if model.roles:
        _check_structure(model)
    return model


def _take_role(model: ProtoModel, src: SourceFile, lineno: int,
               attrs: dict, target: str | None) -> None:
    bad = model.violations
    name = attrs.get("role", "")
    init = attrs.get("init", "")
    finals = tuple(s for s in attrs.get("final", "").split("|") if s)
    unknown = set(attrs) - {"role", "init", "final"}
    if not name or not init or not finals or unknown or target is not None:
        bad.append(Violation(
            src.rel, lineno, "proto-syntax",
            "ESTCLUST-PROTO-ROLE needs exactly role=, init=, "
            "final=A|B... and no arrow"))
        return
    if name in model.roles:
        prev = model.roles[name]
        bad.append(Violation(
            src.rel, lineno, "proto-model",
            f"role '{name}' already declared at {prev.file}:{prev.line}"))
        return
    model.roles[name] = Role(name, init, finals, src.rel, lineno)


def _take_config(model: ProtoModel, src: SourceFile, lineno: int,
                 attrs: dict, target: str | None) -> None:
    bad = model.violations
    try:
        if target is not None:
            raise ValueError("no arrow allowed")
        unknown = set(attrs) - {"name", "slaves", "mode", "faults",
                                "supply", "kills"}
        if unknown:
            raise ValueError(f"unknown attribute(s) {sorted(unknown)}")
        name = attrs["name"]
        slaves = int(attrs["slaves"])
        mode = attrs.get("mode", "reliable")
        if mode not in ("base", "reliable"):
            raise ValueError(f"mode must be base|reliable, got '{mode}'")
        raw = attrs.get("faults", "none")
        faults = tuple(f for f in raw.split("+") if f and f != "none")
        for f in faults:
            if f not in KNOWN_FAULTS:
                raise ValueError(f"unknown fault '{f}'")
        if faults and mode == "base":
            raise ValueError("base mode (no FaultPlan) cannot take faults")
        supply = int(attrs.get("supply", "1"))
        kills = int(attrs.get("kills", "1" if "kill" in faults else "0"))
        if kills > 0 and "kill" not in faults:
            raise ValueError("kills > 0 requires kill in faults")
        if not (1 <= slaves <= 4):
            raise ValueError("slaves must be in [1, 4]")
        if not (1 <= supply <= 4):
            raise ValueError("supply must be in [1, 4]")
        if kills >= slaves:
            raise ValueError("at least one slave must survive (kills < "
                             "slaves)")
    except (KeyError, ValueError) as e:
        msg = f"missing attribute {e}" if isinstance(e, KeyError) else str(e)
        bad.append(Violation(src.rel, lineno, "proto-syntax",
                             f"bad ESTCLUST-PROTO-MODEL: {msg}"))
        return
    if any(c.name == name for c in model.configs):
        bad.append(Violation(src.rel, lineno, "proto-model",
                             f"duplicate model config '{name}'"))
        return
    model.configs.append(
        ModelConfig(name, slaves, mode, faults, supply, kills,
                    src.rel, lineno))


def _take_transition(model: ProtoModel, src: SourceFile, lineno: int,
                     attrs: dict, target: str | None,
                     default_role: str | None,
                     sites_by_file: dict[str, list[_CallSite]]) -> None:
    bad = model.violations
    unknown = set(attrs) - {"state", "on", "send", "when", "mode", "role",
                            "op"}
    if unknown:
        bad.append(Violation(
            src.rel, lineno, "proto-syntax",
            f"unknown ESTCLUST-PROTO attribute(s) {sorted(unknown)}"))
        return
    if "state" not in attrs or target is None:
        bad.append(Violation(
            src.rel, lineno, "proto-syntax",
            "ESTCLUST-PROTO needs state=SOURCE and a '-> target' arrow"))
        return
    if "on" in attrs and "send" in attrs:
        bad.append(Violation(src.rel, lineno, "proto-syntax",
                             "transition cannot be both on= and send="))
        return

    role = attrs.get("role", default_role)
    if role is None or role not in model.roles:
        bad.append(Violation(
            src.rel, lineno, "proto-model",
            f"transition belongs to undeclared role '{role}'; add an "
            "ESTCLUST-PROTO-ROLE declaration"))
        return

    kind = "recv" if "on" in attrs else ("send" if "send" in attrs
                                         else "eps")
    tag = attrs.get("on") or attrs.get("send")
    if kind != "eps" and tag not in KNOWN_TAGS:
        bad.append(Violation(
            src.rel, lineno, "proto-model",
            f"unknown protocol tag '{tag}' (harness knows "
            f"{', '.join(KNOWN_TAGS)})"))
        return
    when = attrs.get("when")
    if when == "!stop":
        when = "notstop"
    if when is not None and when not in KNOWN_GUARDS:
        bad.append(Violation(
            src.rel, lineno, "proto-model",
            f"unknown guard '{attrs['when']}' (known: fresh, dup, match, "
            "stop, !stop, have_work, idle, flush, kill)"))
        return
    mode = attrs.get("mode", "both")
    if mode not in ("both", "reliable", "base"):
        bad.append(Violation(src.rel, lineno, "proto-syntax",
                             f"mode must be reliable|base, got '{mode}'"))
        return
    op = attrs.get("op")
    if op is not None and op not in SEND_OPS + RECV_OPS:
        bad.append(Violation(src.rel, lineno, "proto-syntax",
                             f"unknown op '{op}'"))
        return

    blocking = True
    if kind != "eps":
        if src.rel not in sites_by_file:
            sites_by_file[src.rel] = _find_call_sites(src)
        by_line = {s.line: s for s in sites_by_file[src.rel]}
        site = _attach(by_line, lineno, kind, tag, op)
        if site is None:
            wanted = f"{kind} of kTag{tag.title().replace('_', '')}"
            bad.append(Violation(
                src.rel, lineno, "proto-drift",
                f"annotation declares a {wanted} but no matching protocol "
                f"call follows within {ATTACH_WINDOW} lines; annotation "
                "and code have drifted apart"))
            return
        site.claimed = True
        blocking = site.op not in ("try_recv", "probe", "probe2")

    for source in attrs["state"].split("|"):
        source = source.strip()
        tgt = source if target == "." else target
        model.roles[role].transitions.append(Transition(
            role, source, tgt, kind, tag, when, mode, blocking,
            src.rel, lineno))


def _check_structure(model: ProtoModel) -> None:
    """Structural sanity over the assembled automata."""
    bad = model.violations
    for cfg in model.configs:
        for required in ("master", "slave"):
            if required not in model.roles:
                bad.append(Violation(
                    cfg.file, cfg.line, "proto-model",
                    f"model config '{cfg.name}' needs a declared "
                    f"'{required}' role"))
    for name in sorted(model.roles):
        role = model.roles[name]
        if not role.transitions:
            bad.append(Violation(role.file, role.line, "proto-model",
                                 f"role '{name}' declares no transitions"))
            continue
        # Reachability from init (guards/modes ignored: static shape).
        adjacent: dict[str, set[str]] = {}
        for t in role.transitions:
            adjacent.setdefault(t.source, set()).add(t.target)
        seen = {role.init}
        frontier = [role.init]
        while frontier:
            for nxt in sorted(adjacent.get(frontier.pop(), ())):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        for state in role.states():
            if state not in seen:
                witness = next((t for t in role.transitions
                                if state in (t.source, t.target)), None)
                where = ((witness.file, witness.line) if witness
                         else (role.file, role.line))
                bad.append(Violation(
                    *where, "proto-model",
                    f"role '{name}' state '{state}' is unreachable from "
                    f"init '{role.init}'"))
        for final in role.finals:
            if final not in seen:
                pass  # already reported above
        # Executor well-formedness: within one mode, a state must not mix
        # blocking receives with internal (send/eps) transitions.
        for mode in ("base", "reliable"):
            by_state: dict[str, list[Transition]] = {}
            for t in model.transitions(name, mode):
                by_state.setdefault(t.source, []).append(t)
            for state, ts in sorted(by_state.items()):
                has_block = any(t.kind == "recv" and t.blocking for t in ts)
                has_internal = any(t.kind in ("send", "eps")
                                   and t.when != "kill" for t in ts)
                if has_block and has_internal:
                    bad.append(Violation(
                        ts[0].file, ts[0].line, "proto-model",
                        f"role '{name}' state '{state}' mixes blocking "
                        f"receives with send/eps steps in {mode} mode; "
                        "the protocol executor needs pure states"))


def to_json(model: ProtoModel) -> str:
    """Deterministic JSON rendering of the extracted model."""
    doc = {
        "version": 1,
        "roles": {
            name: {
                "init": role.init,
                "finals": sorted(role.finals),
                "states": role.states(),
                "transitions": [
                    {"source": t.source, "target": t.target, "kind": t.kind,
                     "tag": t.tag, "when": t.when, "mode": t.mode,
                     "blocking": t.blocking, "site": f"{t.file}:{t.line}"}
                    for t in sorted(role.transitions,
                                    key=Transition.sort_key)],
            }
            for name, role in sorted(model.roles.items())
        },
        "configs": [
            {"name": c.name, "slaves": c.slaves, "mode": c.mode,
             "faults": list(c.faults), "supply": c.supply, "kills": c.kills,
             "site": f"{c.file}:{c.line}"}
            for c in sorted(model.configs, key=lambda c: c.name)],
    }
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def to_dot(model: ProtoModel) -> str:
    """Graphviz rendering: one cluster per role, edge labels `?TAG`
    (receive), `!TAG` (send), `eps`; guards in brackets; base-mode-only
    edges dashed, reliable-only edges solid, shared edges bold."""
    lines = ["digraph pace_protocol {", "  rankdir=LR;",
             "  node [shape=ellipse, fontsize=10];",
             "  edge [fontsize=9];"]
    for name in sorted(model.roles):
        role = model.roles[name]
        lines.append(f"  subgraph cluster_{name} {{")
        lines.append(f'    label="{name}";')
        for state in role.states():
            shape = ("doublecircle" if state in role.finals else
                     "circle" if state == role.init else "ellipse")
            lines.append(f'    "{name}.{state}" [label="{state}", '
                         f"shape={shape}];")
        for t in sorted(role.transitions, key=Transition.sort_key):
            ev = {"recv": f"?{t.tag}", "send": f"!{t.tag}",
                  "eps": "eps"}[t.kind]
            if t.when:
                ev += f"\\n[{t.when}]"
            style = {"both": "bold", "reliable": "solid",
                     "base": "dashed"}[t.mode]
            lines.append(f'    "{name}.{t.source}" -> "{name}.{t.target}" '
                         f'[label="{ev}", style={style}];')
        lines.append("  }")
    lines.append("}")
    return "\n".join(lines) + "\n"
