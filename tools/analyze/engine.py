"""Analyzer engine: file discovery, rule dispatch, suppressions,
baseline comparison and reporting.

Exit status: 0 when every violation is either suppressed in-source
(`// ESTCLUST-SUPPRESS(rule): reason`) or present in the committed
baseline (tools/analyze/baseline.json); 1 otherwise. The baseline is
kept empty -- it exists so a future true positive that cannot be fixed
immediately can be landed without weakening the gate for new code.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from analyze import (rules_clock, rules_codec, rules_conventions, rules_obs,
                     rules_tags)
from analyze.srcmodel import SourceFile, Violation

FAMILIES = {
    "codec": lambda files, src_root: rules_codec.run(files),
    "tags": lambda files, src_root: rules_tags.run(files),
    "clock": lambda files, src_root: rules_clock.run(files),
    "obs": lambda files, src_root: rules_obs.run(files),
    "conventions": lambda files, src_root: rules_conventions.run(
        files, src_root=src_root),
}

CPP_SUFFIXES = (".cpp", ".hpp")


def repo_root() -> Path:
    return Path(__file__).resolve().parent.parent.parent


def discover(root: Path, roots: list[str]) -> list[SourceFile]:
    files: list[SourceFile] = []
    for base in roots:
        base_path = root / base
        if not base_path.exists():
            continue
        for path in sorted(base_path.rglob("*")):
            if path.suffix not in CPP_SUFFIXES:
                continue
            rel = path.relative_to(root).as_posix()
            if rel.startswith("tools/analyze/"):
                continue  # fixtures carry seeded violations by design
            files.append(SourceFile(path, rel))
    return files


def load_sources(root: Path, paths: list[Path]) -> list[SourceFile]:
    return [SourceFile(p, p.resolve().relative_to(root).as_posix()
                       if p.resolve().is_relative_to(root)
                       else p.as_posix())
            for p in paths]


def analyze(files: list[SourceFile], src_root: Path | None,
            families: list[str]) -> tuple[list[Violation], int]:
    """Runs the requested rule families; returns (violations, suppressed
    count) with suppressions already applied. `src_root` gates the
    per-module conventions check (None for fixture runs)."""
    raw: list[Violation] = []
    for fam in families:
        raw.extend(FAMILIES[fam](files, src_root))

    by_rel = {f.rel: f for f in files}
    kept: list[Violation] = []
    suppressed = 0
    for v in raw:
        src = by_rel.get(v.file)
        if src is not None:
            s = src.suppression_for(v.line, v.rule)
            if s is not None:
                s.used = True
                suppressed += 1
                continue
        kept.append(v)
    kept.sort(key=lambda v: (v.file, v.line, v.rule))
    return kept, suppressed


def load_baseline(path: Path) -> set[tuple]:
    if not path.exists():
        return set()
    doc = json.loads(path.read_text(encoding="utf-8"))
    return {(v["file"], v.get("line", 0), v["rule"])
            for v in doc.get("violations", [])}


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="analyze", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("paths", nargs="*", type=Path,
                    help="specific files to analyze (default: src/, tools/)")
    ap.add_argument("--json", action="store_true",
                    help="emit a machine-readable JSON report")
    ap.add_argument("--families", default="codec,tags,clock,obs,conventions",
                    help="comma-separated rule families to run")
    ap.add_argument("--baseline", type=Path, default=None,
                    help="baseline JSON (default: tools/analyze/"
                         "baseline.json)")
    ap.add_argument("--selftest", action="store_true",
                    help="run the rule fixtures under tools/analyze/"
                         "fixtures and verify every rule fires/stays quiet")
    args = ap.parse_args(argv)

    if args.selftest:
        from analyze import selftest
        return selftest.run()

    root = repo_root()
    families = [f.strip() for f in args.families.split(",") if f.strip()]
    for fam in families:
        if fam not in FAMILIES:
            print(f"analyze: unknown rule family '{fam}'", file=sys.stderr)
            return 2

    if args.paths:
        files = load_sources(root, args.paths)
    else:
        files = discover(root, ["src", "tools"])

    violations, suppressed = analyze(files, root / "src", families)
    baseline_path = args.baseline or (root / "tools/analyze/baseline.json")
    baseline = load_baseline(baseline_path)
    new = [v for v in violations if v.key() not in baseline]
    known = [v for v in violations if v.key() in baseline]

    if args.json:
        print(json.dumps({
            "files_checked": len(files),
            "families": families,
            "suppressed": suppressed,
            "baseline": len(known),
            "violations": [
                {"file": v.file, "line": v.line, "rule": v.rule,
                 "message": v.message} for v in new],
        }, indent=2))
    else:
        if new:
            print(f"analyze: {len(new)} violation(s):")
            for v in new:
                print(f"  {v.render()}")
        if known:
            print(f"analyze: {len(known)} baselined violation(s) "
                  "(fix and shrink the baseline)")
        if not new:
            print(f"analyze: OK ({len(files)} files, "
                  f"{len(families)} rule families, "
                  f"{suppressed} suppressed)")
    return 1 if new else 0
