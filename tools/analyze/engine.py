"""Analyzer engine: file discovery, rule dispatch, suppressions,
baseline comparison and reporting.

Exit status: 0 when every violation is either suppressed in-source
(`// ESTCLUST-SUPPRESS(rule): reason`) or present in the committed
baseline (tools/analyze/baseline.json); 1 when new violations exist;
2 on configuration errors -- an unknown or empty rule-family list, or a
missing/unreadable baseline file (silently analyzing with fewer rules
or no baseline would weaken the gate while appearing to pass). The
baseline is kept empty -- it exists so a future true positive that
cannot be fixed immediately can be landed without weakening the gate
for new code.

Suppressions that no longer suppress anything are reported as warnings
(`suppress-stale`): they do not affect the exit status, but they mark
dead waivers that would silently swallow a future violation at that
line. A suppression is only called stale when every family that could
consume it actually ran.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from analyze import (cache, rules_bounds, rules_clock, rules_codec,
                     rules_conventions, rules_detflow, rules_obs,
                     rules_proto, rules_tags)
from analyze.srcmodel import SourceFile, SourceModel, Violation

# Each family runs as fn(files, src_root, model); model is the shared
# whole-tree SourceModel (built once per analyze() call) for the
# interprocedural families, None for the purely lexical ones.
FAMILIES = {
    "codec": lambda files, src_root, model: rules_codec.run(files),
    "tags": lambda files, src_root, model: rules_tags.run(files),
    "clock": lambda files, src_root, model: rules_clock.run(files, model),
    "detflow": lambda files, src_root, model: rules_detflow.run(model),
    "bounds": lambda files, src_root, model: rules_bounds.run(files, model),
    "obs": lambda files, src_root, model: rules_obs.run(files),
    "conventions": lambda files, src_root, model: rules_conventions.run(
        files, src_root=src_root),
    "proto": lambda files, src_root, model: rules_proto.run(files),
}

# Families that need the call graph / source model.
MODEL_FAMILIES = ("clock", "detflow", "bounds")

# Rule-id prefixes each family can emit; a suppression is attributed to
# the families whose rules it could cover, so staleness is only judged
# when all of them ran.
FAMILY_RULE_PREFIXES = {
    "codec": ("codec",),
    "tags": ("tag",),
    "clock": ("clock", "determinism"),
    "detflow": ("detflow",),
    "bounds": ("bounds",),
    "obs": ("obs",),
    "conventions": ("conventions",),
    "proto": ("proto",),
}


class BaselineError(Exception):
    """The baseline file cannot be read or parsed."""

CPP_SUFFIXES = (".cpp", ".hpp")


def repo_root() -> Path:
    return Path(__file__).resolve().parent.parent.parent


def discover(root: Path, roots: list[str],
             cache_dir: Path | None = None,
             cache_stats: cache.CacheStats | None = None,
             verify_cache: bool = False) -> list[SourceFile]:
    files: list[SourceFile] = []
    stats = cache_stats if cache_stats is not None else cache.CacheStats()
    for base in roots:
        base_path = root / base
        if not base_path.exists():
            continue
        for path in sorted(base_path.rglob("*")):
            if path.suffix not in CPP_SUFFIXES:
                continue
            rel = path.relative_to(root).as_posix()
            if rel.startswith("tools/analyze/"):
                continue  # fixtures carry seeded violations by design
            files.append(cache.load_source(path, rel, cache_dir, stats,
                                           verify=verify_cache))
    return files


def load_sources(root: Path, paths: list[Path]) -> list[SourceFile]:
    return [SourceFile(p, p.resolve().relative_to(root).as_posix()
                       if p.resolve().is_relative_to(root)
                       else p.as_posix())
            for p in paths]


def analyze(files: list[SourceFile], src_root: Path | None,
            families: list[str],
            proto_artifacts: Path | None = None,
            model: SourceModel | None = None,
            profile: dict[str, float] | None = None
            ) -> tuple[list[Violation], int]:
    """Runs the requested rule families; returns (violations, suppressed
    count) with suppressions already applied. `src_root` gates the
    per-module conventions check (None for fixture runs);
    `proto_artifacts` is where the proto family writes its extracted
    automaton (None to skip the artifacts). The SourceModel is built
    once here (or passed in) and shared by every interprocedural
    family; `profile` collects per-family wall seconds when given."""
    if model is None and any(f in MODEL_FAMILIES for f in families):
        t0 = time.monotonic()
        model = SourceModel(files)
        if profile is not None:
            profile["model"] = time.monotonic() - t0
    raw: list[Violation] = []
    for fam in families:
        t0 = time.monotonic()
        if fam == "proto":
            raw.extend(rules_proto.run(files, artifacts=proto_artifacts))
        else:
            raw.extend(FAMILIES[fam](files, src_root, model))
        if profile is not None:
            profile[fam] = time.monotonic() - t0

    by_rel = {f.rel: f for f in files}
    kept: list[Violation] = []
    suppressed = 0
    for v in raw:
        src = by_rel.get(v.file)
        if src is not None:
            s = src.suppression_for(v.line, v.rule)
            if s is not None:
                s.used = True
                suppressed += 1
                continue
        kept.append(v)
    kept.sort(key=lambda v: (v.file, v.line, v.rule))
    return kept, suppressed


def _owning_families(rule: str) -> set[str]:
    """Families whose rules a suppression entry `rule` could cover
    (entries may be full ids like determinism-unordered-iter or family
    prefixes like determinism)."""
    out = set()
    for fam, prefixes in FAMILY_RULE_PREFIXES.items():
        for p in prefixes:
            if rule == p or rule.startswith(p + "-"):
                out.add(fam)
    return out


def stale_suppressions(files: list[SourceFile],
                       families: list[str]) -> list[Violation]:
    """Suppressions that consumed nothing although every family that
    could feed them ran. Reported as warnings, not violations: a stale
    waiver is dead weight that would silently swallow a future
    violation, but it does not make the analyzed code wrong."""
    ran = set(families)
    out: list[Violation] = []
    for src in files:
        for s in src.suppressions:
            if s.used:
                continue
            fams = set()
            for r in s.rules:
                fams |= _owning_families(r)
            if fams and not fams <= ran:
                continue  # an owning family did not run; cannot judge
            out.append(Violation(
                src.rel, s.line, "suppress-stale",
                f"suppression of {', '.join(s.rules)} no longer matches "
                "any violation; remove it (reason was: "
                f"{s.reason})"))
    out.sort(key=lambda v: (v.file, v.line, v.rule))
    return out


def load_baseline(path: Path) -> set[tuple]:
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except OSError as e:
        raise BaselineError(f"cannot read baseline {path}: {e}")
    except json.JSONDecodeError as e:
        raise BaselineError(f"baseline {path} is not valid JSON: {e}")
    if not isinstance(doc, dict) or not isinstance(
            doc.get("violations", None), list):
        raise BaselineError(
            f"baseline {path} must be an object with a 'violations' list")
    return {(v["file"], v.get("line", 0), v["rule"])
            for v in doc["violations"]}


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="analyze", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("paths", nargs="*", type=Path,
                    help="specific files to analyze (default: src/, tools/)")
    ap.add_argument("--json", action="store_true",
                    help="emit a machine-readable JSON report")
    ap.add_argument("--families",
                    default="codec,tags,clock,detflow,bounds,obs,"
                            "conventions,proto",
                    help="comma-separated rule families to run")
    ap.add_argument("--baseline", type=Path, default=None,
                    help="baseline JSON (default: tools/analyze/"
                         "baseline.json)")
    ap.add_argument("--proto-artifacts", type=Path, default=None,
                    help="directory for the proto family's extracted "
                         "automaton (model.json, model.dot, explore.txt)")
    ap.add_argument("--callgraph", type=Path, default=None,
                    help="write the deterministic callgraph.json "
                         "artifact (function index + resolved edges)")
    ap.add_argument("--profile", action="store_true",
                    help="print per-family wall times and cache stats")
    ap.add_argument("--budget-seconds", type=float, default=None,
                    help="fail (exit 1) if total analyzer wall time "
                         "exceeds this budget")
    ap.add_argument("--no-cache", action="store_true",
                    help="disable the parsed-source cache")
    ap.add_argument("--cache-dir", type=Path, default=None,
                    help="parsed-source cache directory (default: "
                         "build/analyze_cache under the repo root)")
    ap.add_argument("--verify-cache", action="store_true",
                    help="recompute every cached parse and fail on any "
                         "divergence (cache self-consistency gate)")
    ap.add_argument("--selftest", action="store_true",
                    help="run the rule fixtures under tools/analyze/"
                         "fixtures and verify every rule fires/stays quiet")
    args = ap.parse_args(argv)

    if args.selftest:
        from analyze import selftest
        return selftest.run()

    root = repo_root()
    families = [f.strip() for f in args.families.split(",") if f.strip()]
    if not families:
        print("analyze: no rule families selected", file=sys.stderr)
        return 2
    for fam in families:
        if fam not in FAMILIES:
            print(f"analyze: unknown rule family '{fam}'", file=sys.stderr)
            return 2

    started = time.monotonic()
    cache_dir = None if args.no_cache else \
        (args.cache_dir or root / "build/analyze_cache")
    cache_stats = cache.CacheStats()
    profile: dict[str, float] = {}
    t0 = time.monotonic()
    try:
        if args.paths:
            files = load_sources(root, args.paths)
        else:
            files = discover(root, ["src", "tools"], cache_dir=cache_dir,
                             cache_stats=cache_stats,
                             verify_cache=args.verify_cache)
    except cache.CacheInconsistency as e:
        print(f"analyze: cache self-consistency check failed: {e}",
              file=sys.stderr)
        return 2
    profile["parse"] = time.monotonic() - t0

    model: SourceModel | None = None
    if args.callgraph or any(f in MODEL_FAMILIES for f in families):
        t0 = time.monotonic()
        model = SourceModel(files)
        profile["model"] = time.monotonic() - t0
    if args.callgraph is not None and model is not None:
        args.callgraph.parent.mkdir(parents=True, exist_ok=True)
        args.callgraph.write_text(
            json.dumps(model.to_json(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8")

    violations, suppressed = analyze(files, root / "src", families,
                                     proto_artifacts=args.proto_artifacts,
                                     model=model, profile=profile)
    warnings = stale_suppressions(files, families)
    elapsed = time.monotonic() - started
    baseline_path = args.baseline or (root / "tools/analyze/baseline.json")
    try:
        baseline = load_baseline(baseline_path)
    except BaselineError as e:
        print(f"analyze: {e}", file=sys.stderr)
        return 2
    new = [v for v in violations if v.key() not in baseline]
    known = [v for v in violations if v.key() in baseline]

    if args.json:
        print(json.dumps({
            "files_checked": len(files),
            "families": families,
            "suppressed": suppressed,
            "baseline": len(known),
            "violations": [
                {"file": v.file, "line": v.line, "rule": v.rule,
                 "message": v.message} for v in new],
            "warnings": [
                {"file": v.file, "line": v.line, "rule": v.rule,
                 "message": v.message} for v in warnings],
        }, indent=2))
    else:
        if new:
            print(f"analyze: {len(new)} violation(s):")
            for v in new:
                print(f"  {v.render()}")
        if known:
            print(f"analyze: {len(known)} baselined violation(s) "
                  "(fix and shrink the baseline)")
        for v in warnings:
            print(f"analyze: warning: {v.render()}")
        if not new:
            print(f"analyze: OK ({len(files)} files, "
                  f"{len(families)} rule families, "
                  f"{suppressed} suppressed, "
                  f"{len(warnings)} stale suppression warning(s))")

    if args.profile:
        parts = [f"{k}={profile[k]:.3f}s" for k in profile]
        print(f"analyze: profile: total={elapsed:.3f}s "
              + " ".join(parts)
              + (f" cache[hit={cache_stats.hits} miss={cache_stats.misses}"
                 f" corrupt={cache_stats.corrupt}]"
                 if cache_dir is not None else " cache=off"))
    if args.budget_seconds is not None and elapsed > args.budget_seconds:
        print(f"analyze: wall time {elapsed:.3f}s exceeds the committed "
              f"budget of {args.budget_seconds:.3f}s -- a rule pass has "
              "regressed (quadratic blowup?)", file=sys.stderr)
        return 1
    return 1 if new else 0
