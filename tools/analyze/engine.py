"""Analyzer engine: file discovery, rule dispatch, suppressions,
baseline comparison and reporting.

Exit status: 0 when every violation is either suppressed in-source
(`// ESTCLUST-SUPPRESS(rule): reason`) or present in the committed
baseline (tools/analyze/baseline.json); 1 when new violations exist;
2 on configuration errors -- an unknown or empty rule-family list, or a
missing/unreadable baseline file (silently analyzing with fewer rules
or no baseline would weaken the gate while appearing to pass). The
baseline is kept empty -- it exists so a future true positive that
cannot be fixed immediately can be landed without weakening the gate
for new code.

Suppressions that no longer suppress anything are reported as warnings
(`suppress-stale`): they do not affect the exit status, but they mark
dead waivers that would silently swallow a future violation at that
line. A suppression is only called stale when every family that could
consume it actually ran.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from analyze import (rules_clock, rules_codec, rules_conventions, rules_obs,
                     rules_proto, rules_tags)
from analyze.srcmodel import SourceFile, Violation

FAMILIES = {
    "codec": lambda files, src_root: rules_codec.run(files),
    "tags": lambda files, src_root: rules_tags.run(files),
    "clock": lambda files, src_root: rules_clock.run(files),
    "obs": lambda files, src_root: rules_obs.run(files),
    "conventions": lambda files, src_root: rules_conventions.run(
        files, src_root=src_root),
    "proto": lambda files, src_root: rules_proto.run(files),
}

# Rule-id prefixes each family can emit; a suppression is attributed to
# the families whose rules it could cover, so staleness is only judged
# when all of them ran.
FAMILY_RULE_PREFIXES = {
    "codec": ("codec",),
    "tags": ("tag",),
    "clock": ("clock", "determinism"),
    "obs": ("obs",),
    "conventions": ("conventions",),
    "proto": ("proto",),
}


class BaselineError(Exception):
    """The baseline file cannot be read or parsed."""

CPP_SUFFIXES = (".cpp", ".hpp")


def repo_root() -> Path:
    return Path(__file__).resolve().parent.parent.parent


def discover(root: Path, roots: list[str]) -> list[SourceFile]:
    files: list[SourceFile] = []
    for base in roots:
        base_path = root / base
        if not base_path.exists():
            continue
        for path in sorted(base_path.rglob("*")):
            if path.suffix not in CPP_SUFFIXES:
                continue
            rel = path.relative_to(root).as_posix()
            if rel.startswith("tools/analyze/"):
                continue  # fixtures carry seeded violations by design
            files.append(SourceFile(path, rel))
    return files


def load_sources(root: Path, paths: list[Path]) -> list[SourceFile]:
    return [SourceFile(p, p.resolve().relative_to(root).as_posix()
                       if p.resolve().is_relative_to(root)
                       else p.as_posix())
            for p in paths]


def analyze(files: list[SourceFile], src_root: Path | None,
            families: list[str],
            proto_artifacts: Path | None = None
            ) -> tuple[list[Violation], int]:
    """Runs the requested rule families; returns (violations, suppressed
    count) with suppressions already applied. `src_root` gates the
    per-module conventions check (None for fixture runs);
    `proto_artifacts` is where the proto family writes its extracted
    automaton (None to skip the artifacts)."""
    raw: list[Violation] = []
    for fam in families:
        if fam == "proto":
            raw.extend(rules_proto.run(files, artifacts=proto_artifacts))
        else:
            raw.extend(FAMILIES[fam](files, src_root))

    by_rel = {f.rel: f for f in files}
    kept: list[Violation] = []
    suppressed = 0
    for v in raw:
        src = by_rel.get(v.file)
        if src is not None:
            s = src.suppression_for(v.line, v.rule)
            if s is not None:
                s.used = True
                suppressed += 1
                continue
        kept.append(v)
    kept.sort(key=lambda v: (v.file, v.line, v.rule))
    return kept, suppressed


def _owning_families(rule: str) -> set[str]:
    """Families whose rules a suppression entry `rule` could cover
    (entries may be full ids like determinism-unordered-iter or family
    prefixes like determinism)."""
    out = set()
    for fam, prefixes in FAMILY_RULE_PREFIXES.items():
        for p in prefixes:
            if rule == p or rule.startswith(p + "-"):
                out.add(fam)
    return out


def stale_suppressions(files: list[SourceFile],
                       families: list[str]) -> list[Violation]:
    """Suppressions that consumed nothing although every family that
    could feed them ran. Reported as warnings, not violations: a stale
    waiver is dead weight that would silently swallow a future
    violation, but it does not make the analyzed code wrong."""
    ran = set(families)
    out: list[Violation] = []
    for src in files:
        for s in src.suppressions:
            if s.used:
                continue
            fams = set()
            for r in s.rules:
                fams |= _owning_families(r)
            if fams and not fams <= ran:
                continue  # an owning family did not run; cannot judge
            out.append(Violation(
                src.rel, s.line, "suppress-stale",
                f"suppression of {', '.join(s.rules)} no longer matches "
                "any violation; remove it (reason was: "
                f"{s.reason})"))
    out.sort(key=lambda v: (v.file, v.line, v.rule))
    return out


def load_baseline(path: Path) -> set[tuple]:
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except OSError as e:
        raise BaselineError(f"cannot read baseline {path}: {e}")
    except json.JSONDecodeError as e:
        raise BaselineError(f"baseline {path} is not valid JSON: {e}")
    if not isinstance(doc, dict) or not isinstance(
            doc.get("violations", None), list):
        raise BaselineError(
            f"baseline {path} must be an object with a 'violations' list")
    return {(v["file"], v.get("line", 0), v["rule"])
            for v in doc["violations"]}


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="analyze", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("paths", nargs="*", type=Path,
                    help="specific files to analyze (default: src/, tools/)")
    ap.add_argument("--json", action="store_true",
                    help="emit a machine-readable JSON report")
    ap.add_argument("--families",
                    default="codec,tags,clock,obs,conventions,proto",
                    help="comma-separated rule families to run")
    ap.add_argument("--baseline", type=Path, default=None,
                    help="baseline JSON (default: tools/analyze/"
                         "baseline.json)")
    ap.add_argument("--proto-artifacts", type=Path, default=None,
                    help="directory for the proto family's extracted "
                         "automaton (model.json, model.dot, explore.txt)")
    ap.add_argument("--selftest", action="store_true",
                    help="run the rule fixtures under tools/analyze/"
                         "fixtures and verify every rule fires/stays quiet")
    args = ap.parse_args(argv)

    if args.selftest:
        from analyze import selftest
        return selftest.run()

    root = repo_root()
    families = [f.strip() for f in args.families.split(",") if f.strip()]
    if not families:
        print("analyze: no rule families selected", file=sys.stderr)
        return 2
    for fam in families:
        if fam not in FAMILIES:
            print(f"analyze: unknown rule family '{fam}'", file=sys.stderr)
            return 2

    if args.paths:
        files = load_sources(root, args.paths)
    else:
        files = discover(root, ["src", "tools"])

    violations, suppressed = analyze(files, root / "src", families,
                                     proto_artifacts=args.proto_artifacts)
    warnings = stale_suppressions(files, families)
    baseline_path = args.baseline or (root / "tools/analyze/baseline.json")
    try:
        baseline = load_baseline(baseline_path)
    except BaselineError as e:
        print(f"analyze: {e}", file=sys.stderr)
        return 2
    new = [v for v in violations if v.key() not in baseline]
    known = [v for v in violations if v.key() in baseline]

    if args.json:
        print(json.dumps({
            "files_checked": len(files),
            "families": families,
            "suppressed": suppressed,
            "baseline": len(known),
            "violations": [
                {"file": v.file, "line": v.line, "rule": v.rule,
                 "message": v.message} for v in new],
            "warnings": [
                {"file": v.file, "line": v.line, "rule": v.rule,
                 "message": v.message} for v in warnings],
        }, indent=2))
    else:
        if new:
            print(f"analyze: {len(new)} violation(s):")
            for v in new:
                print(f"  {v.render()}")
        if known:
            print(f"analyze: {len(known)} baselined violation(s) "
                  "(fix and shrink the baseline)")
        for v in warnings:
            print(f"analyze: warning: {v.render()}")
        if not new:
            print(f"analyze: OK ({len(files)} files, "
                  f"{len(families)} rule families, "
                  f"{suppressed} suppressed, "
                  f"{len(warnings)} stale suppression warning(s))")
    return 1 if new else 0
