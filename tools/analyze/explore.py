"""Exhaustive state-space exploration of the extracted pace protocol
model (rule family `proto`; companion of protomodel.py, DESIGN.md §10).

Composes 1 master x N slaves from the per-role automata and enumerates
every reachable global state of the closed system under the PR 5 fault
model, proving for each ESTCLUST-PROTO-MODEL configuration:

  * deadlock-freedom      -- every non-final global state has a
                             successor; the only non-clean terminals are
                             the master's *documented* loud-failure
                             check ("work remains but no slave is
                             available to take it"), and those are legal
                             only when a slave death actually made the
                             run unsurvivable (the last live worker died
                             holding recovered work);
  * no unhandled message  -- a process never faces an arriving message
                             its state has no transition for, and
                             terminal channels hold only excusable
                             leftovers (duplicate copies, traffic
                             addressed to a dead rank);
  * sequence-number safety-- dedup only ever discards fault-injected
                             duplicate copies (a fresh REPORT/ASSIGN/ACK
                             is never dropped), and at termination the
                             master has incorporated every report each
                             slave ever sent;
  * termination           -- the reachable state graph is acyclic, so
                             every execution bottoms out in a terminal;
  * bounded channels      -- no channel ever exceeds its capacity.

Fidelity notes (mirrors of src/mpr + src/pace semantics):

  * Channels are per-direction FIFO queues with mailbox tag matching: a
    receive takes the *first matching* message and is never blocked by a
    non-matching head (Mailbox::pop / pop2).
  * Messages are queued at send time; the fault layer's drop is a timed
    retransmission, so a dropped message is still delivered exactly
    once, in per-sender program order, merely later: communicator.cpp
    pushes the payload into the destination mailbox at the send site and
    only arrival_vtime moves, while Mailbox::pop scans its queue in push
    order and uses arrival_vtime solely to advance the receiver's
    virtual clock. Drop is therefore delivery-neutral by construction of
    the runtime — it changes modeled time, never the sequence of
    messages any process observes — and the explorer accepts it in the
    fault alphabet without branching on it. Dup is a real branch: a
    flagged second copy queued back-to-back (Mailbox::push_pair).
  * kill branches at the slave's annotated death checkpoints (the
    `when=kill` transitions: C1 startup, C2 between assignment and ack);
    the death notice (HEARTBEAT) is fault-exempt, as in FaultPlan.
  * The master is the real sequential scheduler of master.cpp run():
    eager drain_wait_queue whenever WORKBUF holds work, deterministic
    round-robin cursor over sessions owing a report, await_report loops
    that stay blocked on the *same* slave across duplicate deliveries,
    and the flush-with-stop endgame including death-triggered re-entry
    into the interaction loop (flush_parked returning true).
  * Work is abstracted to batch units: each slave starts with `supply`
    units it can hand to the master, the master grants at most one unit
    per ASSIGN and retains an in-flight copy until the answering
    report's results_for_seq releases it, and a dead slave's units
    (in-flight copies plus its remaining supply) are re-enqueued —
    gst::rebuild_rank_forest regenerating the stream deterministically.

Internal runs (a role's sends/eps between two blocking receives) are
executed atomically; with asynchronous FIFO channels this is a sound
partial-order reduction — only the messages a burst emits are
observable, and they land in per-sender program order either way.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from analyze.protomodel import ModelConfig, ProtoModel, Transition

# Hard ceilings: exceeding one is itself reported (proto-explore /
# proto-channel), so a runaway model can never hang the analyzer.
MAX_STATES = 2_000_000
CHANNEL_CAP = 8
BURST_CAP = 64

P_MAIN, P_FLUSH, P_DONE, P_ABORT = 0, 1, 2, 3


class Trap(Exception):
    """A property violation discovered mid-transition (modeled
    ESTCLUST_CHECK failures, seq-safety breaches, capacity overflows)."""

    def __init__(self, rule: str, message: str):
        super().__init__(message)
        self.rule = rule


@dataclass
class Finding:
    rule: str
    message: str


@dataclass
class Stats:
    states: int = 0
    edges: int = 0
    terminals: int = 0
    aborts: int = 0  # documented loud-failure terminals (unsurvivable kill)
    findings: list[Finding] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Messages are plain tuples so global states hash fast; every message
# ends with a dup flag marking fault-injected duplicate copies:
#   ("REPORT", seq, results_for_seq, ack_assign_seq, pairs, oop, d)
#   ("ASSIGN", seq, work, request, stop, d)
#   ("ACK", seq, d)
#   ("HEARTBEAT", last_report_seq, d)

def _msg(tag: str, *fields) -> tuple:
    return (tag, *fields, 0)


def _is_dup(m: tuple) -> bool:
    return bool(m[-1])


def _as_dup(m: tuple) -> tuple:
    return m[:-1] + (1,)


# Global state layout (immutable, hashable):
#   (phase, cursor, fs, mtarget, workbuf, waitq, kills_left,
#    sessions, slaves, ch_ms, ch_sm)
# sessions[i] = (state, last_rseq, aseq, passive, inflight)
# slaves[i]   = (state, supply, rseq, last_aseq, nw_seq,
#                a_work, a_req, a_stop, a_seq, died)
# ch_ms[i] / ch_sm[i]: FIFO tuples of message tuples, master<->slave i+1.

S_STATE, S_SUPPLY, S_RSEQ, S_LASTA, S_NWSEQ = 0, 1, 2, 3, 4
S_AWORK, S_AREQ, S_ASTOP, S_ASEQ, S_DIED = 5, 6, 7, 8, 9
M_STATE, M_LASTR, M_ASEQ, M_PASSIVE, M_INFLIGHT = 0, 1, 2, 3, 4


@dataclass
class _Mut:
    """Mutable unpacked global state during one transition burst."""
    phase: int
    cursor: int
    fs: int
    mtarget: int
    workbuf: int
    waitq: tuple
    kills_left: int
    sessions: list
    slaves: list
    ch_ms: list
    ch_sm: list

    @staticmethod
    def of(st: tuple) -> "_Mut":
        return _Mut(st[0], st[1], st[2], st[3], st[4], st[5], st[6],
                    [list(s) for s in st[7]], [list(s) for s in st[8]],
                    [list(c) for c in st[9]], [list(c) for c in st[10]])

    def freeze(self) -> tuple:
        return (self.phase, self.cursor, self.fs, self.mtarget,
                self.workbuf, self.waitq, self.kills_left,
                tuple(tuple(s) for s in self.sessions),
                tuple(tuple(s) for s in self.slaves),
                tuple(tuple(c) for c in self.ch_ms),
                tuple(tuple(c) for c in self.ch_sm))

    def clone(self) -> "_Mut":
        return _Mut(self.phase, self.cursor, self.fs, self.mtarget,
                    self.workbuf, self.waitq, self.kills_left,
                    [list(s) for s in self.sessions],
                    [list(s) for s in self.slaves],
                    [list(c) for c in self.ch_ms],
                    [list(c) for c in self.ch_sm])


@dataclass
class _StateIndex:
    recv: list[Transition] = field(default_factory=list)
    internal: list[Transition] = field(default_factory=list)
    kill: list[Transition] = field(default_factory=list)


_EMPTY = _StateIndex()


def _index(transitions: list[Transition]) -> dict[str, _StateIndex]:
    out: dict[str, _StateIndex] = {}
    for t in transitions:
        slot = out.setdefault(t.source, _StateIndex())
        if t.when == "kill":
            slot.kill.append(t)
        elif t.kind == "recv":
            slot.recv.append(t)
        else:
            slot.internal.append(t)
    return out


class Explorer:
    """One ESTCLUST-PROTO-MODEL configuration's exhaustive search."""

    def __init__(self, model: ProtoModel, cfg: ModelConfig):
        self.cfg = cfg
        self.n = cfg.slaves
        self.mode = cfg.mode
        self.faults = set(cfg.faults)
        self.master = _index(model.transitions("master", cfg.mode))
        self.slave = _index(model.transitions("slave", cfg.mode))
        self.master_finals = set(model.roles["master"].finals)
        self.slave_finals = set(model.roles["slave"].finals)
        self.master_init = model.roles["master"].init
        self.slave_init = model.roles["slave"].init
        # Static per-state tables so the search can rule a process out
        # without unpacking the global state.
        self.m_tags = {s: sorted({t.tag for t in ix.recv})
                       for s, ix in self.master.items()}
        self.s_tags = {s: sorted({t.tag for t in ix.recv})
                       for s, ix in self.slave.items()}
        self.m_expect = {s for s, ix in self.master.items()
                         if any(t.blocking for t in ix.recv)}
        self.m_park = {s for s, ix in self.master.items()
                       if any(t.when == "flush" for t in ix.internal)}

    # -- channel primitives -------------------------------------------------

    def _push(self, chan: list, msg: tuple, fault_eligible: bool) -> list:
        """All channel contents this send can produce under the enabled
        fault alphabet: plain, and duplicated (flagged second copy right
        behind the first, Mailbox::push_pair). Drop needs no branch: the
        runtime retransmits in place, so delivery order and content are
        identical to the plain send (see the module docstring)."""
        if len(chan) >= CHANNEL_CAP:
            raise Trap("proto-channel",
                       f"channel exceeds its bound of {CHANNEL_CAP} "
                       f"messages while sending {msg[0]} "
                       f"(queued: {', '.join(m[0] for m in chan)})")
        variants = [chan + [msg]]
        if not fault_eligible:
            return variants
        if "dup" in self.faults:
            variants.append(chan + [msg, _as_dup(msg)])
        return variants

    @staticmethod
    def _take(chan: list, tags: list[str]) -> tuple | None:
        """Mailbox matching: removes and returns the first message whose
        tag is in `tags` (Mailbox::pop/pop2 FIFO scan); None if absent."""
        for k, m in enumerate(chan):
            if m[0] in tags:
                del chan[k]
                return m
        return None

    def kills_ok(self, mut: _Mut) -> bool:
        return "kill" in self.faults and mut.kills_left > 0

    # -- slave semantics ----------------------------------------------------

    def _s_guard(self, mut: _Mut, i: int, when: str | None) -> bool:
        if when is None:
            return True
        a_stop = mut.slaves[i][S_ASTOP]
        if when == "stop":
            return bool(a_stop)
        if when == "notstop":
            return not a_stop
        return False

    def _slave_send_effect(self, mut: _Mut, i: int, tag: str) -> tuple:
        sl = mut.slaves[i]
        if tag == "REPORT":
            sl[S_RSEQ] += 1
            pairs = 1 if (sl[S_AREQ] > 0 and sl[S_SUPPLY] > 0) else 0
            sl[S_SUPPLY] -= pairs
            oop = 1 if sl[S_SUPPLY] == 0 else 0
            return _msg("REPORT", sl[S_RSEQ], sl[S_NWSEQ], sl[S_LASTA],
                        pairs, oop)
        if tag == "HEARTBEAT":
            return _msg("HEARTBEAT", sl[S_RSEQ])
        raise Trap("proto-model",
                   f"slave sends unsupported tag {tag}; the harness "
                   "models REPORT/HEARTBEAT from slaves")

    def _slave_after_report(self, mut: _Mut, i: int) -> None:
        """Mirrors `nextwork = assign.work; nextwork_seq_ = assign.seq`:
        once the report answering an assignment is out, the stashed
        assignment becomes NEXTWORK and its request is satisfied."""
        sl = mut.slaves[i]
        sl[S_NWSEQ] = sl[S_ASEQ]
        sl[S_AWORK] = 0
        sl[S_AREQ] = 0

    def _slave_recv_guard(self, mut: _Mut, i: int, tr: Transition,
                          m: tuple) -> bool:
        sl = mut.slaves[i]
        if not tr.blocking:
            # drain_duplicates(): after the final ack, everything the
            # master will ever send is already queued, so what remains
            # must be exactly the duplicated deliveries.
            if not _is_dup(m):
                raise Trap("proto-seq",
                           f"slave {i + 1} drains a non-duplicate {m[0]} "
                           "after retiring; a live message was discarded")
            return True
        if m[0] == "ASSIGN":
            if self.mode == "reliable" and m[1] > sl[S_LASTA] + 1:
                raise Trap("proto-check",
                           f"slave {i + 1} sees assignment seq gap: got "
                           f"{m[1]} after {sl[S_LASTA]}")
            fresh = self.mode == "base" or m[1] == sl[S_LASTA] + 1
            if tr.when == "fresh":
                return fresh
            if tr.when == "dup":
                if not fresh and not _is_dup(m):
                    raise Trap("proto-seq",
                               f"slave {i + 1} drops a non-duplicate "
                               f"ASSIGN (seq {m[1]}) as a duplicate")
                return not fresh
            return True
        if m[0] == "ACK":
            if m[1] > sl[S_RSEQ]:
                raise Trap("proto-check",
                           f"slave {i + 1} gets ack {m[1]} for a report "
                           f"not yet sent (sent {sl[S_RSEQ]})")
            match = m[1] == sl[S_RSEQ]
            if tr.when == "match":
                return match
            if tr.when == "dup":
                if not match and not _is_dup(m):
                    raise Trap("proto-seq",
                               f"slave {i + 1} discards a non-duplicate "
                               f"ack {m[1]} (expected {sl[S_RSEQ]})")
                return not match
            return True
        raise Trap("proto-model",
                   f"slave receives unsupported tag {m[0]}")

    def _slave_recv_effect(self, mut: _Mut, i: int, tr: Transition,
                           m: tuple) -> None:
        sl = mut.slaves[i]
        if m[0] == "ASSIGN" and tr.blocking and tr.when in (None, "fresh"):
            sl[S_LASTA] = m[1]
            sl[S_AWORK], sl[S_AREQ], sl[S_ASTOP] = m[2], m[3], m[4]
            sl[S_ASEQ] = m[1]
            if m[4] and m[2]:
                raise Trap("proto-check",
                           f"final assignment to slave {i + 1} carried "
                           "work")

    def _run_slave(self, mut: _Mut, i: int, consumed: bool,
                   out: list, depth: int = 0) -> None:
        """Advances slave i until it blocks or finishes; appends every
        frozen successor (kill and fault branching included) to `out`.
        `consumed` tracks whether this burst made any progress at all —
        a still-blocked slave contributes no successor."""
        if depth > BURST_CAP:
            raise Trap("proto-termination",
                       f"slave {i + 1} internal transitions do not "
                       "converge (send/eps cycle in the automaton)")
        sl = mut.slaves[i]
        state = sl[S_STATE]
        here = self.slave.get(state, _EMPTY)

        # Death checkpoints branch first: both futures are explored. The
        # notice is fault-exempt and queued behind every prior message.
        if here.kill and self.kills_ok(mut):
            for t in here.kill:
                k = mut.clone()
                k.kills_left -= 1
                k.slaves[i][S_STATE] = t.target
                k.slaves[i][S_DIED] = 1
                hb = self._slave_send_effect(k, i, t.tag)
                k.ch_sm[i] = self._push(k.ch_sm[i], hb,
                                        fault_eligible=False)[0]
                out.append(k.freeze())

        internal = [t for t in here.internal
                    if self._s_guard(mut, i, t.when)]
        if internal:
            if len(internal) > 1:
                raise Trap("proto-model",
                           f"slave state '{state}' enables "
                           f"{len(internal)} internal transitions at "
                           "once; guards must be mutually exclusive")
            t = internal[0]
            if t.kind == "send":
                m = self._slave_send_effect(mut, i, t.tag)
                eligible = (self.mode == "reliable"
                            and t.tag != "HEARTBEAT")
                for chan in self._push(mut.ch_sm[i], m, eligible):
                    nxt = mut.clone()
                    nxt.ch_sm[i] = chan
                    nxt.slaves[i][S_STATE] = t.target
                    if t.tag == "REPORT":
                        self._slave_after_report(nxt, i)
                    self._run_slave(nxt, i, True, out, depth + 1)
            else:  # eps
                sl[S_STATE] = t.target
                self._run_slave(mut, i, consumed, out, depth + 1)
            return

        if here.recv:
            tags = sorted({t.tag for t in here.recv})
            m = self._take(mut.ch_ms[i], tags)
            if m is None:
                if consumed:
                    out.append(mut.freeze())
                return
            fits = [t for t in here.recv if t.tag == m[0]
                    and self._slave_recv_guard(mut, i, t, m)]
            if not fits:
                raise Trap("proto-unhandled",
                           f"slave {i + 1} in state '{state}' has no "
                           f"transition accepting the arriving {m[0]} "
                           f"(seq field {m[1]})")
            t = fits[0]
            self._slave_recv_effect(mut, i, t, m)
            sl[S_STATE] = t.target
            self._run_slave(mut, i, True, out, depth + 1)
            return

        if state not in self.slave_finals and not here.kill:
            raise Trap("proto-unhandled",
                       f"slave {i + 1} is stuck in non-final state "
                       f"'{state}' with no transition at all")
        if consumed:
            out.append(mut.freeze())

    # -- master semantics ---------------------------------------------------

    def _m_guard(self, mut: _Mut, i: int, when: str | None) -> bool:
        if when is None:
            return True
        passive = mut.sessions[i][M_PASSIVE]
        have_work = mut.workbuf > 0 or not passive
        if when == "have_work":
            return mut.phase == P_MAIN and have_work
        if when == "idle":
            return mut.phase == P_MAIN and not have_work
        if when == "flush":
            return mut.phase == P_FLUSH
        return False

    def _m_send_effect(self, mut: _Mut, i: int, tr: Transition) -> tuple:
        sess = mut.sessions[i]
        if tr.tag == "ACK":
            return _msg("ACK", sess[M_LASTR])
        if tr.tag == "ASSIGN":
            sess[M_ASEQ] += 1
            stop = 1 if tr.when == "flush" else 0
            work = 1 if (mut.workbuf > 0 and not stop) else 0
            mut.workbuf -= work
            request = 0 if (sess[M_PASSIVE] or stop) else 1
            if work:
                sess[M_INFLIGHT] = (tuple(sess[M_INFLIGHT])
                                    + ((sess[M_ASEQ], work),))
            return _msg("ASSIGN", sess[M_ASEQ], work, request, stop)
        raise Trap("proto-model",
                   f"master sends unsupported tag {tr.tag}; the harness "
                   "models ASSIGN/ACK from the master")

    def _m_recv_guard(self, mut: _Mut, i: int, tr: Transition,
                      m: tuple) -> bool:
        sess = mut.sessions[i]
        if m[0] == "REPORT":
            if self.mode == "reliable" and m[1] > sess[M_LASTR] + 1:
                raise Trap("proto-check",
                           f"master sees report seq gap from slave "
                           f"{i + 1}: got {m[1]} after {sess[M_LASTR]}")
            fresh = self.mode == "base" or m[1] == sess[M_LASTR] + 1
            if tr.when == "fresh":
                return fresh
            if tr.when == "dup":
                if not fresh and not _is_dup(m):
                    raise Trap("proto-seq",
                               f"master drops a non-duplicate REPORT "
                               f"(seq {m[1]} from slave {i + 1}) as a "
                               "duplicate: fresh results would be lost")
                return not fresh
            return True
        if m[0] == "HEARTBEAT":
            return tr.when is None
        raise Trap("proto-model",
                   f"master receives unsupported tag {m[0]}")

    def _m_recv_effect(self, mut: _Mut, i: int, tr: Transition,
                       m: tuple) -> None:
        sess = mut.sessions[i]
        if m[0] == "REPORT" and tr.when in (None, "fresh"):
            seq, results_for, ack_aseq, pairs, oop = m[1:6]
            if self.mode == "reliable" and ack_aseq != sess[M_ASEQ]:
                raise Trap("proto-check",
                           f"report from slave {i + 1} acks assignment "
                           f"{ack_aseq}, master expected {sess[M_ASEQ]}")
            sess[M_LASTR] = seq
            sess[M_INFLIGHT] = tuple(e for e in sess[M_INFLIGHT]
                                     if e[0] != results_for)
            if mut.phase == P_FLUSH and pairs:
                raise Trap("proto-check",
                           f"parked slave {i + 1} produced pairs during "
                           "the final flush")
            mut.workbuf += pairs
            sess[M_PASSIVE] = bool(oop)
        elif m[0] == "HEARTBEAT":
            self._handle_death(mut, i, m)

    def _handle_death(self, mut: _Mut, i: int, m: tuple) -> None:
        """master.cpp handle_death: every report the slave sent precedes
        its heartbeat in mailbox order and was consumed by the await
        loop; retained in-flight work plus the dead slave's remaining
        stream is re-enqueued deterministically."""
        sess = mut.sessions[i]
        if m[1] != sess[M_LASTR]:
            raise Trap("proto-check",
                       f"dead slave {i + 1} reported through seq {m[1]} "
                       f"but the master incorporated {sess[M_LASTR]}")
        sess[M_PASSIVE] = True
        recovered = sum(units for _, units in sess[M_INFLIGHT])
        sess[M_INFLIGHT] = ()
        recovered += mut.slaves[i][S_SUPPLY]
        mut.slaves[i][S_SUPPLY] = 0
        mut.workbuf += recovered
        mut.waitq = tuple(s for s in mut.waitq if s != i + 1)

    def _expecting(self, mut: _Mut, i: int) -> bool:
        """Session i owes the master a blocking receive — the model
        analog of SlaveState::kExpectingReport."""
        return mut.sessions[i][M_STATE] in self.m_expect

    def _parked(self, mut: _Mut, i: int) -> bool:
        """Session i sits in the wait-queue state (kWaiting): its only
        way forward is the have_work / flush assignment."""
        return mut.sessions[i][M_STATE] in self.m_park

    def _enqueue_if_parked(self, mut: _Mut, i: int) -> None:
        """reply()'s park branch: entering kWaiting appends the session
        to the wait queue (wait_queue_.push_back)."""
        if self._parked(mut, i) and (i + 1) not in mut.waitq:
            mut.waitq = mut.waitq + (i + 1,)

    def _run_master_internal(self, mut: _Mut, i: int, out: list,
                             depth: int = 0) -> None:
        """Runs session i's send/eps transitions to quiescence. A flush
        send then blocks awaiting that very slave (flush_parked calls
        await_report inline); otherwise control returns to run()'s
        scheduler."""
        if depth > BURST_CAP:
            raise Trap("proto-termination",
                       "master internal transitions do not converge "
                       "(send/eps cycle in the automaton)")
        state = mut.sessions[i][M_STATE]
        here = self.master.get(state, _EMPTY)
        internal = [t for t in here.internal
                    if self._m_guard(mut, i, t.when)]
        if internal:
            if len(internal) > 1:
                raise Trap("proto-model",
                           f"master state '{state}' enables "
                           f"{len(internal)} internal transitions at "
                           "once; guards must be mutually exclusive")
            t = internal[0]
            if t.kind == "send":
                m = self._m_send_effect(mut, i, t)
                eligible = self.mode == "reliable"
                for chan in self._push(mut.ch_ms[i], m, eligible):
                    nxt = mut.clone()
                    nxt.ch_ms[i] = chan
                    nxt.sessions[i][M_STATE] = t.target
                    self._enqueue_if_parked(nxt, i)
                    self._run_master_internal(nxt, i, out, depth + 1)
            else:
                mut.sessions[i][M_STATE] = t.target
                self._enqueue_if_parked(mut, i)
                self._run_master_internal(mut, i, out, depth + 1)
            return
        if mut.phase == P_FLUSH and self._expecting(mut, i):
            mut.mtarget = i + 1
            out.append(mut.freeze())
            return
        self._schedule(mut, out)

    def _schedule(self, mut: _Mut, out: list) -> None:
        """The master's top-level control flow (master.cpp run()):
        drain the wait queue while work is available, then either block
        on the round-robin cursor's next owing session or move to the
        flush endgame."""
        guard = 0
        while True:
            guard += 1
            if guard > 4 * self.n + 16:
                raise Trap("proto-termination",
                           "master scheduler does not converge")
            if mut.phase == P_MAIN:
                if mut.workbuf > 0 and mut.waitq:
                    w = mut.waitq[0]
                    mut.waitq = mut.waitq[1:]
                    self._run_master_internal(mut, w - 1, out)
                    return
                if any(self._expecting(mut, i) for i in range(self.n)):
                    cursor = mut.cursor
                    spins = 0
                    while not self._expecting(mut, cursor - 1):
                        cursor = cursor % self.n + 1
                        spins += 1
                        if spins > self.n:
                            raise Trap("proto-deadlock",
                                       "master cursor finds no session "
                                       "owing a report")
                    mut.mtarget = cursor
                    mut.cursor = cursor % self.n + 1
                    out.append(mut.freeze())
                    return
                if mut.workbuf > 0:
                    self._abort(mut, out)
                    return
                mut.phase = P_FLUSH
                mut.fs = 1
                continue
            if mut.phase == P_FLUSH:
                while (mut.fs <= self.n
                       and not self._parked(mut, mut.fs - 1)):
                    mut.fs += 1
                if mut.fs > self.n:
                    if mut.workbuf > 0:
                        self._abort(mut, out)
                        return
                    mut.phase = P_DONE
                    mut.mtarget = 0
                    out.append(mut.freeze())
                    return
                w = mut.fs
                mut.fs += 1
                mut.waitq = tuple(s for s in mut.waitq if s != w)
                self._run_master_internal(mut, w - 1, out)
                return
            out.append(mut.freeze())  # P_DONE: master has retired
            return

    def _abort(self, mut: _Mut, out: list) -> None:
        """Recovered work with nobody to take it: the master's documented
        loud-failure path (master.cpp run()/flush_parked: 'fail loudly
        rather than deadlock'). The modeled ESTCLUST_CHECK kills the job,
        so the abort state is terminal; check_terminal verifies it is
        only ever reached after a slave death made the run unsurvivable."""
        mut.phase = P_ABORT
        mut.mtarget = 0
        out.append(mut.freeze())

    def _step_master(self, mut: _Mut, out: list) -> None:
        """One blocking receive on the master's current await target.
        Duplicate-delivery self-loops keep the master blocked on the
        same slave (await_report's inner for(;;))."""
        i = mut.mtarget - 1
        state = mut.sessions[i][M_STATE]
        here = self.master.get(state, _EMPTY)
        if not here.recv:
            raise Trap("proto-unhandled",
                       f"master blocked on slave {i + 1} in state "
                       f"'{state}' with no receive transition")
        tags = sorted({t.tag for t in here.recv})
        m = self._take(mut.ch_sm[i], tags)
        if m is None:
            return  # still waiting; only the slaves can make progress
        fits = [t for t in here.recv if t.tag == m[0]
                and self._m_recv_guard(mut, i, t, m)]
        if not fits:
            raise Trap("proto-unhandled",
                       f"master in state '{state}' has no transition "
                       f"accepting the arriving {m[0]} from slave "
                       f"{i + 1}")
        t = fits[0]
        self._m_recv_effect(mut, i, t, m)
        mut.sessions[i][M_STATE] = t.target
        if self._expecting(mut, i):
            mut.mtarget = i + 1
            out.append(mut.freeze())
            return
        if (m[0] == "HEARTBEAT" and mut.phase == P_FLUSH
                and mut.workbuf > 0):
            # flush_parked() returns true: the regenerated stream
            # refilled WORKBUF — resume the interaction loop and hand
            # the recovered work to the still-parked slaves.
            mut.phase = P_MAIN
        self._run_master_internal(mut, i, out)

    # -- search -------------------------------------------------------------

    def initial(self) -> tuple:
        sessions = tuple((self.master_init, 0, 0, False, ())
                         for _ in range(self.n))
        # a_req=1 models the unsolicited initial batch (startup_split's
        # third portion rides the first report).
        slaves = tuple((self.slave_init, self.cfg.supply, 0, 0, 0,
                        0, 1, 0, 0, 0)
                       for _ in range(self.n))
        chans = tuple(() for _ in range(self.n))
        return (P_MAIN, 1, 1, 0, 0, (), self.cfg.kills,
                sessions, slaves, chans, chans)

    def _slave_can_act(self, st: tuple, i: int) -> bool:
        """Cheap enabledness pre-check for slave i, mirroring
        _run_slave's entry conditions without unpacking the state (the
        search's hot path: most processes are blocked most of the time).
        Conservative: may say yes when _run_slave then finds nothing,
        never no when a step (or a trap to report) exists."""
        sl = st[8][i]
        state = sl[S_STATE]
        here = self.slave.get(state, _EMPTY)
        if here.kill and "kill" in self.faults and st[6] > 0:
            return True
        a_stop = sl[S_ASTOP]
        for t in here.internal:
            if (t.when is None or (t.when == "stop" and a_stop)
                    or (t.when == "notstop" and not a_stop)
                    or t.when not in (None, "stop", "notstop")):
                return True
        if here.recv:
            tags = self.s_tags[state]
            return any(m[0] in tags for m in st[9][i])
        if state not in self.slave_finals and not here.kill:
            return True  # stuck: let _run_slave report it
        return False

    def successors(self, st: tuple) -> list[tuple]:
        if st[0] == P_ABORT:
            return []  # the CHECK failure took the whole job down
        out: list[tuple] = []
        if st[0] != P_DONE and st[3] > 0:
            mstate = st[7][st[3] - 1][M_STATE]
            tags = self.m_tags.get(mstate)
            if (not tags
                    or any(m[0] in tags for m in st[10][st[3] - 1])):
                self._step_master(_Mut.of(st), out)
        for i in range(self.n):
            if self._slave_can_act(st, i):
                self._run_slave(_Mut.of(st), i, False, out)
        seen: set[tuple] = set()
        uniq: list[tuple] = []
        for s in out:
            if s not in seen:
                seen.add(s)
                uniq.append(s)
        return uniq

    def check_terminal(self, st: tuple) -> list[Finding]:
        """Validates a state with no successor: it must be a clean,
        complete shutdown — anything else is a deadlock or a lost
        message."""
        findings: list[Finding] = []
        if st[0] == P_ABORT:
            # The loud abort is legal only when a death actually made the
            # run unsurvivable; hitting the CHECK in a fault-free run
            # would be stranded work, a real protocol bug.
            if not any(st[8][i][S_DIED] for i in range(self.n)):
                findings.append(Finding(
                    "proto-check",
                    "master hit the 'work remains but no slave is "
                    "available' check with every slave alive"))
            return findings
        blocked = []
        if st[0] != P_DONE:
            phase = ("main", "flush")[st[0]]
            if st[3] > 0:
                blocked.append(
                    f"master (phase {phase}, awaiting slave {st[3]}, "
                    f"session state '{st[7][st[3] - 1][M_STATE]}')")
            else:
                blocked.append(f"master (phase {phase})")
        for i in range(self.n):
            sstate = st[8][i][S_STATE]
            if sstate not in self.slave_finals:
                blocked.append(f"slave {i + 1} (state '{sstate}')")
        if blocked:
            heads = []
            for i in range(self.n):
                if st[9][i]:
                    heads.append("master->s%d: %s" % (
                        i + 1, ",".join(m[0] for m in st[9][i])))
                if st[10][i]:
                    heads.append("s%d->master: %s" % (
                        i + 1, ",".join(m[0] for m in st[10][i])))
            queued = ("; queued " + "; ".join(heads)) if heads else \
                "; all channels empty"
            findings.append(Finding(
                "proto-deadlock",
                f"deadlock: {' and '.join(blocked)} can never proceed"
                f"{queued}"))
            return findings

        dead = {i for i in range(self.n) if st[8][i][S_DIED]}
        for i in range(self.n):
            for m in st[9][i]:
                if i not in dead and not _is_dup(m):
                    findings.append(Finding(
                        "proto-unhandled",
                        f"terminated with undelivered non-duplicate "
                        f"{m[0]} queued to live slave {i + 1}"))
            for m in st[10][i]:
                if not _is_dup(m):
                    findings.append(Finding(
                        "proto-unhandled",
                        f"terminated with unconsumed non-duplicate "
                        f"{m[0]} from slave {i + 1} at the master"))
        for i in range(self.n):
            if st[7][i][M_LASTR] != st[8][i][S_RSEQ]:
                findings.append(Finding(
                    "proto-seq",
                    f"slave {i + 1} sent {st[8][i][S_RSEQ]} reports but "
                    f"the master incorporated {st[7][i][M_LASTR]}"))
            if i in dead:
                continue
            if st[8][i][S_SUPPLY] != 0:
                findings.append(Finding(
                    "proto-check",
                    f"terminated with slave {i + 1} still holding "
                    f"{st[8][i][S_SUPPLY]} unshipped work unit(s)"))
            if st[7][i][M_INFLIGHT]:
                findings.append(Finding(
                    "proto-check",
                    f"terminated with retained in-flight assignments "
                    f"for live slave {i + 1}"))
        if st[4] != 0:
            findings.append(Finding(
                "proto-check",
                f"terminated with {st[4]} work unit(s) left in WORKBUF"))
        return findings

    def explore(self) -> Stats:
        stats = Stats()
        findings: dict[str, Finding] = {}  # first witness per rule

        boot: list[tuple] = []
        try:
            self._schedule(_Mut.of(self.initial()), boot)
        except Trap as t:
            findings[t.rule] = Finding(t.rule, str(t))

        index: dict[tuple, int] = {}
        order: list[tuple] = []
        adj: list[list[int]] = []
        frontier: deque[int] = deque()

        def intern(s: tuple) -> int:
            sid = index.get(s)
            if sid is None:
                sid = len(order)
                index[s] = sid
                order.append(s)
                adj.append([])
                frontier.append(sid)
            return sid

        for s in boot:
            intern(s)
        capped = False
        while frontier:
            sid = frontier.popleft()
            if len(order) > MAX_STATES:
                capped = True
                findings.setdefault("proto-explore", Finding(
                    "proto-explore",
                    f"state space exceeds {MAX_STATES} states; shrink "
                    "the ESTCLUST-PROTO-MODEL configuration"))
                break
            try:
                succ = self.successors(order[sid])
            except Trap as t:
                findings.setdefault(t.rule, Finding(t.rule, str(t)))
                continue
            if not succ:
                stats.terminals += 1
                if order[sid][0] == P_ABORT:
                    stats.aborts += 1
                for f in self.check_terminal(order[sid]):
                    findings.setdefault(f.rule, f)
                continue
            for s in succ:
                adj[sid].append(intern(s))
            stats.edges += len(succ)

        stats.states = len(order)

        # Termination: the reachable graph must be acyclic — then every
        # execution bottoms out in a terminal state in finitely many
        # steps (the burst executor already bounds internal runs).
        if "proto-termination" not in findings and not capped:
            cycle = _find_cycle(adj)
            if cycle is not None:
                findings["proto-termination"] = Finding(
                    "proto-termination",
                    f"reachable state graph has a cycle of length "
                    f"{len(cycle)}: some executions never terminate")

        stats.findings = [findings[r] for r in sorted(findings)]
        return stats


def _find_cycle(adj: list[list[int]]) -> list[int] | None:
    """Iterative DFS back-edge detection over the explored graph."""
    color = bytearray(len(adj))  # 0 white, 1 grey, 2 black
    for root in range(len(adj)):
        if color[root]:
            continue
        stack: list[tuple[int, int]] = [(root, 0)]
        color[root] = 1
        path = [root]
        while stack:
            node, k = stack[-1]
            if k < len(adj[node]):
                stack[-1] = (node, k + 1)
                nxt = adj[node][k]
                if color[nxt] == 1:
                    return path[path.index(nxt):]
                if color[nxt] == 0:
                    color[nxt] = 1
                    stack.append((nxt, 0))
                    path.append(nxt)
            else:
                color[node] = 2
                stack.pop()
                path.pop()
    return None


def explore_config(model: ProtoModel, cfg: ModelConfig) -> Stats:
    """Runs one configuration's exhaustive check end to end."""
    return Explorer(model, cfg).explore()
