"""Rule family 4: repo conventions (formerly tools/lint.py).

The five rules a generic tool does not know, now with the analyzer's
suppression and JSON machinery. tools/lint.py remains as a thin shim so
the ctest `lint` name and tools/check_matrix.py keep working.

  * `conventions-assert`: no raw assert()/<cassert> in src/ or tools/;
    invariants use ESTCLUST_CHECK (fires in release, throws CheckError).
  * `conventions-check-presence`: every module under src/ validates with
    ESTCLUST_CHECK somewhere.
  * `conventions-pragma-once`: every header uses #pragma once.
  * `conventions-using-std`: no `using namespace std`.
  * `conventions-sleep`: no wall-clock sleeps or timed waits in src/;
    rank time is virtual (mpr::VirtualClock).
"""

from __future__ import annotations

import re
from pathlib import Path

from analyze.srcmodel import SourceFile, Violation

RE_ASSERT = re.compile(r"(?<![A-Za-z0-9_])assert\s*\(")
RE_CASSERT = re.compile(r'#\s*include\s*[<"](?:cassert|assert\.h)[>"]')
RE_USING_STD = re.compile(r"\busing\s+namespace\s+std\b")
RE_SLEEP = re.compile(
    r"\bsleep_for\b|\bsleep_until\b|\bwait_for\b|\bwait_until\b")


def run(files: list[SourceFile],
        src_root: Path | None = None) -> list[Violation]:
    out: list[Violation] = []
    for f in files:
        # The include directive carries its header name in a string-ish
        # token the code view may blank; scan raw text for it.
        for lineno, line in enumerate(f.lines, 1):
            if RE_CASSERT.search(line):
                out.append(Violation(
                    f.rel, lineno, "conventions-assert",
                    "includes <cassert>; use util/check.hpp"))
        for lineno, line in enumerate(f.code_lines, 1):
            if RE_ASSERT.search(line):
                out.append(Violation(
                    f.rel, lineno, "conventions-assert",
                    "raw assert(); use ESTCLUST_CHECK (fires in release "
                    "builds, throws CheckError)"))
            if RE_USING_STD.search(line):
                out.append(Violation(f.rel, lineno, "conventions-using-std",
                                     "`using namespace std`"))
            if f.rel.startswith("src/") and RE_SLEEP.search(line):
                out.append(Violation(
                    f.rel, lineno, "conventions-sleep",
                    "wall-clock sleep/timed wait in src/; rank time is "
                    "virtual (mpr::VirtualClock)"))
        if f.rel.endswith(".hpp") and "#pragma once" not in f.code:
            out.append(Violation(f.rel, 1, "conventions-pragma-once",
                                 "header missing #pragma once"))

    # Per-module ESTCLUST_CHECK presence: only meaningful when scanning
    # the real source tree (skipped for fixture runs).
    if src_root is not None and src_root.is_dir():
        by_module: dict[str, bool] = {}
        for f in files:
            parts = f.rel.split("/")
            if len(parts) >= 3 and parts[0] == "src":
                by_module.setdefault(parts[1], False)
                if "ESTCLUST_CHECK" in f.text:
                    by_module[parts[1]] = True
        for module, ok in sorted(by_module.items()):
            if not ok:
                out.append(Violation(
                    f"src/{module}", 0, "conventions-check-presence",
                    "no ESTCLUST_CHECK anywhere in the module; public "
                    "entry points must validate their inputs"))
    return out
