"""Rule family `proto`: protocol model extraction + exhaustive checking.

Front end of the pace protocol verifier (DESIGN.md §10). The family

  1. collects every analyzed file carrying ESTCLUST-PROTO annotations,
  2. extracts the per-role communicating FSMs, cross-checked against the
     actual send/recv call sites (protomodel.py) -- any drift between
     annotations and code is itself a violation and stops here, because
     exploring a model that no longer matches the code proves nothing,
  3. exhaustively explores every ESTCLUST-PROTO-MODEL configuration
     (explore.py) and reports each property violation at the MODEL
     declaration line, prefixed with the configuration name.

When an artifacts directory is given, the extracted automaton is written
as deterministic JSON (`model.json`) and Graphviz DOT (`model.dot`),
plus a per-configuration exploration summary (`explore.txt`); CI uploads
the three so the protocol can be reviewed and diffed like code.
"""

from __future__ import annotations

from pathlib import Path

from analyze import explore, protomodel
from analyze.srcmodel import SourceFile, Violation


def run(files: list[SourceFile],
        artifacts: Path | None = None) -> list[Violation]:
    proto_files = [f for f in files if "ESTCLUST-PROTO" in f.text]
    if not proto_files:
        return []

    model = protomodel.extract(proto_files)

    report: list[str] = []
    violations = list(model.violations)
    if violations:
        report.append("extraction failed; exploration skipped "
                      f"({len(violations)} violation(s))")
    else:
        for cfg in model.configs:
            stats = explore.explore_config(model, cfg)
            report.append(
                f"{cfg.name}: slaves={cfg.slaves} mode={cfg.mode} "
                f"faults={'+'.join(cfg.faults) or 'none'} "
                f"supply={cfg.supply} kills={cfg.kills} -> "
                f"{stats.states} states, {stats.edges} edges, "
                f"{stats.terminals} terminal(s) of which {stats.aborts} "
                f"loud abort(s), {len(stats.findings)} finding(s)")
            for f in stats.findings:
                violations.append(Violation(
                    cfg.file, cfg.line, f.rule,
                    f"[{cfg.name}] {f.message}"))

    if artifacts is not None:
        artifacts = Path(artifacts)
        artifacts.mkdir(parents=True, exist_ok=True)
        (artifacts / "model.json").write_text(
            protomodel.to_json(model), encoding="utf-8")
        (artifacts / "model.dot").write_text(
            protomodel.to_dot(model), encoding="utf-8")
        (artifacts / "explore.txt").write_text(
            "\n".join(report) + "\n", encoding="utf-8")

    return violations
