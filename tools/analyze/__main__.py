"""Entry point so `python3 tools/analyze` works from the repo root."""

import sys
from pathlib import Path

# When invoked as `python3 tools/analyze`, sys.path[0] is tools/analyze
# itself; the package must be importable as `analyze` for its internal
# imports, so put tools/ on the path.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from analyze.engine import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
