"""Rule family 1: codec symmetry (rule id `codec-symmetry`).

Every wire codec in this repo is a pair of free functions named
encode_X / decode_X whose bodies are straight-line sequences of
BufWriter::put* / BufReader::get* calls. The rule extracts both field
sequences and verifies they mirror each other:

  * same number of fields,
  * matching kind at every position (scalar / vector / string),
  * matching element type where both sides state one -- scalars carry an
    explicit template argument on both sides; vector element types on the
    encode side are resolved through the message struct's field
    declarations (put_vec(m.results) -> ReportMsg::results ->
    std::vector<WireResult>).

An encode_X without a decode_X (or vice versa) is itself a violation:
a one-sided codec means some peer parses the message by hand, which is
exactly the drift this rule exists to prevent.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from analyze.srcmodel import (Function, SourceFile, Violation, match_paren,
                              normalize_type, split_args)

RULE = "codec-symmetry"

PUT_RE = re.compile(r"\b(\w+)\.(put(?:_vec|_string)?)\s*(<)?")
GET_RE = re.compile(r"\b(\w+)\.(get(?:_vec|_string)?)\s*(<)?")


@dataclass
class WireField:
    kind: str  # "scalar" | "vec" | "string"
    type: str | None  # normalized element/value type, None = unknown
    line: int

    def describe(self) -> str:
        t = self.type or "?"
        return {"scalar": t, "vec": f"vector<{t}>",
                "string": "string"}[self.kind]


def _vec_element(normalized: str) -> str | None:
    m = re.match(r"vector<(.+)>$", normalized)
    return m.group(1) if m else None


def _param_binding(fn: Function) -> tuple[str, str] | None:
    """(param name, struct type) of the message argument, e.g.
    encode_report(const ReportMsg& m) -> ("m", "ReportMsg")."""
    for arg in split_args(fn.params):
        m = re.match(r"(?:const\s+)?([\w:]+)\s*&?\s*(\w+)$", arg.strip())
        if m and (m.group(1).endswith("Msg") or "::" not in m.group(1)):
            t = m.group(1).split("::")[-1]
            if t not in ("BufWriter", "BufReader", "Buffer"):
                return (m.group(2), t)
    return None


def _extract_calls(src: SourceFile, fn: Function, call_re: re.Pattern,
                   structs: dict[str, dict[str, str]]) -> list[WireField]:
    fields: list[WireField] = []
    binding = _param_binding(fn)
    for m in call_re.finditer(fn.body):
        method = m.group(2)
        abs_pos = fn.body_offset + m.start()
        line = src.line_of(abs_pos)
        # Explicit template argument, if any.
        ttype: str | None = None
        try:
            if m.group(3):  # saw '<' -- template argument follows
                close = fn.body.index(">", m.end())
                ttype = normalize_type(fn.body[m.end():close])
                call_open = fn.body.index("(", close)
            else:
                call_open = fn.body.index("(", m.end() - 1)
        except ValueError:
            continue
        call_close = match_paren(fn.body, call_open)
        arg = fn.body[call_open + 1:call_close].strip() if call_close > 0 \
            else ""
        if method == "put":
            fields.append(WireField("scalar", ttype, line))
        elif method == "get":
            fields.append(WireField("scalar", ttype, line))
        elif method == "put_string" or method == "get_string":
            fields.append(WireField("string", "string", line))
        elif method == "get_vec":
            fields.append(WireField("vec", ttype, line))
        elif method == "put_vec":
            elem = ttype
            if elem is None and binding is not None:
                pname, ptype = binding
                fm = re.match(re.escape(pname) + r"\.(\w+)$", arg)
                if fm and ptype in structs:
                    declared = structs[ptype].get(fm.group(1))
                    if declared:
                        elem = _vec_element(declared)
            fields.append(WireField("vec", elem, line))
    return fields


def run(files: list[SourceFile]) -> list[Violation]:
    # Struct field tables from every scanned file (message structs live in
    # headers; codecs in .cpp files).
    structs: dict[str, dict[str, str]] = {}
    for f in files:
        structs.update(f.struct_fields())

    encoders: dict[str, tuple[SourceFile, list[WireField]]] = {}
    decoders: dict[str, tuple[SourceFile, list[WireField]]] = {}
    heads: dict[str, tuple[str, int]] = {}
    for f in files:
        for fn in f.functions(r"(?:encode|decode)_\w+"):
            suffix = fn.name.split("_", 1)[1]
            call_re = PUT_RE if fn.name.startswith("encode") else GET_RE
            seq = _extract_calls(f, fn, call_re, structs)
            target = encoders if fn.name.startswith("encode") else decoders
            if suffix in target:
                continue  # duplicate definition; first one wins
            target[suffix] = (f, seq)
            heads.setdefault(fn.name, (f.rel, fn.start_line))

    out: list[Violation] = []
    for suffix in sorted(set(encoders) | set(decoders)):
        if suffix not in decoders:
            f, _ = encoders[suffix]
            rel, line = heads[f"encode_{suffix}"]
            out.append(Violation(rel, line, RULE,
                                 f"encode_{suffix} has no matching "
                                 f"decode_{suffix} in the scanned sources"))
            continue
        if suffix not in encoders:
            f, _ = decoders[suffix]
            rel, line = heads[f"decode_{suffix}"]
            out.append(Violation(rel, line, RULE,
                                 f"decode_{suffix} has no matching "
                                 f"encode_{suffix} in the scanned sources"))
            continue
        ef, eseq = encoders[suffix]
        df, dseq = decoders[suffix]
        if len(eseq) != len(dseq):
            out.append(Violation(
                ef.rel, heads[f"encode_{suffix}"][1], RULE,
                f"codec '{suffix}': encoder writes {len(eseq)} field(s) but "
                f"decoder reads {len(dseq)} "
                f"({df.rel}:{heads[f'decode_{suffix}'][1]})"))
        for i, (e, d) in enumerate(zip(eseq, dseq)):
            # Types conflict when both sides state one and they differ
            # even after dropping namespace qualification (the encoder
            # side resolves through struct declarations, which may spell
            # the namespace; the decoder's template argument may not).
            conflict = (e.type and d.type and e.type != d.type and
                        e.type.split("::")[-1] != d.type.split("::")[-1])
            if e.kind != d.kind or conflict:
                out.append(Violation(
                    ef.rel, e.line, RULE,
                    f"codec '{suffix}' field {i}: encoder writes "
                    f"{e.describe()} but decoder reads {d.describe()} "
                    f"({df.rel}:{d.line})"))
    return out
