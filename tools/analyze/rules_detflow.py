"""Rule family: detflow -- nondeterminism taint must not reach
determinism sinks along any call path.

The per-file `clock` family already bans nondeterminism *sources*
lexically (wall-clock in vtime files, rand anywhere, unordered
iteration). What it cannot see is laundering: a helper reads the wall
clock, returns the value, and two calls later it lands in a metric or a
charge(). This family runs the flow engine over the whole-tree call
graph and reports every source->sink reach that crosses a function
boundary. Same-function reaches are left to the lexical rules -- one
defect, one report.

Two source kinds are reported even same-function, because no lexical
rule owns them: `env` (environment reads outside config parsing) and
`pointer-cast` (pointer values converted to integers, which makes
allocator addresses observable).

The escape hatch is not ESTCLUST-SUPPRESS but the flow-specific
`// ESTCLUST-DETFLOW-SANITIZED(reason)` cut point, placed where the
flow is provably harmless (the covered line neither seeds nor
propagates taint). Rule ids: detflow-wall-clock, detflow-rand,
detflow-pointer-cast, detflow-unordered-iter, detflow-env.
"""

from __future__ import annotations

from analyze.flow import FlowEngine
from analyze.srcmodel import SourceModel, Violation

# Source kinds with no lexical twin: report even same-function reaches.
ALWAYS_REPORT = ("env", "pointer-cast")


def run(model: SourceModel) -> list[Violation]:
    out: list[Violation] = []
    for reach in FlowEngine(model).run():
        t = reach.taint
        if not t.via_call and t.source.kind not in ALWAYS_REPORT:
            continue  # same-function: the lexical determinism rule owns it
        chain = " -> ".join(t.chain) if t.chain else "directly"
        out.append(Violation(
            reach.rel, reach.line, f"detflow-{t.source.kind}",
            f"{t.source.render()} reaches {reach.sink_desc} here "
            f"({chain}); determinism sinks must only see virtual-time/"
            "seeded values -- cut the flow or annotate the proof with "
            "ESTCLUST-DETFLOW-SANITIZED(reason)"))
    return out
