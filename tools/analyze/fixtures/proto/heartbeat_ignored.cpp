// Seeded mutant: the master's death-notice handler was deleted — the
// await loop still receives on both tags, but no transition consumes a
// kTagHeartbeat. When a slave dies at a checkpoint its heartbeat sits
// in the mailbox unmatched and the master waits forever for a report
// the dead slave will never send; the explorer must prove the kill
// branch deadlocks (the no-kill branches still complete cleanly).
// ESTCLUST-PROTO-ROLE(role=slave, init=startup, final=done|dead)
// ESTCLUST-PROTO-ROLE(role=master, init=expect_report, final=stopped)
// ESTCLUST-PROTO-MODEL(name=mutant_deaf, slaves=2, mode=reliable, faults=kill, supply=1, kills=1)  ESTCLUST-EXPECT(proto-deadlock)

namespace fixture_proto {

inline constexpr int kTagReport = 1;
inline constexpr int kTagAssign = 2;
inline constexpr int kTagAck = 3;
inline constexpr int kTagHeartbeat = 4;

struct Comm {
  void send(int dest, int tag, int payload);
  void send_delayed(int dest, int tag, int payload);
  int recv(int src, int tag);
  int recv2(int src, int tag_a, int tag_b);
  bool try_recv(int src, int tag);
};

void slave_loop(Comm& comm) {
  // ESTCLUST-PROTO(state=startup, send=REPORT -> working)
  // ESTCLUST-PROTO(state=acked, send=REPORT -> working, when=!stop)
  // ESTCLUST-PROTO(state=acked, send=REPORT -> final_unacked, when=stop)
  comm.send(0, kTagReport, 0);
  // ESTCLUST-PROTO(state=working, on=ASSIGN -> got_assign, when=fresh)
  // ESTCLUST-PROTO(state=working, on=ASSIGN -> ., when=dup, mode=reliable)
  comm.recv(0, kTagAssign);
  // ESTCLUST-PROTO(state=startup|got_assign, send=HEARTBEAT -> dead, when=kill, mode=reliable)
  comm.send_delayed(0, kTagHeartbeat, 0);
  // ESTCLUST-PROTO(state=got_assign, on=ACK -> acked, when=match, mode=reliable)
  // ESTCLUST-PROTO(state=got_assign, on=ACK -> ., when=dup, mode=reliable)
  // ESTCLUST-PROTO(state=final_unacked, on=ACK -> done, when=match, mode=reliable)
  // ESTCLUST-PROTO(state=final_unacked, on=ACK -> ., when=dup, mode=reliable)
  comm.recv(0, kTagAck);
}

void master_loop(Comm& comm) {
  // ESTCLUST-PROTO(role=master, state=served, send=ASSIGN -> expect_report, when=have_work)
  // ESTCLUST-PROTO(role=master, state=waiting, send=ASSIGN -> expect_report, when=have_work)
  // ESTCLUST-PROTO(role=master, state=waiting, send=ASSIGN -> flushing, when=flush)
  comm.send(1, kTagAssign, 0);
  // ESTCLUST-PROTO(role=master, state=served -> waiting, when=idle)
  // The on=HEARTBEAT transition that belongs below was deleted by the
  // mutation; the receive still names the tag but nothing handles it.
  // ESTCLUST-PROTO(role=master, state=expect_report, on=REPORT -> got_report, when=fresh, mode=reliable, op=recv2)
  // ESTCLUST-PROTO(role=master, state=flushing, on=REPORT -> flush_got, when=fresh, mode=reliable, op=recv2)
  // ESTCLUST-PROTO(role=master, state=expect_report|flushing, on=REPORT -> ., when=dup, mode=reliable, op=recv2)
  comm.recv2(1, kTagReport, kTagHeartbeat);
  // ESTCLUST-PROTO(role=master, state=got_report, send=ACK -> served, mode=reliable)
  // ESTCLUST-PROTO(role=master, state=flush_got, send=ACK -> stopped, mode=reliable)
  comm.send(1, kTagAck, 0);
}

}  // namespace fixture_proto
