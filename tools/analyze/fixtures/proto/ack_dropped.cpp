// Seeded mutant: the master's acknowledgement of a fresh REPORT was
// deleted (annotation and call both gone — the master moves straight on
// to serving the next request without acking). In reliable mode a slave
// that delivered its report then blocks on kTagAck forever while the
// master waits for a report the blocked slave will never send; the
// explorer must prove this deadlocks. Base mode has no acks and still
// verifies clean, isolating the bug to the reliability layer.
// ESTCLUST-PROTO-ROLE(role=slave, init=startup, final=done)
// ESTCLUST-PROTO-ROLE(role=master, init=expect_report, final=stopped|dead)
// ESTCLUST-PROTO-MODEL(name=mutant_base, slaves=2, mode=base, supply=1)
// ESTCLUST-PROTO-MODEL(name=mutant_rel, slaves=2, mode=reliable, supply=1)  ESTCLUST-EXPECT(proto-deadlock)

namespace fixture_proto {

inline constexpr int kTagReport = 1;
inline constexpr int kTagAssign = 2;
inline constexpr int kTagAck = 3;
inline constexpr int kTagHeartbeat = 4;

struct Comm {
  void send(int dest, int tag, int payload);
  void send_delayed(int dest, int tag, int payload);
  int recv(int src, int tag);
  int recv2(int src, int tag_a, int tag_b);
  bool try_recv(int src, int tag);
};

void slave_loop(Comm& comm) {
  // ESTCLUST-PROTO(state=startup, send=REPORT -> working)
  // ESTCLUST-PROTO(state=acked, send=REPORT -> working, when=!stop)
  // ESTCLUST-PROTO(state=acked, send=REPORT -> final_unacked, when=stop)
  comm.send(0, kTagReport, 0);
  // ESTCLUST-PROTO(state=working, on=ASSIGN -> got_assign, when=fresh)
  // ESTCLUST-PROTO(state=working, on=ASSIGN -> ., when=dup, mode=reliable)
  comm.recv(0, kTagAssign);
  // ESTCLUST-PROTO(state=got_assign, on=ACK -> acked, when=match, mode=reliable)
  // ESTCLUST-PROTO(state=got_assign, on=ACK -> ., when=dup, mode=reliable)
  // ESTCLUST-PROTO(state=final_unacked, on=ACK -> done, when=match, mode=reliable)
  // ESTCLUST-PROTO(state=final_unacked, on=ACK -> ., when=dup, mode=reliable)
  comm.recv(0, kTagAck);
  // ESTCLUST-PROTO(state=got_assign -> acked, mode=base)
  // ESTCLUST-PROTO(state=final_unacked -> done, mode=base)
}

void master_loop(Comm& comm) {
  // ESTCLUST-PROTO(role=master, state=served, send=ASSIGN -> expect_report, when=have_work)
  // ESTCLUST-PROTO(role=master, state=waiting, send=ASSIGN -> expect_report, when=have_work)
  // ESTCLUST-PROTO(role=master, state=waiting, send=ASSIGN -> flushing, when=flush)
  comm.send(1, kTagAssign, 0);
  // ESTCLUST-PROTO(role=master, state=served -> waiting, when=idle)
  // ESTCLUST-PROTO(role=master, state=expect_report, on=REPORT -> got_report, when=fresh, mode=reliable, op=recv2)
  // ESTCLUST-PROTO(role=master, state=flushing, on=REPORT -> flush_got, when=fresh, mode=reliable, op=recv2)
  // ESTCLUST-PROTO(role=master, state=expect_report|flushing, on=REPORT -> ., when=dup, mode=reliable, op=recv2)
  // ESTCLUST-PROTO(role=master, state=expect_report|flushing, on=HEARTBEAT -> dead, mode=reliable, op=recv2)
  comm.recv2(1, kTagReport, kTagHeartbeat);
  // ESTCLUST-PROTO(role=master, state=expect_report, on=REPORT -> got_report, mode=base, op=recv)
  // ESTCLUST-PROTO(role=master, state=flushing, on=REPORT -> flush_got, mode=base, op=recv)
  comm.recv(1, kTagReport);
  // The kTagAck send that belongs here was deleted by the mutation;
  // the master just falls through to the next request in both modes.
  // ESTCLUST-PROTO(role=master, state=got_report -> served)
  // ESTCLUST-PROTO(role=master, state=flush_got -> stopped)
}

}  // namespace fixture_proto
