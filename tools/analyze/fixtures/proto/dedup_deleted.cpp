// Seeded mutant: the master's duplicate-report dedup self-loop was
// deleted. Under the dup fault a flagged second copy of a REPORT
// arrives right behind the original; with the fresh-guard transition
// alone nothing accepts the stale sequence number, so the master faces
// a message its state has no transition for. The explorer must report
// the unhandled message the first time a duplicate lands.
// ESTCLUST-PROTO-ROLE(role=slave, init=startup, final=done)
// ESTCLUST-PROTO-ROLE(role=master, init=expect_report, final=stopped|dead)
// ESTCLUST-PROTO-MODEL(name=mutant_nodedup, slaves=2, mode=reliable, faults=dup, supply=1)  ESTCLUST-EXPECT(proto-unhandled)

namespace fixture_proto {

inline constexpr int kTagReport = 1;
inline constexpr int kTagAssign = 2;
inline constexpr int kTagAck = 3;
inline constexpr int kTagHeartbeat = 4;

struct Comm {
  void send(int dest, int tag, int payload);
  void send_delayed(int dest, int tag, int payload);
  int recv(int src, int tag);
  int recv2(int src, int tag_a, int tag_b);
  bool try_recv(int src, int tag);
};

void slave_loop(Comm& comm) {
  // ESTCLUST-PROTO(state=startup, send=REPORT -> working)
  // ESTCLUST-PROTO(state=acked, send=REPORT -> working, when=!stop)
  // ESTCLUST-PROTO(state=acked, send=REPORT -> final_unacked, when=stop)
  comm.send(0, kTagReport, 0);
  // ESTCLUST-PROTO(state=working, on=ASSIGN -> got_assign, when=fresh)
  // ESTCLUST-PROTO(state=working, on=ASSIGN -> ., when=dup, mode=reliable)
  comm.recv(0, kTagAssign);
  // ESTCLUST-PROTO(state=got_assign, on=ACK -> acked, when=match, mode=reliable)
  // ESTCLUST-PROTO(state=got_assign, on=ACK -> ., when=dup, mode=reliable)
  // ESTCLUST-PROTO(state=final_unacked, on=ACK -> done, when=match, mode=reliable)
  // ESTCLUST-PROTO(state=final_unacked, on=ACK -> ., when=dup, mode=reliable)
  comm.recv(0, kTagAck);
  // ESTCLUST-PROTO(state=done, on=ASSIGN -> ., when=dup, mode=reliable, op=try_recv)
  comm.try_recv(0, kTagAssign);
  // ESTCLUST-PROTO(state=done, on=ACK -> ., when=dup, mode=reliable, op=try_recv)
  comm.try_recv(0, kTagAck);
}

void master_loop(Comm& comm) {
  // ESTCLUST-PROTO(role=master, state=served, send=ASSIGN -> expect_report, when=have_work)
  // ESTCLUST-PROTO(role=master, state=waiting, send=ASSIGN -> expect_report, when=have_work)
  // ESTCLUST-PROTO(role=master, state=waiting, send=ASSIGN -> flushing, when=flush)
  comm.send(1, kTagAssign, 0);
  // ESTCLUST-PROTO(role=master, state=served -> waiting, when=idle)
  // The duplicate-REPORT self-loop that belongs below was deleted by
  // the mutation; only fresh sequence numbers are handled now.
  // ESTCLUST-PROTO(role=master, state=expect_report, on=REPORT -> got_report, when=fresh, mode=reliable, op=recv2)
  // ESTCLUST-PROTO(role=master, state=flushing, on=REPORT -> flush_got, when=fresh, mode=reliable, op=recv2)
  // ESTCLUST-PROTO(role=master, state=expect_report|flushing, on=HEARTBEAT -> dead, mode=reliable, op=recv2)
  comm.recv2(1, kTagReport, kTagHeartbeat);
  // ESTCLUST-PROTO(role=master, state=got_report, send=ACK -> served, mode=reliable)
  // ESTCLUST-PROTO(role=master, state=flush_got, send=ACK -> stopped, mode=reliable)
  comm.send(1, kTagAck, 0);
}

}  // namespace fixture_proto
