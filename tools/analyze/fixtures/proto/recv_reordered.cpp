// Seeded mutant: a receive was reordered ahead of the send it
// acknowledges — the slave now waits for the master's ACK *before*
// shipping its first report. The master only ever acks a report it has
// received, so both sides block on the other's first message: a classic
// circular wait the explorer must prove deadlocks from the initial
// state. (Reorderings *after* the report are benign — the mailbox's
// tag matching delivers queued messages in any requested order — which
// is exactly why this mutant moves the wait ahead of the send.)
// ESTCLUST-PROTO-ROLE(role=slave, init=startup, final=done)
// ESTCLUST-PROTO-ROLE(role=master, init=expect_report, final=stopped|dead)
// ESTCLUST-PROTO-MODEL(name=mutant_reordered, slaves=2, mode=reliable, supply=1)  ESTCLUST-EXPECT(proto-deadlock)

namespace fixture_proto {

inline constexpr int kTagReport = 1;
inline constexpr int kTagAssign = 2;
inline constexpr int kTagAck = 3;
inline constexpr int kTagHeartbeat = 4;

struct Comm {
  void send(int dest, int tag, int payload);
  void send_delayed(int dest, int tag, int payload);
  int recv(int src, int tag);
  int recv2(int src, int tag_a, int tag_b);
  bool try_recv(int src, int tag);
};

void slave_loop(Comm& comm) {
  // The mutation: this wait used to sit between got_assign and acked;
  // now it gates the very first report.
  // ESTCLUST-PROTO(state=startup, on=ACK -> ready, when=match, mode=reliable)
  // ESTCLUST-PROTO(state=got_assign, on=ACK -> acked, when=match, mode=reliable)
  // ESTCLUST-PROTO(state=got_assign, on=ACK -> ., when=dup, mode=reliable)
  // ESTCLUST-PROTO(state=final_unacked, on=ACK -> done, when=match, mode=reliable)
  // ESTCLUST-PROTO(state=final_unacked, on=ACK -> ., when=dup, mode=reliable)
  comm.recv(0, kTagAck);
  // ESTCLUST-PROTO(state=ready, send=REPORT -> working)
  // ESTCLUST-PROTO(state=acked, send=REPORT -> working, when=!stop)
  // ESTCLUST-PROTO(state=acked, send=REPORT -> final_unacked, when=stop)
  comm.send(0, kTagReport, 0);
  // ESTCLUST-PROTO(state=working, on=ASSIGN -> got_assign, when=fresh)
  // ESTCLUST-PROTO(state=working, on=ASSIGN -> ., when=dup, mode=reliable)
  comm.recv(0, kTagAssign);
}

void master_loop(Comm& comm) {
  // ESTCLUST-PROTO(role=master, state=served, send=ASSIGN -> expect_report, when=have_work)
  // ESTCLUST-PROTO(role=master, state=waiting, send=ASSIGN -> expect_report, when=have_work)
  // ESTCLUST-PROTO(role=master, state=waiting, send=ASSIGN -> flushing, when=flush)
  comm.send(1, kTagAssign, 0);
  // ESTCLUST-PROTO(role=master, state=served -> waiting, when=idle)
  // ESTCLUST-PROTO(role=master, state=expect_report, on=REPORT -> got_report, when=fresh, mode=reliable, op=recv2)
  // ESTCLUST-PROTO(role=master, state=flushing, on=REPORT -> flush_got, when=fresh, mode=reliable, op=recv2)
  // ESTCLUST-PROTO(role=master, state=expect_report|flushing, on=REPORT -> ., when=dup, mode=reliable, op=recv2)
  // ESTCLUST-PROTO(role=master, state=expect_report|flushing, on=HEARTBEAT -> dead, mode=reliable, op=recv2)
  comm.recv2(1, kTagReport, kTagHeartbeat);
  // ESTCLUST-PROTO(role=master, state=got_report, send=ACK -> served, mode=reliable)
  // ESTCLUST-PROTO(role=master, state=flush_got, send=ACK -> stopped, mode=reliable)
  comm.send(1, kTagAck, 0);
}

}  // namespace fixture_proto
