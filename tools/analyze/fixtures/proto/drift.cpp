// Seeded drift fixture: the annotations and the code have moved apart
// in both directions. One annotation declares a receive that no longer
// exists in the code, and one protocol call site carries no annotation
// at all. Both must be reported as proto-drift — the extracted model
// would otherwise silently stop covering real traffic, and exploration
// is skipped entirely until the drift is fixed.
// ESTCLUST-PROTO-ROLE(role=slave, init=startup, final=done)

namespace fixture_proto {

inline constexpr int kTagReport = 1;
inline constexpr int kTagAssign = 2;
inline constexpr int kTagAck = 3;

struct Comm {
  void send(int dest, int tag, int payload);
  int recv(int src, int tag);
};

void slave_loop(Comm& comm) {
  // ESTCLUST-PROTO(state=startup, send=REPORT -> done)
  comm.send(0, kTagReport, 0);
  // The receive this annotation described was refactored away:
  // ESTCLUST-PROTO(state=startup, on=ASSIGN -> done, when=fresh)  ESTCLUST-EXPECT(proto-drift)
  int unrelated = 0;
  (void)unrelated;
  comm.recv(0, kTagAck);  // ESTCLUST-EXPECT(proto-drift)
}

}  // namespace fixture_proto
