// Fixture: every way the tag protocol can rot. The selftest maps this
// file to a pseudo src/ module, so the role/module logic runs exactly as
// it does on src/pace and src/gst.
#include "mpr/communicator.hpp"

namespace estclust::fixture {

inline constexpr int kTagOrphan = 101;
inline constexpr int kTagGhost = 102;
inline constexpr int kTagDead = 103;   // ESTCLUST-EXPECT(tag-protocol)
// Duplicate wire value AND never used (two violations on one line).
inline constexpr int kTagTwin = 101;   // ESTCLUST-EXPECT(tag-protocol) ESTCLUST-EXPECT(tag-protocol)

void chatter(mpr::Communicator& comm) {
  mpr::Buffer empty;
  // Sent but no role ever receives it: queued forever.
  comm.send(1, kTagOrphan, empty);  // ESTCLUST-EXPECT(tag-protocol)

  // Received but no role ever sends it: can never be satisfied. Also
  // lacks a CheckOpScope label (two violations on one line).
  mpr::Message g = comm.recv(0, kTagGhost);  // ESTCLUST-EXPECT(tag-protocol) ESTCLUST-EXPECT(tag-protocol)

  // Wildcard receive: bypasses the static matrix entirely.
  mpr::Message any = comm.recv(0);  // ESTCLUST-EXPECT(tag-protocol)
}

}  // namespace estclust::fixture
