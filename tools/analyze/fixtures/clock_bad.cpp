// Fixture: clock-accounting and determinism violations. The file
// references a Communicator, so it participates in virtual-time
// modeling and the full rule set applies.
#include <map>
#include <unordered_map>

#include "mpr/communicator.hpp"
#include "util/timer.hpp"

namespace estclust::fixture {

struct Node {
  int depth = 0;
};

void hot_loop(mpr::Communicator& comm, std::uint64_t cells) {
  std::uint64_t dp_cells = 0;
  std::uint64_t chars_scanned = 0;

  // Accounted work bumped but never charged to the VirtualClock: the
  // modeled run-time silently under-reports the DP sweep.
  dp_cells += cells;  // ESTCLUST-EXPECT(clock-accounting)
  comm.metrics().counter("pace.dp_cells").add(dp_cells);  // ESTCLUST-EXPECT(clock-accounting)

  // chars_scanned IS paired with its charge: no violation here.
  chars_scanned += cells;
  comm.charge(comm.cost_model().char_op, chars_scanned);

  // Pair production published to the registry without charging pair_op:
  // a PairSource backend whose batch work never reaches the clock.
  comm.metrics().counter("pace.pairs_generated").add(cells);  // ESTCLUST-EXPECT(clock-accounting)

  // Wall clock in a virtual-time file.
  WallTimer wall;  // ESTCLUST-EXPECT(determinism-wall-clock)

  // Unseeded randomness.
  int jitter = rand();  // ESTCLUST-EXPECT(determinism-rand)

  // Iteration order of an unordered container feeds the clock charge.
  std::unordered_map<int, std::uint64_t> per_bucket;
  per_bucket[jitter] = cells;
  for (const auto& [bucket, n] : per_bucket) {  // ESTCLUST-EXPECT(determinism-unordered-iter)
    comm.charge(comm.cost_model().byte_op, n);
  }

  // Pointer-keyed map: iteration order depends on the allocator.
  std::map<Node*, int> depth_of;  // ESTCLUST-EXPECT(determinism-pointer-key)
  (void)depth_of;
  (void)wall;
}

}  // namespace estclust::fixture
