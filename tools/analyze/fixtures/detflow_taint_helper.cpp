// Fixture: helper translation unit for the detflow taint fixtures. The
// wall-clock read lives here, two calls away from any sink, in a file
// that never touches a Communicator -- so the lexical
// determinism-wall-clock rule cannot see a violation and only the
// interprocedural taint pass connects the read to the sink in
// detflow_taint.cpp.
#include <chrono>

namespace estclust::fixture {

double fixture_wall_raw() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double fixture_wall_hop() { return fixture_wall_raw(); }

}  // namespace estclust::fixture
