// Fixture: seeded decode-bounds defects. Three ways a decoder can
// drift off the encoded byte sequence: raw buffer access that bypasses
// the checked BufReader primitives, payload bytes parsed by hand at a
// recv site outside any decode_* function, and a field read under a
// different guard than it was written under.
#include "mpr/communicator.hpp"
#include "util/check.hpp"

namespace estclust::fixture {

inline constexpr int kTagProbeFix = 130;

struct ProbeFixMsg {
  std::uint64_t ticket = 0;
  std::uint64_t extra = 0;
};

mpr::Buffer encode_probefix(const ProbeFixMsg& m, bool reliable) {
  mpr::BufWriter w;
  w.put<std::uint64_t>(m.ticket);
  if (reliable) {
    w.put<std::uint64_t>(m.extra);
  }
  return w.take();
}

ProbeFixMsg decode_probefix(const mpr::Buffer& b, bool reliable) {
  mpr::BufReader r(b);
  ProbeFixMsg m;
  m.ticket = r.get<std::uint64_t>();
  // Reads unconditionally what the encoder wrote conditionally.
  m.extra = r.get<std::uint64_t>();     // ESTCLUST-EXPECT(bounds-guard-mismatch)
  const std::uint8_t* raw = b.data();   // ESTCLUST-EXPECT(bounds-unchecked-read)
  m.ticket += raw[0];
  r.expect_exhausted("probefix");
  return m;
}

void fixture_probe_pump(mpr::Communicator& comm) {
  ProbeFixMsg msg;
  msg.ticket = 9;
  comm.send(1, kTagProbeFix, encode_probefix(msg, true));
  mpr::CheckOpScope scope(comm, "fixture_bounds_unchecked.await_probe");
  mpr::Message in = comm.recv(0, kTagProbeFix);
  mpr::BufReader r(in.payload);
  const std::uint64_t ticket = r.get<std::uint64_t>();  // ESTCLUST-EXPECT(bounds-unchecked-read)
  ESTCLUST_CHECK(ticket == msg.ticket);
}

}  // namespace estclust::fixture
