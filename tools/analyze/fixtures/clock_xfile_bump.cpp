// Fixture: cross-file clock pairing, the bump side. Nothing in this
// file touches a Communicator, so the old per-file pairing rule was
// blind here: whether a bump is correctly accounted depends entirely
// on its callers, which only the interprocedural pass walks.
#include <cstdint>

namespace estclust::fixture {

struct FixtureTally {
  std::uint64_t chars_scanned = 0;
};

// Paired: the driver in clock_xfile.cpp charges char_op for this bump
// on the same call path.
FixtureTally fixture_tally_scan(std::uint64_t n) {
  FixtureTally t;
  t.chars_scanned += n;
  return t;
}

// Unpaired: the call-tree family of this function reaches a
// Communicator (through fixture_drive) but no function in it ever
// charges dp_cell.
std::uint64_t fixture_lost_cells(std::uint64_t n) {
  std::uint64_t dp_cells = 0;
  dp_cells += n;  // ESTCLUST-EXPECT(clock-accounting)
  return dp_cells;
}

}  // namespace estclust::fixture
