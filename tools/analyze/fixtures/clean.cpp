// Fixture: exercises every construct the rules inspect, correctly. The
// selftest requires zero violations from this file -- every rule family
// must stay quiet on conforming code.
#include <algorithm>
#include <map>
#include <vector>

#include "mpr/communicator.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace estclust::fixture {

inline constexpr int kTagCleanPing = 110;

struct CleanMsg {
  std::uint32_t id = 0;
  std::vector<std::uint64_t> counts;
};

mpr::Buffer encode_cleanfix(const CleanMsg& m) {
  mpr::BufWriter w;
  w.put<std::uint32_t>(m.id);
  w.put_vec(m.counts);
  return w.take();
}

CleanMsg decode_cleanfix(const mpr::Buffer& b) {
  mpr::BufReader r(b);
  CleanMsg m;
  m.id = r.get<std::uint32_t>();
  m.counts = r.get_vec<std::uint64_t>();
  r.expect_exhausted("cleanfix");
  return m;
}

void ping(mpr::Communicator& comm, std::uint64_t cells) {
  ESTCLUST_CHECK(comm.size() > 1);
  CleanMsg msg;
  msg.id = 7;
  comm.send(1, kTagCleanPing, encode_cleanfix(msg));

  // Accounted work paired with its charge in the same file.
  std::uint64_t dp_cells = 0;
  dp_cells += cells;
  comm.charge(comm.cost_model().dp_cell, cells);
  comm.metrics().counter("pace.dp_cells").add(dp_cells);

  // Ordered container iteration: deterministic.
  std::map<int, int> ordered;
  for (const auto& [k, v] : ordered) {
    comm.charge(comm.cost_model().byte_op, static_cast<std::uint64_t>(v));
  }

  // Trace instrumentation with literal names and one category per
  // name: the obs rules stay quiet.
  ESTCLUST_TRACE_SPAN(comm.tracer(), "fixture_clean_phase", "phase");
  if (obs::RankTracer* tracer = comm.tracer()) {
    tracer->begin("fixture_clean_step", "phase");
    tracer->instant("fixture_clean_tick", "fault", dp_cells);
    tracer->end("fixture_clean_step");
  }

  mpr::Message m = [&] {
    mpr::CheckOpScope scope(comm, "fixture_clean.await_ping");
    return comm.recv(0, kTagCleanPing);
  }();
  CleanMsg got = decode_cleanfix(m.payload);
  ESTCLUST_CHECK(got.id == msg.id);
}

}  // namespace estclust::fixture
