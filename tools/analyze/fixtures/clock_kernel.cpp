// Fixture: clock-kernel-cells. A band-sweep kernel counts the DP cells
// it fills in a local accumulator; the count must leave the kernel
// through its result, because the pace layer charges
// cost_model().dp_cell from ExtensionResult.cells. A variant that
// drops the count on the floor feeds different charge() units than the
// scalar sweep, so modeled run-times diverge by host CPU.
#include <cstdint>

namespace estclust::fixture {

struct FixtureExtension {
  long score = 0;
  std::uint64_t cells = 0;
};

// Conforming sweep: the accumulation is exported through the result,
// matching the scalar kernel's `best.cells = cells` contract.
FixtureExtension fixture_sweep_exports(int rows, int width) {
  FixtureExtension best;
  std::uint64_t cells = 0;
  for (int i = 0; i < rows; ++i) {
    cells += static_cast<std::uint64_t>(width);
    best.score += width;
  }
  best.cells = cells;
  return best;
}

// Conforming sweep: exported through an out-parameter instead, the
// banded_global_score shape.
long fixture_sweep_out_param(int rows, std::uint64_t* cells_out) {
  std::uint64_t cells = 0;
  for (int i = 0; i < rows; ++i) ++cells;
  if (cells_out) *cells_out = cells;
  return static_cast<long>(rows);
}

// Broken SIMD-style sweep: counts its vector rows but never writes the
// result's cells field -- the slave would charge dp_cell for zero work
// on this variant while the scalar path charges the true count.
FixtureExtension fixture_sweep_drops_count(int rows, int width) {
  FixtureExtension best;
  std::uint64_t cells = 0;
  for (int i = 0; i < rows; ++i) {
    cells += static_cast<std::uint64_t>(width);  // ESTCLUST-EXPECT(clock-kernel-cells)
    best.score += width;
  }
  return best;
}

}  // namespace estclust::fixture
