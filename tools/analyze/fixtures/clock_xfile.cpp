// Fixture: cross-file clock pairing, the driver side. The char_op
// charge here pairs the chars_scanned bump made by the builder in
// clock_xfile_bump.cpp -- correct under the interprocedural rule,
// invisible to a per-file check. The dp_cells bump over there stays
// unpaired: this driver pulls it into a vtime-connected family but
// never charges dp_cell.
#include <cstdint>

#include "mpr/communicator.hpp"

namespace estclust::fixture {

// Mirrors the shared-header declarations of clock_xfile_bump.cpp.
struct FixtureTally {
  std::uint64_t chars_scanned = 0;
};
FixtureTally fixture_tally_scan(std::uint64_t n);
std::uint64_t fixture_lost_cells(std::uint64_t n);

void fixture_drive(mpr::Communicator& comm, std::uint64_t n) {
  const FixtureTally tally = fixture_tally_scan(n);
  comm.charge(comm.cost_model().char_op, tally.chars_scanned);
  comm.metrics().counter("gst.chars_scanned").add(tally.chars_scanned);
  (void)fixture_lost_cells(n);
}

}  // namespace estclust::fixture
