// Fixture: a one-sided codec. An encoder whose decoder does not exist
// anywhere in the scanned sources means some peer parses the message by
// hand -- exactly the drift codec-symmetry exists to prevent.
#include "mpr/message.hpp"

namespace estclust::fixture {

struct LonelyMsg {
  std::uint64_t payload = 0;
};

mpr::Buffer encode_lonelyfix(const LonelyMsg& m) {  // ESTCLUST-EXPECT(codec-symmetry)
  mpr::BufWriter w;
  w.put<std::uint64_t>(m.payload);
  return w.take();
}

}  // namespace estclust::fixture
