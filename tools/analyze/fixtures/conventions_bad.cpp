// Fixture: the repo-convention violations formerly policed by
// tools/lint.py, one per line.
#include <cassert>  // ESTCLUST-EXPECT(conventions-assert)
#include <chrono>
#include <thread>

using namespace std;  // ESTCLUST-EXPECT(conventions-using-std)

namespace estclust::fixture {

void careless(int x) {
  assert(x > 0);  // ESTCLUST-EXPECT(conventions-assert)
  std::this_thread::sleep_for(std::chrono::milliseconds(x));  // ESTCLUST-EXPECT(conventions-sleep)
}

}  // namespace estclust::fixture
