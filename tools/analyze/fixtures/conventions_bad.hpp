// Fixture: header without #pragma once. ESTCLUST-EXPECT(conventions-pragma-once)
#ifndef ESTCLUST_FIXTURE_CONVENTIONS_BAD_HPP
#define ESTCLUST_FIXTURE_CONVENTIONS_BAD_HPP

namespace estclust::fixture {
inline int answer() { return 42; }
}  // namespace estclust::fixture

#endif
