// Fixture: codec with swapped fields and a truncated decoder. Never
// compiled; scanned by `python3 tools/analyze --selftest`, which maps it
// to a pseudo src/ path. ESTCLUST-EXPECT markers name the violations the
// rule must report on those exact lines.
#include "mpr/message.hpp"

namespace estclust::fixture {

struct SwapMsg {
  std::uint32_t first = 0;
  std::uint64_t second = 0;
  std::vector<std::uint32_t> items;
};

mpr::Buffer encode_swapfix(const SwapMsg& m) {
  mpr::BufWriter w;
  w.put<std::uint64_t>(m.second);  // ESTCLUST-EXPECT(codec-symmetry)
  w.put<std::uint32_t>(m.first);   // ESTCLUST-EXPECT(codec-symmetry)
  w.put_vec(m.items);
  return w.take();
}

SwapMsg decode_swapfix(const mpr::Buffer& b) {
  mpr::BufReader r(b);
  SwapMsg m;
  m.first = r.get<std::uint32_t>();
  m.second = r.get<std::uint64_t>();
  m.items = r.get_vec<std::uint32_t>();
  return m;
}

mpr::Buffer encode_truncfix(const SwapMsg& m) {  // ESTCLUST-EXPECT(codec-symmetry)
  mpr::BufWriter w;
  w.put<std::uint32_t>(m.first);
  w.put<std::uint64_t>(m.second);
  w.put_vec(m.items);
  return w.take();
}

SwapMsg decode_truncfix(const mpr::Buffer& b) {
  mpr::BufReader r(b);
  SwapMsg m;
  m.first = r.get<std::uint32_t>();
  m.second = r.get<std::uint64_t>();
  // items never read: the decoder drops the last field.
  return m;
}

}  // namespace estclust::fixture
