// Fixture: nondeterminism taint laundered through two calls in another
// translation unit (detflow_taint_helper.cpp) must still be caught when
// it reaches a determinism sink. No lexical rule can see this: the
// wall-clock read and the metric publication are three functions and
// two files apart.
#include "mpr/communicator.hpp"

namespace estclust::fixture {

double fixture_wall_hop();

void fixture_publish_lag(mpr::Communicator& comm) {
  const double lag = fixture_wall_hop();
  comm.metrics().gauge("fixture.lag", obs::MergeOp::kMax).set(lag);  // ESTCLUST-EXPECT(detflow-wall-clock)
}

}  // namespace estclust::fixture
