// Fixture: a decoder that never verifies exhaustion, called from a
// recv site that does not check either. Trailing payload bytes --
// version skew, a field added on the encode side only -- would be
// silently ignored instead of failing loudly at the receiver.
#include "mpr/communicator.hpp"
#include "util/check.hpp"

namespace estclust::fixture {

inline constexpr int kTagLeakFix = 131;

struct LeakFixMsg {
  std::uint64_t value = 0;
};

mpr::Buffer encode_leakfix(const LeakFixMsg& m) {
  mpr::BufWriter w;
  w.put<std::uint64_t>(m.value);
  return w.take();
}

LeakFixMsg decode_leakfix(const mpr::Buffer& b) {
  mpr::BufReader r(b);
  LeakFixMsg m;
  m.value = r.get<std::uint64_t>();
  return m;
}

void fixture_leak_pump(mpr::Communicator& comm) {
  LeakFixMsg msg;
  msg.value = 3;
  comm.send(1, kTagLeakFix, encode_leakfix(msg));
  mpr::CheckOpScope scope(comm, "fixture_bounds_noexhaust.await_leak");
  mpr::Message in = comm.recv(0, kTagLeakFix);
  const LeakFixMsg got = decode_leakfix(in.payload);  // ESTCLUST-EXPECT(bounds-missing-exhausted)
  ESTCLUST_CHECK(got.value == msg.value);
}

}  // namespace estclust::fixture
