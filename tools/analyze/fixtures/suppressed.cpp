// Fixture: seeded violations silenced by per-line suppressions, proving
// the `// ESTCLUST-SUPPRESS(<rule>): <reason>` machinery. The selftest
// requires zero reported violations from this file AND exactly four used
// suppressions, plus one deliberately stale suppression that must be
// reported as a suppress-stale warning. ESTCLUST-EXPECT-SUPPRESSED(4)
#include <unordered_map>

#include "mpr/communicator.hpp"
#include "util/timer.hpp"

namespace estclust::fixture {

void tolerated(mpr::Communicator& comm) {
  // Trailing form, exact rule id.
  int jitter = rand();  // ESTCLUST-SUPPRESS(determinism-rand): fixture exercises trailing suppression

  // Preceding-line form.
  // ESTCLUST-SUPPRESS(determinism-wall-clock): fixture exercises preceding-line suppression
  WallTimer wall;

  // Family-prefix form: "determinism" covers determinism-unordered-iter.
  std::unordered_map<int, int> bag;
  bag[jitter] = 1;
  // ESTCLUST-SUPPRESS(determinism): fixture exercises family-prefix suppression
  for (const auto& [k, v] : bag) {
    comm.charge(comm.cost_model().byte_op, static_cast<std::uint64_t>(v));
  }

  // Multi-rule list form.
  std::uint64_t dp_cells = 0;
  dp_cells += 1;  // ESTCLUST-SUPPRESS(clock-accounting, determinism-rand): fixture exercises rule-list suppression
  (void)wall;

  // Stale form: the codec call this once silenced was refactored away,
  // so the waiver no longer consumes anything and must be warned about.
  int leftover = dp_cells > 0 ? 1 : 0;  // ESTCLUST-SUPPRESS(codec-symmetry): fixture exercises stale-suppression warning ESTCLUST-EXPECT-STALE(1)
  (void)leftover;
}

}  // namespace estclust::fixture
