// Fixture: trace-instrumentation violations for the obs rule family.
// Computed span names dangle (the recorder keeps the pointer) and
// defeat per-name aggregation; a name recorded under two categories
// splits every per-name rollup.
#include <string>

#include "mpr/communicator.hpp"
#include "obs/trace.hpp"

namespace estclust::fixture {

void traced_work(mpr::Communicator& comm, int iteration) {
  obs::RankTracer* tracer = comm.tracer();
  const std::string phase_name = "round_" + std::to_string(iteration);

  ESTCLUST_TRACE_SPAN(tracer, phase_name.c_str(), "phase");  // ESTCLUST-EXPECT(obs-span-literal)

  if (tracer) {
    tracer->begin(phase_name.c_str(), "phase");  // ESTCLUST-EXPECT(obs-span-literal)
    tracer->end("fixture_obs_step");
  }

  const char* kind = iteration > 0 ? "fault" : "phase";
  ESTCLUST_TRACE_INSTANT(tracer, "fixture_obs_tick", kind, 1);  // ESTCLUST-EXPECT(obs-span-literal)

  ESTCLUST_TRACE_SPAN(tracer, "fixture_obs_dup", "phase");
  ESTCLUST_TRACE_INSTANT(tracer, "fixture_obs_dup", "fault", 2);  // ESTCLUST-EXPECT(obs-category-clash)
}

}  // namespace estclust::fixture
