// Fixture: the sanitizer annotation is an explicit, auditable cut
// point in the taint lattice. Same flow shape as detflow_taint.cpp --
// wall-clock value imported from another translation unit and fed to a
// metric -- but the import is annotated with a proof, so the selftest
// requires zero violations from this file.
#include "mpr/communicator.hpp"

namespace estclust::fixture {

double fixture_wall_hop();

void fixture_publish_wall_column(mpr::Communicator& comm) {
  // ESTCLUST-DETFLOW-SANITIZED(report-only wall column; never feeds vtime, the wire or clusters)
  const double wall = fixture_wall_hop();
  comm.metrics().gauge("fixture.wall_column", obs::MergeOp::kMax).set(wall);
}

}  // namespace estclust::fixture
