// estclust — command-line front end for the EST clustering library.
//
//   estclust simulate --ests N [--genes G] [--seed S] --out lib.fa
//                     [--truth truth.txt] [--alt-splice P]
//   estclust cluster  --in lib.fa --out clusters.txt [--psi 20]
//                     [--window 8] [--min-quality 0.8] [--min-overlap 40]
//                     [--ranks P]          (P > 1: simulated parallel run)
//                     [--trace trace.json] (Chrome/Perfetto virtual-time trace)
//                     [--breakdown rep.txt] [--metrics]  (per-phase report /
//                      registry dump; both imply the virtual-time runtime)
//                     [--profile[=prof.json]] (critical-path profile: report
//                      to stdout, deterministic JSON to the optional file)
//   estclust eval     --clusters clusters.txt --truth truth.txt
//   estclust splice   --in lib.fa [--psi 20] [--min-gap 25]
//
// `cluster` writes one line per cluster listing EST names. `eval` compares
// a clustering against a truth file (one integer gene id per line, in EST
// order) with the paper's OQ/OV/UN/CC metrics.

#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>

#include "analysis/splice.hpp"
#include "assembly/consensus.hpp"
#include "bio/fasta.hpp"
#include "check/checker.hpp"
#include "gst/builder.hpp"
#include "mpr/fault.hpp"
#include "mpr/runtime.hpp"
#include "mpr/mailbox.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "pace/messages.hpp"
#include "pace/parallel.hpp"
#include "pace/sequential.hpp"
#include "pairgen/source.hpp"
#include "quality/report.hpp"
#include "sim/workload.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace estclust;

int usage() {
  std::cerr
      << "usage: estclust <simulate|cluster|eval|splice> [options]\n"
         "  simulate --ests N [--genes G] [--seed S] [--alt-splice P]\n"
         "           --out lib.fa [--truth truth.txt]\n"
         "  cluster  --in lib.fa --out clusters.txt [--psi 20] [--window 8]\n"
         "           [--min-quality 0.8] [--min-overlap 40] [--ranks P]\n"
         "           [--pair-source gst|kmer|fm]  (candidate filter: GST\n"
         "            walk, k-mer inverted index, or FM-index; clusters\n"
         "            are identical across backends)\n"
         "           [--trace trace.json] [--breakdown report.txt]\n"
         "           [--profile[=prof.json]] [--metrics]\n"
         "           [--check off|warn|strict]\n"
         "           [--faults off|seed=U64,drop=P,dup=P,delay=P,\n"
         "                     kill=RANK@VTIME,...]  (deterministic fault\n"
         "            injection into the master/slave protocol; implies a\n"
         "            parallel run. Clusters are unchanged by any plan.)\n"
         "  eval     --clusters clusters.txt --truth truth.txt --in lib.fa\n"
         "  splice   --in lib.fa [--psi 20] [--min-gap 25]\n"
         "  assemble --in lib.fa --out contigs.fa [cluster options]\n";
  return 2;
}

int cmd_simulate(const CliArgs& args) {
  sim::SimConfig cfg = sim::scaled_config(
      static_cast<std::size_t>(args.get_int("ests", 500)),
      static_cast<std::uint64_t>(args.get_int("seed", 20020811)));
  if (auto g = args.get("genes")) cfg.num_genes = std::stoull(*g);
  cfg.alt_splice_prob = args.get_double("alt-splice", 0.0);
  auto wl = sim::generate(cfg);

  const std::string out = args.get_string("out", "library.fa");
  std::vector<bio::Sequence> seqs;
  for (std::size_t i = 0; i < wl.ests.num_ests(); ++i) {
    seqs.push_back(wl.ests.est(static_cast<bio::EstId>(i)));
  }
  bio::write_fasta_file(out, seqs);
  std::cout << "wrote " << seqs.size() << " ESTs from " << cfg.num_genes
            << " genes to " << out << "\n";
  if (auto truth_path = args.get("truth")) {
    std::ofstream t(*truth_path);
    for (auto g : wl.truth) t << g << '\n';
    std::cout << "wrote truth labels to " << *truth_path << "\n";
  }
  return 0;
}

pace::PaceConfig cluster_config(const CliArgs& args) {
  pace::PaceConfig cfg;
  cfg.psi = static_cast<std::uint32_t>(args.get_int("psi", 20));
  cfg.gst.window = static_cast<std::uint32_t>(args.get_int("window", 8));
  cfg.batchsize = static_cast<std::size_t>(args.get_int("batchsize", 60));
  cfg.overlap.min_quality = args.get_double("min-quality", 0.8);
  cfg.overlap.min_overlap =
      static_cast<std::size_t>(args.get_int("min-overlap", 40));
  cfg.overlap.band = static_cast<std::size_t>(args.get_int("band", 8));
  const std::string source = args.get_string("pair-source", "gst");
  const auto backend = pairgen::parse_backend(source);
  ESTCLUST_CHECK_MSG(backend.has_value(),
                     "--pair-source must be gst, kmer or fm (got '"
                         << source << "')");
  cfg.pair_source = *backend;
  return cfg;
}

int cmd_cluster(const CliArgs& args) {
  auto in = args.get("in");
  if (!in) return usage();
  bio::EstSet ests(bio::read_fasta_file(*in));
  auto cfg = cluster_config(args);

  const auto trace_path = args.get("trace");
  const auto breakdown_path = args.get("breakdown");
  const bool want_metrics = args.has_flag("metrics");
  // --profile alone prints the report; --profile=FILE also writes the
  // deterministic profile JSON. Profiling needs the flow-traced runtime.
  const bool want_profile = args.has_flag("profile");
  const auto profile_path = args.get("profile");
  cfg.trace =
      trace_path.has_value() || breakdown_path.has_value() || want_profile;

  mpr::CheckMode check_mode = mpr::CheckMode::kOff;
  const std::string check_arg = args.get_string("check", "off");
  ESTCLUST_CHECK_MSG(check::parse_check_mode(check_arg, &check_mode),
                     "--check must be off, warn or strict (got '"
                         << check_arg << "')");

  const mpr::FaultSpec faults =
      mpr::parse_fault_spec(args.get_string("faults", "off"));
  faults.validate();

  std::vector<std::uint32_t> labels;
  int ranks = static_cast<int>(args.get_int("ranks", 1));
  // Observability, checking and fault injection ride on the virtual-time
  // runtime; a single-rank request for any of them still routes through
  // it (with p = 2: one master, one slave).
  if (ranks < 2 && (cfg.trace || want_metrics || faults.enabled ||
                    check_mode != mpr::CheckMode::kOff)) {
    ranks = 2;
  }
  if (ranks > 1) {
    mpr::Runtime rt(ranks, mpr::CostModel{});
    if (faults.enabled) {
      rt.set_fault_plan(std::make_shared<mpr::FaultPlan>(faults, ranks));
      std::cout << "fault injection: " << mpr::format_fault_spec(faults)
                << "\n";
    }
    if (cfg.trace) rt.enable_tracing(cfg.trace_message_flows);
    check::Checker* checker = check::enable_checking(rt, check_mode);
    std::mutex mu;
    rt.run([&](mpr::Communicator& comm) {
      auto res = pace::cluster_parallel(comm, ests, cfg);
      if (comm.rank() == 0) {
        std::lock_guard<std::mutex> lock(mu);
        labels = std::move(res.labels);
        std::cout << "parallel run (" << ranks << " ranks): "
                  << res.stats.pairs_processed << " of "
                  << res.stats.pairs_generated
                  << " promising pairs aligned; modeled run-time "
                  << res.stats.t_total << " virt s\n";
      }
    });
    if (trace_path) {
      std::ofstream ts(*trace_path);
      ESTCLUST_CHECK_MSG(ts.good(), "cannot open " << *trace_path);
      obs::write_chrome_trace(ts, *rt.tracer());
      std::cout << "trace (" << rt.tracer()->total_events()
                << " events) written to " << *trace_path << "\n";
    }
    if (breakdown_path) {
      std::ofstream bs(*breakdown_path);
      ESTCLUST_CHECK_MSG(bs.good(), "cannot open " << *breakdown_path);
      obs::write_breakdown_report(bs, *rt.tracer(), rt.rank_times());
      std::cout << "phase breakdown written to " << *breakdown_path << "\n";
    }
    if (want_profile) {
      obs::ProfileOptions popts;
      popts.tag_names = {{pace::kTagReport, "REPORT"},
                         {pace::kTagAssign, "ASSIGN"},
                         {pace::kTagAck, "ACK"},
                         {pace::kTagHeartbeat, "HEARTBEAT"}};
      popts.internal_tag_base = mpr::kInternalTagBase;
      popts.recv_overhead = mpr::CostModel{}.recv_overhead;
      const obs::Profile prof =
          obs::build_profile(*rt.tracer(), rt.rank_times(), popts);
      if (profile_path && !profile_path->empty()) {
        std::ofstream ps(*profile_path);
        ESTCLUST_CHECK_MSG(ps.good(), "cannot open " << *profile_path);
        obs::write_profile_json(ps, prof);
        std::cout << "profile (" << prof.path.segments.size()
                  << " critical-path segments) written to " << *profile_path
                  << "\n";
      }
      obs::write_profile_report(std::cout, prof, popts);
    }
    if (want_metrics) {
      auto merged = rt.merged_metrics();
      merged.write_report(std::cout);
    }
    if (checker) {
      const auto findings = checker->findings();
      if (findings.empty()) {
        std::cout << "check (" << check_arg << "): clean\n";
      } else {
        std::cout << "check (" << check_arg << "): " << findings.size()
                  << " finding(s) logged\n";
      }
    }
  } else {
    auto res = pace::cluster_sequential(ests, cfg);
    labels = res.clusters.labels();
    std::cout << res.stats.pairs_processed << " of "
              << res.stats.pairs_generated
              << " promising pairs aligned in " << res.stats.t_total
              << " s\n";
  }

  // Group ESTs by label, ordered by smallest member.
  std::map<std::uint32_t, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    groups[labels[i]].push_back(i);
  }
  const std::string out = args.get_string("out", "clusters.txt");
  std::ofstream os(out);
  std::size_t cid = 0;
  for (const auto& [label, members] : groups) {
    os << ">cluster_" << cid++ << " size=" << members.size() << '\n';
    for (auto i : members) {
      os << ests.est(static_cast<bio::EstId>(i)).id << '\n';
    }
  }
  std::cout << groups.size() << " clusters written to " << out << "\n";
  return 0;
}

int cmd_eval(const CliArgs& args) {
  auto clusters_path = args.get("clusters");
  auto truth_path = args.get("truth");
  auto in = args.get("in");
  if (!clusters_path || !truth_path || !in) return usage();

  bio::EstSet ests(bio::read_fasta_file(*in));
  std::map<std::string, std::size_t> name_to_idx;
  for (std::size_t i = 0; i < ests.num_ests(); ++i) {
    name_to_idx[ests.est(static_cast<bio::EstId>(i)).id] = i;
  }

  std::vector<std::uint32_t> predicted(ests.num_ests(), 0);
  std::ifstream cs(*clusters_path);
  ESTCLUST_CHECK_MSG(cs.good(), "cannot open " << *clusters_path);
  std::string line;
  std::uint32_t current = 0;
  bool seen_header = false;
  while (std::getline(cs, line)) {
    if (line.empty()) continue;
    if (line[0] == '>') {
      current = seen_header ? current + 1 : 0;
      seen_header = true;
    } else {
      auto it = name_to_idx.find(line);
      ESTCLUST_CHECK_MSG(it != name_to_idx.end(),
                         "unknown EST name '" << line << "'");
      predicted[it->second] = current;
    }
  }

  std::vector<std::uint32_t> truth;
  std::ifstream ts(*truth_path);
  ESTCLUST_CHECK_MSG(ts.good(), "cannot open " << *truth_path);
  std::uint32_t g = 0;
  while (ts >> g) truth.push_back(g);
  ESTCLUST_CHECK_MSG(truth.size() == ests.num_ests(),
                     "truth file has " << truth.size() << " labels for "
                                       << ests.num_ests() << " ESTs");

  auto report = quality::build_report(predicted, truth);
  const auto& pc = report.pairs;
  TablePrinter t({"metric", "value (%)"});
  t.add_row({"OQ (overlap quality)", TablePrinter::fmt(pc.overlap_quality())});
  t.add_row({"OV (over-prediction)", TablePrinter::fmt(pc.over_prediction())});
  t.add_row({"UN (under-prediction)",
             TablePrinter::fmt(pc.under_prediction())});
  t.add_row({"CC (correlation)", TablePrinter::fmt(pc.correlation())});
  t.print(std::cout);

  std::cout << "\ncluster diagnostics: " << report.clusters.size()
            << " predicted clusters, " << report.impure_clusters()
            << " impure; " << report.truths.size() << " true genes, "
            << report.fragmented_truths() << " fragmented; weighted purity "
            << TablePrinter::fmt(100.0 * report.weighted_purity(), 2)
            << "%\n";
  std::size_t shown = 0;
  for (const auto& c : report.clusters) {
    if (c.truth_clusters <= 1 || shown >= 5) continue;
    std::cout << "  impure cluster " << c.label << ": " << c.size
              << " ESTs from " << c.truth_clusters << " genes (purity "
              << TablePrinter::fmt(100.0 * c.purity, 1) << "%)\n";
    ++shown;
  }
  return 0;
}

int cmd_splice(const CliArgs& args) {
  auto in = args.get("in");
  if (!in) return usage();
  bio::EstSet ests(bio::read_fasta_file(*in));

  analysis::SpliceParams params;
  params.psi = static_cast<std::uint32_t>(args.get_int("psi", 20));
  params.min_gap = static_cast<std::size_t>(args.get_int("min-gap", 25));

  auto forest = gst::build_forest_sequential(
      ests, static_cast<std::uint32_t>(args.get_int("window", 8)));
  auto candidates =
      analysis::detect_alternative_splicing(ests, forest, params);

  TablePrinter t({"EST A", "EST B", "orient", "gap", "in", "flanks",
                  "flank id"});
  for (const auto& c : candidates) {
    t.add_row({ests.est(c.a).id, ests.est(c.b).id, c.b_rc ? "rc" : "fwd",
               TablePrinter::fmt(static_cast<std::uint64_t>(c.gap_len)),
               c.gap_in_a ? "A" : "B",
               TablePrinter::fmt(static_cast<std::uint64_t>(c.left_flank)) +
                   "/" +
                   TablePrinter::fmt(
                       static_cast<std::uint64_t>(c.right_flank)),
               TablePrinter::fmt(c.flank_identity, 3)});
  }
  t.print(std::cout);
  std::cout << candidates.size()
            << " alternative-splicing candidate pair(s)\n";
  return 0;
}

int cmd_assemble(const CliArgs& args) {
  auto in = args.get("in");
  if (!in) return usage();
  bio::EstSet ests(bio::read_fasta_file(*in));
  auto cfg = cluster_config(args);

  auto res = pace::cluster_sequential(ests, cfg);
  auto contigs = assembly::assemble_clusters(ests, res.overlaps);

  std::vector<bio::Sequence> out_seqs;
  for (std::size_t c = 0; c < contigs.size(); ++c) {
    std::ostringstream id;
    id << "contig_" << c << " ests=" << contigs[c].num_ests()
       << " len=" << contigs[c].consensus.size();
    out_seqs.push_back({id.str(), contigs[c].consensus});
  }
  const std::string out = args.get_string("out", "contigs.fa");
  bio::write_fasta_file(out, out_seqs);
  std::cout << contigs.size() << " contigs from " << ests.num_ests()
            << " ESTs written to " << out << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  estclust::CliArgs args(argc - 1, argv + 1);
  try {
    if (cmd == "simulate") return cmd_simulate(args);
    if (cmd == "cluster") return cmd_cluster(args);
    if (cmd == "eval") return cmd_eval(args);
    if (cmd == "splice") return cmd_splice(args);
    if (cmd == "assemble") return cmd_assemble(args);
  } catch (const std::exception& e) {
    std::cerr << "estclust: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
