#!/usr/bin/env python3
"""Structural validator for estclust Chrome trace output.

Usage: check_trace.py [--allow-lost-flows] trace.json [breakdown.txt]

Checks that the trace is well-formed Chrome trace-event JSON:
  * every B (span begin) has a matching E on the same (pid, tid),
    properly nested;
  * per-thread timestamps are monotonically non-decreasing;
  * message flows are causally sound: flow ids are unique (at most one
    start and one finish each), every finish has a start on a different
    rank with send ts <= recv ts, and — unless --allow-lost-flows is
    given for faulted traces, where drops and deaths legitimately strand
    messages — every start is matched by a finish;
  * the trace covers >= 2 ranks and >= 5 distinct phase span names.

When a breakdown report is given, also checks it mentions the
per-component phase names used by Table 3 of the paper.
"""

import json
import sys

REQUIRED_PHASES = 5
REQUIRED_RANKS = 2
# Components of the paper's Table 3 runtime breakdown, as instrumented.
BREAKDOWN_COMPONENTS = ["partitioning", "gst_build", "node_sorting",
                        "alignment"]


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def validate_trace(path, allow_lost_flows=False):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)

    if "traceEvents" not in doc:
        fail("missing traceEvents key")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        fail("traceEvents is empty or not a list")

    stacks = {}      # (pid, tid) -> [span names]
    last_ts = {}     # (pid, tid) -> last timestamp
    span_names = set()
    ranks = set()
    flows_out = {}   # id -> (tid, ts)
    flows_in = {}

    for ev in events:
        ph = ev.get("ph")
        if ph == "M":
            continue
        for key in ("pid", "tid", "ts"):
            if key not in ev:
                fail(f"event missing '{key}': {ev}")
        tid = (ev["pid"], ev["tid"])
        ts = ev["ts"]
        if not isinstance(ts, (int, float)):
            fail(f"non-numeric ts: {ev}")
        if tid in last_ts and ts < last_ts[tid]:
            fail(f"timestamps go backwards on tid {tid}: "
                 f"{last_ts[tid]} -> {ts}")
        last_ts[tid] = ts
        ranks.add(ev["tid"])

        if ph == "B":
            if "name" not in ev:
                fail(f"B event without name: {ev}")
            stacks.setdefault(tid, []).append(ev["name"])
            span_names.add(ev["name"])
        elif ph == "E":
            stack = stacks.get(tid, [])
            if not stack:
                fail(f"E event with empty span stack on tid {tid}")
            stack.pop()
        elif ph == "s":
            fid = ev.get("id")
            if fid is None:
                fail(f"flow start without id: {ev}")
            if fid in flows_out:
                fail(f"duplicate flow start: id {fid}")
            flows_out[fid] = (ev["tid"], ts)
        elif ph == "f":
            fid = ev.get("id")
            if fid is None:
                fail(f"flow finish without id: {ev}")
            if fid in flows_in:
                fail(f"duplicate flow finish: id {fid}")
            flows_in[fid] = (ev["tid"], ts)
        elif ph not in ("i", "I"):
            fail(f"unexpected event phase '{ph}': {ev}")

    for tid, stack in stacks.items():
        if stack:
            fail(f"unclosed spans on tid {tid}: {stack}")
    for fid, (recv_tid, recv_ts) in flows_in.items():
        if fid not in flows_out:
            fail(f"flow finish without start: id {fid}")
        send_tid, send_ts = flows_out[fid]
        if send_tid == recv_tid:
            fail(f"flow id {fid} starts and finishes on rank {send_tid}")
        if send_ts > recv_ts:
            fail(f"flow id {fid} received before it was sent: "
                 f"{send_ts} > {recv_ts}")
    lost = sorted(fid for fid in flows_out if fid not in flows_in)
    if lost and not allow_lost_flows:
        fail(f"{len(lost)} flow start(s) without a finish (first: "
             f"{lost[0]}); pass --allow-lost-flows for faulted traces")
    if lost:
        print(f"check_trace: note: {len(lost)} lost flow(s) tolerated "
              f"(faulted trace)")

    if len(ranks) < REQUIRED_RANKS:
        fail(f"trace covers {len(ranks)} rank(s), need >= {REQUIRED_RANKS}")
    if len(span_names) < REQUIRED_PHASES:
        fail(f"only {len(span_names)} distinct span names "
             f"({sorted(span_names)}), need >= {REQUIRED_PHASES}")

    print(f"check_trace: trace OK: {len(events)} events, "
          f"{len(ranks)} ranks, {len(flows_out)} flows, "
          f"{len(span_names)} span names: {sorted(span_names)}")


def validate_breakdown(path):
    with open(path, "r", encoding="utf-8") as f:
        text = f.read()
    missing = [c for c in BREAKDOWN_COMPONENTS if c not in text]
    if missing:
        fail(f"breakdown report missing components: {missing}")
    print(f"check_trace: breakdown OK: all of {BREAKDOWN_COMPONENTS} present")


def main():
    argv = sys.argv[1:]
    allow_lost = "--allow-lost-flows" in argv
    argv = [a for a in argv if a != "--allow-lost-flows"]
    if not argv:
        fail("usage: check_trace.py [--allow-lost-flows] trace.json "
             "[breakdown.txt]")
    validate_trace(argv[0], allow_lost_flows=allow_lost)
    if len(argv) > 1:
        validate_breakdown(argv[1])
    print("check_trace: PASS")


if __name__ == "__main__":
    main()
