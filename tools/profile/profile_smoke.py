#!/usr/bin/env python3
"""profile_smoke — determinism and exactness gate for estclust --profile.

Usage: profile_smoke.py <estclust-binary> <critpath.py> <input.fasta>

For each processor count in {2, 4, 8}:
  * runs `estclust cluster --profile=... ` twice and requires the two
    profile JSON files to be byte-identical (the profile holds no
    wall-clock data and formats doubles with %.17g, so any divergence is
    a real nondeterminism bug);
  * runs critpath.py validate on the profile (contiguity, path length
    bit-equal to the makespan, per-rank slack identities);
  * runs the same clustering without --profile and requires the cluster
    output to be byte-identical — profiling must never perturb the run.
"""

import filecmp
import subprocess
import sys
import tempfile
from pathlib import Path

RANKS = [2, 4, 8]


def fail(msg):
    print(f"profile_smoke: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def run(cmd):
    res = subprocess.run(cmd, capture_output=True, text=True)
    if res.returncode != 0:
        fail(f"command failed ({res.returncode}): {' '.join(map(str, cmd))}\n"
             f"{res.stdout}{res.stderr}")
    return res.stdout


def main():
    if len(sys.argv) != 4:
        fail("usage: profile_smoke.py <estclust> <critpath.py> <input.fasta>")
    estclust, critpath, fasta = map(Path, sys.argv[1:4])
    for p in (estclust, critpath, fasta):
        if not p.exists():
            fail(f"missing {p}")

    with tempfile.TemporaryDirectory(prefix="profile_smoke.") as tmp:
        tmp = Path(tmp)
        for ranks in RANKS:
            prof_a = tmp / f"p{ranks}_a.json"
            prof_b = tmp / f"p{ranks}_b.json"
            clusters_prof = tmp / f"c{ranks}_prof.txt"
            clusters_rerun = tmp / f"c{ranks}_rerun.txt"
            clusters_plain = tmp / f"c{ranks}_plain.txt"

            base = [str(estclust), "cluster", "--in", str(fasta),
                    "--ranks", str(ranks)]
            run(base + ["--out", str(clusters_prof),
                        f"--profile={prof_a}"])
            run(base + ["--out", str(clusters_rerun),
                        f"--profile={prof_b}"])
            run(base + ["--out", str(clusters_plain)])

            if not filecmp.cmp(prof_a, prof_b, shallow=False):
                fail(f"p={ranks}: profile JSON differs across reruns")
            if not filecmp.cmp(clusters_prof, clusters_rerun,
                               shallow=False):
                fail(f"p={ranks}: clusters differ across profiled reruns")
            if not filecmp.cmp(clusters_prof, clusters_plain,
                               shallow=False):
                fail(f"p={ranks}: profiling changed the clusters")

            run([sys.executable, str(critpath), "validate", str(prof_a)])
            print(f"profile_smoke: p={ranks}: byte-identical profile, "
                  f"clusters unchanged, invariants exact")

    print("profile_smoke: PASS")


if __name__ == "__main__":
    main()
