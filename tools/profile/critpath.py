#!/usr/bin/env python3
"""Validator and renderer for estclust --profile JSON (estclust-profile-v1).

Usage:
  critpath.py validate profile.json
  critpath.py render   profile.json
  critpath.py table    profile1.json [profile2.json ...]

`validate` checks the schema and the profile's exactness contract:
  * critical-path segments tile [0, makespan] contiguously — every
    segment's end bit-equals the next segment's begin, the first begins
    at 0 and the last ends at the makespan;
  * the reported path length bit-equals the makespan;
  * per rank, slack bit-equals makespan - (busy + comm) (the same IEEE
    subtraction the producer performed), and it decomposes into measured
    idle plus the tail gap to within float tolerance;
  * path_by_op totals equal the sum of matching segment durations to
    within float tolerance, and utilization fractions lie in [0, 1].

Exact (bitwise) checks are possible because the profile is derived from
the deterministic virtual-time simulation and serialized with %.17g
round-trip formatting; json.load recovers the producer's doubles.

`render` prints a compact human summary of one profile. `table` prints
the Fig 8 analog — master utilization against the number of processors —
from one profile per processor count.
"""

import json
import math
import sys

SCHEMA = "estclust-profile-v1"
REL_TOL = 1e-9


def fail(msg):
    print(f"critpath: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != SCHEMA:
        fail(f"{path}: schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    return doc


def validate(path):
    doc = load(path)
    makespan = doc["makespan"]
    ranks = doc["ranks"]
    if ranks < 1:
        fail("ranks < 1")

    cp = doc["critical_path"]
    segs = cp["segments"]
    if not segs and makespan > 0:
        fail("positive makespan but no critical-path segments")
    for i, s in enumerate(segs):
        for key in ("rank", "kind", "op", "begin", "end"):
            if key not in s:
                fail(f"segment {i} missing '{key}': {s}")
        if s["kind"] not in ("local", "wire"):
            fail(f"segment {i} has kind {s['kind']!r}")
        if s["end"] < s["begin"]:
            fail(f"segment {i} runs backwards: {s}")
        if not 0 <= s["rank"] < ranks:
            fail(f"segment {i} on out-of-range rank {s['rank']}")
    if segs:
        # The exactness contract: bit-equality, not approximation.
        if segs[0]["begin"] != 0.0:
            fail(f"path does not start at 0: {segs[0]['begin']}")
        if segs[-1]["end"] != makespan:
            fail(f"path ends at {segs[-1]['end']}, makespan {makespan}")
        for a, b in zip(segs, segs[1:]):
            if a["end"] != b["begin"]:
                fail(f"path gap: segment ends at {a['end']}, next begins "
                     f"at {b['begin']}")
    if cp["length"] != makespan:
        fail(f"critical-path length {cp['length']} != makespan {makespan}")

    by_op = {}
    for s in segs:
        key = s["op"] if s["kind"] == "local" else None
        if key is not None:
            by_op[key] = by_op.get(key, 0.0) + (s["end"] - s["begin"])
    for row in doc["path_by_op"]:
        op = row["op"]
        if op.startswith("wire:"):
            continue
        got = by_op.get(op, 0.0)
        if not math.isclose(row["vtime"], got, rel_tol=REL_TOL,
                            abs_tol=1e-15):
            fail(f"path_by_op[{op!r}] = {row['vtime']}, segments sum to "
                 f"{got}")

    detail = doc["ranks_detail"]
    if len(detail) != ranks:
        fail(f"ranks_detail has {len(detail)} rows for {ranks} ranks")
    for row in detail:
        r = row["rank"]
        # Recompute with the producer's own operation: bit-equal by
        # determinism of IEEE arithmetic on identical inputs.
        if row["slack"] != makespan - (row["busy"] + row["comm"]):
            fail(f"rank {r}: slack {row['slack']} != makespan - "
                 f"(busy + comm)")
        if row["tail"] != makespan - row["total"]:
            fail(f"rank {r}: tail {row['tail']} != makespan - total")
        if not math.isclose(row["slack"], row["idle"] + row["tail"],
                            rel_tol=REL_TOL, abs_tol=1e-12):
            fail(f"rank {r}: slack {row['slack']} does not decompose "
                 f"into idle {row['idle']} + tail {row['tail']}")
        if row["total"] > makespan:
            fail(f"rank {r}: total {row['total']} exceeds makespan")

    for w in doc["wait_by_tag"]:
        if w["count"] < 1 or w["vtime"] < 0:
            fail(f"bad wait_by_tag row: {w}")
    for r, buckets in enumerate(doc["utilization"]["per_rank"]):
        for f in buckets:
            if not 0.0 <= f <= 1.0:
                fail(f"rank {r}: utilization fraction {f} outside [0, 1]")
    mu = doc["master_utilization"]
    if not 0.0 <= mu <= 1.0:
        fail(f"master_utilization {mu} outside [0, 1]")

    print(f"critpath: OK: {path}: {ranks} ranks, makespan {makespan:.6f} "
          f"virt s, {len(segs)} path segments, length exact")


def render(path):
    doc = load(path)
    makespan = doc["makespan"]
    denom = makespan or 1.0
    print(f"profile {path}: {doc['ranks']} ranks, makespan "
          f"{makespan:.6f} virt s")
    print("critical path by operation:")
    for row in doc["path_by_op"]:
        print(f"  {row['op']:<24} {row['vtime']:>10.6f} s  "
              f"{100.0 * row['vtime'] / denom:6.2f}%  "
              f"({row['segments']} segments)")
    print("per-rank slack:")
    for r in doc["ranks_detail"]:
        print(f"  rank {r['rank']:<3} busy {r['busy']:.6f}  "
              f"comm {r['comm']:.6f}  slack {r['slack']:.6f}  "
              f"util {100.0 * (r['busy'] + r['comm']) / denom:6.2f}%")
    if doc["wait_by_tag"]:
        print("wait by tag:")
        for w in doc["wait_by_tag"]:
            print(f"  {w['name']:<12} {w['count']:>5} waits  "
                  f"{w['vtime']:.6f} s")
    print(f"master utilization: {100.0 * doc['master_utilization']:.3f}%")


def table(paths):
    rows = []
    for path in paths:
        doc = load(path)
        rows.append((doc["ranks"], doc["makespan"],
                     doc["master_utilization"]))
    rows.sort()
    print("Fig 8 analog: master utilization vs processors (from profiles)")
    print(f"{'p':>4}  {'makespan (virt s)':>18}  {'master util %':>14}")
    for p, makespan, mu in rows:
        print(f"{p:>4}  {makespan:>18.6f}  {100.0 * mu:>14.3f}")


def main():
    if len(sys.argv) < 3:
        print(__doc__.strip(), file=sys.stderr)
        sys.exit(2)
    cmd = sys.argv[1]
    if cmd == "validate":
        validate(sys.argv[2])
    elif cmd == "render":
        render(sys.argv[2])
    elif cmd == "table":
        table(sys.argv[2:])
    else:
        fail(f"unknown subcommand {cmd!r}")


if __name__ == "__main__":
    main()
