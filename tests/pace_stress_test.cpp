// Protocol stress tests: the master/slave clustering must reproduce the
// sequential partition under every combination of rank count, batch size
// and buffer capacity, and must terminate on degenerate inputs.
#include <gtest/gtest.h>

#include <mutex>
#include <tuple>

#include "mpr/runtime.hpp"
#include "pace/parallel.hpp"
#include "pace/sequential.hpp"
#include "sim/workload.hpp"
#include "util/prng.hpp"

namespace estclust::pace {
namespace {

sim::Workload stress_workload(std::size_t ests, std::uint64_t seed) {
  sim::SimConfig cfg;
  cfg.num_genes = std::max<std::size_t>(2, ests / 12);
  cfg.num_ests = ests;
  cfg.est_len_mean = 200;
  cfg.est_len_stddev = 30;
  cfg.est_len_min = 80;
  cfg.paralog_fraction = 0.2;
  cfg.paralog_divergence = 0.15;
  cfg.seed = seed;
  return sim::generate(cfg);
}

std::vector<std::uint32_t> parallel_labels(const bio::EstSet& ests,
                                           const PaceConfig& cfg, int p) {
  mpr::Runtime rt(p, mpr::CostModel{});
  std::vector<std::uint32_t> labels;
  std::mutex mu;
  rt.run([&](mpr::Communicator& comm) {
    auto res = cluster_parallel(comm, ests, cfg);
    if (comm.rank() == 0) {
      std::lock_guard<std::mutex> lock(mu);
      labels = std::move(res.labels);
    }
  });
  return labels;
}

using ProtocolParams = std::tuple<int, std::size_t, std::size_t>;

class ProtocolSweep : public testing::TestWithParam<ProtocolParams> {};

TEST_P(ProtocolSweep, PartitionInvariantUnderProtocolKnobs) {
  auto [p, batchsize, pairbuf] = GetParam();
  auto wl = stress_workload(100, 4242);
  PaceConfig cfg;
  cfg.gst.window = 6;
  cfg.psi = 22;
  cfg.batchsize = batchsize;
  cfg.pairbuf_capacity = std::max(pairbuf, batchsize);
  cfg.workbuf_capacity = std::max<std::size_t>(64, 4 * batchsize);
  cfg.overlap.min_quality = 0.75;

  auto sequential = cluster_sequential(wl.ests, cfg).clusters.labels();
  EXPECT_EQ(parallel_labels(wl.ests, cfg, p), sequential)
      << "p=" << p << " batch=" << batchsize << " pairbuf=" << pairbuf;
}

INSTANTIATE_TEST_SUITE_P(
    Knobs, ProtocolSweep,
    testing::Combine(testing::Values(2, 3, 6, 12),
                     testing::Values<std::size_t>(1, 5, 60),
                     testing::Values<std::size_t>(8, 512)));

TEST(ProtocolDegenerate, AllIdenticalEstsCollapseToOneCluster) {
  Prng rng(5);
  std::string seq(200, 'A');
  for (auto& c : seq) {
    c = "ACGT"[rng.uniform(4)];
  }
  std::vector<bio::Sequence> seqs;
  for (int i = 0; i < 24; ++i) {
    seqs.push_back({"dup" + std::to_string(i), seq});
  }
  bio::EstSet ests(std::move(seqs));
  PaceConfig cfg;
  cfg.gst.window = 6;
  cfg.psi = 22;
  auto labels = parallel_labels(ests, cfg, 5);
  for (auto l : labels) EXPECT_EQ(l, labels[0]);
}

TEST(ProtocolDegenerate, FullyDisjointEstsStaySingletons) {
  // Each EST uses its own periodic pattern; no promising pairs exist.
  std::vector<bio::Sequence> seqs;
  const char* bases = "ACGT";
  for (int i = 0; i < 12; ++i) {
    std::string s;
    for (int k = 0; k < 80; ++k) {
      s.push_back(bases[(k * (i + 1) + i) % 4]);
    }
    seqs.push_back({"solo" + std::to_string(i), s});
  }
  bio::EstSet ests(std::move(seqs));
  PaceConfig cfg;
  cfg.gst.window = 6;
  cfg.psi = 40;  // high threshold: accidental matches stay below it
  auto seq_res = cluster_sequential(ests, cfg);
  auto labels = parallel_labels(ests, cfg, 4);
  EXPECT_EQ(labels, seq_res.clusters.labels());
}

TEST(ProtocolDegenerate, MoreSlavesThanPairsTerminates) {
  auto wl = stress_workload(10, 77);
  PaceConfig cfg;
  cfg.gst.window = 6;
  cfg.psi = 22;
  auto sequential = cluster_sequential(wl.ests, cfg).clusters.labels();
  EXPECT_EQ(parallel_labels(wl.ests, cfg, 16), sequential);
}

TEST(ProtocolDegenerate, BatchsizeOneAtScale) {
  auto wl = stress_workload(60, 99);
  PaceConfig cfg;
  cfg.gst.window = 6;
  cfg.psi = 22;
  cfg.batchsize = 1;
  cfg.pairbuf_capacity = 1;
  cfg.workbuf_capacity = 1;
  auto sequential = cluster_sequential(wl.ests, cfg).clusters.labels();
  EXPECT_EQ(parallel_labels(wl.ests, cfg, 4), sequential);
}

class SeedSweep : public testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, ParallelEqualsSequentialAcrossWorkloads) {
  auto wl = stress_workload(80, GetParam());
  PaceConfig cfg;
  cfg.gst.window = 6;
  cfg.psi = 22;
  auto sequential = cluster_sequential(wl.ests, cfg).clusters.labels();
  EXPECT_EQ(parallel_labels(wl.ests, cfg, 7), sequential);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         testing::Range<std::uint64_t>(2000, 2010));

TEST(ProtocolLarge, MidSizeWorkloadManyRanks) {
  auto wl = stress_workload(300, 31337);
  PaceConfig cfg;
  cfg.gst.window = 6;
  cfg.psi = 22;
  auto sequential = cluster_sequential(wl.ests, cfg).clusters.labels();
  EXPECT_EQ(parallel_labels(wl.ests, cfg, 10), sequential);
}

}  // namespace
}  // namespace estclust::pace
