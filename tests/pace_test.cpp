#include <gtest/gtest.h>

#include <mutex>

#include "mpr/runtime.hpp"
#include "pace/memo.hpp"
#include "pace/messages.hpp"
#include "pace/parallel.hpp"
#include "pace/sequential.hpp"
#include "pace/slave.hpp"
#include "quality/metrics.hpp"
#include "sim/workload.hpp"
#include "util/check.hpp"

namespace estclust::pace {
namespace {

sim::Workload test_workload(std::size_t ests = 120, std::uint64_t seed = 7) {
  sim::SimConfig cfg;
  cfg.num_genes = 8;
  cfg.num_ests = ests;
  cfg.est_len_mean = 220;
  cfg.est_len_stddev = 40;
  cfg.est_len_min = 80;
  cfg.sub_rate = 0.01;
  cfg.ins_rate = 0.002;
  cfg.del_rate = 0.002;
  cfg.seed = seed;
  return sim::generate(cfg);
}

PaceConfig test_config() {
  PaceConfig cfg;
  cfg.gst.window = 6;
  cfg.psi = 24;
  cfg.batchsize = 20;
  cfg.overlap.band = 8;
  cfg.overlap.min_quality = 0.75;
  cfg.overlap.min_overlap = 40;
  return cfg;
}

TEST(Messages, ReportRoundTrip) {
  ReportMsg m;
  WireResult r;
  r.a = 3;
  r.b = 9;
  r.b_rc = 1;
  r.accepted = 1;
  r.kind = 2;
  r.quality = 0.93f;
  r.a_begin = 5;
  r.a_end = 105;
  r.b_begin = 0;
  r.b_end = 98;
  m.results.push_back(r);
  m.pairs.push_back({1, 2, true, 33, 7, 8});
  m.pairs.push_back({4, 6, false, 21, 0, 3});
  m.out_of_pairs = true;
  m.memo_lookups = 57;
  m.memo_hits = 13;

  ReportMsg back = decode_report(encode_report(m));
  ASSERT_EQ(back.results.size(), 1u);
  EXPECT_EQ(back.results[0].a, 3u);
  EXPECT_EQ(back.results[0].b_rc, 1);
  EXPECT_EQ(back.results[0].a_end, 105u);
  EXPECT_FLOAT_EQ(back.results[0].quality, 0.93f);
  ASSERT_EQ(back.pairs.size(), 2u);
  EXPECT_EQ(back.pairs[0].match_len, 33u);
  EXPECT_EQ(back.pairs[1].b, 6u);
  EXPECT_TRUE(back.out_of_pairs);
  EXPECT_EQ(back.memo_lookups, 57u);
  EXPECT_EQ(back.memo_hits, 13u);
}

TEST(Messages, AssignRoundTrip) {
  AssignMsg m;
  m.work.push_back({10, 20, true, 44, 1, 2});
  m.request = 123;
  AssignMsg back = decode_assign(encode_assign(m));
  ASSERT_EQ(back.work.size(), 1u);
  EXPECT_EQ(back.work[0].a, 10u);
  EXPECT_TRUE(back.work[0].b_rc);
  EXPECT_EQ(back.request, 123u);
  EXPECT_EQ(back.stop, 0);
}

TEST(Messages, AssignStopRoundTrip) {
  // The coalesced protocol folds STOP into the final assignment.
  AssignMsg m;
  m.stop = 1;
  AssignMsg back = decode_assign(encode_assign(m));
  EXPECT_TRUE(back.work.empty());
  EXPECT_EQ(back.request, 0u);
  EXPECT_EQ(back.stop, 1);
}

TEST(Messages, EmptyReportRoundTrip) {
  ReportMsg back = decode_report(encode_report(ReportMsg{}));
  EXPECT_TRUE(back.results.empty());
  EXPECT_TRUE(back.pairs.empty());
  EXPECT_FALSE(back.out_of_pairs);
  EXPECT_EQ(back.memo_lookups, 0u);
  EXPECT_EQ(back.memo_hits, 0u);
}

TEST(StartupSplit, ThreeWaySplitPinned) {
  // The §3.3 startup batch is split into align-now / NEXTWORK / ship-to-
  // master portions. Pin the exact semantics: portions sum to
  // max(batchsize, 3), every portion is >= 1 (a batchsize < 3 would
  // otherwise starve NEXTWORK and stall the overlap pipeline), and the
  // remainder is spread front-first.
  EXPECT_EQ(startup_split(60), (std::array<std::size_t, 3>{20, 20, 20}));
  EXPECT_EQ(startup_split(7), (std::array<std::size_t, 3>{3, 2, 2}));
  EXPECT_EQ(startup_split(8), (std::array<std::size_t, 3>{3, 3, 2}));
  EXPECT_EQ(startup_split(9), (std::array<std::size_t, 3>{3, 3, 3}));
  // Degenerate batchsizes are rounded up so each portion stays nonempty.
  EXPECT_EQ(startup_split(1), (std::array<std::size_t, 3>{1, 1, 1}));
  EXPECT_EQ(startup_split(2), (std::array<std::size_t, 3>{1, 1, 1}));
  EXPECT_EQ(startup_split(3), (std::array<std::size_t, 3>{1, 1, 1}));
  for (std::size_t b = 1; b <= 64; ++b) {
    const auto s = startup_split(b);
    EXPECT_EQ(s[0] + s[1] + s[2], std::max<std::size_t>(b, 3)) << b;
    EXPECT_GE(s[2], 1u) << b;
    EXPECT_GE(s[0], s[1]) << b;
    EXPECT_GE(s[1], s[2]) << b;
    EXPECT_LE(s[0] - s[2], 1u) << b;
  }
}

align::OverlapResult memo_result(bool accepted) {
  align::OverlapResult r;
  r.kind = accepted ? align::OverlapKind::kABDovetail
                    : align::OverlapKind::kNone;
  r.quality = accepted ? 0.9 : 0.0;
  return r;
}

pairgen::PromisingPair memo_pair(std::uint32_t a, std::uint32_t b,
                                 bool b_rc = false, std::uint32_t a_pos = 10,
                                 std::uint32_t b_pos = 4,
                                 std::uint32_t match_len = 30) {
  return {a, b, b_rc, match_len, a_pos, b_pos};
}

TEST(AlignMemo, DisabledNeverHits) {
  AlignMemo memo(0);
  memo.insert(memo_pair(1, 2), 0, memo_result(true), true);
  EXPECT_EQ(memo.lookup(memo_pair(1, 2), 0), nullptr);
  EXPECT_EQ(memo.stats().insertions, 0u);
  EXPECT_EQ(memo.stats().lookups, 0u);
}

TEST(AlignMemo, AcceptedHitsAcrossAnchors) {
  // An accepted verdict is reusable for ANY anchor of the same pair: the
  // only downstream effect of "accepted" is unite(a, b), which is
  // idempotent.
  AlignMemo memo(16);
  memo.insert(memo_pair(1, 2, false, 10, 4), 0, memo_result(true), true);
  const AlignMemo::Entry* e =
      memo.lookup(memo_pair(1, 2, false, 99, 7, 12), 5);
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->accepted);
  EXPECT_EQ(memo.stats().hits, 1u);
}

TEST(AlignMemo, RejectedHitsOnlyExactAnchorWindow) {
  // A rejection is anchor-specific: a different seed could still find an
  // acceptable overlap, so only the exact (b_rc, window, anchor) repeat
  // may reuse it.
  AlignMemo memo(16);
  memo.insert(memo_pair(1, 2, false, 10, 4, 30), 3, memo_result(false),
              false);
  EXPECT_NE(memo.lookup(memo_pair(1, 2, false, 10, 4, 30), 3), nullptr);
  EXPECT_EQ(memo.lookup(memo_pair(1, 2, false, 11, 4, 30), 3), nullptr);
  EXPECT_EQ(memo.lookup(memo_pair(1, 2, true, 10, 4, 30), 3), nullptr);
  EXPECT_EQ(memo.lookup(memo_pair(1, 2, false, 10, 4, 30), 4), nullptr);
  EXPECT_EQ(memo.lookup(memo_pair(1, 2, false, 10, 4, 31), 3), nullptr);
  EXPECT_EQ(memo.stats().lookups, 5u);
  EXPECT_EQ(memo.stats().hits, 1u);
}

TEST(AlignMemo, AcceptedNeverDisplacedByRejection) {
  AlignMemo memo(16);
  memo.insert(memo_pair(1, 2), 0, memo_result(true), true);
  memo.insert(memo_pair(1, 2), 7, memo_result(false), false);
  const AlignMemo::Entry* e = memo.lookup(memo_pair(1, 2), 9);
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->accepted);
}

TEST(AlignMemo, EvictsOnlyRejectedWhenFull) {
  AlignMemo memo(2);
  memo.insert(memo_pair(1, 2), 0, memo_result(true), true);
  memo.insert(memo_pair(3, 4), 0, memo_result(false), false);
  memo.insert(memo_pair(5, 6), 0, memo_result(false), false);
  // The rejected FIFO is at capacity: the next rejection evicts the
  // oldest rejected entry; the accepted entry is pinned throughout.
  memo.insert(memo_pair(7, 8), 0, memo_result(false), false);
  EXPECT_EQ(memo.stats().evictions, 1u);
  EXPECT_NE(memo.lookup(memo_pair(1, 2), 3), nullptr);
  EXPECT_EQ(memo.lookup(memo_pair(3, 4), 0), nullptr);
  EXPECT_NE(memo.lookup(memo_pair(5, 6), 0), nullptr);
  EXPECT_NE(memo.lookup(memo_pair(7, 8), 0), nullptr);
}

TEST(ConfigValidate, PsiBelowWindowRejected) {
  PaceConfig cfg = test_config();
  cfg.psi = 3;
  EXPECT_THROW(cfg.validate(), CheckError);
}

TEST(ConfigValidate, ZeroBatchRejected) {
  PaceConfig cfg = test_config();
  cfg.batchsize = 0;
  EXPECT_THROW(cfg.validate(), CheckError);
}

TEST(Sequential, RecoversGeneClustersOnCleanData) {
  auto wl = test_workload();
  auto res = cluster_sequential(wl.ests, test_config());
  auto labels = res.clusters.labels();
  auto pc = quality::count_pairs(labels, wl.truth);
  // Thresholds sit where the paper's own Table 2 lands (OQ 84.7-94.8,
  // CC 91.7-97.4, with under-prediction dominating over-prediction).
  EXPECT_GT(pc.overlap_quality(), 78.0);
  EXPECT_GT(pc.correlation(), 85.0);
  EXPECT_LT(pc.over_prediction(), 5.0);
  EXPECT_GE(pc.under_prediction(), pc.over_prediction());
}

TEST(Sequential, StatsAreCoherent) {
  auto wl = test_workload();
  auto res = cluster_sequential(wl.ests, test_config());
  const PaceStats& st = res.stats;
  // Every generated pair is either aligned or skipped.
  EXPECT_EQ(st.pairs_processed + st.pairs_skipped, st.pairs_generated);
  EXPECT_LE(st.pairs_accepted, st.pairs_processed);
  EXPECT_LE(st.merges, st.pairs_accepted);
  EXPECT_EQ(st.num_clusters, res.clusters.num_clusters());
  EXPECT_GT(st.dp_cells, 0u);
  EXPECT_GE(st.t_total, 0.0);
}

TEST(Sequential, DeterministicAcrossRuns) {
  auto wl = test_workload();
  auto a = cluster_sequential(wl.ests, test_config());
  auto b = cluster_sequential(wl.ests, test_config());
  EXPECT_EQ(a.clusters.labels(), b.clusters.labels());
  EXPECT_EQ(a.stats.pairs_processed, b.stats.pairs_processed);
}

TEST(Sequential, HotPathFlagsDoNotChangePartition) {
  // The hot-path engine is verdict-exact: memo hits and bounded early-exit
  // may skip DP work but never flip an accept/reject decision, so every
  // flag combination yields the identical partition.
  auto wl = test_workload();
  auto baseline_cfg = test_config();
  baseline_cfg.memo = false;
  baseline_cfg.bounded_align = false;
  auto base = cluster_sequential(wl.ests, baseline_cfg);
  for (bool memo : {false, true}) {
    for (bool bounded : {false, true}) {
      auto cfg = test_config();
      cfg.memo = memo;
      cfg.bounded_align = bounded;
      auto res = cluster_sequential(wl.ests, cfg);
      EXPECT_EQ(res.clusters.labels(), base.clusters.labels())
          << "memo=" << memo << " bounded=" << bounded;
      EXPECT_EQ(res.stats.pairs_accepted, base.stats.pairs_accepted)
          << "memo=" << memo << " bounded=" << bounded;
      // Skipping work can only reduce the cell count, never raise it.
      EXPECT_LE(res.stats.dp_cells, base.stats.dp_cells)
          << "memo=" << memo << " bounded=" << bounded;
    }
  }
}

TEST(Sequential, OrderedProcessingAlignsFewerPairsThanArbitrary) {
  // The §3.2 claim behind Fig 7: decreasing-match-length order lets the
  // cluster structure suppress redundant alignments.
  auto wl = test_workload(160);
  auto ordered = cluster_sequential(wl.ests, test_config(), {.arbitrary_order = false});
  auto arbitrary = cluster_sequential(wl.ests, test_config(), {.arbitrary_order = true});
  EXPECT_LT(ordered.stats.pairs_processed, arbitrary.stats.pairs_processed);
  // Same final partition either way: components of the acceptance graph.
  EXPECT_EQ(ordered.clusters.labels(), arbitrary.clusters.labels());
}

TEST(Sequential, SingleEstIsItsOwnCluster) {
  bio::EstSet one(std::vector<bio::Sequence>{
      {"only", "ACGTACGTGGCCAATTACGTACGTGGCCAATTACGT"}});
  auto res = cluster_sequential(one, test_config());
  EXPECT_EQ(res.stats.num_clusters, 1u);
  EXPECT_EQ(res.stats.pairs_generated, 0u);
}

TEST(Sequential, DisjointGenesStaySeparate) {
  // Two genes with no shared sequence; every EST error-free.
  sim::SimConfig cfg;
  cfg.num_genes = 2;
  cfg.num_ests = 30;
  cfg.sub_rate = cfg.ins_rate = cfg.del_rate = 0.0;
  cfg.est_len_mean = 200;
  cfg.est_len_min = 100;
  cfg.seed = 11;
  auto wl = sim::generate(cfg);
  auto res = cluster_sequential(wl.ests, test_config());
  auto pc = quality::count_pairs(res.clusters.labels(), wl.truth);
  EXPECT_EQ(pc.fp, 0u);  // no cross-gene merges on clean disjoint data
}

class ParallelPaceTest : public testing::TestWithParam<int> {};

TEST_P(ParallelPaceTest, MatchesSequentialPartitionExactly) {
  // The accepted-pair graph is a pure function of the generated pairs, so
  // the final partition must be identical for every rank count.
  const int p = GetParam();
  auto wl = test_workload();
  auto cfg = test_config();
  auto seq_labels = cluster_sequential(wl.ests, cfg).clusters.labels();

  std::mutex mu;
  std::vector<std::vector<std::uint32_t>> per_rank(p);
  mpr::Runtime rt(p, mpr::CostModel{});
  rt.run([&](mpr::Communicator& comm) {
    auto res = cluster_parallel(comm, wl.ests, cfg);
    std::lock_guard<std::mutex> lock(mu);
    per_rank[comm.rank()] = std::move(res.labels);
  });
  for (int r = 0; r < p; ++r) {
    EXPECT_EQ(per_rank[r], seq_labels) << "rank " << r << " at p=" << p;
  }
}

TEST_P(ParallelPaceTest, StatsAggregateCoherently) {
  const int p = GetParam();
  auto wl = test_workload();
  auto cfg = test_config();

  PaceStats stats;
  std::mutex mu;
  mpr::Runtime rt(p, mpr::CostModel{});
  rt.run([&](mpr::Communicator& comm) {
    auto res = cluster_parallel(comm, wl.ests, cfg);
    if (comm.rank() == 0) {
      std::lock_guard<std::mutex> lock(mu);
      stats = res.stats;
    }
  });
  EXPECT_EQ(stats.pairs_processed + stats.pairs_skipped,
            stats.pairs_generated);
  EXPECT_LE(stats.merges, stats.pairs_accepted);
  EXPECT_GT(stats.num_clusters, 0u);
  EXPECT_GT(stats.t_total, 0.0);
  EXPECT_GE(stats.t_gst, 0.0);
  EXPECT_GE(stats.t_align, 0.0);
  if (p > 1) {
    EXPECT_GE(stats.master_busy_fraction, 0.0);
    EXPECT_LE(stats.master_busy_fraction, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(RankCounts, ParallelPaceTest,
                         testing::Values(1, 2, 3, 5, 9));

TEST(Parallel, DeterministicAcrossRuns) {
  const int p = 4;
  auto wl = test_workload();
  auto cfg = test_config();
  std::vector<std::uint32_t> first, second;
  double t_first = 0, t_second = 0;
  for (int run = 0; run < 2; ++run) {
    mpr::Runtime rt(p, mpr::CostModel{});
    std::vector<std::uint32_t> labels;
    double t = 0;
    std::mutex mu;
    rt.run([&](mpr::Communicator& comm) {
      auto res = cluster_parallel(comm, wl.ests, cfg);
      if (comm.rank() == 0) {
        std::lock_guard<std::mutex> lock(mu);
        labels = res.labels;
        t = res.stats.t_total;
      }
    });
    if (run == 0) {
      first = labels;
      t_first = t;
    } else {
      second = labels;
      t_second = t;
    }
  }
  EXPECT_EQ(first, second);
  EXPECT_DOUBLE_EQ(t_first, t_second);  // virtual time is deterministic too
}

TEST(Parallel, TinyDatasetTerminates) {
  // Fewer ESTs than slaves; most slaves are passive from the start. The
  // shared sequence must exceed min_overlap (40) for the merge to pass.
  const std::string shared =
      "ACGTACGTGGCCAATTACGTACGTGGCCAATTACGTTGCAGGTTAACCGGATCCAA";
  bio::EstSet two({{"a", shared}, {"b", shared}});
  auto cfg = test_config();
  cfg.psi = 24;
  mpr::Runtime rt(6, mpr::CostModel{});
  std::vector<std::uint32_t> labels;
  std::mutex mu;
  rt.run([&](mpr::Communicator& comm) {
    auto res = cluster_parallel(comm, two, cfg);
    if (comm.rank() == 0) {
      std::lock_guard<std::mutex> lock(mu);
      labels = res.labels;
    }
  });
  ASSERT_EQ(labels.size(), 2u);
  EXPECT_EQ(labels[0], labels[1]);  // identical ESTs merge
}

TEST(Parallel, SingleSlaveWorks) {
  auto wl = test_workload(60);
  auto cfg = test_config();
  auto seq_labels = cluster_sequential(wl.ests, cfg).clusters.labels();
  mpr::Runtime rt(2, mpr::CostModel{});
  std::vector<std::uint32_t> labels;
  std::mutex mu;
  rt.run([&](mpr::Communicator& comm) {
    auto res = cluster_parallel(comm, wl.ests, cfg);
    std::lock_guard<std::mutex> lock(mu);
    if (comm.rank() == 0) labels = res.labels;
  });
  EXPECT_EQ(labels, seq_labels);
}

TEST(Parallel, SmallBatchsizeStillCorrect) {
  auto wl = test_workload(80);
  auto cfg = test_config();
  cfg.batchsize = 3;
  cfg.pairbuf_capacity = 8;
  cfg.workbuf_capacity = 64;
  auto seq_labels = cluster_sequential(wl.ests, cfg).clusters.labels();
  mpr::Runtime rt(5, mpr::CostModel{});
  std::vector<std::uint32_t> labels;
  std::mutex mu;
  rt.run([&](mpr::Communicator& comm) {
    auto res = cluster_parallel(comm, wl.ests, cfg);
    std::lock_guard<std::mutex> lock(mu);
    if (comm.rank() == 0) labels = res.labels;
  });
  EXPECT_EQ(labels, seq_labels);
}

TEST(Parallel, HotPathFlagsDoNotChangePartition) {
  // Same verdict-exactness claim under the master/slave protocol: memo,
  // bounded kernel and adaptive batching in any combination produce the
  // partition of the all-off legacy configuration.
  const int p = 4;
  auto wl = test_workload();
  auto legacy = test_config();
  legacy.memo = false;
  legacy.bounded_align = false;
  legacy.adaptive_batch = false;
  auto want = cluster_sequential(wl.ests, legacy).clusters.labels();

  struct Variant {
    bool memo, bounded, adaptive;
  };
  for (const Variant v : {Variant{false, false, false},
                          Variant{true, false, false},
                          Variant{false, true, false},
                          Variant{false, false, true},
                          Variant{true, true, true}}) {
    auto cfg = test_config();
    cfg.memo = v.memo;
    cfg.bounded_align = v.bounded;
    cfg.adaptive_batch = v.adaptive;
    mpr::Runtime rt(p, mpr::CostModel{});
    std::vector<std::uint32_t> labels;
    std::mutex mu;
    rt.run([&](mpr::Communicator& comm) {
      auto res = cluster_parallel(comm, wl.ests, cfg);
      std::lock_guard<std::mutex> lock(mu);
      if (comm.rank() == 0) labels = res.labels;
    });
    EXPECT_EQ(labels, want) << "memo=" << v.memo << " bounded=" << v.bounded
                            << " adaptive=" << v.adaptive;
  }
}

TEST(Parallel, VirtualTimeDecreasesWithMoreRanks) {
  // The headline claim: run-times scale with the number of processors.
  auto wl = test_workload(200, 31);
  auto cfg = test_config();
  auto run_at = [&](int p) {
    mpr::Runtime rt(p, mpr::CostModel{});
    double t = 0;
    std::mutex mu;
    rt.run([&](mpr::Communicator& comm) {
      auto res = cluster_parallel(comm, wl.ests, cfg);
      if (comm.rank() == 0) {
        std::lock_guard<std::mutex> lock(mu);
        t = res.stats.t_total;
      }
    });
    return t;
  };
  double t2 = run_at(2);   // one slave
  double t5 = run_at(5);   // four slaves
  EXPECT_LT(t5, t2);
  EXPECT_GT(t5, t2 / 8.0);  // sublinear, not magic
}

}  // namespace
}  // namespace estclust::pace
