#include <gtest/gtest.h>

#include "quality/metrics.hpp"
#include "quality/report.hpp"
#include "util/check.hpp"
#include "util/prng.hpp"

namespace estclust::quality {
namespace {

TEST(PairCounts, PerfectClustering) {
  std::vector<std::uint32_t> truth = {0, 0, 1, 1, 2};
  PairCounts pc = count_pairs(truth, truth);
  EXPECT_EQ(pc.fp, 0u);
  EXPECT_EQ(pc.fn, 0u);
  EXPECT_DOUBLE_EQ(pc.overlap_quality(), 100.0);
  EXPECT_DOUBLE_EQ(pc.over_prediction(), 0.0);
  EXPECT_DOUBLE_EQ(pc.under_prediction(), 0.0);
  EXPECT_DOUBLE_EQ(pc.correlation(), 100.0);
}

TEST(PairCounts, LabelsNeedNotMatchNumerically) {
  std::vector<std::uint32_t> pred = {7, 7, 9, 9};
  std::vector<std::uint32_t> truth = {0, 0, 1, 1};
  PairCounts pc = count_pairs(pred, truth);
  EXPECT_EQ(pc.fp, 0u);
  EXPECT_EQ(pc.fn, 0u);
  EXPECT_EQ(pc.tp, 2u);
}

TEST(PairCounts, AllSingletonsPredicted) {
  std::vector<std::uint32_t> pred = {0, 1, 2, 3};
  std::vector<std::uint32_t> truth = {0, 0, 1, 1};
  PairCounts pc = count_pairs(pred, truth);
  EXPECT_EQ(pc.tp, 0u);
  EXPECT_EQ(pc.fp, 0u);
  EXPECT_EQ(pc.fn, 2u);
  EXPECT_DOUBLE_EQ(pc.under_prediction(), 100.0);
  EXPECT_DOUBLE_EQ(pc.over_prediction(), 0.0);  // no predicted pairs
}

TEST(PairCounts, EverythingMergedPredicted) {
  std::vector<std::uint32_t> pred = {5, 5, 5, 5};
  std::vector<std::uint32_t> truth = {0, 0, 1, 1};
  PairCounts pc = count_pairs(pred, truth);
  EXPECT_EQ(pc.tp, 2u);
  EXPECT_EQ(pc.fp, 4u);
  EXPECT_EQ(pc.fn, 0u);
  EXPECT_NEAR(pc.over_prediction(), 100.0 * 4 / 6, 1e-9);
}

TEST(PairCounts, HandComputedMixedCase) {
  // Elements 0-4. Truth: {0,1,2} {3,4}. Pred: {0,1} {2,3} {4}.
  std::vector<std::uint32_t> truth = {0, 0, 0, 1, 1};
  std::vector<std::uint32_t> pred = {0, 0, 1, 1, 2};
  PairCounts pc = count_pairs(pred, truth);
  // Predicted pairs: (0,1) tp, (2,3) fp. Truth pairs: (0,1),(0,2),(1,2),
  // (3,4) -> fn = 3. Total pairs C(5,2)=10 -> tn = 10-1-1-3 = 5.
  EXPECT_EQ(pc.tp, 1u);
  EXPECT_EQ(pc.fp, 1u);
  EXPECT_EQ(pc.fn, 3u);
  EXPECT_EQ(pc.tn, 5u);
  EXPECT_NEAR(pc.overlap_quality(), 20.0, 1e-9);
}

TEST(PairCounts, FastMatchesReferenceOnRandomPartitions) {
  Prng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    std::size_t n = 30 + rng.uniform(40);
    std::vector<std::uint32_t> pred(n), truth(n);
    for (auto& x : pred) x = static_cast<std::uint32_t>(rng.uniform(6));
    for (auto& x : truth) x = static_cast<std::uint32_t>(rng.uniform(5));
    PairCounts fast = count_pairs(pred, truth);
    PairCounts ref = count_pairs_reference(pred, truth);
    EXPECT_EQ(fast.tp, ref.tp);
    EXPECT_EQ(fast.fp, ref.fp);
    EXPECT_EQ(fast.fn, ref.fn);
    EXPECT_EQ(fast.tn, ref.tn);
  }
}

TEST(PairCounts, TotalsAlwaysChooseTwo) {
  Prng rng(4);
  std::size_t n = 100;
  std::vector<std::uint32_t> pred(n), truth(n);
  for (auto& x : pred) x = static_cast<std::uint32_t>(rng.uniform(10));
  for (auto& x : truth) x = static_cast<std::uint32_t>(rng.uniform(10));
  PairCounts pc = count_pairs(pred, truth);
  EXPECT_EQ(pc.total(), n * (n - 1) / 2);
}

TEST(PairCounts, MismatchedLengthsRejected) {
  EXPECT_THROW(count_pairs({0, 1}, {0}), CheckError);
}

TEST(PairCounts, CorrelationSignReflectsQuality) {
  // Anti-correlated clustering: predict exactly the complement structure.
  std::vector<std::uint32_t> truth = {0, 0, 1, 1};
  std::vector<std::uint32_t> pred = {0, 1, 0, 1};
  PairCounts pc = count_pairs(pred, truth);
  EXPECT_LT(pc.correlation(), 0.0);
}

TEST(PairCounts, SingleElementDegenerate) {
  PairCounts pc = count_pairs({0}, {0});
  EXPECT_EQ(pc.total(), 0u);
  EXPECT_DOUBLE_EQ(pc.overlap_quality(), 100.0);
  EXPECT_DOUBLE_EQ(pc.correlation(), 100.0);
}

TEST(Report, PerfectClusteringIsCleanEverywhere) {
  std::vector<std::uint32_t> truth = {0, 0, 1, 1, 2};
  auto r = build_report(truth, truth);
  EXPECT_EQ(r.impure_clusters(), 0u);
  EXPECT_EQ(r.fragmented_truths(), 0u);
  EXPECT_DOUBLE_EQ(r.weighted_purity(), 1.0);
  ASSERT_EQ(r.clusters.size(), 3u);
  EXPECT_EQ(r.clusters[0].size, 2u);  // sorted by size desc
}

TEST(Report, DetectsImpureCluster) {
  // Predicted cluster 9 mixes genes 0 and 1 (3:1).
  std::vector<std::uint32_t> pred = {9, 9, 9, 9, 5};
  std::vector<std::uint32_t> truth = {0, 0, 0, 1, 1};
  auto r = build_report(pred, truth);
  EXPECT_EQ(r.impure_clusters(), 1u);
  ASSERT_EQ(r.clusters.size(), 2u);
  EXPECT_EQ(r.clusters[0].label, 9u);
  EXPECT_EQ(r.clusters[0].truth_clusters, 2u);
  EXPECT_DOUBLE_EQ(r.clusters[0].purity, 0.75);
}

TEST(Report, DetectsFragmentedTruth) {
  // Gene 0's four members land in three predicted clusters.
  std::vector<std::uint32_t> pred = {1, 1, 2, 3};
  std::vector<std::uint32_t> truth = {0, 0, 0, 0};
  auto r = build_report(pred, truth);
  EXPECT_EQ(r.fragmented_truths(), 1u);
  ASSERT_EQ(r.truths.size(), 1u);
  EXPECT_EQ(r.truths[0].fragments, 3u);
  EXPECT_EQ(r.truths[0].size, 4u);
}

TEST(Report, WeightedPurityMixesClusterSizes) {
  // One pure 4-cluster, one half-pure 2-cluster: (4*1 + 2*0.5)/6.
  std::vector<std::uint32_t> pred = {1, 1, 1, 1, 2, 2};
  std::vector<std::uint32_t> truth = {0, 0, 0, 0, 1, 2};
  auto r = build_report(pred, truth);
  EXPECT_NEAR(r.weighted_purity(), 5.0 / 6.0, 1e-12);
}

TEST(Report, PairCountsMatchStandaloneMetric) {
  Prng rng(11);
  std::vector<std::uint32_t> pred(60), truth(60);
  for (auto& x : pred) x = static_cast<std::uint32_t>(rng.uniform(7));
  for (auto& x : truth) x = static_cast<std::uint32_t>(rng.uniform(5));
  auto r = build_report(pred, truth);
  auto pc = count_pairs(pred, truth);
  EXPECT_EQ(r.pairs.tp, pc.tp);
  EXPECT_EQ(r.pairs.fn, pc.fn);
}

}  // namespace
}  // namespace estclust::quality
