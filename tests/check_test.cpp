// Tests for the runtime-verification layer (src/check/): injected
// deadlocks must be detected with a wait-for-graph report instead of
// hanging, the finalize audits must flag hygiene violations, and checking
// must never perturb the virtual-time results.
#include <gtest/gtest.h>

#include <future>
#include <thread>

#include "check/checker.hpp"
#include "mpr/communicator.hpp"
#include "mpr/runtime.hpp"

namespace estclust::check {
namespace {

using mpr::Buffer;
using mpr::BufReader;
using mpr::BufWriter;
using mpr::CheckMode;
using mpr::Communicator;
using mpr::CostModel;
using mpr::Runtime;

/// Runs rank_main under a strict checker and returns the CheckError
/// message (failing the test if no CheckError is thrown).
std::string run_expect_check_error(
    int nranks, const std::function<void(Communicator&)>& rank_main,
    CheckMode mode = CheckMode::kStrict) {
  Runtime rt(nranks, CostModel{});
  enable_checking(rt, mode);
  try {
    rt.run(rank_main);
  } catch (const CheckError& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected a CheckError";
  return "";
}

TEST(DeadlockDetection, RecvWithNoSenderIsDetectedNotHung) {
  const std::string report = run_expect_check_error(2, [](Communicator& c) {
    if (c.rank() == 0) c.recv(1, 7);  // rank 1 exits without sending
  });
  EXPECT_NE(report.find("deadlock"), std::string::npos) << report;
  EXPECT_NE(report.find("rank 0: BLOCKED"), std::string::npos) << report;
  EXPECT_NE(report.find("src=1 tag=7"), std::string::npos) << report;
  EXPECT_NE(report.find("rank 1: FINISHED"), std::string::npos) << report;
}

TEST(DeadlockDetection, BarrierWithMissingRankReportsTheBarrier) {
  const std::string report = run_expect_check_error(3, [](Communicator& c) {
    if (c.rank() != 2) c.barrier();  // rank 2 never joins the barrier
  });
  EXPECT_NE(report.find("deadlock"), std::string::npos) << report;
  EXPECT_NE(report.find("mpr.barrier"), std::string::npos) << report;
  EXPECT_NE(report.find("rank 2: FINISHED"), std::string::npos) << report;
  // The stalled receive names the missing rank and the internal tag.
  EXPECT_NE(report.find("src=2 tag=internal+0"), std::string::npos) << report;
}

TEST(DeadlockDetection, CyclicPairwiseRecvReportsTheCycle) {
  const std::string report = run_expect_check_error(3, [](Communicator& c) {
    // 0 waits on 1, 1 waits on 2, 2 waits on 0: a pure wait-for cycle.
    c.recv((c.rank() + 1) % 3, 0);
  });
  EXPECT_NE(report.find("wait-for cycle:"), std::string::npos) << report;
  // All three ranks are on the cycle, whichever rotation gets printed.
  EXPECT_NE(report.find("->"), std::string::npos) << report;
  for (int r = 0; r < 3; ++r) {
    EXPECT_NE(report.find("rank " + std::to_string(r) + ": BLOCKED"),
              std::string::npos)
        << report;
  }
}

TEST(DeadlockDetection, TagMismatchShowsPendingMailboxContents) {
  const std::string report = run_expect_check_error(2, [](Communicator& c) {
    if (c.rank() == 1) {
      c.send(0, 6, Buffer(16));  // wrong tag: receiver wants 5
    } else {
      c.recv(1, 5);
    }
  });
  EXPECT_NE(report.find("rank 0: BLOCKED"), std::string::npos) << report;
  EXPECT_NE(report.find("src=1 tag=5"), std::string::npos) << report;
  // The undeliverable message is listed with the report.
  EXPECT_NE(report.find("src=1 tag=6 16B"), std::string::npos) << report;
}

TEST(DeadlockDetection, MasterSlaveLostReplyNamesTheProtocolStep) {
  // A miniature of the pace protocol bug class: the "master" collects one
  // report then forgets to reply, leaving the slave waiting forever on a
  // labeled receive.
  const std::string report = run_expect_check_error(2, [](Communicator& c) {
    if (c.rank() == 1) {
      c.send(0, 1, Buffer(8));
      mpr::CheckOpScope scope(c, "pace.slave.await_assign");
      c.recv(0, 2);
    } else {
      c.recv(1, 1);  // takes the report, never assigns
    }
  });
  EXPECT_NE(report.find("pace.slave.await_assign"), std::string::npos)
      << report;
}

TEST(DeadlockDetection, WarnModeStillAbortsDeadlocks) {
  // Deadlock is unrecoverable: even warn mode must abort with the report
  // rather than hang.
  const std::string report = run_expect_check_error(
      2, [](Communicator& c) { c.recv((c.rank() + 1) % 2, 0); },
      CheckMode::kWarn);
  EXPECT_NE(report.find("deadlock"), std::string::npos) << report;
}

TEST(DeadlockDetection, HealthyTrafficDoesNotTriggerFalsePositives) {
  // Heavy mixed traffic with transient blocking: ranks block and wake
  // repeatedly; the detector must stay quiet.
  Runtime rt(4, CostModel{});
  Checker* checker = enable_checking(rt, CheckMode::kStrict);
  rt.run([](Communicator& c) {
    for (int round = 0; round < 50; ++round) {
      const int next = (c.rank() + 1) % c.size();
      const int prev = (c.rank() + c.size() - 1) % c.size();
      BufWriter w;
      w.put<std::uint32_t>(round);
      c.send(next, 3, w.take());
      mpr::Message m = c.recv(prev, 3);
      BufReader r(m.payload);
      EXPECT_EQ(r.get<std::uint32_t>(), static_cast<std::uint32_t>(round));
      if (round % 10 == 0) c.barrier();
    }
  });
  EXPECT_FALSE(checker->failed());
  EXPECT_TRUE(checker->findings().empty());
}

TEST(HygieneAudit, UnreceivedMessageAtFinalizeIsFlagged) {
  const std::string report = run_expect_check_error(2, [](Communicator& c) {
    if (c.rank() == 0) c.send(1, 9, Buffer(32));
    // Rank 1 exits without receiving: the run completes, finalize flags it.
  });
  EXPECT_NE(report.find("unreceived"), std::string::npos) << report;
  EXPECT_NE(report.find("tag=9"), std::string::npos) << report;
  EXPECT_NE(report.find("tag 9: 1 sent but only 0 received"),
            std::string::npos)
      << report;
}

TEST(HygieneAudit, UnbalancedCollectiveParticipationIsFlagged) {
  // Rank 0 broadcasts (a send-only role for the root when p=2 and the
  // other rank never joins): the run completes but finalize must flag the
  // collective imbalance and the orphaned internal-tag message.
  const std::string report = run_expect_check_error(2, [](Communicator& c) {
    if (c.rank() == 0) c.broadcast(Buffer(8));
  });
  EXPECT_NE(report.find("unbalanced collective participation"),
            std::string::npos)
      << report;
  EXPECT_NE(report.find("rank0=1 rank1=0"), std::string::npos) << report;
}

TEST(HygieneAudit, WarnModeCollectsFindingsWithoutThrowing) {
  Runtime rt(2, CostModel{});
  Checker* checker = enable_checking(rt, CheckMode::kWarn);
  rt.run([](Communicator& c) {
    if (c.rank() == 0) c.send(1, 4, Buffer(8));
  });
  ASSERT_FALSE(checker->failed());
  const auto findings = checker->findings();
  ASSERT_FALSE(findings.empty());
  EXPECT_NE(findings[0].find("unreceived"), std::string::npos);
}

TEST(HygieneAudit, CleanRunHasNoFindings) {
  Runtime rt(3, CostModel{});
  Checker* checker = enable_checking(rt, CheckMode::kStrict);
  rt.run([](Communicator& c) {
    c.barrier();
    c.allreduce_sum(std::uint64_t{1});
    if (c.rank() == 0) c.send(1, 0, Buffer(4));
    if (c.rank() == 1) c.recv(0, 0);
    c.barrier();
  });
  EXPECT_TRUE(checker->findings().empty());
}

TEST(ClockAudit, ChargedWorkSatisfiesTheSplitInvariant) {
  Runtime rt(2, CostModel{});
  Checker* checker = enable_checking(rt, CheckMode::kStrict);
  rt.run([](Communicator& c) {
    c.charge(1e-6, 1000);
    c.barrier();
    c.charge(2e-6, 500);
    c.barrier();
  });
  EXPECT_TRUE(checker->findings().empty());
}

TEST(RaceGuard, ForeignThreadMetricsAccessIsCaught) {
  Runtime rt(2, CostModel{});
  enable_checking(rt, CheckMode::kStrict);
  std::string caught;
  rt.run([&](Communicator& c) {
    c.barrier();
    if (c.rank() == 0) {
      // A helper thread reaching into the rank's registry is exactly the
      // single-consumer violation the lockset guard exists for.
      std::promise<std::string> p;
      std::thread intruder([&] {
        try {
          c.metrics();
          p.set_value("");
        } catch (const CheckError& e) {
          p.set_value(e.what());
        }
      });
      caught = p.get_future().get();
      intruder.join();
    }
    c.barrier();
  });
  EXPECT_NE(caught.find("foreign thread"), std::string::npos) << caught;
}

TEST(Determinism, CheckedRunMatchesUncheckedVirtualTimes) {
  // The checker must never touch a clock: virtual run-times (and thus all
  // modeled results) are bit-identical with checking on and off.
  auto run_once = [](CheckMode mode) {
    Runtime rt(5, CostModel{});
    if (mode != CheckMode::kOff) enable_checking(rt, mode);
    rt.run([](Communicator& c) {
      for (int i = 0; i < 8; ++i) {
        c.charge(1e-6, (c.rank() + 1) * 7);
        BufWriter w;
        w.put<std::uint64_t>(i);
        c.send((c.rank() + 1) % c.size(), 2, w.take());
        c.recv((c.rank() + c.size() - 1) % c.size(), 2);
        c.allreduce_max(static_cast<double>(c.rank() + i));
      }
    });
    return rt.elapsed_vtime();
  };
  const double off = run_once(CheckMode::kOff);
  EXPECT_EQ(off, run_once(CheckMode::kWarn));
  EXPECT_EQ(off, run_once(CheckMode::kStrict));
}

TEST(CheckModeParsing, AcceptsTheThreeModesRejectsJunk) {
  CheckMode m = CheckMode::kOff;
  EXPECT_TRUE(parse_check_mode("strict", &m));
  EXPECT_EQ(m, CheckMode::kStrict);
  EXPECT_TRUE(parse_check_mode("warn", &m));
  EXPECT_EQ(m, CheckMode::kWarn);
  EXPECT_TRUE(parse_check_mode("off", &m));
  EXPECT_EQ(m, CheckMode::kOff);
  EXPECT_FALSE(parse_check_mode("loose", &m));
}

TEST(BufferSafety, BufWriterRejectsWritesPastItsCap) {
  BufWriter w(64);
  w.put_vec(std::vector<std::uint64_t>(7));  // 8 + 56 = 64 bytes: exactly fits
  EXPECT_EQ(w.size(), 64u);
  BufWriter w2(64);
  EXPECT_THROW(w2.put_vec(std::vector<std::uint64_t>(8)), CheckError);
  BufWriter w3(8);
  w3.put<std::uint64_t>(1);
  EXPECT_THROW(w3.put<std::uint8_t>(0), CheckError);
  EXPECT_THROW(BufWriter(4).put_string("hello"), CheckError);
}

TEST(BufferSafety, BufReaderRejectsHostileVectorLengths) {
  // A corrupt 2^61 length used to overflow len * sizeof(T) and slip past
  // the bound; it must fail the check, not reach the allocator.
  BufWriter w;
  w.put<std::uint64_t>(std::uint64_t{1} << 61);
  Buffer b = w.take();
  BufReader r(b);
  EXPECT_THROW(r.get_vec<std::uint64_t>(), CheckError);
  BufReader r2(b);
  EXPECT_THROW(r2.get_string(), CheckError);
}

}  // namespace
}  // namespace estclust::check
