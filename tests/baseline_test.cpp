#include <gtest/gtest.h>

#include "baseline/greedy.hpp"
#include "pace/sequential.hpp"
#include "quality/metrics.hpp"
#include "sim/workload.hpp"
#include "util/check.hpp"

namespace estclust::baseline {
namespace {

sim::Workload test_workload(std::size_t ests = 120, std::uint64_t seed = 5) {
  sim::SimConfig cfg;
  cfg.num_genes = 8;
  cfg.num_ests = ests;
  cfg.est_len_mean = 220;
  cfg.est_len_stddev = 40;
  cfg.est_len_min = 80;
  cfg.seed = seed;
  return sim::generate(cfg);
}

BaselineConfig test_config() {
  BaselineConfig cfg;
  cfg.kmer = 14;
  cfg.overlap.band = 8;
  cfg.overlap.min_quality = 0.75;
  cfg.overlap.min_overlap = 40;
  cfg.full_dp = false;  // fast kernel for most tests
  return cfg;
}

TEST(Baseline, RecoversGeneClusters) {
  auto wl = test_workload();
  auto res = cluster_baseline(wl.ests, test_config());
  EXPECT_FALSE(res.stats.out_of_memory);
  auto pc = quality::count_pairs(res.clusters.labels(), wl.truth);
  EXPECT_GT(pc.overlap_quality(), 80.0);
  EXPECT_GT(pc.correlation(), 85.0);
}

TEST(Baseline, StatsCoherent) {
  auto wl = test_workload();
  auto res = cluster_baseline(wl.ests, test_config());
  const BaselineStats& st = res.stats;
  EXPECT_GT(st.candidate_pairs, 0u);
  EXPECT_LE(st.pairs_processed, st.candidate_pairs);
  EXPECT_LE(st.pairs_accepted, st.pairs_processed);
  EXPECT_LE(st.merges, st.pairs_accepted);
  EXPECT_GT(st.peak_bytes, 0u);
  EXPECT_EQ(st.num_clusters, res.clusters.num_clusters());
}

TEST(Baseline, MemoryCapAborts) {
  auto wl = test_workload(200);
  auto cfg = test_config();
  cfg.memory_cap_bytes = 256;  // absurdly small: must trip
  auto res = cluster_baseline(wl.ests, cfg);
  EXPECT_TRUE(res.stats.out_of_memory);
  // Aborted run leaves the identity clustering.
  EXPECT_EQ(res.stats.num_clusters, wl.ests.num_ests());
}

TEST(Baseline, UnlimitedMemoryCompletes) {
  auto wl = test_workload(60);
  auto cfg = test_config();
  cfg.memory_cap_bytes = 0;
  auto res = cluster_baseline(wl.ests, cfg);
  EXPECT_FALSE(res.stats.out_of_memory);
}

TEST(Baseline, MaterializesMorePairsThanPaceAligns) {
  // The architectural contrast: the baseline stores every candidate up
  // front and aligns in arbitrary order, while pace's ordering + cluster
  // check suppresses most alignments.
  auto wl = test_workload(160);
  auto base = cluster_baseline(wl.ests, test_config());

  pace::PaceConfig pcfg;
  pcfg.gst.window = 6;
  pcfg.psi = 24;
  pcfg.overlap = test_config().overlap;
  auto ours = pace::cluster_sequential(wl.ests, pcfg);

  EXPECT_GT(base.stats.pairs_processed, ours.stats.pairs_processed);
}

TEST(Baseline, ComparableQualityToPace) {
  // Table 2's point: the two systems land close on quality; the win is
  // time and memory, not accuracy.
  auto wl = test_workload(150, 17);
  auto base = cluster_baseline(wl.ests, test_config());

  pace::PaceConfig pcfg;
  pcfg.gst.window = 6;
  pcfg.psi = 24;
  pcfg.overlap = test_config().overlap;
  auto ours = pace::cluster_sequential(wl.ests, pcfg);

  auto pc_base = quality::count_pairs(base.clusters.labels(), wl.truth);
  auto pc_ours = quality::count_pairs(ours.clusters.labels(), wl.truth);
  EXPECT_NEAR(pc_base.correlation(), pc_ours.correlation(), 10.0);
}

TEST(Baseline, DeterministicAcrossRuns) {
  auto wl = test_workload(80);
  auto a = cluster_baseline(wl.ests, test_config());
  auto b = cluster_baseline(wl.ests, test_config());
  EXPECT_EQ(a.clusters.labels(), b.clusters.labels());
  EXPECT_EQ(a.stats.candidate_pairs, b.stats.candidate_pairs);
}

TEST(Baseline, RepeatMaskingBoundsLowComplexityBlowup) {
  // Poly-A ESTs would otherwise produce quadratic candidates.
  std::vector<bio::Sequence> seqs;
  for (int i = 0; i < 30; ++i) {
    seqs.push_back({"p" + std::to_string(i), std::string(120, 'A')});
  }
  bio::EstSet ests(std::move(seqs));
  auto cfg = test_config();
  cfg.max_kmer_occ = 8;
  auto res = cluster_baseline(ests, cfg);
  // All k-mer buckets exceed the occupancy cap, so no candidates at all.
  EXPECT_EQ(res.stats.candidate_pairs, 0u);
}

TEST(Baseline, FullDpDoesQuadraticallyMoreCellWork) {
  // The serial tools' full-matrix DP versus the paper's banded anchored
  // extension: identical candidates, vastly more cells.
  auto wl = test_workload(50);
  auto fast_cfg = test_config();
  auto full_cfg = test_config();
  full_cfg.full_dp = true;
  auto fast = cluster_baseline(wl.ests, fast_cfg);
  auto full = cluster_baseline(wl.ests, full_cfg);
  EXPECT_EQ(fast.stats.candidate_pairs, full.stats.candidate_pairs);
  EXPECT_GT(full.stats.dp_cells, 5 * fast.stats.dp_cells);
}

TEST(Baseline, RejectsSillyKmer) {
  auto wl = test_workload(20);
  auto cfg = test_config();
  cfg.kmer = 2;
  EXPECT_THROW(cluster_baseline(wl.ests, cfg), CheckError);
}

}  // namespace
}  // namespace estclust::baseline
