#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "mpr/communicator.hpp"
#include "mpr/message.hpp"
#include "mpr/runtime.hpp"
#include "util/check.hpp"

namespace estclust::mpr {
namespace {

CostModel test_cm() {
  CostModel cm;  // defaults are fine; tests only check relative behaviour
  return cm;
}

TEST(BufReadWrite, PodRoundTrip) {
  BufWriter w;
  w.put<std::uint32_t>(7);
  w.put<double>(2.5);
  w.put<std::int64_t>(-9);
  Buffer b = w.take();
  BufReader r(b);
  EXPECT_EQ(r.get<std::uint32_t>(), 7u);
  EXPECT_DOUBLE_EQ(r.get<double>(), 2.5);
  EXPECT_EQ(r.get<std::int64_t>(), -9);
  EXPECT_TRUE(r.exhausted());
}

TEST(BufReadWrite, StringAndVectorRoundTrip) {
  BufWriter w;
  w.put_string("hello");
  w.put_vec<std::uint16_t>({1, 2, 3});
  Buffer b = w.take();
  BufReader r(b);
  EXPECT_EQ(r.get_string(), "hello");
  EXPECT_EQ(r.get_vec<std::uint16_t>(), (std::vector<std::uint16_t>{1, 2, 3}));
}

TEST(BufReadWrite, UnderflowThrows) {
  BufWriter w;
  w.put<std::uint8_t>(1);
  Buffer b = w.take();
  BufReader r(b);
  EXPECT_THROW(r.get<std::uint64_t>(), CheckError);
}

TEST(BufReadWrite, EmptyStringAndVector) {
  BufWriter w;
  w.put_string("");
  w.put_vec<std::uint64_t>({});
  Buffer b = w.take();
  BufReader r(b);
  EXPECT_EQ(r.get_string(), "");
  EXPECT_TRUE(r.get_vec<std::uint64_t>().empty());
}

TEST(Mailbox, FifoWithinMatches) {
  Mailbox mb;
  for (int i = 0; i < 3; ++i) {
    Message m;
    m.src = 0;
    m.tag = 5;
    m.payload = {static_cast<std::uint8_t>(i)};
    mb.push(std::move(m));
  }
  for (int i = 0; i < 3; ++i) {
    Message m = mb.pop(kAnySource, 5);
    EXPECT_EQ(m.payload[0], i);
  }
}

TEST(Mailbox, TagAndSourceFiltering) {
  Mailbox mb;
  Message a;
  a.src = 1;
  a.tag = 10;
  mb.push(std::move(a));
  Message b;
  b.src = 2;
  b.tag = 20;
  mb.push(std::move(b));
  EXPECT_TRUE(mb.probe(2, 20));
  EXPECT_FALSE(mb.probe(2, 10));
  Message got = mb.pop(2, kAnyTag);
  EXPECT_EQ(got.tag, 20);
  EXPECT_EQ(mb.size(), 1u);
}

TEST(Mailbox, TryPopReturnsNulloptWhenEmpty) {
  Mailbox mb;
  EXPECT_FALSE(mb.try_pop(kAnySource, kAnyTag).has_value());
}

TEST(Mailbox, WildcardTagSkipsInternalMessages) {
  Mailbox mb;
  Message internal;
  internal.src = 0;
  internal.tag = kInternalTagBase + 3;
  mb.push(std::move(internal));
  EXPECT_FALSE(mb.try_pop(kAnySource, kAnyTag).has_value());
  EXPECT_TRUE(mb.try_pop(kAnySource, kInternalTagBase + 3).has_value());
}

TEST(Runtime, PingPongDeliversPayload) {
  Runtime rt(2, test_cm());
  rt.run([](Communicator& comm) {
    if (comm.rank() == 0) {
      BufWriter w;
      w.put<std::uint64_t>(123);
      comm.send(1, 0, w.take());
      Message m = comm.recv(1, 1);
      BufReader r(m.payload);
      EXPECT_EQ(r.get<std::uint64_t>(), 124u);
    } else {
      Message m = comm.recv(0, 0);
      BufReader r(m.payload);
      BufWriter w;
      w.put<std::uint64_t>(r.get<std::uint64_t>() + 1);
      comm.send(0, 1, w.take());
    }
  });
  EXPECT_GT(rt.elapsed_vtime(), 0.0);
}

TEST(Runtime, RethrowsRankExceptions) {
  Runtime rt(2, test_cm());
  EXPECT_THROW(rt.run([](Communicator& comm) {
                 if (comm.rank() == 1) ESTCLUST_CHECK(false);
                 // rank 0 returns without communicating
               }),
               CheckError);
}

TEST(Runtime, UserTagRangeEnforced) {
  Runtime rt(1, test_cm());
  EXPECT_THROW(rt.run([](Communicator& comm) {
                 comm.send(0, kInternalTagBase, {});
               }),
               CheckError);
}

class AllreduceTest : public testing::TestWithParam<int> {};

TEST_P(AllreduceTest, SumOverRanks) {
  const int p = GetParam();
  Runtime rt(p, test_cm());
  rt.run([&](Communicator& comm) {
    auto total = comm.allreduce_sum(
        static_cast<std::uint64_t>(comm.rank() + 1));
    EXPECT_EQ(total, static_cast<std::uint64_t>(p) * (p + 1) / 2);
  });
}

TEST_P(AllreduceTest, MaxOverRanks) {
  const int p = GetParam();
  Runtime rt(p, test_cm());
  rt.run([&](Communicator& comm) {
    double m = comm.allreduce_max(static_cast<double>(comm.rank()));
    EXPECT_DOUBLE_EQ(m, static_cast<double>(p - 1));
  });
}

TEST_P(AllreduceTest, VectorSum) {
  const int p = GetParam();
  Runtime rt(p, test_cm());
  rt.run([&](Communicator& comm) {
    std::vector<std::uint64_t> v = {1, static_cast<std::uint64_t>(comm.rank()),
                                    0};
    auto out = comm.allreduce_sum_vec(v);
    EXPECT_EQ(out[0], static_cast<std::uint64_t>(p));
    EXPECT_EQ(out[1], static_cast<std::uint64_t>(p) * (p - 1) / 2);
    EXPECT_EQ(out[2], 0u);
  });
}

TEST_P(AllreduceTest, AllgatherIndexedByRank) {
  const int p = GetParam();
  Runtime rt(p, test_cm());
  rt.run([&](Communicator& comm) {
    auto all = comm.allgather(static_cast<std::uint64_t>(comm.rank() * 10));
    ASSERT_EQ(all.size(), static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(all[r], static_cast<std::uint64_t>(r) * 10);
    }
  });
}

TEST_P(AllreduceTest, BarrierSynchronizesClocks) {
  const int p = GetParam();
  Runtime rt(p, test_cm());
  rt.run([&](Communicator& comm) {
    // Rank 0 does a big chunk of virtual work; after the barrier everyone's
    // clock must be at least that much.
    if (comm.rank() == 0) comm.clock().advance(1.0);
    comm.barrier();
    EXPECT_GE(comm.clock().time(), 1.0);
  });
}

TEST_P(AllreduceTest, AllToAllRoutesBuffers) {
  const int p = GetParam();
  Runtime rt(p, test_cm());
  rt.run([&](Communicator& comm) {
    std::vector<Buffer> send(p);
    for (int r = 0; r < p; ++r) {
      BufWriter w;
      w.put<std::uint32_t>(
          static_cast<std::uint32_t>(comm.rank() * 1000 + r));
      send[r] = w.take();
    }
    auto got = comm.all_to_all(std::move(send));
    ASSERT_EQ(got.size(), static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) {
      BufReader rd(got[r]);
      EXPECT_EQ(rd.get<std::uint32_t>(),
                static_cast<std::uint32_t>(r * 1000 + comm.rank()));
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, AllreduceTest,
                         testing::Values(1, 2, 3, 4, 7, 8, 16));

TEST(VirtualTime, MessageArrivalRespectsLatencyAndBandwidth) {
  CostModel cm = test_cm();
  Runtime rt(2, cm);
  double observed = 0.0;
  rt.run([&](Communicator& comm) {
    if (comm.rank() == 0) {
      Buffer big(1'000'000, 0);  // 1 MB
      comm.send(1, 0, std::move(big));
    } else {
      Message m = comm.recv(0, 0);
      observed = m.arrival_vtime;
    }
  });
  // 1 MB at `bandwidth` plus latency and the sender overhead.
  double expected = cm.send_overhead + cm.latency + 1'000'000 / cm.bandwidth;
  EXPECT_NEAR(observed, expected, 1e-9);
}

TEST(VirtualTime, ReceiverClockJumpsToArrival) {
  CostModel cm = test_cm();
  Runtime rt(2, cm);
  rt.run([&](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.clock().advance(5.0);  // sender is far in the virtual future
      comm.send(1, 0, {});
    } else {
      Message m = comm.recv(0, 0);
      EXPECT_GE(comm.clock().time(), 5.0);
      EXPECT_GE(m.arrival_vtime, 5.0);
    }
  });
}

TEST(VirtualTime, BusyTimeExcludesWaiting) {
  CostModel cm = test_cm();
  Runtime rt(2, cm);
  rt.run([&](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.clock().advance(2.0);
      comm.send(1, 0, {});
    } else {
      comm.recv(0, 0);
      // Receiver did almost no busy work even though its clock advanced.
      EXPECT_LT(comm.clock().busy_time(), 0.1);
      EXPECT_GT(comm.clock().time(), 1.9);
    }
  });
}

TEST(VirtualTime, ElapsedIsMaxOverRanks) {
  Runtime rt(3, test_cm());
  rt.run([](Communicator& comm) {
    comm.clock().advance(static_cast<double>(comm.rank()));
  });
  EXPECT_NEAR(rt.elapsed_vtime(), 2.0, 1e-12);
  EXPECT_NEAR(rt.total_busy_vtime(), 3.0, 1e-12);
}

TEST(VirtualTime, ChargeUsesUnitCost) {
  Runtime rt(1, test_cm());
  rt.run([](Communicator& comm) {
    double before = comm.clock().time();
    comm.charge(1e-6, 1000);
    EXPECT_NEAR(comm.clock().time() - before, 1e-3, 1e-12);
  });
}

TEST(VirtualTime, CollectiveCostGrowsSublinearlyWithRanks) {
  // Virtual barrier cost at p=16 should be far less than 16x the p=2 cost
  // (binomial tree, O(log p)).
  auto barrier_cost = [&](int p) {
    Runtime rt(p, test_cm());
    rt.run([](Communicator& comm) { comm.barrier(); });
    return rt.elapsed_vtime();
  };
  double c2 = barrier_cost(2);
  double c16 = barrier_cost(16);
  EXPECT_LT(c16, 8.0 * c2);
  EXPECT_GT(c16, c2);
}

TEST(RankStatsTest, CountsMessagesAndBytes) {
  Runtime rt(2, test_cm());
  rt.run([](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 0, Buffer(10));
      comm.send(1, 0, Buffer(20));
    } else {
      comm.recv(0, 0);
      comm.recv(0, 0);
    }
  });
  EXPECT_EQ(rt.stats(0).messages_sent, 2u);
  EXPECT_EQ(rt.stats(0).bytes_sent, 30u);
  EXPECT_EQ(rt.stats(1).messages_received, 2u);
}

TEST(RunRanks, ReturnsElapsedVtime) {
  double t = run_ranks(4, test_cm(), [](Communicator& comm) {
    comm.clock().advance(0.5);
    comm.barrier();
  });
  EXPECT_GE(t, 0.5);
}

TEST(Probe, SeesQueuedMessage) {
  Runtime rt(2, test_cm());
  rt.run([](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 7, {});
    } else {
      // Blocking recv after (possibly) probing; probe must never consume.
      while (!comm.probe(0, 7)) {
      }
      EXPECT_TRUE(comm.probe(0, 7));
      comm.recv(0, 7);
      EXPECT_FALSE(comm.probe(0, 7));
    }
  });
}

}  // namespace
}  // namespace estclust::mpr
