#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/prng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace estclust {
namespace {

TEST(Check, PassingCheckDoesNothing) { ESTCLUST_CHECK(1 + 1 == 2); }

TEST(Check, FailingCheckThrowsCheckError) {
  EXPECT_THROW(ESTCLUST_CHECK(false), CheckError);
}

TEST(Check, MessageIncludesExpressionAndDetail) {
  try {
    ESTCLUST_CHECK_MSG(2 > 3, "two is not greater, got " << 2);
    FAIL() << "expected throw";
  } catch (const CheckError& e) {
    std::string what = e.what();
    EXPECT_NE(what.find("2 > 3"), std::string::npos);
    EXPECT_NE(what.find("two is not greater, got 2"), std::string::npos);
  }
}

TEST(Prng, DeterministicForSameSeed) {
  Prng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Prng, DifferentSeedsDiverge) {
  Prng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 2);
}

TEST(Prng, UniformRespectsBound) {
  Prng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform(13), 13u);
  }
}

TEST(Prng, UniformCoversAllResidues) {
  Prng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Prng, UniformOfOneIsZero) {
  Prng rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform(1), 0u);
}

TEST(Prng, UniformZeroBoundThrows) {
  Prng rng(5);
  EXPECT_THROW(rng.uniform(0), CheckError);
}

TEST(Prng, UniformRangeInclusive) {
  Prng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    auto v = rng.uniform_range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Prng, Uniform01InHalfOpenInterval) {
  Prng rng(11);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Prng, Uniform01MeanNearHalf) {
  Prng rng(13);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Prng, BernoulliEdges) {
  Prng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Prng, BernoulliRate) {
  Prng rng(19);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Prng, NormalMomentsRoughlyCorrect) {
  Prng rng(23);
  RunningStats st;
  for (int i = 0; i < 20000; ++i) st.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(st.mean(), 10.0, 0.1);
  EXPECT_NEAR(st.stddev(), 2.0, 0.1);
}

TEST(Prng, GeometricMeanMatchesTheory) {
  Prng rng(29);
  RunningStats st;
  const double p = 0.25;
  for (int i = 0; i < 20000; ++i)
    st.add(static_cast<double>(rng.geometric(p)));
  // E[failures before success] = (1-p)/p = 3.
  EXPECT_NEAR(st.mean(), 3.0, 0.15);
}

TEST(Prng, GeometricOfOneIsZero) {
  Prng rng(31);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.geometric(1.0), 0u);
}

TEST(Prng, ZipfInRangeAndSkewed) {
  Prng rng(37);
  std::vector<int> counts(20, 0);
  for (int i = 0; i < 20000; ++i) {
    auto k = rng.zipf(20, 0.8);
    ASSERT_LT(k, 20u);
    ++counts[k];
  }
  // Rank-0 must dominate rank-10 heavily under theta=0.8.
  EXPECT_GT(counts[0], 3 * counts[10]);
}

TEST(Prng, ZipfThetaZeroIsUniformish) {
  Prng rng(41);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 8000; ++i) ++counts[rng.zipf(4, 0.0)];
  for (int c : counts) EXPECT_NEAR(c, 2000, 300);
}

TEST(Prng, WeightedPickFollowsWeights) {
  Prng rng(43);
  std::vector<double> w = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.weighted_pick(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(Prng, WeightedPickRejectsAllZero) {
  Prng rng(47);
  std::vector<double> w = {0.0, 0.0};
  EXPECT_THROW(rng.weighted_pick(w), CheckError);
}

TEST(Prng, ShufflePreservesMultiset) {
  Prng rng(53);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Prng, SplitProducesIndependentStream) {
  Prng a(59);
  Prng child = a.split();
  // The child stream should not reproduce the parent's next outputs.
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == child.next());
  EXPECT_LT(same, 2);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats st;
  EXPECT_EQ(st.count(), 0u);
  EXPECT_EQ(st.mean(), 0.0);
  EXPECT_EQ(st.variance(), 0.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats st;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) st.add(x);
  EXPECT_DOUBLE_EQ(st.mean(), 5.0);
  EXPECT_NEAR(st.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(st.min(), 2.0);
  EXPECT_EQ(st.max(), 9.0);
  EXPECT_EQ(st.sum(), 40.0);
}

TEST(Percentile, MedianOfOddCount) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
}

TEST(Percentile, MedianInterpolatesEvenCount) {
  EXPECT_DOUBLE_EQ(median({1.0, 2.0, 3.0, 4.0}), 2.5);
}

TEST(Percentile, ExtremesAreMinMax) {
  std::vector<double> v = {5.0, 1.0, 9.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 9.0);
}

TEST(Percentile, EmptyThrows) {
  EXPECT_THROW(percentile({}, 0.5), CheckError);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);
  h.add(100.0);
  h.add(5.0);
  EXPECT_EQ(h.counts()[0], 1u);
  EXPECT_EQ(h.counts()[4], 1u);
  EXPECT_EQ(h.counts()[2], 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, BucketBoundaries) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(5), 5.0);
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"n", "time"});
  t.add_row({"10", "1.5"});
  t.add_row({"10000", "123.25"});
  std::ostringstream os;
  t.print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("n"), std::string::npos);
  EXPECT_NE(out.find("123.25"), std::string::npos);
  // All data lines equal length (aligned columns).
  std::istringstream is(out);
  std::string line;
  std::getline(is, line);
  std::size_t len = line.size();
  std::getline(is, line);  // separator
  while (std::getline(is, line)) EXPECT_EQ(line.size(), len);
}

TEST(TablePrinter, FormatHelpers) {
  EXPECT_EQ(TablePrinter::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::fmt(std::uint64_t{42}), "42");
}

TEST(Cli, ParsesNameValuePairs) {
  const char* argv[] = {"prog", "--n", "100", "--rate", "0.5"};
  CliArgs args(5, argv);
  EXPECT_EQ(args.get_int("n", 0), 100);
  EXPECT_DOUBLE_EQ(args.get_double("rate", 0.0), 0.5);
}

TEST(Cli, ParsesEqualsForm) {
  const char* argv[] = {"prog", "--n=7"};
  CliArgs args(2, argv);
  EXPECT_EQ(args.get_int("n", 0), 7);
}

TEST(Cli, FlagsWithoutValues) {
  const char* argv[] = {"prog", "--verbose", "--n", "3"};
  CliArgs args(4, argv);
  EXPECT_TRUE(args.has_flag("verbose"));
  EXPECT_FALSE(args.has_flag("quiet"));
  EXPECT_EQ(args.get_int("n", 0), 3);
}

TEST(Cli, NegativeNumberIsValueNotFlag) {
  const char* argv[] = {"prog", "--offset", "-3"};
  CliArgs args(3, argv);
  EXPECT_EQ(args.get_int("offset", 0), -3);
}

TEST(Cli, FallbacksWhenMissing) {
  const char* argv[] = {"prog"};
  CliArgs args(1, argv);
  EXPECT_EQ(args.get_int("n", 11), 11);
  EXPECT_EQ(args.get_string("mode", "fast"), "fast");
}

TEST(Cli, Positionals) {
  const char* argv[] = {"prog", "input.fa", "--n", "2", "more"};
  CliArgs args(5, argv);
  ASSERT_EQ(args.positionals().size(), 2u);
  EXPECT_EQ(args.positionals()[0], "input.fa");
  EXPECT_EQ(args.positionals()[1], "more");
}

TEST(Timer, MeasuresNonNegativeTime) {
  WallTimer t;
  EXPECT_GE(t.seconds(), 0.0);
}

TEST(PhaseTimer, AccumulatesAcrossIntervals) {
  PhaseTimer t;
  t.start();
  t.stop();
  double first = t.total_seconds();
  t.start();
  t.stop();
  EXPECT_GE(t.total_seconds(), first);
}

}  // namespace
}  // namespace estclust
