#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <set>
#include <string>

#include "bio/alphabet.hpp"
#include "bio/dataset.hpp"
#include "gst/builder.hpp"
#include "gst/parallel.hpp"
#include "gst/tree.hpp"
#include "mpr/runtime.hpp"
#include "util/check.hpp"
#include "util/prng.hpp"

namespace estclust::gst {
namespace {

using bio::EstSet;
using bio::Sequence;

std::string random_dna(Prng& rng, std::size_t len) {
  std::string s(len, 'A');
  for (auto& c : s) c = bio::decode_base(static_cast<int>(rng.uniform(4)));
  return s;
}

EstSet random_ests(Prng& rng, std::size_t n, std::size_t min_len,
                   std::size_t max_len) {
  std::vector<Sequence> seqs;
  for (std::size_t i = 0; i < n; ++i) {
    seqs.push_back({"e" + std::to_string(i),
                    random_dna(rng, min_len + rng.uniform(max_len - min_len + 1))});
  }
  return EstSet(std::move(seqs));
}

bool nodes_equal(const Node& a, const Node& b) {
  return a.rightmost == b.rightmost && a.depth == b.depth &&
         a.occ_begin == b.occ_begin && a.occ_end == b.occ_end;
}

bool trees_equal(const Tree& a, const Tree& b) {
  if (a.bucket_id != b.bucket_id || a.prefix_depth != b.prefix_depth)
    return false;
  if (a.nodes.size() != b.nodes.size() || a.occs.size() != b.occs.size())
    return false;
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    if (!nodes_equal(a.nodes[i], b.nodes[i])) return false;
  }
  for (std::size_t i = 0; i < a.occs.size(); ++i) {
    if (!(a.occs[i] == b.occs[i])) return false;
  }
  return true;
}

TEST(BucketOf, LexicographicBase4) {
  EXPECT_EQ(bucket_of("AAAA", 0, 2), 0u);
  EXPECT_EQ(bucket_of("ACAA", 0, 2), 1u);
  EXPECT_EQ(bucket_of("TTAA", 0, 2), 15u);
  EXPECT_EQ(bucket_of("GATT", 1, 2), 0u * 4 + 3u);  // "AT"
}

TEST(NumBuckets, PowersOfFour) {
  EXPECT_EQ(num_buckets(1), 4u);
  EXPECT_EQ(num_buckets(8), 65536u);
  EXPECT_THROW(num_buckets(0), CheckError);
  EXPECT_THROW(num_buckets(12), CheckError);
}

TEST(CollectSuffixes, EnumeratesAllLongEnoughSuffixes) {
  EstSet ests(std::vector<Sequence>{{"a", "ACGT"}});
  std::vector<BucketedSuffix> out;
  collect_suffixes(ests, 0, 2, 2, out);
  // "ACGT": suffixes >= 2 at pos 0,1,2; "ACGT" rc = "ACGT": same count.
  EXPECT_EQ(out.size(), 6u);
  for (const auto& bs : out) {
    auto s = ests.str(bs.occ.sid);
    EXPECT_EQ(bs.bucket, bucket_of(s, bs.occ.pos, 2));
    EXPECT_GE(s.size() - bs.occ.pos, 2u);
  }
}

TEST(CollectSuffixes, DropsShortStringsEntirely) {
  EstSet ests(std::vector<Sequence>{{"a", "AC"}});
  std::vector<BucketedSuffix> out;
  collect_suffixes(ests, 0, 2, 3, out);
  EXPECT_TRUE(out.empty());
}

TEST(CollectSuffixes, RollingBucketMatchesDirect) {
  Prng rng(1);
  EstSet ests = random_ests(rng, 5, 20, 60);
  std::vector<BucketedSuffix> out;
  collect_suffixes(ests, 0, static_cast<bio::StringId>(ests.num_strings()), 4,
                   out);
  for (const auto& bs : out) {
    EXPECT_EQ(bs.bucket, bucket_of(ests.str(bs.occ.sid), bs.occ.pos, 4));
  }
}

TEST(BuildBucketTree, HandComputedExample) {
  // Suffixes of "ACAC" in bucket 'A' (w=1): "ACAC" and "AC". They share
  // prefix "AC"; one ends there ($-leaf), the other continues.
  EstSet ests(std::vector<Sequence>{{"a", "ACAC"}});
  BuildCounters c;
  std::vector<SuffixOcc> bucket = {{0, 0}, {0, 2}};
  Tree t = build_bucket_tree(ests, bucket, 1, 0, c);
  ASSERT_EQ(t.nodes.size(), 3u);
  EXPECT_FALSE(t.is_leaf(0));
  EXPECT_EQ(t.depth(0), 2u);            // branch node "AC"
  EXPECT_TRUE(t.is_leaf(1));
  EXPECT_EQ(t.depth(1), 2u);            // $-leaf for suffix "AC"
  EXPECT_TRUE(t.is_leaf(2));
  EXPECT_EQ(t.depth(2), 4u);            // leaf for suffix "ACAC"
  EXPECT_EQ(t.nodes[0].rightmost, 2u);
  t.validate(ests);
}

TEST(BuildBucketTree, SingletonBucketIsOneLeaf) {
  EstSet ests(std::vector<Sequence>{{"a", "ACGTACGT"}});
  BuildCounters c;
  Tree t = build_bucket_tree(ests, {{0, 2}}, 2, bucket_of("GT", 0, 2), c);
  ASSERT_EQ(t.nodes.size(), 1u);
  EXPECT_TRUE(t.is_leaf(0));
  EXPECT_EQ(t.depth(0), 6u);  // whole remaining suffix "GTACGT"
  t.validate(ests);
}

TEST(BuildBucketTree, IdenticalSuffixesCoalesceIntoOneLeaf) {
  // Two distinct ESTs with the same content: every suffix pair coalesces.
  EstSet ests({{"a", "ACGT"}, {"b", "ACGT"}});
  BuildCounters c;
  std::vector<SuffixOcc> bucket = {{0, 0}, {2, 0}};  // both "ACGT"
  Tree t = build_bucket_tree(ests, bucket, 2, bucket_of("AC", 0, 2), c);
  ASSERT_EQ(t.nodes.size(), 1u);
  EXPECT_TRUE(t.is_leaf(0));
  EXPECT_EQ(t.occurrences(0).size(), 2u);
  EXPECT_EQ(t.depth(0), 4u);
  t.validate(ests);
}

TEST(BuildBucketTree, PolyARepeatBuildsDeepChain) {
  EstSet ests(std::vector<Sequence>{{"a", std::string(12, 'A') + "C"}});
  BuildCounters c;
  std::vector<SuffixOcc> bucket;
  // All suffixes starting with 'A'.
  for (std::uint32_t pos = 0; pos < 12; ++pos) bucket.push_back({0, pos});
  Tree t = build_bucket_tree(ests, bucket, 1, 0, c);
  t.validate(ests);
  // Every suffix is distinct (different distances to the final C): 12
  // leaves, each its own occurrence.
  std::uint32_t leaves = t.num_leaves(0);
  EXPECT_EQ(leaves, 12u);
  EXPECT_EQ(t.num_occurrences(0), 12u);
}

TEST(BuildBucketTree, CanonicalRegardlessOfInputOrder) {
  Prng rng(2);
  EstSet ests = random_ests(rng, 4, 30, 50);
  std::vector<BucketedSuffix> all;
  collect_suffixes(ests, 0, static_cast<bio::StringId>(ests.num_strings()), 2,
                   all);
  // Pick the largest bucket.
  std::map<std::uint64_t, std::vector<SuffixOcc>> groups;
  for (const auto& bs : all) groups[bs.bucket].push_back(bs.occ);
  auto it = groups.begin();
  for (auto g = groups.begin(); g != groups.end(); ++g) {
    if (g->second.size() > it->second.size()) it = g;
  }
  auto forward = it->second;
  auto reversed = forward;
  std::reverse(reversed.begin(), reversed.end());
  BuildCounters c1, c2;
  Tree t1 = build_bucket_tree(ests, forward, 2, it->first, c1);
  Tree t2 = build_bucket_tree(ests, reversed, 2, it->first, c2);
  EXPECT_TRUE(trees_equal(t1, t2));
}

TEST(SequentialForest, EverySuffixAppearsExactlyOnce) {
  Prng rng(3);
  EstSet ests = random_ests(rng, 8, 25, 60);
  const std::uint32_t w = 3;
  auto forest = build_forest_sequential(ests, w);
  std::set<std::pair<bio::StringId, std::uint32_t>> seen;
  std::size_t total = 0;
  for (const auto& t : forest) {
    t.validate(ests);
    for (const auto& occ : t.occs) {
      EXPECT_TRUE(seen.insert({occ.sid, occ.pos}).second)
          << "duplicate suffix sid=" << occ.sid << " pos=" << occ.pos;
      ++total;
    }
  }
  // Expected count: all suffixes of length >= w over all 2n strings.
  std::size_t expected = 0;
  for (bio::StringId sid = 0; sid < ests.num_strings(); ++sid) {
    auto len = ests.str(sid).size();
    if (len >= w) expected += len - w + 1;
  }
  EXPECT_EQ(total, expected);
}

TEST(SequentialForest, TreesSortedByBucketAndPrefixConsistent) {
  Prng rng(4);
  EstSet ests = random_ests(rng, 5, 20, 40);
  const std::uint32_t w = 2;
  auto forest = build_forest_sequential(ests, w);
  std::uint64_t prev = 0;
  bool first = true;
  for (const auto& t : forest) {
    if (!first) {
      EXPECT_GT(t.bucket_id, prev);
    }
    prev = t.bucket_id;
    first = false;
    // All occurrences in the tree start with the bucket's w-prefix.
    for (const auto& occ : t.occs) {
      EXPECT_EQ(bucket_of(ests.str(occ.sid), occ.pos, w), t.bucket_id);
    }
  }
}

TEST(SequentialForest, NodeCountLinearInSuffixCount) {
  Prng rng(5);
  EstSet ests = random_ests(rng, 20, 40, 80);
  BuildCounters c;
  auto forest = build_forest_sequential(ests, 3, &c);
  std::size_t nodes = 0;
  for (const auto& t : forest) nodes += t.nodes.size();
  EXPECT_LE(nodes, 2 * c.suffixes);  // at most 2k-1 nodes for k suffixes
  EXPECT_EQ(nodes, c.nodes);
}

TEST(SequentialForest, StorageBytesLinearInInput) {
  Prng rng(6);
  EstSet ests = random_ests(rng, 30, 60, 100);
  auto forest = build_forest_sequential(ests, 4);
  std::size_t bytes = 0;
  for (const auto& t : forest) bytes += t.storage_bytes();
  // <= (16 bytes/node) * 2 * suffixes + 8 bytes/occ ~ 40 bytes per input
  // char. The point is linearity with a modest constant, not the constant
  // itself.
  EXPECT_LE(bytes, 48 * ests.total_string_chars());
}

TEST(Navigation, ChildIterationCoversSubtreeExactly) {
  Prng rng(7);
  EstSet ests = random_ests(rng, 6, 30, 60);
  auto forest = build_forest_sequential(ests, 2);
  for (const auto& t : forest) {
    for (std::uint32_t v = 0; v < t.size(); ++v) {
      if (t.is_leaf(v)) continue;
      // Children tile [v+1, rightmost]: each child's range abuts the next.
      std::uint32_t expected = v + 1;
      t.for_each_child(v, [&](std::uint32_t u) {
        EXPECT_EQ(u, expected);
        expected = t.nodes[u].rightmost + 1;
      });
      EXPECT_EQ(expected, t.nodes[v].rightmost + 1);
    }
  }
}

TEST(Navigation, PathLabelHasNodeDepth) {
  Prng rng(8);
  EstSet ests = random_ests(rng, 4, 25, 40);
  auto forest = build_forest_sequential(ests, 2);
  for (const auto& t : forest) {
    for (std::uint32_t v = 0; v < t.size(); ++v) {
      EXPECT_EQ(t.path_label(ests, v).size(), t.depth(v));
    }
  }
}

TEST(Navigation, NumChildrenAndLeafCounts) {
  Prng rng(21);
  EstSet ests = random_ests(rng, 5, 25, 50);
  auto forest = build_forest_sequential(ests, 2);
  for (const auto& t : forest) {
    for (std::uint32_t v = 0; v < t.size(); ++v) {
      if (t.is_leaf(v)) {
        EXPECT_EQ(t.num_children(v), 0u);
        EXPECT_EQ(t.num_leaves(v), 1u);
      } else {
        EXPECT_GE(t.num_children(v), 2u);
        // Leaves of children partition the node's leaves.
        std::uint32_t child_leaves = 0;
        t.for_each_child(v, [&](std::uint32_t u) {
          child_leaves += t.num_leaves(u);
        });
        EXPECT_EQ(child_leaves, t.num_leaves(v));
      }
    }
  }
}

TEST(Navigation, PathLabelOfLeafIsTheSuffix) {
  EstSet ests(std::vector<Sequence>{{"a", "GATTACA"}});
  BuildCounters c;
  Tree t = build_bucket_tree(ests, {{0, 3}}, 2, bucket_of("TA", 0, 2), c);
  ASSERT_TRUE(t.is_leaf(0));
  EXPECT_EQ(t.path_label(ests, 0), "TACA");
}

TEST(LeftExtension, LambdaAtStringStart) {
  EstSet ests(std::vector<Sequence>{{"a", "ACGT"}});
  EXPECT_EQ(left_extension_code(ests, {0, 0}), bio::kLambdaCode);
  EXPECT_EQ(left_extension_code(ests, {0, 1}), bio::encode_base('A'));
  EXPECT_EQ(left_extension_code(ests, {0, 3}), bio::encode_base('G'));
}

TEST(PartitionEsts, CoversAllWithoutOverlap) {
  Prng rng(9);
  EstSet ests = random_ests(rng, 23, 10, 100);
  for (int p : {1, 2, 3, 5, 8, 23, 40}) {
    auto ranges = partition_ests(ests, p);
    ASSERT_EQ(ranges.size(), static_cast<std::size_t>(p));
    bio::EstId next = 0;
    for (const auto& [lo, hi] : ranges) {
      EXPECT_EQ(lo, next);
      EXPECT_LE(lo, hi);
      next = hi;
    }
    EXPECT_EQ(next, ests.num_ests());
  }
}

TEST(PartitionEsts, RoughCharacterBalance) {
  Prng rng(10);
  EstSet ests = random_ests(rng, 100, 50, 51);
  auto ranges = partition_ests(ests, 4);
  for (const auto& [lo, hi] : ranges) {
    std::size_t chars = 0;
    for (bio::EstId i = lo; i < hi; ++i) chars += ests.est(i).bases.size();
    EXPECT_NEAR(static_cast<double>(chars),
                static_cast<double>(ests.total_est_chars()) / 4.0,
                60.0);  // within ~one EST of the target
  }
}

TEST(AssignBuckets, BalancedLoads) {
  std::vector<std::uint64_t> ids = {0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<std::uint64_t> sizes = {100, 90, 80, 70, 30, 20, 10, 5};
  auto owner = assign_buckets(ids, sizes, 3);
  std::vector<std::uint64_t> load(3, 0);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ASSERT_GE(owner[i], 0);
    ASSERT_LT(owner[i], 3);
    load[owner[i]] += sizes[i];
  }
  auto [mn, mx] = std::minmax_element(load.begin(), load.end());
  EXPECT_LE(*mx - *mn, 100u);  // no worse than the largest bucket
}

TEST(AssignBuckets, MorePRanksThanBuckets) {
  auto owner = assign_buckets({7}, {42}, 8);
  ASSERT_EQ(owner.size(), 1u);
  EXPECT_EQ(owner[0], 0);
}

class ParallelGstTest : public testing::TestWithParam<int> {};

TEST_P(ParallelGstTest, MatchesSequentialForest) {
  const int p = GetParam();
  Prng rng(42);
  EstSet ests = random_ests(rng, 12, 30, 70);
  GstConfig cfg;
  cfg.window = 3;

  auto sequential = build_forest_sequential(ests, cfg.window);

  std::mutex mu;
  std::map<std::uint64_t, Tree> parallel_trees;
  mpr::Runtime rt(p, mpr::CostModel{});
  rt.run([&](mpr::Communicator& comm) {
    auto local = build_forest_parallel(comm, ests, cfg);
    std::lock_guard<std::mutex> lock(mu);
    for (auto& t : local) {
      auto [it, inserted] = parallel_trees.emplace(t.bucket_id, std::move(t));
      EXPECT_TRUE(inserted) << "bucket on two ranks";
      (void)it;
    }
  });

  ASSERT_EQ(parallel_trees.size(), sequential.size());
  for (const auto& st : sequential) {
    auto it = parallel_trees.find(st.bucket_id);
    ASSERT_NE(it, parallel_trees.end());
    EXPECT_TRUE(trees_equal(st, it->second))
        << "bucket " << st.bucket_id << " differs at p=" << p;
  }
}

TEST_P(ParallelGstTest, StatsAreConsistent) {
  const int p = GetParam();
  Prng rng(43);
  EstSet ests = random_ests(rng, 10, 30, 60);
  GstConfig cfg;
  cfg.window = 2;

  std::mutex mu;
  std::uint64_t total_local = 0;
  std::uint64_t global_seen = 0;
  mpr::Runtime rt(p, mpr::CostModel{});
  rt.run([&](mpr::Communicator& comm) {
    ParallelBuildStats st;
    auto local = build_forest_parallel(comm, ests, cfg, &st);
    std::size_t occs = 0;
    for (const auto& t : local) occs += t.occs.size();
    EXPECT_EQ(st.local_suffixes, occs);
    EXPECT_EQ(st.local_buckets, local.size());
    EXPECT_GE(st.partition_vtime, 0.0);
    EXPECT_GE(st.build_vtime, 0.0);
    std::lock_guard<std::mutex> lock(mu);
    total_local += st.local_suffixes;
    global_seen = st.global_suffixes;
  });
  EXPECT_EQ(total_local, global_seen);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, ParallelGstTest,
                         testing::Values(1, 2, 3, 4, 8));

TEST(ParallelGst, LoadRoughlyBalancedAcrossRanks) {
  Prng rng(44);
  EstSet ests = random_ests(rng, 60, 80, 120);
  GstConfig cfg;
  cfg.window = 3;
  const int p = 4;
  std::mutex mu;
  std::vector<std::uint64_t> per_rank(p, 0);
  mpr::Runtime rt(p, mpr::CostModel{});
  rt.run([&](mpr::Communicator& comm) {
    ParallelBuildStats st;
    build_forest_parallel(comm, ests, cfg, &st);
    std::lock_guard<std::mutex> lock(mu);
    per_rank[comm.rank()] = st.local_suffixes;
  });
  auto [mn, mx] = std::minmax_element(per_rank.begin(), per_rank.end());
  EXPECT_GT(*mn, 0u);
  // Greedy assignment: max load within 2x of min for many small buckets.
  EXPECT_LT(static_cast<double>(*mx), 2.0 * static_cast<double>(*mn));
}

}  // namespace
}  // namespace estclust::gst
