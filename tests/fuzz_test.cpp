// Randomized property tests spanning modules: the fast kernels and data
// structures are cross-checked against their reference oracles over many
// seeds.
//
// ESTCLUST_FUZZ_SEED=<n> offsets every seed by n, exploring a fresh slice
// of the input space without a recompile. Each test records its effective
// seed via SCOPED_TRACE, so a failure message always names the seed to
// reproduce with.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <tuple>

#include "align/banded.hpp"
#include "align/kernel.hpp"
#include "align/nw.hpp"
#include "bio/alphabet.hpp"
#include "bio/dataset.hpp"
#include "gst/builder.hpp"
#include "gst/suffix_array.hpp"
#include "pairgen/generator.hpp"
#include "pairgen/source.hpp"
#include "quality/metrics.hpp"
#include "util/prng.hpp"

namespace estclust {
namespace {

/// Environment-settable seed offset (0 when unset). Applied on top of the
/// per-test parameter so one env var re-seeds the whole suite.
std::uint64_t fuzz_seed_offset() {
  static const std::uint64_t offset = [] {
    const char* v = std::getenv("ESTCLUST_FUZZ_SEED");
    return v == nullptr ? 0ull : std::strtoull(v, nullptr, 10);
  }();
  return offset;
}

/// The effective seed for a test instance: its base parameter plus the
/// environment offset.
std::uint64_t fuzz_seed(std::uint64_t base) {
  return base + fuzz_seed_offset();
}

/// Message naming the failing seed and how to re-run it.
std::string seed_trace(std::uint64_t seed) {
  return "effective fuzz seed " + std::to_string(seed) +
         " (ESTCLUST_FUZZ_SEED offset " +
         std::to_string(fuzz_seed_offset()) + ")";
}

std::string random_dna(Prng& rng, std::size_t len) {
  std::string s(len, 'A');
  for (auto& c : s) c = bio::decode_base(static_cast<int>(rng.uniform(4)));
  return s;
}

std::string mutate(Prng& rng, const std::string& s, double sub, double ins,
                   double del) {
  std::string out;
  for (char c : s) {
    if (rng.bernoulli(del)) continue;
    if (rng.bernoulli(ins)) {
      out.push_back(bio::decode_base(static_cast<int>(rng.uniform(4))));
    }
    if (rng.bernoulli(sub)) {
      out.push_back(bio::decode_base(
          (bio::encode_base(c) + 1 + static_cast<int>(rng.uniform(3))) % 4));
    } else {
      out.push_back(c);
    }
  }
  if (out.empty()) out = "A";
  return out;
}

class AlignFuzz : public testing::TestWithParam<std::uint64_t> {};

TEST_P(AlignFuzz, BandedExtensionAgreesWithReferenceWideBand) {
  const std::uint64_t seed = fuzz_seed(GetParam());
  SCOPED_TRACE(seed_trace(seed));
  Prng rng(seed);
  std::string a = random_dna(rng, rng.uniform(50));
  std::string b = rng.bernoulli(0.5) ? mutate(rng, a, 0.1, 0.05, 0.05)
                                     : random_dna(rng, rng.uniform(50));
  align::Scoring sc;
  auto fast = align::extend_overlap(a, b, sc, a.size() + b.size() + 1);
  auto ref = align::extend_overlap_reference(a, b, sc);
  EXPECT_EQ(fast.score, ref.score) << "a=" << a << " b=" << b;
  EXPECT_EQ(fast.a_len, ref.a_len);
  EXPECT_EQ(fast.b_len, ref.b_len);
}

TEST_P(AlignFuzz, NarrowerBandNeverScoresHigher) {
  const std::uint64_t seed = fuzz_seed(GetParam() + 5000);
  SCOPED_TRACE(seed_trace(seed));
  Prng rng(seed);
  std::string a = random_dna(rng, 10 + rng.uniform(40));
  std::string b = mutate(rng, a, 0.08, 0.02, 0.02);
  align::Scoring sc;
  long prev = std::numeric_limits<long>::min();
  for (std::size_t band : {2u, 4u, 8u, 16u, 64u}) {
    long s = align::extend_overlap(a, b, sc, band).score;
    EXPECT_GE(s, prev) << "band " << band;
    prev = s;
  }
}

TEST_P(AlignFuzz, GlobalScoreBounds) {
  const std::uint64_t seed = fuzz_seed(GetParam() + 9000);
  SCOPED_TRACE(seed_trace(seed));
  Prng rng(seed);
  std::string a = random_dna(rng, 1 + rng.uniform(40));
  std::string b = random_dna(rng, 1 + rng.uniform(40));
  align::Scoring sc;
  auto g = align::global_align(a, b, sc);
  // Upper bound: all of the shorter string matches, rest gaps.
  long upper = sc.ideal(std::min(a.size(), b.size())) +
               static_cast<long>(
                   (std::max(a.size(), b.size()) -
                    std::min(a.size(), b.size()))) *
                   sc.gap;
  // Lower bound: delete everything, insert everything.
  long lower = static_cast<long>(a.size() + b.size()) * sc.gap;
  EXPECT_LE(g.score, upper);
  EXPECT_GE(g.score, lower);
  // Local alignment dominates global; affine-local dominates zero.
  EXPECT_GE(align::local_align(a, b, sc).score, g.score);
  EXPECT_GE(align::local_align_affine(a, b, sc).score, 0);
}

TEST_P(AlignFuzz, KernelVariantsAgreeWithScalar) {
  // Scalar-vs-SIMD differential: every variant the host supports must
  // reproduce the scalar banded extension bit for bit on random pairs —
  // including `cells` and `capped` — under random bands and random
  // give-up bounds. Re-seedable via ESTCLUST_FUZZ_SEED like the rest of
  // the suite.
  const std::uint64_t seed = fuzz_seed(GetParam() + 13000);
  SCOPED_TRACE(seed_trace(seed));
  Prng rng(seed);
  align::Scoring sc;
  align::AlignArena arena;
  for (int iter = 0; iter < 200; ++iter) {
    std::string a = random_dna(rng, rng.uniform(120));
    std::string b = rng.bernoulli(0.5) ? mutate(rng, a, 0.1, 0.04, 0.04)
                                       : random_dna(rng, rng.uniform(120));
    const std::size_t band = rng.uniform(20);
    const long give_up =
        rng.bernoulli(0.5)
            ? align::kNoGiveUp
            : static_cast<long>(rng.uniform(240)) - 120;
    const auto scalar = align::extend_overlap_variant(
        align::KernelVariant::kScalar, a, b, sc, band, arena, give_up);
    for (auto v : {align::KernelVariant::kSse2, align::KernelVariant::kAvx2}) {
      if (!align::cpu_supports(v)) continue;
      const auto simd =
          align::extend_overlap_variant(v, a, b, sc, band, arena, give_up);
      ASSERT_EQ(simd.score, scalar.score)
          << align::to_string(v) << " iter " << iter << " band " << band
          << " give_up " << give_up << " a=" << a << " b=" << b;
      ASSERT_EQ(simd.a_len, scalar.a_len) << align::to_string(v);
      ASSERT_EQ(simd.b_len, scalar.b_len) << align::to_string(v);
      ASSERT_EQ(simd.a_exhausted, scalar.a_exhausted) << align::to_string(v);
      ASSERT_EQ(simd.b_exhausted, scalar.b_exhausted) << align::to_string(v);
      ASSERT_EQ(simd.cells, scalar.cells)
          << align::to_string(v) << " iter " << iter << " band " << band
          << " give_up " << give_up << " a=" << a << " b=" << b;
      ASSERT_EQ(simd.capped, scalar.capped) << align::to_string(v);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlignFuzz,
                         testing::Range<std::uint64_t>(1, 40));

class GstFuzz : public testing::TestWithParam<std::uint64_t> {};

TEST_P(GstFuzz, RefinementForestMatchesSuffixArrayOracle) {
  const std::uint64_t seed = fuzz_seed(GetParam());
  SCOPED_TRACE(seed_trace(seed));
  Prng rng(seed);
  // Mix of unrelated and overlapping sequences, occasional duplicates.
  std::vector<bio::Sequence> seqs;
  std::string gene = random_dna(rng, 120);
  const std::size_t n = 3 + rng.uniform(8);
  for (std::size_t i = 0; i < n; ++i) {
    std::string s;
    switch (rng.uniform(4)) {
      case 0:
        s = random_dna(rng, 10 + rng.uniform(60));
        break;
      case 1: {
        std::size_t start = rng.uniform(80);
        s = gene.substr(start, 40 + rng.uniform(40));
        break;
      }
      case 2:
        s = seqs.empty() ? random_dna(rng, 30)
                         : seqs[rng.uniform(seqs.size())].bases;
        break;
      default:
        s = std::string(10 + rng.uniform(30), 'A');  // low complexity
        break;
    }
    if (s.size() < 5) s += random_dna(rng, 5);
    seqs.push_back({"s" + std::to_string(i), s});
  }
  bio::EstSet ests(std::move(seqs));
  const std::uint32_t w = 1 + static_cast<std::uint32_t>(rng.uniform(4));

  auto refinement = gst::build_forest_sequential(ests, w);
  auto oracle = gst::forest_from_suffix_array(
      ests, gst::build_suffix_array(ests, w), w);
  ASSERT_EQ(refinement.size(), oracle.size()) << "seed " << GetParam();
  for (std::size_t i = 0; i < refinement.size(); ++i) {
    const auto& a = refinement[i];
    const auto& b = oracle[i];
    ASSERT_EQ(a.bucket_id, b.bucket_id);
    ASSERT_EQ(a.nodes.size(), b.nodes.size()) << "bucket " << a.bucket_id;
    for (std::size_t k = 0; k < a.nodes.size(); ++k) {
      EXPECT_EQ(a.nodes[k].rightmost, b.nodes[k].rightmost);
      EXPECT_EQ(a.nodes[k].depth, b.nodes[k].depth);
      EXPECT_EQ(a.nodes[k].occ_begin, b.nodes[k].occ_begin);
      EXPECT_EQ(a.nodes[k].occ_end, b.nodes[k].occ_end);
    }
    for (std::size_t k = 0; k < a.occs.size(); ++k) {
      EXPECT_TRUE(a.occs[k] == b.occs[k]);
    }
    a.validate(ests);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GstFuzz,
                         testing::Range<std::uint64_t>(300, 340));

class PairgenFuzz : public testing::TestWithParam<std::uint64_t> {};

std::size_t lcs_len(std::string_view a, std::string_view b) {
  std::vector<std::size_t> prev(b.size() + 1, 0), cur(b.size() + 1, 0);
  std::size_t best = 0;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = 0;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      cur[j] = (a[i - 1] == b[j - 1]) ? prev[j - 1] + 1 : 0;
      best = std::max(best, cur[j]);
    }
    std::swap(prev, cur);
  }
  return best;
}

TEST_P(PairgenFuzz, GeneratedPairsEqualBruteForceAcrossSeeds) {
  const std::uint64_t seed = fuzz_seed(GetParam());
  SCOPED_TRACE(seed_trace(seed));
  Prng rng(seed);
  std::string gene = random_dna(rng, 150);
  std::vector<bio::Sequence> seqs;
  const std::size_t n = 4 + rng.uniform(6);
  for (std::size_t i = 0; i < n; ++i) {
    std::string s;
    if (rng.bernoulli(0.6)) {
      std::size_t start = rng.uniform(100);
      s = gene.substr(start, 50);
      if (rng.bernoulli(0.5)) s = bio::reverse_complement(s);
    } else {
      s = random_dna(rng, 50);
    }
    seqs.push_back({"e" + std::to_string(i), s});
  }
  bio::EstSet ests(std::move(seqs));
  const std::uint32_t psi = 12 + static_cast<std::uint32_t>(rng.uniform(8));
  auto forest = gst::build_forest_sequential(ests, 4);
  pairgen::PairGenerator gen(ests, forest, psi);

  std::set<std::pair<bio::EstId, bio::EstId>> generated;
  std::vector<pairgen::PromisingPair> batch;
  while (gen.next_batch(1024, batch) > 0) {
    for (const auto& p : batch) generated.insert({p.a, p.b});
    batch.clear();
  }

  std::set<std::pair<bio::EstId, bio::EstId>> expected;
  for (bio::EstId i = 0; i < ests.num_ests(); ++i) {
    for (bio::EstId j = i + 1; j < ests.num_ests(); ++j) {
      auto ei = ests.str(bio::EstSet::forward_sid(i));
      if (lcs_len(ei, ests.str(bio::EstSet::forward_sid(j))) >= psi ||
          lcs_len(ei, ests.str(bio::EstSet::rc_sid(j))) >= psi) {
        expected.insert({i, j});
      }
    }
  }
  EXPECT_EQ(generated, expected) << "seed " << GetParam() << " psi " << psi;
}

INSTANTIATE_TEST_SUITE_P(Seeds, PairgenFuzz,
                         testing::Range<std::uint64_t>(600, 625));

/// Differential fuzzing across PairSource backends: the k-mer filter and
/// the FM-index must agree with each other record-for-record, and with
/// the GST generator at the granularity the drivers consume (EST pairs,
/// stream order, anchor maximality). The GST walk may merge two identical
/// maximal substrings into one emission (per-node duplicate elimination),
/// so at the record level GST ⊆ seed backends rather than equality.
class PairSourceFuzz : public testing::TestWithParam<std::uint64_t> {};

using PairRecord = std::tuple<bio::EstId, bio::EstId, bool, std::uint32_t,
                              std::uint32_t, std::uint32_t>;

std::vector<PairRecord> drain_records(pairgen::PairSource& gen) {
  std::vector<pairgen::PromisingPair> batch;
  std::vector<PairRecord> out;
  while (gen.next_batch(1024, batch) > 0) {
    for (const auto& p : batch) {
      out.emplace_back(p.a, p.b, p.b_rc, p.match_len, p.a_pos, p.b_pos);
    }
    batch.clear();
  }
  return out;
}

TEST_P(PairSourceFuzz, BackendsAgreeOnRandomDatasets) {
  const std::uint64_t seed = fuzz_seed(GetParam());
  SCOPED_TRACE(seed_trace(seed));
  Prng rng(seed);
  std::string gene = random_dna(rng, 120 + rng.uniform(120));
  std::vector<bio::Sequence> seqs;
  const std::size_t n = 4 + rng.uniform(8);
  for (std::size_t i = 0; i < n; ++i) {
    std::string s;
    switch (rng.uniform(4)) {
      case 0:
        s = random_dna(rng, 40 + rng.uniform(30));
        break;
      case 1:  // duplicate an earlier EST now and then
        s = seqs.empty() ? random_dna(rng, 45)
                         : seqs[rng.uniform(seqs.size())].bases;
        break;
      default: {
        std::size_t start = rng.uniform(gene.size() - 55);
        s = gene.substr(start, 40 + rng.uniform(15));
        if (rng.bernoulli(0.5)) s = bio::reverse_complement(s);
        break;
      }
    }
    seqs.push_back({"e" + std::to_string(i), s});
  }
  bio::EstSet ests(std::move(seqs));
  const std::uint32_t w = 4;
  const std::uint32_t psi = 12 + static_cast<std::uint32_t>(rng.uniform(8));
  auto forest = gst::build_forest_sequential(ests, w);

  auto gst_gen =
      pairgen::make_pair_source(pairgen::Backend::kGst, ests, forest, w, psi);
  auto kmer_gen =
      pairgen::make_pair_source(pairgen::Backend::kKmer, ests, forest, w, psi);
  auto fm_gen =
      pairgen::make_pair_source(pairgen::Backend::kFm, ests, forest, w, psi);
  const auto gst_records = drain_records(*gst_gen);
  const auto kmer_records = drain_records(*kmer_gen);
  const auto fm_records = drain_records(*fm_gen);

  // The two seed backends enumerate the identical record stream: same
  // groups, same extension, same final ordering.
  EXPECT_EQ(kmer_records, fm_records);

  // Seed-backend streams are duplicate-free and non-increasing in
  // match length.
  std::set<PairRecord> kmer_set(kmer_records.begin(), kmer_records.end());
  EXPECT_EQ(kmer_set.size(), kmer_records.size()) << "duplicate records";
  for (std::size_t i = 1; i < kmer_records.size(); ++i) {
    EXPECT_LE(std::get<3>(kmer_records[i]), std::get<3>(kmer_records[i - 1]));
  }

  // Every GST record is found by the seed backends too (the converse can
  // fail only through GST's distinct-substring merging).
  for (const auto& r : gst_records) {
    EXPECT_TRUE(kmer_set.count(r) > 0)
        << "gst record (" << std::get<0>(r) << "," << std::get<1>(r)
        << ",rc=" << std::get<2>(r) << ",len=" << std::get<3>(r)
        << ") missing from seed backends";
  }

  // At the granularity the clustering consumes — which ESTs get paired —
  // all three backends agree exactly (Lemma 3 holds for each).
  std::set<std::pair<bio::EstId, bio::EstId>> gst_pairs, kmer_pairs;
  for (const auto& r : gst_records) {
    gst_pairs.insert({std::get<0>(r), std::get<1>(r)});
  }
  for (const auto& r : kmer_records) {
    kmer_pairs.insert({std::get<0>(r), std::get<1>(r)});
  }
  EXPECT_EQ(gst_pairs, kmer_pairs);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PairSourceFuzz,
                         testing::Range<std::uint64_t>(800, 830));

class QualityFuzz : public testing::TestWithParam<std::uint64_t> {};

TEST_P(QualityFuzz, FastCounterMatchesReference) {
  const std::uint64_t seed = fuzz_seed(GetParam());
  SCOPED_TRACE(seed_trace(seed));
  Prng rng(seed);
  std::size_t n = 5 + rng.uniform(80);
  std::vector<std::uint32_t> pred(n), truth(n);
  for (auto& x : pred) {
    x = static_cast<std::uint32_t>(rng.uniform(1 + rng.uniform(12)));
  }
  for (auto& x : truth) {
    x = static_cast<std::uint32_t>(rng.uniform(1 + rng.uniform(12)));
  }
  auto fast = quality::count_pairs(pred, truth);
  auto ref = quality::count_pairs_reference(pred, truth);
  EXPECT_EQ(fast.tp, ref.tp);
  EXPECT_EQ(fast.fp, ref.fp);
  EXPECT_EQ(fast.fn, ref.fn);
  EXPECT_EQ(fast.tn, ref.tn);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QualityFuzz,
                         testing::Range<std::uint64_t>(700, 720));

}  // namespace
}  // namespace estclust
