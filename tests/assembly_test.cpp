#include <gtest/gtest.h>

#include <mutex>
#include <set>

#include "assembly/consensus.hpp"
#include "assembly/layout.hpp"
#include "bio/alphabet.hpp"
#include "mpr/runtime.hpp"
#include "pace/parallel.hpp"
#include "pace/sequential.hpp"
#include "sim/workload.hpp"
#include "util/prng.hpp"

namespace estclust::assembly {
namespace {

using bio::EstSet;
using bio::Sequence;

std::string random_dna(Prng& rng, std::size_t len) {
  std::string s(len, 'A');
  for (auto& c : s) c = bio::decode_base(static_cast<int>(rng.uniform(4)));
  return s;
}

pace::PaceConfig config() {
  pace::PaceConfig cfg;
  cfg.gst.window = 6;
  cfg.psi = 22;
  cfg.overlap.min_quality = 0.8;
  cfg.overlap.min_overlap = 40;
  return cfg;
}

TEST(Layout, TwoDovetailedEsts) {
  Prng rng(1);
  std::string mrna = random_dna(rng, 300);
  EstSet ests({{"left", mrna.substr(0, 180)}, {"right", mrna.substr(100, 200)}});
  auto res = pace::cluster_sequential(ests, config());
  ASSERT_FALSE(res.overlaps.empty());
  auto layouts = layout_clusters(ests, res.overlaps);
  ASSERT_EQ(layouts.size(), 1u);
  const Layout& l = layouts[0];
  ASSERT_EQ(l.placements.size(), 2u);
  EXPECT_EQ(l.placements[0].offset, 0);
  // The right read starts 100 bases into the transcript.
  EXPECT_EQ(l.placements[1].offset, 100);
  EXPECT_EQ(l.length, 300u);
}

TEST(Layout, ReverseComplementReadPlacedCorrectly) {
  Prng rng(2);
  std::string mrna = random_dna(rng, 300);
  EstSet ests({{"fwd", mrna.substr(0, 180)},
               {"rev", bio::reverse_complement(mrna.substr(100, 200))}});
  auto res = pace::cluster_sequential(ests, config());
  ASSERT_FALSE(res.overlaps.empty());
  auto layouts = layout_clusters(ests, res.overlaps);
  ASSERT_EQ(layouts.size(), 1u);
  const Layout& l = layouts[0];
  ASSERT_EQ(l.placements.size(), 2u);
  // One of the two must be flagged rc, and the extent must be the full
  // 300 bases either way.
  EXPECT_NE(l.placements[0].rc, l.placements[1].rc);
  EXPECT_EQ(l.length, 300u);
}

TEST(Layout, SingletonsBecomeOwnComponents) {
  Prng rng(3);
  EstSet ests({{"a", random_dna(rng, 120)}, {"b", random_dna(rng, 120)}});
  std::vector<pace::AcceptedOverlap> none;
  auto layouts = layout_clusters(ests, none);
  ASSERT_EQ(layouts.size(), 2u);
  EXPECT_EQ(layouts[0].placements.size(), 1u);
  EXPECT_EQ(layouts[0].length, 120u);
}

TEST(Layout, OffsetsNonNegativeAndExtentTight) {
  Prng rng(4);
  std::string mrna = random_dna(rng, 500);
  std::vector<Sequence> seqs;
  for (int i = 0; i < 8; ++i) {
    std::size_t start = static_cast<std::size_t>(i) * 50;
    seqs.push_back({"r" + std::to_string(i), mrna.substr(start, 150)});
  }
  EstSet ests(std::move(seqs));
  auto res = pace::cluster_sequential(ests, config());
  auto layouts = layout_clusters(ests, res.overlaps);
  ASSERT_EQ(layouts.size(), 1u);
  long max_end = 0;
  for (const auto& p : layouts[0].placements) {
    EXPECT_GE(p.offset, 0);
    max_end = std::max(
        max_end, p.offset + static_cast<long>(
                                ests.str(bio::EstSet::forward_sid(p.est))
                                    .size()));
  }
  EXPECT_EQ(static_cast<long>(layouts[0].length), max_end);
}

TEST(Consensus, ErrorFreeReadsReconstructTranscriptExactly) {
  Prng rng(5);
  std::string mrna = random_dna(rng, 600);
  std::vector<Sequence> seqs;
  for (int i = 0; i < 10; ++i) {
    std::size_t start = static_cast<std::size_t>(i) * 50;
    std::string read = mrna.substr(start, 150);
    if (i % 3 == 1) read = bio::reverse_complement(read);
    seqs.push_back({"r" + std::to_string(i), read});
  }
  EstSet ests(std::move(seqs));
  auto res = pace::cluster_sequential(ests, config());
  ASSERT_EQ(res.stats.num_clusters, 1u);
  auto contigs = assemble_clusters(ests, res.overlaps);
  ASSERT_EQ(contigs.size(), 1u);
  const std::string& cons = contigs[0].consensus;
  // Reads span [0, 600): the consensus must equal the covered transcript
  // region in one orientation or the other.
  bool fwd = mrna.find(cons) != std::string::npos;
  bool rev = bio::reverse_complement(mrna).find(cons) != std::string::npos;
  EXPECT_EQ(cons.size(), 600u);
  EXPECT_TRUE(fwd || rev) << "consensus is not a transcript substring";
}

TEST(Consensus, MajorityVoteFixesScatteredErrors) {
  Prng rng(6);
  std::string mrna = random_dna(rng, 400);
  std::vector<Sequence> seqs;
  // Deep coverage: every base covered by ~6 reads with 1% substitutions.
  for (int i = 0; i < 16; ++i) {
    std::size_t start = rng.uniform(250);
    std::string read = mrna.substr(start, 150);
    for (auto& c : read) {
      if (rng.bernoulli(0.01)) {
        c = bio::decode_base(
            (bio::encode_base(c) + 1 + static_cast<int>(rng.uniform(3))) % 4);
      }
    }
    seqs.push_back({"r" + std::to_string(i), read});
  }
  EstSet ests(std::move(seqs));
  auto res = pace::cluster_sequential(ests, config());
  auto contigs = assemble_clusters(ests, res.overlaps);
  ASSERT_EQ(contigs.size(), 1u);
  const std::string& cons = contigs[0].consensus;
  // Identity of consensus against the matching transcript window: the
  // vote should push it above any single read's 99%.
  std::size_t matches = 0, best = 0;
  for (std::size_t shift = 0; shift + cons.size() <= mrna.size(); ++shift) {
    matches = 0;
    for (std::size_t i = 0; i < cons.size(); ++i) {
      if (cons[i] == mrna[shift + i]) ++matches;
    }
    best = std::max(best, matches);
  }
  EXPECT_GT(static_cast<double>(best) / cons.size(), 0.995);
}

TEST(Consensus, CoverageCountsReads) {
  Prng rng(7);
  std::string mrna = random_dna(rng, 300);
  EstSet ests({{"a", mrna.substr(0, 200)}, {"b", mrna.substr(100, 200)}});
  auto res = pace::cluster_sequential(ests, config());
  auto contigs = assemble_clusters(ests, res.overlaps);
  ASSERT_EQ(contigs.size(), 1u);
  const auto& cov = contigs[0].coverage;
  ASSERT_EQ(cov.size(), 300u);
  EXPECT_EQ(cov[50], 1);    // only read a
  EXPECT_EQ(cov[150], 2);   // both reads
  EXPECT_EQ(cov[250], 1);   // only read b
}

TEST(Consensus, DisjointGenesYieldSeparateContigs) {
  Prng rng(8);
  std::string g1 = random_dna(rng, 300);
  std::string g2 = random_dna(rng, 300);
  EstSet ests({{"a1", g1.substr(0, 180)},
               {"a2", g1.substr(100, 200)},
               {"b1", g2.substr(0, 180)},
               {"b2", g2.substr(100, 200)}});
  auto res = pace::cluster_sequential(ests, config());
  auto contigs = assemble_clusters(ests, res.overlaps);
  ASSERT_EQ(contigs.size(), 2u);
  EXPECT_EQ(contigs[0].num_ests(), 2u);
  EXPECT_EQ(contigs[1].num_ests(), 2u);
}

TEST(Consensus, EndToEndSimulatedWorkload) {
  sim::SimConfig wcfg;
  wcfg.num_genes = 5;
  wcfg.num_ests = 60;
  wcfg.est_len_mean = 220;
  wcfg.est_len_min = 100;
  wcfg.sub_rate = 0.005;
  wcfg.ins_rate = wcfg.del_rate = 0.0;
  wcfg.seed = 21;
  auto wl = sim::generate(wcfg);
  auto res = pace::cluster_sequential(wl.ests, config());
  auto contigs = assemble_clusters(wl.ests, res.overlaps);
  // Every EST appears in exactly one contig.
  std::size_t placed = 0;
  for (const auto& c : contigs) placed += c.num_ests();
  EXPECT_EQ(placed, wl.ests.num_ests());
  // Contig count equals cluster count.
  EXPECT_EQ(contigs.size(), res.stats.num_clusters);
  // No contig shorter than its longest member EST.
  for (const auto& c : contigs) {
    for (const auto& p : c.layout.placements) {
      EXPECT_GE(c.consensus.size(),
                wl.ests.str(bio::EstSet::forward_sid(p.est)).size());
    }
  }
}

TEST(ParallelOverlaps, ComponentsMatchClusteringAndSequentialContigs) {
  // The parallel master records its own accepted-overlap set; it can
  // differ from the sequential one, but its connected components must be
  // the clustering, so assembly groups the same ESTs.
  sim::SimConfig wcfg;
  wcfg.num_genes = 6;
  wcfg.num_ests = 80;
  wcfg.est_len_mean = 220;
  wcfg.est_len_min = 100;
  wcfg.seed = 33;
  auto wl = sim::generate(wcfg);
  auto cfg = config();

  auto seq = pace::cluster_sequential(wl.ests, cfg);
  auto seq_contigs = assemble_clusters(wl.ests, seq.overlaps);

  mpr::Runtime rt(5, mpr::CostModel{});
  std::vector<pace::AcceptedOverlap> par_overlaps;
  std::vector<std::uint32_t> par_labels;
  std::mutex mu;
  rt.run([&](mpr::Communicator& comm) {
    auto res = pace::cluster_parallel(comm, wl.ests, cfg);
    if (comm.rank() == 0) {
      std::lock_guard<std::mutex> lock(mu);
      par_overlaps = std::move(res.overlaps);
      par_labels = std::move(res.labels);
    }
  });
  ASSERT_FALSE(par_overlaps.empty());
  auto par_contigs = assemble_clusters(wl.ests, par_overlaps);

  // Member sets per contig must agree with both the labels and the
  // sequential contigs.
  auto membership = [&](const std::vector<Contig>& contigs) {
    std::vector<std::set<bio::EstId>> out;
    for (const auto& c : contigs) {
      std::set<bio::EstId> m;
      for (const auto& p : c.layout.placements) m.insert(p.est);
      out.push_back(std::move(m));
    }
    return out;
  };
  EXPECT_EQ(membership(par_contigs), membership(seq_contigs));
  EXPECT_EQ(par_contigs.size(),
            std::set<std::uint32_t>(par_labels.begin(), par_labels.end())
                .size());
}

}  // namespace
}  // namespace estclust::assembly
