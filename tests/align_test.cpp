#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "align/anchored.hpp"
#include "align/banded.hpp"
#include "align/kernel.hpp"
#include "align/nw.hpp"
#include "align/scoring.hpp"
#include "bio/alphabet.hpp"
#include "util/check.hpp"
#include "util/prng.hpp"

namespace estclust::align {
namespace {

Scoring sc() { return Scoring{}; }  // match 2, mismatch -3, gap -4

std::string random_dna(Prng& rng, std::size_t len) {
  std::string s(len, 'A');
  for (auto& c : s) c = bio::decode_base(static_cast<int>(rng.uniform(4)));
  return s;
}

/// Mutates `s` with the given per-base substitution/indel rates.
std::string mutate(Prng& rng, const std::string& s, double sub, double ins,
                   double del) {
  std::string out;
  for (char c : s) {
    if (rng.bernoulli(del)) continue;
    if (rng.bernoulli(ins))
      out.push_back(bio::decode_base(static_cast<int>(rng.uniform(4))));
    if (rng.bernoulli(sub)) {
      int code = (bio::encode_base(c) + 1 + static_cast<int>(rng.uniform(3))) % 4;
      out.push_back(bio::decode_base(code));
    } else {
      out.push_back(c);
    }
  }
  if (out.empty()) out = "A";
  return out;
}

// --- Needleman-Wunsch ------------------------------------------------------

TEST(GlobalAlign, IdenticalStringsScoreAllMatches) {
  auto r = global_align("ACGTACGT", "ACGTACGT", sc());
  EXPECT_EQ(r.score, sc().ideal(8));
  EXPECT_EQ(r.matches, 8u);
  EXPECT_EQ(r.mismatches, 0u);
  EXPECT_EQ(r.gaps, 0u);
  EXPECT_EQ(r.ops, "MMMMMMMM");
  EXPECT_DOUBLE_EQ(r.identity(), 1.0);
}

TEST(GlobalAlign, SingleSubstitution) {
  auto r = global_align("ACGT", "AGGT", sc());
  EXPECT_EQ(r.score, 3 * sc().match + sc().mismatch);
  EXPECT_EQ(r.mismatches, 1u);
  EXPECT_EQ(r.ops, "MXMM");
}

TEST(GlobalAlign, SingleGap) {
  auto r = global_align("ACGT", "ACT", sc());
  EXPECT_EQ(r.score, 3 * sc().match + sc().gap);
  EXPECT_EQ(r.gaps, 1u);
}

TEST(GlobalAlign, EmptyVersusNonEmpty) {
  auto r = global_align("", "ACG", sc());
  EXPECT_EQ(r.score, 3 * sc().gap);
  EXPECT_EQ(r.gaps, 3u);
  EXPECT_EQ(r.ops, "III");
}

TEST(GlobalAlign, BothEmpty) {
  auto r = global_align("", "", sc());
  EXPECT_EQ(r.score, 0);
  EXPECT_TRUE(r.ops.empty());
}

TEST(GlobalAlign, SymmetricScore) {
  Prng rng(1);
  for (int t = 0; t < 10; ++t) {
    std::string a = random_dna(rng, 30 + rng.uniform(30));
    std::string b = random_dna(rng, 30 + rng.uniform(30));
    EXPECT_EQ(global_align(a, b, sc()).score, global_align(b, a, sc()).score);
  }
}

TEST(GlobalAlign, OpsTranscriptIsConsistent) {
  Prng rng(2);
  for (int t = 0; t < 20; ++t) {
    std::string a = random_dna(rng, rng.uniform(40));
    std::string b = random_dna(rng, rng.uniform(40));
    auto r = global_align(a, b, sc());
    // Replay the transcript and confirm lengths and score match.
    std::size_t i = 0, j = 0;
    long score = 0;
    for (char op : r.ops) {
      switch (op) {
        case 'M':
          ASSERT_EQ(a[i], b[j]);
          score += sc().match;
          ++i;
          ++j;
          break;
        case 'X':
          ASSERT_NE(a[i], b[j]);
          score += sc().mismatch;
          ++i;
          ++j;
          break;
        case 'D':
          score += sc().gap;
          ++i;
          break;
        case 'I':
          score += sc().gap;
          ++j;
          break;
        default:
          FAIL() << "bad op " << op;
      }
    }
    EXPECT_EQ(i, a.size());
    EXPECT_EQ(j, b.size());
    EXPECT_EQ(score, r.score);
  }
}

TEST(GlobalAlignAffine, MatchesLinearWhenGapsAbsent) {
  auto r = global_align_affine("ACGTACGT", "ACGTACGT", sc());
  EXPECT_EQ(r.score, sc().ideal(8));
}

TEST(GlobalAlignAffine, LongGapCheaperThanLinear) {
  // A 6-base gap costs open + 6*extend = -17 affine vs -24 linear.
  std::string a = "ACGTACGTACGT";
  std::string b = "ACGTACGT";  // 4 missing at the end wherever optimal
  auto affine = global_align_affine(a, b, sc());
  auto linear = global_align(a, b, sc());
  EXPECT_GT(affine.score, linear.score);
}

TEST(GlobalAlignAffine, PrefersOneLongGapOverTwoShort) {
  Scoring s = sc();
  // Construct strings where two isolated deletions could also be aligned as
  // one block; affine scoring must favour contiguity in the transcript.
  auto r = global_align_affine("AAAACCCCGGGG", "AAAAGGGG", s);
  // 4-gap block: open + 4*extend = -13; plus 8 matches = 16 -> score 3.
  EXPECT_EQ(r.score, 8 * s.match + s.gap_open + 4 * s.gap_extend);
}

TEST(LocalAlign, FindsEmbeddedMatch) {
  // Shared core "CCCGGGTTT" embedded in different junk.
  auto r = local_align("AAAACCCGGGTTTAAAA", "TGCCCGGGTTTGCA", sc());
  EXPECT_EQ(r.score, 9 * sc().match);
  EXPECT_EQ(r.matches, 9u);
}

TEST(LocalAlign, NoPositiveScoreMeansEmptyAlignment) {
  auto r = local_align("AAAA", "CCCC", sc());
  EXPECT_EQ(r.score, 0);
  EXPECT_TRUE(r.ops.empty());
}

TEST(LocalAlign, ScoreNeverNegative) {
  Prng rng(3);
  for (int t = 0; t < 10; ++t) {
    auto r = local_align(random_dna(rng, 50), random_dna(rng, 50), sc());
    EXPECT_GE(r.score, 0);
  }
}

TEST(LocalAlign, LocalAtLeastGlobalScore) {
  Prng rng(4);
  for (int t = 0; t < 10; ++t) {
    std::string a = random_dna(rng, 40);
    std::string b = random_dna(rng, 40);
    EXPECT_GE(local_align(a, b, sc()).score, global_align(a, b, sc()).score);
  }
}

TEST(LocalAlignAffine, IdenticalStringsAllMatch) {
  auto r = local_align_affine("ACGTACGTAC", "ACGTACGTAC", sc());
  EXPECT_EQ(r.score, sc().ideal(10));
  EXPECT_EQ(r.ops, "MMMMMMMMMM");
}

TEST(LocalAlignAffine, NoPositiveScoreMeansEmpty) {
  auto r = local_align_affine("AAAA", "CCCC", sc());
  EXPECT_EQ(r.score, 0);
  EXPECT_TRUE(r.ops.empty());
}

TEST(LocalAlignAffine, LongInsertionStaysOneGapRun) {
  Prng rng(61);
  std::string flank1 = random_dna(rng, 60);
  std::string inserted = random_dna(rng, 50);
  std::string flank2 = random_dna(rng, 60);
  std::string a = flank1 + inserted + flank2;
  std::string b = flank1 + flank2;
  auto r = local_align_affine(a, b, sc());
  // Count maximal gap runs: affine scoring must keep the skip contiguous.
  std::size_t runs = 0, longest = 0, cur = 0;
  for (char c : r.ops) {
    if (c == 'D' || c == 'I') {
      if (cur == 0) ++runs;
      ++cur;
      longest = std::max(longest, cur);
    } else {
      cur = 0;
    }
  }
  EXPECT_EQ(runs, 1u);
  EXPECT_EQ(longest, 50u);
}

TEST(LocalAlignAffine, TranscriptReplayMatchesScore) {
  Prng rng(62);
  for (int t = 0; t < 15; ++t) {
    std::string a = random_dna(rng, 20 + rng.uniform(60));
    std::string b = random_dna(rng, 20 + rng.uniform(60));
    auto r = local_align_affine(a, b, sc());
    // Replay ops over the aligned region and recompute the affine score.
    std::size_t i = r.a_begin, j = r.b_begin;
    long score = 0;
    char prev = 0;
    for (char op : r.ops) {
      switch (op) {
        case 'M':
          ASSERT_EQ(a[i], b[j]);
          score += sc().match;
          ++i;
          ++j;
          break;
        case 'X':
          ASSERT_NE(a[i], b[j]);
          score += sc().mismatch;
          ++i;
          ++j;
          break;
        case 'D':
          score += sc().gap_extend + (prev == 'D' ? 0 : sc().gap_open);
          ++i;
          break;
        case 'I':
          score += sc().gap_extend + (prev == 'I' ? 0 : sc().gap_open);
          ++j;
          break;
        default:
          FAIL();
      }
      prev = op;
    }
    EXPECT_EQ(i, r.a_end);
    EXPECT_EQ(j, r.b_end);
    EXPECT_EQ(score, r.score);
  }
}

TEST(LocalAlignAffine, AtLeastLinearLocalWhenGapsCheap) {
  // With gap_open = 0 and gap_extend = gap, affine degenerates to linear.
  Prng rng(63);
  Scoring s = sc();
  s.gap_open = 0;
  s.gap_extend = s.gap;
  for (int t = 0; t < 10; ++t) {
    std::string a = random_dna(rng, 40);
    std::string b = random_dna(rng, 40);
    EXPECT_EQ(local_align_affine(a, b, s).score,
              local_align(a, b, sc()).score);
  }
}

// --- Banded kernels ---------------------------------------------------------

TEST(BandedGlobal, WideBandMatchesFullNW) {
  Prng rng(5);
  for (int t = 0; t < 25; ++t) {
    std::string a = random_dna(rng, rng.uniform(40));
    std::string b = random_dna(rng, rng.uniform(40));
    long full = global_align(a, b, sc()).score;
    long banded = banded_global_score(a, b, sc(), 64);
    EXPECT_EQ(banded, full) << "a=" << a << " b=" << b;
  }
}

TEST(BandedGlobal, NarrowBandLowerBoundsFull) {
  Prng rng(6);
  for (int t = 0; t < 25; ++t) {
    std::string a = random_dna(rng, 20 + rng.uniform(20));
    std::string b = mutate(rng, a, 0.05, 0.02, 0.02);
    long full = global_align(a, b, sc()).score;
    long banded = banded_global_score(a, b, sc(), 6);
    EXPECT_LE(banded, full);
  }
}

TEST(BandedGlobal, InfeasibleLengthDifference) {
  std::uint64_t cells = 0;
  long s = banded_global_score("AAAAAAAAAA", "AA", sc(), 3, &cells);
  EXPECT_LT(s, -1000000);  // sentinel
  EXPECT_EQ(cells, 0u);
}

TEST(BandedGlobal, CellCountRespectsBand) {
  std::uint64_t cells = 0;
  std::string a(100, 'A'), b(100, 'A');
  banded_global_score(a, b, sc(), 5, &cells);
  EXPECT_LE(cells, 100u * 11u + 11u);
}

TEST(ExtendOverlap, EmptySidesAreBoundary) {
  auto r = extend_overlap("", "ACG", sc(), 4);
  EXPECT_EQ(r.score, 0);
  EXPECT_TRUE(r.a_exhausted);
  EXPECT_FALSE(r.b_exhausted);
  auto r2 = extend_overlap("ACG", "", sc(), 4);
  EXPECT_TRUE(r2.b_exhausted);
  auto r3 = extend_overlap("", "", sc(), 4);
  EXPECT_TRUE(r3.a_exhausted);
  EXPECT_TRUE(r3.b_exhausted);
}

TEST(ExtendOverlap, PerfectSharedPrefixConsumesShorter) {
  auto r = extend_overlap("ACGTAC", "ACGTACGGTT", sc(), 4);
  EXPECT_EQ(r.score, 6 * sc().match);
  EXPECT_TRUE(r.a_exhausted);
  EXPECT_EQ(r.a_len, 6u);
  EXPECT_EQ(r.b_len, 6u);
}

TEST(ExtendOverlap, AgreesWithReferenceUnderWideBand) {
  Prng rng(7);
  for (int t = 0; t < 40; ++t) {
    std::string a = random_dna(rng, rng.uniform(30));
    std::string b = random_dna(rng, rng.uniform(30));
    auto fast = extend_overlap(a, b, sc(), 40);
    auto ref = extend_overlap_reference(a, b, sc());
    EXPECT_EQ(fast.score, ref.score) << "a=" << a << " b=" << b;
    EXPECT_EQ(fast.a_len, ref.a_len);
    EXPECT_EQ(fast.b_len, ref.b_len);
  }
}

TEST(ExtendOverlap, NarrowBandNeverBeatsReference) {
  Prng rng(8);
  for (int t = 0; t < 30; ++t) {
    std::string a = random_dna(rng, 10 + rng.uniform(30));
    std::string b = mutate(rng, a, 0.1, 0.03, 0.03);
    auto fast = extend_overlap(a, b, sc(), 4);
    auto ref = extend_overlap_reference(a, b, sc());
    EXPECT_LE(fast.score, ref.score);
  }
}

TEST(ExtendOverlap, ToleratesScatteredErrors) {
  Prng rng(9);
  std::string a = random_dna(rng, 200);
  std::string b = mutate(rng, a, 0.02, 0.005, 0.005);
  auto r = extend_overlap(a, b, sc(), 8);
  EXPECT_TRUE(r.a_exhausted || r.b_exhausted);
  // Quality near 1: most of the extension is matches.
  double q = static_cast<double>(r.score) /
             (sc().match * static_cast<double>(std::min(r.a_len, r.b_len)));
  EXPECT_GT(q, 0.75);
}

TEST(ExtendOverlap, CellCountLinearInLength) {
  std::string a(500, 'A'), b(500, 'A');
  auto r = extend_overlap(a, b, sc(), 4);
  EXPECT_LE(r.cells, 500u * 9u + 9u);
}

// --- Anchored alignment and overlap classification --------------------------

OverlapParams params() {
  OverlapParams p;
  p.band = 8;
  p.min_quality = 0.8;
  p.min_overlap = 10;
  return p;
}

// Finds the anchor of a known shared substring for test setup.
Anchor make_anchor(const std::string& a, const std::string& b,
                   const std::string& core) {
  Anchor an;
  an.a_pos = a.find(core);
  an.b_pos = b.find(core);
  an.len = core.size();
  ESTCLUST_CHECK(an.a_pos != std::string::npos);
  ESTCLUST_CHECK(an.b_pos != std::string::npos);
  return an;
}

TEST(Anchored, DovetailABDetected) {
  Prng rng(10);
  std::string core = random_dna(rng, 40);
  std::string a = random_dna(rng, 60) + core;        // core is suffix of a
  std::string b = core + random_dna(rng, 60);        // core is prefix of b
  auto r = align_anchored(a, b, make_anchor(a, b, core), params());
  EXPECT_EQ(r.kind, OverlapKind::kABDovetail);
  EXPECT_EQ(r.score, sc().ideal(core.size()));
  EXPECT_TRUE(accept_overlap(r, params()));
}

TEST(Anchored, DovetailBADetected) {
  Prng rng(11);
  std::string core = random_dna(rng, 40);
  std::string a = core + random_dna(rng, 60);
  std::string b = random_dna(rng, 60) + core;
  auto r = align_anchored(a, b, make_anchor(a, b, core), params());
  EXPECT_EQ(r.kind, OverlapKind::kBADovetail);
  EXPECT_TRUE(accept_overlap(r, params()));
}

TEST(Anchored, ContainmentOfA) {
  Prng rng(12);
  std::string a = random_dna(rng, 50);
  std::string b = random_dna(rng, 30) + a + random_dna(rng, 30);
  Anchor an{0, b.find(a), a.size()};
  auto r = align_anchored(a, b, an, params());
  EXPECT_EQ(r.kind, OverlapKind::kAContainedInB);
  EXPECT_TRUE(accept_overlap(r, params()));
}

TEST(Anchored, ContainmentOfB) {
  Prng rng(13);
  std::string b = random_dna(rng, 50);
  std::string a = random_dna(rng, 30) + b + random_dna(rng, 30);
  Anchor an{a.find(b), 0, b.size()};
  auto r = align_anchored(a, b, an, params());
  EXPECT_EQ(r.kind, OverlapKind::kBContainedInA);
}

TEST(Anchored, InteriorSharedSubstringIsNotAnOverlap) {
  Prng rng(14);
  // Shared 20-mer strictly interior to both strings, different flanks: the
  // extension cannot reach any boundary cleanly.
  std::string core = random_dna(rng, 20);
  std::string a = random_dna(rng, 80) + core + random_dna(rng, 80);
  std::string b = random_dna(rng, 80) + core + random_dna(rng, 80);
  auto r = align_anchored(a, b, make_anchor(a, b, core), params());
  EXPECT_FALSE(accept_overlap(r, params()));
}

TEST(Anchored, NoisyOverlapStillAccepted) {
  Prng rng(15);
  std::string overlap = random_dna(rng, 120);
  std::string a = random_dna(rng, 100) + overlap;
  std::string noisy = mutate(rng, overlap, 0.02, 0.005, 0.005);
  std::string b = noisy + random_dna(rng, 100);
  // Anchor on a shared exact stretch. Find a common 20-mer.
  Anchor an;
  bool found = false;
  for (std::size_t i = 0; i + 20 <= overlap.size() && !found; ++i) {
    auto piece = overlap.substr(i, 20);
    auto pos_b = b.find(piece);
    if (pos_b != std::string::npos && pos_b < noisy.size()) {
      an = {a.find(piece), pos_b, 20};
      found = true;
    }
  }
  ASSERT_TRUE(found);
  auto r = align_anchored(a, b, an, params());
  EXPECT_EQ(r.kind, OverlapKind::kABDovetail);
  EXPECT_GT(r.quality, 0.8);
  EXPECT_TRUE(accept_overlap(r, params()));
}

TEST(Anchored, ShortOverlapRejectedByMinOverlap) {
  Prng rng(16);
  std::string core = random_dna(rng, 8);  // below min_overlap = 10
  std::string a = random_dna(rng, 50) + core;
  std::string b = core + random_dna(rng, 50);
  Anchor an{50, 0, 8};
  auto r = align_anchored(a, b, an, params());
  if (r.kind == OverlapKind::kABDovetail) {
    EXPECT_FALSE(accept_overlap(r, params()));
  }
}

TEST(Anchored, QualityCapAtOne) {
  std::string a = "ACGTACGTAC";
  auto r = align_anchored(a, a, Anchor{0, 0, a.size()}, params());
  EXPECT_DOUBLE_EQ(r.quality, 1.0);
  EXPECT_EQ(r.kind, OverlapKind::kAContainedInB);  // containment tie -> A
}

TEST(Anchored, AnchorRangeChecked) {
  EXPECT_THROW(
      align_anchored("ACG", "ACG", Anchor{2, 0, 5}, params()),
      CheckError);
}

TEST(Anchored, KindNames) {
  EXPECT_STREQ(to_string(OverlapKind::kNone), "none");
  EXPECT_STREQ(to_string(OverlapKind::kABDovetail), "ab-dovetail");
  EXPECT_STREQ(to_string(OverlapKind::kBADovetail), "ba-dovetail");
  EXPECT_STREQ(to_string(OverlapKind::kAContainedInB), "a-contained");
  EXPECT_STREQ(to_string(OverlapKind::kBContainedInA), "b-contained");
}

TEST(Anchored, CellWorkBoundedByBandTimesLength) {
  Prng rng(17);
  std::string overlap = random_dna(rng, 300);
  std::string a = random_dna(rng, 300) + overlap;
  std::string b = overlap + random_dna(rng, 300);
  Anchor an{300, 0, overlap.size()};
  auto r = align_anchored(a, b, an, params());
  // Full NW would be ~600*600 = 360k cells; anchored extension is far less.
  EXPECT_LT(r.cells, 40000u);
}

class RandomOverlapTest : public testing::TestWithParam<int> {};

TEST_P(RandomOverlapTest, TrueOverlapsAcceptedAcrossSeeds) {
  Prng rng(static_cast<std::uint64_t>(GetParam()));
  std::string overlap = random_dna(rng, 80 + rng.uniform(80));
  std::string a = random_dna(rng, 50 + rng.uniform(100)) + overlap;
  std::string b = overlap + random_dna(rng, 50 + rng.uniform(100));
  Anchor an{a.size() - overlap.size(), 0, overlap.size()};
  auto r = align_anchored(a, b, an, params());
  EXPECT_EQ(r.kind, OverlapKind::kABDovetail);
  EXPECT_TRUE(accept_overlap(r, params()));
  EXPECT_DOUBLE_EQ(r.quality, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomOverlapTest, testing::Range(100, 120));

// ---------------------------------------------------------------------------
// Band-edge arithmetic: the window math is all unsigned, so the degenerate
// geometries (band 0, empty sides, bands at or beyond the string lengths)
// are exactly where a wrap bug would hide. Pin each one.
// ---------------------------------------------------------------------------

TEST(BandEdge, BandZeroIsTheDiagonal) {
  AlignArena arena;
  // Equal strings: the diagonal alone carries the full-match extension.
  auto r = extend_overlap("ACGTACGT", "ACGTACGT", sc(), 0, arena);
  EXPECT_EQ(r.score, 8 * sc().match);
  EXPECT_EQ(r.a_len, 8u);
  EXPECT_EQ(r.b_len, 8u);
  EXPECT_TRUE(r.a_exhausted);
  EXPECT_TRUE(r.b_exhausted);
  EXPECT_EQ(r.cells, 8u);  // one cell per row, rows 1..8
}

TEST(BandEdge, BandZeroUnequalLengthsStopAtTheShorter) {
  AlignArena arena;
  // Band 0 with m > n: rows past n have no live cells; the best boundary
  // is the j == n cell of row n.
  auto r = extend_overlap("ACGTAC", "ACG", sc(), 0, arena);
  EXPECT_EQ(r.score, 3 * sc().match);
  EXPECT_EQ(r.a_len, 3u);
  EXPECT_EQ(r.b_len, 3u);
  EXPECT_FALSE(r.a_exhausted);
  EXPECT_TRUE(r.b_exhausted);
  EXPECT_EQ(r.cells, 3u);
}

TEST(BandEdge, EmptySidesAreBoundaryCells) {
  AlignArena arena;
  for (std::size_t band : {std::size_t{0}, std::size_t{8}}) {
    auto r = extend_overlap("", "ACGT", sc(), band, arena);
    EXPECT_EQ(r.score, 0);
    EXPECT_TRUE(r.a_exhausted);
    EXPECT_FALSE(r.b_exhausted);
    auto r2 = extend_overlap("", "", sc(), band, arena);
    EXPECT_EQ(r2.score, 0);
    EXPECT_TRUE(r2.a_exhausted);
    EXPECT_TRUE(r2.b_exhausted);
  }
}

TEST(BandEdge, HugeBandIsClampedNotOverflowed) {
  // band = SIZE_MAX would make width = 2*band + 1 wrap to SIZE_MAX without
  // the clamp; results must equal the widest meaningful band.
  AlignArena arena;
  Prng rng(99);
  std::string a = random_dna(rng, 30);
  std::string b = mutate(rng, a, 0.1, 0.03, 0.03);
  auto wide = extend_overlap(a, b, sc(), a.size() + b.size(), arena);
  auto huge =
      extend_overlap(a, b, sc(), std::numeric_limits<std::size_t>::max(),
                     arena);
  EXPECT_EQ(huge.score, wide.score);
  EXPECT_EQ(huge.a_len, wide.a_len);
  EXPECT_EQ(huge.b_len, wide.b_len);
  EXPECT_EQ(huge.cells, wide.cells);
}

TEST(BandEdge, BandAtLeastLengthEqualsFullReference) {
  AlignArena arena;
  Prng rng(7);
  for (int iter = 0; iter < 50; ++iter) {
    std::string a = random_dna(rng, rng.uniform(25));
    std::string b = random_dna(rng, rng.uniform(25));
    auto ref = extend_overlap_reference(a, b, sc());
    // Any band >= max(m, n) covers every cell of the rectangle.
    auto r = extend_overlap(a, b, sc(), std::max(a.size(), b.size()), arena);
    EXPECT_EQ(r.score, ref.score) << "iter " << iter;
    EXPECT_EQ(r.a_len, ref.a_len) << "iter " << iter;
    EXPECT_EQ(r.b_len, ref.b_len) << "iter " << iter;
  }
}

// ---------------------------------------------------------------------------
// AlignArena: growth, shrink policy, and the high-water gauge.
// ---------------------------------------------------------------------------

TEST(AlignArena, ShrinksAfterLongStreakOfSmallRequests) {
  AlignArena arena;
  arena.ensure_width(4096);
  EXPECT_GE(arena.row_capacity(), 4096u);
  // A long run of requests needing at most half the capacity decays the
  // arena to the streak's peak width.
  for (std::size_t i = 0; i < AlignArena::kShrinkAfterUses; ++i) {
    arena.ensure_width(16);
  }
  EXPECT_EQ(arena.row_capacity(), 16u);
}

TEST(AlignArena, LargeRequestResetsTheShrinkStreak) {
  AlignArena arena;
  arena.ensure_width(4096);
  for (std::size_t i = 0; i < AlignArena::kShrinkAfterUses - 1; ++i) {
    arena.ensure_width(16);
  }
  // One request above half capacity interrupts the streak...
  arena.ensure_width(3000);
  EXPECT_GE(arena.row_capacity(), 4096u);
  // ...and the count starts over: kShrinkAfterUses - 1 more small calls
  // must not shrink, the next one does, decaying to the streak peak.
  for (std::size_t i = 0; i < AlignArena::kShrinkAfterUses - 1; ++i) {
    arena.ensure_width(16);
    EXPECT_GE(arena.row_capacity(), 4096u) << "call " << i;
  }
  arena.ensure_width(24);
  EXPECT_EQ(arena.row_capacity(), 24u);
}

TEST(AlignArena, ShrinkDecaysToStreakPeakNotLastRequest) {
  AlignArena arena;
  arena.ensure_width(4096);
  for (std::size_t i = 0; i < AlignArena::kShrinkAfterUses; ++i) {
    // The peak of the small streak (100) must survive the shrink even
    // though the final requests are smaller.
    arena.ensure_width(i == 0 ? 100 : 16);
  }
  EXPECT_EQ(arena.row_capacity(), 100u);
}

TEST(AlignArena, HighWaterGaugeSurvivesShrink) {
  AlignArena arena;
  arena.ensure_simd(4096, 500, 500);
  const std::size_t peak = arena.bytes();
  EXPECT_GE(arena.high_water_bytes(), peak);
  for (std::size_t i = 0; i < AlignArena::kShrinkAfterUses; ++i) {
    arena.ensure_width(16);
  }
  EXPECT_LT(arena.bytes(), peak);
  EXPECT_GE(arena.high_water_bytes(), peak);
}

TEST(AlignArena, ShrinkDoesNotChangeResults) {
  AlignArena big, fresh;
  Prng rng(21);
  std::string a = random_dna(rng, 60);
  std::string b = mutate(rng, a, 0.05, 0.02, 0.02);
  big.ensure_width(1 << 16);
  for (std::size_t i = 0; i <= AlignArena::kShrinkAfterUses; ++i) {
    big.ensure_width(8);
  }
  auto r1 = extend_overlap(a, b, sc(), 8, big);
  auto r2 = extend_overlap(a, b, sc(), 8, fresh);
  EXPECT_EQ(r1.score, r2.score);
  EXPECT_EQ(r1.cells, r2.cells);
}

// ---------------------------------------------------------------------------
// Kernel dispatch: the pure resolution rule and the variant entry point.
// ---------------------------------------------------------------------------

TEST(KernelDispatch, ResolutionMatrix) {
  using KV = KernelVariant;
  // auto / unset pick the best available.
  for (const char* env : {static_cast<const char*>(nullptr), "", "auto"}) {
    EXPECT_EQ(resolve_kernel(env, true, true), KV::kAvx2);
    EXPECT_EQ(resolve_kernel(env, true, false), KV::kSse2);
    EXPECT_EQ(resolve_kernel(env, false, false), KV::kScalar);
  }
  // Explicit requests are honored when available...
  EXPECT_EQ(resolve_kernel("scalar", true, true), KV::kScalar);
  EXPECT_EQ(resolve_kernel("sse2", true, true), KV::kSse2);
  EXPECT_EQ(resolve_kernel("avx2", true, true), KV::kAvx2);
  // ...and degrade to the next-best one otherwise, so a pinned config
  // stays runnable on older hardware.
  EXPECT_EQ(resolve_kernel("avx2", true, false), KV::kSse2);
  EXPECT_EQ(resolve_kernel("avx2", false, false), KV::kScalar);
  EXPECT_EQ(resolve_kernel("sse2", false, false), KV::kScalar);
}

TEST(KernelDispatch, UnknownValueFailsLoudly) {
  EXPECT_THROW(resolve_kernel("sse9", true, true), CheckError);
  EXPECT_THROW(resolve_kernel("Scalar", true, true), CheckError);
  EXPECT_THROW(resolve_kernel(" avx2", true, true), CheckError);
}

TEST(KernelDispatch, VariantNamesAreStable) {
  // Metric/trace consumers key on these strings.
  EXPECT_STREQ(to_string(KernelVariant::kScalar), "scalar");
  EXPECT_STREQ(to_string(KernelVariant::kSse2), "sse2");
  EXPECT_STREQ(to_string(KernelVariant::kAvx2), "avx2");
}

TEST(KernelDispatch, ScalarAlwaysSupported) {
  EXPECT_TRUE(cpu_supports(KernelVariant::kScalar));
}

TEST(KernelDispatch, IneligiblePairsFallBackToScalarResults) {
  // Lowercase bases are valid to the scalar sweep but outside the SIMD
  // kernels' strict-ACGT envelope; every variant must still return the
  // scalar result (via silent fallback), not fail.
  AlignArena arena;
  auto scalar =
      extend_overlap_variant(KernelVariant::kScalar, "acgtacgt", "acgtacgt",
                             sc(), 4, arena);
  for (KernelVariant v : {KernelVariant::kSse2, KernelVariant::kAvx2}) {
    auto r = extend_overlap_variant(v, "acgtacgt", "acgtacgt", sc(), 4, arena);
    EXPECT_EQ(r.score, scalar.score);
    EXPECT_EQ(r.cells, scalar.cells);
  }
}

}  // namespace
}  // namespace estclust::align
