// Fault-injection layer tests: FaultPlan determinism, --faults spec
// parsing, reliable-mode codec hardening, the mailbox primitives the
// retransmission protocol leans on, and end-to-end cluster equivalence
// between faulted and fault-free runs (including degenerate inputs and
// the single-rank routing the p = 1 crash fix pinned down).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "bio/dataset.hpp"
#include "mpr/fault.hpp"
#include "mpr/mailbox.hpp"
#include "mpr/runtime.hpp"
#include "pace/messages.hpp"
#include "pace/parallel.hpp"
#include "pace/sequential.hpp"
#include "sim/workload.hpp"
#include "util/check.hpp"

namespace estclust {
namespace {

// ---------------------------------------------------------------------------
// FaultPlan: seeded determinism.

mpr::FaultSpec heavy_spec() {
  mpr::FaultSpec spec;
  spec.enabled = true;
  spec.seed = 99;
  spec.drop = 0.3;
  spec.dup = 0.3;
  spec.delay = 0.3;
  return spec;
}

TEST(FaultPlan, SameSeedSameFateSequence) {
  mpr::FaultPlan a(heavy_spec(), 4);
  mpr::FaultPlan b(heavy_spec(), 4);
  for (int i = 0; i < 200; ++i) {
    for (int src = 0; src < 4; ++src) {
      const mpr::SendFate fa = a.fate(src);
      const mpr::SendFate fb = b.fate(src);
      EXPECT_EQ(fa.attempts, fb.attempts);
      EXPECT_EQ(fa.copies, fb.copies);
      EXPECT_EQ(fa.delayed, fb.delayed);
      EXPECT_EQ(fa.extra_delay, fb.extra_delay);
      EXPECT_EQ(fa.dup_delay, fb.dup_delay);
    }
  }
}

TEST(FaultPlan, SendersOwnIndependentStreams) {
  // Fates drawn for one sender must not depend on how often other
  // senders draw (ranks run concurrently; interleaving is arbitrary).
  mpr::FaultPlan a(heavy_spec(), 3);
  mpr::FaultPlan b(heavy_spec(), 3);
  std::vector<mpr::SendFate> from_a;
  for (int i = 0; i < 50; ++i) from_a.push_back(a.fate(1));
  for (int i = 0; i < 50; ++i) {
    (void)b.fate(0);
    (void)b.fate(2);
    const mpr::SendFate f = b.fate(1);
    EXPECT_EQ(f.attempts, from_a[static_cast<std::size_t>(i)].attempts);
    EXPECT_EQ(f.copies, from_a[static_cast<std::size_t>(i)].copies);
    EXPECT_EQ(f.extra_delay,
              from_a[static_cast<std::size_t>(i)].extra_delay);
  }
}

TEST(FaultPlan, DeathSchedule) {
  mpr::FaultSpec spec = heavy_spec();
  spec.deaths.push_back({2, 0.5});
  mpr::FaultPlan plan(spec, 4);
  EXPECT_FALSE(plan.death_scheduled(1));
  EXPECT_TRUE(plan.death_scheduled(2));
  EXPECT_EQ(plan.death_vtime(2), 0.5);
  EXPECT_TRUE(std::isinf(plan.death_vtime(1)));
  EXPECT_FALSE(plan.dead_at(2, 0.49));
  EXPECT_TRUE(plan.dead_at(2, 0.5));
  EXPECT_FALSE(plan.dead_at(1, 1e9));
}

// ---------------------------------------------------------------------------
// Spec parsing / formatting / validation.

TEST(FaultSpec, OffAndEmptyDisable) {
  EXPECT_FALSE(mpr::parse_fault_spec("off").enabled);
  EXPECT_FALSE(mpr::parse_fault_spec("").enabled);
}

TEST(FaultSpec, ParsesFullGrammar) {
  const mpr::FaultSpec s = mpr::parse_fault_spec(
      "seed=7,drop=0.1,dup=0.2,delay=0.3,delay-mean=0.001,rto=0.002,"
      "backoff=1.5,max-attempts=8,deadline=0.01,kill=2@0.5,kill=3@0.75");
  EXPECT_TRUE(s.enabled);
  EXPECT_EQ(s.seed, 7u);
  EXPECT_EQ(s.drop, 0.1);
  EXPECT_EQ(s.dup, 0.2);
  EXPECT_EQ(s.delay, 0.3);
  EXPECT_EQ(s.delay_mean, 0.001);
  EXPECT_EQ(s.rto, 0.002);
  EXPECT_EQ(s.backoff, 1.5);
  EXPECT_EQ(s.max_attempts, 8);
  EXPECT_EQ(s.deadline, 0.01);
  ASSERT_EQ(s.deaths.size(), 2u);
  EXPECT_EQ(s.deaths[0].rank, 2);
  EXPECT_EQ(s.deaths[0].vtime, 0.5);
  EXPECT_EQ(s.deaths[1].rank, 3);
  s.validate();
}

TEST(FaultSpec, FormatRoundTrips) {
  const mpr::FaultSpec s =
      mpr::parse_fault_spec("seed=11,drop=0.25,kill=1@0.125");
  const mpr::FaultSpec again =
      mpr::parse_fault_spec(mpr::format_fault_spec(s));
  EXPECT_EQ(again.seed, s.seed);
  EXPECT_EQ(again.drop, s.drop);
  ASSERT_EQ(again.deaths.size(), 1u);
  EXPECT_EQ(again.deaths[0].rank, 1);
  EXPECT_EQ(again.deaths[0].vtime, 0.125);
}

TEST(FaultSpec, RejectsMalformedSpecs) {
  EXPECT_THROW(mpr::parse_fault_spec("bogus-key=1"), CheckError);
  EXPECT_THROW(mpr::parse_fault_spec("drop"), CheckError);
  EXPECT_THROW(mpr::parse_fault_spec("kill=2"), CheckError);
  EXPECT_THROW(mpr::parse_fault_spec("drop=1.0").validate(), CheckError);
  EXPECT_THROW(mpr::parse_fault_spec("dup=-0.1").validate(), CheckError);
  // Rank 0 is the master: its death is unrecoverable by design.
  EXPECT_THROW(mpr::parse_fault_spec("kill=0@0.5").validate(), CheckError);
}

// ---------------------------------------------------------------------------
// Codec hardening: truncated or over-long payloads must CHECK-fail at the
// decode site, never read out of bounds or silently succeed.

pace::ReportMsg sample_report() {
  pace::ReportMsg m;
  pace::WireResult r;
  r.a = 3;
  r.b = 7;
  r.accepted = 1;
  m.results.push_back(r);
  pairgen::PromisingPair p;
  p.a = 1;
  p.b = 2;
  p.match_len = 30;
  m.pairs.push_back(p);
  m.out_of_pairs = true;
  m.memo_lookups = 5;
  m.memo_hits = 2;
  m.seq = 9;
  m.results_for_seq = 4;
  m.ack_assign_seq = 4;
  return m;
}

pace::AssignMsg sample_assign() {
  pace::AssignMsg m;
  pairgen::PromisingPair p;
  p.a = 5;
  p.b = 6;
  m.work.push_back(p);
  m.request = 40;
  m.stop = 0;
  m.seq = 3;
  return m;
}

template <typename Decode>
void expect_rejects_mutations(const mpr::Buffer& good, Decode decode) {
  // Every strict prefix must be rejected...
  for (std::size_t cut = 0; cut < good.size(); ++cut) {
    mpr::Buffer truncated(good.begin(),
                          good.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_THROW(decode(truncated), CheckError) << "prefix of " << cut;
  }
  // ...and so must trailing garbage (expect_exhausted).
  mpr::Buffer extended = good;
  extended.push_back(0xAB);
  EXPECT_THROW(decode(extended), CheckError);
}

TEST(Codec, ReportRejectsTruncationBothModes) {
  for (bool reliable : {false, true}) {
    const mpr::Buffer good = pace::encode_report(sample_report(), reliable);
    expect_rejects_mutations(good, [&](const mpr::Buffer& b) {
      return pace::decode_report(b, reliable);
    });
  }
}

TEST(Codec, AssignRejectsTruncationBothModes) {
  for (bool reliable : {false, true}) {
    const mpr::Buffer good = pace::encode_assign(sample_assign(), reliable);
    expect_rejects_mutations(good, [&](const mpr::Buffer& b) {
      return pace::decode_assign(b, reliable);
    });
  }
}

TEST(Codec, AckAndHeartbeatRejectTruncation) {
  expect_rejects_mutations(pace::encode_ack({42}), [](const mpr::Buffer& b) {
    return pace::decode_ack(b);
  });
  expect_rejects_mutations(pace::encode_heartbeat({7}),
                           [](const mpr::Buffer& b) {
                             return pace::decode_heartbeat(b);
                           });
}

TEST(Codec, ReliableFieldsRoundTrip) {
  const pace::ReportMsg r =
      pace::decode_report(pace::encode_report(sample_report(), true), true);
  EXPECT_EQ(r.seq, 9u);
  EXPECT_EQ(r.results_for_seq, 4u);
  EXPECT_EQ(r.ack_assign_seq, 4u);
  const pace::AssignMsg a =
      pace::decode_assign(pace::encode_assign(sample_assign(), true), true);
  EXPECT_EQ(a.seq, 3u);
}

TEST(Codec, FaultFreeWireBytesUnchangedByReliableFields) {
  // The reliable-mode fields must not leak into the fault-free format.
  pace::ReportMsg plain = sample_report();
  pace::ReportMsg stamped = plain;
  stamped.seq = 1234;
  stamped.results_for_seq = 99;
  stamped.ack_assign_seq = 77;
  EXPECT_EQ(pace::encode_report(plain, false),
            pace::encode_report(stamped, false));
}

// ---------------------------------------------------------------------------
// Mailbox primitives backing the retransmission protocol.

mpr::Message make_msg(int src, int tag, std::uint8_t byte) {
  mpr::Message m;
  m.src = src;
  m.tag = tag;
  m.payload = {byte};
  return m;
}

TEST(Mailbox, Pop2DeliversFifoAcrossBothTags) {
  mpr::Mailbox mb;
  mb.push(make_msg(1, 10, 1));
  mb.push(make_msg(1, 20, 2));
  mb.push(make_msg(1, 10, 3));
  EXPECT_EQ(mb.pop2(1, 10, 20).payload[0], 1);
  EXPECT_EQ(mb.pop2(1, 10, 20).payload[0], 2);
  EXPECT_EQ(mb.pop2(1, 10, 20).payload[0], 3);
}

TEST(Mailbox, Pop2SkipsNonMatchingTags) {
  mpr::Mailbox mb;
  mb.push(make_msg(1, 30, 1));  // neither tag: must stay queued
  mb.push(make_msg(1, 20, 2));
  EXPECT_EQ(mb.pop2(1, 10, 20).payload[0], 2);
  EXPECT_EQ(mb.pop(1, 30).payload[0], 1);
  EXPECT_EQ(mb.size(), 0u);
}

TEST(Mailbox, TryPop2AndProbe2) {
  mpr::Mailbox mb;
  EXPECT_FALSE(mb.probe2(1, 10, 20));
  EXPECT_FALSE(mb.try_pop2(1, 10, 20).has_value());
  mb.push(make_msg(1, 20, 5));
  EXPECT_TRUE(mb.probe2(1, 10, 20));
  auto m = mb.try_pop2(1, 10, 20);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->payload[0], 5);
  EXPECT_FALSE(mb.try_pop2(1, 10, 20).has_value());
}

TEST(Mailbox, PushPairKeepsCopiesAdjacent) {
  // The fault layer's duplicate delivery: a consumer that saw the first
  // copy is guaranteed to find the second already queued.
  mpr::Mailbox mb;
  mb.push_pair(make_msg(1, 10, 1), make_msg(1, 10, 2));
  EXPECT_EQ(mb.pop(1, 10).payload[0], 1);
  auto dup = mb.try_pop(1, 10);
  ASSERT_TRUE(dup.has_value());
  EXPECT_EQ(dup->payload[0], 2);
}

// ---------------------------------------------------------------------------
// End-to-end: faulted runs must reproduce fault-free clusters exactly.

bio::EstSet test_workload(int num_genes, int num_ests, std::uint64_t seed) {
  sim::SimConfig cfg;
  cfg.num_genes = num_genes;
  cfg.num_ests = num_ests;
  cfg.est_len_mean = 180;
  cfg.est_len_stddev = 30;
  cfg.est_len_min = 80;
  cfg.seed = seed;
  return sim::generate(cfg).ests;
}

std::vector<std::uint32_t> run_parallel(const bio::EstSet& ests, int ranks,
                                        const mpr::FaultSpec* faults) {
  pace::PaceConfig cfg;
  cfg.gst.window = 6;
  cfg.psi = 20;
  cfg.batchsize = 10;
  std::vector<std::uint32_t> labels;
  std::mutex mu;
  mpr::Runtime rt(ranks, mpr::CostModel{});
  if (faults != nullptr) {
    rt.set_fault_plan(std::make_shared<mpr::FaultPlan>(*faults, ranks));
  }
  rt.run([&](mpr::Communicator& comm) {
    auto res = pace::cluster_parallel(comm, ests, cfg);
    if (comm.rank() == 0) {
      std::lock_guard<std::mutex> lock(mu);
      labels = std::move(res.labels);
    }
  });
  return labels;
}

TEST(FaultEquivalence, DropDupDelayPreserveClustersExactly) {
  const bio::EstSet ests = test_workload(5, 60, 71);
  const std::vector<std::uint32_t> base = run_parallel(ests, 4, nullptr);
  mpr::FaultSpec spec = heavy_spec();
  EXPECT_EQ(run_parallel(ests, 4, &spec), base);
}

TEST(FaultEquivalence, SlaveDeathPreservesClustersExactly) {
  const bio::EstSet ests = test_workload(5, 60, 71);
  const std::vector<std::uint32_t> base = run_parallel(ests, 4, nullptr);
  mpr::FaultSpec spec;
  spec.enabled = true;
  spec.seed = 5;
  spec.deaths.push_back({2, 0.01});
  EXPECT_EQ(run_parallel(ests, 4, &spec), base);
}

TEST(FaultEquivalence, FaultedRunsReplayBitIdentically) {
  const bio::EstSet ests = test_workload(4, 40, 13);
  mpr::FaultSpec spec = heavy_spec();
  spec.deaths.push_back({3, 0.02});
  const std::vector<std::uint32_t> first = run_parallel(ests, 4, &spec);
  EXPECT_EQ(run_parallel(ests, 4, &spec), first);
}

// ---------------------------------------------------------------------------
// Degenerate inputs (gst/builder.cpp audit) and single-rank routing.

TEST(Degenerate, EmptyEstSet) {
  const bio::EstSet empty{std::vector<bio::Sequence>{}};
  EXPECT_TRUE(run_parallel(empty, 4, nullptr).empty());
  pace::PaceConfig cfg;
  auto seq = pace::cluster_sequential(empty, cfg);
  EXPECT_TRUE(seq.clusters.labels().empty());
}

TEST(Degenerate, SingleEst) {
  const bio::EstSet ests = test_workload(1, 1, 3);
  const auto labels = run_parallel(ests, 4, nullptr);
  ASSERT_EQ(labels.size(), 1u);
  mpr::FaultSpec spec = heavy_spec();
  EXPECT_EQ(run_parallel(ests, 4, &spec), labels);
}

TEST(Degenerate, MoreRanksThanEsts) {
  const bio::EstSet ests = test_workload(2, 3, 17);
  const auto base = run_parallel(ests, 2, nullptr);
  EXPECT_EQ(run_parallel(ests, 8, nullptr), base);
  mpr::FaultSpec spec = heavy_spec();
  spec.deaths.push_back({7, 0.005});
  EXPECT_EQ(run_parallel(ests, 8, &spec), base);
}

TEST(Degenerate, SingleRankRoutesToLocalPipeline) {
  // Regression for the p = 1 crash: a 1-rank communicator must run the
  // whole pipeline locally instead of CHECK-failing in the Master ctor.
  const bio::EstSet ests = test_workload(3, 20, 29);
  const auto one = run_parallel(ests, 1, nullptr);
  ASSERT_EQ(one.size(), ests.num_ests());
  EXPECT_EQ(run_parallel(ests, 2, nullptr), one);
}

}  // namespace
}  // namespace estclust
