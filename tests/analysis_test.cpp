#include <gtest/gtest.h>

#include "analysis/splice.hpp"
#include "bio/alphabet.hpp"
#include "gst/builder.hpp"
#include "sim/workload.hpp"
#include "util/prng.hpp"

namespace estclust::analysis {
namespace {

using bio::EstSet;
using bio::Sequence;

std::string random_dna(Prng& rng, std::size_t len) {
  std::string s(len, 'A');
  for (auto& c : s) c = bio::decode_base(static_cast<int>(rng.uniform(4)));
  return s;
}

SpliceParams params() {
  SpliceParams p;
  p.psi = 20;
  p.min_gap = 25;
  p.min_flank = 30;
  p.min_flank_identity = 0.9;
  return p;
}

TEST(ExaminePair, DetectsExonSkipSignature) {
  Prng rng(1);
  std::string exon1 = random_dna(rng, 80);
  std::string exon2 = random_dna(rng, 60);  // the skipped exon
  std::string exon3 = random_dna(rng, 80);
  EstSet ests({{"long", exon1 + exon2 + exon3}, {"short", exon1 + exon3}});
  SpliceCandidate cand;
  ASSERT_TRUE(examine_pair(ests, 0, 1, false, params(), cand));
  EXPECT_TRUE(cand.gap_in_a);  // EST 0 carries the extra exon
  EXPECT_NEAR(static_cast<double>(cand.gap_len), 60.0, 8.0);
  EXPECT_GE(cand.left_flank, 30u);
  EXPECT_GE(cand.right_flank, 30u);
  EXPECT_GE(cand.flank_identity, 0.9);
}

TEST(ExaminePair, GapSideReportedCorrectly) {
  Prng rng(2);
  std::string exon1 = random_dna(rng, 80);
  std::string exon2 = random_dna(rng, 50);
  std::string exon3 = random_dna(rng, 80);
  // Now the *second* EST carries the extra exon.
  EstSet ests({{"short", exon1 + exon3}, {"long", exon1 + exon2 + exon3}});
  SpliceCandidate cand;
  ASSERT_TRUE(examine_pair(ests, 0, 1, false, params(), cand));
  EXPECT_FALSE(cand.gap_in_a);
}

TEST(ExaminePair, PlainOverlapIsNotFlagged) {
  Prng rng(3);
  std::string shared = random_dna(rng, 120);
  EstSet ests({{"a", random_dna(rng, 60) + shared},
               {"b", shared + random_dna(rng, 60)}});
  SpliceCandidate cand;
  EXPECT_FALSE(examine_pair(ests, 0, 1, false, params(), cand));
}

TEST(ExaminePair, ShortGapBelowThresholdIgnored) {
  Prng rng(4);
  std::string exon1 = random_dna(rng, 80);
  std::string tiny = random_dna(rng, 10);  // below min_gap = 25
  std::string exon3 = random_dna(rng, 80);
  EstSet ests({{"a", exon1 + tiny + exon3}, {"b", exon1 + exon3}});
  SpliceCandidate cand;
  EXPECT_FALSE(examine_pair(ests, 0, 1, false, params(), cand));
}

TEST(ExaminePair, ShortFlankRejected) {
  Prng rng(5);
  std::string exon1 = random_dna(rng, 15);  // below min_flank = 30
  std::string exon2 = random_dna(rng, 60);
  std::string exon3 = random_dna(rng, 80);
  EstSet ests({{"a", exon1 + exon2 + exon3}, {"b", exon1 + exon3}});
  SpliceCandidate cand;
  EXPECT_FALSE(examine_pair(ests, 0, 1, false, params(), cand));
}

TEST(ExaminePair, UnrelatedSequencesRejected) {
  Prng rng(6);
  EstSet ests({{"a", random_dna(rng, 150)}, {"b", random_dna(rng, 150)}});
  SpliceCandidate cand;
  EXPECT_FALSE(examine_pair(ests, 0, 1, false, params(), cand));
}

TEST(DetectSplicing, FindsPlantedIsoformPair) {
  Prng rng(7);
  std::string exon1 = random_dna(rng, 90);
  std::string exon2 = random_dna(rng, 70);
  std::string exon3 = random_dna(rng, 90);
  std::vector<Sequence> seqs = {{"iso_a", exon1 + exon2 + exon3},
                                {"iso_b", exon1 + exon3},
                                {"noise", random_dna(rng, 200)}};
  EstSet ests(std::move(seqs));
  auto forest = gst::build_forest_sequential(ests, 8);
  auto candidates = detect_alternative_splicing(ests, forest, params());
  ASSERT_FALSE(candidates.empty());
  EXPECT_EQ(candidates[0].a, 0u);
  EXPECT_EQ(candidates[0].b, 1u);
}

TEST(DetectSplicing, ReverseComplementIsoformFound) {
  Prng rng(8);
  std::string exon1 = random_dna(rng, 90);
  std::string exon2 = random_dna(rng, 70);
  std::string exon3 = random_dna(rng, 90);
  EstSet ests({{"iso_a", exon1 + exon2 + exon3},
               {"iso_b_rc", bio::reverse_complement(exon1 + exon3)}});
  auto forest = gst::build_forest_sequential(ests, 8);
  auto candidates = detect_alternative_splicing(ests, forest, params());
  ASSERT_FALSE(candidates.empty());
  EXPECT_TRUE(candidates[0].b_rc);
}

TEST(DetectSplicing, SimulatedIsoformWorkload) {
  sim::SimConfig cfg;
  cfg.num_genes = 6;
  cfg.num_ests = 80;
  cfg.alt_splice_prob = 1.0;  // every eligible gene gets an isoform
  cfg.min_exons = 3;
  cfg.max_exons = 5;
  cfg.exon_len_min = 60;
  cfg.exon_len_max = 120;
  cfg.est_len_mean = 400;
  cfg.est_len_min = 150;
  cfg.sub_rate = 0.005;
  cfg.ins_rate = cfg.del_rate = 0.001;
  cfg.seed = 505;
  auto wl = sim::generate(cfg);

  // The generator must actually have produced isoforms for this test to
  // mean anything.
  bool has_isoform = false;
  for (const auto& iso : wl.isoforms) has_isoform |= iso.size() > 1;
  ASSERT_TRUE(has_isoform);

  auto forest = gst::build_forest_sequential(wl.ests, 8);
  auto candidates = detect_alternative_splicing(wl.ests, forest, params());
  ASSERT_FALSE(candidates.empty());
  // Every reported candidate must link ESTs of the same gene (isoforms),
  // never two different genes.
  for (const auto& c : candidates) {
    EXPECT_EQ(wl.truth[c.a], wl.truth[c.b])
        << "splice candidate across genes: " << c.a << " vs " << c.b;
  }
}

TEST(DetectSplicing, DeduplicatesPairs) {
  Prng rng(9);
  std::string exon1 = random_dna(rng, 90);
  std::string exon2 = random_dna(rng, 70);
  std::string exon3 = random_dna(rng, 90);
  EstSet ests({{"a", exon1 + exon2 + exon3}, {"b", exon1 + exon3}});
  auto forest = gst::build_forest_sequential(ests, 8);
  auto candidates = detect_alternative_splicing(ests, forest, params());
  // The pair shares two maximal substrings (exon1 and exon3) and so is
  // generated more than once, but must be reported at most once per
  // orientation.
  std::size_t fwd = 0;
  for (const auto& c : candidates) {
    if (c.a == 0 && c.b == 1 && !c.b_rc) ++fwd;
  }
  EXPECT_EQ(fwd, 1u);
}

}  // namespace
}  // namespace estclust::analysis
