// End-to-end golden tests: checked-in FASTA fixtures must produce
// byte-identical canonical clusterings AND byte-identical modeled
// run-times at every rank count, with the memo cache on or off.
//
// These lock the whole pipeline (GST -> pair generation -> master/slave
// protocol -> alignment verdicts -> virtual-time accounting): any change
// that perturbs a verdict, the processing order, or a charged cost shows
// up as a golden diff, not a silent drift.
//
// Regenerate after an intentional change with
//   ESTCLUST_UPDATE_GOLDEN=1 ./golden_clusters_test
// and review the diff like any other code change.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "bio/dataset.hpp"
#include "bio/fasta.hpp"
#include "mpr/runtime.hpp"
#include "pace/parallel.hpp"
#include "sim/workload.hpp"

#ifndef ESTCLUST_TEST_DATA_DIR
#error "ESTCLUST_TEST_DATA_DIR must be defined by the build"
#endif

namespace estclust {
namespace {

std::string data_path(const std::string& name) {
  return std::string(ESTCLUST_TEST_DATA_DIR) + "/" + name;
}

bool update_mode() {
  const char* v = std::getenv("ESTCLUST_UPDATE_GOLDEN");
  return v != nullptr && *v != '\0' && std::string(v) != "0";
}

pace::PaceConfig golden_config() {
  pace::PaceConfig cfg;
  cfg.gst.window = 6;
  cfg.psi = 24;
  cfg.batchsize = 20;
  cfg.overlap.band = 8;
  cfg.overlap.min_quality = 0.75;
  cfg.overlap.min_overlap = 40;
  return cfg;
}

/// Canonical partition text: one line per cluster, members ascending,
/// clusters ordered by smallest member. Independent of label numbering.
std::string canonical_clusters(const std::vector<std::uint32_t>& labels) {
  std::vector<std::vector<std::uint32_t>> clusters;
  std::vector<std::int64_t> slot(labels.size(), -1);
  for (std::uint32_t i = 0; i < labels.size(); ++i) {
    std::int64_t& s = slot[labels[i]];
    if (s < 0) {
      s = static_cast<std::int64_t>(clusters.size());
      clusters.emplace_back();
    }
    clusters[static_cast<std::size_t>(s)].push_back(i);
  }
  // Members arrive in ascending order already; clusters are keyed by their
  // first member, which is ascending too because slots are assigned on
  // first sight. Sort anyway so the canonical form is self-evident.
  std::sort(clusters.begin(), clusters.end());
  std::ostringstream out;
  for (const auto& c : clusters) {
    for (std::size_t i = 0; i < c.size(); ++i) {
      if (i) out << ' ';
      out << c[i];
    }
    out << '\n';
  }
  return out.str();
}

/// Exact decimal form of the virtual clock: 17 significant digits round-
/// trip an IEEE double, so equal strings <=> bit-identical run-times.
std::string format_time(double t) {
  std::ostringstream out;
  out << std::setprecision(17) << t;
  return out.str();
}

struct GoldenRun {
  std::string clusters;
  std::string runtime_line;
};

GoldenRun run_fixture(const bio::EstSet& ests, int ranks, bool memo) {
  pace::PaceConfig cfg = golden_config();
  cfg.memo = memo;
  GoldenRun out;
  std::mutex mu;
  mpr::Runtime rt(ranks, mpr::CostModel{});
  rt.run([&](mpr::Communicator& comm) {
    auto res = pace::cluster_parallel(comm, ests, cfg);
    if (comm.rank() == 0) {
      std::lock_guard<std::mutex> lock(mu);
      out.clusters = canonical_clusters(res.labels);
      std::ostringstream line;
      line << "ranks=" << ranks << " memo=" << (memo ? "on" : "off")
           << " t_total=" << format_time(res.stats.t_total)
           << " clusters=" << res.stats.num_clusters;
      out.runtime_line = line.str();
    }
  });
  return out;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return {};
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << "cannot write " << path;
  out << content;
}

struct Fixture {
  const char* name;
  sim::SimConfig sim;
};

Fixture small_fixture() {
  Fixture f;
  f.name = "golden_small";
  f.sim.num_genes = 6;
  f.sim.num_ests = 80;
  f.sim.est_len_mean = 220;
  f.sim.est_len_stddev = 40;
  f.sim.est_len_min = 80;
  f.sim.sub_rate = 0.01;
  f.sim.ins_rate = 0.002;
  f.sim.del_rate = 0.002;
  f.sim.seed = 20020811;
  return f;
}

Fixture noisy_fixture() {
  Fixture f;
  f.name = "golden_noisy";
  f.sim.num_genes = 10;
  f.sim.num_ests = 120;
  f.sim.est_len_mean = 260;
  f.sim.est_len_stddev = 60;
  f.sim.est_len_min = 90;
  f.sim.sub_rate = 0.02;
  f.sim.ins_rate = 0.005;
  f.sim.del_rate = 0.005;
  f.sim.seed = 4177;
  return f;
}

void check_fixture(const Fixture& fix) {
  const std::string fasta_path = data_path(std::string(fix.name) + ".fasta");
  const std::string clusters_path =
      data_path(std::string(fix.name) + ".clusters.txt");
  const std::string runtimes_path =
      data_path(std::string(fix.name) + ".runtimes.txt");

  if (update_mode()) {
    // Regenerate the FASTA fixture from its pinned simulator seed, so the
    // fixture file itself is reproducible.
    auto wl = sim::generate(fix.sim);
    std::vector<bio::Sequence> seqs;
    for (std::size_t i = 0; i < wl.ests.num_ests(); ++i) {
      seqs.push_back(wl.ests.est(static_cast<bio::EstId>(i)));
    }
    bio::write_fasta_file(fasta_path, seqs);
  }

  bio::EstSet ests(bio::read_fasta_file(fasta_path));

  std::string clusters;  // must be identical across every configuration
  std::ostringstream runtimes;
  for (int ranks : {1, 2, 4, 8}) {
    for (bool memo : {false, true}) {
      GoldenRun run = run_fixture(ests, ranks, memo);
      if (clusters.empty()) {
        clusters = run.clusters;
      } else {
        ASSERT_EQ(run.clusters, clusters)
            << "partition differs at ranks=" << ranks
            << " memo=" << (memo ? "on" : "off");
      }
      runtimes << run.runtime_line << '\n';
    }
  }

  if (update_mode()) {
    write_file(clusters_path, clusters);
    write_file(runtimes_path, runtimes.str());
    GTEST_SKIP() << "golden files regenerated for " << fix.name;
  }

  EXPECT_EQ(clusters, read_file(clusters_path))
      << "cluster golden drifted for " << fix.name
      << " (ESTCLUST_UPDATE_GOLDEN=1 regenerates after an intended change)";
  EXPECT_EQ(runtimes.str(), read_file(runtimes_path))
      << "modeled run-time golden drifted for " << fix.name
      << " (ESTCLUST_UPDATE_GOLDEN=1 regenerates after an intended change)";
}

TEST(GoldenClusters, Small) { check_fixture(small_fixture()); }

TEST(GoldenClusters, Noisy) { check_fixture(noisy_fixture()); }

}  // namespace
}  // namespace estclust
